// gas::health suite (ctest label: health): the state machine and brownout
// ladder as pure units, probe sorts against live and killed devices, and the
// serve-layer closed loop — typed Shed rejections under overload, brownout
// service degradation, the kill -> probe -> probation -> healthy recovery
// cycle, and the health=off bit-identity contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "health/brownout.hpp"
#include "health/probe.hpp"
#include "health/state.hpp"
#include "serve/server.hpp"
#include "workload/generators.hpp"

namespace {

using gas::fleet::DeviceFleet;
using gas::health::Brownout;
using gas::health::Machine;
using gas::health::State;
using gas::serve::Job;
using gas::serve::JobKind;
using gas::serve::Priority;
using gas::serve::Response;
using gas::serve::Server;
using gas::serve::ServerConfig;
using gas::serve::Status;

simt::Device make_device(std::size_t bytes = 256 << 20) {
    return simt::Device(simt::tiny_device(bytes));
}

ServerConfig health_config() {
    ServerConfig cfg;
    cfg.manual_pump = true;
    cfg.health.enabled = true;
    return cfg;
}

Job uniform_job(std::size_t num_arrays, std::size_t array_size, unsigned seed,
                Priority priority = Priority::Normal) {
    Job job;
    job.kind = JobKind::Uniform;
    job.num_arrays = num_arrays;
    job.array_size = array_size;
    job.priority = priority;
    job.values = workload::make_dataset(num_arrays, array_size,
                                        workload::Distribution::Uniform, seed)
                     .values;
    return job;
}

std::vector<float> sorted_rows(std::vector<float> values, std::size_t num_arrays,
                               std::size_t array_size) {
    for (std::size_t a = 0; a < num_arrays; ++a) {
        auto* row = values.data() + a * array_size;
        std::sort(row, row + array_size);
    }
    return values;
}

simt::faults::FaultPlan kill_plan() {
    simt::faults::FaultPlan plan;
    plan.launch_fail_every = 1;  // every launch refuses: the device is gone
    return plan;
}

// ---------------------------------------------------------------------------
// Machine: the per-shard state machine as a pure unit.

TEST(HealthMachine, TransientFaultDemotesAndCleanStreakRecovers) {
    Machine m(Machine::Config{.degraded_clear_batches = 2});
    EXPECT_EQ(m.state(), State::Healthy);
    EXPECT_DOUBLE_EQ(m.route_weight(), 1.0);

    EXPECT_TRUE(m.on_transient_fault());  // Healthy -> Degraded counts
    EXPECT_EQ(m.state(), State::Degraded);
    EXPECT_FALSE(m.on_transient_fault());  // already Degraded: no transition
    EXPECT_DOUBLE_EQ(m.route_weight(), 0.5);

    EXPECT_FALSE(m.on_clean_batch());  // streak 1 of 2
    EXPECT_TRUE(m.on_clean_batch());   // streak complete: Degraded -> Healthy
    EXPECT_EQ(m.state(), State::Healthy);
}

TEST(HealthMachine, FaultMidStreakResetsTheCleanStreak) {
    Machine m(Machine::Config{.degraded_clear_batches = 2});
    m.on_transient_fault();
    EXPECT_FALSE(m.on_clean_batch());
    m.on_transient_fault();  // streak broken
    EXPECT_FALSE(m.on_clean_batch());
    EXPECT_TRUE(m.on_clean_batch());
    EXPECT_EQ(m.state(), State::Healthy);
}

TEST(HealthMachine, QuarantineProbationReadmissionCycle) {
    Machine m(Machine::Config{.probe_passes = 2, .probation_batches = 3});
    EXPECT_TRUE(m.on_quarantine());
    EXPECT_FALSE(m.on_quarantine());  // idempotent
    EXPECT_EQ(m.state(), State::Quarantined);
    EXPECT_DOUBLE_EQ(m.route_weight(), 0.0);

    EXPECT_FALSE(m.on_probe_pass());  // 1 of 2
    m.on_probe_fail();                // streak resets
    EXPECT_FALSE(m.on_probe_pass());  // 1 of 2 again
    EXPECT_TRUE(m.on_probe_pass());   // K-streak: Quarantined -> Probation
    EXPECT_EQ(m.state(), State::Probation);

    // Probation weight ramps linearly from the base toward 1.0.
    EXPECT_DOUBLE_EQ(m.route_weight(), 0.25);
    EXPECT_FALSE(m.on_clean_batch());
    EXPECT_DOUBLE_EQ(m.route_weight(), 0.25 + 0.75 / 3.0);
    EXPECT_FALSE(m.on_clean_batch());
    EXPECT_TRUE(m.on_clean_batch());  // M batches: Probation -> Healthy
    EXPECT_EQ(m.state(), State::Healthy);
    EXPECT_DOUBLE_EQ(m.route_weight(), 1.0);
}

TEST(HealthMachine, ProbationFailureReturnsToQuarantine) {
    Machine m(Machine::Config{.probe_passes = 1, .probation_batches = 3});
    m.on_quarantine();
    EXPECT_TRUE(m.on_probe_pass());
    EXPECT_EQ(m.state(), State::Probation);
    EXPECT_TRUE(m.on_quarantine());  // a fault during probation pulls it back
    EXPECT_EQ(m.state(), State::Quarantined);
    // And the probe streak restarted from zero.
    EXPECT_TRUE(m.on_probe_pass());
    EXPECT_EQ(m.state(), State::Probation);
}

// ---------------------------------------------------------------------------
// Brownout: the hysteresis ladder as a pure unit.

TEST(HealthBrownout, EscalatesDirectlyToTheDeepestMetLevel) {
    Brownout b(Brownout::Config{.l1 = 0.55, .l2 = 0.75, .l3 = 0.90, .hysteresis = 0.20});
    EXPECT_EQ(b.level(), 0);
    EXPECT_EQ(b.update(0.50), 0);
    EXPECT_EQ(b.update(0.60), 1);   // past l1
    EXPECT_EQ(b.update(0.95), 2);   // jumps 1 -> 3 in one step
    EXPECT_EQ(b.level(), 3);
}

TEST(HealthBrownout, DeescalatesStepwiseWithHysteresis) {
    Brownout b(Brownout::Config{.l1 = 0.55, .l2 = 0.75, .l3 = 0.90, .hysteresis = 0.20});
    b.update(0.95);
    ASSERT_EQ(b.level(), 3);
    EXPECT_EQ(b.update(0.80), 0);   // below l3 but inside the hysteresis band
    EXPECT_EQ(b.level(), 3);
    EXPECT_EQ(b.update(0.65), -1);  // < l3 - 0.20: one step down, not a jump
    EXPECT_EQ(b.level(), 2);
    EXPECT_EQ(b.update(0.65), 0);   // >= l2 - 0.20: holds
    EXPECT_EQ(b.update(0.10), -1);
    EXPECT_EQ(b.update(0.10), -1);
    EXPECT_EQ(b.level(), 0);
    EXPECT_EQ(b.update(0.10), 0);   // floor
}

// ---------------------------------------------------------------------------
// Probe sorts.

TEST(HealthProbe, PassesOnAHealthyDevice) {
    auto dev = make_device();
    const auto r = gas::health::run_probe(dev, /*seed=*/42, 4, 64);
    EXPECT_TRUE(r.pass) << r.error;
    EXPECT_EQ(r.arrays, 4u);
    EXPECT_EQ(r.array_size, 64u);
}

TEST(HealthProbe, FailsTypedOnAKilledDevice) {
    auto dev = make_device();
    dev.set_fault_plan(kill_plan());
    const auto r = gas::health::run_probe(dev, /*seed=*/42);
    EXPECT_FALSE(r.pass);
    EXPECT_FALSE(r.error.empty());
}

// ---------------------------------------------------------------------------
// Serve wiring: overload shedding.

TEST(HealthServe, QueueOverflowShedsOldestLowerPriorityFirst) {
    auto dev = make_device();
    ServerConfig cfg = health_config();
    cfg.queue_capacity = 2;
    Server server(dev, cfg);

    auto low_old = server.submit(uniform_job(2, 64, 1, Priority::Low));
    auto low_new = server.submit(uniform_job(2, 64, 2, Priority::Low));
    // Queue full.  A high-priority arrival displaces the OLDEST low job —
    // typed Shed, resolved immediately, never silent loss.
    auto high = server.submit(uniform_job(2, 64, 3, Priority::High));

    Response shed = low_old.result.get();
    EXPECT_EQ(shed.status, Status::Shed);
    EXPECT_NE(shed.error.find("displaced"), std::string::npos) << shed.error;
    EXPECT_FALSE(shed.values.empty());  // input handed back with the rejection

    server.pump();
    EXPECT_TRUE(high.result.get().ok());
    EXPECT_TRUE(low_new.result.get().ok());

    const auto stats = server.stats();
    EXPECT_EQ(stats.shed, 1u);
    EXPECT_EQ(stats.health.shed_overflow, 1u);
    EXPECT_EQ(stats.health.shed_total(), 1u);
    EXPECT_EQ(stats.completed, 2u);
}

TEST(HealthServe, OverflowShedNeverDisplacesMoreImportantWork) {
    auto dev = make_device();
    ServerConfig cfg = health_config();
    cfg.queue_capacity = 2;
    Server server(dev, cfg);

    auto high_a = server.submit(uniform_job(2, 64, 1, Priority::High));
    auto high_b = server.submit(uniform_job(2, 64, 2, Priority::High));
    // A low-priority arrival cannot displace queued high work: the newcomer
    // is the drop.
    auto low = server.submit(uniform_job(2, 64, 3, Priority::Low));

    Response r = low.result.get();
    EXPECT_EQ(r.status, Status::Shed);
    server.pump();
    EXPECT_TRUE(high_a.result.get().ok());
    EXPECT_TRUE(high_b.result.get().ok());
    EXPECT_EQ(server.stats().health.shed_overflow, 1u);
}

TEST(HealthServe, ShedDisabledKeepsRejectSemantics) {
    auto dev = make_device();
    ServerConfig cfg = health_config();
    cfg.queue_capacity = 1;
    cfg.health.shed_enabled = false;
    Server server(dev, cfg);

    auto a = server.submit(uniform_job(2, 64, 1));
    auto b = server.submit(uniform_job(2, 64, 2));  // full queue, manual pump
    EXPECT_EQ(b.result.get().status, Status::Rejected);
    server.pump();
    EXPECT_TRUE(a.result.get().ok());
    EXPECT_EQ(server.stats().health.shed_total(), 0u);
}

// ---------------------------------------------------------------------------
// Serve wiring: brownout ladder.

TEST(HealthServe, BrownoutL3ShedsIncomingLowPriority) {
    auto dev = make_device();
    ServerConfig cfg = health_config();
    // Thresholds at ~zero: the first enqueue sample pushes occupancy past
    // every rung, so the ladder sits at L3 for the next arrival.
    cfg.health.brownout_l1 = 1e-9;
    cfg.health.brownout_l2 = 2e-9;
    cfg.health.brownout_l3 = 3e-9;
    cfg.health.brownout_hysteresis = 0.0;
    Server server(dev, cfg);

    auto first = server.submit(uniform_job(2, 64, 1));  // escalates the ladder
    auto low = server.submit(uniform_job(2, 64, 2, Priority::Low));
    Response r = low.result.get();
    EXPECT_EQ(r.status, Status::Shed);
    EXPECT_NE(r.error.find("brownout"), std::string::npos) << r.error;

    // Normal-priority work is never brownout-shed.
    auto normal = server.submit(uniform_job(2, 64, 3));
    server.pump();
    EXPECT_TRUE(first.result.get().ok());
    EXPECT_TRUE(normal.result.get().ok());

    const auto stats = server.stats();
    EXPECT_EQ(stats.health.shed_brownout, 1u);
    EXPECT_GE(stats.health.brownout_escalations, 1u);
}

TEST(HealthServe, BrownoutL1SkipsResponseVerification) {
    auto dev = make_device();
    ServerConfig cfg = health_config();
    cfg.verify_responses = true;
    cfg.health.brownout_l1 = 1e-9;  // L1 from the first sample on
    cfg.health.brownout_l2 = 1.5;   // but never L2/L3
    cfg.health.brownout_l3 = 2.0;
    Server server(dev, cfg);

    auto job = uniform_job(4, 64, 7);
    const auto want = sorted_rows(job.values, 4, 64);
    auto t1 = server.submit(std::move(job));
    auto t2 = server.submit(uniform_job(4, 64, 8));
    server.pump();
    EXPECT_EQ(t1.result.get().values, want);  // bytes still correct, just unverified
    EXPECT_TRUE(t2.result.get().ok());
    EXPECT_GE(server.stats().health.verify_skipped_batches, 1u);
}

// ---------------------------------------------------------------------------
// Serve wiring: device recovery.

TEST(HealthServe, KilledDeviceRecoversThroughProbeAndProbation) {
    DeviceFleet fleet(2, simt::tiny_device(256 << 20));
    ServerConfig cfg = health_config();
    cfg.retry.seed = 31;
    cfg.health.probe_passes = 1;
    cfg.health.probation_batches = 1;
    cfg.health.probation_base_weight = 1.0;  // no ramp: deterministic routing
    Server server(fleet, cfg);

    // Phase 1: kill device 0 and serve a burst.  Every response must still
    // be correct (re-routed to device 1); device 0 ends Quarantined.
    fleet.device(0).set_fault_plan(kill_plan());
    std::vector<Server::Ticket> tickets;
    std::vector<std::vector<float>> want;
    for (unsigned i = 0; i < 6; ++i) {
        auto job = uniform_job(4, 64 + 16 * i, i);  // incompatible: spreads out
        want.push_back(sorted_rows(job.values, 4, 64 + 16 * i));
        tickets.push_back(server.submit(std::move(job)));
    }
    server.pump();
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        Response r = tickets[i].result.get();
        ASSERT_EQ(r.status, Status::Ok) << r.error;
        EXPECT_EQ(r.values, want[i]);
    }
    {
        const auto stats = server.stats();
        ASSERT_EQ(stats.devices_quarantined, 1u);
        EXPECT_GE(stats.health.quarantines, 1u);
        EXPECT_EQ(stats.devices[0].health_state, "quarantined");
    }

    // Phase 2: probes against the still-dead device fail; it stays out.
    server.pump();
    {
        const auto stats = server.stats();
        EXPECT_GE(stats.health.probes_failed, 1u);
        EXPECT_EQ(stats.devices[0].health_state, "quarantined");
    }

    // Phase 3: revive.  The next pump's probe passes, promoting the shard
    // to Probation (routable, ramped weight); a clean batch re-admits it.
    fleet.device(0).set_fault_plan({});
    server.pump();
    {
        const auto stats = server.stats();
        EXPECT_GE(stats.health.probes_passed, 1u);
        EXPECT_EQ(stats.health.probations, 1u);
        EXPECT_EQ(stats.devices[0].health_state, "probation");
    }

    // Serve until device 0 has taken a clean batch again.
    for (unsigned round = 0; round < 8; ++round) {
        std::vector<Server::Ticket> more;
        std::vector<std::vector<float>> expect;
        for (unsigned i = 0; i < 4; ++i) {
            auto job = uniform_job(4, 64 + 16 * i, 100 + round * 4 + i);
            expect.push_back(sorted_rows(job.values, 4, 64 + 16 * i));
            more.push_back(server.submit(std::move(job)));
        }
        server.pump();
        for (std::size_t i = 0; i < more.size(); ++i) {
            Response r = more[i].result.get();
            ASSERT_EQ(r.status, Status::Ok) << r.error;
            EXPECT_EQ(r.values, expect[i]);
        }
        if (server.stats().devices[0].health_state == "healthy") break;
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.devices[0].health_state, "healthy");
    EXPECT_EQ(stats.health.readmissions, 1u);
    EXPECT_EQ(stats.health.hedge_mismatches, 0u);
}

// ---------------------------------------------------------------------------
// Async mode: the watchdog thread and hang recovery.

TEST(HealthServe, AsyncHangIsDetectedAndServiceSurvives) {
    DeviceFleet fleet(2, simt::tiny_device(256 << 20));
    // Device 0 hangs at every launch entry (wall-clock, capped at 50ms).
    // The watchdog must notice the stalled heartbeat, demote the shard and
    // abort the launch; retries exhaust, the shard quarantines, and every
    // request still completes byte-correct on the survivor.
    simt::faults::FaultPlan hang;
    hang.hang_every = 1;
    hang.hang_max_ms = 50.0;
    fleet.device(0).set_fault_plan(hang);

    ServerConfig cfg;
    cfg.health.enabled = true;
    cfg.retry.seed = 23;
    Server server(fleet, cfg);

    std::vector<Server::Ticket> tickets;
    std::vector<std::vector<float>> want;
    for (unsigned i = 0; i < 8; ++i) {
        auto job = uniform_job(4, 64 + 16 * (i % 4), i);
        want.push_back(sorted_rows(job.values, 4, 64 + 16 * (i % 4)));
        tickets.push_back(server.submit(std::move(job)));
    }
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        Response r = tickets[i].result.get();
        ASSERT_EQ(r.status, Status::Ok) << "request " << i << ": " << r.error;
        EXPECT_EQ(r.values, want[i]) << "request " << i;
    }
    server.stop();

    const auto stats = server.stats();
    EXPECT_GE(stats.health.hangs_detected, 1u);
    EXPECT_EQ(stats.health.hedge_mismatches, 0u);
    EXPECT_EQ(stats.completed, 8u);
}

// ---------------------------------------------------------------------------
// The off switch: health disabled is bit-identical to the pre-health server.

TEST(HealthServe, DisabledIsByteIdenticalToEnabledOnFaultFreeTraffic) {
    std::vector<std::vector<float>> bytes_off, bytes_on;
    for (const bool on : {false, true}) {
        auto dev = make_device();
        ServerConfig cfg;
        cfg.manual_pump = true;
        cfg.health.enabled = on;
        Server server(dev, cfg);
        std::vector<Server::Ticket> tickets;
        for (unsigned i = 0; i < 6; ++i) {
            tickets.push_back(server.submit(uniform_job(4, 100, i)));
        }
        server.pump();
        auto& out = on ? bytes_on : bytes_off;
        for (auto& t : tickets) {
            Response r = t.result.get();
            ASSERT_EQ(r.status, Status::Ok) << r.error;
            out.push_back(std::move(r.values));
        }
    }
    EXPECT_EQ(bytes_off, bytes_on);
}

TEST(HealthServe, DisabledReportsZeroedHealthBlock) {
    auto dev = make_device();
    ServerConfig cfg;
    cfg.manual_pump = true;
    Server server(dev, cfg);
    auto t = server.submit(uniform_job(2, 64, 1));
    server.pump();
    EXPECT_TRUE(t.result.get().ok());

    const auto stats = server.stats();
    EXPECT_FALSE(stats.health.enabled);
    EXPECT_EQ(stats.health.shed_total(), 0u);
    EXPECT_EQ(stats.health.brownout_level, 0);
    EXPECT_EQ(stats.devices[0].health_state, "healthy");
    // The JSON block is present either way (schema-stable for dashboards).
    const auto json = server.stats_json();
    EXPECT_NE(json.find("\"health\""), std::string::npos);
    EXPECT_NE(json.find("\"health_state\""), std::string::npos);
    EXPECT_NE(json.find("\"enabled\": false"), std::string::npos);
}

TEST(HealthServe, BackpressureIsSurfacedOnResponses) {
    auto dev = make_device();
    ServerConfig cfg = health_config();
    cfg.queue_capacity = 4;
    Server server(dev, cfg);
    auto a = server.submit(uniform_job(2, 64, 1));
    auto b = server.submit(uniform_job(2, 64, 2));
    server.pump();
    const Response ra = a.result.get();
    const Response rb = b.result.get();
    EXPECT_DOUBLE_EQ(ra.backpressure, 0.0);   // empty queue at its admission
    EXPECT_DOUBLE_EQ(rb.backpressure, 0.25);  // 1 of 4 already queued
}

}  // namespace
