// gas::tune test suite (ISSUE 9): the adaptive autotuner's three layers and
// their serve wiring.
//
// 1. Sketch determinism: the sketch is a pure function of the input bytes,
//    so it must be bit-identical across ExecMode (scalar/warp), host worker
//    counts and ThreadOrders — the axes the execution substrate varies.
// 2. Planner properties: regime classification, cost-model monotonicity,
//    and every candidate plan sorting correctly.
// 3. Controller: convergence on a stationary stream, hysteresis against
//    flapping, and equal-mass key bands from the aggregate sketch.
// 4. auto_tune=off bit-identity: with the flag off (at either level) the
//    direct path, tuned_sort, and the server must reproduce the pre-tune
//    bytes AND kernel log bit-for-bit, across the 15 equivalence workloads.
// 5. Serve integration: graph reuse cache hit/miss/evict accounting, tuned
//    server correctness, the "tune" stats block, and fleet key bands.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/gpu_array_sort.hpp"
#include "core/pair_sort.hpp"
#include "core/ragged_sort.hpp"
#include "fleet/fleet.hpp"
#include "serve/server.hpp"
#include "simt/device.hpp"
#include "thrustlite/device_vector.hpp"
#include "thrustlite/radix_sort.hpp"
#include "tune/controller.hpp"
#include "tune/planner.hpp"
#include "tune/sketch.hpp"
#include "workload/generators.hpp"

namespace {

using workload::Distribution;

/// Compares every deterministic KernelStats field (wall_ms measures host
/// time and is the only field allowed to differ).
void expect_logs_equal(const std::vector<simt::KernelStats>& a,
                       const std::vector<simt::KernelStats>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("kernel #" + std::to_string(i) + ": " + a[i].name);
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].grid_dim, b[i].grid_dim);
        EXPECT_EQ(a[i].block_dim, b[i].block_dim);
        EXPECT_EQ(a[i].shared_bytes_per_block, b[i].shared_bytes_per_block);
        EXPECT_EQ(a[i].totals.ops, b[i].totals.ops);
        EXPECT_EQ(a[i].totals.shared_accesses, b[i].totals.shared_accesses);
        EXPECT_EQ(a[i].totals.coalesced_bytes, b[i].totals.coalesced_bytes);
        EXPECT_EQ(a[i].totals.random_accesses, b[i].totals.random_accesses);
        EXPECT_EQ(a[i].traffic_bytes, b[i].traffic_bytes);
        EXPECT_EQ(a[i].modeled_ms, b[i].modeled_ms);
    }
}

bool rows_sorted(const std::vector<float>& v, std::size_t rows, std::size_t n) {
    for (std::size_t a = 0; a < rows; ++a) {
        if (!std::is_sorted(v.begin() + static_cast<std::ptrdiff_t>(a * n),
                            v.begin() + static_cast<std::ptrdiff_t>((a + 1) * n))) {
            return false;
        }
    }
    return true;
}

/// Output must be the per-row sorted permutation of the input.
void expect_row_permutation(const std::vector<float>& input,
                            const std::vector<float>& output, std::size_t rows,
                            std::size_t n) {
    ASSERT_EQ(input.size(), output.size());
    for (std::size_t a = 0; a < rows; ++a) {
        std::vector<float> want(input.begin() + static_cast<std::ptrdiff_t>(a * n),
                                input.begin() + static_cast<std::ptrdiff_t>((a + 1) * n));
        std::sort(want.begin(), want.end());
        const std::vector<float> got(
            output.begin() + static_cast<std::ptrdiff_t>(a * n),
            output.begin() + static_cast<std::ptrdiff_t>((a + 1) * n));
        ASSERT_EQ(want, got) << "row " << a;
    }
}

gas::tune::Sketch sketch_of(Distribution dist, std::size_t rows = 8,
                            std::size_t n = 2000, std::uint64_t seed = 42) {
    const auto ds = workload::make_dataset(rows, n, dist, seed);
    return gas::tune::sketch_values(ds.values, rows, n);
}

// --- 1. sketch determinism across the execution axes -----------------------

TEST(Sketch, DeterministicAcrossExecModeWorkersAndThreadOrder) {
    const auto ds = workload::make_dataset(8, 1500, Distribution::ZipfHot, 9);
    struct Observed {
        gas::tune::Sketch sketch;
        std::string candidate;
        std::vector<float> bytes;
    };
    std::vector<Observed> runs;
    for (const auto mode : {simt::ExecMode::Scalar, simt::ExecMode::Warp}) {
        for (const unsigned workers : {1u, 4u}) {
            for (const auto order :
                 {simt::ThreadOrder::Forward, simt::ThreadOrder::Reverse}) {
                simt::Device dev(simt::tiny_device(256 << 20));
                dev.set_exec_mode(mode);
                dev.set_host_workers(workers);
                dev.set_thread_order(order);
                auto values = ds.values;
                const auto r = gas::tune::tuned_sort(dev, values, 8, 1500, {});
                runs.push_back({r.sketch, r.plan.candidate, std::move(values)});
            }
        }
    }
    const auto& ref = runs.front();
    for (std::size_t i = 1; i < runs.size(); ++i) {
        SCOPED_TRACE("config #" + std::to_string(i));
        EXPECT_EQ(ref.sketch.histogram, runs[i].sketch.histogram);
        EXPECT_EQ(ref.sketch.min_key, runs[i].sketch.min_key);
        EXPECT_EQ(ref.sketch.max_key, runs[i].sketch.max_key);
        EXPECT_EQ(ref.sketch.sampled, runs[i].sketch.sampled);
        EXPECT_EQ(ref.sketch.distinct_ratio, runs[i].sketch.distinct_ratio);
        EXPECT_EQ(ref.sketch.distinct_keys, runs[i].sketch.distinct_keys);
        EXPECT_EQ(ref.sketch.sortedness, runs[i].sketch.sortedness);
        EXPECT_EQ(ref.candidate, runs[i].candidate);
        EXPECT_EQ(ref.bytes, runs[i].bytes);
    }
}

TEST(Sketch, MergeIsBinWiseAndEmptySafe) {
    const auto a = sketch_of(Distribution::Uniform, 4, 1000, 1);
    const auto b = sketch_of(Distribution::Uniform, 4, 1000, 2);
    gas::tune::Sketch m = a;
    m.merge(b);
    EXPECT_EQ(m.sampled, a.sampled + b.sampled);
    EXPECT_EQ(m.elements, a.elements + b.elements);
    for (std::size_t i = 0; i < gas::tune::Sketch::kBins; ++i) {
        EXPECT_EQ(m.histogram[i], a.histogram[i] + b.histogram[i]);
    }
    gas::tune::Sketch empty;
    gas::tune::Sketch copy = a;
    copy.merge(empty);  // no-op
    EXPECT_EQ(copy.sampled, a.sampled);
    empty.merge(a);  // copies
    EXPECT_EQ(empty.sampled, a.sampled);
    EXPECT_EQ(empty.histogram, a.histogram);
}

TEST(Sketch, SignalsTrackTheirDistributions) {
    EXPECT_GT(sketch_of(Distribution::ZipfHot).hot_fraction(),
              sketch_of(Distribution::Uniform).hot_fraction());
    EXPECT_LT(sketch_of(Distribution::FewDistinct).distinct_ratio, 0.05);
    EXPECT_GT(sketch_of(Distribution::Uniform).distinct_ratio, 0.9);
    EXPECT_GT(sketch_of(Distribution::Sorted).sortedness, 0.99);
    EXPECT_LT(sketch_of(Distribution::Uniform).sortedness, 0.7);
}

// --- 2. planner -------------------------------------------------------------

TEST(Planner, ClassifiesTheFourRegimes) {
    using gas::tune::Regime;
    EXPECT_EQ(gas::tune::classify(sketch_of(Distribution::Uniform)), Regime::Uniform);
    EXPECT_EQ(gas::tune::classify(sketch_of(Distribution::ZipfHot, 16)), Regime::Skewed);
    EXPECT_EQ(gas::tune::classify(sketch_of(Distribution::FewDistinct)),
              Regime::FewDistinct);
    EXPECT_EQ(gas::tune::classify(sketch_of(Distribution::NearlySorted)),
              Regime::NearlySorted);
    // Duplicate density outranks sortedness: constant data is "sorted" too,
    // but its plan must come from the few-distinct family.
    EXPECT_EQ(gas::tune::classify(sketch_of(Distribution::Constant)),
              Regime::FewDistinct);
}

TEST(Planner, CostPerElementGrowsWithArraySizeAtPaperDefaults) {
    // Phase 1's per-array serial sample sort is quadratic in the sample, so
    // at the paper's 10% sampling rate the modeled cost per element must be
    // non-decreasing in n.
    const simt::Device dev(simt::tiny_device(64 << 20));
    const auto sketch = sketch_of(Distribution::Uniform);
    double prev = 0.0;
    for (const std::size_t n : {500u, 1000u, 2000u, 4000u}) {
        const double c =
            gas::tune::predicted_cost_per_element(sketch, n, {}, dev.props());
        EXPECT_GT(c, 0.0);
        EXPECT_GE(c, prev) << "n=" << n;
        prev = c;
    }
}

TEST(Planner, CostPerElementGrowsWithSamplingRate) {
    const simt::Device dev(simt::tiny_device(64 << 20));
    const auto sketch = sketch_of(Distribution::Uniform);
    double prev = 0.0;
    for (const double rate : {0.05, 0.1, 0.2}) {
        gas::Options opts;
        opts.sampling_rate = rate;
        const double c =
            gas::tune::predicted_cost_per_element(sketch, 2000, opts, dev.props());
        EXPECT_GE(c, prev) << "rate=" << rate;
        prev = c;
    }
}

TEST(Planner, PicksHotSplitForThePeriodicAdversary) {
    // ZipfHot hides a hot band from every composite sampling stride; only
    // the prime-stride hot-split candidate resolves it.  With the hybrid
    // phase 3 off (the paper-classic configuration) the unresolved bucket
    // goes quadratic, so the planner must pick hot-split.
    const simt::Device dev(simt::tiny_device(64 << 20));
    gas::Options base;
    base.hybrid_phase3 = false;
    const auto plan =
        gas::tune::plan_sort(sketch_of(Distribution::ZipfHot, 16, 4000), 4000, base,
                             dev.props());
    EXPECT_EQ(plan.candidate, "hot-split");
    EXPECT_EQ(plan.regime, gas::tune::Regime::Skewed);
}

TEST(Planner, BeatsPaperDefaultOnEveryRegime) {
    const simt::Device dev(simt::tiny_device(64 << 20));
    gas::Options base;
    base.hybrid_phase3 = false;
    for (const auto dist : {Distribution::Uniform, Distribution::ZipfHot,
                            Distribution::FewDistinct, Distribution::NearlySorted}) {
        const auto plan = gas::tune::plan_sort(sketch_of(dist, 16, 4000), 4000, base,
                                               dev.props());
        SCOPED_TRACE(workload::to_string(dist));
        EXPECT_NE(plan.candidate, "paper-default");
        double default_cost = 0.0;
        for (const auto& c : plan.considered) {
            if (c.name == "paper-default") default_cost = c.predicted_cost;
        }
        EXPECT_LT(plan.predicted_cost, default_cost);
    }
}

TEST(Planner, EveryCandidatePlanSortsCorrectly) {
    for (const auto dist : {Distribution::Uniform, Distribution::ZipfHot,
                            Distribution::FewDistinct, Distribution::NearlySorted}) {
        SCOPED_TRACE(workload::to_string(dist));
        const auto ds = workload::make_dataset(4, 1200, dist, 5);
        const simt::Device probe(simt::tiny_device(64 << 20));
        const auto candidates = gas::tune::make_candidates(
            gas::tune::sketch_values(ds.values, 4, 1200), 1200, {}, probe.props());
        EXPECT_GE(candidates.size(), 2u);
        for (const auto& c : candidates) {
            SCOPED_TRACE(c.name);
            simt::Device dev(simt::tiny_device(256 << 20));
            auto values = ds.values;
            gas::gpu_array_sort(dev, values, 4, 1200, c.opts);
            expect_row_permutation(ds.values, values, 4, 1200);
        }
    }
}

TEST(Planner, AutoTunedOptionsReturnsBaseVerbatimWhenOff) {
    const simt::Device dev(simt::tiny_device(64 << 20));
    const auto ds = workload::make_dataset(8, 2000, Distribution::Uniform, 3);
    gas::Options base;
    base.auto_tune = false;
    base.bucket_target = 33;  // a deliberately odd fingerprint
    base.sampling_rate = 0.07;
    const auto opts =
        gas::tune::auto_tuned_options(ds.values, 8, 2000, base, dev.props());
    EXPECT_EQ(opts.bucket_target, base.bucket_target);
    EXPECT_EQ(opts.sampling_rate, base.sampling_rate);
    EXPECT_EQ(opts.strategy, base.strategy);
    EXPECT_EQ(opts.threads_per_bucket, base.threads_per_bucket);
    EXPECT_EQ(opts.phase3_small_cutoff, base.phase3_small_cutoff);
    EXPECT_EQ(opts.phase3_bitonic_cutoff, base.phase3_bitonic_cutoff);
    // On, the same data reshapes the plan (2000-element uniform rows leave
    // the paper defaults' quadratic sample sort behind).
    gas::Options on = base;
    on.auto_tune = true;
    const auto tuned = gas::tune::auto_tuned_options(ds.values, 8, 2000, on, dev.props());
    EXPECT_TRUE(tuned.bucket_target != base.bucket_target ||
                tuned.sampling_rate != base.sampling_rate);
}

// --- 3. controller ----------------------------------------------------------

TEST(Controller, ConvergesOnAStationaryStream) {
    simt::Device dev(simt::tiny_device(256 << 20));
    gas::tune::Controller ctrl;
    gas::Options base;
    base.hybrid_phase3 = false;
    std::string last;
    int stable = 0;
    constexpr int kIterations = 12;
    for (int it = 0; it < kIterations; ++it) {
        auto ds = workload::make_dataset(8, 2000, Distribution::Uniform,
                                         static_cast<std::uint64_t>(it + 1));
        const auto sketch = gas::tune::sketch_values(ds.values, 8, 2000);
        const auto plan = ctrl.choose(sketch, 2000, base, dev.props());
        const auto stats = gas::gpu_array_sort(dev, ds.values, 8, 2000, plan.opts);
        ctrl.observe(plan.regime, plan.candidate, stats.modeled_kernel_ms(), 8 * 2000,
                     dev.props());
        EXPECT_TRUE(rows_sorted(ds.values, 8, 2000));
        if (plan.candidate == last) {
            ++stable;
        } else {
            stable = 0;
            last = plan.candidate;
        }
    }
    // Stationary input: the plan settles and stays settled.
    EXPECT_GE(stable, kIterations / 2);
    EXPECT_EQ(ctrl.decisions(), static_cast<std::size_t>(kIterations));
    // The converged incumbent's observed cost is the best observed cell.
    double incumbent_cost = 0.0, best_observed = 1e300;
    for (const auto& c : ctrl.cells()) {
        if (c.observations == 0) continue;
        best_observed = std::min(best_observed, c.observed_ewma);
        if (c.incumbent) incumbent_cost = c.observed_ewma;
    }
    EXPECT_EQ(incumbent_cost, best_observed);
}

TEST(Controller, HysteresisStopsBorderlineFlapping) {
    const simt::Device dev(simt::tiny_device(64 << 20));
    const auto& props = dev.props();
    gas::tune::Controller ctrl;
    const auto sketch = sketch_of(Distribution::Uniform);
    constexpr std::size_t kN = 2000, kElements = 8 * 2000;
    const gas::Options base;
    const auto plan1 = ctrl.choose(sketch, kN, base, props);
    double rival = 1e300;
    for (const auto& c : plan1.considered) {
        if (c.name != plan1.candidate) rival = std::min(rival, c.predicted_cost);
    }
    // observe() normalizes ms back onto the planner's cycles/element scale.
    const double cycles_per_ms =
        props.core_clock_ghz * 1e6 / props.efficiency_derate;
    const auto ms_for = [&](double cost) {
        return cost * static_cast<double>(kElements) / cycles_per_ms;
    };
    // Observed within the 5% hysteresis band of the best rival: stays put.
    ctrl.observe(plan1.regime, plan1.candidate, ms_for(rival * 1.02), kElements, props);
    EXPECT_EQ(ctrl.choose(sketch, kN, base, props).candidate, plan1.candidate);
    EXPECT_EQ(ctrl.plan_switches(), 0u);
    // Observed far worse than the rival: dethroned, exactly one switch.
    for (int i = 0; i < 4; ++i) {
        ctrl.observe(plan1.regime, plan1.candidate, ms_for(rival * 4.0), kElements,
                     props);
    }
    EXPECT_NE(ctrl.choose(sketch, kN, base, props).candidate, plan1.candidate);
    EXPECT_EQ(ctrl.plan_switches(), 1u);
}

TEST(Controller, DisabledOrOptedOutReturnsBaseUntouched) {
    const simt::Device dev(simt::tiny_device(64 << 20));
    const auto sketch = sketch_of(Distribution::Uniform);
    gas::Options base;
    base.bucket_target = 33;
    {
        gas::tune::Controller off(gas::tune::Controller::Config{false, 0.05, 0.3});
        const auto plan = off.choose(sketch, 2000, base, dev.props());
        EXPECT_EQ(plan.candidate, "paper-default");
        EXPECT_EQ(plan.opts.bucket_target, base.bucket_target);
        EXPECT_EQ(off.decisions(), 0u);
    }
    {
        gas::tune::Controller on;
        gas::Options opted_out = base;
        opted_out.auto_tune = false;
        const auto plan = on.choose(sketch, 2000, opted_out, dev.props());
        EXPECT_EQ(plan.candidate, "paper-default");
        EXPECT_EQ(plan.opts.bucket_target, base.bucket_target);
        EXPECT_EQ(on.decisions(), 0u);
    }
}

TEST(Controller, KeyBandsPartitionTheObservedMass) {
    gas::tune::Controller ctrl;
    const simt::Device dev(simt::tiny_device(64 << 20));
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        ctrl.choose(sketch_of(Distribution::Uniform, 8, 2000, seed), 2000, {},
                    dev.props());
    }
    EXPECT_TRUE(ctrl.key_bands(1).empty());
    const auto bands = ctrl.key_bands(4);
    ASSERT_EQ(bands.size(), 3u);  // interior splits only
    EXPECT_TRUE(std::is_sorted(bands.begin(), bands.end()));
    for (const double b : bands) {
        EXPECT_GE(b, 0.0);
        EXPECT_LE(b, gas::tune::Sketch::kDefaultKeySpace);
    }
}

// --- 4. auto_tune=off bit-identity over the 15 equivalence workloads --------
//
// Options::auto_tune must be inert everywhere below gas::tune: flipping it
// cannot change a single byte or KernelStats field of the direct sort paths.
// The workload list mirrors tests/core/test_exec_equivalence.cpp.

gas::Options base_opts(bool tune) {
    gas::Options opts;
    opts.auto_tune = tune;
    return opts;
}

template <typename F>
void tune_off_identity_sweep(F fn) {
    const auto run = [&](bool tune) {
        simt::Device dev(simt::tiny_device(256 << 20));
        auto payload = fn(dev, tune);
        return std::pair{std::move(payload), dev.kernel_log()};
    };
    const auto off = run(false);
    const auto on = run(true);
    EXPECT_EQ(off.first, on.first);
    expect_logs_equal(off.second, on.second);
}

TEST(TuneOffIdentity, FifteenEquivalenceWorkloads) {
    // 1 array sort + verify
    tune_off_identity_sweep([](simt::Device& dev, bool tune) {
        auto ds = workload::make_dataset(16, 500);
        auto opts = base_opts(tune);
        opts.verify_output = true;
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
        return ds.values;
    });
    // 2 uint32 keys
    tune_off_identity_sweep([](simt::Device& dev, bool tune) {
        auto ds = workload::make_dataset(8, 300);
        std::vector<std::uint32_t> data(ds.values.size());
        for (std::size_t i = 0; i < data.size(); ++i) {
            data[i] = static_cast<std::uint32_t>(ds.values[i] * 1e6f);
        }
        gas::gpu_array_sort(dev, data, ds.num_arrays, ds.array_size, base_opts(tune));
        return data;
    });
    // 3 descending
    tune_off_identity_sweep([](simt::Device& dev, bool tune) {
        auto ds = workload::make_dataset(8, 300, Distribution::Normal);
        auto opts = base_opts(tune);
        opts.order = gas::SortOrder::Descending;
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
        return ds.values;
    });
    // 4 binary-search strategy
    tune_off_identity_sweep([](simt::Device& dev, bool tune) {
        auto ds = workload::make_dataset(8, 500);
        auto opts = base_opts(tune);
        opts.strategy = gas::BucketingStrategy::BinarySearch;
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
        return ds.values;
    });
    // 5 threads-per-bucket
    tune_off_identity_sweep([](simt::Device& dev, bool tune) {
        auto ds = workload::make_dataset(8, 500);
        auto opts = base_opts(tune);
        opts.threads_per_bucket = 2;
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
        return ds.values;
    });
    // 6 small-array fast path
    tune_off_identity_sweep([](simt::Device& dev, bool tune) {
        auto ds = workload::make_dataset(32, 8);
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size,
                            base_opts(tune));
        return ds.values;
    });
    // 7 global-scratch fallback
    tune_off_identity_sweep([](simt::Device& dev, bool tune) {
        auto ds = workload::make_dataset(2, 20000);
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size,
                            base_opts(tune));
        return ds.values;
    });
    // 8 pair sort
    tune_off_identity_sweep([](simt::Device& dev, bool tune) {
        auto keys = workload::make_dataset(8, 400, Distribution::Uniform, 7);
        auto vals = workload::make_dataset(8, 400, Distribution::Uniform, 8);
        gas::gpu_pair_sort(dev, keys.values, vals.values, 8, 400, base_opts(tune));
        auto out = keys.values;
        out.insert(out.end(), vals.values.begin(), vals.values.end());
        return out;
    });
    // 9 ragged sort
    tune_off_identity_sweep([](simt::Device& dev, bool tune) {
        auto ds = workload::make_ragged_dataset(12, 16, 512);
        std::vector<std::uint64_t> offsets(ds.offsets.begin(), ds.offsets.end());
        gas::gpu_ragged_sort(dev, ds.values, offsets, base_opts(tune));
        return ds.values;
    });
    // 10 ragged pair sort
    tune_off_identity_sweep([](simt::Device& dev, bool tune) {
        auto ds = workload::make_ragged_dataset(10, 16, 256, Distribution::Uniform, 5);
        auto vs = ds.values;
        std::reverse(vs.begin(), vs.end());
        std::vector<std::uint64_t> offsets(ds.offsets.begin(), ds.offsets.end());
        gas::gpu_ragged_pair_sort(dev, std::span<float>(ds.values),
                                  std::span<float>(vs), offsets, base_opts(tune));
        auto out = ds.values;
        out.insert(out.end(), vs.begin(), vs.end());
        return out;
    });
    const auto hybrid_forced = [](bool tune) {
        auto opts = base_opts(tune);
        opts.phase3_small_cutoff = 16;
        opts.phase3_bitonic_cutoff = 64;
        return opts;
    };
    // 11 hybrid skew array
    tune_off_identity_sweep([&](simt::Device& dev, bool tune) {
        auto ds = workload::make_dataset(8, 600, Distribution::ZipfHot, 3);
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size,
                            hybrid_forced(tune));
        return ds.values;
    });
    // 12 hybrid skew ragged
    tune_off_identity_sweep([&](simt::Device& dev, bool tune) {
        auto ds = workload::make_ragged_dataset(10, 64, 512, Distribution::ZipfHot, 6);
        std::vector<std::uint64_t> offsets(ds.offsets.begin(), ds.offsets.end());
        gas::gpu_ragged_sort(dev, ds.values, offsets, hybrid_forced(tune));
        return ds.values;
    });
    // 13 hybrid skew pairs
    tune_off_identity_sweep([&](simt::Device& dev, bool tune) {
        auto keys = workload::make_dataset(6, 500, Distribution::ZipfHot, 7);
        auto vals = workload::make_dataset(6, 500, Distribution::Uniform, 8);
        gas::gpu_pair_sort(dev, keys.values, vals.values, 6, 500, hybrid_forced(tune));
        auto out = keys.values;
        out.insert(out.end(), vals.values.begin(), vals.values.end());
        return out;
    });
    const auto pseudo_u32 = [](std::size_t count, std::uint64_t seed) {
        std::vector<std::uint32_t> v(count);
        std::uint64_t state = seed * 0x9e3779b97f4a7c15ull + 1;
        for (auto& x : v) {
            state = state * 6364136223846793005ull + 1442695040888963407ull;
            x = static_cast<std::uint32_t>(state >> 32);
        }
        return v;
    };
    // 14 radix u32 (RadixOptions carries no auto_tune; the flag must still
    // leave the thrustlite substrate untouched end to end)
    tune_off_identity_sweep([&](simt::Device& dev, bool) {
        thrustlite::device_vector<std::uint32_t> keys(dev, pseudo_u32(10001, 1));
        thrustlite::stable_sort(dev, keys.span(), {});
        return keys.to_host();
    });
    // 15 radix by key
    tune_off_identity_sweep([&](simt::Device& dev, bool) {
        const auto host_keys = pseudo_u32(9000, 3);
        std::vector<std::uint32_t> host_vals(host_keys.size());
        for (std::size_t i = 0; i < host_vals.size(); ++i) {
            host_vals[i] = static_cast<std::uint32_t>(i);
        }
        thrustlite::device_vector<std::uint32_t> keys(dev, host_keys);
        thrustlite::device_vector<std::uint32_t> vals(dev, host_vals);
        thrustlite::stable_sort_by_key(dev, keys.span(), vals.span(), {});
        auto out = keys.to_host();
        const auto v = vals.to_host();
        out.insert(out.end(), v.begin(), v.end());
        return out;
    });
}

TEST(TuneOffIdentity, TunedSortWithAutoTuneOffIsExactlyGpuArraySort) {
    const auto ds = workload::make_dataset(8, 1000, Distribution::ZipfHot, 4);
    gas::Options base;
    base.auto_tune = false;

    simt::Device direct_dev(simt::tiny_device(256 << 20));
    auto direct = ds.values;
    gas::gpu_array_sort(direct_dev, direct, 8, 1000, base);

    simt::Device tuned_dev(simt::tiny_device(256 << 20));
    auto tuned = ds.values;
    const auto r = gas::tune::tuned_sort(tuned_dev, tuned, 8, 1000, base);

    EXPECT_EQ(direct, tuned);
    expect_logs_equal(direct_dev.kernel_log(), tuned_dev.kernel_log());
    EXPECT_EQ(r.plan.candidate, "paper-default");
    EXPECT_EQ(r.sketch_modeled_ms, 0.0);
}

// --- 5. serve integration ---------------------------------------------------

gas::serve::Job uniform_job(std::size_t arrays, std::size_t n, Distribution dist,
                            std::uint64_t seed, bool auto_tune = true) {
    gas::serve::Job job;
    job.kind = gas::serve::JobKind::Uniform;
    job.num_arrays = arrays;
    job.array_size = n;
    job.values = workload::make_dataset(arrays, n, dist, seed).values;
    job.opts.auto_tune = auto_tune;
    return job;
}

TEST(ServeTune, AutoTuneOffServerReproducesTheDirectKernelLog) {
    // The strongest seed pin available in-tree: with tuning off, a
    // single-request batch through the server (graph reuse cache and all)
    // must emit exactly the kernel log of a direct gpu_array_sort — bytes,
    // names, shapes, modeled stats — in both sort orders.
    for (const auto order : {gas::SortOrder::Ascending, gas::SortOrder::Descending}) {
        SCOPED_TRACE(order == gas::SortOrder::Ascending ? "asc" : "desc");
        const auto ds = workload::make_dataset(4, 500, Distribution::Uniform, 6);

        simt::Device direct_dev(simt::tiny_device(256 << 20));
        auto direct = ds.values;
        gas::Options opts;
        opts.order = order;
        gas::gpu_array_sort(direct_dev, direct, 4, 500, opts);

        simt::Device serve_dev(simt::tiny_device(256 << 20));
        gas::serve::ServerConfig cfg;
        cfg.manual_pump = true;
        cfg.auto_tune = false;
        gas::serve::Server server(serve_dev, cfg);
        auto job = uniform_job(4, 500, Distribution::Uniform, 6);
        job.opts.order = order;
        auto ticket = server.submit(std::move(job));
        server.pump();
        const auto r = ticket.result.get();
        ASSERT_TRUE(r.ok());
        server.stop();

        EXPECT_EQ(direct, r.values);
        expect_logs_equal(direct_dev.kernel_log(), serve_dev.kernel_log());
        const auto st = server.stats();
        EXPECT_FALSE(st.tune_enabled);
        EXPECT_EQ(st.tune_decisions, 0u);
        EXPECT_EQ(st.tuned_batches, 0u);
        EXPECT_EQ(st.tune_sketch_ms, 0.0);
    }
}

TEST(ServeTune, GraphReuseCacheCountsHitsMissesAndEvictions) {
    simt::Device dev(simt::tiny_device(256 << 20));
    gas::serve::ServerConfig cfg;
    cfg.manual_pump = true;
    cfg.auto_tune = false;  // pin the plan so the fingerprint is stationary
    gas::serve::Server server(dev, cfg);
    const auto wave = [&](std::size_t n, std::uint64_t seed) {
        std::vector<gas::serve::Server::Ticket> tickets;
        for (std::uint64_t r = 0; r < 3; ++r) {
            tickets.push_back(
                server.submit(uniform_job(2, n, Distribution::Uniform, seed * 16 + r)));
        }
        server.pump();
        for (auto& t : tickets) {
            const auto resp = t.result.get();
            ASSERT_TRUE(resp.ok());
            EXPECT_TRUE(rows_sorted(resp.values, 2, n));
        }
    };
    wave(300, 1);
    wave(300, 2);
    wave(300, 3);
    auto st = server.stats();
    EXPECT_EQ(st.graph_cache_misses, 1u);
    EXPECT_EQ(st.graph_cache_hits, 2u);
    EXPECT_EQ(st.graph_cache_evictions, 0u);
    EXPECT_GT(st.graph_cache_hit_rate(), 0.5);
    EXPECT_NE(st.to_json().find("\"cache_hit_rate\""), std::string::npos);

    wave(400, 4);  // shape change: evicts and rebuilds
    st = server.stats();
    EXPECT_EQ(st.graph_cache_misses, 2u);
    EXPECT_EQ(st.graph_cache_evictions, 1u);
    server.stop();
}

TEST(ServeTune, TunedServerServesEveryRegimeCorrectly) {
    simt::Device dev(simt::tiny_device(512 << 20));
    gas::serve::ServerConfig cfg;
    cfg.manual_pump = true;
    gas::serve::Server server(dev, cfg);
    std::vector<std::pair<gas::serve::Server::Ticket, std::vector<float>>> live;
    std::uint64_t seed = 1;
    for (int round = 0; round < 2; ++round) {
        for (const auto dist : {Distribution::Uniform, Distribution::ZipfHot,
                                Distribution::FewDistinct, Distribution::NearlySorted}) {
            auto job = uniform_job(8, 1500, dist, seed++);
            job.opts.hybrid_phase3 = false;
            auto input = job.values;
            live.emplace_back(server.submit(std::move(job)), std::move(input));
            server.pump();
        }
    }
    for (auto& [ticket, input] : live) {
        const auto r = ticket.result.get();
        ASSERT_TRUE(r.ok());
        expect_row_permutation(input, r.values, 8, 1500);
    }
    const auto st = server.stats();
    EXPECT_TRUE(st.tune_enabled);
    EXPECT_GT(st.tune_decisions, 0u);
    EXPECT_GT(st.tuned_batches, 0u);
    EXPECT_GT(st.tune_sketch_ms, 0.0);
    EXPECT_FALSE(st.tune_cells.empty());
    const auto json = st.to_json();
    EXPECT_NE(json.find("\"tune\""), std::string::npos);
    EXPECT_NE(json.find("\"cells\""), std::string::npos);
    EXPECT_NE(json.find("\"incumbent\""), std::string::npos);
    server.stop();
}

TEST(ServeTune, FleetKeyBandsAndQueueDepthEwma) {
    gas::fleet::DeviceFleet fleet(3);
    gas::serve::ServerConfig cfg;
    cfg.manual_pump = true;
    cfg.route_policy = gas::fleet::RoutePolicy::KeyRange;
    gas::serve::Server server(fleet, cfg);
    std::vector<gas::serve::Server::Ticket> tickets;
    for (std::uint64_t r = 0; r < 12; ++r) {
        tickets.push_back(server.submit(uniform_job(4, 800, Distribution::Uniform, r + 1)));
    }
    server.pump();
    for (auto& t : tickets) {
        const auto resp = t.result.get();
        ASSERT_TRUE(resp.ok());
        EXPECT_TRUE(rows_sorted(resp.values, 4, 800));
    }
    const auto st = server.stats();
    // The KeyRange router now runs on data-driven bands recomputed from the
    // fleet-level aggregate sketch: one upper bound per device, ascending,
    // closed by the key-space bound.
    ASSERT_EQ(st.key_bands.size(), 3u);
    EXPECT_TRUE(std::is_sorted(st.key_bands.begin(), st.key_bands.end()));
    EXPECT_EQ(st.key_bands.back(), cfg.key_space_max);
    EXPECT_NE(st.to_json().find("\"key_bands\""), std::string::npos);
    double max_ewma = 0.0;
    for (const auto& d : st.devices) max_ewma = std::max(max_ewma, d.queue_depth_ewma);
    EXPECT_GT(max_ewma, 0.0);
    server.stop();
}

TEST(ServeTune, PairBatchesAreNeverTuned) {
    simt::Device dev(simt::tiny_device(256 << 20));
    gas::serve::ServerConfig cfg;
    cfg.manual_pump = true;
    gas::serve::Server server(dev, cfg);
    gas::serve::Job job;
    job.kind = gas::serve::JobKind::Pairs;
    job.num_arrays = 4;
    job.array_size = 400;
    job.values = workload::make_dataset(4, 400, Distribution::Uniform, 7).values;
    job.payload.resize(job.values.size());
    for (std::size_t i = 0; i < job.payload.size(); ++i) {
        job.payload[i] = static_cast<float>(i);
    }
    auto ticket = server.submit(std::move(job));
    server.pump();
    const auto r = ticket.result.get();
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(rows_sorted(r.values, 4, 400));
    const auto st = server.stats();
    EXPECT_EQ(st.tune_decisions, 0u);
    EXPECT_EQ(st.tune_sketch_ms, 0.0);
    server.stop();
}

}  // namespace
