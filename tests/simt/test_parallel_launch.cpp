// Multi-worker host simulation: any worker count must produce bit-identical
// functional results AND bit-identical modeled costs (per-block records are
// aggregated in block order).

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "baseline/sta_sort.hpp"
#include "core/gpu_array_sort.hpp"
#include "simt/device.hpp"
#include "simt/device_buffer.hpp"
#include "workload/generators.hpp"

namespace {

TEST(ParallelLaunch, EveryBlockRunsExactlyOnce) {
    simt::Device dev(simt::tiny_device(1 << 20));
    dev.set_host_workers(4);
    std::vector<std::atomic<int>> visits(64);
    dev.launch({"count", 64, 8}, [&](simt::BlockCtx& blk) {
        blk.single_thread([&](simt::ThreadCtx&) { ++visits[blk.block_idx()]; });
    });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelLaunch, SlotsAreUniquePerWorker) {
    simt::Device dev(simt::tiny_device(1 << 20));
    dev.set_host_workers(3);
    std::vector<std::atomic<unsigned>> slot_of(32);
    dev.launch({"slots", 32, 1}, [&](simt::BlockCtx& blk) {
        EXPECT_LT(blk.slot(), 3u);
        slot_of[blk.block_idx()] = blk.slot() + 1;
    });
    for (const auto& s : slot_of) EXPECT_GE(s.load(), 1u);
}

TEST(ParallelLaunch, ModeledCostsAreWorkerCountInvariant) {
    auto run = [](unsigned workers) {
        simt::Device dev(simt::tiny_device(16 << 20));
        dev.set_host_workers(workers);
        simt::DeviceBuffer<float> buf(dev, 64 * 256);
        auto span = buf.span();
        const auto stats = dev.launch({"work", 64, 32}, [&](simt::BlockCtx& blk) {
            blk.for_each_thread([&](simt::ThreadCtx& tc) {
                // Block-dependent, slot-independent work.
                const std::size_t base = blk.block_idx() * 256u;
                for (std::size_t i = tc.tid(); i < 256; i += 32) {
                    span[base + i] = static_cast<float>(base + i);
                }
                tc.ops(10 + blk.block_idx());
                tc.global_coalesced(8 * (1 + blk.block_idx() % 3));
                tc.global_random(blk.block_idx() % 2);
            });
        });
        return std::tuple{stats.modeled_ms, stats.compute_ms, stats.traffic_bytes,
                          stats.totals.ops};
    };
    const auto seq = run(1);
    EXPECT_EQ(seq, run(2));
    EXPECT_EQ(seq, run(4));
    EXPECT_EQ(seq, run(7));
}

TEST(ParallelLaunch, FullSortMatchesSequentialBitForBit) {
    auto run = [](unsigned workers) {
        simt::Device dev(simt::tiny_device(128 << 20));
        dev.set_host_workers(workers);
        auto ds = workload::make_dataset(40, 800, workload::Distribution::Uniform, 17);
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
        return std::pair{ds.values, dev.total_modeled_ms()};
    };
    const auto seq = run(1);
    const auto par = run(4);
    EXPECT_EQ(seq.first, par.first);
    EXPECT_DOUBLE_EQ(seq.second, par.second);
}

TEST(ParallelLaunch, GlobalScratchFallbackIsSlotSafe) {
    // Arrays too large for shared memory use one scratch row per slot; with
    // several workers, concurrent blocks must not stomp each other's rows.
    auto run = [](unsigned workers) {
        simt::Device dev(simt::tiny_device(256 << 20));
        dev.set_host_workers(workers);
        auto ds = workload::make_dataset(12, 20000, workload::Distribution::Uniform, 23);
        gas::Options opts;
        opts.validate = true;
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
        return ds.values;
    };
    EXPECT_EQ(run(1), run(4));
}

TEST(ParallelLaunch, StaMatchesSequential) {
    auto run = [](unsigned workers) {
        simt::Device dev(simt::tiny_device(128 << 20));
        dev.set_host_workers(workers);
        auto ds = workload::make_dataset(16, 700, workload::Distribution::Normal, 29);
        sta::sta_sort(dev, ds.values, ds.num_arrays, ds.array_size);
        return ds.values;
    };
    EXPECT_EQ(run(1), run(3));
}

TEST(ParallelLaunch, ExceptionsPropagateFromWorkers) {
    simt::Device dev(simt::tiny_device(1 << 20));
    dev.set_host_workers(4);
    EXPECT_THROW(dev.launch({"boom", 32, 1},
                            [&](simt::BlockCtx& blk) {
                                if (blk.block_idx() == 17) {
                                    throw std::runtime_error("kernel failure");
                                }
                            }),
                 std::runtime_error);
}

TEST(ParallelLaunch, WorkerCountClampsToGrid) {
    simt::Device dev(simt::tiny_device(1 << 20));
    dev.set_host_workers(16);
    // 2 blocks, 16 requested workers: only as many workers as blocks spawn,
    // so slots stay below the grid size.
    std::atomic<int> ran{0};
    dev.launch({"tiny", 2, 1}, [&](simt::BlockCtx& blk) {
        EXPECT_LT(blk.slot(), 2u);
        ++ran;
    });
    EXPECT_EQ(ran.load(), 2);
}

TEST(ParallelLaunch, ZeroWorkerRequestClampsToOne) {
    simt::Device dev(simt::tiny_device(1 << 20));
    dev.set_host_workers(0);
    EXPECT_EQ(dev.host_workers(), 1u);
}

}  // namespace
