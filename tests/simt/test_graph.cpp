// simt::Graph + Device::submit: DAG construction diagnostics, deterministic
// execution order, dynamic enqueue, conditional nodes, the bit-identical
// stats contract against the loop-of-launches path, and fault-hook parity.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <tuple>
#include <string>
#include <vector>

#include "simt/device.hpp"
#include "simt/device_buffer.hpp"
#include "simt/faults/plan.hpp"
#include "simt/graph.hpp"

namespace {

using simt::BlockCtx;
using simt::Device;
using simt::Graph;
using simt::GraphCtx;
using simt::GraphError;
using simt::KernelStats;
using simt::LaunchConfig;
using simt::ThreadCtx;

void expect_stats_equal(const KernelStats& a, const KernelStats& b) {
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.grid_dim, b.grid_dim);
    EXPECT_EQ(a.block_dim, b.block_dim);
    EXPECT_EQ(a.shared_bytes_per_block, b.shared_bytes_per_block);
    EXPECT_EQ(a.totals.ops, b.totals.ops);
    EXPECT_EQ(a.totals.shared_accesses, b.totals.shared_accesses);
    EXPECT_EQ(a.totals.coalesced_bytes, b.totals.coalesced_bytes);
    EXPECT_EQ(a.totals.random_accesses, b.totals.random_accesses);
    EXPECT_DOUBLE_EQ(a.traffic_bytes, b.traffic_bytes);
    EXPECT_DOUBLE_EQ(a.compute_ms, b.compute_ms);
    EXPECT_DOUBLE_EQ(a.memory_ms, b.memory_ms);
    EXPECT_DOUBLE_EQ(a.modeled_ms, b.modeled_ms);
    EXPECT_DOUBLE_EQ(a.warp_max_cycles, b.warp_max_cycles);
    EXPECT_DOUBLE_EQ(a.warp_mean_cycles, b.warp_mean_cycles);
    EXPECT_DOUBLE_EQ(a.imbalance, b.imbalance);
}

TEST(Graph, RejectsUnknownDependencyIds) {
    Graph g;
    const auto a = g.add_kernel({"a", 1, 1}, [](BlockCtx&) {});
    EXPECT_THROW(g.add_kernel({"b", 1, 1}, [](BlockCtx&) {}, {a + 7}), GraphError);
    EXPECT_THROW(g.add_edge(a, 42), GraphError);
    EXPECT_THROW(g.add_edge(42, a), GraphError);
}

TEST(Graph, RejectsSelfEdgesAndCycles) {
    Graph g;
    const auto a = g.add_kernel({"a", 1, 1}, [](BlockCtx&) {});
    const auto b = g.add_kernel({"b", 1, 1}, [](BlockCtx&) {}, {a});
    EXPECT_THROW(g.add_edge(a, a), GraphError);
    g.add_edge(b, a);  // closes the cycle a -> b -> a
    EXPECT_THROW(g.validate(), GraphError);
    Device dev(simt::tiny_device(1 << 20));
    EXPECT_THROW(dev.submit(g), GraphError);
}

TEST(Graph, CycleDiagnosticNamesANodeOnTheCycle) {
    Graph g;
    const auto a = g.add_kernel({"alpha", 1, 1}, [](BlockCtx&) {});
    const auto b = g.add_kernel({"beta", 1, 1}, [](BlockCtx&) {}, {a});
    g.add_edge(b, a);
    try {
        g.validate();
        FAIL() << "expected GraphError";
    } catch (const GraphError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("cycle"), std::string::npos) << what;
        EXPECT_TRUE(what.find("alpha") != std::string::npos ||
                    what.find("beta") != std::string::npos)
            << what;
    }
}

TEST(Graph, ExecutesReadyNodesInAscendingIdOrder) {
    // A diamond plus an independent straggler: execution order must be the
    // unique ascending-id topological order regardless of worker count.
    for (const unsigned workers : {1u, 4u}) {
        Device dev(simt::tiny_device(1 << 20));
        dev.set_host_workers(workers);
        Graph g;
        const auto root = g.add_kernel({"root", 1, 1}, [](BlockCtx&) {});
        const auto left = g.add_kernel({"left", 1, 1}, [](BlockCtx&) {}, {root});
        const auto right = g.add_kernel({"right", 1, 1}, [](BlockCtx&) {}, {root});
        const auto join = g.add_kernel({"join", 1, 1}, [](BlockCtx&) {}, {left, right});
        const auto lone = g.add_kernel({"lone", 1, 1}, [](BlockCtx&) {});
        dev.submit(g);
        ASSERT_EQ(dev.kernel_log().size(), 5u);
        EXPECT_EQ(dev.kernel_log()[0].name, "root");
        EXPECT_EQ(dev.kernel_log()[1].name, "left");
        EXPECT_EQ(dev.kernel_log()[2].name, "right");
        EXPECT_EQ(dev.kernel_log()[3].name, "join");
        EXPECT_EQ(dev.kernel_log()[4].name, "lone");
        for (const auto id : {root, left, right, join, lone}) {
            EXPECT_TRUE(g.executed(id));
        }
    }
}

TEST(Graph, DependenciesOrderSideEffects) {
    // A 3-node chain incrementing a counter: each node observes the value
    // its predecessor left, proving edges serialize execution.
    Device dev(simt::tiny_device(1 << 20), simt::DeviceMemory::Mode::Backed, 4);
    simt::DeviceBuffer<int> buf(dev, 1);
    const auto s = buf.span();
    s[0] = 0;
    Graph g;
    Graph::NodeId prev = 0;
    for (int step = 0; step < 3; ++step) {
        std::vector<Graph::NodeId> deps;
        if (step > 0) deps.push_back(prev);
        prev = g.add_kernel({"chain", 4, 8},
                            [s](BlockCtx& blk) {
                                blk.single_thread([&](ThreadCtx&) {
                                    if (blk.block_idx() == 0) ++s[0];
                                });
                            },
                            deps);
    }
    dev.submit(g);
    EXPECT_EQ(s[0], 3);
}

TEST(Graph, StatsMatchLoopOfLaunchesBitForBit) {
    // The same 3-kernel pipeline via the loop path and via one submit, in
    // both exec modes and several worker counts: per-node KernelStats must
    // match the corresponding launch on every deterministic field.
    for (const auto mode : {simt::ExecMode::Scalar, simt::ExecMode::Warp}) {
        for (const unsigned workers : {1u, 3u, 8u}) {
            const auto body_a = [](BlockCtx& blk) {
                blk.for_each_thread([&](ThreadCtx& tc) { tc.ops(3 + tc.tid() % 5); });
            };
            const auto body_b = [](BlockCtx& blk) {
                auto sh = blk.shared_alloc<int>(32);
                blk.for_each_thread([&](ThreadCtx& tc) {
                    // One writer per slot: the suite also runs under
                    // GAS_SANITIZE_RUNTIME=strict, where a racy slot aborts.
                    if (tc.tid() < 32) sh[tc.tid()] = static_cast<int>(tc.tid());
                    tc.shared(2);
                    tc.global_coalesced(64);
                });
            };
            const auto body_c = [](BlockCtx& blk) {
                blk.for_each_thread([&](ThreadCtx& tc) { tc.global_random(1 + tc.tid() % 3); });
            };

            Device loop_dev(simt::tiny_device(1 << 20));
            loop_dev.set_exec_mode(mode);
            loop_dev.set_host_workers(workers);
            const auto la = loop_dev.launch({"a", 7, 64}, body_a);
            const auto lb = loop_dev.launch({"b", 5, 64}, body_b);
            const auto lc = loop_dev.launch({"c", 3, 32}, body_c);

            Device graph_dev(simt::tiny_device(1 << 20));
            graph_dev.set_exec_mode(mode);
            graph_dev.set_host_workers(workers);
            Graph g;
            const auto na = g.add_kernel({"a", 7, 64}, body_a);
            const auto nb = g.add_kernel({"b", 5, 64}, body_b, {na});
            const auto nc = g.add_kernel({"c", 3, 32}, body_c, {nb});
            const auto stats = graph_dev.submit(g);

            expect_stats_equal(g.kernel_stats(na), la);
            expect_stats_equal(g.kernel_stats(nb), lb);
            expect_stats_equal(g.kernel_stats(nc), lc);
            ASSERT_EQ(graph_dev.kernel_log().size(), loop_dev.kernel_log().size());
            for (std::size_t i = 0; i < loop_dev.kernel_log().size(); ++i) {
                expect_stats_equal(graph_dev.kernel_log()[i], loop_dev.kernel_log()[i]);
            }
            EXPECT_EQ(stats.kernel_nodes, 3u);
            EXPECT_EQ(stats.nodes_executed, 3u);
        }
    }
}

TEST(Graph, HostNodeDynamicEnqueueRunsEmittedChain) {
    // The launcher-node pattern: a host node emits per-pass records that
    // the scheduler drains without another host round-trip.
    Device dev(simt::tiny_device(1 << 20), simt::DeviceMemory::Mode::Backed, 4);
    simt::DeviceBuffer<int> buf(dev, 4);
    const auto s = buf.span();
    std::fill(s.begin(), s.end(), 0);
    Graph g;
    const auto launcher = g.add_host("launcher", [s](GraphCtx& ctx) {
        Graph::NodeId prev = ctx.self();
        for (int pass = 0; pass < 4; ++pass) {
            prev = ctx.enqueue_kernel({"pass", 1, 1},
                                      [s, pass](BlockCtx& blk) {
                                          blk.single_thread([&](ThreadCtx&) {
                                              s[pass] = pass == 0 ? 1 : s[pass - 1] + 1;
                                          });
                                      },
                                      {prev});
        }
    });
    const auto stats = dev.submit(g);
    EXPECT_TRUE(g.executed(launcher));
    EXPECT_EQ(stats.host_nodes, 1u);
    EXPECT_EQ(stats.kernel_nodes, 4u);
    EXPECT_EQ(stats.device_enqueued, 4u);
    EXPECT_EQ(std::vector<int>(s.begin(), s.end()), (std::vector<int>{1, 2, 3, 4}));
}

TEST(Graph, ConditionalNodePrunesWithoutBlockingDependents) {
    Device dev(simt::tiny_device(1 << 20));
    std::atomic<int> ran{0};
    Graph g;
    const auto gated = g.add_kernel_if(
        {"gated", 2, 4}, [&](BlockCtx&) { ran.fetch_add(1); }, [] { return false; });
    const auto after = g.add_kernel({"after", 1, 1}, [](BlockCtx&) {}, {gated});
    const auto stats = dev.submit(g);
    EXPECT_EQ(ran.load(), 0);
    EXPECT_TRUE(g.pruned(gated));
    EXPECT_TRUE(g.executed(after));
    EXPECT_EQ(stats.pruned, 1u);
    EXPECT_EQ(stats.kernel_nodes, 1u);
    // A pruned kernel never reaches the log and has no stats.
    ASSERT_EQ(dev.kernel_log().size(), 1u);
    EXPECT_EQ(dev.kernel_log()[0].name, "after");
    EXPECT_THROW(std::ignore = g.kernel_stats(gated), GraphError);
}

TEST(Graph, HostPruneAccountingReachesTelemetry) {
    Device dev(simt::tiny_device(1 << 20));
    Graph g;
    g.add_host("decide", [](GraphCtx& ctx) { ctx.prune(3); });
    const auto stats = dev.submit(g);
    EXPECT_EQ(stats.pruned, 3u);
    EXPECT_EQ(dev.graph_telemetry().pruned, 3u);
    EXPECT_EQ(dev.graph_telemetry().graphs, 1u);
}

TEST(Graph, TelemetryAccumulatesAcrossSubmits) {
    Device dev(simt::tiny_device(1 << 20));
    Graph g;
    g.add_kernel({"k", 2, 2}, [](BlockCtx&) {});
    g.add_host("h", [](GraphCtx& ctx) { ctx.enqueue_kernel({"dyn", 1, 1}, [](BlockCtx&) {}); });
    dev.submit(g);
    dev.submit(g);  // resubmission resets runtime state and dynamic nodes
    const auto& t = dev.graph_telemetry();
    EXPECT_EQ(t.graphs, 2u);
    EXPECT_EQ(t.kernel_nodes, 4u);
    EXPECT_EQ(t.host_nodes, 2u);
    EXPECT_EQ(t.nodes, 6u);
    EXPECT_EQ(t.device_enqueued, 2u);
    EXPECT_EQ(dev.kernel_log().size(), 4u);
    dev.clear_graph_telemetry();
    EXPECT_EQ(dev.graph_telemetry().graphs, 0u);
}

TEST(Graph, KernelExceptionPropagatesAndTeamSurvives) {
    for (const unsigned workers : {1u, 4u}) {
        Device dev(simt::tiny_device(1 << 20));
        dev.set_host_workers(workers);
        Graph g;
        g.add_kernel({"boom", 8, 4}, [](BlockCtx& blk) {
            if (blk.block_idx() == 3) throw std::runtime_error("kernel body failed");
        });
        EXPECT_THROW(dev.submit(g), std::runtime_error);
        // The device (and its worker pool) must remain usable.
        const auto k = dev.launch({"ok", 4, 4}, [](BlockCtx&) {});
        EXPECT_EQ(k.grid_dim, 4u);
    }
}

TEST(Graph, LaunchFaultHooksFirePerKernelNode) {
    // An injected fault refusing the 2nd launch must refuse the 2nd graph
    // node exactly as it refuses the 2nd loop launch.
    simt::faults::FaultPlan plan;
    plan.launch_fail_at = {2};
    Device dev(simt::tiny_device(1 << 20));
    dev.set_fault_plan(plan);
    Graph g;
    const auto a = g.add_kernel({"a", 1, 1}, [](BlockCtx&) {});
    g.add_kernel({"b", 1, 1}, [](BlockCtx&) {}, {a});
    EXPECT_THROW(dev.submit(g), simt::LaunchFault);
    ASSERT_EQ(dev.kernel_log().size(), 1u);  // refused node never logged
    EXPECT_EQ(dev.kernel_log()[0].name, "a");
}

TEST(Graph, RejectsMutationWhileExecuting) {
    Device dev(simt::tiny_device(1 << 20));
    Graph g;
    g.add_host("mutate", [&g](GraphCtx&) {
        g.add_kernel({"late", 1, 1}, [](BlockCtx&) {});
    });
    EXPECT_THROW(dev.submit(g), GraphError);
}

TEST(Graph, StatsQueriesValidateNodeState) {
    Device dev(simt::tiny_device(1 << 20));
    Graph g;
    const auto h = g.add_host("h", [](GraphCtx&) {});
    const auto k = g.add_kernel({"k", 1, 1}, [](BlockCtx&) {});
    EXPECT_THROW(std::ignore = g.kernel_stats(k), GraphError);  // not yet executed
    dev.submit(g);
    EXPECT_NO_THROW(std::ignore = g.kernel_stats(k));
    EXPECT_THROW(std::ignore = g.kernel_stats(h), GraphError);  // host nodes have none
    EXPECT_THROW(std::ignore = g.kernel_stats(99), GraphError);
}

}  // namespace
