// BlockCtx details: shared-arena alignment, region sequencing, lane counter
// isolation.

#include <gtest/gtest.h>

#include <cstdint>

#include "simt/device.hpp"

namespace {

TEST(BlockCtx, SharedAllocRespectsAlignment) {
    simt::Device dev(simt::tiny_device(1 << 20));
    dev.launch({"align", 1, 1}, [](simt::BlockCtx& blk) {
        auto bytes = blk.shared_alloc<std::byte>(3);  // misalign the bump pointer
        (void)bytes;
        auto doubles = blk.shared_alloc<double>(4);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(doubles.data()) % alignof(double), 0u);
        auto u32 = blk.shared_alloc<std::uint32_t>(1);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(u32.data()) % alignof(std::uint32_t), 0u);
    });
}

TEST(BlockCtx, SharedUsedAccumulatesWithinBlock) {
    simt::Device dev(simt::tiny_device(1 << 20));
    dev.launch({"used", 1, 1}, [](simt::BlockCtx& blk) {
        EXPECT_EQ(blk.shared_used(), 0u);
        blk.shared_alloc<float>(10);
        EXPECT_EQ(blk.shared_used(), 40u);
        blk.shared_alloc<float>(10);
        EXPECT_EQ(blk.shared_used(), 80u);
    });
}

TEST(BlockCtx, RegionsExecuteInOrder) {
    simt::Device dev(simt::tiny_device(1 << 20));
    std::vector<int> trace;
    dev.launch({"order", 1, 2}, [&](simt::BlockCtx& blk) {
        blk.for_each_thread([&](simt::ThreadCtx&) { trace.push_back(1); });
        blk.single_thread([&](simt::ThreadCtx&) { trace.push_back(2); });
        blk.for_each_thread([&](simt::ThreadCtx&) { trace.push_back(3); });
    });
    EXPECT_EQ(trace, (std::vector<int>{1, 1, 2, 3, 3}));
}

TEST(BlockCtx, LaneCountersAreZeroedPerBlock) {
    simt::Device dev(simt::tiny_device(1 << 20));
    const auto stats = dev.launch({"zeroed", 3, 2}, [&](simt::BlockCtx& blk) {
        blk.for_each_thread([&](simt::ThreadCtx& tc) { tc.ops(5); });
    });
    // If counters leaked across blocks the totals would exceed 3 * 2 * 5.
    EXPECT_EQ(stats.totals.ops, 30u);
}

TEST(BlockCtx, BlockIdxAndDimsAreVisible) {
    simt::Device dev(simt::tiny_device(1 << 20));
    std::vector<unsigned> seen;
    dev.launch({"idx", 3, 4}, [&](simt::BlockCtx& blk) {
        EXPECT_EQ(blk.grid_dim(), 3u);
        EXPECT_EQ(blk.block_dim(), 4u);
        seen.push_back(blk.block_idx());
    });
    EXPECT_EQ(seen, (std::vector<unsigned>{0, 1, 2}));
}

TEST(BlockCtx, ThreadCtxReportsDims) {
    simt::Device dev(simt::tiny_device(1 << 20));
    dev.launch({"dims", 1, 8}, [](simt::BlockCtx& blk) {
        unsigned expected = 0;
        blk.for_each_thread([&](simt::ThreadCtx& tc) {
            EXPECT_EQ(tc.tid(), expected++);
            EXPECT_EQ(tc.block_dim(), 8u);
        });
    });
}

}  // namespace
