// Randomized property test of the device allocator: thousands of random
// allocate/free operations, with every invariant of a first-fit coalescing
// free-list checked against an independently maintained shadow model.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "simt/device_memory.hpp"

namespace {

using simt::DeviceMemory;

struct Shadow {
    std::map<std::size_t, std::size_t> live;  // offset -> rounded size

    static std::size_t round(std::size_t b) {
        if (b == 0) b = 1;
        return (b + DeviceMemory::kAlignment - 1) / DeviceMemory::kAlignment *
               DeviceMemory::kAlignment;
    }

    [[nodiscard]] std::size_t in_use() const {
        std::size_t total = 0;
        for (const auto& [off, size] : live) total += size;
        return total;
    }

    /// Live ranges must never overlap and must stay within capacity.
    void check_disjoint(std::size_t capacity) const {
        std::size_t prev_end = 0;
        for (const auto& [off, size] : live) {
            ASSERT_GE(off, prev_end) << "overlapping allocations";
            ASSERT_LE(off + size, capacity) << "allocation past capacity";
            prev_end = off + size;
        }
    }
};

class MemoryFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MemoryFuzz, RandomAllocFreeKeepsInvariants) {
    constexpr std::size_t kCapacity = 1 << 20;  // 1 MB
    DeviceMemory mem(kCapacity, DeviceMemory::Mode::Virtual);
    Shadow shadow;
    std::mt19937_64 rng(GetParam());
    std::uniform_int_distribution<int> op(0, 99);
    std::uniform_int_distribution<std::size_t> size_dist(0, 8192);

    for (int step = 0; step < 4000; ++step) {
        const bool do_alloc = shadow.live.empty() || op(rng) < 55;
        if (do_alloc) {
            const std::size_t want = size_dist(rng);
            try {
                const std::size_t off = mem.allocate(want);
                const std::size_t rounded = Shadow::round(want);
                // The new range must not overlap any shadow range.
                for (const auto& [o, s] : shadow.live) {
                    ASSERT_TRUE(off + rounded <= o || o + s <= off)
                        << "allocator handed out overlapping range at step " << step;
                }
                shadow.live.emplace(off, rounded);
            } catch (const simt::DeviceBadAlloc&) {
                // Legitimate only if no single free range fits.
                ASSERT_LT(mem.largest_free_range(), Shadow::round(want))
                    << "spurious OOM at step " << step;
            }
        } else {
            auto it = shadow.live.begin();
            std::advance(it, static_cast<std::ptrdiff_t>(rng() % shadow.live.size()));
            mem.deallocate(it->first);
            shadow.live.erase(it);
        }

        ASSERT_EQ(mem.bytes_in_use(), shadow.in_use()) << "step " << step;
        ASSERT_EQ(mem.allocation_count(), shadow.live.size()) << "step " << step;
        shadow.check_disjoint(kCapacity);
    }

    // Draining everything must restore one maximal free range.
    for (const auto& [off, size] : shadow.live) mem.deallocate(off);
    EXPECT_EQ(mem.bytes_in_use(), 0u);
    EXPECT_EQ(mem.largest_free_range(), kCapacity);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryFuzz, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(MemoryFuzz, ChurnDoesNotLeakCapacity) {
    // Allocate/free in a pattern that exercises coalescing both directions;
    // afterwards a full-capacity allocation must still succeed.
    DeviceMemory mem(1 << 20, DeviceMemory::Mode::Virtual);
    std::vector<std::size_t> offs;
    for (int round = 0; round < 50; ++round) {
        offs.clear();
        for (int i = 0; i < 64; ++i) offs.push_back(mem.allocate(1024));
        // Free odd then even indices (forces merge with both neighbours).
        for (std::size_t i = 1; i < offs.size(); i += 2) mem.deallocate(offs[i]);
        for (std::size_t i = 0; i < offs.size(); i += 2) mem.deallocate(offs[i]);
    }
    EXPECT_NO_THROW(mem.allocate(1 << 20));
}

}  // namespace
