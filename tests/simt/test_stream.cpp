#include "simt/stream.hpp"

#include <gtest/gtest.h>

namespace {

using simt::Timeline;

TEST(Timeline, SingleStreamSerializes) {
    Timeline t(1);
    t.h2d(0, 10.0);
    t.compute(0, 20.0);
    t.d2h(0, 10.0);
    EXPECT_DOUBLE_EQ(t.elapsed_ms(), 40.0);
    EXPECT_DOUBLE_EQ(t.serialized_ms(), 40.0);
}

TEST(Timeline, DoubleBufferingOverlapsTransferWithCompute) {
    Timeline t(2);
    // Two batches on alternating streams; batch 1's H2D overlaps batch 0's
    // compute, so the makespan is below the serial sum.
    for (int b = 0; b < 4; ++b) {
        const auto s = static_cast<std::size_t>(b % 2);
        t.h2d(s, 10.0);
        t.compute(s, 20.0);
        t.d2h(s, 10.0);
    }
    EXPECT_LT(t.elapsed_ms(), t.serialized_ms());
    // Compute engine is the bottleneck: 4 x 20 ms plus the first H2D and the
    // last D2H that cannot hide.
    EXPECT_NEAR(t.elapsed_ms(), 10.0 + 4 * 20.0 + 10.0, 1e-9);
}

TEST(Timeline, EnginesSerializeAcrossStreams) {
    Timeline t(4);
    // Four H2D ops on four streams share one copy engine.
    for (std::size_t s = 0; s < 4; ++s) t.h2d(s, 5.0);
    EXPECT_DOUBLE_EQ(t.elapsed_ms(), 20.0);
}

TEST(Timeline, IndependentEnginesRunConcurrently) {
    Timeline t(2);
    t.h2d(0, 10.0);
    t.d2h(1, 10.0);  // different engine, different stream: fully parallel
    EXPECT_DOUBLE_EQ(t.elapsed_ms(), 10.0);
    EXPECT_DOUBLE_EQ(t.serialized_ms(), 20.0);
}

TEST(Timeline, OutOfRangeStreamThrows) {
    Timeline t(2);
    EXPECT_THROW(t.h2d(2, 1.0), std::out_of_range);
}

TEST(Timeline, ComputeChainRespectsStreamOrder) {
    Timeline t(2);
    t.compute(0, 5.0);
    t.compute(0, 5.0);  // same stream: serial even though engine was free
    EXPECT_DOUBLE_EQ(t.elapsed_ms(), 10.0);
}

TEST(Timeline, BusyTimesSumToSerializedTime) {
    Timeline t(2);
    for (int b = 0; b < 3; ++b) {
        const auto s = static_cast<std::size_t>(b % 2);
        t.h2d(s, 10.0);
        t.compute(s, 20.0);
        t.d2h(s, 5.0);
    }
    EXPECT_DOUBLE_EQ(t.h2d_busy_ms(), 30.0);
    EXPECT_DOUBLE_EQ(t.compute_busy_ms(), 60.0);
    EXPECT_DOUBLE_EQ(t.d2h_busy_ms(), 15.0);
    EXPECT_DOUBLE_EQ(t.h2d_busy_ms() + t.compute_busy_ms() + t.d2h_busy_ms(),
                     t.serialized_ms());
    // Busy time counts execution only, never dependency gaps.
    EXPECT_LE(t.compute_busy_ms(), t.elapsed_ms());
}

TEST(Timeline, SingleStreamUtilizationIsFractional) {
    Timeline t(1);
    t.h2d(0, 10.0);
    t.compute(0, 20.0);
    t.d2h(0, 10.0);
    // One stream serializes everything: each engine is busy exactly its own
    // share of the 40 ms makespan.
    EXPECT_DOUBLE_EQ(t.h2d_utilization(), 0.25);
    EXPECT_DOUBLE_EQ(t.compute_utilization(), 0.5);
    EXPECT_DOUBLE_EQ(t.d2h_utilization(), 0.25);
}

TEST(Timeline, SaturatedPipelineDrivesBottleneckTowardOne) {
    Timeline t(2);
    for (int b = 0; b < 16; ++b) {
        const auto s = static_cast<std::size_t>(b % 2);
        t.h2d(s, 5.0);
        t.compute(s, 20.0);
        t.d2h(s, 5.0);
    }
    EXPECT_GT(t.compute_utilization(), 0.9);  // compute-bound pipeline
    EXPECT_LT(t.h2d_utilization(), 0.5);
    EXPECT_LE(t.compute_utilization(), 1.0);
}

TEST(Timeline, EmptyTimelineReportsZeroUtilization) {
    Timeline t(3);
    EXPECT_DOUBLE_EQ(t.h2d_busy_ms(), 0.0);
    EXPECT_DOUBLE_EQ(t.compute_utilization(), 0.0);
    EXPECT_DOUBLE_EQ(t.d2h_utilization(), 0.0);
}

TEST(Timeline, BusyAccessorsUnaffectedByOutOfRangeThrow) {
    Timeline t(1);
    t.compute(0, 5.0);
    EXPECT_THROW(t.compute(1, 5.0), std::out_of_range);
    EXPECT_DOUBLE_EQ(t.compute_busy_ms(), 5.0);  // failed enqueue left no trace
}

}  // namespace
