#include "simt/stream.hpp"

#include <gtest/gtest.h>

namespace {

using simt::Timeline;

TEST(Timeline, SingleStreamSerializes) {
    Timeline t(1);
    t.h2d(0, 10.0);
    t.compute(0, 20.0);
    t.d2h(0, 10.0);
    EXPECT_DOUBLE_EQ(t.elapsed_ms(), 40.0);
    EXPECT_DOUBLE_EQ(t.serialized_ms(), 40.0);
}

TEST(Timeline, DoubleBufferingOverlapsTransferWithCompute) {
    Timeline t(2);
    // Two batches on alternating streams; batch 1's H2D overlaps batch 0's
    // compute, so the makespan is below the serial sum.
    for (int b = 0; b < 4; ++b) {
        const auto s = static_cast<std::size_t>(b % 2);
        t.h2d(s, 10.0);
        t.compute(s, 20.0);
        t.d2h(s, 10.0);
    }
    EXPECT_LT(t.elapsed_ms(), t.serialized_ms());
    // Compute engine is the bottleneck: 4 x 20 ms plus the first H2D and the
    // last D2H that cannot hide.
    EXPECT_NEAR(t.elapsed_ms(), 10.0 + 4 * 20.0 + 10.0, 1e-9);
}

TEST(Timeline, EnginesSerializeAcrossStreams) {
    Timeline t(4);
    // Four H2D ops on four streams share one copy engine.
    for (std::size_t s = 0; s < 4; ++s) t.h2d(s, 5.0);
    EXPECT_DOUBLE_EQ(t.elapsed_ms(), 20.0);
}

TEST(Timeline, IndependentEnginesRunConcurrently) {
    Timeline t(2);
    t.h2d(0, 10.0);
    t.d2h(1, 10.0);  // different engine, different stream: fully parallel
    EXPECT_DOUBLE_EQ(t.elapsed_ms(), 10.0);
    EXPECT_DOUBLE_EQ(t.serialized_ms(), 20.0);
}

TEST(Timeline, OutOfRangeStreamThrows) {
    Timeline t(2);
    EXPECT_THROW(t.h2d(2, 1.0), std::out_of_range);
}

TEST(Timeline, ComputeChainRespectsStreamOrder) {
    Timeline t(2);
    t.compute(0, 5.0);
    t.compute(0, 5.0);  // same stream: serial even though engine was free
    EXPECT_DOUBLE_EQ(t.elapsed_ms(), 10.0);
}

}  // namespace
