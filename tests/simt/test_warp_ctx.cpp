// WarpCtx and the execution-mode machinery: env parsing, warp grouping,
// lane-order preservation, uniform/per-lane charge folding, and the
// configure() pooled-storage trim policy.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "simt/device.hpp"

namespace {

/// Saves and restores SIMT_EXEC around env-parsing tests so the suite does
/// not leak state into other tests (or inherit the harness's own setting).
class ScopedExecEnv {
  public:
    ScopedExecEnv() {
        const char* v = std::getenv("SIMT_EXEC");
        had_ = v != nullptr;
        if (had_) saved_ = v;
    }
    ~ScopedExecEnv() {
        if (had_) {
            ::setenv("SIMT_EXEC", saved_.c_str(), 1);
        } else {
            ::unsetenv("SIMT_EXEC");
        }
    }

  private:
    bool had_ = false;
    std::string saved_;
};

TEST(ExecMode, ToString) {
    EXPECT_STREQ(simt::to_string(simt::ExecMode::Scalar), "scalar");
    EXPECT_STREQ(simt::to_string(simt::ExecMode::Warp), "warp");
}

TEST(ExecMode, FromEnvParsesBothModesAndDefaults) {
    ScopedExecEnv guard;
    ::unsetenv("SIMT_EXEC");
    EXPECT_EQ(simt::exec_mode_from_env(), simt::ExecMode::Scalar);
    ::setenv("SIMT_EXEC", "", 1);
    EXPECT_EQ(simt::exec_mode_from_env(), simt::ExecMode::Scalar);
    ::setenv("SIMT_EXEC", "scalar", 1);
    EXPECT_EQ(simt::exec_mode_from_env(), simt::ExecMode::Scalar);
    ::setenv("SIMT_EXEC", "warp", 1);
    EXPECT_EQ(simt::exec_mode_from_env(), simt::ExecMode::Warp);
}

TEST(ExecMode, FromEnvRejectsUnknownValue) {
    ScopedExecEnv guard;
    ::setenv("SIMT_EXEC", "vector", 1);
    EXPECT_THROW(simt::exec_mode_from_env(), simt::DeviceError);
}

TEST(ExecMode, DeviceDefaultsToEnvAndIsSwitchable) {
    ScopedExecEnv guard;
    ::setenv("SIMT_EXEC", "warp", 1);
    simt::Device dev(simt::tiny_device(1 << 20));
    EXPECT_EQ(dev.exec_mode(), simt::ExecMode::Warp);
    dev.set_exec_mode(simt::ExecMode::Scalar);
    EXPECT_EQ(dev.exec_mode(), simt::ExecMode::Scalar);
}

/// Runs one for_each_warp region over `block_dim` lanes and returns the
/// (lane_begin, width) sequence of the groups handed to the body.
std::vector<std::pair<unsigned, unsigned>> group_shapes(simt::ExecMode mode,
                                                        simt::ThreadOrder order,
                                                        unsigned block_dim) {
    simt::Device dev(simt::tiny_device(1 << 20));
    dev.set_exec_mode(mode);
    dev.set_thread_order(order);
    std::vector<std::pair<unsigned, unsigned>> shapes;
    dev.launch({"groups", 1, block_dim}, [&](simt::BlockCtx& blk) {
        blk.for_each_warp([&](simt::WarpCtx& wc) {
            shapes.emplace_back(wc.lane_begin(), wc.width());
            EXPECT_EQ(wc.lane_end(), wc.lane_begin() + wc.width());
            EXPECT_EQ(wc.block_dim(), block_dim);
            EXPECT_FALSE(wc.tracked());
        });
    });
    return shapes;
}

TEST(WarpCtx, ScalarModeHandsOutSingleLaneGroups) {
    const auto shapes =
        group_shapes(simt::ExecMode::Scalar, simt::ThreadOrder::Forward, 70);
    ASSERT_EQ(shapes.size(), 70u);
    for (unsigned t = 0; t < 70; ++t) {
        EXPECT_EQ(shapes[t], (std::pair<unsigned, unsigned>{t, 1u}));
    }
}

TEST(WarpCtx, WarpModeHandsOutWarpSizedGroupsWithRaggedTail) {
    const auto shapes =
        group_shapes(simt::ExecMode::Warp, simt::ThreadOrder::Forward, 70);
    ASSERT_EQ(shapes.size(), 3u);
    EXPECT_EQ(shapes[0], (std::pair<unsigned, unsigned>{0u, 32u}));
    EXPECT_EQ(shapes[1], (std::pair<unsigned, unsigned>{32u, 32u}));
    EXPECT_EQ(shapes[2], (std::pair<unsigned, unsigned>{64u, 6u}));
}

TEST(WarpCtx, ReverseOrderWalksGroupsDescending) {
    const auto shapes =
        group_shapes(simt::ExecMode::Warp, simt::ThreadOrder::Reverse, 70);
    ASSERT_EQ(shapes.size(), 3u);
    EXPECT_EQ(shapes[0].first, 64u);
    EXPECT_EQ(shapes[1].first, 32u);
    EXPECT_EQ(shapes[2].first, 0u);
}

/// The total lane order of for_lanes across all groups must equal the scalar
/// interpreter's order under both ThreadOrders — this is what keeps kernels
/// with order-sensitive shared atomics byte-identical across modes.
std::vector<unsigned> lane_visit_order(simt::ExecMode mode, simt::ThreadOrder order) {
    simt::Device dev(simt::tiny_device(1 << 20));
    dev.set_exec_mode(mode);
    dev.set_thread_order(order);
    std::vector<unsigned> visited;
    dev.launch({"visit", 1, 70}, [&](simt::BlockCtx& blk) {
        blk.for_each_warp([&](simt::WarpCtx& wc) {
            wc.for_lanes([&](simt::ThreadCtx& tc) { visited.push_back(tc.tid()); });
        });
    });
    return visited;
}

TEST(WarpCtx, ForLanesPreservesScalarTotalOrder) {
    for (const auto order : {simt::ThreadOrder::Forward, simt::ThreadOrder::Reverse}) {
        EXPECT_EQ(lane_visit_order(simt::ExecMode::Warp, order),
                  lane_visit_order(simt::ExecMode::Scalar, order));
    }
}

/// Uniform + per-lane charges folded at region end must equal what the same
/// per-lane body reports through for_each_thread, in both modes.
TEST(WarpCtx, ChargeFoldingMatchesScalarCounters) {
    for (const auto mode : {simt::ExecMode::Scalar, simt::ExecMode::Warp}) {
        simt::Device dev(simt::tiny_device(1 << 20));
        dev.set_exec_mode(mode);
        const auto ref = dev.launch({"ref", 2, 70}, [&](simt::BlockCtx& blk) {
            blk.for_each_thread([&](simt::ThreadCtx& tc) {
                tc.ops(3);
                tc.shared(2);
                tc.global_coalesced(16);
                tc.global_random(tc.tid() % 4);
            });
        });
        const auto warp = dev.launch({"warp", 2, 70}, [&](simt::BlockCtx& blk) {
            blk.for_each_warp([&](simt::WarpCtx& wc) {
                wc.ops_uniform(3);
                wc.shared_uniform(2);
                wc.coalesced_uniform(16);
                for (unsigned l = wc.lane_begin(); l < wc.lane_end(); ++l) {
                    wc.random_lane(l, l % 4);
                }
            });
        });
        EXPECT_EQ(warp.totals.ops, ref.totals.ops) << simt::to_string(mode);
        EXPECT_EQ(warp.totals.shared_accesses, ref.totals.shared_accesses);
        EXPECT_EQ(warp.totals.coalesced_bytes, ref.totals.coalesced_bytes);
        EXPECT_EQ(warp.totals.random_accesses, ref.totals.random_accesses);
        EXPECT_EQ(warp.modeled_ms, ref.modeled_ms);
        EXPECT_EQ(warp.warp_max_cycles, ref.warp_max_cycles);
        EXPECT_EQ(warp.imbalance, ref.imbalance);
    }
}

// --- configure() trim policy --------------------------------------------

TEST(BlockCtxTrim, OversizedPoolStorageIsTrimmed) {
    simt::BlockCtx ctx;
    ctx.configure(256, 1, 1 << 20, simt::ThreadOrder::Forward, 0);
    EXPECT_EQ(ctx.shared_arena_bytes(), std::size_t{1} << 20);
    EXPECT_GE(ctx.lane_capacity(), std::size_t{256});

    // Next launch asks for far less than 1/4 of what the slot holds: both
    // the shared arena and the lane storage must shrink to the request.
    ctx.configure(1, 1, 1 << 10, simt::ThreadOrder::Forward, 0);
    EXPECT_EQ(ctx.shared_arena_bytes(), std::size_t{1} << 10);
    EXPECT_LE(ctx.lane_capacity(), std::size_t{4});
}

TEST(BlockCtxTrim, StorageWithinTrimFactorIsKept) {
    simt::BlockCtx ctx;
    ctx.configure(256, 1, 1 << 20, simt::ThreadOrder::Forward, 0);

    // Half the arena and a quarter of the lanes: within kTrimFactor, so the
    // pooled storage is reused as-is (no reallocation churn between
    // similarly-sized launches).
    ctx.configure(64, 1, 1 << 19, simt::ThreadOrder::Forward, 0);
    EXPECT_EQ(ctx.shared_arena_bytes(), std::size_t{1} << 20);
    EXPECT_GE(ctx.lane_capacity(), std::size_t{256});

    // Growing again is always a plain resize.
    ctx.configure(512, 1, 1 << 21, simt::ThreadOrder::Forward, 0);
    EXPECT_EQ(ctx.shared_arena_bytes(), std::size_t{1} << 21);
    EXPECT_GE(ctx.lane_capacity(), std::size_t{512});
}

TEST(BlockCtxTrim, ZeroSizedRequestDoesNotDivideByZero) {
    simt::BlockCtx ctx;
    ctx.configure(8, 1, 1 << 16, simt::ThreadOrder::Forward, 0);
    ctx.configure(1, 1, 0, simt::ThreadOrder::Forward, 0);
    EXPECT_EQ(ctx.shared_arena_bytes(), std::size_t{0});
}

}  // namespace
