// The persistent worker pool behind Device::launch: thread reuse, slot
// reuse, exception semantics, and the bit-identical-stats contract.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "simt/device.hpp"
#include "simt/device_buffer.hpp"
#include "simt/thread_pool.hpp"

namespace {

TEST(ThreadPool, CallerParticipatesAsWorkerZero) {
    simt::ThreadPool pool;
    std::mutex m;
    std::set<std::thread::id> ids;
    std::thread::id worker0_id;
    pool.run(4, [&](unsigned w) {
        std::lock_guard<std::mutex> lock(m);
        ids.insert(std::this_thread::get_id());
        if (w == 0) worker0_id = std::this_thread::get_id();
    });
    EXPECT_EQ(worker0_id, std::this_thread::get_id());
    EXPECT_EQ(ids.size(), 4u);  // caller + 3 distinct pool threads
    EXPECT_EQ(pool.threads(), 3u);
}

TEST(ThreadPool, SingleWorkerRunsInlineWithoutThreads) {
    simt::ThreadPool pool;
    unsigned calls = 0;
    pool.run(1, [&](unsigned w) {
        EXPECT_EQ(w, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1u);
    EXPECT_EQ(pool.threads(), 0u);
}

TEST(ThreadPool, ThreadsGrowOnDemandAndPersist) {
    simt::ThreadPool pool;
    pool.run(2, [](unsigned) {});
    EXPECT_EQ(pool.threads(), 1u);
    pool.run(6, [](unsigned) {});
    EXPECT_EQ(pool.threads(), 5u);
    pool.run(2, [](unsigned) {});
    EXPECT_EQ(pool.threads(), 5u);  // grow-only: idle threads stay parked
}

TEST(ThreadPool, EveryWorkerRunsOncePerRunAcrossManyRuns) {
    simt::ThreadPool pool;
    std::atomic<unsigned> total{0};
    for (int i = 0; i < 200; ++i) {
        std::atomic<unsigned> mask{0};
        pool.run(4, [&](unsigned w) {
            total.fetch_add(1);
            mask.fetch_or(1u << w);
        });
        EXPECT_EQ(mask.load(), 0b1111u);
    }
    EXPECT_EQ(total.load(), 800u);
}

TEST(ThreadPool, PoolWorkerExceptionPropagatesAndPoolStaysUsable) {
    simt::ThreadPool pool;
    EXPECT_THROW(pool.run(4,
                          [&](unsigned w) {
                              if (w == 2) throw std::runtime_error("worker down");
                          }),
                 std::runtime_error);
    // The pool must not hang, leak the exception, or lose workers.
    std::atomic<unsigned> ran{0};
    pool.run(4, [&](unsigned) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 4u);
}

TEST(ThreadPool, CallerExceptionAlsoPropagates) {
    simt::ThreadPool pool;
    EXPECT_THROW(pool.run(3,
                          [&](unsigned w) {
                              if (w == 0) throw std::logic_error("caller down");
                          }),
                 std::logic_error);
    std::atomic<unsigned> ran{0};
    pool.run(3, [&](unsigned) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 3u);
}

TEST(ThreadPool, SlotsAreDistinctAndStable) {
    simt::ThreadPool pool;
    pool.reserve_slots(3);
    simt::BlockCtx* first[3] = {&pool.block_ctx(0), &pool.block_ctx(1), &pool.block_ctx(2)};
    EXPECT_NE(first[0], first[1]);
    EXPECT_NE(first[1], first[2]);
    pool.reserve_slots(2);  // shrinking request must not invalidate slots
    for (unsigned w = 0; w < 3; ++w) EXPECT_EQ(&pool.block_ctx(w), first[w]);
}

// ---------------------------------------------------------------------------
// Device-level contract: the pool is an invisible host-side optimisation.

std::tuple<double, double, double, std::uint64_t, std::uint64_t, std::uint64_t,
           std::uint64_t, std::size_t>
stats_key(const simt::KernelStats& s) {
    return {s.modeled_ms,        s.compute_ms,
            s.memory_ms,         s.totals.ops,
            s.totals.shared_accesses, s.totals.coalesced_bytes,
            s.totals.random_accesses, s.shared_bytes_per_block};
}

simt::KernelStats run_workload(unsigned workers) {
    simt::Device dev(simt::tiny_device(16 << 20));
    dev.set_host_workers(workers);
    simt::DeviceBuffer<std::uint32_t> buf(dev, 48 * 128);
    auto span = buf.span();
    return dev.launch({"pool.workload", 48, 64}, [&](simt::BlockCtx& blk) {
        auto tile = blk.shared_alloc<std::uint32_t>(128);
        blk.for_each_thread([&](simt::ThreadCtx& tc) {
            const std::size_t base = blk.block_idx() * 128u;
            for (std::size_t i = tc.tid(); i < 128; i += 64) {
                tile[i] = static_cast<std::uint32_t>(base + i) * 2654435761u;
                span[base + i] = tile[i];
            }
            tc.ops(5 + blk.block_idx() % 7);
            tc.shared(2);
            tc.global_coalesced(8);
            tc.global_random(blk.block_idx() % 2);
        });
    });
}

TEST(DevicePool, KernelStatsBitIdenticalForAnyWorkerCount) {
    const auto one = stats_key(run_workload(1));
    EXPECT_EQ(one, stats_key(run_workload(2)));
    EXPECT_EQ(one, stats_key(run_workload(3)));
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    EXPECT_EQ(one, stats_key(run_workload(hw)));
}

TEST(DevicePool, RepeatedLaunchesReuseStatsExactly) {
    // Slot reuse across launches (the whole point of the pool) must not make
    // the second launch observe anything from the first.
    simt::Device dev(simt::tiny_device(16 << 20));
    dev.set_host_workers(4);
    auto kernel = [&] {
        return dev.launch({"pool.repeat", 16, 32}, [&](simt::BlockCtx& blk) {
            blk.for_each_thread([&](simt::ThreadCtx& tc) {
                tc.ops(3);
                tc.global_coalesced(4);
            });
        });
    };
    const auto first = stats_key(kernel());
    for (int i = 0; i < 10; ++i) EXPECT_EQ(stats_key(kernel()), first);
}

TEST(DevicePool, SharedHighWaterDoesNotLeakAcrossLaunches) {
    // A reused BlockCtx keeps its arena storage but must report only the
    // current launch's footprint.
    auto small_stats = [](simt::Device& dev) {
        return dev.launch({"pool.small", 8, 16}, [&](simt::BlockCtx& blk) {
            auto t = blk.shared_alloc<std::uint32_t>(16);
            blk.for_each_thread([&](simt::ThreadCtx& tc) {
                t[tc.tid()] = tc.tid();
                tc.shared(1);
            });
        });
    };
    simt::Device fresh(simt::tiny_device(1 << 20));
    fresh.set_host_workers(4);
    const auto baseline = small_stats(fresh);

    simt::Device reused(simt::tiny_device(1 << 20));
    reused.set_host_workers(4);
    reused.launch({"pool.big", 8, 16}, [&](simt::BlockCtx& blk) {
        auto t = blk.shared_alloc<std::uint32_t>(2048);
        blk.for_each_thread([&](simt::ThreadCtx& tc) { t[tc.tid()] = 0; });
    });
    const auto after_big = small_stats(reused);
    EXPECT_EQ(after_big.shared_bytes_per_block, baseline.shared_bytes_per_block);
    EXPECT_EQ(stats_key(after_big), stats_key(baseline));
}

TEST(DevicePool, DeviceStaysUsableAfterKernelException) {
    simt::Device dev(simt::tiny_device(16 << 20));
    dev.set_host_workers(4);
    EXPECT_THROW(dev.launch({"pool.boom", 32, 1},
                            [&](simt::BlockCtx& blk) {
                                if (blk.block_idx() == 9) {
                                    throw std::runtime_error("kernel failure");
                                }
                            }),
                 std::runtime_error);
    // Same device, same pool: the next launch must complete and match a
    // fresh device bit for bit.
    const auto recovered = [&] {
        simt::DeviceBuffer<std::uint32_t> buf(dev, 48 * 128);
        auto span = buf.span();
        return dev.launch({"pool.workload", 48, 64}, [&](simt::BlockCtx& blk) {
            auto tile = blk.shared_alloc<std::uint32_t>(128);
            blk.for_each_thread([&](simt::ThreadCtx& tc) {
                const std::size_t base = blk.block_idx() * 128u;
                for (std::size_t i = tc.tid(); i < 128; i += 64) {
                    tile[i] = static_cast<std::uint32_t>(base + i) * 2654435761u;
                    span[base + i] = tile[i];
                }
                tc.ops(5 + blk.block_idx() % 7);
                tc.shared(2);
                tc.global_coalesced(8);
                tc.global_random(blk.block_idx() % 2);
            });
        });
    }();
    EXPECT_EQ(stats_key(recovered), stats_key(run_workload(4)));
}

}  // namespace
