#include "simt/cost_model.hpp"

#include <gtest/gtest.h>

namespace {

using simt::CostModel;
using simt::LaneCounters;

simt::DeviceProperties props() { return simt::tesla_k40c(); }

TEST(CostModel, WarpTimeIsMaxOverLanes) {
    CostModel model(props());
    // One warp: one busy lane dominates.
    std::vector<LaneCounters> balanced(32);
    for (auto& l : balanced) l.ops = 100;
    std::vector<LaneCounters> skewed(32);
    skewed[7].ops = 100;  // same max, less total work
    EXPECT_DOUBLE_EQ(model.block_cost(balanced).cycles, model.block_cost(skewed).cycles);
}

TEST(CostModel, DivergencePenalty) {
    CostModel model(props());
    // 64 ops of useful work; packed into one lane it costs the warp 64
    // cycles, spread evenly it costs 2.
    std::vector<LaneCounters> spread(32);
    for (auto& l : spread) l.ops = 2;
    std::vector<LaneCounters> packed(32);
    packed[0].ops = 64;
    EXPECT_GT(model.block_cost(packed).cycles, model.block_cost(spread).cycles);
}

TEST(CostModel, ImbalanceInputsTrackMaxVsMeanLaneCycles) {
    CostModel model(props());
    std::vector<LaneCounters> balanced(32);
    for (auto& l : balanced) l.ops = 10;
    const auto b = model.block_cost(balanced);
    EXPECT_DOUBLE_EQ(b.warp_max_cycles, b.warp_mean_cycles);

    std::vector<LaneCounters> packed(32);
    packed[0].ops = 64;  // one hot lane: warp pays 64, balanced cost is 2
    const auto p = model.block_cost(packed);
    EXPECT_DOUBLE_EQ(p.warp_max_cycles, 64.0 * props().cpi);
    EXPECT_DOUBLE_EQ(p.warp_mean_cycles, 2.0 * props().cpi);
}

TEST(CostModel, UncoalescedAccessCostsFullSegment) {
    CostModel model(props());
    std::vector<LaneCounters> coalesced(32);
    for (auto& l : coalesced) l.coalesced_bytes = 4;
    std::vector<LaneCounters> random(32);
    for (auto& l : random) l.random_accesses = 1;
    const double c = model.block_cost(coalesced).traffic_bytes;
    const double r = model.block_cost(random).traffic_bytes;
    EXPECT_DOUBLE_EQ(c, 32.0 * 4.0);
    EXPECT_DOUBLE_EQ(r, 32.0 * props().uncoalesced_segment_bytes);
    EXPECT_GT(r, c);
}

TEST(CostModel, MultiWarpBlocksUseWarpParallelism) {
    CostModel model(props());
    // 6 warps fit the K40c's 192 cores concurrently; a 6-warp block should
    // take about one warp's time, not six.
    std::vector<LaneCounters> one_warp(32);
    for (auto& l : one_warp) l.ops = 600;
    std::vector<LaneCounters> six_warps(32 * 6);
    for (auto& l : six_warps) l.ops = 600;
    const double t1 = model.block_cost(one_warp).cycles;
    const double t6 = model.block_cost(six_warps).cycles;
    EXPECT_NEAR(t6, t1, t1 * 1e-9);
    // A 12-warp block serializes two rounds.
    std::vector<LaneCounters> twelve(32 * 12);
    for (auto& l : twelve) l.ops = 600;
    EXPECT_NEAR(model.block_cost(twelve).cycles, 2 * t1, t1 * 1e-9);
}

TEST(CostModel, OccupancyLimitedByThreads) {
    CostModel model(props());
    EXPECT_EQ(model.blocks_per_sm(2048, 0), 1u);
    EXPECT_EQ(model.blocks_per_sm(1024, 0), 2u);
    EXPECT_EQ(model.blocks_per_sm(64, 0), props().max_blocks_per_sm);
}

TEST(CostModel, OccupancyLimitedByShared) {
    CostModel model(props());
    EXPECT_EQ(model.blocks_per_sm(64, props().shared_memory_per_sm), 1u);
    EXPECT_EQ(model.blocks_per_sm(64, props().shared_memory_per_sm / 4), 4u);
}

TEST(CostModel, MakespanScalesWithBlocksBeyondSlots) {
    CostModel model(props());
    simt::KernelStats few;
    few.block_dim = 64;
    simt::KernelStats many = few;
    const std::vector<double> one_wave(240, 1000.0);   // 15 SMs x 16 blocks
    const std::vector<double> two_waves(480, 1000.0);
    model.finalize(few, one_wave, 0.0);
    model.finalize(many, two_waves, 0.0);
    EXPECT_NEAR(many.compute_ms, 2 * few.compute_ms, few.compute_ms * 1e-6);
}

TEST(CostModel, MemoryBoundKernelsGetBandwidthTime) {
    CostModel model(props());
    simt::KernelStats stats;
    stats.block_dim = 256;
    const std::vector<double> cycles(16, 1.0);  // negligible compute
    const double bytes = 288e9;                 // one second at peak BW
    model.finalize(stats, cycles, bytes);
    EXPECT_NEAR(stats.memory_ms, 1000.0, 1e-6);
    EXPECT_GT(stats.modeled_ms, stats.compute_ms);
}

TEST(CostModel, DerateScalesModeledTime) {
    auto p = props();
    CostModel base(p);
    p.efficiency_derate *= 2.0;
    CostModel derated(p);
    simt::KernelStats a;
    a.block_dim = 64;
    simt::KernelStats b = a;
    const std::vector<double> cycles(100, 1e6);
    base.finalize(a, cycles, 0.0);
    derated.finalize(b, cycles, 0.0);
    EXPECT_NEAR(b.modeled_ms - p.kernel_launch_overhead_ms,
                2.0 * (a.modeled_ms - p.kernel_launch_overhead_ms),
                a.modeled_ms * 1e-6);
}

TEST(CostModel, EmptyBlockListYieldsOverheadOnly) {
    CostModel model(props());
    simt::KernelStats stats;
    stats.block_dim = 1;
    model.finalize(stats, {}, 0.0);
    EXPECT_DOUBLE_EQ(stats.compute_ms, 0.0);
    EXPECT_DOUBLE_EQ(stats.modeled_ms, props().kernel_launch_overhead_ms);
}

}  // namespace
