// simt::faults: deterministic fault injection on the simulated device.
//
// Pins the contract device.hpp states: no plan installed (or a
// default-constructed plan) costs nothing and keeps KernelStats bit-identical
// to an uninstrumented device; an armed plan fires DeviceBadAlloc /
// LaunchFault / TransferError / silent corruption / engine stalls at
// deterministic, seed-reproducible points, all accounted in FaultReport.

#include "simt/device.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "simt/error.hpp"
#include "simt/faults/report.hpp"
#include "simt/stream.hpp"

namespace {

using simt::faults::FaultPlan;
using simt::faults::FaultReport;

simt::Device make_device(std::size_t bytes = 64 << 20) {
    return simt::Device(simt::tiny_device(bytes));
}

/// A tiny but non-trivial kernel: every thread reads and bumps one float of
/// `data` and self-reports mixed work, so KernelStats has non-zero counters
/// in every field the bit-identity test compares.
simt::KernelStats touch_kernel(simt::Device& device, std::vector<float>& data,
                               const char* name = "test.touch") {
    const simt::LaunchConfig cfg{name, 2, 32};
    return device.launch(cfg, [&](simt::BlockCtx& blk) {
        blk.for_each_thread([&](simt::ThreadCtx& tc) {
            const std::size_t i =
                static_cast<std::size_t>(blk.block_idx()) * blk.block_dim() + tc.tid();
            if (i < data.size()) data[i] += 1.0f;
            tc.ops(3 + tc.tid() % 4);  // uneven work: non-trivial imbalance
            tc.global_coalesced(sizeof(float));
            tc.global_random(tc.tid() % 2);
            tc.shared(1);
        });
    });
}

void expect_identical(const simt::KernelStats& a, const simt::KernelStats& b) {
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.grid_dim, b.grid_dim);
    EXPECT_EQ(a.block_dim, b.block_dim);
    EXPECT_EQ(a.shared_bytes_per_block, b.shared_bytes_per_block);
    EXPECT_EQ(a.totals.ops, b.totals.ops);
    EXPECT_EQ(a.totals.shared_accesses, b.totals.shared_accesses);
    EXPECT_EQ(a.totals.coalesced_bytes, b.totals.coalesced_bytes);
    EXPECT_EQ(a.totals.random_accesses, b.totals.random_accesses);
    EXPECT_EQ(a.traffic_bytes, b.traffic_bytes);
    // Modeled quantities must be bit-identical, not approximately equal.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.compute_ms),
              std::bit_cast<std::uint64_t>(b.compute_ms));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.memory_ms),
              std::bit_cast<std::uint64_t>(b.memory_ms));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.modeled_ms),
              std::bit_cast<std::uint64_t>(b.modeled_ms));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.warp_max_cycles),
              std::bit_cast<std::uint64_t>(b.warp_max_cycles));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.warp_mean_cycles),
              std::bit_cast<std::uint64_t>(b.warp_mean_cycles));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.imbalance),
              std::bit_cast<std::uint64_t>(b.imbalance));
}

TEST(Faults, DefaultPlanArmsNothing) {
    EXPECT_FALSE(FaultPlan{}.any());
    FaultPlan armed;
    armed.launch_fail_at = {3};
    EXPECT_TRUE(armed.any());
    armed = {};
    armed.corrupt_every = 10;
    EXPECT_TRUE(armed.any());
}

TEST(Faults, OffModeKeepsKernelStatsBitIdentical) {
    // Three devices: uninstrumented, inert plan installed, plan installed
    // then cleared.  Same allocations and launches everywhere; every
    // KernelStats field must match bit for bit (the sanitizer-style
    // zero-cost-when-off guarantee).
    auto plain = make_device();
    auto inert = make_device();
    auto cleared = make_device();
    inert.set_fault_plan(FaultPlan{});
    FaultPlan armed;
    armed.alloc_fail_every = 2;
    armed.launch_fail_every = 2;
    cleared.set_fault_plan(armed);
    cleared.clear_fault_plan();

    for (simt::Device* d : {&plain, &inert, &cleared}) {
        (void)d->memory().allocate(4096);
        std::vector<float> data(64, 0.0f);
        touch_kernel(*d, data);
        touch_kernel(*d, data);
    }
    ASSERT_EQ(plain.kernel_log().size(), 2u);
    ASSERT_EQ(inert.kernel_log().size(), 2u);
    ASSERT_EQ(cleared.kernel_log().size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        expect_identical(plain.kernel_log()[i], inert.kernel_log()[i]);
        expect_identical(plain.kernel_log()[i], cleared.kernel_log()[i]);
    }
    EXPECT_TRUE(plain.fault_report().clean());
    EXPECT_TRUE(inert.fault_report().clean());
    EXPECT_EQ(inert.fault_report().fired(), 0u);
}

TEST(Faults, ScheduledAllocFailureFiresAtExactOrdinal) {
    auto dev = make_device();
    FaultPlan plan;
    plan.alloc_fail_at = {2};
    dev.set_fault_plan(plan);

    const std::size_t first = dev.memory().allocate(1024);
    EXPECT_THROW((void)dev.memory().allocate(1024), simt::DeviceBadAlloc);
    // The refused allocation reserved nothing; the next one succeeds.
    (void)dev.memory().allocate(1024);
    dev.memory().deallocate(first);

    const FaultReport& r = dev.fault_report();
    EXPECT_EQ(r.alloc_checks, 3u);
    EXPECT_EQ(r.alloc_failures, 1u);
    ASSERT_EQ(r.events.size(), 1u);
    EXPECT_EQ(r.events[0].kind, simt::faults::FaultKind::AllocFail);
    EXPECT_EQ(r.events[0].ordinal, 2u);
}

TEST(Faults, ScheduledLaunchFaultRefusesKernelBeforeItRuns) {
    auto dev = make_device();
    FaultPlan plan;
    plan.launch_fail_at = {2};
    dev.set_fault_plan(plan);

    std::vector<float> data(64, 0.0f);
    touch_kernel(dev, data);
    try {
        touch_kernel(dev, data);
        FAIL() << "second launch should have been refused";
    } catch (const simt::LaunchFault& e) {
        EXPECT_EQ(e.ordinal(), 2u);
    }
    // The refused launch neither ran its body nor logged stats.
    EXPECT_EQ(dev.kernel_log().size(), 1u);
    for (const float v : data) EXPECT_EQ(v, 1.0f);
    touch_kernel(dev, data);  // ordinal 3: not scheduled, runs fine
    EXPECT_EQ(dev.kernel_log().size(), 2u);
    EXPECT_EQ(dev.fault_report().launch_failures, 1u);
    EXPECT_EQ(dev.fault_report().launch_checks, 3u);
}

TEST(Faults, DetectedCorruptionFlipsBitsAndRaisesTransferError) {
    auto dev = make_device();
    const std::size_t off = dev.memory().allocate(1024);
    std::memset(dev.memory().translate(off), 0, 1024);

    FaultPlan plan;
    plan.corrupt_at = {1};
    plan.corrupt_bits = 3;
    plan.detected = true;
    dev.set_fault_plan(plan);

    std::vector<float> data(8, 0.0f);
    try {
        touch_kernel(dev, data);
        FAIL() << "corruption should have been detected at launch entry";
    } catch (const simt::TransferError& e) {
        EXPECT_EQ(e.bits(), 3u);
        EXPECT_LT(e.offset(), 1024u);
    }
    // Exactly corrupt_bits bits flipped somewhere in the (only) allocation,
    // and the kernel body never ran.
    unsigned flipped = 0;
    const std::byte* p = dev.memory().translate(off);
    for (std::size_t i = 0; i < 1024; ++i) {
        flipped += static_cast<unsigned>(std::popcount(static_cast<unsigned>(p[i])));
    }
    EXPECT_EQ(flipped, 3u);
    EXPECT_TRUE(dev.kernel_log().empty());
    EXPECT_EQ(dev.fault_report().corruptions, 1u);
}

TEST(Faults, UndetectedCorruptionIsSilent) {
    auto dev = make_device();
    const std::size_t off = dev.memory().allocate(256);
    std::memset(dev.memory().translate(off), 0, 256);

    FaultPlan plan;
    plan.corrupt_at = {1};
    plan.detected = false;
    dev.set_fault_plan(plan);

    std::vector<float> data(8, 0.0f);
    EXPECT_NO_THROW(touch_kernel(dev, data));  // kernel runs on corrupted memory
    EXPECT_EQ(dev.kernel_log().size(), 1u);

    unsigned flipped = 0;
    const std::byte* p = dev.memory().translate(off);
    for (std::size_t i = 0; i < 256; ++i) {
        flipped += static_cast<unsigned>(std::popcount(static_cast<unsigned>(p[i])));
    }
    EXPECT_EQ(flipped, 1u);  // default corrupt_bits
    EXPECT_EQ(dev.fault_report().corruptions, 1u);
}

TEST(Faults, CorruptionTargetsLargestLiveAllocation) {
    auto dev = make_device();
    const std::size_t small = dev.memory().allocate(256);
    const std::size_t big = dev.memory().allocate(4096);
    std::memset(dev.memory().translate(small), 0, 256);
    std::memset(dev.memory().translate(big), 0, 4096);

    FaultPlan plan;
    plan.corrupt_at = {1};
    plan.detected = false;
    dev.set_fault_plan(plan);
    std::vector<float> data(8, 0.0f);
    touch_kernel(dev, data);

    unsigned in_small = 0;
    unsigned in_big = 0;
    for (std::size_t i = 0; i < 256; ++i) {
        in_small += static_cast<unsigned>(
            std::popcount(static_cast<unsigned>(dev.memory().translate(small)[i])));
    }
    for (std::size_t i = 0; i < 4096; ++i) {
        in_big += static_cast<unsigned>(
            std::popcount(static_cast<unsigned>(dev.memory().translate(big)[i])));
    }
    EXPECT_EQ(in_small, 0u);
    EXPECT_EQ(in_big, 1u);
}

TEST(Faults, CorruptionSuppressedOnVirtualMemory) {
    simt::Device dev(simt::tiny_device(64 << 20), simt::DeviceMemory::Mode::Virtual);
    (void)dev.memory().allocate(1024);
    FaultPlan plan;
    plan.corrupt_at = {1};
    dev.set_fault_plan(plan);
    std::vector<float> data(8, 0.0f);
    EXPECT_NO_THROW(touch_kernel(dev, data));
    EXPECT_EQ(dev.fault_report().suppressed, 1u);
    EXPECT_EQ(dev.fault_report().corruptions, 0u);
    EXPECT_FALSE(dev.fault_report().clean());  // suppressed still counts
}

TEST(Faults, StallExtendsTimelineMakespan) {
    auto clean_dev = make_device();
    simt::Timeline clean(2);
    clean.attach_faults(clean_dev);
    clean.h2d(0, 1.0);
    clean.compute(0, 2.0);
    clean.d2h(0, 1.0);

    auto dev = make_device();
    FaultPlan plan;
    plan.stall_at = {1};
    plan.stall_ms = 5.0;
    dev.set_fault_plan(plan);
    simt::Timeline stalled(2);
    stalled.attach_faults(dev);
    stalled.h2d(0, 1.0);
    stalled.compute(0, 2.0);
    stalled.d2h(0, 1.0);

    EXPECT_NEAR(stalled.elapsed_ms(), clean.elapsed_ms() + 5.0, 1e-9);
    EXPECT_EQ(dev.fault_report().stalls, 1u);
    EXPECT_EQ(dev.fault_report().stall_checks, 3u);
    EXPECT_TRUE(clean_dev.fault_report().clean());
}

TEST(Faults, PlanInstalledAfterTimelineAttachStillApplies) {
    auto dev = make_device();
    simt::Timeline tl(1);
    tl.attach_faults(dev);  // no plan yet
    tl.h2d(0, 1.0);         // uninstrumented: not part of any ordinal stream
    FaultPlan plan;
    plan.stall_at = {1};  // first engine op the new injector sees
    plan.stall_ms = 3.0;
    dev.set_fault_plan(plan);
    tl.compute(0, 1.0);
    EXPECT_NEAR(tl.elapsed_ms(), 1.0 + 1.0 + 3.0, 1e-9);
    EXPECT_EQ(dev.fault_report().stalls, 1u);
}

TEST(Faults, BernoulliScheduleIsSeedDeterministic) {
    auto run = [](std::uint64_t seed) {
        auto dev = make_device();
        FaultPlan plan;
        plan.seed = seed;
        plan.alloc_fail_every = 3;
        dev.set_fault_plan(plan);
        std::vector<std::uint64_t> fired;
        for (std::uint64_t i = 1; i <= 64; ++i) {
            try {
                dev.memory().deallocate(dev.memory().allocate(64));
            } catch (const simt::DeviceBadAlloc&) {
                fired.push_back(i);
            }
        }
        return std::pair{fired, simt::faults::to_json(dev.fault_report())};
    };
    const auto [fired_a, json_a] = run(7);
    const auto [fired_b, json_b] = run(7);
    EXPECT_FALSE(fired_a.empty());  // 64 draws at 1-in-3 fire w.p. ~1
    EXPECT_EQ(fired_a, fired_b);
    EXPECT_EQ(json_a, json_b);  // byte-identical report, same seed
    const auto [fired_c, json_c] = run(8);
    EXPECT_NE(fired_a, fired_c);  // a different seed reshuffles the schedule
}

TEST(Faults, ReportTextAndJsonNameEveryFiredKind) {
    auto dev = make_device();
    FaultPlan plan;
    plan.alloc_fail_at = {1};
    plan.launch_fail_at = {1};
    dev.set_fault_plan(plan);
    EXPECT_THROW((void)dev.memory().allocate(64), simt::DeviceBadAlloc);
    std::vector<float> data(8, 0.0f);
    EXPECT_THROW(touch_kernel(dev, data), simt::LaunchFault);

    const FaultReport& r = dev.fault_report();
    EXPECT_EQ(r.fired(), 2u);
    const std::string text = simt::faults::to_text(r);
    EXPECT_NE(text.find("alloc-fail"), std::string::npos);
    EXPECT_NE(text.find("launch-fail"), std::string::npos);
    const std::string json = simt::faults::to_json(r);
    EXPECT_NE(json.find("\"alloc-fail\""), std::string::npos);
    EXPECT_NE(json.find("\"events\""), std::string::npos);

    dev.clear_fault_report();
    EXPECT_TRUE(dev.fault_report().clean());
    EXPECT_EQ(dev.fault_report().armed(), 0u);
}

TEST(Faults, InstallingANewPlanResetsTheReport) {
    auto dev = make_device();
    FaultPlan plan;
    plan.alloc_fail_at = {1};
    dev.set_fault_plan(plan);
    EXPECT_THROW((void)dev.memory().allocate(64), simt::DeviceBadAlloc);
    EXPECT_EQ(dev.fault_report().alloc_failures, 1u);
    dev.set_fault_plan(FaultPlan{});
    EXPECT_TRUE(dev.fault_report().clean());
    (void)dev.memory().allocate(64);  // inert plan: nothing fires
    EXPECT_EQ(dev.fault_report().alloc_failures, 0u);
}

}  // namespace
