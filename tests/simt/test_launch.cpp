#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "simt/device.hpp"
#include "simt/device_buffer.hpp"

namespace {

using simt::BlockCtx;
using simt::Device;
using simt::LaunchConfig;
using simt::ThreadCtx;

TEST(Launch, RunsEveryBlockAndThreadExactlyOnce) {
    Device dev(simt::tiny_device(1 << 20));
    std::vector<int> visits(8 * 4, 0);
    dev.launch({"count", 8, 4}, [&](BlockCtx& blk) {
        blk.for_each_thread([&](ThreadCtx& tc) {
            ++visits[blk.block_idx() * 4 + tc.tid()];
        });
    });
    for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(Launch, ImbalanceMetricReflectsLaneSkew) {
    Device dev(simt::tiny_device(1 << 20));
    // One hot lane per warp: max-lane cycles 62, mean (62 + 31 * 2) / 32 =
    // 3.875, so the launch-wide ratio is exactly 16 (cpi cancels).
    const auto skewed = dev.launch({"skew", 2, 32}, [&](BlockCtx& blk) {
        blk.for_each_thread([&](ThreadCtx& tc) { tc.ops(tc.tid() == 0 ? 62 : 2); });
    });
    EXPECT_DOUBLE_EQ(skewed.imbalance, 16.0);
    const auto balanced = dev.launch({"flat", 2, 32}, [&](BlockCtx& blk) {
        blk.for_each_thread([&](ThreadCtx& tc) { tc.ops(5); });
    });
    EXPECT_DOUBLE_EQ(balanced.imbalance, 1.0);
    // A no-op launch reports the neutral value, not a 0/0.
    const auto idle = dev.launch({"idle", 1, 4}, [](BlockCtx&) {});
    EXPECT_DOUBLE_EQ(idle.imbalance, 1.0);
}

TEST(Launch, RejectsZeroDimensions) {
    Device dev(simt::tiny_device(1 << 20));
    EXPECT_THROW(dev.launch({"bad", 0, 4}, [](BlockCtx&) {}), simt::LaunchError);
    EXPECT_THROW(dev.launch({"bad", 4, 0}, [](BlockCtx&) {}), simt::LaunchError);
}

TEST(Launch, RejectsOversizedBlocks) {
    Device dev(simt::tiny_device(1 << 20));
    const unsigned too_many = dev.props().max_threads_per_block + 1;
    EXPECT_THROW(dev.launch({"bad", 1, too_many}, [](BlockCtx&) {}), simt::LaunchError);
}

TEST(Launch, SharedMemoryPersistsAcrossRegionsWithinBlock) {
    Device dev(simt::tiny_device(1 << 20));
    std::vector<int> result(4, 0);
    dev.launch({"regions", 4, 8}, [&](BlockCtx& blk) {
        auto scratch = blk.shared_alloc<int>(8);
        blk.for_each_thread([&](ThreadCtx& tc) { scratch[tc.tid()] = static_cast<int>(tc.tid()); });
        blk.single_thread([&](ThreadCtx&) {
            result[blk.block_idx()] = std::accumulate(scratch.begin(), scratch.end(), 0);
        });
    });
    for (int r : result) EXPECT_EQ(r, 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7);
}

TEST(Launch, SharedMemoryIsResetBetweenBlocks) {
    Device dev(simt::tiny_device(1 << 20));
    std::size_t allocs_ok = 0;
    const std::size_t cap = dev.props().shared_memory_per_block;
    dev.launch({"reset", 3, 1}, [&](BlockCtx& blk) {
        // Allocating nearly the whole arena works every block only if the
        // bump pointer was rewound between blocks.
        blk.shared_alloc<std::byte>(cap - 64);
        ++allocs_ok;
    });
    EXPECT_EQ(allocs_ok, 3u);
}

TEST(Launch, SharedOverflowThrows) {
    Device dev(simt::tiny_device(1 << 20));
    EXPECT_THROW(dev.launch({"overflow", 1, 1},
                            [&](BlockCtx& blk) {
                                blk.shared_alloc<std::byte>(
                                    dev.props().shared_memory_per_block + 1);
                            }),
                 simt::SharedMemoryOverflow);
}

TEST(Launch, ReverseThreadOrderGivesSameResultForRaceFreeKernels) {
    // A race-free kernel (each lane writes only its own slot) must be
    // order-insensitive; this is the contract kernels are written against.
    auto run = [](simt::ThreadOrder order) {
        Device dev(simt::tiny_device(1 << 20));
        dev.set_thread_order(order);
        std::vector<unsigned> out(64);
        dev.launch({"order", 1, 64}, [&](BlockCtx& blk) {
            blk.for_each_thread([&](ThreadCtx& tc) { out[tc.tid()] = tc.tid() * 3u; });
        });
        return out;
    };
    EXPECT_EQ(run(simt::ThreadOrder::Forward), run(simt::ThreadOrder::Reverse));
}

TEST(Launch, KernelLogAccumulates) {
    Device dev(simt::tiny_device(1 << 20));
    dev.launch({"k1", 1, 1}, [](BlockCtx&) {});
    dev.launch({"k2", 2, 2}, [](BlockCtx&) {});
    ASSERT_EQ(dev.kernel_log().size(), 2u);
    EXPECT_EQ(dev.kernel_log()[0].name, "k1");
    EXPECT_EQ(dev.kernel_log()[1].grid_dim, 2u);
    dev.clear_kernel_log();
    EXPECT_TRUE(dev.kernel_log().empty());
}

TEST(Launch, CountersAggregateAcrossBlocksAndLanes) {
    Device dev(simt::tiny_device(1 << 20));
    const auto stats = dev.launch({"counters", 3, 2}, [&](BlockCtx& blk) {
        blk.for_each_thread([&](ThreadCtx& tc) {
            tc.ops(10);
            tc.shared(5);
            tc.global_coalesced(100);
            tc.global_random(1);
        });
    });
    EXPECT_EQ(stats.totals.ops, 3u * 2u * 10u);
    EXPECT_EQ(stats.totals.shared_accesses, 3u * 2u * 5u);
    EXPECT_EQ(stats.totals.coalesced_bytes, 3u * 2u * 100u);
    EXPECT_EQ(stats.totals.random_accesses, 3u * 2u * 1u);
}

TEST(Launch, ModeledTimeIsPositiveAndIncludesLaunchOverhead) {
    Device dev(simt::tiny_device(1 << 20));
    const auto stats = dev.launch({"empty", 1, 1}, [](BlockCtx&) {});
    EXPECT_GE(stats.modeled_ms, dev.props().kernel_launch_overhead_ms);
}

TEST(Launch, SingleThreadRegionChargesLaneZero) {
    Device dev(simt::tiny_device(1 << 20));
    const auto stats = dev.launch({"single", 1, 32}, [&](BlockCtx& blk) {
        blk.single_thread([&](ThreadCtx& tc) { tc.ops(1000); });
    });
    EXPECT_EQ(stats.totals.ops, 1000u);
}

TEST(Launch, MoreWorkMeansMoreModeledTime) {
    Device dev(simt::tiny_device(1 << 20));
    const auto small = dev.launch({"small", 16, 32}, [&](BlockCtx& blk) {
        blk.for_each_thread([&](ThreadCtx& tc) { tc.ops(100); });
    });
    const auto big = dev.launch({"big", 16, 32}, [&](BlockCtx& blk) {
        blk.for_each_thread([&](ThreadCtx& tc) { tc.ops(100000); });
    });
    EXPECT_GT(big.modeled_ms, small.modeled_ms);
}

}  // namespace
