#include "simt/device_memory.hpp"

#include <gtest/gtest.h>

#include "simt/device.hpp"
#include "simt/device_buffer.hpp"

namespace {

using simt::DeviceBadAlloc;
using simt::DeviceMemory;

TEST(DeviceMemory, AllocationsAreAligned) {
    DeviceMemory mem(1 << 20, DeviceMemory::Mode::Backed);
    const std::size_t a = mem.allocate(10);
    const std::size_t b = mem.allocate(300);
    EXPECT_EQ(a % DeviceMemory::kAlignment, 0u);
    EXPECT_EQ(b % DeviceMemory::kAlignment, 0u);
    EXPECT_NE(a, b);
}

TEST(DeviceMemory, TracksBytesInUseWithAlignmentRounding) {
    DeviceMemory mem(1 << 20, DeviceMemory::Mode::Virtual);
    mem.allocate(10);  // rounds to 256
    EXPECT_EQ(mem.bytes_in_use(), 256u);
    mem.allocate(256);
    EXPECT_EQ(mem.bytes_in_use(), 512u);
}

TEST(DeviceMemory, ThrowsWhenFull) {
    DeviceMemory mem(1024, DeviceMemory::Mode::Virtual);
    mem.allocate(512);
    mem.allocate(512);
    EXPECT_THROW(mem.allocate(1), DeviceBadAlloc);
}

TEST(DeviceMemory, BadAllocCarriesContext) {
    DeviceMemory mem(1024, DeviceMemory::Mode::Virtual);
    mem.allocate(512);
    try {
        mem.allocate(1024);
        FAIL() << "expected DeviceBadAlloc";
    } catch (const DeviceBadAlloc& e) {
        EXPECT_EQ(e.requested(), 1024u);
        EXPECT_EQ(e.in_use(), 512u);
        EXPECT_EQ(e.capacity(), 1024u);
    }
}

TEST(DeviceMemory, DeallocateMakesSpaceReusable) {
    DeviceMemory mem(1024, DeviceMemory::Mode::Virtual);
    const std::size_t a = mem.allocate(1024);
    mem.deallocate(a);
    EXPECT_EQ(mem.bytes_in_use(), 0u);
    EXPECT_NO_THROW(mem.allocate(1024));
}

TEST(DeviceMemory, FreeListCoalescesNeighbours) {
    DeviceMemory mem(4096, DeviceMemory::Mode::Virtual);
    const std::size_t a = mem.allocate(1024);
    const std::size_t b = mem.allocate(1024);
    const std::size_t c = mem.allocate(1024);
    const std::size_t d = mem.allocate(1024);
    (void)d;
    // Free b, then a, then c: the three holes must merge into one 3 KB range.
    mem.deallocate(b);
    mem.deallocate(a);
    mem.deallocate(c);
    EXPECT_EQ(mem.largest_free_range(), 3 * 1024u);
    EXPECT_NO_THROW(mem.allocate(3 * 1024));
}

TEST(DeviceMemory, FragmentationCanFailLargeAllocation) {
    DeviceMemory mem(4096, DeviceMemory::Mode::Virtual);
    const std::size_t a = mem.allocate(1024);
    const std::size_t b = mem.allocate(1024);
    const std::size_t c = mem.allocate(1024);
    (void)a;
    (void)c;
    mem.deallocate(b);
    mem.allocate(1024);  // takes the final free quarter or the hole
    // 2 KB free total but split: a single 2 KB block must fail.
    EXPECT_THROW(mem.allocate(2 * 1024), DeviceBadAlloc);
}

TEST(DeviceMemory, PeakTracksHighWaterMark) {
    DeviceMemory mem(4096, DeviceMemory::Mode::Virtual);
    const std::size_t a = mem.allocate(2048);
    mem.deallocate(a);
    mem.allocate(256);
    EXPECT_EQ(mem.peak_bytes_in_use(), 2048u);
}

TEST(DeviceMemory, DoubleFreeIsIgnored) {
    DeviceMemory mem(4096, DeviceMemory::Mode::Virtual);
    const std::size_t a = mem.allocate(1024);
    mem.deallocate(a);
    mem.deallocate(a);
    EXPECT_EQ(mem.bytes_in_use(), 0u);
    EXPECT_EQ(mem.largest_free_range(), 4096u);
}

TEST(DeviceMemory, VirtualModeRefusesTranslation) {
    DeviceMemory mem(4096, DeviceMemory::Mode::Virtual);
    const std::size_t a = mem.allocate(128);
    EXPECT_THROW((void)mem.translate(a), simt::DeviceError);
}

TEST(DeviceMemory, BackedModeTranslatesWithinCapacity) {
    DeviceMemory mem(4096, DeviceMemory::Mode::Backed);
    const std::size_t a = mem.allocate(128);
    std::byte* p = mem.translate(a);
    ASSERT_NE(p, nullptr);
    p[0] = std::byte{42};
    EXPECT_EQ(mem.translate(a)[0], std::byte{42});
    EXPECT_THROW((void)mem.translate(1 << 20), simt::DeviceError);
}

TEST(DeviceMemory, ResetDropsEverything) {
    DeviceMemory mem(4096, DeviceMemory::Mode::Virtual);
    mem.allocate(1024);
    mem.allocate(1024);
    mem.reset();
    EXPECT_EQ(mem.bytes_in_use(), 0u);
    EXPECT_NO_THROW(mem.allocate(4096));
}

TEST(DeviceMemory, ZeroByteRequestsGetDistinctOffsets) {
    DeviceMemory mem(4096, DeviceMemory::Mode::Virtual);
    const std::size_t a = mem.allocate(0);
    const std::size_t b = mem.allocate(0);
    EXPECT_NE(a, b);
}

TEST(DeviceBuffer, RaiiReleasesOnDestruction) {
    simt::Device dev(simt::tiny_device(1 << 20));
    {
        simt::DeviceBuffer<float> buf(dev, 1024);
        EXPECT_EQ(dev.memory().bytes_in_use(), 1024 * sizeof(float));
    }
    EXPECT_EQ(dev.memory().bytes_in_use(), 0u);
}

TEST(DeviceBuffer, MoveTransfersOwnership) {
    simt::Device dev(simt::tiny_device(1 << 20));
    simt::DeviceBuffer<float> a(dev, 256);
    simt::DeviceBuffer<float> b(std::move(a));
    EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): documented state
    EXPECT_EQ(b.size(), 256u);
    EXPECT_EQ(dev.memory().allocation_count(), 1u);
    a = std::move(b);
    EXPECT_EQ(a.size(), 256u);
    EXPECT_EQ(dev.memory().allocation_count(), 1u);
}

TEST(DeviceBuffer, HostDeviceRoundTrip) {
    simt::Device dev(simt::tiny_device(1 << 20));
    std::vector<float> host = {3.0f, 1.0f, 2.0f};
    simt::DeviceBuffer<float> buf(dev, host.size());
    simt::copy_to_device(std::span<const float>(host), buf);
    std::vector<float> back(host.size());
    simt::copy_to_host(buf, std::span<float>(back));
    EXPECT_EQ(host, back);
}

TEST(DeviceBuffer, TransferTimeScalesWithBytes) {
    simt::Device dev(simt::tiny_device(1 << 20));
    const double ms_small = dev.transfer_ms(1024);
    const double ms_big = dev.transfer_ms(1024 * 1024);
    EXPECT_GT(ms_big, ms_small);
    EXPECT_NEAR(ms_big / ms_small, 1024.0, 1.0);
}

}  // namespace
