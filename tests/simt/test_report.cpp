#include "simt/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace {

TEST(Report, DescribeDeviceMentionsKeyNumbers) {
    const auto desc = simt::describe_device(simt::tesla_k40c());
    EXPECT_NE(desc.find("Tesla K40c"), std::string::npos);
    EXPECT_NE(desc.find("15 SMs"), std::string::npos);
    EXPECT_NE(desc.find("192"), std::string::npos);
    EXPECT_NE(desc.find("GB/s"), std::string::npos);
}

TEST(Report, KernelLogTableListsEveryLaunch) {
    simt::Device dev(simt::tiny_device(1 << 20));
    dev.launch({"alpha", 4, 32}, [](simt::BlockCtx& blk) {
        blk.for_each_thread([](simt::ThreadCtx& tc) { tc.ops(10); });
    });
    dev.launch({"beta", 2, 64}, [](simt::BlockCtx& blk) {
        blk.for_each_thread([](simt::ThreadCtx& tc) { tc.global_coalesced(1024); });
    });

    std::ostringstream os;
    simt::print_kernel_log(os, dev);
    const std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("beta"), std::string::npos);
    EXPECT_NE(out.find("TOTAL"), std::string::npos);
    EXPECT_NE(out.find("compute"), std::string::npos);
    EXPECT_NE(out.find("memory"), std::string::npos);
}

TEST(Report, SummaryFoldsRepeatedKernels) {
    simt::Device dev(simt::tiny_device(1 << 20));
    for (int i = 0; i < 5; ++i) {
        dev.launch({"repeat", 1, 1}, [](simt::BlockCtx&) {});
    }
    std::ostringstream os;
    simt::print_kernel_summary(os, dev);
    const std::string out = os.str();
    EXPECT_NE(out.find("repeat"), std::string::npos);
    EXPECT_NE(out.find("5"), std::string::npos);
    // Only one data row for the repeated kernel (header + 1 row).
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(Report, EmptyLogStillPrintsHeaderAndTotal) {
    simt::Device dev(simt::tiny_device(1 << 20));
    std::ostringstream os;
    simt::print_kernel_log(os, dev);
    EXPECT_NE(os.str().find("TOTAL"), std::string::npos);
}

}  // namespace
