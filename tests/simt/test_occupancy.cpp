// Occupancy-through-kernels tests: the modeled time of a launch must respond
// to shared-memory pressure and block-size choices the way the SM occupancy
// rules dictate.

#include <gtest/gtest.h>

#include "simt/device.hpp"

namespace {

double run_blocks(simt::Device& dev, unsigned blocks, unsigned threads,
                  std::size_t shared_bytes, std::uint64_t ops_per_lane) {
    const auto stats =
        dev.launch({"occ", blocks, threads}, [&](simt::BlockCtx& blk) {
            if (shared_bytes > 0) blk.shared_alloc<std::byte>(shared_bytes);
            blk.for_each_thread([&](simt::ThreadCtx& tc) { tc.ops(ops_per_lane); });
        });
    dev.clear_kernel_log();
    return stats.compute_ms;
}

TEST(Occupancy, SharedMemoryPressureSerializesBlocks) {
    simt::Device dev(simt::tiny_device(1 << 20));
    // Full-shared blocks: 1 resident per SM.  Tiny-shared blocks: up to 16.
    const double hogging = run_blocks(dev, 240, 64, 48 * 1024 - 64, 10000);
    const double lean = run_blocks(dev, 240, 64, 256, 10000);
    EXPECT_GT(hogging, lean * 4);
}

TEST(Occupancy, ThreadHeavyBlocksLimitResidency) {
    simt::Device dev(simt::tiny_device(1 << 20));
    // 1024-thread blocks: 2 per SM; 64-thread blocks: 16 per SM.  Same lane
    // count in flight per block-wave either way, but the small blocks have
    // 8x the slots, and with equal per-lane work the large-block makespan
    // is bounded below by the small-block one.
    const double big_blocks = run_blocks(dev, 60, 1024, 0, 10000);
    const double small_blocks = run_blocks(dev, 60, 64, 0, 10000);
    EXPECT_GE(big_blocks, small_blocks);
}

TEST(Occupancy, WaveQuantization) {
    simt::Device dev(simt::tiny_device(1 << 20));
    // 15 SMs x 16 blocks = 240 slots: 240 blocks take one wave, 241 takes two.
    const double one_wave = run_blocks(dev, 240, 32, 0, 100000);
    const double two_waves = run_blocks(dev, 241, 32, 0, 100000);
    EXPECT_NEAR(two_waves, 2 * one_wave, one_wave * 0.01);
}

TEST(Occupancy, SharedHighWaterIsReportedPerBlock) {
    simt::Device dev(simt::tiny_device(1 << 20));
    const auto stats = dev.launch({"hw", 4, 8}, [&](simt::BlockCtx& blk) {
        blk.shared_alloc<float>(100);
        blk.shared_alloc<std::uint32_t>(50);
    });
    EXPECT_GE(stats.shared_bytes_per_block, 100 * sizeof(float) + 50 * sizeof(std::uint32_t));
    EXPECT_LT(stats.shared_bytes_per_block, 1024u);
}

}  // namespace
