// Property fuzzing of the stream overlap model: for any random operation
// sequence, the overlapped makespan must respect the structural bounds of a
// three-engine machine.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "simt/stream.hpp"

namespace {

class TimelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimelineFuzz, MakespanBounds) {
    std::mt19937_64 rng(GetParam());
    std::uniform_real_distribution<double> dur(0.1, 20.0);

    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t streams = 1 + rng() % 4;
        simt::Timeline t(streams);
        double h2d_total = 0.0;
        double d2h_total = 0.0;
        double compute_total = 0.0;
        std::vector<double> per_stream(streams, 0.0);

        const int ops = 1 + static_cast<int>(rng() % 30);
        for (int i = 0; i < ops; ++i) {
            const std::size_t s = rng() % streams;
            const double ms = dur(rng);
            switch (rng() % 3) {
                case 0:
                    t.h2d(s, ms);
                    h2d_total += ms;
                    break;
                case 1:
                    t.compute(s, ms);
                    compute_total += ms;
                    break;
                default:
                    t.d2h(s, ms);
                    d2h_total += ms;
                    break;
            }
            per_stream[s] += ms;
        }

        const double elapsed = t.elapsed_ms();
        const double serial = t.serialized_ms();
        // Never better than the busiest engine or the busiest stream;
        // never worse than fully serial.
        const double lower = std::max({h2d_total, d2h_total, compute_total,
                                       *std::max_element(per_stream.begin(),
                                                         per_stream.end())});
        ASSERT_GE(elapsed, lower - 1e-9) << "trial " << trial;
        ASSERT_LE(elapsed, serial + 1e-9) << "trial " << trial;
        ASSERT_NEAR(serial, h2d_total + d2h_total + compute_total, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineFuzz, ::testing::Values(7, 14, 21, 28, 35, 42));

TEST(TimelineFuzz, SingleStreamAlwaysFullySerial) {
    std::mt19937_64 rng(3);
    std::uniform_real_distribution<double> dur(0.1, 5.0);
    simt::Timeline t(1);
    for (int i = 0; i < 40; ++i) {
        const double ms = dur(rng);
        switch (rng() % 3) {
            case 0: t.h2d(0, ms); break;
            case 1: t.compute(0, ms); break;
            default: t.d2h(0, ms); break;
        }
    }
    EXPECT_NEAR(t.elapsed_ms(), t.serialized_ms(), 1e-9);
}

}  // namespace
