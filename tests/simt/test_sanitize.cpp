// simt::sanitize coverage: the seeded-bug mutation tests (each deliberately
// broken kernel must raise exactly its finding kind), clean-run guarantees
// over the real GPU-ArraySort kernels, strict mode, and the zero-overhead
// contract (sanitizer off => KernelStats bit-identical).

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/gpu_array_sort.hpp"
#include "simt/device.hpp"
#include "simt/device_buffer.hpp"
#include "simt/report.hpp"
#include "simt/sanitize/selftest.hpp"
#include "simt/sanitize/tracked_span.hpp"
#include "thrustlite/device_vector.hpp"
#include "thrustlite/radix_sort.hpp"
#include "workload/generators.hpp"

namespace {

using simt::sanitize::FindingKind;
using simt::sanitize::SanitizeOptions;
using simt::sanitize::SeededBug;

simt::Device make_device() { return simt::Device(simt::tiny_device(256 << 20)); }

void enable_all_checks(simt::Device& dev) {
    dev.set_sanitize_options(SanitizeOptions::all());
}

// --- Mutation tests: every seeded bug must be caught with the right kind ---

TEST(SanitizeSeededBugs, NeighbourWriteRaisesRace) {
    auto dev = make_device();
    const auto report = run_seeded_bug(dev, SeededBug::NeighbourWrite);
    EXPECT_GT(report.count(FindingKind::Race), 0u);
    EXPECT_EQ(report.count(FindingKind::OutOfBounds), 0u);
    ASSERT_FALSE(report.findings.empty());
    EXPECT_EQ(report.findings[0].kernel, "selftest.neighbour_write");
}

TEST(SanitizeSeededBugs, SharedOverflowRaisesOutOfBounds) {
    auto dev = make_device();
    const auto report = run_seeded_bug(dev, SeededBug::SharedOverflow);
    EXPECT_GT(report.count(FindingKind::OutOfBounds), 0u);
    EXPECT_EQ(report.count(FindingKind::Race), 0u);
}

TEST(SanitizeSeededBugs, UninitReadRaisesUninitRead) {
    auto dev = make_device();
    const auto report = run_seeded_bug(dev, SeededBug::UninitRead);
    EXPECT_GT(report.count(FindingKind::UninitRead), 0u);
}

TEST(SanitizeSeededBugs, StridedAccessRaisesBankConflict) {
    auto dev = make_device();
    const auto report = run_seeded_bug(dev, SeededBug::BankConflictStride);
    EXPECT_GT(report.count(FindingKind::BankConflict), 0u);
    // The stride puts all 32 lanes on one bank: full serialization.
    bool saw_full_degree = false;
    for (const auto& l : report.launches) {
        saw_full_degree = saw_full_degree || l.worst_bank_degree == 32;
    }
    EXPECT_TRUE(saw_full_degree);
}

TEST(SanitizeSeededBugs, SelftestPassesEndToEnd) {
    auto dev = make_device();
    const auto self = simt::sanitize::run_selftest(dev);
    EXPECT_TRUE(self.ok) << self.log;
}

// --- Clean-run guarantees: the paper's kernels must produce no findings ---

TEST(SanitizeCleanRun, GpuArraySortIsClean) {
    auto dev = make_device();
    enable_all_checks(dev);
    auto ds = workload::make_dataset(16, 500);
    gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    const auto& report = dev.sanitize_report();
    EXPECT_TRUE(report.clean()) << report.findings.size() << " findings; first: "
                                << (report.findings.empty()
                                        ? ""
                                        : describe(report.findings[0]));
    // The phase kernels actually routed accesses through the shadow state.
    std::uint64_t tracked = 0;
    for (const auto& l : report.launches) tracked += l.tracked_accesses;
    EXPECT_GT(tracked, 0u);
}

TEST(SanitizeCleanRun, BinarySearchStrategyIsClean) {
    // The atomic-cursor strategy: shared counts/cursors are hammered by all
    // lanes concurrently, legal only because they are atomics — racecheck
    // must understand that.
    auto dev = make_device();
    enable_all_checks(dev);
    auto ds = workload::make_dataset(8, 500);
    gas::Options opts;
    opts.strategy = gas::BucketingStrategy::BinarySearch;
    gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
    const auto& report = dev.sanitize_report();
    EXPECT_TRUE(report.clean()) << (report.findings.empty()
                                        ? ""
                                        : describe(report.findings[0]));
}

TEST(SanitizeCleanRun, GlobalScratchFallbackIsClean) {
    // Arrays too big for the shared arena: phase 2 stages in global scratch
    // rows keyed by execution slot.
    auto dev = make_device();
    enable_all_checks(dev);
    const std::size_t n = 20000;  // 80 KB > 48 KB shared
    auto ds = workload::make_dataset(4, n);
    gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    const auto& report = dev.sanitize_report();
    EXPECT_TRUE(report.clean()) << (report.findings.empty()
                                        ? ""
                                        : describe(report.findings[0]));
}

TEST(SanitizeCleanRun, RadixSortIsClean) {
    auto dev = make_device();
    enable_all_checks(dev);
    auto host = workload::make_values(30000, workload::Distribution::Uniform, 3);
    std::vector<std::uint32_t> keys(host.size());
    for (std::size_t i = 0; i < host.size(); ++i) {
        keys[i] = static_cast<std::uint32_t>(host[i] * 1e6f);
    }
    thrustlite::device_vector<std::uint32_t> dkeys(dev, keys);
    thrustlite::stable_sort(dkeys);
    const auto& report = dev.sanitize_report();
    EXPECT_TRUE(report.clean()) << (report.findings.empty()
                                        ? ""
                                        : describe(report.findings[0]));
}

// --- Strict mode: findings abort the launch with SanitizeError ---

TEST(SanitizeStrict, ThrowsOnFindings) {
    auto dev = make_device();
    auto opts = SanitizeOptions::all();
    opts.strict = true;
    dev.set_sanitize_options(opts);
    simt::DeviceBuffer<std::uint32_t> out(dev, 8);
    EXPECT_THROW(
        dev.launch({"strict.racy", 1, 8},
                   [&](simt::BlockCtx& blk) {
                       auto view = blk.global_view(out.span());
                       blk.for_each_thread([&](simt::ThreadCtx& tc) {
                           view[(tc.tid() + 1) % 8] = tc.tid();
                           view[tc.tid()] = tc.tid();
                       });
                   }),
        simt::SanitizeError);
    // The findings were still recorded before the throw.
    EXPECT_FALSE(dev.sanitize_report().clean());
}

// --- Zero-overhead contract: sanitizer off => KernelStats bit-identical ---

bool deterministic_fields_equal(const simt::KernelStats& a, const simt::KernelStats& b) {
    return a.name == b.name && a.grid_dim == b.grid_dim && a.block_dim == b.block_dim &&
           a.shared_bytes_per_block == b.shared_bytes_per_block &&
           a.totals.ops == b.totals.ops &&
           a.totals.shared_accesses == b.totals.shared_accesses &&
           a.totals.coalesced_bytes == b.totals.coalesced_bytes &&
           a.totals.random_accesses == b.totals.random_accesses &&
           a.traffic_bytes == b.traffic_bytes && a.compute_ms == b.compute_ms &&
           a.memory_ms == b.memory_ms && a.modeled_ms == b.modeled_ms;
}

TEST(SanitizeOverhead, KernelStatsBitIdenticalWithChecksOnOrOff) {
    // The fig4-style workload: N arrays of n=1000 floats.  Every modeled
    // KernelStats field must be identical whether the sanitizer is off
    // (default) or fully on — instrumentation must never leak into the
    // performance model (only wall_ms, real time, may differ).
    const auto run = [](bool checked) {
        auto dev = make_device();
        if (checked) enable_all_checks(dev);
        auto ds = workload::make_dataset(64, 1000);
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
        return std::vector<simt::KernelStats>(dev.kernel_log().begin(),
                                              dev.kernel_log().end());
    };
    const auto off = run(false);
    const auto on = run(true);
    ASSERT_EQ(off.size(), on.size());
    for (std::size_t i = 0; i < off.size(); ++i) {
        EXPECT_TRUE(deterministic_fields_equal(off[i], on[i]))
            << "kernel log row " << i << " (" << off[i].name << ") diverged";
    }
}

TEST(SanitizeOverhead, DisabledDeviceRecordsNothing) {
    auto dev = make_device();  // default options: everything off
    auto ds = workload::make_dataset(4, 200);
    gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    EXPECT_TRUE(dev.sanitize_report().clean());
    EXPECT_TRUE(dev.sanitize_report().launches.empty());
}

// --- TrackedSpan mechanics ---

TEST(TrackedSpan, UntrackedViewDegradesToRawIndexing) {
    std::vector<int> data{1, 2, 3, 4};
    simt::sanitize::TrackedSpan<int> view{std::span<int>(data)};
    view[2] = 9;
    EXPECT_EQ(static_cast<int>(view[2]), 9);
    EXPECT_EQ(data[2], 9);
    EXPECT_EQ(view.size(), 4u);
}

TEST(TrackedSpan, SubspanPreservesTracking) {
    std::vector<int> data(8, 0);
    simt::sanitize::TrackedSpan<int> view{std::span<int>(data)};
    auto sub = view.subspan(4, 4);
    sub[0] = 7;
    EXPECT_EQ(data[4], 7);
}

TEST(SanitizeReportPrint, ProducesTableAndJson) {
    auto dev = make_device();
    enable_all_checks(dev);
    auto ds = workload::make_dataset(4, 200);
    gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    std::ostringstream os;
    simt::print_sanitize_report(os, dev);
    EXPECT_NE(os.str().find("no findings"), std::string::npos);
    const std::string json = simt::sanitize::to_json(dev.sanitize_report());
    EXPECT_NE(json.find("\"clean\":true"), std::string::npos);
}

}  // namespace
