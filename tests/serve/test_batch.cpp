// Pins the fusion invariant gas::serve relies on: a request's rows sorted as
// part of a fused batch are bit-identical to the same rows sorted by a direct
// gas::gpu_*_sort call (see core/batch.hpp).
#include "core/batch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/gpu_array_sort.hpp"
#include "core/pair_sort.hpp"
#include "core/ragged_sort.hpp"
#include "simt/device_buffer.hpp"
#include "workload/generators.hpp"

namespace {

simt::Device make_device() { return simt::Device(simt::tiny_device(256 << 20)); }

TEST(SortBatch, UniformFusedMatchesDirectPerSlice) {
    const std::size_t n = 128;
    auto a = workload::make_dataset(6, n, workload::Distribution::Uniform, 1).values;
    auto b = workload::make_dataset(10, n, workload::Distribution::Normal, 2).values;

    // Direct: each request sorted standalone.
    auto direct_a = a;
    auto direct_b = b;
    {
        auto dev = make_device();
        gas::gpu_array_sort(dev, direct_a, 6, n);
        gas::gpu_array_sort(dev, direct_b, 10, n);
    }

    // Fused: one concatenated launch over both requests.
    auto dev = make_device();
    std::vector<float> fused = a;
    fused.insert(fused.end(), b.begin(), b.end());
    simt::DeviceBuffer<float> buf(dev, fused.size());
    simt::copy_to_device(std::span<const float>(fused), buf);
    const std::vector<gas::BatchSlice> slices = {{0, 6}, {6, 10}};
    gas::sort_uniform_batch_on_device(dev, buf, slices, 16, n);
    simt::copy_to_host(buf, std::span<float>(fused));

    EXPECT_TRUE(std::equal(direct_a.begin(), direct_a.end(), fused.begin()));
    EXPECT_TRUE(std::equal(direct_b.begin(), direct_b.end(), fused.begin() + 6 * n));
}

TEST(SortBatch, RaggedFusedMatchesDirectPerSlice) {
    auto a = workload::make_ragged_dataset(12, 5, 400, workload::Distribution::Uniform, 3);
    auto b = workload::make_ragged_dataset(7, 1, 300, workload::Distribution::Exponential, 4);

    auto direct_a = a.values;
    auto direct_b = b.values;
    {
        auto dev = make_device();
        std::vector<std::uint64_t> oa(a.offsets.begin(), a.offsets.end());
        std::vector<std::uint64_t> ob(b.offsets.begin(), b.offsets.end());
        gas::gpu_ragged_sort(dev, direct_a, oa);
        gas::gpu_ragged_sort(dev, direct_b, ob);
    }

    auto dev = make_device();
    std::vector<float> fused = a.values;
    fused.insert(fused.end(), b.values.begin(), b.values.end());
    std::vector<std::uint64_t> offsets(a.offsets.begin(), a.offsets.end());
    for (std::size_t i = 1; i < b.offsets.size(); ++i) {
        offsets.push_back(a.values.size() + b.offsets[i]);
    }
    simt::DeviceBuffer<float> buf(dev, fused.size());
    simt::copy_to_device(std::span<const float>(fused), buf);
    const std::vector<gas::BatchSlice> slices = {{0, a.num_arrays()},
                                                 {a.num_arrays(), b.num_arrays()}};
    gas::sort_ragged_batch_on_device(dev, buf, offsets, slices);
    simt::copy_to_host(buf, std::span<float>(fused));

    EXPECT_TRUE(std::equal(direct_a.begin(), direct_a.end(), fused.begin()));
    EXPECT_TRUE(std::equal(direct_b.begin(), direct_b.end(),
                           fused.begin() + static_cast<std::ptrdiff_t>(a.values.size())));
}

TEST(SortBatch, PairsFusedMatchesDirectPerSlice) {
    const std::size_t n = 96;
    // Distinct keys per row: the pair sort leaves tie order unspecified, so
    // bit-identity is only promised for unique keys.
    auto make_pairs = [&](std::size_t num, unsigned seed, std::vector<float>& keys,
                          std::vector<float>& vals) {
        auto ds = workload::make_dataset(num, n, workload::Distribution::Uniform, seed);
        keys = ds.values;
        for (std::size_t a = 0; a < num; ++a) {  // de-duplicate within each row
            for (std::size_t i = 0; i < n; ++i) {
                keys[a * n + i] += static_cast<float>(i) * 1e-3f;
            }
        }
        vals.resize(num * n);
        for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = static_cast<float>(i);
    };
    std::vector<float> ka, va, kb, vb;
    make_pairs(5, 7, ka, va);
    make_pairs(9, 8, kb, vb);

    auto dka = ka, dva = va, dkb = kb, dvb = vb;
    {
        auto dev = make_device();
        gas::gpu_pair_sort(dev, dka, dva, 5, n);
        gas::gpu_pair_sort(dev, dkb, dvb, 9, n);
    }

    auto dev = make_device();
    std::vector<float> keys = ka, vals = va;
    keys.insert(keys.end(), kb.begin(), kb.end());
    vals.insert(vals.end(), vb.begin(), vb.end());
    simt::DeviceBuffer<float> kbuf(dev, keys.size());
    simt::DeviceBuffer<float> vbuf(dev, vals.size());
    simt::copy_to_device(std::span<const float>(keys), kbuf);
    simt::copy_to_device(std::span<const float>(vals), vbuf);
    const std::vector<gas::BatchSlice> slices = {{0, 5}, {5, 9}};
    gas::sort_pair_batch_on_device(dev, kbuf, vbuf, slices, 14, n);
    simt::copy_to_host(kbuf, std::span<float>(keys));
    simt::copy_to_host(vbuf, std::span<float>(vals));

    EXPECT_TRUE(std::equal(dka.begin(), dka.end(), keys.begin()));
    EXPECT_TRUE(std::equal(dva.begin(), dva.end(), vals.begin()));
    EXPECT_TRUE(std::equal(dkb.begin(), dkb.end(), keys.begin() + 5 * n));
    EXPECT_TRUE(std::equal(dvb.begin(), dvb.end(), vals.begin() + 5 * n));
}

TEST(SortBatch, RejectsSlicesThatDoNotTile) {
    auto dev = make_device();
    simt::DeviceBuffer<float> buf(dev, 4 * 32);
    using Slices = std::vector<gas::BatchSlice>;
    const Slices gap = {{0, 2}, {3, 1}};
    const Slices overlap = {{0, 3}, {2, 2}};
    const Slices shortfall = {{0, 2}};
    for (const auto& s : {gap, overlap, shortfall}) {
        EXPECT_THROW(gas::sort_uniform_batch_on_device(dev, buf, s, 4, 32),
                     std::invalid_argument);
    }
}

TEST(SortBatch, PairFootprintIsTwoAlignedPlanes) {
    const auto props = simt::tiny_device(64 << 20);
    const gas::Options opts;
    const std::size_t plane = 10 * 100 * sizeof(float);
    const std::size_t aligned =
        (plane + simt::DeviceMemory::kAlignment - 1) / simt::DeviceMemory::kAlignment *
        simt::DeviceMemory::kAlignment;
    EXPECT_EQ(gas::batch_footprint_bytes(10, 100, opts, props, 2), 2 * aligned);
    // Value-only batches include sort temporaries: strictly more than data.
    EXPECT_GT(gas::batch_footprint_bytes(10, 100, opts, props, 1), plane);
}

TEST(SortBatch, RaggedRowFitsSharedMatchesKernelLimit) {
    const auto props = simt::tiny_device(64 << 20);
    const gas::Options opts;
    EXPECT_TRUE(gas::ragged_row_fits_shared(0, opts, props));
    EXPECT_TRUE(gas::ragged_row_fits_shared(1000, opts, props));
    // 13 000 floats overflow the 48 KB shared budget (cf. RaggedSort.RejectsOversizedArrays).
    EXPECT_FALSE(gas::ragged_row_fits_shared(13000, opts, props));
    // Pairs stage two planes, halving the admissible row.
    const std::size_t edge = 6000;
    EXPECT_TRUE(gas::ragged_row_fits_shared(edge, opts, props, 1));
    EXPECT_FALSE(gas::ragged_row_fits_shared(edge, opts, props, 2));
}

}  // namespace
