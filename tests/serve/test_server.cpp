#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/gpu_array_sort.hpp"
#include "workload/generators.hpp"

namespace {

using gas::serve::AdmitPolicy;
using gas::serve::Job;
using gas::serve::JobKind;
using gas::serve::Priority;
using gas::serve::Response;
using gas::serve::Server;
using gas::serve::ServerConfig;
using gas::serve::Status;

simt::Device make_device(std::size_t bytes = 256 << 20) {
    return simt::Device(simt::tiny_device(bytes));
}

ServerConfig manual_config() {
    ServerConfig cfg;
    cfg.manual_pump = true;
    return cfg;
}

Job uniform_job(std::size_t num_arrays, std::size_t array_size, unsigned seed) {
    Job job;
    job.kind = JobKind::Uniform;
    job.num_arrays = num_arrays;
    job.array_size = array_size;
    job.values = workload::make_dataset(num_arrays, array_size,
                                        workload::Distribution::Uniform, seed)
                     .values;
    return job;
}

std::vector<float> sorted_rows(std::vector<float> values, std::size_t num_arrays,
                               std::size_t array_size, bool descending = false) {
    for (std::size_t a = 0; a < num_arrays; ++a) {
        auto* row = values.data() + a * array_size;
        if (descending) {
            std::sort(row, row + array_size, std::greater<float>());
        } else {
            std::sort(row, row + array_size);
        }
    }
    return values;
}

TEST(Server, ManualPumpBatchesCompatibleRequests) {
    auto dev = make_device();
    Server server(dev, manual_config());

    std::vector<Server::Ticket> tickets;
    std::vector<std::vector<float>> expected;
    for (unsigned i = 0; i < 8; ++i) {
        auto job = uniform_job(4, 64, i);
        expected.push_back(sorted_rows(job.values, 4, 64));
        tickets.push_back(server.submit(std::move(job)));
    }
    EXPECT_EQ(server.pump(), 8u);

    for (std::size_t i = 0; i < tickets.size(); ++i) {
        Response r = tickets[i].result.get();
        ASSERT_EQ(r.status, Status::Ok) << r.error;
        EXPECT_FALSE(r.cpu_fallback);
        EXPECT_EQ(r.values, expected[i]);
        EXPECT_EQ(r.batch_requests, 8u);  // all 8 fused into one batch
        EXPECT_EQ(r.batch_id, 1u);
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.completed, 8u);
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_EQ(stats.fused_arrays, 32u);
    EXPECT_DOUBLE_EQ(stats.batch_occupancy(), 8.0);
    EXPECT_GT(stats.modeled_kernel_ms, 0.0);
    EXPECT_EQ(stats.modeled_ms.count, 8u);
}

TEST(Server, ServedBytesMatchDirectSort) {
    auto job = uniform_job(6, 100, 77);
    auto direct = job.values;
    {
        auto dev = make_device();
        gas::gpu_array_sort(dev, direct, 6, 100);
    }
    auto dev = make_device();
    Server server(dev, manual_config());
    auto ticket = server.submit(std::move(job));
    // A second compatible request so the first rides a genuine fused batch.
    auto rider = server.submit(uniform_job(6, 100, 78));
    server.pump();
    EXPECT_EQ(ticket.result.get().values, direct);
    EXPECT_TRUE(rider.result.get().ok());
}

TEST(Server, IncompatibleRequestsFormSeparateBatches) {
    auto dev = make_device();
    Server server(dev, manual_config());
    auto a = server.submit(uniform_job(4, 64, 1));
    auto b = server.submit(uniform_job(4, 128, 2));  // different n: no fusing
    server.pump();
    Response ra = a.result.get();
    Response rb = b.result.get();
    EXPECT_EQ(ra.batch_requests, 1u);
    EXPECT_EQ(rb.batch_requests, 1u);
    EXPECT_NE(ra.batch_id, rb.batch_id);
    EXPECT_EQ(server.stats().batches, 2u);
}

TEST(Server, MaxBatchArraysCapsFusion) {
    auto dev = make_device();
    auto cfg = manual_config();
    cfg.max_batch_arrays = 6;
    Server server(dev, cfg);
    auto a = server.submit(uniform_job(4, 64, 1));
    auto b = server.submit(uniform_job(4, 64, 2));  // 4 + 4 > 6: must not ride
    server.pump();
    EXPECT_EQ(a.result.get().batch_requests, 1u);
    EXPECT_EQ(b.result.get().batch_requests, 1u);
    EXPECT_EQ(server.stats().batches, 2u);
}

TEST(Server, RaggedJobMatchesOracle) {
    auto dev = make_device();
    Server server(dev, manual_config());

    auto ds = workload::make_ragged_dataset(10, 3, 300, workload::Distribution::Normal, 5);
    Job job;
    job.kind = JobKind::Ragged;
    job.values = ds.values;
    job.offsets.assign(ds.offsets.begin(), ds.offsets.end());

    auto expected = ds.values;
    for (std::size_t a = 0; a < ds.num_arrays(); ++a) {
        std::sort(expected.begin() + static_cast<std::ptrdiff_t>(ds.offsets[a]),
                  expected.begin() + static_cast<std::ptrdiff_t>(ds.offsets[a + 1]));
    }

    auto ticket = server.submit(std::move(job));
    auto rider = server.submit([&] {  // ragged jobs of different shape still fuse
        auto ds2 = workload::make_ragged_dataset(4, 2, 150, workload::Distribution::Uniform, 6);
        Job j;
        j.kind = JobKind::Ragged;
        j.values = ds2.values;
        j.offsets.assign(ds2.offsets.begin(), ds2.offsets.end());
        return j;
    }());
    server.pump();

    Response r = ticket.result.get();
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.values, expected);
    EXPECT_EQ(r.batch_requests, 2u);
    EXPECT_TRUE(rider.result.get().ok());
}

TEST(Server, PairJobPermutesPayloadWithKeys) {
    auto dev = make_device();
    Server server(dev, manual_config());

    const std::size_t n = 50;
    Job job;
    job.kind = JobKind::Pairs;
    job.num_arrays = 3;
    job.array_size = n;
    job.values.resize(3 * n);
    job.payload.resize(3 * n);
    for (std::size_t i = 0; i < job.values.size(); ++i) {
        job.values[i] = static_cast<float>((i * 7919) % (3 * n));  // distinct per row
        job.payload[i] = static_cast<float>(i);
    }

    std::vector<std::pair<float, float>> oracle;
    std::vector<float> exp_keys(3 * n), exp_vals(3 * n);
    for (std::size_t a = 0; a < 3; ++a) {
        oracle.clear();
        for (std::size_t i = 0; i < n; ++i) {
            oracle.emplace_back(job.values[a * n + i], job.payload[a * n + i]);
        }
        std::sort(oracle.begin(), oracle.end());
        for (std::size_t i = 0; i < n; ++i) {
            exp_keys[a * n + i] = oracle[i].first;
            exp_vals[a * n + i] = oracle[i].second;
        }
    }

    auto ticket = server.submit(std::move(job));
    server.pump();
    Response r = ticket.result.get();
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.values, exp_keys);
    EXPECT_EQ(r.payload, exp_vals);
}

TEST(Server, DescendingOrderIsServed) {
    auto dev = make_device();
    Server server(dev, manual_config());
    auto job = uniform_job(4, 80, 9);
    job.opts.order = gas::SortOrder::Descending;
    auto expected = sorted_rows(job.values, 4, 80, /*descending=*/true);
    auto ticket = server.submit(std::move(job));
    server.pump();
    EXPECT_EQ(ticket.result.get().values, expected);
}

TEST(Server, ZeroCapacityQueueRejectsEverything) {
    auto dev = make_device();
    auto cfg = manual_config();
    cfg.queue_capacity = 0;
    Server server(dev, cfg);
    auto ticket = server.submit(uniform_job(2, 32, 1));
    Response r = ticket.result.get();
    EXPECT_EQ(r.status, Status::Rejected);
    EXPECT_EQ(r.values.size(), 2u * 32u);  // data handed back unsorted
    EXPECT_EQ(server.stats().rejected, 1u);
    EXPECT_EQ(server.pump(), 0u);
}

TEST(Server, FullQueueRejectsInManualMode) {
    auto dev = make_device();
    auto cfg = manual_config();
    cfg.queue_capacity = 2;
    Server server(dev, cfg);
    auto a = server.submit(uniform_job(2, 32, 1));
    auto b = server.submit(uniform_job(2, 32, 2));
    auto c = server.submit(uniform_job(2, 32, 3));
    EXPECT_EQ(c.result.get().status, Status::Rejected);
    server.pump();
    EXPECT_TRUE(a.result.get().ok());
    EXPECT_TRUE(b.result.get().ok());
    EXPECT_EQ(server.stats().queue_peak, 2u);
}

TEST(Server, DeadlineExpiredAtSubmitIsTimedOut) {
    auto dev = make_device();
    Server server(dev, manual_config());
    auto job = uniform_job(2, 32, 1);
    job.deadline = gas::serve::Clock::now() - std::chrono::milliseconds(5);
    auto ticket = server.submit(std::move(job));
    EXPECT_EQ(ticket.result.get().status, Status::TimedOut);
    EXPECT_EQ(server.stats().timed_out, 1u);
    EXPECT_EQ(server.stats().accepted, 0u);
}

TEST(Server, DeadlineExpiringInQueueIsTimedOut) {
    auto dev = make_device();
    Server server(dev, manual_config());
    auto doomed = server.submit(uniform_job(2, 32, 1).with_deadline_ms(1.0));
    auto healthy = server.submit(uniform_job(2, 32, 2));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(server.pump(), 2u);  // both retired: one served, one timed out
    EXPECT_EQ(doomed.result.get().status, Status::TimedOut);
    EXPECT_TRUE(healthy.result.get().ok());
    EXPECT_EQ(server.stats().timed_out, 1u);
    EXPECT_EQ(server.stats().completed, 1u);
}

TEST(Server, OversizedRequestFallsBackWithoutAbortingBatch) {
    // 4 MB device: a 3.5 MB uniform request exceeds the 90% admission budget.
    auto dev = make_device(4 << 20);
    Server server(dev, manual_config());

    auto big = uniform_job(1, (3 << 20) / sizeof(float) + (1 << 18), 1);
    auto big_expected = sorted_rows(big.values, big.num_arrays, big.array_size);
    auto small_a = server.submit(uniform_job(4, 64, 2));
    auto big_ticket = server.submit(std::move(big));
    auto small_b = server.submit(uniform_job(4, 64, 3));
    EXPECT_EQ(server.pump(), 3u);

    Response rb = big_ticket.result.get();
    ASSERT_EQ(rb.status, Status::Ok) << rb.error;
    EXPECT_TRUE(rb.cpu_fallback);
    EXPECT_EQ(rb.values, big_expected);

    Response ra = small_a.result.get();
    Response rc = small_b.result.get();
    EXPECT_TRUE(ra.ok());
    EXPECT_TRUE(rc.ok());
    EXPECT_FALSE(ra.cpu_fallback);  // the small batch stayed on the device
    EXPECT_FALSE(rc.cpu_fallback);
    EXPECT_EQ(ra.batch_requests, 2u);
    EXPECT_EQ(server.stats().cpu_fallbacks, 1u);
    EXPECT_EQ(server.stats().completed, 3u);
}

TEST(Server, PairRowTooLargeForSharedFallsBack) {
    auto dev = make_device();
    Server server(dev, manual_config());
    const std::size_t n = 13000;  // over the fused pair kernel's shared budget
    Job job;
    job.kind = JobKind::Pairs;
    job.num_arrays = 1;
    job.array_size = n;
    job.values.resize(n);
    job.payload.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        job.values[i] = static_cast<float>(n - i);
        job.payload[i] = static_cast<float>(i);
    }
    auto ticket = server.submit(std::move(job));
    server.pump();
    Response r = ticket.result.get();
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.cpu_fallback);
    EXPECT_TRUE(std::is_sorted(r.values.begin(), r.values.end()));
    EXPECT_EQ(r.payload.front(), static_cast<float>(n - 1));  // permuted along
}

TEST(Server, CancelRemovesQueuedRequest) {
    auto dev = make_device();
    Server server(dev, manual_config());
    auto ticket = server.submit(uniform_job(2, 32, 1));
    EXPECT_TRUE(server.cancel(ticket.id));
    EXPECT_FALSE(server.cancel(ticket.id));  // already gone
    EXPECT_EQ(ticket.result.get().status, Status::Cancelled);
    EXPECT_EQ(server.pump(), 0u);
    EXPECT_EQ(server.stats().cancelled, 1u);
}

TEST(Server, StopCancelPendingCompletesQueuedAsCancelled) {
    auto dev = make_device();
    Server server(dev, manual_config());
    auto a = server.submit(uniform_job(2, 32, 1));
    auto b = server.submit(uniform_job(2, 32, 2));
    server.stop(/*cancel_pending=*/true);
    EXPECT_EQ(a.result.get().status, Status::Cancelled);
    EXPECT_EQ(b.result.get().status, Status::Cancelled);
    // The server is stopped: new submissions are rejected.
    EXPECT_EQ(server.submit(uniform_job(2, 32, 3)).result.get().status, Status::Rejected);
    EXPECT_EQ(server.stats().cancelled, 2u);
}

TEST(Server, GracefulStopServesQueuedRequests) {
    auto dev = make_device();
    Server server(dev, manual_config());
    auto a = server.submit(uniform_job(2, 32, 1));
    auto b = server.submit(uniform_job(2, 32, 2));
    server.stop(/*cancel_pending=*/false);
    EXPECT_TRUE(a.result.get().ok());
    EXPECT_TRUE(b.result.get().ok());
    server.stop();  // idempotent
}

TEST(Server, HighPriorityServedFirst) {
    auto dev = make_device();
    auto cfg = manual_config();
    cfg.max_batch_requests = 1;  // one request per batch: order == batch_id
    Server server(dev, cfg);
    auto low = server.submit([&] {
        auto j = uniform_job(2, 32, 1);
        j.priority = Priority::Low;
        return j;
    }());
    auto normal = server.submit(uniform_job(2, 32, 2));
    auto high = server.submit([&] {
        auto j = uniform_job(2, 32, 3);
        j.priority = Priority::High;
        return j;
    }());
    server.pump();
    EXPECT_EQ(high.result.get().batch_id, 1u);
    EXPECT_EQ(normal.result.get().batch_id, 2u);
    EXPECT_EQ(low.result.get().batch_id, 3u);
}

TEST(Server, MalformedJobsThrow) {
    auto dev = make_device();
    Server server(dev, manual_config());

    Job undersized;
    undersized.kind = JobKind::Uniform;
    undersized.num_arrays = 4;
    undersized.array_size = 64;
    undersized.values.resize(10);
    EXPECT_THROW((void)server.submit(std::move(undersized)), std::invalid_argument);

    Job bad_offsets;
    bad_offsets.kind = JobKind::Ragged;
    bad_offsets.values.resize(10);
    bad_offsets.offsets = {0, 7, 5, 10};
    EXPECT_THROW((void)server.submit(std::move(bad_offsets)), std::invalid_argument);

    Job no_payload;
    no_payload.kind = JobKind::Pairs;
    no_payload.num_arrays = 1;
    no_payload.array_size = 8;
    no_payload.values.resize(8);
    EXPECT_THROW((void)server.submit(std::move(no_payload)), std::invalid_argument);
}

TEST(Server, EmptyJobCompletesImmediately) {
    auto dev = make_device();
    Server server(dev, manual_config());
    Job job;  // zero arrays
    auto ticket = server.submit(std::move(job));
    EXPECT_TRUE(ticket.result.get().ok());  // no pump needed
    EXPECT_EQ(server.stats().completed, 1u);
}

TEST(Server, PumpThrowsOnAsyncServer) {
    auto dev = make_device();
    Server server(dev, ServerConfig{});
    EXPECT_THROW((void)server.pump(), std::logic_error);
    server.stop();
}

TEST(Server, RejectsInvalidConfig) {
    auto dev = make_device();
    ServerConfig zero_streams;
    zero_streams.num_streams = 0;
    EXPECT_THROW(Server(dev, zero_streams), std::invalid_argument);
    ServerConfig bad_safety;
    bad_safety.memory_safety_factor = 0.0;
    EXPECT_THROW(Server(dev, bad_safety), std::invalid_argument);
    ServerConfig no_batch;
    no_batch.max_batch_requests = 0;
    EXPECT_THROW(Server(dev, no_batch), std::invalid_argument);
}

TEST(Server, StatsJsonHasTheStableSections) {
    auto dev = make_device();
    Server server(dev, manual_config());
    server.submit(uniform_job(2, 32, 1)).result.wait_for(std::chrono::seconds(0));
    server.pump();
    const std::string j = server.stats_json();
    for (const char* key : {"\"requests\"", "\"batching\"", "\"queue\"", "\"modeled\"",
                            "\"pool\"", "\"latency\"", "\"p99\"", "\"compute_utilization\""}) {
        EXPECT_NE(j.find(key), std::string::npos) << key << " missing from:\n" << j;
    }
}

TEST(Server, StatsCountGraphSubmitsPerBatch) {
    auto dev = make_device();
    Server server(dev, manual_config());
    auto ticket = server.submit(uniform_job(4, 200, 7));
    server.pump();
    ASSERT_TRUE(ticket.result.get().ok());

    const auto s = server.stats();
    EXPECT_GE(s.graphs, 1u);  // the fused batch ran as one submitted graph
    EXPECT_GT(s.graph_kernel_nodes, 0u);
    EXPECT_GT(s.graph_host_nodes, 0u);  // the phase-3 dispatch decision node
    EXPECT_GT(s.graph_device_enqueued, 0u);
    EXPECT_EQ(s.graph_nodes, s.graph_kernel_nodes + s.graph_host_nodes);

    const std::string j = server.stats_json();
    EXPECT_NE(j.find("\"graph\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"device_enqueued\""), std::string::npos) << j;
}

TEST(Server, AsyncProducersDrainToCompletion) {
    auto dev = make_device();
    ServerConfig cfg;
    cfg.queue_capacity = 8;  // force backpressure on the producers
    cfg.policy = AdmitPolicy::Block;
    cfg.num_streams = 2;
    Server server(dev, cfg);

    constexpr std::size_t kProducers = 4;
    constexpr std::size_t kPerProducer = 25;
    std::vector<std::vector<Server::Ticket>> tickets(kProducers);
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (std::size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (std::size_t i = 0; i < kPerProducer; ++i) {
                tickets[p].push_back(server.submit(
                    uniform_job(2, 64, static_cast<unsigned>(p * 1000 + i))));
            }
        });
    }
    for (auto& t : producers) t.join();

    std::size_t ok = 0;
    for (auto& per_producer : tickets) {
        for (auto& t : per_producer) {
            Response r = t.result.get();
            ASSERT_EQ(r.status, Status::Ok) << r.error;
            ++ok;
        }
    }
    EXPECT_EQ(ok, kProducers * kPerProducer);
    server.drain();

    const auto stats = server.stats();
    EXPECT_EQ(stats.completed, kProducers * kPerProducer);
    EXPECT_EQ(stats.queue_depth, 0u);
    EXPECT_EQ(stats.wall_ms.count, kProducers * kPerProducer);
    EXPECT_GT(stats.modeled_overlap_ms, 0.0);
    EXPECT_GE(stats.modeled_serial_ms, stats.modeled_overlap_ms);
    EXPECT_LE(stats.compute_utilization, 1.0 + 1e-9);
    server.stop();
}

TEST(Server, AsyncGracefulStopServesQueuedRequests) {
    auto dev = make_device();
    ServerConfig cfg;
    cfg.linger_us = 200.0;  // encourage a still-queued tail at stop()
    Server server(dev, cfg);
    std::vector<Server::Ticket> tickets;
    for (unsigned i = 0; i < 16; ++i) {
        tickets.push_back(server.submit(uniform_job(2, 64, i)));
    }
    server.stop(/*cancel_pending=*/false);
    for (auto& t : tickets) {
        EXPECT_EQ(t.result.get().status, Status::Ok);
    }
}

TEST(Server, PoolReusesBuffersAcrossBatches) {
    auto dev = make_device();
    Server server(dev, manual_config());
    for (unsigned round = 0; round < 4; ++round) {
        std::vector<Server::Ticket> tickets;
        for (unsigned i = 0; i < 4; ++i) {
            tickets.push_back(server.submit(uniform_job(4, 64, round * 10 + i)));
        }
        server.pump();
        for (auto& t : tickets) ASSERT_TRUE(t.result.get().ok());
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.batches, 4u);
    // Every batch after the first leases the same size class from the pool.
    EXPECT_EQ(stats.pool.device_allocs, 1u);
    EXPECT_EQ(stats.pool.reuse_hits, 3u);
}

}  // namespace
