// Server resilience (gas::resilient wiring): fused-batch retries, pool
// acquisition retries, per-request verification + quarantine, and the
// off-mode guarantee that verification adds nothing when disabled.

#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "workload/generators.hpp"

namespace {

using gas::serve::Job;
using gas::serve::JobKind;
using gas::serve::Response;
using gas::serve::Server;
using gas::serve::ServerConfig;
using gas::serve::Status;

simt::Device make_device(std::size_t bytes = 256 << 20) {
    return simt::Device(simt::tiny_device(bytes));
}

ServerConfig manual_config() {
    ServerConfig cfg;
    cfg.manual_pump = true;
    cfg.retry.seed = 31;
    return cfg;
}

Job uniform_job(std::size_t num_arrays, std::size_t array_size, unsigned seed) {
    Job job;
    job.kind = JobKind::Uniform;
    job.num_arrays = num_arrays;
    job.array_size = array_size;
    job.values = workload::make_dataset(num_arrays, array_size,
                                        workload::Distribution::Uniform, seed)
                     .values;
    return job;
}

std::vector<float> sorted_rows(std::vector<float> values, std::size_t num_arrays,
                               std::size_t array_size) {
    for (std::size_t a = 0; a < num_arrays; ++a) {
        auto* row = values.data() + a * array_size;
        std::sort(row, row + array_size);
    }
    return values;
}

TEST(ServerResilience, TransientLaunchFaultRetriesTheFusedBatch) {
    auto dev = make_device();
    simt::faults::FaultPlan plan;
    plan.launch_fail_at = {2};  // refuse one launch of the first attempt
    dev.set_fault_plan(plan);
    Server server(dev, manual_config());

    std::vector<Server::Ticket> tickets;
    std::vector<std::vector<float>> expected;
    for (unsigned i = 0; i < 4; ++i) {
        auto job = uniform_job(4, 64, i);
        expected.push_back(sorted_rows(job.values, 4, 64));
        tickets.push_back(server.submit(std::move(job)));
    }
    server.pump();

    for (std::size_t i = 0; i < tickets.size(); ++i) {
        Response r = tickets[i].result.get();
        ASSERT_EQ(r.status, Status::Ok) << r.error;
        EXPECT_FALSE(r.cpu_fallback);  // the retry succeeded on the device
        EXPECT_EQ(r.values, expected[i]);
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.retries, 1u);
    EXPECT_EQ(stats.quarantined, 0u);
    EXPECT_EQ(stats.verify_failures, 0u);
    EXPECT_GT(stats.retry_backoff_ms, 0.0);
    EXPECT_EQ(dev.fault_report().launch_failures, 1u);
}

TEST(ServerResilience, ExhaustedRetriesQuarantineTheWholeBatchToHost) {
    auto dev = make_device();
    simt::faults::FaultPlan plan;
    plan.launch_fail_every = 1;  // the device never works
    dev.set_fault_plan(plan);
    auto cfg = manual_config();
    cfg.retry.max_attempts = 2;
    Server server(dev, cfg);

    std::vector<Server::Ticket> tickets;
    std::vector<std::vector<float>> expected;
    for (unsigned i = 0; i < 3; ++i) {
        auto job = uniform_job(4, 64, 10 + i);
        expected.push_back(sorted_rows(job.values, 4, 64));
        tickets.push_back(server.submit(std::move(job)));
    }
    server.pump();

    for (std::size_t i = 0; i < tickets.size(); ++i) {
        Response r = tickets[i].result.get();
        ASSERT_EQ(r.status, Status::Ok) << r.error;
        EXPECT_TRUE(r.cpu_fallback);  // served, but by the host path
        EXPECT_EQ(r.values, expected[i]);
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.retries, 1u);      // max_attempts - 1 batch re-attempts
    EXPECT_EQ(stats.quarantined, 3u);  // every request isolated to the host
    EXPECT_EQ(stats.cpu_fallbacks, 3u);
}

TEST(ServerResilience, NonTransientErrorsDoNotRetry) {
    // A request too large for the queue-to-device path never reaches retry
    // machinery; more importantly, retry counters stay untouched on a plain
    // fault-free run.
    auto dev = make_device();
    Server server(dev, manual_config());
    auto t = server.submit(uniform_job(4, 64, 1));
    server.pump();
    EXPECT_TRUE(t.result.get().ok());
    const auto stats = server.stats();
    EXPECT_EQ(stats.retries, 0u);
    EXPECT_EQ(stats.alloc_retries, 0u);
    EXPECT_EQ(stats.quarantined, 0u);
    EXPECT_EQ(stats.verify_failures, 0u);
    EXPECT_EQ(stats.retry_backoff_ms, 0.0);
}

TEST(ServerResilience, AllocationFaultRetriesThroughThePoolTrim) {
    auto dev = make_device();
    simt::faults::FaultPlan plan;
    plan.alloc_fail_at = {1};  // first pool acquisition refused once
    dev.set_fault_plan(plan);
    Server server(dev, manual_config());
    auto t = server.submit(uniform_job(4, 64, 2));
    server.pump();
    Response r = t.result.get();
    ASSERT_EQ(r.status, Status::Ok) << r.error;
    EXPECT_FALSE(r.cpu_fallback);
    const auto stats = server.stats();
    EXPECT_EQ(stats.alloc_retries, 1u);
    EXPECT_EQ(stats.retries, 0u);  // cured below the batch level
    EXPECT_GT(stats.retry_backoff_ms, 0.0);
}

TEST(ServerResilience, VerifyResponsesQuarantinesOnlyTheCorruptedRequest) {
    const std::size_t arrays = 4;
    const std::size_t n = 64;

    // Count the launches of one clean verified batch: the verify kernel is
    // last, so corrupting (undetected) at that ordinal flips a bit in the
    // fused data buffer after the sort finished writing it.
    std::size_t verify_ordinal = 0;
    {
        auto dev = make_device();
        auto cfg = manual_config();
        cfg.verify_responses = true;
        Server server(dev, cfg);
        std::vector<Server::Ticket> tickets;
        for (unsigned i = 0; i < 4; ++i) {
            tickets.push_back(server.submit(uniform_job(arrays, n, 20 + i)));
        }
        server.pump();
        for (auto& t : tickets) EXPECT_TRUE(t.result.get().ok());
        verify_ordinal = dev.kernel_log().size();
        ASSERT_EQ(dev.kernel_log().back().name, "gas.verify");
        EXPECT_EQ(server.stats().verify_failures, 0u);
    }

    auto dev = make_device();
    simt::faults::FaultPlan plan;
    plan.corrupt_at = {verify_ordinal};
    plan.detected = false;  // silent: only response verification can see it
    dev.set_fault_plan(plan);
    auto cfg = manual_config();
    cfg.verify_responses = true;
    Server server(dev, cfg);

    std::vector<Server::Ticket> tickets;
    std::vector<std::vector<float>> expected;
    for (unsigned i = 0; i < 4; ++i) {
        auto job = uniform_job(arrays, n, 20 + i);
        expected.push_back(sorted_rows(job.values, arrays, n));
        tickets.push_back(server.submit(std::move(job)));
    }
    server.pump();

    std::size_t fallbacks = 0;
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        Response r = tickets[i].result.get();
        ASSERT_EQ(r.status, Status::Ok) << r.error;
        EXPECT_EQ(r.values, expected[i]) << "request " << i << " returned wrong bytes";
        fallbacks += r.cpu_fallback ? 1 : 0;
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.verify_failures, 1u);  // one bit flip -> one row -> one request
    EXPECT_EQ(stats.quarantined, 1u);
    EXPECT_EQ(fallbacks, 1u);  // its batchmates were served from the device
    EXPECT_EQ(stats.retries, 0u);
    EXPECT_EQ(dev.fault_report().corruptions, 1u);
}

TEST(ServerResilience, VerifyOffReproducesTodaysBytes) {
    auto run = [](bool verify) {
        auto dev = make_device();
        auto cfg = manual_config();
        cfg.verify_responses = verify;
        Server server(dev, cfg);
        std::vector<Server::Ticket> tickets;
        for (unsigned i = 0; i < 4; ++i) {
            tickets.push_back(server.submit(uniform_job(4, 96, 40 + i)));
        }
        server.pump();
        std::vector<std::vector<float>> out;
        for (auto& t : tickets) out.push_back(t.result.get().values);
        return std::pair{out, server.stats()};
    };
    const auto [plain, plain_stats] = run(false);
    const auto [verified, verified_stats] = run(true);
    EXPECT_EQ(plain, verified);
    // Verification is honestly modeled (extra kernel time) but free when off.
    EXPECT_GT(verified_stats.modeled_kernel_ms, plain_stats.modeled_kernel_ms);
    EXPECT_EQ(plain_stats.verify_failures, 0u);
    EXPECT_EQ(verified_stats.verify_failures, 0u);
}

TEST(ServerResilience, StatsJsonReportsTheResilienceBlock) {
    auto dev = make_device();
    simt::faults::FaultPlan plan;
    plan.launch_fail_at = {2};
    dev.set_fault_plan(plan);
    Server server(dev, manual_config());
    auto t = server.submit(uniform_job(4, 64, 3));
    auto rider = server.submit(uniform_job(4, 64, 4));
    server.pump();
    EXPECT_TRUE(t.result.get().ok());
    EXPECT_TRUE(rider.result.get().ok());
    const std::string json = server.stats_json();
    EXPECT_NE(json.find("\"resilience\""), std::string::npos);
    EXPECT_NE(json.find("\"retries\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"quarantined\": 0"), std::string::npos);
}

TEST(ServerResilience, RaggedAndPairBatchesVerifyToo) {
    // Ragged: fault-free verified run serves correct bytes with no
    // quarantine; the ragged device path sorts ascending by contract.
    {
        auto dev = make_device();
        auto cfg = manual_config();
        cfg.verify_responses = true;
        Server server(dev, cfg);
        auto rag = workload::make_ragged_dataset(6, 2, 48, workload::Distribution::Uniform, 50);
        Job job;
        job.kind = JobKind::Ragged;
        job.offsets.assign(rag.offsets.begin(), rag.offsets.end());
        job.values = rag.values;
        auto want = rag.values;
        for (std::size_t a = 0; a + 1 < job.offsets.size(); ++a) {
            std::sort(want.begin() + static_cast<std::ptrdiff_t>(job.offsets[a]),
                      want.begin() + static_cast<std::ptrdiff_t>(job.offsets[a + 1]));
        }
        auto t = server.submit(std::move(job));
        server.pump();
        Response r = t.result.get();
        ASSERT_EQ(r.status, Status::Ok) << r.error;
        EXPECT_EQ(r.values, want);
        EXPECT_EQ(server.stats().verify_failures, 0u);
    }
    // Pairs: verified run keeps keys sorted and payloads bound.
    {
        auto dev = make_device();
        auto cfg = manual_config();
        cfg.verify_responses = true;
        Server server(dev, cfg);
        Job job;
        job.kind = JobKind::Pairs;
        job.num_arrays = 4;
        job.array_size = 32;
        job.values = workload::make_dataset(4, 32, workload::Distribution::Uniform, 51).values;
        job.payload.resize(job.values.size());
        for (std::size_t i = 0; i < job.payload.size(); ++i) {
            job.payload[i] = static_cast<float>(i);
        }
        const auto keys_in = job.values;
        auto t = server.submit(std::move(job));
        server.pump();
        Response r = t.result.get();
        ASSERT_EQ(r.status, Status::Ok) << r.error;
        for (std::size_t a = 0; a < 4; ++a) {
            EXPECT_TRUE(std::is_sorted(r.values.begin() + static_cast<std::ptrdiff_t>(a * 32),
                                       r.values.begin() + static_cast<std::ptrdiff_t>((a + 1) * 32)));
            for (std::size_t i = 0; i < 32; ++i) {
                // payload j travelled with key: key_out[i] == keys_in[payload[i]]
                const auto j = static_cast<std::size_t>(r.payload[a * 32 + i]);
                EXPECT_EQ(r.values[a * 32 + i], keys_in[j]);
            }
        }
        EXPECT_EQ(server.stats().verify_failures, 0u);
        EXPECT_EQ(server.stats().quarantined, 0u);
    }
}

}  // namespace
