#include "serve/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "simt/device.hpp"
#include "simt/error.hpp"

namespace {

using gas::serve::BufferPool;

simt::Device make_device(std::size_t bytes = 16 << 20) {
    return simt::Device(simt::tiny_device(bytes));
}

TEST(BufferPool, ClassBytesIsPow2AtLeastAlignment) {
    EXPECT_EQ(BufferPool::class_bytes(0), simt::DeviceMemory::kAlignment);
    EXPECT_EQ(BufferPool::class_bytes(1), simt::DeviceMemory::kAlignment);
    EXPECT_EQ(BufferPool::class_bytes(256), 256u);
    EXPECT_EQ(BufferPool::class_bytes(257), 512u);
    EXPECT_EQ(BufferPool::class_bytes(1000), 1024u);
    EXPECT_EQ(BufferPool::class_bytes(1 << 20), std::size_t{1} << 20);
}

TEST(BufferPool, ReusesReleasedRangeOfSameClass) {
    auto dev = make_device();
    BufferPool pool(dev.memory());

    auto a = pool.acquire(1000);  // class 1024
    EXPECT_EQ(a.bytes, 1024u);
    pool.release(a);
    auto b = pool.acquire(600);  // same class, must come from the free list
    EXPECT_EQ(b.offset, a.offset);
    EXPECT_EQ(pool.stats().acquires, 2u);
    EXPECT_EQ(pool.stats().reuse_hits, 1u);
    EXPECT_EQ(pool.stats().device_allocs, 1u);
    EXPECT_DOUBLE_EQ(pool.stats().reuse_rate(), 0.5);
}

TEST(BufferPool, DistinctClassesDoNotShareRanges) {
    auto dev = make_device();
    BufferPool pool(dev.memory());

    auto small = pool.acquire(256);
    pool.release(small);
    auto big = pool.acquire(4096);  // different class: no reuse possible
    EXPECT_EQ(pool.stats().reuse_hits, 0u);
    EXPECT_EQ(pool.stats().device_allocs, 2u);
    pool.release(big);
}

TEST(BufferPool, CachedBytesStayAllocatedUntilTrim) {
    auto dev = make_device();
    BufferPool pool(dev.memory());

    auto lease = pool.acquire(1 << 16);
    pool.release(lease);
    EXPECT_EQ(pool.stats().bytes_cached, std::size_t{1} << 16);
    EXPECT_GT(dev.memory().bytes_in_use(), 0u);  // held on the free list

    pool.trim();
    EXPECT_EQ(pool.stats().bytes_cached, 0u);
    EXPECT_EQ(dev.memory().bytes_in_use(), 0u);
}

TEST(BufferPool, DestructorReturnsCachedRanges) {
    auto dev = make_device();
    {
        BufferPool pool(dev.memory());
        pool.release(pool.acquire(1 << 12));
        EXPECT_GT(dev.memory().bytes_in_use(), 0u);
    }
    EXPECT_EQ(dev.memory().bytes_in_use(), 0u);
}

TEST(BufferPool, PeakTracksConcurrentLeases) {
    auto dev = make_device();
    BufferPool pool(dev.memory());

    auto a = pool.acquire(1 << 10);
    auto b = pool.acquire(1 << 10);
    EXPECT_EQ(pool.stats().bytes_leased, std::size_t{2} << 10);
    pool.release(a);
    pool.release(b);
    EXPECT_EQ(pool.stats().bytes_leased, 0u);
    EXPECT_EQ(pool.stats().peak_leased, std::size_t{2} << 10);
}

TEST(BufferPool, PropagatesDeviceBadAlloc) {
    auto dev = make_device(1 << 20);
    BufferPool pool(dev.memory());
    EXPECT_THROW((void)pool.acquire(2 << 20), simt::DeviceBadAlloc);
}

TEST(BufferPool, ReleaseOfEmptyLeaseIsNoOp) {
    auto dev = make_device();
    BufferPool pool(dev.memory());
    BufferPool::Lease empty;
    pool.release(empty);
    EXPECT_EQ(pool.stats().releases, 0u);
}

// The fleet server gives every shard its own pool, but one pool still sees
// multiple threads: the shard's scheduler acquires/releases while peers call
// trim() (retry-path defragmentation) and stats() from their own threads.
// Hammer all four entry points concurrently; under GAS_SANITIZE=thread this
// is the TSan proof of the pool's internal locking, and in any build the
// final accounting must balance exactly.
TEST(BufferPool, SurvivesConcurrentBorrowAndTrim) {
    auto dev = make_device(64 << 20);
    BufferPool pool(dev.memory());

    constexpr unsigned kSchedulers = 4;
    constexpr unsigned kIterations = 400;
    constexpr std::size_t kClasses[] = {1 << 10, 1 << 12, 1 << 14};
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> acquired{0};

    std::vector<std::thread> schedulers;
    for (unsigned t = 0; t < kSchedulers; ++t) {
        schedulers.emplace_back([&, t] {
            std::vector<BufferPool::Lease> held;
            for (unsigned i = 0; i < kIterations; ++i) {
                held.push_back(pool.acquire(kClasses[(t + i) % 3]));
                acquired.fetch_add(1, std::memory_order_relaxed);
                if (held.size() >= 4) {  // keep a few live leases in flight
                    pool.release(held.front());
                    held.erase(held.begin());
                }
            }
            for (const auto& lease : held) pool.release(lease);
        });
    }
    std::thread trimmer([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            pool.trim();
            (void)pool.stats();
            std::this_thread::yield();
        }
    });
    for (auto& s : schedulers) s.join();
    stop.store(true, std::memory_order_relaxed);
    trimmer.join();

    const auto stats = pool.stats();
    EXPECT_EQ(stats.acquires, acquired.load());
    EXPECT_EQ(stats.acquires, kSchedulers * kIterations);
    EXPECT_EQ(stats.releases, stats.acquires);  // every lease went back
    EXPECT_EQ(stats.bytes_leased, 0u);
    EXPECT_EQ(stats.reuse_hits + stats.device_allocs, stats.acquires);
    pool.trim();
    EXPECT_EQ(pool.stats().bytes_cached, 0u);
    EXPECT_EQ(dev.memory().bytes_in_use(), 0u);  // accounting balances
}

}  // namespace
