// gas::serve::Server over a DeviceFleet: routing policies end to end, idle
// work stealing, device-loss quarantine + byte-identical re-routing, the
// last-device-standing host fallback, heterogeneous eligibility, and the
// concurrent (scheduler-thread) fleet path.

#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/batch.hpp"
#include "fleet/fleet.hpp"
#include "workload/generators.hpp"

namespace {

using gas::fleet::DeviceFleet;
using gas::fleet::RoutePolicy;
using gas::serve::Job;
using gas::serve::JobKind;
using gas::serve::Response;
using gas::serve::Server;
using gas::serve::ServerConfig;
using gas::serve::Status;

ServerConfig manual_config(RoutePolicy policy = RoutePolicy::LeastLoaded) {
    ServerConfig cfg;
    cfg.manual_pump = true;
    cfg.route_policy = policy;
    cfg.retry.seed = 31;
    return cfg;
}

Job uniform_job(std::size_t num_arrays, std::size_t array_size, unsigned seed) {
    Job job;
    job.kind = JobKind::Uniform;
    job.num_arrays = num_arrays;
    job.array_size = array_size;
    job.values = workload::make_dataset(num_arrays, array_size,
                                        workload::Distribution::Uniform, seed)
                     .values;
    return job;
}

/// A uniform job whose keys all sit at `frac` of the paper's key domain —
/// the shape KeyRange sharding is built for.
Job banded_job(std::size_t num_arrays, std::size_t array_size, double frac,
               unsigned seed) {
    Job job = uniform_job(num_arrays, array_size, seed);
    const float base = static_cast<float>(
        frac * gas::fleet::Router::kDefaultKeySpace);
    for (std::size_t i = 0; i < job.values.size(); ++i) {
        job.values[i] = base + static_cast<float>(i % 1024);
    }
    return job;
}

std::vector<float> sorted_rows(std::vector<float> values, std::size_t num_arrays,
                               std::size_t array_size) {
    for (std::size_t a = 0; a < num_arrays; ++a) {
        auto* row = values.data() + a * array_size;
        std::sort(row, row + array_size);
    }
    return values;
}

simt::faults::FaultPlan kill_plan() {
    simt::faults::FaultPlan plan;
    plan.launch_fail_every = 1;  // every launch refuses: the device is gone
    return plan;
}

TEST(FleetServer, LeastLoadedSpreadsEqualWorkEvenly) {
    DeviceFleet fleet(4, simt::tiny_device(256 << 20));
    Server server(fleet, manual_config());
    ASSERT_EQ(server.num_devices(), 4u);

    std::vector<Server::Ticket> tickets;
    std::vector<std::vector<float>> expected;
    for (unsigned i = 0; i < 8; ++i) {
        auto job = uniform_job(4, 64, i);
        expected.push_back(sorted_rows(job.values, 4, 64));
        tickets.push_back(server.submit(std::move(job)));
    }
    server.pump();

    for (std::size_t i = 0; i < tickets.size(); ++i) {
        Response r = tickets[i].result.get();
        ASSERT_EQ(r.status, Status::Ok) << r.error;
        EXPECT_FALSE(r.cpu_fallback);
        EXPECT_EQ(r.values, expected[i]);
    }
    const auto stats = server.stats();
    ASSERT_EQ(stats.devices.size(), 4u);
    for (const auto& d : stats.devices) {
        EXPECT_EQ(d.routed, 2u) << d.name;  // equal jobs round-robin the fleet
        EXPECT_EQ(d.completed, 2u) << d.name;
        EXPECT_GT(d.modeled_kernel_ms, 0.0) << d.name;
    }
    EXPECT_EQ(stats.completed, 8u);
    EXPECT_EQ(stats.reroutes, 0u);
    EXPECT_EQ(stats.devices_quarantined, 0u);
}

TEST(FleetServer, FleetBytesMatchSingleDeviceBytes) {
    std::vector<Response> fleet_responses;
    {
        DeviceFleet fleet(3, simt::tiny_device(256 << 20));
        Server server(fleet, manual_config());
        std::vector<Server::Ticket> tickets;
        for (unsigned i = 0; i < 6; ++i) {
            tickets.push_back(server.submit(uniform_job(4, 100, 100 + i)));
        }
        server.pump();
        for (auto& t : tickets) fleet_responses.push_back(t.result.get());
    }
    simt::Device solo(simt::tiny_device(256 << 20));
    Server server(solo, manual_config());
    std::vector<Server::Ticket> tickets;
    for (unsigned i = 0; i < 6; ++i) {
        tickets.push_back(server.submit(uniform_job(4, 100, 100 + i)));
    }
    server.pump();
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        Response solo_r = tickets[i].result.get();
        ASSERT_EQ(solo_r.status, Status::Ok);
        ASSERT_EQ(fleet_responses[i].status, Status::Ok);
        EXPECT_EQ(fleet_responses[i].values, solo_r.values)
            << "request " << i << " bytes depend on which device served it";
    }
}

TEST(FleetServer, ConsistentHashGivesSameContentTheSameDevice) {
    DeviceFleet fleet(4, simt::tiny_device(256 << 20));
    auto cfg = manual_config(RoutePolicy::ConsistentHash);
    cfg.max_steal_requests = 0;  // keep placement observable
    Server server(fleet, cfg);

    for (unsigned rep = 0; rep < 6; ++rep) {
        (void)server.submit(uniform_job(4, 64, /*seed=*/7));  // same content
    }
    server.pump();
    const auto stats = server.stats();
    std::size_t owners = 0;
    for (const auto& d : stats.devices) {
        if (d.routed > 0) {
            ++owners;
            EXPECT_EQ(d.routed, 6u) << d.name;
        }
    }
    EXPECT_EQ(owners, 1u);  // one device owns that fingerprint
}

TEST(FleetServer, KeyRangeShardsByKeyBand) {
    DeviceFleet fleet(4, simt::tiny_device(256 << 20));
    auto cfg = manual_config(RoutePolicy::KeyRange);
    cfg.max_steal_requests = 0;
    Server server(fleet, cfg);

    const double bands[] = {0.05, 0.30, 0.60, 0.90};
    std::vector<Server::Ticket> tickets;
    for (std::size_t b = 0; b < 4; ++b) {
        tickets.push_back(server.submit(
            banded_job(4, 64, bands[b], static_cast<unsigned>(50 + b))));
    }
    server.pump();
    for (auto& t : tickets) {
        Response r = t.result.get();
        ASSERT_EQ(r.status, Status::Ok) << r.error;
    }
    const auto stats = server.stats();
    for (std::size_t b = 0; b < 4; ++b) {
        EXPECT_EQ(stats.devices[b].routed, 1u)
            << "band " << bands[b] << " missed shard " << b;
    }
}

TEST(FleetServer, IdleShardStealsFromTheLoadedPeer) {
    DeviceFleet fleet(2, simt::tiny_device(256 << 20));
    auto cfg = manual_config(RoutePolicy::ConsistentHash);
    cfg.max_batch_requests = 2;  // small batches leave a backlog to steal
    cfg.max_steal_requests = 2;
    Server server(fleet, cfg);

    std::vector<Server::Ticket> tickets;
    const auto expected =
        sorted_rows(uniform_job(4, 64, /*seed=*/9).values, 4, 64);
    for (unsigned rep = 0; rep < 12; ++rep) {
        tickets.push_back(server.submit(uniform_job(4, 64, /*seed=*/9)));
    }
    server.pump();

    for (auto& t : tickets) {
        Response r = t.result.get();
        ASSERT_EQ(r.status, Status::Ok) << r.error;
        EXPECT_EQ(r.values, expected);  // stolen or not, bytes are identical
    }
    const auto stats = server.stats();
    EXPECT_GT(stats.steals, 0u);
    std::uint64_t steals_in = 0;
    std::uint64_t steals_out = 0;
    for (const auto& d : stats.devices) {
        steals_in += d.steals_in;
        steals_out += d.steals_out;
        EXPECT_GT(d.completed, 0u) << d.name << " never served anything";
    }
    EXPECT_EQ(steals_in, stats.steals);
    EXPECT_EQ(steals_out, stats.steals);
}

TEST(FleetServer, DeviceLossReroutesBitIdentically) {
    DeviceFleet fleet(2, simt::tiny_device(256 << 20));
    Server server(fleet, manual_config());

    std::vector<Server::Ticket> tickets;
    std::vector<std::vector<float>> expected;
    for (unsigned i = 0; i < 6; ++i) {
        auto job = uniform_job(4, 64, 200 + i);
        expected.push_back(sorted_rows(job.values, 4, 64));
        tickets.push_back(server.submit(std::move(job)));
    }
    // Device 0 dies before any batch runs: its first batch exhausts the
    // retry budget, the shard quarantines, and everything re-homes on
    // device 1.
    fleet.device(0).set_fault_plan(kill_plan());
    server.pump();

    for (std::size_t i = 0; i < tickets.size(); ++i) {
        Response r = tickets[i].result.get();
        ASSERT_EQ(r.status, Status::Ok) << r.error;
        EXPECT_FALSE(r.cpu_fallback) << "request " << i << " fell to the host";
        EXPECT_EQ(r.values, expected[i]) << "request " << i;
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.devices_quarantined, 1u);
    EXPECT_GT(stats.reroutes, 0u);
    EXPECT_TRUE(stats.devices[0].quarantined);
    EXPECT_FALSE(stats.devices[1].quarantined);
    EXPECT_EQ(stats.devices[0].reroutes_out, stats.devices[1].reroutes_in);
    EXPECT_EQ(stats.devices[1].completed, 6u);
    EXPECT_EQ(stats.cpu_fallbacks, 0u);

    // New work avoids the quarantined device.
    auto late = server.submit(uniform_job(4, 64, 300));
    server.pump();
    EXPECT_EQ(late.result.get().status, Status::Ok);
    const auto after = server.stats();
    EXPECT_EQ(after.devices[0].routed, stats.devices[0].routed);
    EXPECT_EQ(after.devices[1].completed, 7u);
}

TEST(FleetServer, LastDeviceStandingQuarantinesToHostNotFleet) {
    simt::Device dev(simt::tiny_device(256 << 20));
    dev.set_fault_plan(kill_plan());
    Server server(dev, manual_config());

    auto job = uniform_job(4, 64, 11);
    const auto expected = sorted_rows(job.values, 4, 64);
    auto ticket = server.submit(std::move(job));
    server.pump();

    Response r = ticket.result.get();
    ASSERT_EQ(r.status, Status::Ok) << r.error;
    EXPECT_TRUE(r.cpu_fallback);
    EXPECT_EQ(r.values, expected);
    const auto stats = server.stats();
    // Single-device semantics survive the fleet generalization: the batch
    // quarantines to the host, the device itself is never written off.
    EXPECT_EQ(stats.devices_quarantined, 0u);
    EXPECT_FALSE(stats.devices[0].quarantined);
    EXPECT_EQ(stats.quarantined, 1u);
    EXPECT_EQ(stats.reroutes, 0u);
}

TEST(FleetServer, AllDevicesLostStillServesEveryRequest) {
    DeviceFleet fleet(2, simt::tiny_device(256 << 20));
    fleet.device(0).set_fault_plan(kill_plan());
    fleet.device(1).set_fault_plan(kill_plan());
    Server server(fleet, manual_config());

    std::vector<Server::Ticket> tickets;
    std::vector<std::vector<float>> expected;
    for (unsigned i = 0; i < 4; ++i) {
        auto job = uniform_job(4, 64, 400 + i);
        expected.push_back(sorted_rows(job.values, 4, 64));
        tickets.push_back(server.submit(std::move(job)));
    }
    server.pump();

    for (std::size_t i = 0; i < tickets.size(); ++i) {
        Response r = tickets[i].result.get();
        ASSERT_EQ(r.status, Status::Ok) << r.error;
        EXPECT_EQ(r.values, expected[i]);
        EXPECT_TRUE(r.cpu_fallback);
    }
    const auto stats = server.stats();
    // One device quarantines; the last live one degrades batch by batch to
    // the host instead of being written off.
    EXPECT_EQ(stats.devices_quarantined, 1u);
    EXPECT_EQ(stats.completed, 4u);
}

TEST(FleetServer, HeterogeneousFleetRoutesAroundTheSmallDevice) {
    DeviceFleet fleet(std::vector<simt::DeviceProperties>{
        simt::tiny_device(256 << 10), simt::tiny_device(256 << 20)});
    Server server(fleet, manual_config());

    // Too big for the small device's budget, comfortable on the large one;
    // the premise is asserted against the footprint model so a geometry
    // change fails loudly rather than silently routing differently.
    const std::size_t kArrays = 64;
    const std::size_t kSize = 1024;
    const auto budget = [](const simt::Device& d) {
        return static_cast<std::size_t>(
            static_cast<double>(d.memory().capacity()) * 0.9);
    };
    ASSERT_GT(gas::batch_footprint_bytes(kArrays, kSize, gas::Options{},
                                         fleet.device(0).props(), 1),
              budget(fleet.device(0)));
    ASSERT_LE(gas::batch_footprint_bytes(3 * kArrays, kSize, gas::Options{},
                                         fleet.device(1).props(), 1),
              budget(fleet.device(1)));

    std::vector<Server::Ticket> tickets;
    for (unsigned i = 0; i < 3; ++i) {
        tickets.push_back(server.submit(uniform_job(kArrays, kSize, 500 + i)));
    }
    server.pump();
    for (auto& t : tickets) {
        Response r = t.result.get();
        ASSERT_EQ(r.status, Status::Ok) << r.error;
        EXPECT_FALSE(r.cpu_fallback);
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.devices[0].routed, 0u);  // ineligible despite zero load
    EXPECT_EQ(stats.devices[1].routed, 3u);
    EXPECT_EQ(stats.devices[1].completed, 3u);
}

TEST(FleetServer, StatsJsonCarriesTheFleetBlock) {
    DeviceFleet fleet(2, simt::tiny_device(64 << 20));
    Server server(fleet, manual_config());
    (void)server.submit(uniform_job(2, 32, 1));
    server.pump();
    const std::string json = server.stats_json();
    EXPECT_NE(json.find("\"fleet\""), std::string::npos);
    EXPECT_NE(json.find("\"per_device\""), std::string::npos);
    EXPECT_NE(json.find("\"dev0\""), std::string::npos);
    EXPECT_NE(json.find("\"dev1\""), std::string::npos);
    EXPECT_NE(json.find("\"devices_quarantined\""), std::string::npos);
}

TEST(FleetServer, SchedulerThreadsServeConcurrentProducers) {
    DeviceFleet fleet(3, simt::tiny_device(256 << 20));
    ServerConfig cfg;
    cfg.route_policy = RoutePolicy::LeastLoaded;
    Server server(fleet, cfg);

    constexpr unsigned kProducers = 4;
    constexpr unsigned kPerProducer = 15;
    std::vector<std::vector<Server::Ticket>> tickets(kProducers);
    std::vector<std::thread> producers;
    for (unsigned t = 0; t < kProducers; ++t) {
        producers.emplace_back([&, t] {
            for (unsigned i = 0; i < kPerProducer; ++i) {
                tickets[t].push_back(
                    server.submit(uniform_job(2, 64, t * 1000 + i)));
            }
        });
    }
    for (auto& p : producers) p.join();
    server.drain();
    server.stop();

    std::size_t ok = 0;
    for (auto& per : tickets) {
        for (auto& t : per) {
            Response r = t.result.get();
            ASSERT_EQ(r.status, Status::Ok) << r.error;
            const auto expected = sorted_rows(r.values, 2, 64);
            EXPECT_EQ(r.values, expected);  // already sorted
            ++ok;
        }
    }
    EXPECT_EQ(ok, kProducers * kPerProducer);
    const auto stats = server.stats();
    EXPECT_EQ(stats.completed, kProducers * kPerProducer);
    EXPECT_EQ(stats.devices.size(), 3u);
}

TEST(FleetServer, SchedulerThreadsRerouteAroundADeadDevice) {
    DeviceFleet fleet(3, simt::tiny_device(256 << 20));
    // The plan is installed before the server exists: no thread is touching
    // the device yet, and its very first batch will kill it.
    fleet.device(1).set_fault_plan(kill_plan());
    ServerConfig cfg;
    cfg.retry.seed = 31;
    Server server(fleet, cfg);

    std::vector<Server::Ticket> tickets;
    std::vector<std::vector<float>> expected;
    for (unsigned i = 0; i < 30; ++i) {
        auto job = uniform_job(2, 64, 700 + i);
        expected.push_back(sorted_rows(job.values, 2, 64));
        tickets.push_back(server.submit(std::move(job)));
    }
    server.drain();
    server.stop();

    for (std::size_t i = 0; i < tickets.size(); ++i) {
        Response r = tickets[i].result.get();
        ASSERT_EQ(r.status, Status::Ok) << r.error;
        EXPECT_EQ(r.values, expected[i]) << "request " << i;
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.completed, 30u);
    // The dead device quarantines on its first batch — unless idle peers
    // stole its queue out from under it every time, in which case it simply
    // never executed anything.
    EXPECT_LE(stats.devices_quarantined, 1u);
    EXPECT_FALSE(stats.devices[0].quarantined);
    EXPECT_FALSE(stats.devices[2].quarantined);
}

}  // namespace
