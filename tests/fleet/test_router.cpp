// fleet::Router placement policies: least-loaded balance, consistent-hash
// stability under device loss, key-range partitioning, and the
// eligibility/liveness fallback ladder.

#include "fleet/router.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "fleet/fleet.hpp"

namespace {

using gas::fleet::DeviceFleet;
using gas::fleet::parse_route_policy;
using gas::fleet::RouteInfo;
using gas::fleet::RoutePolicy;
using gas::fleet::Router;
using gas::fleet::ShardLoad;

std::vector<ShardLoad> loads_of(std::vector<std::size_t> queued) {
    std::vector<ShardLoad> loads;
    for (std::size_t q : queued) {
        ShardLoad l;
        l.queued_elements = q;
        loads.push_back(l);
    }
    return loads;
}

RouteInfo info_with_fingerprint(std::uint64_t fp) {
    RouteInfo info;
    info.fingerprint = fp;
    return info;
}

TEST(Router, LeastLoadedPicksFewestQueuedElements) {
    Router router(RoutePolicy::LeastLoaded, 3);
    EXPECT_EQ(router.route({}, loads_of({5, 2, 9})), 1u);
    EXPECT_EQ(router.route({}, loads_of({7, 7, 7})), 0u);  // tie -> lowest index
    EXPECT_EQ(router.route({}, loads_of({1, 0, 0})), 1u);
}

TEST(Router, LeastLoadedSkipsDeadAndPrefersEligible) {
    Router router(RoutePolicy::LeastLoaded, 3);
    auto loads = loads_of({5, 2, 9});
    loads[1].live = false;  // the cheapest device is gone
    EXPECT_EQ(router.route({}, loads), 0u);

    loads = loads_of({5, 2, 9});
    loads[1].eligible = false;  // request does not fit the cheapest device
    EXPECT_EQ(router.route({}, loads), 0u);

    // Nothing eligible: stay on a live device anyway (it will degrade the
    // request to its host path) rather than returning the sentinel.
    loads = loads_of({5, 2, 9});
    for (auto& l : loads) l.eligible = false;
    EXPECT_EQ(router.route({}, loads), 1u);
}

TEST(Router, LeastLoadedFoldsSmoothedLoadAgainstFlapping) {
    Router router(RoutePolicy::LeastLoaded, 2);
    // Device 0's queue momentarily drained, but its EWMA remembers a deep
    // backlog; device 1 has a couple queued but a calm history.  Raw
    // queued_elements would yank every new request to device 0 (route
    // flapping on the transient dip) — the smoothed signal keeps it away.
    auto loads = loads_of({0, 2});
    EXPECT_EQ(router.route({}, loads), 0u);  // without history: raw ranking
    loads[0].smoothed_load = 500.0;
    loads[1].smoothed_load = 3.0;
    EXPECT_EQ(router.route({}, loads), 1u);
}

TEST(Router, LeastLoadedDividesPressureByWeight) {
    Router router(RoutePolicy::LeastLoaded, 2);
    // A probation shard at weight 0.25 looks 4x as loaded: 8 queued on the
    // healthy peer still beats 4 queued on the ramping one (4/0.25 = 16).
    auto loads = loads_of({4, 8});
    loads[0].weight = 0.25;
    EXPECT_EQ(router.route({}, loads), 1u);
    // ...until its ramp completes and raw ranking resumes.
    loads[0].weight = 1.0;
    EXPECT_EQ(router.route({}, loads), 0u);
    // A non-positive weight is clamped, not a division blow-up.
    loads[0].weight = 0.0;
    EXPECT_EQ(router.route({}, loads), 1u);
}

TEST(Router, LeastLoadedDefaultsReproduceRawRanking) {
    // ShardLoad's defaults (smoothed_load 0, weight 1) must keep the
    // pre-health ranking bit-for-bit, ties still breaking to lowest index.
    Router router(RoutePolicy::LeastLoaded, 3);
    EXPECT_EQ(router.route({}, loads_of({5, 2, 9})), 1u);
    EXPECT_EQ(router.route({}, loads_of({7, 7, 7})), 0u);
    EXPECT_EQ(router.route({}, loads_of({0, 0, 1})), 0u);
}

TEST(Router, SentinelWhenNothingIsLive) {
    for (auto policy : {RoutePolicy::LeastLoaded, RoutePolicy::ConsistentHash,
                        RoutePolicy::KeyRange}) {
        Router router(policy, 4);
        auto loads = loads_of({1, 2, 3, 4});
        for (auto& l : loads) l.live = false;
        EXPECT_EQ(router.route(info_with_fingerprint(99), loads), 4u);
    }
}

TEST(Router, ConsistentHashIsDeterministic) {
    Router a(RoutePolicy::ConsistentHash, 4);
    Router b(RoutePolicy::ConsistentHash, 4);
    const auto loads = loads_of({0, 0, 0, 0});
    for (std::uint64_t fp = 1; fp <= 500; ++fp) {
        EXPECT_EQ(a.route(info_with_fingerprint(fp), loads),
                  b.route(info_with_fingerprint(fp), loads));
    }
}

TEST(Router, ConsistentHashSpreadsFingerprints) {
    Router router(RoutePolicy::ConsistentHash, 4);
    const auto loads = loads_of({0, 0, 0, 0});
    std::map<std::size_t, std::size_t> hits;
    for (std::uint64_t fp = 1; fp <= 2000; ++fp) {
        ++hits[router.route(info_with_fingerprint(fp), loads)];
    }
    ASSERT_EQ(hits.size(), 4u);
    for (const auto& [device, count] : hits) {
        EXPECT_GT(count, 100u) << "device " << device << " starved";
    }
}

TEST(Router, ConsistentHashOnlyRemapsTheLostDevicesKeys) {
    Router router(RoutePolicy::ConsistentHash, 4);
    const auto all = loads_of({0, 0, 0, 0});
    auto degraded = all;
    degraded[2].live = false;

    for (std::uint64_t fp = 1; fp <= 2000; ++fp) {
        const std::size_t before = router.route(info_with_fingerprint(fp), all);
        const std::size_t after = router.route(info_with_fingerprint(fp), degraded);
        if (before != 2) {
            EXPECT_EQ(after, before) << "fingerprint " << fp
                                     << " moved though its device survived";
        } else {
            EXPECT_NE(after, 2u);
        }
    }
}

TEST(Router, KeyRangePartitionsTheDomainMonotonically) {
    Router router(RoutePolicy::KeyRange, 4);
    const auto loads = loads_of({0, 0, 0, 0});
    RouteInfo info;
    std::size_t prev = 0;
    for (double frac = 0.0; frac <= 1.0; frac += 0.01) {
        info.key_hint = frac * Router::kDefaultKeySpace;
        const std::size_t owner = router.route(info, loads);
        EXPECT_GE(owner, prev);  // owners ascend with the key
        prev = owner;
    }
    EXPECT_EQ(prev, 3u);  // the top of the domain reaches the last device

    info.key_hint = -100.0;  // clamped into the domain
    EXPECT_EQ(router.route(info, loads), 0u);
    info.key_hint = 10.0 * Router::kDefaultKeySpace;
    EXPECT_EQ(router.route(info, loads), 3u);
}

TEST(Router, KeyRangeReassignsRangesAfterLoss) {
    Router router(RoutePolicy::KeyRange, 4);
    auto loads = loads_of({0, 0, 0, 0});
    loads[1].live = false;  // survivors 0, 2, 3 split the domain three ways
    RouteInfo info;
    info.key_hint = 0.05 * Router::kDefaultKeySpace;
    EXPECT_EQ(router.route(info, loads), 0u);
    info.key_hint = 0.5 * Router::kDefaultKeySpace;
    EXPECT_EQ(router.route(info, loads), 2u);
    info.key_hint = 0.95 * Router::kDefaultKeySpace;
    EXPECT_EQ(router.route(info, loads), 3u);
}

TEST(Router, ParseRoutePolicyRoundTrips) {
    for (auto policy : {RoutePolicy::LeastLoaded, RoutePolicy::ConsistentHash,
                        RoutePolicy::KeyRange}) {
        RoutePolicy parsed{};
        ASSERT_TRUE(parse_route_policy(to_string(policy), parsed));
        EXPECT_EQ(parsed, policy);
    }
    RoutePolicy parsed = RoutePolicy::KeyRange;
    EXPECT_FALSE(parse_route_policy("round-robin", parsed));
    EXPECT_EQ(parsed, RoutePolicy::KeyRange);  // untouched on failure
}

// The CLI spellings are a wire format: gas_serve --policy hard-errors on
// anything parse_route_policy rejects, so near-misses must stay rejected
// rather than being "helpfully" normalized.
TEST(Router, ParseRoutePolicyRejectsNearMisses) {
    RoutePolicy parsed = RoutePolicy::ConsistentHash;
    for (const char* name : {"", "least_loaded", "Least-Loaded", "leastloaded",
                             "consistent-hash ", "key-range-", "keyrange"}) {
        EXPECT_FALSE(parse_route_policy(name, parsed)) << "accepted: '" << name << "'";
        EXPECT_EQ(parsed, RoutePolicy::ConsistentHash);
    }
    EXPECT_EQ(to_string(RoutePolicy::LeastLoaded), "least-loaded");
    EXPECT_EQ(to_string(RoutePolicy::ConsistentHash), "consistent-hash");
    EXPECT_EQ(to_string(RoutePolicy::KeyRange), "key-range");
}

TEST(Router, RejectsDegenerateConfigurations) {
    EXPECT_THROW(Router(RoutePolicy::LeastLoaded, 0), std::invalid_argument);
    EXPECT_THROW(Router(RoutePolicy::KeyRange, 2, 0.0), std::invalid_argument);
    Router router(RoutePolicy::LeastLoaded, 2);
    EXPECT_THROW((void)router.route({}, loads_of({1, 2, 3})), std::invalid_argument);
}

TEST(DeviceFleet, OwnsHomogeneousDevices) {
    DeviceFleet fleet(3, simt::tiny_device(64 << 20));
    ASSERT_EQ(fleet.size(), 3u);
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        EXPECT_EQ(fleet.device(i).memory().capacity(), 64u << 20);
    }
    fleet.set_exec_mode(simt::ExecMode::Warp);
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        EXPECT_EQ(fleet.device(i).exec_mode(), simt::ExecMode::Warp);
    }
}

TEST(DeviceFleet, OwnsHeterogeneousDevices) {
    DeviceFleet fleet(std::vector<simt::DeviceProperties>{
        simt::tiny_device(16 << 20), simt::tiny_device(256 << 20)});
    ASSERT_EQ(fleet.size(), 2u);
    EXPECT_EQ(fleet.device(0).memory().capacity(), 16u << 20);
    EXPECT_EQ(fleet.device(1).memory().capacity(), 256u << 20);
}

TEST(DeviceFleet, BorrowsExternalDevices) {
    simt::Device a(simt::tiny_device(32 << 20));
    simt::Device b(simt::tiny_device(32 << 20));
    DeviceFleet single(a);
    EXPECT_EQ(single.size(), 1u);
    EXPECT_EQ(&single.device(0), &a);
    DeviceFleet both(std::vector<simt::Device*>{&a, &b});
    EXPECT_EQ(both.size(), 2u);
    EXPECT_EQ(&both.device(1), &b);
}

TEST(DeviceFleet, RejectsEmptyAndNull) {
    EXPECT_THROW(DeviceFleet(0), std::invalid_argument);
    EXPECT_THROW(DeviceFleet(std::vector<simt::DeviceProperties>{}),
                 std::invalid_argument);
    EXPECT_THROW(DeviceFleet(std::vector<simt::Device*>{}), std::invalid_argument);
    EXPECT_THROW(DeviceFleet(std::vector<simt::Device*>{nullptr}),
                 std::invalid_argument);
}

}  // namespace
