// Parameterized out-of-core sweeps: correctness and the overlap model's
// invariants must hold for every (batch size, stream count) combination.

#include <gtest/gtest.h>

#include "core/validate.hpp"
#include "ooc/out_of_core.hpp"
#include "workload/generators.hpp"

namespace {

class OocSweep : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>> {};

TEST_P(OocSweep, CorrectAndModelConsistent) {
    const auto [batch, streams] = GetParam();
    simt::Device dev(simt::tiny_device(4 << 20));
    auto ds = workload::make_dataset(64, 700, workload::Distribution::Uniform,
                                     batch * 10 + streams);
    const auto before = ds.values;

    ooc::OocOptions opts;
    opts.batch_arrays = batch;
    opts.num_streams = streams;
    const auto stats = ooc::out_of_core_sort(dev, ds.values, ds.num_arrays, ds.array_size,
                                             opts);

    EXPECT_TRUE(gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size));
    EXPECT_TRUE(gas::all_arrays_permuted(before, ds.values, ds.num_arrays, ds.array_size));
    EXPECT_EQ(stats.batches, (64 + batch - 1) / batch);

    // Overlap model invariants: never worse than serial, never better than
    // the single largest component.
    EXPECT_LE(stats.modeled_overlap_ms, stats.modeled_serial_ms + 1e-9);
    EXPECT_GE(stats.modeled_overlap_ms,
              std::max(stats.kernel_ms, stats.transfer_ms) - 1e-9);
    EXPECT_NEAR(stats.modeled_serial_ms, stats.kernel_ms + stats.transfer_ms, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(BatchesAndStreams, OocSweep,
                         ::testing::Combine(::testing::Values(1u, 7u, 16u, 64u, 100u),
                                            ::testing::Values(1u, 2u, 3u)));

TEST(OocSweep, MoreStreamsNeverSlowModeledTime) {
    auto run = [](unsigned streams) {
        simt::Device dev(simt::tiny_device(1 << 20));
        auto ds = workload::make_dataset(64, 500, workload::Distribution::Uniform, 9);
        ooc::OocOptions opts;
        opts.num_streams = streams;
        opts.batch_arrays = 8;
        return ooc::out_of_core_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts)
            .modeled_overlap_ms;
    };
    const double one = run(1);
    const double two = run(2);
    const double four = run(4);
    EXPECT_LE(two, one + 1e-9);
    EXPECT_LE(four, two + 1e-9);
}

}  // namespace
