#include "ooc/out_of_core.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/validate.hpp"
#include "workload/generators.hpp"

namespace {

TEST(OutOfCore, SortsDatasetLargerThanDeviceMemory) {
    // 8 MB device; dataset is 100 x 4000 floats = 1.6 MB data but STA-free
    // GPU-ArraySort temporaries + batch buffers must fit per batch.  Shrink
    // the device so several batches are forced.
    simt::Device dev(simt::tiny_device(512 << 10));  // 512 KB
    auto ds = workload::make_dataset(100, 1000, workload::Distribution::Uniform, 1);
    const auto before = ds.values;

    const auto stats = ooc::out_of_core_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    EXPECT_GT(stats.batches, 1u);
    EXPECT_TRUE(gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size));
    EXPECT_TRUE(gas::all_arrays_permuted(before, ds.values, ds.num_arrays, ds.array_size));
}

TEST(OutOfCore, SingleBatchWhenEverythingFits) {
    simt::Device dev(simt::tiny_device(256 << 20));
    auto ds = workload::make_dataset(50, 500, workload::Distribution::Uniform, 2);
    const auto stats = ooc::out_of_core_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    EXPECT_EQ(stats.batches, 1u);
}

TEST(OutOfCore, OverlapBeatsSerialWhenMultipleBatches) {
    simt::Device dev(simt::tiny_device(512 << 10));
    auto ds = workload::make_dataset(120, 1000, workload::Distribution::Uniform, 3);
    ooc::OocOptions opts;
    opts.num_streams = 2;
    const auto stats = ooc::out_of_core_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
    ASSERT_GT(stats.batches, 2u);
    EXPECT_LT(stats.modeled_overlap_ms, stats.modeled_serial_ms);
    EXPECT_GT(stats.overlap_speedup(), 1.0);
}

TEST(OutOfCore, SingleStreamMatchesSerialModel) {
    simt::Device dev(simt::tiny_device(512 << 10));
    auto ds = workload::make_dataset(60, 1000, workload::Distribution::Uniform, 4);
    ooc::OocOptions opts;
    opts.num_streams = 1;
    const auto stats = ooc::out_of_core_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
    EXPECT_NEAR(stats.modeled_overlap_ms, stats.modeled_serial_ms, 1e-9);
}

TEST(OutOfCore, ExplicitBatchSizeIsHonoured) {
    simt::Device dev(simt::tiny_device(64 << 20));
    auto ds = workload::make_dataset(100, 200, workload::Distribution::Uniform, 5);
    ooc::OocOptions opts;
    opts.batch_arrays = 17;
    const auto stats = ooc::out_of_core_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
    EXPECT_EQ(stats.batch_arrays, 17u);
    EXPECT_EQ(stats.batches, (100 + 16) / 17u);
}

TEST(OutOfCore, AutoBatchFitsDeviceMemory) {
    simt::Device dev(simt::tiny_device(2 << 20));
    ooc::OocOptions opts;
    const std::size_t batch = ooc::auto_batch_arrays(dev, 1000, opts);
    const std::size_t bytes =
        gas::device_footprint_bytes(batch, 1000, opts.sort_opts, dev.props());
    EXPECT_LE(bytes, dev.memory().capacity());
    EXPECT_GE(batch, 1u);
}

TEST(OutOfCore, InvalidArgumentsThrow) {
    simt::Device dev(simt::tiny_device(1 << 20));
    std::vector<float> data(10);
    EXPECT_THROW(ooc::out_of_core_sort(dev, data, 5, 10), std::invalid_argument);
    ooc::OocOptions opts;
    opts.num_streams = 0;
    std::vector<float> ok(50);
    EXPECT_THROW(ooc::out_of_core_sort(dev, ok, 5, 10, opts), std::invalid_argument);
}

TEST(OutOfCore, AutoBatchSizingRejectsZeroStreamsLikeTheSort) {
    // Regression: auto_batch_arrays used to clamp 0 streams to 1 while
    // out_of_core_sort threw for the same options; both throw now.
    simt::Device dev(simt::tiny_device(1 << 20));
    ooc::OocOptions opts;
    opts.num_streams = 0;
    EXPECT_THROW((void)ooc::auto_batch_arrays(dev, 100, opts), std::invalid_argument);
    opts.num_streams = 1;
    EXPECT_GT(ooc::auto_batch_arrays(dev, 100, opts), 0u);
}

TEST(OutOfCore, EmptyDatasetIsNoOp) {
    simt::Device dev(simt::tiny_device(1 << 20));
    std::vector<float> data;
    const auto stats = ooc::out_of_core_sort(dev, data, 0, 0);
    EXPECT_EQ(stats.batches, 0u);
}

TEST(OutOfCore, TransferAndKernelTimesAccumulate) {
    simt::Device dev(simt::tiny_device(512 << 10));
    auto ds = workload::make_dataset(40, 1000, workload::Distribution::Uniform, 6);
    const auto stats = ooc::out_of_core_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    EXPECT_GT(stats.transfer_ms, 0.0);
    EXPECT_GT(stats.kernel_ms, 0.0);
    // Serial model = sum of every op.
    EXPECT_NEAR(stats.modeled_serial_ms, stats.transfer_ms + stats.kernel_ms, 1e-9);
}

}  // namespace
