#include <gtest/gtest.h>

#include "core/validate.hpp"
#include "ooc/out_of_core.hpp"
#include "workload/generators.hpp"

namespace {

TEST(AutoSort, PicksInCoreWhenDataFits) {
    simt::Device dev(simt::tiny_device(64 << 20));
    auto ds = workload::make_dataset(100, 500, workload::Distribution::Uniform, 1);
    const auto stats = ooc::auto_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    EXPECT_FALSE(stats.used_out_of_core);
    EXPECT_GT(stats.in_core.modeled_kernel_ms(), 0.0);
    EXPECT_TRUE(gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size));
}

TEST(AutoSort, PicksOutOfCoreWhenDataDoesNot) {
    simt::Device dev(simt::tiny_device(512 << 10));  // 512 KB device
    auto ds = workload::make_dataset(200, 1000, workload::Distribution::Uniform, 2);
    const auto before = ds.values;
    const auto stats = ooc::auto_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    EXPECT_TRUE(stats.used_out_of_core);
    EXPECT_GT(stats.ooc.batches, 1u);
    EXPECT_TRUE(gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size));
    EXPECT_TRUE(gas::all_arrays_permuted(before, ds.values, ds.num_arrays, ds.array_size));
}

TEST(AutoSort, ModeledTimeComesFromTheChosenPath) {
    simt::Device dev(simt::tiny_device(512 << 10));
    auto ds = workload::make_dataset(300, 1000, workload::Distribution::Uniform, 3);
    const auto stats = ooc::auto_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    ASSERT_TRUE(stats.used_out_of_core);
    EXPECT_DOUBLE_EQ(stats.modeled_ms(), stats.ooc.modeled_overlap_ms);
}

TEST(AutoSort, EmptyInputIsNoOp) {
    simt::Device dev(simt::tiny_device(1 << 20));
    std::vector<float> empty;
    const auto stats = ooc::auto_sort(dev, empty, 0, 0);
    EXPECT_FALSE(stats.used_out_of_core);
}

TEST(AutoSort, RespectsSortOptions) {
    simt::Device dev(simt::tiny_device(64 << 20));
    auto ds = workload::make_dataset(20, 300, workload::Distribution::Uniform, 4);
    ooc::OocOptions opts;
    opts.sort_opts.order = gas::SortOrder::Descending;
    const auto stats = ooc::auto_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
    EXPECT_FALSE(stats.used_out_of_core);
    EXPECT_TRUE(
        gas::all_arrays_sorted_descending(ds.values, ds.num_arrays, ds.array_size));
}

}  // namespace
