// ooc resilience: chunk-granular retry, host fallback, stall accounting and
// checkpoint-resume — completed chunks are never redone, a failed chunk
// re-sorts alone.

#include "ooc/out_of_core.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/validate.hpp"
#include "workload/generators.hpp"

namespace {

simt::Device make_device(std::size_t bytes = 64 << 20) {
    return simt::Device(simt::tiny_device(bytes));
}

/// Four forced chunks of 8 arrays each, verification on, seeded retries.
ooc::OocOptions chunked_options() {
    ooc::OocOptions opts;
    opts.batch_arrays = 8;
    opts.sort_opts.verify_output = true;
    opts.retry.seed = 21;
    return opts;
}

workload::Dataset chunked_dataset(unsigned seed = 1) {
    return workload::make_dataset(32, 120, workload::Distribution::Uniform, seed);
}

TEST(OocResilience, TransientChunkFaultIsRetriedInPlace) {
    auto dev = make_device();
    simt::faults::FaultPlan plan;
    plan.launch_fail_at = {5};  // one mid-run launch refused, once
    dev.set_fault_plan(plan);

    auto ds = chunked_dataset();
    const auto before = ds.values;
    const auto stats =
        ooc::out_of_core_sort(dev, ds.values, ds.num_arrays, ds.array_size, chunked_options());

    EXPECT_EQ(stats.batches, 4u);
    EXPECT_GE(stats.chunk_retries, 1u);
    EXPECT_EQ(stats.chunk_host_fallbacks, 0u);
    EXPECT_GT(stats.retry_backoff_ms, 0.0);
    EXPECT_TRUE(gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size));
    EXPECT_TRUE(gas::all_arrays_permuted(before, ds.values, ds.num_arrays, ds.array_size));
    EXPECT_EQ(dev.fault_report().launch_failures, 1u);
}

TEST(OocResilience, ExhaustedRetriesFallBackToHostPerChunk) {
    auto dev = make_device();
    simt::faults::FaultPlan plan;
    plan.launch_fail_every = 1;  // the device refuses every launch
    dev.set_fault_plan(plan);

    auto ds = chunked_dataset(2);
    const auto before = ds.values;
    auto opts = chunked_options();
    opts.retry.max_attempts = 2;
    const auto stats =
        ooc::out_of_core_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);

    EXPECT_EQ(stats.chunk_host_fallbacks, stats.batches);
    EXPECT_EQ(stats.chunk_retries, stats.batches * (opts.retry.max_attempts - 1));
    EXPECT_TRUE(gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size));
    EXPECT_TRUE(gas::all_arrays_permuted(before, ds.values, ds.num_arrays, ds.array_size));
}

TEST(OocResilience, WithoutFallbackTheTypedErrorPropagates) {
    auto dev = make_device();
    simt::faults::FaultPlan plan;
    plan.launch_fail_every = 1;
    dev.set_fault_plan(plan);
    auto ds = chunked_dataset(3);
    auto opts = chunked_options();
    opts.retry.max_attempts = 2;
    opts.host_fallback = false;
    EXPECT_THROW(
        ooc::out_of_core_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts),
        simt::LaunchFault);
}

TEST(OocResilience, CheckpointRecordsProgressAndResumeSkipsDoneChunks) {
    auto ds = chunked_dataset(4);
    const auto before = ds.values;
    auto opts = chunked_options();
    opts.retry.max_attempts = 1;
    opts.host_fallback = false;

    // Find the total launch count of a clean run; refusing the last launch
    // then kills the final chunk after the first three completed.
    std::size_t total_launches = 0;
    {
        auto dev = make_device();
        auto scratch = ds.values;
        ooc::out_of_core_sort(dev, scratch, ds.num_arrays, ds.array_size, opts);
        total_launches = dev.kernel_log().size();
    }

    ooc::OocCheckpoint ckpt;
    {
        auto dev = make_device();
        simt::faults::FaultPlan plan;
        plan.launch_fail_at = {total_launches};
        dev.set_fault_plan(plan);
        EXPECT_THROW(ooc::out_of_core_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts,
                                           &ckpt),
                     simt::LaunchFault);
    }
    ASSERT_TRUE(ckpt.matches(ds.num_arrays, ds.array_size, opts.batch_arrays));
    EXPECT_EQ(ckpt.done.size(), 4u);
    EXPECT_EQ(ckpt.completed(), 3u);
    EXPECT_FALSE(ckpt.complete());

    // Resume on a healthy device: only the failed chunk is re-sorted.
    {
        auto dev = make_device();
        const auto stats = ooc::out_of_core_sort(dev, ds.values, ds.num_arrays, ds.array_size,
                                                 opts, &ckpt);
        EXPECT_EQ(stats.chunks_skipped, 3u);
        EXPECT_EQ(stats.batches, 1u);  // only the failed chunk was executed
    }
    EXPECT_TRUE(ckpt.complete());
    EXPECT_TRUE(gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size));
    EXPECT_TRUE(gas::all_arrays_permuted(before, ds.values, ds.num_arrays, ds.array_size));
}

TEST(OocResilience, MismatchedCheckpointGeometryIsReinitialized) {
    auto dev = make_device();
    auto ds = chunked_dataset(5);
    ooc::OocCheckpoint stale;
    stale.num_arrays = 999;  // some other run's record
    stale.array_size = 7;
    stale.batch_arrays = 3;
    stale.done = {1, 1, 1};
    const auto opts = chunked_options();
    const auto stats =
        ooc::out_of_core_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts, &stale);
    EXPECT_EQ(stats.chunks_skipped, 0u);  // stale progress must not be trusted
    EXPECT_TRUE(stale.matches(ds.num_arrays, ds.array_size, opts.batch_arrays));
    EXPECT_TRUE(stale.complete());
    EXPECT_TRUE(gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size));
}

TEST(OocResilience, EngineStallExtendsTheModeledMakespanOnly) {
    auto ds = chunked_dataset(6);
    auto stalled_data = ds.values;

    auto clean_dev = make_device();
    const auto clean = ooc::out_of_core_sort(clean_dev, ds.values, ds.num_arrays,
                                             ds.array_size, chunked_options());

    auto dev = make_device();
    simt::faults::FaultPlan plan;
    plan.stall_at = {1};
    plan.stall_ms = 25.0;
    dev.set_fault_plan(plan);
    const auto stalled = ooc::out_of_core_sort(dev, stalled_data, ds.num_arrays, ds.array_size,
                                               chunked_options());

    EXPECT_EQ(dev.fault_report().stalls, 1u);
    EXPECT_GT(stalled.modeled_overlap_ms, clean.modeled_overlap_ms);
    EXPECT_EQ(stalled.chunk_retries, 0u);  // a stall delays, it does not fail
    EXPECT_EQ(ds.values, stalled_data);    // identical bytes either way
}

}  // namespace
