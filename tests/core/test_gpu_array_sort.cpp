#include "core/gpu_array_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/validate.hpp"
#include "workload/generators.hpp"

namespace {

using gas::gpu_array_sort;
using gas::Options;

simt::Device make_device() { return simt::Device(simt::tiny_device(512 << 20)); }

TEST(GpuArraySort, SortsUniformDataset) {
    auto dev = make_device();
    auto ds = workload::make_dataset(100, 1000, workload::Distribution::Uniform, 1);
    const auto before = ds.values;

    Options opts;
    opts.validate = true;  // driver itself checks sortedness + permutation
    const auto stats = gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);

    EXPECT_TRUE(gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size));
    EXPECT_TRUE(gas::all_arrays_permuted(before, ds.values, ds.num_arrays, ds.array_size));
    EXPECT_EQ(stats.buckets_per_array, 50u);
    EXPECT_GT(stats.modeled_kernel_ms(), 0.0);
    EXPECT_GT(stats.h2d_ms, 0.0);
    EXPECT_GT(stats.d2h_ms, 0.0);
}

TEST(GpuArraySort, MatchesStdSortRowByRow) {
    auto dev = make_device();
    auto ds = workload::make_dataset(50, 777, workload::Distribution::Normal, 2);
    auto expected = ds.values;
    for (std::size_t a = 0; a < ds.num_arrays; ++a) {
        std::sort(expected.begin() + static_cast<std::ptrdiff_t>(a * ds.array_size),
                  expected.begin() + static_cast<std::ptrdiff_t>((a + 1) * ds.array_size));
    }
    gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    EXPECT_EQ(ds.values, expected);
}

TEST(GpuArraySort, InPlaceMemoryOverheadIsSmall) {
    auto dev = make_device();
    auto ds = workload::make_dataset(200, 1000, workload::Distribution::Uniform, 3);
    const auto stats = gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    // Temporaries are S ((p+1) floats) + Z (p u32) per array: ~10% of data
    // for n = 1000, nothing like STA's ~3x.
    EXPECT_LT(stats.overhead_fraction(), 0.15);
    EXPECT_GE(stats.peak_device_bytes, stats.data_bytes);
}

TEST(GpuArraySort, DeviceMemoryFullyReleasedAfterHostCall) {
    auto dev = make_device();
    auto ds = workload::make_dataset(20, 500, workload::Distribution::Uniform, 4);
    gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    EXPECT_EQ(dev.memory().bytes_in_use(), 0u);
}

TEST(GpuArraySort, ZeroArraysAndZeroSizeAreNoOps) {
    auto dev = make_device();
    std::vector<float> empty;
    EXPECT_NO_THROW(gpu_array_sort(dev, empty, 0, 0));
    std::vector<float> data(10, 1.0f);
    EXPECT_NO_THROW(gpu_array_sort(dev, data, 10, 0));
    EXPECT_NO_THROW(gpu_array_sort(dev, data, 0, 10));
}

TEST(GpuArraySort, UndersizedSpanThrows) {
    auto dev = make_device();
    std::vector<float> data(10);
    EXPECT_THROW(gpu_array_sort(dev, data, 2, 10), std::invalid_argument);
}

TEST(GpuArraySort, SingleArraySingleElement) {
    auto dev = make_device();
    std::vector<float> data = {42.0f};
    gpu_array_sort(dev, data, 1, 1);
    EXPECT_EQ(data[0], 42.0f);
}

TEST(GpuArraySort, ArraysSmallerThanBucketTarget) {
    auto dev = make_device();
    auto ds = workload::make_dataset(30, 7, workload::Distribution::Uniform, 5);
    Options opts;
    opts.validate = true;
    const auto stats = gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
    EXPECT_EQ(stats.buckets_per_array, 1u);
    EXPECT_TRUE(gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size));
}

TEST(GpuArraySort, InfinitiesSurviveSorting) {
    auto dev = make_device();
    auto ds = workload::make_dataset(4, 100, workload::Distribution::Uniform, 6);
    ds.values[0] = std::numeric_limits<float>::infinity();
    ds.values[1] = -std::numeric_limits<float>::infinity();
    ds.values[150] = -std::numeric_limits<float>::infinity();
    const auto before = ds.values;
    gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    EXPECT_TRUE(gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size));
    EXPECT_TRUE(gas::all_arrays_permuted(before, ds.values, ds.num_arrays, ds.array_size));
    EXPECT_EQ(ds.values[0], -std::numeric_limits<float>::infinity());
}

TEST(GpuArraySort, BucketDiagnosticsAreConsistent) {
    auto dev = make_device();
    auto ds = workload::make_dataset(40, 1000, workload::Distribution::Uniform, 7);
    const auto stats = gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    EXPECT_LE(stats.min_bucket, stats.max_bucket);
    EXPECT_NEAR(stats.avg_bucket,
                static_cast<double>(ds.array_size) /
                    static_cast<double>(stats.buckets_per_array),
                1e-9);
}

TEST(GpuArraySort, ValidateRejectsNaNLoss) {
    // NaNs violate the documented precondition: the bucketing predicate drops
    // them, which validation must catch rather than silently corrupt data.
    auto dev = make_device();
    auto ds = workload::make_dataset(2, 200, workload::Distribution::Uniform, 8);
    ds.values[5] = std::numeric_limits<float>::quiet_NaN();
    Options opts;
    opts.validate = true;
    EXPECT_THROW(gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts),
                 std::logic_error);
}

TEST(GpuArraySort, LargeArraysUseGlobalScratchFallback) {
    auto dev = make_device();
    // 20000 floats = 80 KB > 48 KB shared: the fallback path must engage and
    // still sort correctly.
    auto ds = workload::make_dataset(3, 20000, workload::Distribution::Uniform, 9);
    Options opts;
    opts.validate = true;
    const auto stats = gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
    EXPECT_TRUE(gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size));
    EXPECT_EQ(stats.buckets_per_array, 1000u);
}

TEST(GpuArraySort, OutOfMemoryRaisesDeviceBadAlloc) {
    simt::Device dev(simt::tiny_device(1 << 20));  // 1 MB device
    auto ds = workload::make_dataset(300, 1000, workload::Distribution::Uniform, 10);
    EXPECT_THROW(gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size),
                 simt::DeviceBadAlloc);
}

TEST(GpuArraySort, FootprintModelMatchesAllocatorPeak) {
    auto dev = make_device();
    auto ds = workload::make_dataset(64, 1000, workload::Distribution::Uniform, 11);
    simt::DeviceBuffer<float> data(dev, ds.values.size());
    simt::copy_to_device(std::span<const float>(ds.values), data);
    const auto stats = gas::sort_arrays_on_device(dev, data, ds.num_arrays, ds.array_size);
    const std::size_t predicted =
        gas::device_footprint_bytes(ds.num_arrays, ds.array_size, Options{}, dev.props());
    EXPECT_EQ(stats.peak_device_bytes, predicted);
}

TEST(GpuArraySort, RepeatedSortIsIdempotent) {
    auto dev = make_device();
    auto ds = workload::make_dataset(10, 300, workload::Distribution::Uniform, 12);
    gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    const auto once = ds.values;
    gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    EXPECT_EQ(ds.values, once);
}

}  // namespace
