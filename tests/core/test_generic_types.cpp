// GPU-ArraySort over the non-float element types the library instantiates:
// double, uint32_t and int32_t.  Every type must match a per-row std::sort
// oracle, honor the in-place memory contract, and handle type-specific
// extremes (double precision beyond float, unsigned wraparound candidates,
// negative integers).

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>

#include "core/gpu_array_sort.hpp"
#include "core/validate.hpp"
#include "workload/generators.hpp"

namespace {

template <typename T>
std::vector<T> random_rows(std::size_t num_arrays, std::size_t n, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<T> v(num_arrays * n);
    if constexpr (std::is_floating_point_v<T>) {
        std::uniform_real_distribution<T> u(static_cast<T>(-1e12), static_cast<T>(1e12));
        for (auto& x : v) x = u(rng);
    } else {
        std::uniform_int_distribution<T> u(std::numeric_limits<T>::min(),
                                           std::numeric_limits<T>::max());
        for (auto& x : v) x = u(rng);
    }
    return v;
}

template <typename T>
void sort_rows_host(std::vector<T>& v, std::size_t num_arrays, std::size_t n) {
    for (std::size_t a = 0; a < num_arrays; ++a) {
        std::sort(v.begin() + static_cast<std::ptrdiff_t>(a * n),
                  v.begin() + static_cast<std::ptrdiff_t>((a + 1) * n));
    }
}

template <typename T>
class GenericSort : public ::testing::Test {};

using ElementTypes = ::testing::Types<double, std::uint32_t, std::int32_t>;
TYPED_TEST_SUITE(GenericSort, ElementTypes);

TYPED_TEST(GenericSort, MatchesStdSort) {
    using T = TypeParam;
    simt::Device dev(simt::tiny_device(128 << 20));
    const std::size_t num_arrays = 20;
    const std::size_t n = 700;
    auto data = random_rows<T>(num_arrays, n, 1);
    auto expected = data;
    sort_rows_host(expected, num_arrays, n);

    gas::Options opts;
    opts.validate = true;
    gas::gpu_array_sort(dev, std::span<T>(data), num_arrays, n, opts);
    EXPECT_EQ(data, expected);
}

TYPED_TEST(GenericSort, SmallAndDegenerateSizes) {
    using T = TypeParam;
    for (std::size_t n : {1u, 2u, 19u, 21u, 64u}) {
        simt::Device dev(simt::tiny_device(64 << 20));
        auto data = random_rows<T>(8, n, n);
        auto expected = data;
        sort_rows_host(expected, 8, n);
        gas::gpu_array_sort(dev, std::span<T>(data), 8, n);
        ASSERT_EQ(data, expected) << "n=" << n;
    }
}

TYPED_TEST(GenericSort, DuplicateHeavyInput) {
    using T = TypeParam;
    simt::Device dev(simt::tiny_device(64 << 20));
    std::mt19937_64 rng(3);
    std::vector<T> data(12 * 400);
    for (auto& x : data) x = static_cast<T>(rng() % 5);
    auto expected = data;
    sort_rows_host(expected, 12, 400);
    gas::gpu_array_sort(dev, std::span<T>(data), 12, 400);
    EXPECT_EQ(data, expected);
}

TYPED_TEST(GenericSort, ExtremeValuesSurvive) {
    using T = TypeParam;
    simt::Device dev(simt::tiny_device(64 << 20));
    auto data = random_rows<T>(2, 100, 4);
    data[0] = std::numeric_limits<T>::max();
    data[1] = std::numeric_limits<T>::lowest();
    data[150] = std::numeric_limits<T>::lowest();
    auto expected = data;
    sort_rows_host(expected, 2, 100);
    gas::gpu_array_sort(dev, std::span<T>(data), 2, 100);
    EXPECT_EQ(data, expected);
    EXPECT_EQ(data[0], std::numeric_limits<T>::lowest());
}

TYPED_TEST(GenericSort, InPlaceOverheadStaysSmall) {
    using T = TypeParam;
    simt::Device dev(simt::tiny_device(128 << 20));
    auto data = random_rows<T>(50, 1000, 5);
    const auto stats = gas::gpu_array_sort(dev, std::span<T>(data), 50, 1000);
    EXPECT_LT(stats.overhead_fraction(), 0.2);
}

TEST(GenericSort, DoubleUsesPrecisionBeyondFloat) {
    // Adjacent doubles that collapse to the same float must stay ordered.
    simt::Device dev(simt::tiny_device(64 << 20));
    std::vector<double> data(64);
    const double base = 1.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = base + static_cast<double>(data.size() - i) * 1e-13;
    }
    ASSERT_EQ(static_cast<float>(data[0]), static_cast<float>(data[1]));  // float-equal
    gas::gpu_array_sort(dev, std::span<double>(data), 1, data.size());
    EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
    EXPECT_LT(data.front(), data.back());
}

TEST(GenericSort, DoubleDescending) {
    simt::Device dev(simt::tiny_device(64 << 20));
    auto data = random_rows<double>(6, 300, 6);
    gas::Options opts;
    opts.order = gas::SortOrder::Descending;
    opts.validate = true;
    EXPECT_NO_THROW(gas::gpu_array_sort(dev, std::span<double>(data), 6, 300, opts));
}

TEST(GenericSort, IntegralDescendingIsRejected) {
    simt::Device dev(simt::tiny_device(64 << 20));
    auto data = random_rows<std::uint32_t>(2, 50, 7);
    gas::Options opts;
    opts.order = gas::SortOrder::Descending;
    EXPECT_THROW(gas::gpu_array_sort(dev, std::span<std::uint32_t>(data), 2, 50, opts),
                 std::invalid_argument);
}

TEST(GenericSort, DoubleShrinksSharedStagingLimit) {
    // Doubles halve the number of elements that fit the 48 KB staging area;
    // the plan must fall back to global scratch sooner than for floats.
    const auto fplan = gas::make_plan(8000, gas::Options{}, simt::tesla_k40c(), sizeof(float));
    const auto dplan = gas::make_plan(8000, gas::Options{}, simt::tesla_k40c(), sizeof(double));
    EXPECT_TRUE(fplan.array_fits_shared);
    EXPECT_FALSE(dplan.array_fits_shared);
}

TEST(GenericSort, UnsignedZeroLandsInFirstBucket) {
    // For unsigned types the low sentinel equals 0, a real data value; the
    // first-bucket-inclusive predicate must keep zeros.
    simt::Device dev(simt::tiny_device(64 << 20));
    std::vector<std::uint32_t> data(200, 0);
    for (std::size_t i = 0; i < data.size(); i += 3) data[i] = static_cast<std::uint32_t>(i);
    auto expected = data;
    sort_rows_host(expected, 1, data.size());
    gas::Options opts;
    opts.validate = true;
    gas::gpu_array_sort(dev, std::span<std::uint32_t>(data), 1, data.size(), opts);
    EXPECT_EQ(data, expected);
}

}  // namespace
