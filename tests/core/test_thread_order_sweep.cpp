// Thread-order sweep: every paper kernel must produce identical output when
// the simulator executes each block's lanes forward vs. reverse.  The
// barrier-synchronous contract (no lane reads what another lane wrote in the
// same thread region) makes results order-invariant; a kernel that fails
// this sweep has an intra-region race — the dynamic counterpart of the
// sanitizer's racecheck.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/gpu_array_sort.hpp"
#include "core/pair_sort.hpp"
#include "core/ragged_sort.hpp"
#include "simt/device.hpp"
#include "thrustlite/device_vector.hpp"
#include "thrustlite/radix_sort.hpp"
#include "workload/generators.hpp"

namespace {

/// Runs `fn(device)` under both thread orders and asserts the returned
/// payloads are identical.
template <typename F>
void sweep(F fn) {
    const auto run = [&fn](simt::ThreadOrder order) {
        simt::Device dev(simt::tiny_device(256 << 20));
        dev.set_thread_order(order);
        return fn(dev);
    };
    const auto forward = run(simt::ThreadOrder::Forward);
    const auto reverse = run(simt::ThreadOrder::Reverse);
    EXPECT_EQ(forward, reverse);
}

TEST(ThreadOrderSweep, ArraySortFloat) {
    sweep([](simt::Device& dev) {
        auto ds = workload::make_dataset(16, 500);
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
        return ds.values;
    });
}

TEST(ThreadOrderSweep, ArraySortUint32) {
    sweep([](simt::Device& dev) {
        auto ds = workload::make_dataset(8, 300);
        std::vector<std::uint32_t> data(ds.values.size());
        for (std::size_t i = 0; i < data.size(); ++i) {
            data[i] = static_cast<std::uint32_t>(ds.values[i] * 1e6f);
        }
        gas::gpu_array_sort(dev, data, ds.num_arrays, ds.array_size);
        return data;
    });
}

TEST(ThreadOrderSweep, ArraySortDescending) {
    sweep([](simt::Device& dev) {
        auto ds = workload::make_dataset(8, 300, workload::Distribution::Normal);
        gas::Options opts;
        opts.order = gas::SortOrder::Descending;
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
        return ds.values;
    });
}

TEST(ThreadOrderSweep, ArraySortBinarySearchStrategy) {
    sweep([](simt::Device& dev) {
        auto ds = workload::make_dataset(8, 500);
        gas::Options opts;
        opts.strategy = gas::BucketingStrategy::BinarySearch;
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
        return ds.values;
    });
}

TEST(ThreadOrderSweep, SmallArrayFastPath) {
    sweep([](simt::Device& dev) {
        auto ds = workload::make_dataset(32, 8);
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
        return ds.values;
    });
}

TEST(ThreadOrderSweep, GlobalScratchFallback) {
    sweep([](simt::Device& dev) {
        auto ds = workload::make_dataset(4, 20000);  // 80 KB rows: > 48 KB shared
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
        return ds.values;
    });
}

TEST(ThreadOrderSweep, PairSort) {
    sweep([](simt::Device& dev) {
        auto keys = workload::make_dataset(8, 400, workload::Distribution::Uniform, 7);
        auto vals = workload::make_dataset(8, 400, workload::Distribution::Uniform, 8);
        gas::gpu_pair_sort(dev, keys.values, vals.values, 8, 400);
        auto out = keys.values;
        out.insert(out.end(), vals.values.begin(), vals.values.end());
        return out;
    });
}

TEST(ThreadOrderSweep, RaggedSort) {
    sweep([](simt::Device& dev) {
        auto ds = workload::make_ragged_dataset(12, 16, 512);
        std::vector<std::uint64_t> offsets(ds.offsets.begin(), ds.offsets.end());
        gas::gpu_ragged_sort(dev, ds.values, offsets);
        return ds.values;
    });
}

TEST(ThreadOrderSweep, RaggedPairSort) {
    sweep([](simt::Device& dev) {
        auto ds = workload::make_ragged_dataset(10, 16, 256, workload::Distribution::Uniform, 5);
        auto vs = ds.values;
        std::reverse(vs.begin(), vs.end());
        std::vector<std::uint64_t> offsets(ds.offsets.begin(), ds.offsets.end());
        gas::gpu_ragged_pair_sort(dev, std::span<float>(ds.values), std::span<float>(vs),
                                  offsets);
        auto out = ds.values;
        out.insert(out.end(), vs.begin(), vs.end());
        return out;
    });
}

/// Hybrid phase-3 paths (size-binned scheduling + cooperative bitonic) on
/// the single-hot-bucket adversary, cutovers forced low so the new kernels'
/// every class executes under both lane orders.
gas::Options hybrid_forced() {
    gas::Options opts;
    opts.phase3_small_cutoff = 16;
    opts.phase3_bitonic_cutoff = 64;
    return opts;
}

TEST(ThreadOrderSweep, HybridSkewArraySort) {
    sweep([](simt::Device& dev) {
        auto ds = workload::make_dataset(8, 600, workload::Distribution::ZipfHot, 3);
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, hybrid_forced());
        return ds.values;
    });
}

TEST(ThreadOrderSweep, HybridSkewRaggedSort) {
    sweep([](simt::Device& dev) {
        auto ds = workload::make_ragged_dataset(10, 64, 512,
                                                workload::Distribution::ZipfHot, 6);
        std::vector<std::uint64_t> offsets(ds.offsets.begin(), ds.offsets.end());
        gas::gpu_ragged_sort(dev, ds.values, offsets, hybrid_forced());
        return ds.values;
    });
}

TEST(ThreadOrderSweep, HybridSkewPairSort) {
    sweep([](simt::Device& dev) {
        auto keys = workload::make_dataset(6, 500, workload::Distribution::ZipfHot, 7);
        auto vals = workload::make_dataset(6, 500, workload::Distribution::Uniform, 8);
        gas::gpu_pair_sort(dev, keys.values, vals.values, 6, 500, hybrid_forced());
        auto out = keys.values;
        out.insert(out.end(), vals.values.begin(), vals.values.end());
        return out;
    });
}

std::vector<std::uint32_t> pseudo_u32(std::size_t count, std::uint64_t seed) {
    std::vector<std::uint32_t> v(count);
    std::uint64_t state = seed * 0x9e3779b97f4a7c15ull + 1;
    for (auto& x : v) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        x = static_cast<std::uint32_t>(state >> 32);
    }
    return v;
}

TEST(ThreadOrderSweep, RadixSortU32) {
    for (const bool prune : {false, true}) {
        sweep([prune](simt::Device& dev) {
            thrustlite::device_vector<std::uint32_t> keys(dev, pseudo_u32(10001, 1));
            thrustlite::RadixOptions opts;
            opts.prune_passes = prune;
            thrustlite::stable_sort(dev, keys.span(), opts);
            return keys.to_host();
        });
    }
}

TEST(ThreadOrderSweep, RadixSortU64) {
    for (const bool prune : {false, true}) {
        sweep([prune](simt::Device& dev) {
            const auto seed32 = pseudo_u32(8192, 2);
            std::vector<std::uint64_t> host(seed32.size());
            for (std::size_t i = 0; i < host.size(); ++i) {
                host[i] = (static_cast<std::uint64_t>(seed32[i]) << 20) | i;
            }
            thrustlite::device_vector<std::uint64_t> keys(dev, host);
            thrustlite::RadixOptions opts;
            opts.prune_passes = prune;
            thrustlite::stable_sort(dev, keys.span(), opts);
            return keys.to_host();
        });
    }
}

TEST(ThreadOrderSweep, RadixSortByKey) {
    sweep([](simt::Device& dev) {
        const auto host_keys = pseudo_u32(9000, 3);
        std::vector<std::uint32_t> host_vals(host_keys.size());
        for (std::size_t i = 0; i < host_vals.size(); ++i) {
            host_vals[i] = static_cast<std::uint32_t>(i);
        }
        thrustlite::device_vector<std::uint32_t> keys(dev, host_keys);
        thrustlite::device_vector<std::uint32_t> vals(dev, host_vals);
        thrustlite::stable_sort_by_key(dev, keys.span(), vals.span());
        auto out = keys.to_host();
        const auto v = vals.to_host();
        out.insert(out.end(), v.begin(), v.end());
        return out;
    });
}

}  // namespace
