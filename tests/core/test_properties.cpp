// Property-based sweeps: GPU-ArraySort must equal per-row std::sort for every
// combination of distribution, array size, bucketing strategy and thread
// order the library supports.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/gpu_array_sort.hpp"
#include "core/validate.hpp"
#include "workload/generators.hpp"

namespace {

using gas::BucketingStrategy;
using gas::Options;

struct Case {
    workload::Distribution dist;
    std::size_t array_size;
    BucketingStrategy strategy;
};

std::string case_name(const ::testing::TestParamInfo<Case>& pinfo) {
    std::string name = workload::to_string(pinfo.param.dist) + "_n" +
                       std::to_string(pinfo.param.array_size) + "_" +
                       to_string(pinfo.param.strategy);
    std::replace(name.begin(), name.end(), '-', '_');
    return name;
}

class SortProperty : public ::testing::TestWithParam<Case> {};

TEST_P(SortProperty, MatchesStdSortAndPreservesMultiset) {
    const Case c = GetParam();
    const std::size_t num_arrays = 24;
    simt::Device dev(simt::tiny_device(256 << 20));

    auto ds = workload::make_dataset(num_arrays, c.array_size, c.dist,
                                     /*seed=*/c.array_size * 31 + 7);
    auto expected = ds.values;
    for (std::size_t a = 0; a < num_arrays; ++a) {
        std::sort(expected.begin() + static_cast<std::ptrdiff_t>(a * c.array_size),
                  expected.begin() + static_cast<std::ptrdiff_t>((a + 1) * c.array_size));
    }

    Options opts;
    opts.strategy = c.strategy;
    gas::gpu_array_sort(dev, ds.values, num_arrays, c.array_size, opts);
    EXPECT_EQ(ds.values, expected);
}

std::vector<Case> all_cases() {
    std::vector<Case> cases;
    for (auto dist : workload::all_distributions()) {
        for (std::size_t n : {1u, 19u, 20u, 64u, 257u, 1000u}) {
            for (auto strat :
                 {BucketingStrategy::ScanPerThread, BucketingStrategy::BinarySearch}) {
                cases.push_back({dist, n, strat});
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, SortProperty, ::testing::ValuesIn(all_cases()),
                         case_name);

// Thread execution order must not affect results (race-freedom check).
class OrderProperty : public ::testing::TestWithParam<workload::Distribution> {};

TEST_P(OrderProperty, ForwardAndReverseLaneOrdersAgree) {
    auto run = [&](simt::ThreadOrder order) {
        simt::Device dev(simt::tiny_device(128 << 20));
        dev.set_thread_order(order);
        auto ds = workload::make_dataset(16, 500, GetParam(), 99);
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
        return ds.values;
    };
    EXPECT_EQ(run(simt::ThreadOrder::Forward), run(simt::ThreadOrder::Reverse));
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, OrderProperty,
                         ::testing::ValuesIn(workload::all_distributions()),
                         [](const auto& pinfo) {
                             std::string n = workload::to_string(pinfo.param);
                             std::replace(n.begin(), n.end(), '-', '_');
                             return n;
                         });

// Threads-per-bucket (ablation knob) must not change the result.
class TpbProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(TpbProperty, MultiThreadBucketingMatchesSingle) {
    simt::Device dev(simt::tiny_device(128 << 20));
    auto ds = workload::make_dataset(12, 640, workload::Distribution::Uniform, 13);
    auto expected = ds.values;
    for (std::size_t a = 0; a < ds.num_arrays; ++a) {
        std::sort(expected.begin() + static_cast<std::ptrdiff_t>(a * ds.array_size),
                  expected.begin() + static_cast<std::ptrdiff_t>((a + 1) * ds.array_size));
    }
    Options opts;
    opts.threads_per_bucket = GetParam();
    opts.validate = true;
    gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
    EXPECT_EQ(ds.values, expected);
}

INSTANTIATE_TEST_SUITE_P(Tpb, TpbProperty, ::testing::Values(1u, 2u, 3u, 4u, 8u));

// Sampling-rate and bucket-target sweeps: correctness must hold at any
// operating point, not just the paper's optimum.
class TuningProperty
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(TuningProperty, CorrectAtEveryOperatingPoint) {
    const auto [rate, target] = GetParam();
    simt::Device dev(simt::tiny_device(128 << 20));
    auto ds = workload::make_dataset(10, 900, workload::Distribution::Uniform, 17);
    const auto before = ds.values;
    Options opts;
    opts.sampling_rate = rate;
    opts.bucket_target = target;
    gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
    EXPECT_TRUE(gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size));
    EXPECT_TRUE(gas::all_arrays_permuted(before, ds.values, ds.num_arrays, ds.array_size));
}

INSTANTIATE_TEST_SUITE_P(RatesAndTargets, TuningProperty,
                         ::testing::Combine(::testing::Values(0.02, 0.1, 0.5, 1.0),
                                            ::testing::Values(5u, 20u, 100u, 1000u)));

}  // namespace
