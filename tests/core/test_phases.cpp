#include "core/phases.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "simt/device_buffer.hpp"
#include "workload/generators.hpp"

namespace {

using gas::Options;
using gas::SortPlan;

simt::Device make_device() { return simt::Device(simt::tiny_device(256 << 20)); }

struct Staged {
    simt::DeviceBuffer<float> data;
    simt::DeviceBuffer<float> splitters;
    simt::DeviceBuffer<std::uint32_t> sizes;
    SortPlan plan;
};

Staged stage(simt::Device& dev, const workload::Dataset& ds, const Options& opts) {
    Staged s{simt::DeviceBuffer<float>(dev, ds.values.size()), {}, {}, {}};
    simt::copy_to_device(std::span<const float>(ds.values), s.data);
    s.plan = gas::make_plan(ds.array_size, opts, dev.props());
    s.splitters = simt::DeviceBuffer<float>(dev, ds.num_arrays * s.plan.splitters_per_array);
    s.sizes = simt::DeviceBuffer<std::uint32_t>(dev, ds.num_arrays * s.plan.buckets);
    return s;
}

TEST(SplitterPhase, EmitsSentinelsAndSortedInteriorSplitters) {
    auto dev = make_device();
    const auto ds = workload::make_dataset(20, 500, workload::Distribution::Uniform, 1);
    const Options opts;
    auto s = stage(dev, ds, opts);

    gas::detail::splitter_phase<float>(dev, s.data.span(), ds.num_arrays, s.plan, s.splitters.span());

    const auto sp = s.splitters.span();
    for (std::size_t a = 0; a < ds.num_arrays; ++a) {
        const auto row = sp.subspan(a * s.plan.splitters_per_array, s.plan.splitters_per_array);
        EXPECT_EQ(row.front(), gas::detail::kLowSentinel) << a;
        EXPECT_EQ(row.back(), gas::detail::kHighSentinel) << a;
        EXPECT_TRUE(std::is_sorted(row.begin(), row.end())) << "splitter row " << a;
        // Interior splitters must be actual array values.
        for (std::size_t j = 1; j + 1 < row.size(); ++j) {
            const float* arr = ds.array(a);
            EXPECT_NE(std::find(arr, arr + ds.array_size, row[j]), arr + ds.array_size)
                << "splitter not from array";
        }
    }
}

TEST(BucketPredicate, PartitionsExactlyOnce) {
    // Property: for any splitter row and any value, exactly one bucket
    // accepts it.
    const std::vector<float> splitters = {gas::detail::kLowSentinel, 1.0f, 5.0f, 5.0f,
                                          gas::detail::kHighSentinel};
    const std::vector<float> probes = {-1e30f, 0.0f, 1.0f, 2.0f, 5.0f, 6.0f, 1e30f,
                                       -std::numeric_limits<float>::infinity(),
                                       std::numeric_limits<float>::infinity()};
    for (float x : probes) {
        int accepting = 0;
        for (std::size_t j = 0; j + 1 < splitters.size(); ++j) {
            if (gas::detail::in_bucket(x, splitters[j], splitters[j + 1], j == 0)) {
                ++accepting;
            }
        }
        EXPECT_EQ(accepting, 1) << "value " << x;
    }
}

TEST(BucketPhase, BucketSizesSumToArraySizeAndPartitionIsOrdered) {
    auto dev = make_device();
    const auto ds = workload::make_dataset(15, 800, workload::Distribution::Uniform, 2);
    const Options opts;
    auto s = stage(dev, ds, opts);

    gas::detail::splitter_phase<float>(dev, s.data.span(), ds.num_arrays, s.plan, s.splitters.span());
    gas::detail::bucket_phase<float>(dev, s.data.span(), ds.num_arrays, s.plan, opts,
                              s.splitters.span(), s.sizes.span(), {}, 0);

    const auto z = s.sizes.span();
    const auto sp = s.splitters.span();
    const auto data = s.data.span();
    for (std::size_t a = 0; a < ds.num_arrays; ++a) {
        const auto zrow = z.subspan(a * s.plan.buckets, s.plan.buckets);
        const std::uint64_t total = std::accumulate(zrow.begin(), zrow.end(), std::uint64_t{0});
        EXPECT_EQ(total, ds.array_size) << "array " << a;

        // After write-back, elements of bucket j must lie within the j-th
        // splitter pair's range, and the concatenation must be a permutation
        // of the original array.
        const auto sprow = sp.subspan(a * s.plan.splitters_per_array,
                                      s.plan.splitters_per_array);
        const auto row = data.subspan(a * ds.array_size, ds.array_size);
        std::size_t pos = 0;
        for (std::size_t j = 0; j < s.plan.buckets; ++j) {
            for (std::uint32_t k = 0; k < zrow[j]; ++k, ++pos) {
                ASSERT_TRUE(gas::detail::in_bucket(row[pos], sprow[j], sprow[j + 1], j == 0))
                    << "array " << a << " bucket " << j;
            }
        }
        std::vector<float> got(row.begin(), row.end());
        std::vector<float> want(ds.array(a), ds.array(a) + ds.array_size);
        std::sort(got.begin(), got.end());
        std::sort(want.begin(), want.end());
        ASSERT_EQ(got, want) << "array " << a << " lost elements";
    }
}

TEST(BucketPhase, GlobalScratchFallbackMatchesSharedPath) {
    // Same dataset bucketed via the shared-staging path and via a forced
    // global-scratch path must produce identical arrays.
    const auto ds = workload::make_dataset(6, 600, workload::Distribution::Normal, 3);
    const Options opts;

    auto run = [&](bool force_global) {
        auto dev = make_device();
        auto s = stage(dev, ds, opts);
        if (force_global) s.plan.array_fits_shared = false;
        gas::detail::splitter_phase<float>(dev, s.data.span(), ds.num_arrays, s.plan,
                                    s.splitters.span());
        simt::DeviceBuffer<float> scratch;
        std::size_t rows = 0;
        if (force_global) {
            rows = 4;
            scratch = simt::DeviceBuffer<float>(dev, rows * ds.array_size);
        }
        gas::detail::bucket_phase<float>(dev, s.data.span(), ds.num_arrays, s.plan, opts,
                                  s.splitters.span(), s.sizes.span(), scratch.span(), rows);
        return std::vector<float>(s.data.span().begin(), s.data.span().end());
    };

    EXPECT_EQ(run(false), run(true));
}

TEST(SortPhase, ProducesFullySortedArrays) {
    auto dev = make_device();
    const auto ds = workload::make_dataset(12, 1000, workload::Distribution::Uniform, 4);
    const Options opts;
    auto s = stage(dev, ds, opts);

    gas::detail::splitter_phase<float>(dev, s.data.span(), ds.num_arrays, s.plan, s.splitters.span());
    gas::detail::bucket_phase<float>(dev, s.data.span(), ds.num_arrays, s.plan, opts,
                              s.splitters.span(), s.sizes.span(), {}, 0);
    gas::detail::sort_phase<float>(dev, s.data.span(), ds.num_arrays, s.plan, s.sizes.span());

    const auto data = s.data.span();
    for (std::size_t a = 0; a < ds.num_arrays; ++a) {
        const auto row = data.subspan(a * ds.array_size, ds.array_size);
        ASSERT_TRUE(std::is_sorted(row.begin(), row.end())) << "array " << a;
    }
}

TEST(Phases, KernelNamesAreLogged) {
    auto dev = make_device();
    const auto ds = workload::make_dataset(3, 100, workload::Distribution::Uniform, 5);
    const Options opts;
    auto s = stage(dev, ds, opts);
    dev.clear_kernel_log();

    gas::detail::splitter_phase<float>(dev, s.data.span(), ds.num_arrays, s.plan, s.splitters.span());
    gas::detail::bucket_phase<float>(dev, s.data.span(), ds.num_arrays, s.plan, opts,
                              s.splitters.span(), s.sizes.span(), {}, 0);
    gas::detail::sort_phase<float>(dev, s.data.span(), ds.num_arrays, s.plan, s.sizes.span());

    ASSERT_EQ(dev.kernel_log().size(), 3u);
    EXPECT_EQ(dev.kernel_log()[0].name, "gas.phase1_splitters");
    EXPECT_EQ(dev.kernel_log()[1].name, "gas.phase2_bucketing");
    EXPECT_EQ(dev.kernel_log()[2].name, "gas.phase3_sort");
    EXPECT_EQ(dev.kernel_log()[0].block_dim, 1u);  // single thread per block
    EXPECT_EQ(dev.kernel_log()[1].block_dim, s.plan.block_threads);
}

}  // namespace
