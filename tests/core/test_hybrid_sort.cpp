// Hybrid skew-aware phase-3 sorter (DESIGN.md section 8): bitonic-network
// property tests against the insertion-sort reference, binary-insertion
// equivalence, cutover autotuning, and end-to-end equality / speedup /
// worker-invariance checks on the single-hot-bucket adversary.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <random>
#include <set>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/bitonic.hpp"
#include "core/gpu_array_sort.hpp"
#include "core/insertion_sort.hpp"
#include "core/pair_sort.hpp"
#include "core/phases.hpp"
#include "core/plan.hpp"
#include "core/ragged_sort.hpp"
#include "core/tune.hpp"
#include "core/validate.hpp"
#include "simt/device.hpp"
#include "workload/generators.hpp"

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

/// Duplicate-heavy NaN-free float data (integers scaled, so comparisons are
/// exact and equal keys are common — the regime phase 3 actually sees).
std::vector<float> bucket_data(std::size_t k, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> pick(0, static_cast<int>(k / 3) + 1);
    std::vector<float> v(k);
    for (auto& x : v) x = static_cast<float>(pick(rng)) * 0.5f;
    return v;
}

gas::Options forced_hybrid() {
    gas::Options opts;
    opts.phase3_small_cutoff = 16;  // force the mid + cooperative classes
    opts.phase3_bitonic_cutoff = 64;
    return opts;
}

TEST(BitonicSchedule, PaddingAndStepCounts) {
    using gas::detail::bitonic_padded_size;
    using gas::detail::bitonic_step_count;
    EXPECT_EQ(bitonic_padded_size(0), 1u);
    EXPECT_EQ(bitonic_padded_size(1), 1u);
    EXPECT_EQ(bitonic_padded_size(2), 2u);
    EXPECT_EQ(bitonic_padded_size(129), 256u);
    EXPECT_EQ(bitonic_padded_size(256), 256u);
    EXPECT_EQ(bitonic_step_count(1), 0u);
    EXPECT_EQ(bitonic_step_count(2), 1u);
    EXPECT_EQ(bitonic_step_count(256), 36u);  // L = 8 -> L(L+1)/2
}

TEST(BitonicNetwork, MatchesInsertionSortForEveryBucketSize) {
    for (std::size_t k = 1; k <= 256; ++k) {
        const auto data = bucket_data(k, k * 7919 + 1);
        const std::size_t m = gas::detail::bitonic_padded_size(k);

        std::vector<float> padded(data);
        padded.resize(m, kInf);  // physical high-sentinel padding
        gas::detail::bitonic_sort_network(std::span<float>(padded));

        std::vector<float> ref(data);
        gas::insertion_sort_seq(std::span<float>(ref));

        ASSERT_TRUE(std::equal(ref.begin(), ref.end(), padded.begin()))
            << "bitonic output differs from insertion sort at k = " << k;
        for (std::size_t e = k; e < m; ++e) {
            ASSERT_EQ(padded[e], kInf) << "padding slot " << e << " corrupted at k = " << k;
        }
    }
}

TEST(BitonicNetwork, StaggerRuleTilesAllBanksForAnyContiguousPairWindow) {
    // The lockstep bank model co-issues the t-th shared access of each lane;
    // a warp's lanes hold 32 contiguous pair indices (aligned or not, since
    // blocks need not be a multiple of 32 wide).  Both co-issue slots of the
    // compare-exchange must then touch 32 distinct banks.
    for (const std::uint32_t d : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        for (std::uint32_t start = 0; start < 96; ++start) {
            std::set<std::uint32_t> first_banks;
            std::set<std::uint32_t> second_banks;
            for (std::uint32_t pr = start; pr < start + 32; ++pr) {
                const auto [i, j] = gas::detail::bitonic_pair(pr, d);
                const bool j_first = gas::detail::bitonic_swap_first(pr, d);
                first_banks.insert((j_first ? j : i) % 32);
                second_banks.insert((j_first ? i : j) % 32);
            }
            ASSERT_EQ(first_banks.size(), 32u) << "d = " << d << " start = " << start;
            ASSERT_EQ(second_banks.size(), 32u) << "d = " << d << " start = " << start;
        }
    }
}

TEST(BinaryInsertion, BitIdenticalToPlainInsertion) {
    for (std::size_t k = 0; k <= 200; k += 7) {
        auto plain = bucket_data(k, k + 31);
        auto binary = plain;
        const auto pc = gas::insertion_sort_seq(std::span<float>(plain));
        const auto bc = gas::binary_insertion_sort_seq(std::span<float>(binary));
        ASSERT_EQ(plain, binary) << "k = " << k;
        EXPECT_EQ(pc.moves, bc.moves) << "k = " << k;  // same shifts, fewer probes
        if (k >= 64) {
            EXPECT_LT(bc.compares, pc.compares) << "k = " << k;
        }
    }
}

TEST(BinaryInsertion, PairsVariantMatchesPlainPairs) {
    for (std::size_t k = 1; k <= 150; k += 11) {
        const auto keys = bucket_data(k, k + 77);
        std::vector<float> vals(k);
        for (std::size_t i = 0; i < k; ++i) vals[i] = static_cast<float>(i);
        auto k1 = keys;
        auto v1 = vals;
        auto k2 = keys;
        auto v2 = vals;
        gas::insertion_sort_pairs_seq(std::span<float>(k1), std::span<float>(v1));
        gas::binary_insertion_sort_pairs_seq(std::span<float>(k2), std::span<float>(v2));
        ASSERT_EQ(k1, k2) << "k = " << k;
        ASSERT_EQ(v1, v2) << "k = " << k;  // both stable -> same value order
    }
}

TEST(Tune, K40cAutotuneMatchesOptionDefaults) {
    const auto t = gas::tune_sort_phase(simt::tesla_k40c());
    const gas::Options defaults;
    EXPECT_EQ(t.small_cutoff, defaults.phase3_small_cutoff);
    EXPECT_EQ(t.bitonic_cutoff, defaults.phase3_bitonic_cutoff);
    EXPECT_EQ(t.small_cutoff, 120u);  // 6x the 20-element bucket target
    EXPECT_EQ(t.bitonic_cutoff, 240u);
    // The model itself must prefer each algorithm in its class.
    const auto props = simt::tesla_k40c();
    EXPECT_LT(gas::modeled_binary_insertion_cycles(512, props),
              gas::modeled_insertion_cycles(512, props));
    EXPECT_LT(gas::modeled_bitonic_cycles(2048, 32, props),
              gas::modeled_binary_insertion_cycles(2048, props));
}

TEST(HybridPhase3, MatchesBaselineOnEveryDistribution) {
    for (const auto dist : workload::all_distributions()) {
        const auto ds = workload::make_dataset(6, 400, dist, 9);

        auto base = ds.values;
        simt::Device dev_base(simt::tiny_device(256 << 20));
        gas::Options off;
        off.hybrid_phase3 = false;
        gas::gpu_array_sort(dev_base, base, ds.num_arrays, ds.array_size, off);

        auto hyb = ds.values;
        simt::Device dev_hyb(simt::tiny_device(256 << 20));
        gas::gpu_array_sort(dev_hyb, hyb, ds.num_arrays, ds.array_size, forced_hybrid());

        ASSERT_EQ(base, hyb) << "distribution " << workload::to_string(dist);
        EXPECT_TRUE(gas::all_arrays_sorted(hyb, ds.num_arrays, ds.array_size));
    }
}

TEST(HybridPhase3, ZipfHotSpeedupAndLaneBalance) {
    const auto ds = workload::make_dataset(32, 1000, workload::Distribution::ZipfHot, 4);

    auto base = ds.values;
    simt::Device dev_base(simt::tiny_device(256 << 20));
    gas::Options off;
    off.hybrid_phase3 = false;
    const auto sb = gas::gpu_array_sort(dev_base, base, ds.num_arrays, ds.array_size, off);

    auto hyb = ds.values;
    simt::Device dev_hyb(simt::tiny_device(256 << 20));
    const auto sh =
        gas::gpu_array_sort(dev_hyb, hyb, ds.num_arrays, ds.array_size, gas::Options{});

    ASSERT_EQ(base, hyb);
    // Acceptance gate: modeled phase-3 makespan at least 3x better on the
    // single-hot-bucket adversary, and the divergence metric must show the
    // lanes actually rebalanced.
    EXPECT_GE(sb.phase3.modeled_ms / sh.phase3.modeled_ms, 3.0);
    EXPECT_GT(sb.phase3_imbalance, 5.0);
    EXPECT_LT(sh.phase3_imbalance, sb.phase3_imbalance / 2.0);
}

TEST(HybridPhase3, DisabledFlagIsBitIdenticalRegardlessOfCutoffs) {
    // With hybrid_phase3 off the kernel must be the paper's phase 3
    // bit-for-bit: the cutover knobs may not leak into any modeled stat.
    const auto ds = workload::make_dataset(8, 600, workload::Distribution::ZipfHot, 5);
    const auto run = [&](std::size_t small, std::size_t bitonic) {
        auto values = ds.values;
        simt::Device dev(simt::tiny_device(256 << 20));
        gas::Options opts;
        opts.hybrid_phase3 = false;
        opts.phase3_small_cutoff = small;
        opts.phase3_bitonic_cutoff = bitonic;
        gas::gpu_array_sort(dev, values, ds.num_arrays, ds.array_size, opts);
        return std::vector<simt::KernelStats>(dev.kernel_log().begin(),
                                              dev.kernel_log().end());
    };
    const auto a = run(1, 2);
    const auto b = run(400, 800);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].totals.ops, b[i].totals.ops);
        EXPECT_EQ(a[i].totals.shared_accesses, b[i].totals.shared_accesses);
        EXPECT_EQ(a[i].totals.coalesced_bytes, b[i].totals.coalesced_bytes);
        EXPECT_EQ(a[i].totals.random_accesses, b[i].totals.random_accesses);
        EXPECT_EQ(a[i].modeled_ms, b[i].modeled_ms);
        EXPECT_EQ(a[i].imbalance, b[i].imbalance);
    }
}

TEST(HybridPhase3, WorkerCountInvariance) {
    const auto ds = workload::make_dataset(8, 800, workload::Distribution::ZipfHot, 6);
    const auto run = [&](unsigned workers) {
        auto values = ds.values;
        simt::Device dev(simt::tiny_device(256 << 20), simt::DeviceMemory::Mode::Backed,
                         workers);
        const auto s =
            gas::gpu_array_sort(dev, values, ds.num_arrays, ds.array_size, forced_hybrid());
        return std::pair{values, std::pair{s.phase3.modeled_ms, s.phase3_imbalance}};
    };
    const auto one = run(1);
    const auto three = run(3);
    EXPECT_EQ(one.first, three.first);
    EXPECT_EQ(one.second.first, three.second.first);    // modeled phase-3 ms
    EXPECT_EQ(one.second.second, three.second.second);  // imbalance metric
}

TEST(HybridPhase3, PairSortKeepsPairsTogetherThroughBitonicPath) {
    const std::size_t num_arrays = 4;
    const std::size_t n = 600;
    auto keys = workload::make_dataset(num_arrays, n, workload::Distribution::ZipfHot, 7);
    std::vector<float> vals(num_arrays * n);
    for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = static_cast<float>(i);

    std::vector<std::multiset<std::pair<float, float>>> before(num_arrays);
    for (std::size_t a = 0; a < num_arrays; ++a) {
        for (std::size_t i = 0; i < n; ++i) {
            before[a].insert({keys.values[a * n + i], vals[a * n + i]});
        }
    }

    simt::Device dev(simt::tiny_device(256 << 20));
    gas::gpu_pair_sort(dev, std::span<float>(keys.values), std::span<float>(vals),
                       num_arrays, n, forced_hybrid());

    EXPECT_TRUE(gas::all_arrays_sorted(keys.values, num_arrays, n));
    for (std::size_t a = 0; a < num_arrays; ++a) {
        std::multiset<std::pair<float, float>> after;
        for (std::size_t i = 0; i < n; ++i) {
            after.insert({keys.values[a * n + i], vals[a * n + i]});
        }
        ASSERT_EQ(before[a], after) << "array " << a << " lost (key, value) pairing";
    }
}

TEST(HybridPhase3, RaggedSkewMatchesBaseline) {
    const auto ds =
        workload::make_ragged_dataset(10, 64, 600, workload::Distribution::ZipfHot, 8);
    const std::vector<std::uint64_t> offsets(ds.offsets.begin(), ds.offsets.end());

    auto base = ds.values;
    simt::Device dev_base(simt::tiny_device(256 << 20));
    gas::Options off;
    off.hybrid_phase3 = false;
    gas::gpu_ragged_sort(dev_base, base, offsets, off);

    auto hyb = ds.values;
    simt::Device dev_hyb(simt::tiny_device(256 << 20));
    gas::gpu_ragged_sort(dev_hyb, hyb, offsets, forced_hybrid());

    EXPECT_EQ(base, hyb);
    for (std::size_t a = 0; a + 1 < offsets.size(); ++a) {
        EXPECT_TRUE(std::is_sorted(hyb.begin() + static_cast<std::ptrdiff_t>(offsets[a]),
                                   hyb.begin() + static_cast<std::ptrdiff_t>(offsets[a + 1])));
    }
}

#ifndef NDEBUG
TEST(HybridPhase3, CorruptBucketTableThrowsInDebugBuilds) {
    // The debug guard fires before any bucket is indexed: a Z row that does
    // not sum to n is a phase-2 contract violation.
    simt::Device dev(simt::tiny_device(64 << 20));
    const auto ds = workload::make_dataset(1, 400);
    simt::DeviceBuffer<float> data(dev, ds.values.size());
    simt::copy_to_device(std::span<const float>(ds.values), data);
    const gas::Options opts;
    const gas::SortPlan plan = gas::make_plan(ds.array_size, opts, dev.props());
    ASSERT_GT(plan.buckets, 1u);
    std::vector<std::uint32_t> z(plan.buckets, 1);  // sums to p, not n
    simt::DeviceBuffer<std::uint32_t> zbuf(dev, z.size());
    simt::copy_to_device(std::span<const std::uint32_t>(z), zbuf);
    EXPECT_THROW(gas::detail::sort_phase<float>(dev, data.span(), 1, plan, zbuf.span(), opts),
                 std::logic_error);
}
#endif

}  // namespace
