// Execution-mode equivalence sweeps.
//
// 1. ExecEquivalence: every paper kernel must be bit-identical between the
//    scalar reference interpreter and the warp-vectorized fast path
//    (SIMT_EXEC=warp) — identical output bytes AND identical KernelStats
//    (every deterministic field; only wall_ms may differ).
// 2. GraphEquivalence: the same workloads run as one submitted work graph
//    (Options::graph_launch, the default) must be bit-identical to the
//    loop-of-launches path, in both exec modes.
//
// Both sweeps cross both ThreadOrders and sanitizer off/strict, so the warp
// fast paths' tracked fallbacks, the analytic counter charges, and the
// graph executor's resident-team protocol are all exercised.  Together they
// close the square: loop/scalar == loop/warp == graph/scalar == graph/warp.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/gpu_array_sort.hpp"
#include "core/pair_sort.hpp"
#include "core/ragged_sort.hpp"
#include "simt/device.hpp"
#include "thrustlite/device_vector.hpp"
#include "thrustlite/radix_sort.hpp"
#include "workload/generators.hpp"

namespace {

/// Compares every deterministic KernelStats field.  wall_ms is the only
/// field allowed to differ between execution modes — it measures host time,
/// which the fast path exists to change.
void expect_logs_equal(const std::vector<simt::KernelStats>& scalar,
                       const std::vector<simt::KernelStats>& warp) {
    ASSERT_EQ(scalar.size(), warp.size());
    for (std::size_t i = 0; i < scalar.size(); ++i) {
        const auto& s = scalar[i];
        const auto& w = warp[i];
        SCOPED_TRACE("kernel #" + std::to_string(i) + ": " + s.name);
        EXPECT_EQ(s.name, w.name);
        EXPECT_EQ(s.grid_dim, w.grid_dim);
        EXPECT_EQ(s.block_dim, w.block_dim);
        EXPECT_EQ(s.shared_bytes_per_block, w.shared_bytes_per_block);
        EXPECT_EQ(s.totals.ops, w.totals.ops);
        EXPECT_EQ(s.totals.shared_accesses, w.totals.shared_accesses);
        EXPECT_EQ(s.totals.coalesced_bytes, w.totals.coalesced_bytes);
        EXPECT_EQ(s.totals.random_accesses, w.totals.random_accesses);
        EXPECT_EQ(s.traffic_bytes, w.traffic_bytes);
        EXPECT_EQ(s.compute_ms, w.compute_ms);
        EXPECT_EQ(s.memory_ms, w.memory_ms);
        EXPECT_EQ(s.modeled_ms, w.modeled_ms);
        EXPECT_EQ(s.warp_max_cycles, w.warp_max_cycles);
        EXPECT_EQ(s.warp_mean_cycles, w.warp_mean_cycles);
        EXPECT_EQ(s.imbalance, w.imbalance);
    }
}

void configure_sweep_device(simt::Device& dev, simt::ThreadOrder order,
                            simt::ExecMode mode, bool sanitized) {
    dev.set_thread_order(order);
    dev.set_exec_mode(mode);
    if (sanitized) {
        auto opts = simt::sanitize::SanitizeOptions::all();
        opts.strict = true;  // any finding fails the launch loudly
        dev.set_sanitize_options(opts);
    }
}

/// Runs `fn(device, graph_launch)` under scalar and warp execution (graph
/// path both times), for both ThreadOrders and with the sanitizer off and
/// strict-all, asserting identical payload bytes and identical kernel logs.
template <typename F>
void exec_sweep(F fn) {
    for (const auto order : {simt::ThreadOrder::Forward, simt::ThreadOrder::Reverse}) {
        for (const bool sanitized : {false, true}) {
            const auto run = [&](simt::ExecMode mode) {
                simt::Device dev(simt::tiny_device(256 << 20));
                configure_sweep_device(dev, order, mode, sanitized);
                auto payload = fn(dev, /*graph_launch=*/true);
                return std::pair{std::move(payload), dev.kernel_log()};
            };
            SCOPED_TRACE(std::string(order == simt::ThreadOrder::Forward ? "Forward"
                                                                         : "Reverse") +
                         (sanitized ? " sanitized" : " unsanitized"));
            const auto scalar = run(simt::ExecMode::Scalar);
            const auto warp = run(simt::ExecMode::Warp);
            EXPECT_EQ(scalar.first, warp.first);
            expect_logs_equal(scalar.second, warp.second);
        }
    }
}

/// Runs `fn(device, graph_launch)` with the loop-of-launches path and the
/// graph-launch path, in both exec modes, both ThreadOrders, sanitizer off
/// and strict: the graph executor's contract is zero byte drift and zero
/// deterministic-KernelStats drift against the loop it replaces.
template <typename F>
void graph_vs_loop_sweep(F fn) {
    for (const auto order : {simt::ThreadOrder::Forward, simt::ThreadOrder::Reverse}) {
        for (const bool sanitized : {false, true}) {
            for (const auto mode : {simt::ExecMode::Scalar, simt::ExecMode::Warp}) {
                const auto run = [&](bool graph_launch) {
                    simt::Device dev(simt::tiny_device(256 << 20));
                    configure_sweep_device(dev, order, mode, sanitized);
                    auto payload = fn(dev, graph_launch);
                    return std::pair{std::move(payload), dev.kernel_log()};
                };
                SCOPED_TRACE(
                    std::string(order == simt::ThreadOrder::Forward ? "Forward"
                                                                    : "Reverse") +
                    (sanitized ? " sanitized" : " unsanitized") +
                    (mode == simt::ExecMode::Warp ? " warp" : " scalar"));
                const auto loop = run(false);
                const auto graph = run(true);
                EXPECT_EQ(loop.first, graph.first);
                expect_logs_equal(loop.second, graph.second);
            }
        }
    }
}

// --- the 15 sweep workloads, shared by both sweeps -------------------------

std::vector<float> wl_array_sort_verify(simt::Device& dev, bool graph) {
    auto ds = workload::make_dataset(16, 500);
    gas::Options opts;
    opts.graph_launch = graph;
    opts.verify_output = true;  // covers the gas.verify* streaming kernels
    gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
    return ds.values;
}

std::vector<std::uint32_t> wl_array_sort_u32(simt::Device& dev, bool graph) {
    auto ds = workload::make_dataset(8, 300);
    std::vector<std::uint32_t> data(ds.values.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::uint32_t>(ds.values[i] * 1e6f);
    }
    gas::Options opts;
    opts.graph_launch = graph;
    gas::gpu_array_sort(dev, data, ds.num_arrays, ds.array_size, opts);
    return data;
}

std::vector<float> wl_array_sort_descending(simt::Device& dev, bool graph) {
    auto ds = workload::make_dataset(8, 300, workload::Distribution::Normal);
    gas::Options opts;
    opts.graph_launch = graph;
    opts.order = gas::SortOrder::Descending;
    gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
    return ds.values;
}

std::vector<float> wl_array_sort_binary_search(simt::Device& dev, bool graph) {
    auto ds = workload::make_dataset(8, 500);
    gas::Options opts;
    opts.graph_launch = graph;
    opts.strategy = gas::BucketingStrategy::BinarySearch;
    gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
    return ds.values;
}

std::vector<float> wl_array_sort_tpb(simt::Device& dev, bool graph) {
    // tpb > 1 strides each bucket over several lanes — the warp fast path
    // must take its reference fallback and still match exactly.
    auto ds = workload::make_dataset(8, 500);
    gas::Options opts;
    opts.graph_launch = graph;
    opts.threads_per_bucket = 2;
    gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
    return ds.values;
}

std::vector<float> wl_small_array(simt::Device& dev, bool graph) {
    auto ds = workload::make_dataset(32, 8);
    gas::Options opts;
    opts.graph_launch = graph;
    gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
    return ds.values;
}

std::vector<float> wl_global_scratch(simt::Device& dev, bool graph) {
    auto ds = workload::make_dataset(2, 20000);  // 80 KB rows: > 48 KB shared
    gas::Options opts;
    opts.graph_launch = graph;
    gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
    return ds.values;
}

std::vector<float> wl_pair_sort(simt::Device& dev, bool graph) {
    auto keys = workload::make_dataset(8, 400, workload::Distribution::Uniform, 7);
    auto vals = workload::make_dataset(8, 400, workload::Distribution::Uniform, 8);
    gas::Options opts;
    opts.graph_launch = graph;
    gas::gpu_pair_sort(dev, keys.values, vals.values, 8, 400, opts);
    auto out = keys.values;
    out.insert(out.end(), vals.values.begin(), vals.values.end());
    return out;
}

std::vector<float> wl_ragged_sort(simt::Device& dev, bool graph) {
    auto ds = workload::make_ragged_dataset(12, 16, 512);
    std::vector<std::uint64_t> offsets(ds.offsets.begin(), ds.offsets.end());
    gas::Options opts;
    opts.graph_launch = graph;
    gas::gpu_ragged_sort(dev, ds.values, offsets, opts);
    return ds.values;
}

std::vector<float> wl_ragged_pair_sort(simt::Device& dev, bool graph) {
    auto ds =
        workload::make_ragged_dataset(10, 16, 256, workload::Distribution::Uniform, 5);
    auto vs = ds.values;
    std::reverse(vs.begin(), vs.end());
    std::vector<std::uint64_t> offsets(ds.offsets.begin(), ds.offsets.end());
    gas::Options opts;
    opts.graph_launch = graph;
    gas::gpu_ragged_pair_sort(dev, std::span<float>(ds.values), std::span<float>(vs),
                              offsets, opts);
    auto out = ds.values;
    out.insert(out.end(), vs.begin(), vs.end());
    return out;
}

gas::Options hybrid_forced(bool graph) {
    gas::Options opts;
    opts.graph_launch = graph;
    opts.phase3_small_cutoff = 16;
    opts.phase3_bitonic_cutoff = 64;
    return opts;
}

std::vector<float> wl_hybrid_skew_array(simt::Device& dev, bool graph) {
    auto ds = workload::make_dataset(8, 600, workload::Distribution::ZipfHot, 3);
    gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size,
                        hybrid_forced(graph));
    return ds.values;
}

std::vector<float> wl_hybrid_skew_ragged(simt::Device& dev, bool graph) {
    auto ds = workload::make_ragged_dataset(10, 64, 512, workload::Distribution::ZipfHot, 6);
    std::vector<std::uint64_t> offsets(ds.offsets.begin(), ds.offsets.end());
    gas::gpu_ragged_sort(dev, ds.values, offsets, hybrid_forced(graph));
    return ds.values;
}

std::vector<float> wl_hybrid_skew_pair(simt::Device& dev, bool graph) {
    auto keys = workload::make_dataset(6, 500, workload::Distribution::ZipfHot, 7);
    auto vals = workload::make_dataset(6, 500, workload::Distribution::Uniform, 8);
    gas::gpu_pair_sort(dev, keys.values, vals.values, 6, 500, hybrid_forced(graph));
    auto out = keys.values;
    out.insert(out.end(), vals.values.begin(), vals.values.end());
    return out;
}

std::vector<std::uint32_t> pseudo_u32(std::size_t count, std::uint64_t seed) {
    std::vector<std::uint32_t> v(count);
    std::uint64_t state = seed * 0x9e3779b97f4a7c15ull + 1;
    for (auto& x : v) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        x = static_cast<std::uint32_t>(state >> 32);
    }
    return v;
}

template <bool kPrune>
std::vector<std::uint32_t> wl_radix_u32(simt::Device& dev, bool graph) {
    thrustlite::device_vector<std::uint32_t> keys(dev, pseudo_u32(10001, 1));
    thrustlite::RadixOptions opts;
    opts.prune_passes = kPrune;
    opts.graph_launch = graph;
    thrustlite::stable_sort(dev, keys.span(), opts);
    return keys.to_host();
}

std::vector<std::uint32_t> wl_radix_by_key(simt::Device& dev, bool graph) {
    const auto host_keys = pseudo_u32(9000, 3);
    std::vector<std::uint32_t> host_vals(host_keys.size());
    for (std::size_t i = 0; i < host_vals.size(); ++i) {
        host_vals[i] = static_cast<std::uint32_t>(i);
    }
    thrustlite::device_vector<std::uint32_t> keys(dev, host_keys);
    thrustlite::device_vector<std::uint32_t> vals(dev, host_vals);
    thrustlite::RadixOptions opts;
    opts.graph_launch = graph;
    thrustlite::stable_sort_by_key(dev, keys.span(), vals.span(), opts);
    auto out = keys.to_host();
    const auto v = vals.to_host();
    out.insert(out.end(), v.begin(), v.end());
    return out;
}

// --- scalar vs warp (graph path, the default) ------------------------------

TEST(ExecEquivalence, ArraySortFloatWithVerify) { exec_sweep(wl_array_sort_verify); }
TEST(ExecEquivalence, ArraySortUint32) { exec_sweep(wl_array_sort_u32); }
TEST(ExecEquivalence, ArraySortDescending) { exec_sweep(wl_array_sort_descending); }
TEST(ExecEquivalence, ArraySortBinarySearchStrategy) {
    exec_sweep(wl_array_sort_binary_search);
}
TEST(ExecEquivalence, ArraySortThreadsPerBucket) { exec_sweep(wl_array_sort_tpb); }
TEST(ExecEquivalence, SmallArrayFastPath) { exec_sweep(wl_small_array); }
TEST(ExecEquivalence, GlobalScratchFallback) { exec_sweep(wl_global_scratch); }
TEST(ExecEquivalence, PairSort) { exec_sweep(wl_pair_sort); }
TEST(ExecEquivalence, RaggedSort) { exec_sweep(wl_ragged_sort); }
TEST(ExecEquivalence, RaggedPairSort) { exec_sweep(wl_ragged_pair_sort); }
TEST(ExecEquivalence, HybridSkewArraySort) { exec_sweep(wl_hybrid_skew_array); }
TEST(ExecEquivalence, HybridSkewRaggedSort) { exec_sweep(wl_hybrid_skew_ragged); }
TEST(ExecEquivalence, HybridSkewPairSort) { exec_sweep(wl_hybrid_skew_pair); }
TEST(ExecEquivalence, RadixSortU32) {
    exec_sweep(wl_radix_u32<false>);
    exec_sweep(wl_radix_u32<true>);
}
TEST(ExecEquivalence, RadixSortByKey) { exec_sweep(wl_radix_by_key); }

// --- graph launch vs loop of launches, both exec modes ---------------------

TEST(GraphEquivalence, ArraySortFloatWithVerify) {
    graph_vs_loop_sweep(wl_array_sort_verify);
}
TEST(GraphEquivalence, ArraySortUint32) { graph_vs_loop_sweep(wl_array_sort_u32); }
TEST(GraphEquivalence, ArraySortDescending) {
    graph_vs_loop_sweep(wl_array_sort_descending);
}
TEST(GraphEquivalence, ArraySortBinarySearchStrategy) {
    graph_vs_loop_sweep(wl_array_sort_binary_search);
}
TEST(GraphEquivalence, ArraySortThreadsPerBucket) {
    graph_vs_loop_sweep(wl_array_sort_tpb);
}
TEST(GraphEquivalence, SmallArrayFastPath) { graph_vs_loop_sweep(wl_small_array); }
TEST(GraphEquivalence, GlobalScratchFallback) { graph_vs_loop_sweep(wl_global_scratch); }
TEST(GraphEquivalence, PairSort) { graph_vs_loop_sweep(wl_pair_sort); }
TEST(GraphEquivalence, RaggedSort) { graph_vs_loop_sweep(wl_ragged_sort); }
TEST(GraphEquivalence, RaggedPairSort) { graph_vs_loop_sweep(wl_ragged_pair_sort); }
TEST(GraphEquivalence, HybridSkewArraySort) {
    graph_vs_loop_sweep(wl_hybrid_skew_array);
}
TEST(GraphEquivalence, HybridSkewRaggedSort) {
    graph_vs_loop_sweep(wl_hybrid_skew_ragged);
}
TEST(GraphEquivalence, HybridSkewPairSort) { graph_vs_loop_sweep(wl_hybrid_skew_pair); }
TEST(GraphEquivalence, RadixSortU32) {
    graph_vs_loop_sweep(wl_radix_u32<false>);
    graph_vs_loop_sweep(wl_radix_u32<true>);
}
TEST(GraphEquivalence, RadixSortByKey) { graph_vs_loop_sweep(wl_radix_by_key); }

}  // namespace
