// Execution-mode equivalence sweep: every paper kernel must be bit-identical
// between the scalar reference interpreter and the warp-vectorized fast path
// (SIMT_EXEC=warp) — identical output bytes AND identical KernelStats (every
// deterministic field; only wall_ms may differ).  The sweep crosses both
// ThreadOrders and sanitizer off/strict, so the warp fast paths' tracked
// fallbacks and analytic counter charges are all exercised.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/gpu_array_sort.hpp"
#include "core/pair_sort.hpp"
#include "core/ragged_sort.hpp"
#include "simt/device.hpp"
#include "thrustlite/device_vector.hpp"
#include "thrustlite/radix_sort.hpp"
#include "workload/generators.hpp"

namespace {

/// Compares every deterministic KernelStats field.  wall_ms is the only
/// field allowed to differ between execution modes — it measures host time,
/// which the fast path exists to change.
void expect_logs_equal(const std::vector<simt::KernelStats>& scalar,
                       const std::vector<simt::KernelStats>& warp) {
    ASSERT_EQ(scalar.size(), warp.size());
    for (std::size_t i = 0; i < scalar.size(); ++i) {
        const auto& s = scalar[i];
        const auto& w = warp[i];
        SCOPED_TRACE("kernel #" + std::to_string(i) + ": " + s.name);
        EXPECT_EQ(s.name, w.name);
        EXPECT_EQ(s.grid_dim, w.grid_dim);
        EXPECT_EQ(s.block_dim, w.block_dim);
        EXPECT_EQ(s.shared_bytes_per_block, w.shared_bytes_per_block);
        EXPECT_EQ(s.totals.ops, w.totals.ops);
        EXPECT_EQ(s.totals.shared_accesses, w.totals.shared_accesses);
        EXPECT_EQ(s.totals.coalesced_bytes, w.totals.coalesced_bytes);
        EXPECT_EQ(s.totals.random_accesses, w.totals.random_accesses);
        EXPECT_EQ(s.traffic_bytes, w.traffic_bytes);
        EXPECT_EQ(s.compute_ms, w.compute_ms);
        EXPECT_EQ(s.memory_ms, w.memory_ms);
        EXPECT_EQ(s.modeled_ms, w.modeled_ms);
        EXPECT_EQ(s.warp_max_cycles, w.warp_max_cycles);
        EXPECT_EQ(s.warp_mean_cycles, w.warp_mean_cycles);
        EXPECT_EQ(s.imbalance, w.imbalance);
    }
}

/// Runs `fn(device)` under scalar and warp execution, for both ThreadOrders
/// and with the sanitizer off and strict-all, asserting identical payload
/// bytes and identical kernel logs every time.
template <typename F>
void exec_sweep(F fn) {
    for (const auto order : {simt::ThreadOrder::Forward, simt::ThreadOrder::Reverse}) {
        for (const bool sanitized : {false, true}) {
            const auto run = [&](simt::ExecMode mode) {
                simt::Device dev(simt::tiny_device(256 << 20));
                dev.set_thread_order(order);
                dev.set_exec_mode(mode);
                if (sanitized) {
                    auto opts = simt::sanitize::SanitizeOptions::all();
                    opts.strict = true;  // any finding fails the launch loudly
                    dev.set_sanitize_options(opts);
                }
                auto payload = fn(dev);
                return std::pair{std::move(payload), dev.kernel_log()};
            };
            SCOPED_TRACE(std::string(order == simt::ThreadOrder::Forward ? "Forward"
                                                                         : "Reverse") +
                         (sanitized ? " sanitized" : " unsanitized"));
            const auto scalar = run(simt::ExecMode::Scalar);
            const auto warp = run(simt::ExecMode::Warp);
            EXPECT_EQ(scalar.first, warp.first);
            expect_logs_equal(scalar.second, warp.second);
        }
    }
}

TEST(ExecEquivalence, ArraySortFloatWithVerify) {
    exec_sweep([](simt::Device& dev) {
        auto ds = workload::make_dataset(16, 500);
        gas::Options opts;
        opts.verify_output = true;  // covers the gas.verify* streaming kernels
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
        return ds.values;
    });
}

TEST(ExecEquivalence, ArraySortUint32) {
    exec_sweep([](simt::Device& dev) {
        auto ds = workload::make_dataset(8, 300);
        std::vector<std::uint32_t> data(ds.values.size());
        for (std::size_t i = 0; i < data.size(); ++i) {
            data[i] = static_cast<std::uint32_t>(ds.values[i] * 1e6f);
        }
        gas::gpu_array_sort(dev, data, ds.num_arrays, ds.array_size);
        return data;
    });
}

TEST(ExecEquivalence, ArraySortDescending) {
    exec_sweep([](simt::Device& dev) {
        auto ds = workload::make_dataset(8, 300, workload::Distribution::Normal);
        gas::Options opts;
        opts.order = gas::SortOrder::Descending;
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
        return ds.values;
    });
}

TEST(ExecEquivalence, ArraySortBinarySearchStrategy) {
    exec_sweep([](simt::Device& dev) {
        auto ds = workload::make_dataset(8, 500);
        gas::Options opts;
        opts.strategy = gas::BucketingStrategy::BinarySearch;
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
        return ds.values;
    });
}

TEST(ExecEquivalence, ArraySortThreadsPerBucket) {
    // tpb > 1 strides each bucket over several lanes — the warp fast path
    // must take its reference fallback and still match exactly.
    exec_sweep([](simt::Device& dev) {
        auto ds = workload::make_dataset(8, 500);
        gas::Options opts;
        opts.threads_per_bucket = 2;
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
        return ds.values;
    });
}

TEST(ExecEquivalence, SmallArrayFastPath) {
    exec_sweep([](simt::Device& dev) {
        auto ds = workload::make_dataset(32, 8);
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
        return ds.values;
    });
}

TEST(ExecEquivalence, GlobalScratchFallback) {
    exec_sweep([](simt::Device& dev) {
        auto ds = workload::make_dataset(2, 20000);  // 80 KB rows: > 48 KB shared
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
        return ds.values;
    });
}

TEST(ExecEquivalence, PairSort) {
    exec_sweep([](simt::Device& dev) {
        auto keys = workload::make_dataset(8, 400, workload::Distribution::Uniform, 7);
        auto vals = workload::make_dataset(8, 400, workload::Distribution::Uniform, 8);
        gas::gpu_pair_sort(dev, keys.values, vals.values, 8, 400);
        auto out = keys.values;
        out.insert(out.end(), vals.values.begin(), vals.values.end());
        return out;
    });
}

TEST(ExecEquivalence, RaggedSort) {
    exec_sweep([](simt::Device& dev) {
        auto ds = workload::make_ragged_dataset(12, 16, 512);
        std::vector<std::uint64_t> offsets(ds.offsets.begin(), ds.offsets.end());
        gas::gpu_ragged_sort(dev, ds.values, offsets);
        return ds.values;
    });
}

TEST(ExecEquivalence, RaggedPairSort) {
    exec_sweep([](simt::Device& dev) {
        auto ds = workload::make_ragged_dataset(10, 16, 256, workload::Distribution::Uniform, 5);
        auto vs = ds.values;
        std::reverse(vs.begin(), vs.end());
        std::vector<std::uint64_t> offsets(ds.offsets.begin(), ds.offsets.end());
        gas::gpu_ragged_pair_sort(dev, std::span<float>(ds.values), std::span<float>(vs),
                                  offsets);
        auto out = ds.values;
        out.insert(out.end(), vs.begin(), vs.end());
        return out;
    });
}

gas::Options hybrid_forced() {
    gas::Options opts;
    opts.phase3_small_cutoff = 16;
    opts.phase3_bitonic_cutoff = 64;
    return opts;
}

TEST(ExecEquivalence, HybridSkewArraySort) {
    exec_sweep([](simt::Device& dev) {
        auto ds = workload::make_dataset(8, 600, workload::Distribution::ZipfHot, 3);
        gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, hybrid_forced());
        return ds.values;
    });
}

TEST(ExecEquivalence, HybridSkewRaggedSort) {
    exec_sweep([](simt::Device& dev) {
        auto ds = workload::make_ragged_dataset(10, 64, 512,
                                                workload::Distribution::ZipfHot, 6);
        std::vector<std::uint64_t> offsets(ds.offsets.begin(), ds.offsets.end());
        gas::gpu_ragged_sort(dev, ds.values, offsets, hybrid_forced());
        return ds.values;
    });
}

TEST(ExecEquivalence, HybridSkewPairSort) {
    exec_sweep([](simt::Device& dev) {
        auto keys = workload::make_dataset(6, 500, workload::Distribution::ZipfHot, 7);
        auto vals = workload::make_dataset(6, 500, workload::Distribution::Uniform, 8);
        gas::gpu_pair_sort(dev, keys.values, vals.values, 6, 500, hybrid_forced());
        auto out = keys.values;
        out.insert(out.end(), vals.values.begin(), vals.values.end());
        return out;
    });
}

std::vector<std::uint32_t> pseudo_u32(std::size_t count, std::uint64_t seed) {
    std::vector<std::uint32_t> v(count);
    std::uint64_t state = seed * 0x9e3779b97f4a7c15ull + 1;
    for (auto& x : v) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        x = static_cast<std::uint32_t>(state >> 32);
    }
    return v;
}

TEST(ExecEquivalence, RadixSortU32) {
    for (const bool prune : {false, true}) {
        exec_sweep([prune](simt::Device& dev) {
            thrustlite::device_vector<std::uint32_t> keys(dev, pseudo_u32(10001, 1));
            thrustlite::RadixOptions opts;
            opts.prune_passes = prune;
            thrustlite::stable_sort(dev, keys.span(), opts);
            return keys.to_host();
        });
    }
}

TEST(ExecEquivalence, RadixSortByKey) {
    exec_sweep([](simt::Device& dev) {
        const auto host_keys = pseudo_u32(9000, 3);
        std::vector<std::uint32_t> host_vals(host_keys.size());
        for (std::size_t i = 0; i < host_vals.size(); ++i) {
            host_vals[i] = static_cast<std::uint32_t>(i);
        }
        thrustlite::device_vector<std::uint32_t> keys(dev, host_keys);
        thrustlite::device_vector<std::uint32_t> vals(dev, host_vals);
        thrustlite::stable_sort_by_key(dev, keys.span(), vals.span());
        auto out = keys.to_host();
        const auto v = vals.to_host();
        out.insert(out.end(), v.begin(), v.end());
        return out;
    });
}

}  // namespace
