#include "core/pair_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "workload/generators.hpp"

namespace {

simt::Device make_device() { return simt::Device(simt::tiny_device(256 << 20)); }

/// Expected result: argsort the keys per row, apply to both arrays (stable
/// argsort makes the expectation deterministic even with duplicate keys —
/// the device sort is unstable, so value checks use multisets per key).
struct PairRows {
    std::vector<float> keys;
    std::vector<float> values;
};

PairRows make_pairs(std::size_t num_arrays, std::size_t n, workload::Distribution dist,
                    std::uint64_t seed) {
    PairRows p;
    p.keys = workload::make_values(num_arrays * n, dist, seed);
    p.values.resize(p.keys.size());
    std::iota(p.values.begin(), p.values.end(), 0.0f);  // unique payloads
    return p;
}

void check_pairs_sorted(const PairRows& before, const PairRows& after, std::size_t num_arrays,
                        std::size_t n, bool descending = false) {
    for (std::size_t a = 0; a < num_arrays; ++a) {
        const auto kb = std::span<const float>(before.keys).subspan(a * n, n);
        const auto vb = std::span<const float>(before.values).subspan(a * n, n);
        const auto ka = std::span<const float>(after.keys).subspan(a * n, n);
        const auto va = std::span<const float>(after.values).subspan(a * n, n);

        if (descending) {
            ASSERT_TRUE(std::is_sorted(ka.begin(), ka.end(), std::greater<>())) << a;
        } else {
            ASSERT_TRUE(std::is_sorted(ka.begin(), ka.end())) << a;
        }
        // Pairs must survive intact: the multiset of (key, value) pairs is
        // preserved within each row.
        std::vector<std::pair<float, float>> pb;
        std::vector<std::pair<float, float>> pa;
        for (std::size_t i = 0; i < n; ++i) {
            pb.emplace_back(kb[i], vb[i]);
            pa.emplace_back(ka[i], va[i]);
        }
        std::sort(pb.begin(), pb.end());
        std::sort(pa.begin(), pa.end());
        ASSERT_EQ(pa, pb) << "row " << a << " pairs corrupted";
    }
}

TEST(PairSort, SortsUniformPairsByKey) {
    auto dev = make_device();
    auto p = make_pairs(30, 500, workload::Distribution::Uniform, 1);
    const auto before = p;
    gas::gpu_pair_sort(dev, p.keys, p.values, 30, 500);
    check_pairs_sorted(before, p, 30, 500);
}

TEST(PairSort, EveryDistribution) {
    for (auto dist : workload::all_distributions()) {
        auto dev = make_device();
        auto p = make_pairs(10, 257, dist, 2);
        const auto before = p;
        gas::gpu_pair_sort(dev, p.keys, p.values, 10, 257);
        check_pairs_sorted(before, p, 10, 257);
    }
}

TEST(PairSort, DescendingOrder) {
    auto dev = make_device();
    auto p = make_pairs(12, 400, workload::Distribution::Uniform, 3);
    const auto before = p;
    gas::Options opts;
    opts.order = gas::SortOrder::Descending;
    gas::gpu_pair_sort(dev, p.keys, p.values, 12, 400, opts);
    check_pairs_sorted(before, p, 12, 400, /*descending=*/true);
}

TEST(PairSort, RaggedVariant) {
    auto dev = make_device();
    auto ds = workload::make_ragged_dataset(40, 5, 600, workload::Distribution::Normal, 4);
    std::vector<float> values(ds.values.size());
    std::iota(values.begin(), values.end(), 0.0f);
    std::vector<std::uint64_t> offsets(ds.offsets.begin(), ds.offsets.end());
    const auto before_keys = ds.values;
    const auto before_vals = values;

    gas::gpu_ragged_pair_sort(dev, ds.values, values, offsets);

    for (std::size_t a = 0; a < ds.num_arrays(); ++a) {
        const std::size_t b = offsets[a];
        const std::size_t n = offsets[a + 1] - b;
        ASSERT_TRUE(std::is_sorted(ds.values.begin() + static_cast<std::ptrdiff_t>(b),
                                   ds.values.begin() + static_cast<std::ptrdiff_t>(b + n)))
            << a;
        std::vector<std::pair<float, float>> pb;
        std::vector<std::pair<float, float>> pa;
        for (std::size_t i = 0; i < n; ++i) {
            pb.emplace_back(before_keys[b + i], before_vals[b + i]);
            pa.emplace_back(ds.values[b + i], values[b + i]);
        }
        std::sort(pb.begin(), pb.end());
        std::sort(pa.begin(), pa.end());
        ASSERT_EQ(pa, pb) << a;
    }
}

TEST(PairSort, UsesZeroTemporaryGlobalMemory) {
    auto dev = make_device();
    auto p = make_pairs(20, 300, workload::Distribution::Uniform, 5);
    simt::DeviceBuffer<float> keys(dev, p.keys.size());
    simt::DeviceBuffer<float> values(dev, p.values.size());
    simt::copy_to_device(std::span<const float>(p.keys), keys);
    simt::copy_to_device(std::span<const float>(p.values), values);
    const std::size_t peak = dev.memory().peak_bytes_in_use();
    gas::sort_pairs_on_device(dev, keys, values, 20, 300);
    EXPECT_EQ(dev.memory().peak_bytes_in_use(), peak);
}

TEST(PairSort, OversizedArraysThrow) {
    auto dev = make_device();
    // 2 x 8000 floats of shared staging exceed 48 KB.
    std::vector<float> keys(8000, 1.0f);
    std::vector<float> values(8000, 2.0f);
    EXPECT_THROW(gas::gpu_pair_sort(dev, keys, values, 1, 8000), std::invalid_argument);
}

TEST(PairSort, MismatchedBuffersThrow) {
    auto dev = make_device();
    simt::DeviceBuffer<float> keys(dev, 100);
    simt::DeviceBuffer<float> values(dev, 50);
    EXPECT_THROW(gas::sort_pairs_on_device(dev, keys, values, 1, 100), std::invalid_argument);
}

TEST(PairSort, EmptyInputsAreNoOps) {
    auto dev = make_device();
    std::vector<float> empty;
    EXPECT_NO_THROW(gas::gpu_pair_sort(dev, empty, empty, 0, 0));
    std::vector<std::uint64_t> offsets;
    EXPECT_NO_THROW(gas::gpu_ragged_pair_sort(dev, empty, empty, offsets));
}

TEST(PairSort, ReverseLaneOrderAgrees) {
    auto run = [](simt::ThreadOrder order) {
        simt::Device dev(simt::tiny_device(128 << 20));
        dev.set_thread_order(order);
        auto p = make_pairs(8, 300, workload::Distribution::Uniform, 6);
        gas::gpu_pair_sort(dev, p.keys, p.values, 8, 300);
        return std::pair{p.keys, p.values};
    };
    EXPECT_EQ(run(simt::ThreadOrder::Forward), run(simt::ThreadOrder::Reverse));
}

TEST(PairSort, DoublePrecisionPairs) {
    // (intensity, m/z) in double: payloads with sub-float spacing must ride
    // along exactly.  Keys are a permutation of 0..n-1 and each payload is
    // derived from its key, so the post-sort pairing is fully checkable.
    auto dev = make_device();
    const std::size_t n = 256;
    std::vector<double> keys(n);
    std::vector<double> vals(n);
    for (std::size_t i = 0; i < n; ++i) {
        keys[i] = static_cast<double>((i * 73) % n);  // 73 coprime with 256
        vals[i] = 500.0 + keys[i] * 1e-9;             // sub-float spacing
    }
    gas::gpu_pair_sort(dev, keys, vals, 1, n);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(keys[i], static_cast<double>(i));
        ASSERT_EQ(vals[i], 500.0 + keys[i] * 1e-9) << i;
    }
}

TEST(PairSort, DoubleRaggedDescending) {
    auto dev = make_device();
    std::vector<double> keys = {5, 1, 3, 9, 7, 2, 8};
    std::vector<double> vals = {50, 10, 30, 90, 70, 20, 80};
    std::vector<std::uint64_t> offsets = {0, 3, 7};
    gas::Options opts;
    opts.order = gas::SortOrder::Descending;
    gas::gpu_ragged_pair_sort(dev, keys, vals, offsets, opts);
    EXPECT_EQ(keys, (std::vector<double>{5, 3, 1, 9, 8, 7, 2}));
    EXPECT_EQ(vals, (std::vector<double>{50, 30, 10, 90, 80, 70, 20}));
}

TEST(PairSort, MaxPaperSizedSpectraFitShared) {
    // 4000-peak spectra (the paper's proteomics bound) must stage: 2 x 16 KB
    // of pairs + bookkeeping < 48 KB.
    auto dev = make_device();
    auto p = make_pairs(3, 4000, workload::Distribution::Uniform, 7);
    const auto before = p;
    EXPECT_NO_THROW(gas::gpu_pair_sort(dev, p.keys, p.values, 3, 4000));
    check_pairs_sorted(before, p, 3, 4000);
}

}  // namespace
