// gas::resilient: multiset checksums, verify kernels, retry policy, and the
// verified/retrying sort wrappers — including the silent-corruption pin: an
// undetected bit flip is invisible without Options::verify_output and caught
// (then cured by retry) with it.

#include "core/resilient_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "core/gpu_array_sort.hpp"
#include "workload/generators.hpp"

namespace {

using gas::Options;
using gas::SortOrder;
namespace resilient = gas::resilient;

simt::Device make_device(std::size_t bytes = 256 << 20) {
    return simt::Device(simt::tiny_device(bytes));
}

std::vector<float> sorted_rows(std::vector<float> values, std::size_t num_arrays,
                               std::size_t array_size) {
    for (std::size_t a = 0; a < num_arrays; ++a) {
        auto* row = values.data() + a * array_size;
        std::sort(row, row + array_size);
    }
    return values;
}

TEST(Checksum, InvariantUnderPermutationOnly) {
    auto values = workload::make_values(257, workload::Distribution::Uniform, 11);
    const std::uint64_t before =
        resilient::row_checksum(std::span<const float>(values));

    auto shuffled = values;
    std::mt19937 rng(3);
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    EXPECT_EQ(resilient::row_checksum(std::span<const float>(shuffled)), before);

    // A single bit flip moves it.
    auto flipped = values;
    flipped[100] = std::bit_cast<float>(std::bit_cast<std::uint32_t>(flipped[100]) ^ 1u);
    EXPECT_NE(resilient::row_checksum(std::span<const float>(flipped)), before);

    // Dropping + duplicating (multiset change at equal length) moves it too.
    auto duped = values;
    duped[0] = duped[1];
    EXPECT_NE(resilient::row_checksum(std::span<const float>(duped)), before);
}

TEST(Checksum, PairChecksumBindsKeyToPayload) {
    const std::vector<float> keys{1.0f, 2.0f, 3.0f};
    const std::vector<float> vals{10.0f, 20.0f, 30.0f};
    const std::uint64_t bound = resilient::pair_row_checksum(
        std::span<const float>(keys), std::span<const float>(vals));

    // Same multisets of keys and of values, but payloads swapped between
    // keys: a plain per-plane checksum would miss this, the bound one must
    // not (the pair sorter's whole point is that payloads travel with keys).
    const std::vector<float> swapped{20.0f, 10.0f, 30.0f};
    EXPECT_NE(resilient::pair_row_checksum(std::span<const float>(keys),
                                           std::span<const float>(swapped)),
              bound);

    // Reordering whole pairs together is a permutation: invariant.
    const std::vector<float> keys_r{3.0f, 1.0f, 2.0f};
    const std::vector<float> vals_r{30.0f, 10.0f, 20.0f};
    EXPECT_EQ(resilient::pair_row_checksum(std::span<const float>(keys_r),
                                           std::span<const float>(vals_r)),
              bound);
}

TEST(RetryPolicy, BackoffIsDeterministicJitteredAndCapped) {
    const resilient::RetryPolicy policy{/*max_attempts=*/5, /*base_ms=*/1.0,
                                        /*cap_ms=*/8.0, /*seed=*/42};
    for (unsigned attempt = 1; attempt <= 10; ++attempt) {
        const double a = policy.backoff_ms(attempt, 123);
        const double b = policy.backoff_ms(attempt, 123);
        EXPECT_EQ(a, b);  // pure function of (seed, salt, attempt)
        const double window = std::min(policy.cap_ms, policy.base_ms * (1u << (attempt - 1)));
        EXPECT_GE(a, 0.5 * window);
        EXPECT_LT(a, window + 1e-12);
    }
    // Past the cap the window stops growing.
    EXPECT_LE(policy.backoff_ms(30, 0), policy.cap_ms);
    // Different salts decorrelate concurrent retry streams.
    EXPECT_NE(policy.backoff_ms(2, 1), policy.backoff_ms(2, 2));
}

TEST(RetryPolicy, TransientClassifiesInjectedErrorsNotBugs) {
    EXPECT_TRUE(resilient::transient(simt::DeviceBadAlloc(1, 0, 0)));
    EXPECT_TRUE(resilient::transient(simt::LaunchFault("k", 3)));
    EXPECT_TRUE(resilient::transient(simt::TransferError(0, 1)));
    EXPECT_TRUE(resilient::transient(resilient::VerifyError("here", 1, 2)));
    EXPECT_FALSE(resilient::transient(simt::SanitizeError("k", 2)));
    EXPECT_FALSE(resilient::transient(std::runtime_error("not retryable")));
}

TEST(RetryPolicy, VerifyErrorCarriesBothArms) {
    const resilient::VerifyError e("phase3", 2, 5);
    EXPECT_EQ(e.unsorted_rows(), 2u);
    EXPECT_EQ(e.mismatched_rows(), 5u);
    EXPECT_NE(std::string(e.what()).find("2 unsorted"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("5 checksum"), std::string::npos);
}

TEST(VerifyKernels, ChecksumKernelMatchesHostChecksum) {
    auto dev = make_device();
    const auto ds = workload::make_dataset(7, 33, workload::Distribution::Uniform, 5);
    std::vector<std::uint64_t> out(ds.num_arrays, 0);
    const auto stats = resilient::checksum_rows_on_device<float>(
        dev, ds.values, ds.num_arrays, ds.array_size, out);
    EXPECT_GT(stats.modeled_ms, 0.0);
    for (std::size_t a = 0; a < ds.num_arrays; ++a) {
        EXPECT_EQ(out[a], resilient::row_checksum(std::span<const float>(
                              ds.values.data() + a * ds.array_size, ds.array_size)));
    }
}

TEST(VerifyKernels, FlagsUnsortedAndMismatchedArmsIndependently) {
    auto dev = make_device();
    const std::size_t n = 16;
    auto ds = workload::make_dataset(4, n, workload::Distribution::Uniform, 6);
    std::vector<std::uint64_t> expected(4);
    for (std::size_t a = 0; a < 4; ++a) {
        expected[a] = resilient::row_checksum(
            std::span<const float>(ds.values.data() + a * n, n));
    }
    auto sorted = sorted_rows(ds.values, 4, n);

    // Row 1: swap two elements — unsorted but checksum-intact (pure
    // permutation).  Row 2: overwrite the last element with a larger value —
    // still sorted, checksum broken.  Rows 0 and 3 stay clean.
    std::swap(sorted[n + 2], sorted[n + 9]);
    sorted[2 * n + (n - 1)] = sorted[2 * n + (n - 1)] + 1000.0f;

    std::vector<std::uint8_t> row_fail(4, 0);
    const auto counts = resilient::verify_rows_on_device<float>(
        dev, sorted, 4, n, SortOrder::Ascending, expected, row_fail);
    EXPECT_EQ(counts.rows, 4u);
    EXPECT_EQ(counts.unsorted, 1u);
    EXPECT_EQ(counts.mismatched, 1u);
    EXPECT_FALSE(counts.ok());
    EXPECT_EQ(row_fail[0], 0);
    EXPECT_EQ(row_fail[1], 1);  // bit 0: order violated
    EXPECT_EQ(row_fail[2], 2);  // bit 1: checksum moved
    EXPECT_EQ(row_fail[3], 0);
    EXPECT_GT(counts.modeled_ms, 0.0);
}

TEST(VerifyKernels, RespectsDescendingOrderAndCsrGeometry) {
    auto dev = make_device();
    const auto rag = workload::make_ragged_dataset(5, 3, 40, workload::Distribution::Uniform, 7);
    const std::vector<std::uint64_t> offsets(rag.offsets.begin(), rag.offsets.end());
    std::vector<std::uint64_t> expected(rag.num_arrays());
    const auto csum = resilient::checksum_csr_on_device<float>(
        dev, rag.values, offsets, expected);
    EXPECT_GT(csum.modeled_ms, 0.0);

    auto desc = rag.values;
    for (std::size_t a = 0; a < rag.num_arrays(); ++a) {
        std::sort(desc.begin() + static_cast<std::ptrdiff_t>(offsets[a]),
                  desc.begin() + static_cast<std::ptrdiff_t>(offsets[a + 1]),
                  std::greater<float>());
    }
    EXPECT_TRUE(resilient::verify_csr_on_device<float>(dev, desc, offsets,
                                                       SortOrder::Descending, expected)
                    .ok());
    // The same bytes fail ascending verification (some row of length >= 2
    // with distinct values exists in a 5 x [3,40] uniform dataset).
    EXPECT_GT(resilient::verify_csr_on_device<float>(dev, desc, offsets,
                                                     SortOrder::Ascending, expected)
                  .unsorted,
              0u);
}

TEST(VerifyKernels, PairVariantChecksPayloadBinding) {
    auto dev = make_device();
    const std::size_t rows = 3;
    const std::size_t n = 8;
    auto ds = workload::make_dataset(rows, n, workload::Distribution::Uniform, 8);
    std::vector<float> payload(rows * n);
    for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<float>(i);
    std::vector<std::uint64_t> expected(rows);
    resilient::checksum_pair_rows_on_device<float>(dev, ds.values, payload, rows, n, expected);

    // Sort each row's pairs by key on the host (the reference permutation).
    std::vector<float> keys = ds.values;
    std::vector<float> vals = payload;
    for (std::size_t a = 0; a < rows; ++a) {
        std::vector<std::size_t> idx(n);
        for (std::size_t i = 0; i < n; ++i) idx[i] = i;
        std::sort(idx.begin(), idx.end(), [&](std::size_t x, std::size_t y) {
            return ds.values[a * n + x] < ds.values[a * n + y];
        });
        for (std::size_t i = 0; i < n; ++i) {
            keys[a * n + i] = ds.values[a * n + idx[i]];
            vals[a * n + i] = payload[a * n + idx[i]];
        }
    }
    EXPECT_TRUE(resilient::verify_pair_rows_on_device<float>(
                    dev, keys, vals, rows, n, SortOrder::Ascending, expected)
                    .ok());
    // Detach one payload from its key: sortedness holds, binding breaks.
    std::swap(vals[0], vals[1]);
    const auto counts = resilient::verify_pair_rows_on_device<float>(
        dev, keys, vals, rows, n, SortOrder::Ascending, expected);
    EXPECT_EQ(counts.unsorted, 0u);
    EXPECT_EQ(counts.mismatched, 1u);
}

TEST(VerifiedSort, VerifyOutputReproducesTodaysBytesWhenClean) {
    const auto ds = workload::make_dataset(10, 150, workload::Distribution::Uniform, 9);

    auto plain_dev = make_device();
    auto plain = ds.values;
    const auto plain_stats = gas::gpu_array_sort(plain_dev, plain, 10, 150);

    auto verified_dev = make_device();
    auto verified = ds.values;
    Options opts;
    opts.verify_output = true;
    const auto verified_stats = gas::gpu_array_sort(verified_dev, verified, 10, 150, opts);

    // Same sorted bytes; verification only adds honestly-modeled kernels.
    EXPECT_EQ(plain, verified);
    EXPECT_EQ(plain_stats.verify.modeled_ms, 0.0);
    EXPECT_GT(verified_stats.verify.modeled_ms, 0.0);
    EXPECT_GT(verified_stats.modeled_kernel_ms(), plain_stats.modeled_kernel_ms());
}

TEST(VerifiedSort, RetryWrapperCuresInjectedLaunchFault) {
    auto dev = make_device();
    simt::faults::FaultPlan plan;
    plan.launch_fail_at = {2};  // second launch of attempt 1 refused
    dev.set_fault_plan(plan);

    auto ds = workload::make_dataset(8, 120, workload::Distribution::Uniform, 10);
    const auto want = sorted_rows(ds.values, 8, 120);

    resilient::RetryPolicy retry;
    retry.seed = 99;
    resilient::AttemptLog log;
    const auto stats = resilient::sort_arrays<float>(dev, std::span<float>(ds.values), 8, 120,
                                                     Options{}, retry, &log);
    EXPECT_EQ(ds.values, want);
    EXPECT_EQ(log.attempts, 2u);
    ASSERT_EQ(log.errors.size(), 1u);
    EXPECT_NE(log.errors[0].find("injected launch fault"), std::string::npos);
    EXPECT_GT(log.backoff_ms, 0.0);
    EXPECT_GT(stats.modeled_kernel_ms(), 0.0);
    EXPECT_EQ(dev.fault_report().launch_failures, 1u);
}

TEST(VerifiedSort, ExhaustedRetriesPropagateTheTypedError) {
    auto dev = make_device();
    simt::faults::FaultPlan plan;
    plan.launch_fail_every = 1;  // every launch refused: unrecoverable
    dev.set_fault_plan(plan);
    auto ds = workload::make_dataset(4, 64, workload::Distribution::Uniform, 11);
    resilient::RetryPolicy retry;
    retry.max_attempts = 3;
    resilient::AttemptLog log;
    EXPECT_THROW(resilient::sort_arrays<float>(dev, std::span<float>(ds.values), 4, 64,
                                               Options{}, retry, &log),
                 simt::LaunchFault);
    EXPECT_EQ(log.attempts, 2u);  // two logged failures, the third throws out
    EXPECT_EQ(log.errors.size(), 2u);
}

// The silent-corruption pin (the PR's reason to exist): flip one bit in
// device memory, undetected, at the entry of the verify kernel — i.e. after
// the sort finished writing.  Without verify_output nothing notices and the
// caller gets silently wrong bytes; with it, VerifyError fires, and the
// retry wrapper re-stages and delivers correct bytes.
TEST(VerifiedSort, SilentCorruptionIsCaughtByVerifyOutputOnly) {
    const std::size_t num_arrays = 6;
    const std::size_t n = 200;
    const auto ds = workload::make_dataset(num_arrays, n, workload::Distribution::Uniform, 12);
    const auto want = sorted_rows(ds.values, num_arrays, n);

    // Count the launches of a clean verified sort; its last launch is the
    // verify kernel, so corrupting at that ordinal flips a bit in the sorted
    // data right before verification reads it.
    Options verify_opts;
    verify_opts.verify_output = true;
    std::size_t verify_ordinal = 0;
    {
        auto dev = make_device();
        auto data = ds.values;
        gas::gpu_array_sort(dev, data, num_arrays, n, verify_opts);
        verify_ordinal = dev.kernel_log().size();
        ASSERT_EQ(dev.kernel_log().back().name, "gas.verify");
    }

    simt::faults::FaultPlan plan;
    plan.corrupt_at = {verify_ordinal};
    plan.detected = false;  // no TransferError: only verification can see it

    // Arm 1: verification off.  The corrupting ordinal is never reached
    // (no verify launch exists), today's bytes reproduce exactly.
    {
        auto dev = make_device();
        dev.set_fault_plan(plan);
        auto data = ds.values;
        gas::gpu_array_sort(dev, data, num_arrays, n);
        EXPECT_EQ(data, want);
        EXPECT_EQ(dev.fault_report().corruptions, 0u);
    }

    // Arm 2: with verification off, some launch ordinal's corruption must
    // survive into the output as silently wrong bytes — the failure mode
    // this PR closes.  Scan from the last sort kernel backwards (an early
    // flip can be overwritten by later pipeline stages, so the surviving
    // ordinal is found empirically but deterministically).
    {
        std::size_t no_verify_launches = 0;
        {
            auto dev = make_device();
            auto data = ds.values;
            gas::gpu_array_sort(dev, data, num_arrays, n);
            no_verify_launches = dev.kernel_log().size();
        }
        std::size_t silent_ordinal = 0;
        for (std::size_t k = no_verify_launches; k >= 1 && silent_ordinal == 0; --k) {
            auto dev = make_device();
            simt::faults::FaultPlan mid = plan;
            mid.corrupt_at = {k};
            dev.set_fault_plan(mid);
            auto data = ds.values;
            gas::gpu_array_sort(dev, data, num_arrays, n);
            if (dev.fault_report().corruptions == 1 && data != want) silent_ordinal = k;
        }
        EXPECT_NE(silent_ordinal, 0u)
            << "no ordinal produced silently wrong bytes with verification off";
    }

    // Arm 3: verification on, single attempt: VerifyError names the damage.
    {
        auto dev = make_device();
        dev.set_fault_plan(plan);
        auto data = ds.values;
        resilient::RetryPolicy once;
        once.max_attempts = 1;
        try {
            resilient::sort_arrays<float>(dev, std::span<float>(data), num_arrays, n,
                                          verify_opts, once);
            FAIL() << "verification should have caught the flipped bit";
        } catch (const resilient::VerifyError& e) {
            EXPECT_GE(e.mismatched_rows() + e.unsorted_rows(), 1u);
        }
    }

    // Arm 4: verification on + retries: the second attempt re-stages clean
    // data (the corrupt ordinal is behind us) and the caller gets the right
    // bytes, with the VerifyError recorded in the attempt log.
    {
        auto dev = make_device();
        dev.set_fault_plan(plan);
        auto data = ds.values;
        resilient::RetryPolicy retry;
        retry.seed = 4;
        resilient::AttemptLog log;
        resilient::sort_arrays<float>(dev, std::span<float>(data), num_arrays, n,
                                      verify_opts, retry, &log);
        EXPECT_EQ(data, want);
        EXPECT_EQ(log.attempts, 2u);
        ASSERT_EQ(log.errors.size(), 1u);
        EXPECT_NE(log.errors[0].find("verification failed"), std::string::npos);
    }
}

TEST(VerifiedSort, RaggedAndPairWrappersVerifyAndRetry) {
    // Ragged: refuse one launch, expect a clean recovery.
    {
        auto dev = make_device();
        simt::faults::FaultPlan plan;
        plan.launch_fail_at = {1};  // the fused sort kernel itself, refused once
        dev.set_fault_plan(plan);
        auto rag = workload::make_ragged_dataset(6, 2, 60, workload::Distribution::Uniform, 13);
        const std::vector<std::uint64_t> offsets(rag.offsets.begin(), rag.offsets.end());
        auto want = rag.values;
        for (std::size_t a = 0; a + 1 < offsets.size(); ++a) {
            std::sort(want.begin() + static_cast<std::ptrdiff_t>(offsets[a]),
                      want.begin() + static_cast<std::ptrdiff_t>(offsets[a + 1]));
        }
        Options opts;
        opts.verify_output = true;
        resilient::AttemptLog log;
        resilient::ragged_sort(dev, rag.values, offsets, opts, {}, &log);
        EXPECT_EQ(rag.values, want);
        EXPECT_EQ(log.attempts, 2u);
    }
    // Pairs: verified fault-free run keeps key/payload binding.
    {
        auto dev = make_device();
        auto ds = workload::make_dataset(5, 80, workload::Distribution::Uniform, 14);
        std::vector<float> payload(ds.values.size());
        for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<float>(i);
        std::vector<std::uint64_t> expected(5);
        {
            auto scratch = make_device();
            resilient::checksum_pair_rows_on_device<float>(scratch, ds.values, payload, 5, 80,
                                                           expected);
        }
        Options opts;
        opts.verify_output = true;
        resilient::pair_sort<float>(dev, std::span<float>(ds.values),
                                    std::span<float>(payload), 5, 80, opts);
        EXPECT_TRUE(resilient::verify_pair_rows_on_device<float>(
                        dev, ds.values, payload, 5, 80, SortOrder::Ascending, expected)
                        .ok());
    }
}

}  // namespace
