// Parameterized property sweep for the key-value pair sort: every
// (distribution, size, order) combination must yield ascending/descending
// keys with the pair multiset preserved per row.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/pair_sort.hpp"
#include "workload/generators.hpp"

namespace {

struct Case {
    workload::Distribution dist;
    std::size_t n;
    gas::SortOrder order;
};

std::string case_name(const ::testing::TestParamInfo<Case>& pinfo) {
    std::string name = workload::to_string(pinfo.param.dist) + "_n" +
                       std::to_string(pinfo.param.n) + "_" +
                       gas::to_string(pinfo.param.order);
    std::replace(name.begin(), name.end(), '-', '_');
    return name;
}

class PairProperty : public ::testing::TestWithParam<Case> {};

TEST_P(PairProperty, KeysOrderedPairsPreserved) {
    const Case c = GetParam();
    const std::size_t num_arrays = 12;
    simt::Device dev(simt::tiny_device(128 << 20));

    auto keys = workload::make_values(num_arrays * c.n, c.dist, c.n * 13 + 1);
    std::vector<float> vals(keys.size());
    std::iota(vals.begin(), vals.end(), 0.0f);
    const auto keys_before = keys;
    const auto vals_before = vals;

    gas::Options opts;
    opts.order = c.order;
    gas::gpu_pair_sort(dev, keys, vals, num_arrays, c.n, opts);

    for (std::size_t a = 0; a < num_arrays; ++a) {
        const auto krow = std::span<const float>(keys).subspan(a * c.n, c.n);
        if (c.order == gas::SortOrder::Ascending) {
            ASSERT_TRUE(std::is_sorted(krow.begin(), krow.end())) << a;
        } else {
            ASSERT_TRUE(std::is_sorted(krow.begin(), krow.end(), std::greater<>())) << a;
        }
        std::vector<std::pair<float, float>> got;
        std::vector<std::pair<float, float>> want;
        for (std::size_t i = 0; i < c.n; ++i) {
            got.emplace_back(keys[a * c.n + i], vals[a * c.n + i]);
            want.emplace_back(keys_before[a * c.n + i], vals_before[a * c.n + i]);
        }
        std::sort(got.begin(), got.end());
        std::sort(want.begin(), want.end());
        ASSERT_EQ(got, want) << "row " << a << " pairs corrupted";
    }
}

std::vector<Case> all_cases() {
    std::vector<Case> cases;
    for (auto dist : workload::all_distributions()) {
        for (std::size_t n : {1u, 20u, 333u}) {
            for (auto order : {gas::SortOrder::Ascending, gas::SortOrder::Descending}) {
                cases.push_back({dist, n, order});
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, PairProperty, ::testing::ValuesIn(all_cases()),
                         case_name);

}  // namespace
