// Statistical quality of regular-sampling splitter selection: the paper's
// 10% / 20-element defaults must keep buckets usably balanced on uniform
// data (their stated design goal), and balance must respond to the sampling
// rate in the expected direction.

#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/gpu_array_sort.hpp"
#include "workload/generators.hpp"

namespace {

gas::BucketAnalysis run(double rate, workload::Distribution dist, std::uint64_t seed) {
    simt::Device dev(simt::tiny_device(128 << 20));
    auto ds = workload::make_dataset(100, 1000, dist, seed);
    gas::Options opts;
    opts.sampling_rate = rate;
    opts.collect_bucket_sizes = true;
    const auto stats = gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
    return gas::analyze_buckets(stats.bucket_sizes, stats.buckets_per_array);
}

TEST(SplitterQuality, PaperDefaultsKeepUniformDataBalanced) {
    const auto a = run(0.10, workload::Distribution::Uniform, 1);
    EXPECT_NEAR(a.mean_size, 20.0, 1e-9);
    // 10% sampling on uniform data: no bucket should explode.
    EXPECT_LT(a.imbalance, 10.0);
    EXPECT_LT(a.balance_penalty(), 5.0);
    EXPECT_LT(a.empty_fraction, 0.2);
}

TEST(SplitterQuality, FullSamplingIsNearlyPerfect) {
    const auto a = run(1.0, workload::Distribution::Uniform, 2);
    // Sampling everything = exact splitters: bucket sizes within rounding.
    EXPECT_LE(a.imbalance, 1.5);
    EXPECT_LT(a.balance_penalty(), 1.3);
}

TEST(SplitterQuality, HigherRatesImproveBalance) {
    const auto coarse = run(0.05, workload::Distribution::Uniform, 3);
    const auto fine = run(0.5, workload::Distribution::Uniform, 3);
    EXPECT_LT(fine.imbalance, coarse.imbalance);
    EXPECT_LE(fine.balance_penalty(), coarse.balance_penalty());
}

TEST(SplitterQuality, ConstantDataCollapsesIntoOneBucket) {
    const auto a = run(0.10, workload::Distribution::Constant, 4);
    // The known degeneracy: every element equals every splitter, all land in
    // the first bucket whose hi equals the value.
    EXPECT_EQ(a.max_size, 1000u);
    EXPECT_GT(a.empty_fraction, 0.9);
}

TEST(SplitterQuality, SamplingAdaptsToClusteredData) {
    // The point of sampling-based splitter selection: splitters follow the
    // data's own distribution, so even 8-cluster data stays usable (this is
    // what distinguishes sample sort from fixed-range bucketing).
    const auto clustered = run(0.10, workload::Distribution::Clustered, 5);
    EXPECT_LT(clustered.imbalance, 20.0);
    EXPECT_LT(clustered.balance_penalty(), 10.0);
    EXPECT_NEAR(clustered.mean_size, 20.0, 1e-9);
}

TEST(SplitterQuality, SortednessOfInputDoesNotHurtCorrectBalance) {
    // Regular sampling of an already-sorted array picks perfectly spaced
    // splitters — balance should be excellent.
    const auto a = run(0.10, workload::Distribution::Sorted, 6);
    EXPECT_LE(a.imbalance, 3.0);
}

}  // namespace
