#include "core/complexity.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

const simt::DeviceProperties kProps = simt::tesla_k40c();

TEST(Complexity, TermsGrowWithN) {
    const auto small = gas::complexity_terms(500, gas::Options{}, kProps);
    const auto big = gas::complexity_terms(2000, gas::Options{}, kProps);
    EXPECT_GT(big.linear, small.linear);
    EXPECT_GT(big.nlogn, small.nlogn);
}

TEST(Complexity, ZeroNIsZero) {
    const auto t = gas::complexity_terms(0, gas::Options{}, kProps);
    EXPECT_EQ(t.linear, 0.0);
    EXPECT_EQ(t.nlogn, 0.0);
}

TEST(Complexity, FitRecoversSyntheticCoefficients) {
    // Generate measurements exactly from the model: the fit must recover the
    // coefficients and predict perfectly.
    const gas::Options opts;
    std::vector<std::size_t> sizes;
    std::vector<double> measured;
    const double a = 0.003;
    const double b = 0.0015;
    for (std::size_t n = 100; n <= 2000; n += 100) {
        const auto t = gas::complexity_terms(n, opts, kProps);
        sizes.push_back(n);
        measured.push_back(a * t.linear + b * t.nlogn);
    }
    const auto fit = gas::fit_complexity(sizes, measured, opts, kProps);
    EXPECT_NEAR(fit.pearson, 1.0, 1e-9);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        EXPECT_NEAR(fit.predicted_ms[i], measured[i], measured[i] * 1e-6);
    }
}

TEST(Complexity, FitFallsBackToNonNegativeCoefficients) {
    // Pure-linear data: the 2-term fit may go negative on b; the fallback
    // must keep both coefficients >= 0 and still track the data.
    const gas::Options opts;
    std::vector<std::size_t> sizes;
    std::vector<double> measured;
    for (std::size_t n = 100; n <= 1000; n += 100) {
        sizes.push_back(n);
        measured.push_back(0.001 * static_cast<double>(n));
    }
    const auto fit = gas::fit_complexity(sizes, measured, opts, kProps);
    EXPECT_GE(fit.a, 0.0);
    EXPECT_GE(fit.b, 0.0);
    EXPECT_GT(fit.pearson, 0.99);
}

TEST(Complexity, MismatchedInputsThrow) {
    std::vector<std::size_t> sizes = {100, 200};
    std::vector<double> measured = {1.0};
    EXPECT_THROW((void)gas::fit_complexity(sizes, measured, gas::Options{}, kProps),
                 std::invalid_argument);
}

TEST(Complexity, EmptyInputsYieldEmptyFit) {
    const auto fit = gas::fit_complexity({}, {}, gas::Options{}, kProps);
    EXPECT_TRUE(fit.predicted_ms.empty());
}

}  // namespace
