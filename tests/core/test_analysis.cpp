#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/gpu_array_sort.hpp"
#include "workload/generators.hpp"

namespace {

TEST(Analysis, PerfectlyBalancedBuckets) {
    const std::vector<std::uint32_t> z(40, 20);
    const auto a = gas::analyze_buckets(z, 10);
    EXPECT_EQ(a.min_size, 20u);
    EXPECT_EQ(a.max_size, 20u);
    EXPECT_DOUBLE_EQ(a.mean_size, 20.0);
    EXPECT_DOUBLE_EQ(a.stddev, 0.0);
    EXPECT_DOUBLE_EQ(a.imbalance, 1.0);
    EXPECT_DOUBLE_EQ(a.empty_fraction, 0.0);
    EXPECT_DOUBLE_EQ(a.balance_penalty(), 1.0);
}

TEST(Analysis, SkewedBucketsRaisePenalty) {
    // Same total mass, one bucket hoards it.
    std::vector<std::uint32_t> z(10, 0);
    z[0] = 200;
    const auto a = gas::analyze_buckets(z, 10);
    EXPECT_DOUBLE_EQ(a.mean_size, 20.0);
    EXPECT_DOUBLE_EQ(a.imbalance, 10.0);
    EXPECT_DOUBLE_EQ(a.empty_fraction, 0.9);
    EXPECT_DOUBLE_EQ(a.balance_penalty(), 10.0);  // 200^2 / (10 * 20^2)
}

TEST(Analysis, EmptyInput) {
    const auto a = gas::analyze_buckets({}, 0);
    EXPECT_EQ(a.buckets, 0u);
    EXPECT_DOUBLE_EQ(a.balance_penalty(), 1.0);
}

TEST(Analysis, HistogramPartitionsAllBuckets) {
    const std::vector<std::uint32_t> z = {0, 1, 5, 10, 10, 20, 40};
    const auto hist = gas::bucket_size_histogram(z, 4);
    ASSERT_EQ(hist.size(), 4u);
    EXPECT_EQ(std::accumulate(hist.begin(), hist.end(), std::size_t{0}), z.size());
    EXPECT_EQ(hist[3], 1u);  // the 40 lands in the last bin
}

TEST(Analysis, HistogramOfConstantSizes) {
    const std::vector<std::uint32_t> z(16, 7);
    const auto hist = gas::bucket_size_histogram(z, 4);
    EXPECT_EQ(hist.back(), 16u);  // everything in the max bin
}

TEST(Analysis, CollectedZFromRealSortIsConsistent) {
    simt::Device dev(simt::tiny_device(128 << 20));
    auto ds = workload::make_dataset(20, 800, workload::Distribution::Uniform, 5);
    gas::Options opts;
    opts.collect_bucket_sizes = true;
    const auto stats = gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
    ASSERT_EQ(stats.bucket_sizes.size(), ds.num_arrays * stats.buckets_per_array);

    const auto a = gas::analyze_buckets(stats.bucket_sizes, stats.buckets_per_array);
    EXPECT_EQ(a.min_size, stats.min_bucket);
    EXPECT_EQ(a.max_size, stats.max_bucket);
    EXPECT_NEAR(a.mean_size, stats.avg_bucket, 1e-9);
    // Z mass must equal the dataset: mean * count == total elements.
    EXPECT_NEAR(a.mean_size * static_cast<double>(a.buckets),
                static_cast<double>(ds.total_elements()), 1e-6);
}

TEST(Analysis, ZIsNotCollectedByDefault) {
    simt::Device dev(simt::tiny_device(64 << 20));
    auto ds = workload::make_dataset(5, 100, workload::Distribution::Uniform, 6);
    const auto stats = gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    EXPECT_TRUE(stats.bucket_sizes.empty());
}

}  // namespace
