// The small-array fast path: single-bucket plans (n <= ~2x bucket target)
// skip the three-phase machinery for a packed one-thread-per-array kernel
// with zero temporary device memory.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/gpu_array_sort.hpp"
#include "core/validate.hpp"
#include "workload/generators.hpp"

namespace {

simt::Device make_device() { return simt::Device(simt::tiny_device(64 << 20)); }

TEST(SmallArrays, UsesTheDedicatedKernel) {
    auto dev = make_device();
    auto ds = workload::make_dataset(1000, 10, workload::Distribution::Uniform, 1);
    dev.clear_kernel_log();
    gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    ASSERT_EQ(dev.kernel_log().size(), 1u);
    EXPECT_EQ(dev.kernel_log().front().name, "gas.small_array_sort");
    // 1000 arrays packed 256 per block.
    EXPECT_EQ(dev.kernel_log().front().grid_dim, 4u);
}

TEST(SmallArrays, LargerArraysKeepTheThreePhasePath) {
    auto dev = make_device();
    auto ds = workload::make_dataset(10, 100, workload::Distribution::Uniform, 2);
    dev.clear_kernel_log();
    gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    ASSERT_EQ(dev.kernel_log().size(), 3u);
    EXPECT_EQ(dev.kernel_log().front().name, "gas.phase1_splitters");
}

TEST(SmallArrays, ZeroTemporaryDeviceMemory) {
    auto dev = make_device();
    auto ds = workload::make_dataset(500, 16, workload::Distribution::Normal, 3);
    simt::DeviceBuffer<float> buf(dev, ds.values.size());
    simt::copy_to_device(std::span<const float>(ds.values), buf);
    const std::size_t peak = dev.memory().peak_bytes_in_use();
    const auto stats = gas::sort_arrays_on_device(dev, buf, ds.num_arrays, ds.array_size);
    EXPECT_EQ(dev.memory().peak_bytes_in_use(), peak);
    EXPECT_EQ(stats.peak_device_bytes, peak);
}

TEST(SmallArrays, FootprintModelReportsDataOnly) {
    const std::size_t raw = 1000 * 10 * sizeof(float);
    const std::size_t aligned = (raw + 255) / 256 * 256;
    EXPECT_EQ(gas::device_footprint_bytes(1000, 10, gas::Options{}, simt::tesla_k40c()),
              aligned);
}

TEST(SmallArrays, SortsCorrectlyAcrossSizesAndDistributions) {
    for (auto dist : workload::all_distributions()) {
        for (std::size_t n : {1u, 2u, 7u, 19u, 39u}) {
            auto dev = make_device();
            auto ds = workload::make_dataset(300, n, dist, n);
            auto expected = ds.values;
            for (std::size_t a = 0; a < ds.num_arrays; ++a) {
                std::sort(expected.begin() + static_cast<std::ptrdiff_t>(a * n),
                          expected.begin() + static_cast<std::ptrdiff_t>((a + 1) * n));
            }
            gas::Options opts;
            opts.validate = true;
            gas::gpu_array_sort(dev, ds.values, ds.num_arrays, n, opts);
            ASSERT_EQ(ds.values, expected)
                << workload::to_string(dist) << " n=" << n;
        }
    }
}

TEST(SmallArrays, DescendingWorksOnTheFastPath) {
    auto dev = make_device();
    auto ds = workload::make_dataset(200, 12, workload::Distribution::Uniform, 4);
    gas::Options opts;
    opts.order = gas::SortOrder::Descending;
    opts.validate = true;
    EXPECT_NO_THROW(gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts));
    EXPECT_TRUE(gas::all_arrays_sorted_descending(ds.values, ds.num_arrays, ds.array_size));
}

TEST(SmallArrays, PacksBetterThanOneThreadBlocks) {
    // The packed kernel must model much faster than N one-thread blocks
    // would: its compute work per block wave is 256x denser.
    auto dev = make_device();
    auto ds = workload::make_dataset(4096, 20, workload::Distribution::Uniform, 5);
    const auto stats = gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    // One packed kernel, 16 blocks, single wave on 15 SMs.
    EXPECT_LT(stats.phase3.modeled_ms, 1.0);
}

TEST(SmallArrays, BucketDiagnosticsDegenerate) {
    auto dev = make_device();
    auto ds = workload::make_dataset(50, 8, workload::Distribution::Uniform, 6);
    gas::Options opts;
    opts.collect_bucket_sizes = true;
    const auto stats = gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
    EXPECT_EQ(stats.buckets_per_array, 1u);
    EXPECT_EQ(stats.min_bucket, 8u);
    EXPECT_EQ(stats.max_bucket, 8u);
    EXPECT_EQ(stats.bucket_sizes.size(), 50u);
}

}  // namespace
