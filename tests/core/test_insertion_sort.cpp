#include "core/insertion_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/generators.hpp"

namespace {

TEST(InsertionSort, SortsRandomValues) {
    auto v = workload::make_values(200, workload::Distribution::Uniform, 1);
    auto expected = v;
    std::sort(expected.begin(), expected.end());
    gas::insertion_sort(v);
    EXPECT_EQ(v, expected);
}

TEST(InsertionSort, HandlesEmptyAndSingleton) {
    std::vector<float> empty;
    EXPECT_NO_THROW(gas::insertion_sort(empty));
    std::vector<float> one = {42.0f};
    gas::insertion_sort(one);
    EXPECT_EQ(one[0], 42.0f);
}

TEST(InsertionSort, SortedInputCostsLinearCompares) {
    std::vector<float> v(100);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<float>(i);
    const auto cost = gas::insertion_sort(v);
    EXPECT_EQ(cost.compares, 99u);  // one compare per element, no shifts
}

TEST(InsertionSort, ReverseInputCostsQuadratic) {
    std::vector<float> v(100);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<float>(100 - i);
    const auto cost = gas::insertion_sort(v);
    EXPECT_GE(cost.compares, 99u * 100u / 2u);
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(InsertionSort, StableOnDuplicates) {
    // floats can't carry a tag, but determinism on duplicates still matters:
    // all-equal input must stay untouched with minimal cost.
    std::vector<float> v(50, 7.0f);
    const auto cost = gas::insertion_sort(v);
    EXPECT_EQ(cost.compares, 49u);
    for (float x : v) EXPECT_EQ(x, 7.0f);
}

TEST(InsertionSort, HandlesInfinities) {
    std::vector<float> v = {1.0f, -std::numeric_limits<float>::infinity(), 0.0f,
                            std::numeric_limits<float>::infinity(), -5.0f};
    gas::insertion_sort(v);
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
    EXPECT_EQ(v.front(), -std::numeric_limits<float>::infinity());
    EXPECT_EQ(v.back(), std::numeric_limits<float>::infinity());
}

class InsertionSortSweep
    : public ::testing::TestWithParam<std::tuple<workload::Distribution, int>> {};

TEST_P(InsertionSortSweep, MatchesStdSort) {
    const auto [dist, size] = GetParam();
    auto v = workload::make_values(static_cast<std::size_t>(size), dist, 77);
    auto expected = v;
    std::sort(expected.begin(), expected.end());
    gas::insertion_sort(v);
    EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, InsertionSortSweep,
    ::testing::Combine(::testing::ValuesIn(workload::all_distributions()),
                       ::testing::Values(2, 20, 101)),
    [](const auto& pinfo) {
        std::string name = workload::to_string(std::get<0>(pinfo.param)) + "_" +
                           std::to_string(std::get<1>(pinfo.param));
        std::replace(name.begin(), name.end(), '-', '_');
        return name;
    });

}  // namespace
