#include "core/ragged_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/generators.hpp"

namespace {

simt::Device make_device() { return simt::Device(simt::tiny_device(256 << 20)); }

std::vector<float> sorted_rows(const workload::RaggedDataset& ds) {
    auto expected = ds.values;
    for (std::size_t a = 0; a < ds.num_arrays(); ++a) {
        std::sort(expected.begin() + static_cast<std::ptrdiff_t>(ds.offsets[a]),
                  expected.begin() + static_cast<std::ptrdiff_t>(ds.offsets[a + 1]));
    }
    return expected;
}

TEST(RaggedSort, SortsVariableSizedArrays) {
    auto dev = make_device();
    auto ds = workload::make_ragged_dataset(60, 5, 900, workload::Distribution::Uniform, 1);
    const auto expected = sorted_rows(ds);
    std::vector<std::uint64_t> offsets(ds.offsets.begin(), ds.offsets.end());
    gas::gpu_ragged_sort(dev, ds.values, offsets);
    EXPECT_EQ(ds.values, expected);
}

TEST(RaggedSort, HandlesEmptyArraysInTheMix) {
    auto dev = make_device();
    std::vector<float> values = {3.0f, 1.0f, 2.0f, 9.0f, 8.0f};
    std::vector<std::uint64_t> offsets = {0, 3, 3, 5};  // middle array empty
    gas::gpu_ragged_sort(dev, values, offsets);
    EXPECT_EQ(values, (std::vector<float>{1.0f, 2.0f, 3.0f, 8.0f, 9.0f}));
}

TEST(RaggedSort, UsesZeroTemporaryGlobalMemory) {
    auto dev = make_device();
    auto ds = workload::make_ragged_dataset(40, 100, 500, workload::Distribution::Normal, 2);
    std::vector<std::uint64_t> offsets(ds.offsets.begin(), ds.offsets.end());

    simt::DeviceBuffer<float> values(dev, ds.values.size());
    simt::copy_to_device(std::span<const float>(ds.values), values);
    const std::size_t before_peak = dev.memory().peak_bytes_in_use();
    gas::sort_ragged_on_device(dev, values, offsets);
    // The fused kernel allocates nothing: peak must not move.
    EXPECT_EQ(dev.memory().peak_bytes_in_use(), before_peak);
}

TEST(RaggedSort, RejectsNonAscendingOffsets) {
    auto dev = make_device();
    std::vector<float> values(10);
    simt::DeviceBuffer<float> buf(dev, values.size());
    std::vector<std::uint64_t> bad = {0, 7, 5, 10};
    EXPECT_THROW(gas::sort_ragged_on_device(dev, buf, bad), std::invalid_argument);
}

TEST(RaggedSort, RejectsOversizedArrays) {
    auto dev = make_device();
    const std::size_t huge = 13000;  // > 48 KB of floats once bookkeeping counted
    std::vector<float> values(huge, 1.0f);
    simt::DeviceBuffer<float> buf(dev, values.size());
    std::vector<std::uint64_t> offsets = {0, huge};
    EXPECT_THROW(gas::sort_ragged_on_device(dev, buf, offsets), std::invalid_argument);
}

TEST(RaggedSort, RejectsUndersizedValueBuffer) {
    auto dev = make_device();
    simt::DeviceBuffer<float> buf(dev, 5);
    std::vector<std::uint64_t> offsets = {0, 10};
    EXPECT_THROW(gas::sort_ragged_on_device(dev, buf, offsets), std::invalid_argument);
}

TEST(RaggedSort, EmptyOffsetListIsNoOp) {
    auto dev = make_device();
    std::vector<float> values;
    std::vector<std::uint64_t> offsets;
    EXPECT_NO_THROW(gas::gpu_ragged_sort(dev, values, offsets));
    offsets = {0};
    EXPECT_NO_THROW(gas::gpu_ragged_sort(dev, values, offsets));
}

TEST(RaggedSort, AllDistributionsSweep) {
    for (auto dist : workload::all_distributions()) {
        auto dev = make_device();
        auto ds = workload::make_ragged_dataset(25, 1, 400, dist, 5);
        const auto expected = sorted_rows(ds);
        std::vector<std::uint64_t> offsets(ds.offsets.begin(), ds.offsets.end());
        gas::gpu_ragged_sort(dev, ds.values, offsets);
        ASSERT_EQ(ds.values, expected) << workload::to_string(dist);
    }
}

TEST(RaggedSort, ReverseLaneOrderAgrees) {
    auto run = [](simt::ThreadOrder order) {
        simt::Device dev(simt::tiny_device(128 << 20));
        dev.set_thread_order(order);
        auto ds = workload::make_ragged_dataset(20, 10, 300, workload::Distribution::Uniform, 6);
        std::vector<std::uint64_t> offsets(ds.offsets.begin(), ds.offsets.end());
        gas::gpu_ragged_sort(dev, ds.values, offsets);
        return ds.values;
    };
    EXPECT_EQ(run(simt::ThreadOrder::Forward), run(simt::ThreadOrder::Reverse));
}

}  // namespace
