#include "core/device_ops.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/gpu_array_sort.hpp"
#include "core/validate.hpp"
#include "simt/device_buffer.hpp"
#include "workload/generators.hpp"

namespace {

simt::Device make_device() { return simt::Device(simt::tiny_device(128 << 20)); }

TEST(DeviceOps, NegateIsAnInvolution) {
    auto dev = make_device();
    const auto original = workload::make_values(10000, workload::Distribution::Normal, 1);
    simt::DeviceBuffer<float> buf(dev, original.size());
    simt::copy_to_device(std::span<const float>(original), buf);

    gas::negate_on_device(dev, buf.span());
    for (std::size_t i = 0; i < original.size(); ++i) {
        ASSERT_EQ(buf.span()[i], -original[i]);
    }
    gas::negate_on_device(dev, buf.span());
    std::vector<float> back(original.size());
    simt::copy_to_host(buf, std::span<float>(back));
    EXPECT_EQ(back, original);
}

TEST(DeviceOps, SortednessCheckAcceptsSortedRows) {
    auto dev = make_device();
    auto ds = workload::make_dataset(20, 333, workload::Distribution::Sorted, 2);
    simt::DeviceBuffer<float> buf(dev, ds.values.size());
    simt::copy_to_device(std::span<const float>(ds.values), buf);
    EXPECT_TRUE(gas::is_sorted_on_device(dev, buf.span(), 20, 333));
}

TEST(DeviceOps, SortednessCheckCountsUnsortedRows) {
    auto dev = make_device();
    auto ds = workload::make_dataset(10, 100, workload::Distribution::Sorted, 3);
    // Break rows 2 and 7.
    ds.values[2 * 100 + 50] = -1.0f;
    ds.values[7 * 100 + 99] = -1.0f;
    simt::DeviceBuffer<float> buf(dev, ds.values.size());
    simt::copy_to_device(std::span<const float>(ds.values), buf);
    EXPECT_EQ(gas::count_unsorted_on_device(dev, buf.span(), 10, 100), 2u);
}

TEST(DeviceOps, SortednessCheckIsRowLocal) {
    // Row boundaries must not leak: [5,6] | [1,2] is sorted per-row even
    // though the flat sequence descends at the boundary.
    auto dev = make_device();
    std::vector<float> data = {5, 6, 1, 2};
    simt::DeviceBuffer<float> buf(dev, data.size());
    simt::copy_to_device(std::span<const float>(data), buf);
    EXPECT_TRUE(gas::is_sorted_on_device(dev, buf.span(), 2, 2));
}

TEST(DeviceOps, SortednessCheckDegenerateSizes) {
    auto dev = make_device();
    std::vector<float> data = {3, 1, 2};
    simt::DeviceBuffer<float> buf(dev, data.size());
    simt::copy_to_device(std::span<const float>(data), buf);
    EXPECT_EQ(gas::count_unsorted_on_device(dev, buf.span(), 3, 1), 0u);  // single elems
    EXPECT_EQ(gas::count_unsorted_on_device(dev, buf.span(), 0, 100), 0u);
}

TEST(DeviceOps, ChecksSortResultsEndToEnd) {
    auto dev = make_device();
    auto ds = workload::make_dataset(30, 400, workload::Distribution::Uniform, 4);
    simt::DeviceBuffer<float> buf(dev, ds.values.size());
    simt::copy_to_device(std::span<const float>(ds.values), buf);
    EXPECT_FALSE(gas::is_sorted_on_device(dev, buf.span(), 30, 400));
    gas::sort_arrays_on_device(dev, buf, 30, 400);
    EXPECT_TRUE(gas::is_sorted_on_device(dev, buf.span(), 30, 400));
}

TEST(Descending, UniformSortDescends) {
    auto dev = make_device();
    auto ds = workload::make_dataset(25, 600, workload::Distribution::Uniform, 5);
    const auto before = ds.values;
    gas::Options opts;
    opts.order = gas::SortOrder::Descending;
    opts.validate = true;  // driver validates descending order itself
    gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
    EXPECT_TRUE(gas::all_arrays_sorted_descending(ds.values, ds.num_arrays, ds.array_size));
    EXPECT_TRUE(gas::all_arrays_permuted(before, ds.values, ds.num_arrays, ds.array_size));
}

TEST(Descending, MatchesReversedAscending) {
    auto ds = workload::make_dataset(10, 321, workload::Distribution::Normal, 6);
    auto asc = ds.values;
    auto desc = ds.values;

    simt::Device dev1(simt::tiny_device(64 << 20));
    gas::gpu_array_sort(dev1, asc, ds.num_arrays, ds.array_size);

    simt::Device dev2(simt::tiny_device(64 << 20));
    gas::Options opts;
    opts.order = gas::SortOrder::Descending;
    gas::gpu_array_sort(dev2, desc, ds.num_arrays, ds.array_size, opts);

    for (std::size_t a = 0; a < ds.num_arrays; ++a) {
        for (std::size_t i = 0; i < ds.array_size; ++i) {
            ASSERT_EQ(desc[a * ds.array_size + i],
                      asc[a * ds.array_size + (ds.array_size - 1 - i)])
                << "array " << a << " index " << i;
        }
    }
}

TEST(Descending, ExtraKernelTimeIsAccounted) {
    auto dev = make_device();
    auto ds = workload::make_dataset(10, 200, workload::Distribution::Uniform, 7);
    gas::Options opts;
    opts.order = gas::SortOrder::Descending;
    const auto stats = gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
    EXPECT_GT(stats.extra.modeled_ms, 0.0);
    EXPECT_GT(stats.modeled_kernel_ms(),
              stats.phase1.modeled_ms + stats.phase2.modeled_ms + stats.phase3.modeled_ms);
}

TEST(Descending, InfinitiesLandAtTheEnds) {
    auto dev = make_device();
    auto ds = workload::make_dataset(2, 50, workload::Distribution::Uniform, 8);
    ds.values[3] = std::numeric_limits<float>::infinity();
    ds.values[60] = -std::numeric_limits<float>::infinity();
    gas::Options opts;
    opts.order = gas::SortOrder::Descending;
    gas::gpu_array_sort(dev, ds.values, 2, 50, opts);
    EXPECT_EQ(ds.values[0], std::numeric_limits<float>::infinity());
    EXPECT_EQ(ds.values[99], -std::numeric_limits<float>::infinity());
}

}  // namespace
