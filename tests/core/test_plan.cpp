#include "core/plan.hpp"

#include <gtest/gtest.h>

namespace {

using gas::make_plan;
using gas::Options;

const simt::DeviceProperties kProps = simt::tesla_k40c();

TEST(Plan, PaperGeometryForThousandElementArrays) {
    const auto plan = make_plan(1000, Options{}, kProps);
    EXPECT_EQ(plan.buckets, 50u);              // p = floor(n / 20)
    EXPECT_EQ(plan.interior_splitters(), 49u); // q = p - 1
    EXPECT_EQ(plan.splitters_per_array, 51u);  // q + 2 sentinels
    EXPECT_EQ(plan.sample_size, 100u);         // 10% regular sampling
    EXPECT_EQ(plan.block_threads, 50u);
    EXPECT_TRUE(plan.array_fits_shared);
}

TEST(Plan, FourThousandElementArraysStillFitShared) {
    // The paper's largest evaluated size; 4000 floats = 16 KB < 48 KB.
    const auto plan = make_plan(4000, Options{}, kProps);
    EXPECT_EQ(plan.buckets, 200u);
    EXPECT_EQ(plan.sample_size, 400u);
    EXPECT_TRUE(plan.array_fits_shared);
}

TEST(Plan, TinyArraysDegradeToSingleBucket) {
    for (std::size_t n : {1u, 5u, 19u}) {
        const auto plan = make_plan(n, Options{}, kProps);
        EXPECT_EQ(plan.buckets, 1u) << n;
        EXPECT_EQ(plan.splitters_per_array, 2u) << n;  // sentinels only
        EXPECT_GE(plan.sample_size, 1u) << n;
        EXPECT_LE(plan.sample_size, n) << n;
    }
}

TEST(Plan, ZeroSizeArrays) {
    const auto plan = make_plan(0, Options{}, kProps);
    EXPECT_EQ(plan.buckets, 1u);
    EXPECT_EQ(plan.block_threads, 1u);
}

TEST(Plan, BucketCountCappedByBlockThreadLimit) {
    // n = 100k would want 5000 buckets; the device caps blocks at 1024
    // threads, so p clamps and buckets grow instead.
    const auto plan = make_plan(100000, Options{}, kProps);
    EXPECT_EQ(plan.buckets, 1024u);
    EXPECT_FALSE(plan.array_fits_shared);  // 400 KB array
}

TEST(Plan, ThreadsPerBucketShrinksBucketCap) {
    Options opts;
    opts.threads_per_bucket = 4;
    const auto plan = make_plan(100000, opts, kProps);
    EXPECT_EQ(plan.buckets, 256u);  // 1024 / 4
    EXPECT_EQ(plan.block_threads, 1024u);
}

TEST(Plan, SampleNeverSmallerThanBucketCount) {
    Options opts;
    opts.sampling_rate = 0.001;  // would give 1 sample for n = 1000
    const auto plan = make_plan(1000, opts, kProps);
    EXPECT_GE(plan.sample_size, plan.buckets);
}

TEST(Plan, SampleNeverLargerThanArray) {
    Options opts;
    opts.sampling_rate = 1.0;
    const auto plan = make_plan(500, opts, kProps);
    EXPECT_EQ(plan.sample_size, 500u);
}

TEST(Plan, SampleCappedBySharedMemory) {
    Options opts;
    opts.sampling_rate = 1.0;
    const auto plan = make_plan(100000, opts, kProps);
    EXPECT_LE(plan.sample_size * sizeof(float), kProps.shared_memory_per_block);
}

TEST(Plan, InvalidOptionsThrow) {
    Options bad_bucket;
    bad_bucket.bucket_target = 0;
    EXPECT_THROW((void)make_plan(1000, bad_bucket, kProps), std::invalid_argument);

    Options bad_rate;
    bad_rate.sampling_rate = 0.0;
    EXPECT_THROW((void)make_plan(1000, bad_rate, kProps), std::invalid_argument);
    bad_rate.sampling_rate = 1.5;
    EXPECT_THROW((void)make_plan(1000, bad_rate, kProps), std::invalid_argument);

    Options bad_tpb;
    bad_tpb.threads_per_bucket = 0;
    EXPECT_THROW((void)make_plan(1000, bad_tpb, kProps), std::invalid_argument);
}

TEST(Plan, BucketTargetSweepIsMonotone) {
    std::size_t prev = SIZE_MAX;
    for (std::size_t target : {5u, 10u, 20u, 50u, 100u}) {
        Options opts;
        opts.bucket_target = target;
        const auto plan = make_plan(2000, opts, kProps);
        EXPECT_LE(plan.buckets, prev);
        prev = plan.buckets;
    }
}

class PlanSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PlanSweep, InvariantsHoldAcrossSizes) {
    const std::size_t n = GetParam();
    const auto plan = make_plan(n, Options{}, kProps);
    EXPECT_GE(plan.buckets, 1u);
    EXPECT_EQ(plan.splitters_per_array, plan.buckets + 1);
    EXPECT_GE(plan.sample_size, plan.buckets);
    EXPECT_LE(plan.sample_size, std::max<std::size_t>(n, 1));
    EXPECT_LE(plan.block_threads, kProps.max_threads_per_block);
    if (n > 0) {
        // stride arithmetic used by the kernels must stay >= 1
        EXPECT_GE(n / plan.sample_size, 1u);
        EXPECT_GE(plan.sample_size / plan.buckets, 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PlanSweep,
                         ::testing::Values(1, 2, 3, 7, 19, 20, 21, 39, 40, 100, 333, 999,
                                           1000, 1024, 2000, 2048, 3000, 4000, 5000, 12288,
                                           20000, 100000));

}  // namespace
