// Chaos suite (ctest label: chaos): randomized — but seeded, hence fully
// deterministic — fault schedules over every public entry point.  The single
// invariant under test: a caller either gets verified-correct bytes or a
// typed error.  Never silently wrong data.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/resilient_sort.hpp"
#include "ooc/out_of_core.hpp"
#include "serve/server.hpp"
#include "workload/generators.hpp"

namespace {

using gas::Options;
using gas::SortOrder;
namespace resilient = gas::resilient;

simt::Device make_device(std::size_t bytes = 256 << 20) {
    return simt::Device(simt::tiny_device(bytes));
}

/// A hostile-but-recoverable plan: allocation failures, refused launches and
/// corruption all armed at rates a handful-of-launches pipeline will
/// actually hit across seeds.
simt::faults::FaultPlan chaos_plan(std::uint64_t seed, bool detected) {
    simt::faults::FaultPlan plan;
    plan.seed = seed;
    plan.alloc_fail_every = 13;
    plan.launch_fail_every = 17;
    plan.corrupt_every = 23;
    plan.detected = detected;
    return plan;
}

resilient::RetryPolicy chaos_retry(std::uint64_t seed) {
    resilient::RetryPolicy retry;
    retry.seed = seed;
    retry.max_attempts = 8;  // rates above can fire several times per sort
    return retry;
}

bool typed_transient(const std::exception& e) { return resilient::transient(e); }

constexpr std::uint64_t kSeeds = 6;

TEST(Chaos, UniformSortIsCorrectOrTyped) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        for (const bool detected : {true, false}) {
            auto dev = make_device();
            dev.set_fault_plan(chaos_plan(seed, detected));
            auto ds = workload::make_dataset(8, 150, workload::Distribution::Uniform,
                                             static_cast<unsigned>(seed));
            auto want = ds.values;
            for (std::size_t a = 0; a < 8; ++a) {
                std::sort(want.begin() + static_cast<std::ptrdiff_t>(a * 150),
                          want.begin() + static_cast<std::ptrdiff_t>((a + 1) * 150));
            }
            Options opts;
            opts.verify_output = true;  // closes the undetected-corruption window
            try {
                resilient::sort_arrays<float>(dev, std::span<float>(ds.values), 8, 150, opts,
                                              chaos_retry(seed));
                EXPECT_EQ(ds.values, want)
                    << "seed " << seed << " detected=" << detected
                    << ": sort returned success with wrong bytes";
            } catch (const std::exception& e) {
                EXPECT_TRUE(typed_transient(e))
                    << "seed " << seed << ": untyped error: " << e.what();
            }
        }
    }
}

TEST(Chaos, RaggedSortIsCorrectOrTyped) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        auto dev = make_device();
        dev.set_fault_plan(chaos_plan(seed, /*detected=*/seed % 2 == 0));
        auto rag = workload::make_ragged_dataset(8, 2, 80, workload::Distribution::Uniform,
                                                 static_cast<unsigned>(seed));
        const std::vector<std::uint64_t> offsets(rag.offsets.begin(), rag.offsets.end());
        auto want = rag.values;
        for (std::size_t a = 0; a + 1 < offsets.size(); ++a) {
            std::sort(want.begin() + static_cast<std::ptrdiff_t>(offsets[a]),
                      want.begin() + static_cast<std::ptrdiff_t>(offsets[a + 1]));
        }
        Options opts;
        opts.verify_output = true;
        try {
            resilient::ragged_sort(dev, rag.values, offsets, opts, chaos_retry(seed));
            EXPECT_EQ(rag.values, want) << "seed " << seed;
        } catch (const std::exception& e) {
            EXPECT_TRUE(typed_transient(e)) << "seed " << seed << ": " << e.what();
        }
    }
}

TEST(Chaos, PairSortIsCorrectOrTyped) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        auto dev = make_device();
        dev.set_fault_plan(chaos_plan(seed, /*detected=*/seed % 2 != 0));
        const std::size_t rows = 6;
        const std::size_t n = 96;
        auto keys = workload::make_dataset(rows, n, workload::Distribution::Uniform,
                                           static_cast<unsigned>(100 + seed))
                        .values;
        std::vector<float> payload(keys.size());
        for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<float>(i);
        // Bound pair checksums survive any within-row permutation: the
        // correctness oracle for ties-unspecified pair output.
        std::vector<std::uint64_t> expected(rows);
        for (std::size_t a = 0; a < rows; ++a) {
            expected[a] = resilient::pair_row_checksum(
                std::span<const float>(keys.data() + a * n, n),
                std::span<const float>(payload.data() + a * n, n));
        }
        Options opts;
        opts.verify_output = true;
        try {
            resilient::pair_sort<float>(dev, std::span<float>(keys),
                                        std::span<float>(payload), rows, n, opts,
                                        chaos_retry(seed));
            for (std::size_t a = 0; a < rows; ++a) {
                EXPECT_TRUE(std::is_sorted(keys.begin() + static_cast<std::ptrdiff_t>(a * n),
                                           keys.begin() + static_cast<std::ptrdiff_t>((a + 1) * n)))
                    << "seed " << seed << " row " << a;
                EXPECT_EQ(resilient::pair_row_checksum(
                              std::span<const float>(keys.data() + a * n, n),
                              std::span<const float>(payload.data() + a * n, n)),
                          expected[a])
                    << "seed " << seed << " row " << a << ": pair binding broken";
            }
        } catch (const std::exception& e) {
            EXPECT_TRUE(typed_transient(e)) << "seed " << seed << ": " << e.what();
        }
    }
}

TEST(Chaos, OutOfCoreWithFallbackAlwaysLandsCorrectBytes) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        auto dev = make_device();
        dev.set_fault_plan(chaos_plan(seed, /*detected=*/seed % 2 == 0));
        auto ds = workload::make_dataset(24, 100, workload::Distribution::Uniform,
                                         static_cast<unsigned>(seed));
        auto want = ds.values;
        for (std::size_t a = 0; a < 24; ++a) {
            std::sort(want.begin() + static_cast<std::ptrdiff_t>(a * 100),
                      want.begin() + static_cast<std::ptrdiff_t>((a + 1) * 100));
        }
        ooc::OocOptions opts;
        opts.batch_arrays = 6;
        opts.sort_opts.verify_output = true;
        opts.retry = chaos_retry(seed);
        opts.host_fallback = true;  // with fallback, success is unconditional
        ooc::OocCheckpoint ckpt;
        const auto stats =
            ooc::out_of_core_sort(dev, ds.values, 24, 100, opts, &ckpt);
        EXPECT_EQ(ds.values, want) << "seed " << seed;
        EXPECT_TRUE(ckpt.complete());
        EXPECT_EQ(stats.batches, 4u);
    }
}

TEST(Chaos, ServeWithVerificationAlwaysAnswersCorrectly) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        auto dev = make_device();
        dev.set_fault_plan(chaos_plan(seed, /*detected=*/seed % 2 != 0));
        gas::serve::ServerConfig cfg;
        cfg.manual_pump = true;
        cfg.verify_responses = true;
        cfg.retry.seed = seed;
        cfg.retry.max_attempts = 8;
        gas::serve::Server server(dev, cfg);

        std::vector<gas::serve::Server::Ticket> tickets;
        std::vector<std::vector<float>> expected;
        for (unsigned i = 0; i < 6; ++i) {
            gas::serve::Job job;
            job.kind = gas::serve::JobKind::Uniform;
            job.num_arrays = 4;
            job.array_size = 64;
            job.values = workload::make_dataset(4, 64, workload::Distribution::Uniform,
                                                static_cast<unsigned>(seed * 100 + i))
                             .values;
            auto want = job.values;
            for (std::size_t a = 0; a < 4; ++a) {
                std::sort(want.begin() + static_cast<std::ptrdiff_t>(a * 64),
                          want.begin() + static_cast<std::ptrdiff_t>((a + 1) * 64));
            }
            expected.push_back(std::move(want));
            tickets.push_back(server.submit(std::move(job)));
        }
        server.pump();
        for (std::size_t i = 0; i < tickets.size(); ++i) {
            gas::serve::Response r = tickets[i].result.get();
            ASSERT_EQ(r.status, gas::serve::Status::Ok)
                << "seed " << seed << " request " << i << ": " << r.error;
            EXPECT_EQ(r.values, expected[i]) << "seed " << seed << " request " << i;
        }
    }
}

/// Kill -> revive -> kill: a device cycling through quarantine, probe-sort
/// re-admission and a second loss.  Every accepted request must land
/// byte-correct (0 mismatches vs the host sort) and the "health" stats must
/// count both losses and the recovery in between.
TEST(Chaos, KillReviveKillCyclesThroughProbationWithZeroByteMismatches) {
    gas::fleet::DeviceFleet fleet(2, simt::tiny_device(256 << 20));
    gas::serve::ServerConfig cfg;
    cfg.manual_pump = true;
    cfg.retry.seed = 17;
    cfg.health.enabled = true;
    cfg.health.probe_passes = 1;
    cfg.health.probation_batches = 1;
    cfg.health.probation_base_weight = 1.0;
    gas::serve::Server server(fleet, cfg);

    simt::faults::FaultPlan kill;
    kill.launch_fail_every = 1;

    std::size_t byte_mismatches = 0;
    auto serve_burst = [&](unsigned tag) {
        std::vector<gas::serve::Server::Ticket> tickets;
        std::vector<std::vector<float>> expected;
        for (unsigned i = 0; i < 6; ++i) {
            gas::serve::Job job;
            job.kind = gas::serve::JobKind::Uniform;
            job.num_arrays = 4;
            job.array_size = 64 + 16 * i;  // incompatible sizes: spreads shards
            job.values =
                workload::make_dataset(4, job.array_size, workload::Distribution::Uniform,
                                       tag * 100 + i)
                    .values;
            auto want = job.values;
            const auto n = static_cast<std::ptrdiff_t>(job.array_size);
            for (std::ptrdiff_t a = 0; a < 4; ++a) {
                std::sort(want.begin() + a * n, want.begin() + (a + 1) * n);
            }
            expected.push_back(std::move(want));
            tickets.push_back(server.submit(std::move(job)));
        }
        server.pump();
        for (std::size_t i = 0; i < tickets.size(); ++i) {
            gas::serve::Response r = tickets[i].result.get();
            ASSERT_EQ(r.status, gas::serve::Status::Ok)
                << "burst " << tag << " request " << i << ": " << r.error;
            if (r.values != expected[i]) ++byte_mismatches;
        }
    };

    // Kill #1: burst re-routes to the survivor, device 0 quarantined.
    fleet.device(0).set_fault_plan(kill);
    serve_burst(1);
    ASSERT_EQ(server.stats().devices[0].health_state, "quarantined");

    // Revive: probe passes, probation, one clean batch -> healthy again.
    fleet.device(0).set_fault_plan({});
    server.pump();  // runs the probe cycle
    ASSERT_EQ(server.stats().devices[0].health_state, "probation");
    for (unsigned round = 0; round < 8; ++round) {
        serve_burst(10 + round);
        if (server.stats().devices[0].health_state == "healthy") break;
    }
    ASSERT_EQ(server.stats().devices[0].health_state, "healthy");
    ASSERT_EQ(server.stats().health.readmissions, 1u);

    // Kill #2: the re-admitted device dies again; service must survive it
    // again, and the counters must show both transitions.
    fleet.device(0).set_fault_plan(kill);
    serve_burst(50);
    const auto stats = server.stats();
    EXPECT_EQ(stats.devices[0].health_state, "quarantined");
    EXPECT_GE(stats.health.quarantines, 2u);
    EXPECT_EQ(stats.health.readmissions, 1u);
    EXPECT_EQ(stats.health.hedge_mismatches, 0u);
    EXPECT_EQ(byte_mismatches, 0u);
}

TEST(Chaos, SameSeedYieldsIdenticalFaultReport) {
    auto run = [](std::uint64_t seed) {
        auto dev = make_device();
        dev.set_fault_plan(chaos_plan(seed, /*detected=*/true));
        auto ds = workload::make_dataset(8, 150, workload::Distribution::Uniform, 9);
        Options opts;
        opts.verify_output = true;
        try {
            resilient::sort_arrays<float>(dev, std::span<float>(ds.values), 8, 150, opts,
                                          chaos_retry(seed));
        } catch (const std::exception&) {
            // Exhausted retries are a legal outcome; the report still pins
            // exactly which faults fired on the way.
        }
        return std::pair{simt::faults::to_json(dev.fault_report()),
                         simt::faults::to_text(dev.fault_report())};
    };
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const auto [json_a, text_a] = run(seed);
        const auto [json_b, text_b] = run(seed);
        EXPECT_EQ(json_a, json_b) << "seed " << seed;
        EXPECT_EQ(text_a, text_b) << "seed " << seed;
    }
    // Different seeds re-dice the schedule (the reports cannot all match).
    const auto [j1, t1] = run(1);
    const auto [j2, t2] = run(2);
    const auto [j3, t3] = run(3);
    EXPECT_TRUE(j1 != j2 || j2 != j3);
}

}  // namespace
