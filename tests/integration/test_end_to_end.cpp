// Cross-module integration tests: the three sorters must agree, the cost
// model must rank them the way the paper's evaluation does, and the domain
// pipeline must run end-to-end through file IO, reduction and sorting.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "baseline/cpu_sort.hpp"
#include "baseline/sta_sort.hpp"
#include "core/gpu_array_sort.hpp"
#include "core/validate.hpp"
#include "msdata/mgf_io.hpp"
#include "msdata/pipeline.hpp"
#include "msdata/synth.hpp"
#include "ooc/out_of_core.hpp"
#include "workload/generators.hpp"

namespace {

TEST(EndToEnd, AllThreeSortersAgree) {
    auto ds = workload::make_dataset(30, 600, workload::Distribution::Uniform, 21);
    auto via_cpu = ds.values;
    auto via_gas = ds.values;
    auto via_sta = ds.values;

    baseline::cpu_sort_arrays(via_cpu, ds.num_arrays, ds.array_size);

    simt::Device dev1(simt::tiny_device(256 << 20));
    gas::gpu_array_sort(dev1, via_gas, ds.num_arrays, ds.array_size);

    simt::Device dev2(simt::tiny_device(256 << 20));
    sta::sta_sort(dev2, via_sta, ds.num_arrays, ds.array_size);

    EXPECT_EQ(via_gas, via_cpu);
    EXPECT_EQ(via_sta, via_cpu);
}

TEST(EndToEnd, GpuArraySortModeledFasterThanSta) {
    // The paper's headline result (Figs. 4-7): GPU-ArraySort beats STA.
    // The cost model must reproduce the ranking at a bench-sized workload.
    auto ds = workload::make_dataset(256, 1000, workload::Distribution::Uniform, 22);

    simt::Device dev1(simt::tiny_device(512 << 20));
    auto copy1 = ds.values;
    const auto g = gas::gpu_array_sort(dev1, copy1, ds.num_arrays, ds.array_size);

    simt::Device dev2(simt::tiny_device(512 << 20));
    auto copy2 = ds.values;
    const auto s = sta::sta_sort(dev2, copy2, ds.num_arrays, ds.array_size);

    EXPECT_LT(g.modeled_kernel_ms(), s.modeled_ms);
}

TEST(EndToEnd, GpuArraySortUsesLessMemoryThanSta) {
    // Table 1's mechanism: STA's footprint per element is ~3x GPU-ArraySort's.
    auto ds = workload::make_dataset(128, 1000, workload::Distribution::Uniform, 23);

    simt::Device dev1(simt::tiny_device(512 << 20));
    auto copy1 = ds.values;
    const auto g = gas::gpu_array_sort(dev1, copy1, ds.num_arrays, ds.array_size);

    simt::Device dev2(simt::tiny_device(512 << 20));
    auto copy2 = ds.values;
    const auto s = sta::sta_sort(dev2, copy2, ds.num_arrays, ds.array_size);

    EXPECT_GT(static_cast<double>(s.peak_device_bytes),
              2.5 * static_cast<double>(g.peak_device_bytes));
}

TEST(EndToEnd, ModeledTimeGrowsLinearlyInN) {
    // One block per array with no inter-array coupling: doubling N should
    // roughly double modeled time (the scaling that justifies running the
    // figure benches on a scaled N grid).
    auto run = [](std::size_t num_arrays) {
        simt::Device dev(simt::tiny_device(512 << 20));
        auto ds = workload::make_dataset(num_arrays, 500, workload::Distribution::Uniform, 24);
        const auto stats = gas::gpu_array_sort(dev, ds.values, ds.num_arrays, ds.array_size);
        return stats.modeled_kernel_ms();
    };
    const double t1 = run(512);
    const double t2 = run(1024);
    EXPECT_GT(t2 / t1, 1.6);
    EXPECT_LT(t2 / t1, 2.4);
}

TEST(EndToEnd, MassSpecPipelineThroughFileIo) {
    // Generate -> write MGF -> read MGF -> reduce on device -> sort by
    // intensity on device: the full domain workflow from the introduction.
    msdata::SynthOptions sopts;
    sopts.min_peaks = 50;
    sopts.max_peaks = 300;
    auto set = msdata::generate_spectra(15, sopts);

    std::stringstream file;
    msdata::write_mgf(file, set);
    auto loaded = msdata::read_mgf(file);
    ASSERT_EQ(loaded.size(), set.size());

    simt::Device dev(simt::tiny_device(128 << 20));
    const auto reduce_stats = msdata::reduce_spectra(dev, loaded, 0.3);
    EXPECT_LT(reduce_stats.peaks_out, reduce_stats.peaks_in);

    const auto sort_stats = msdata::sort_spectra_by_intensity(dev, loaded);
    EXPECT_GT(sort_stats.sort.modeled_kernel_ms() + sort_stats.sort.phase2.modeled_ms, 0.0);
    for (const auto& s : loaded.spectra) {
        EXPECT_TRUE(std::is_sorted(s.peaks.begin(), s.peaks.end(),
                                   [](const auto& a, const auto& b) {
                                       return a.intensity < b.intensity;
                                   }));
    }
}

TEST(EndToEnd, OutOfCoreMatchesInCoreResult) {
    auto ds = workload::make_dataset(80, 400, workload::Distribution::Normal, 25);
    auto in_core = ds.values;
    auto out_core = ds.values;

    simt::Device big(simt::tiny_device(256 << 20));
    gas::gpu_array_sort(big, in_core, ds.num_arrays, ds.array_size);

    simt::Device small(simt::tiny_device(256 << 10));
    const auto stats = ooc::out_of_core_sort(small, out_core, ds.num_arrays, ds.array_size);
    EXPECT_GT(stats.batches, 1u);
    EXPECT_EQ(out_core, in_core);
}

TEST(EndToEnd, CapacityProbeFindsAllocatorLimit) {
    // Bisection against a virtual-mode device must find the largest N that
    // fits — the Table 1 methodology at miniature scale.
    const std::size_t n = 1000;
    simt::DeviceProperties props = simt::tiny_device(16 << 20);  // 16 MB

    auto fits = [&](std::size_t num_arrays) {
        return gas::device_footprint_bytes(num_arrays, n, gas::Options{}, props) <=
               props.global_memory_bytes;
    };
    std::size_t lo = 1;
    std::size_t hi = 1 << 16;
    while (lo + 1 < hi) {
        const std::size_t mid = (lo + hi) / 2;
        (fits(mid) ? lo : hi) = mid;
    }
    EXPECT_TRUE(fits(lo));
    EXPECT_FALSE(fits(lo + 1));
    // ~16 MB / 4.3 KB per array.
    EXPECT_GT(lo, 3000u);
    EXPECT_LT(lo, 4200u);
}

}  // namespace
