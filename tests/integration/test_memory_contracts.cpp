// Memory contracts: every public entry point must release all device memory
// it allocated (no leaks across the whole API surface), and peak usage must
// never exceed the documented footprint models.

#include <gtest/gtest.h>

#include <numeric>

#include "baseline/sequential_sort.hpp"
#include "baseline/sta_sort.hpp"
#include "core/gpu_array_sort.hpp"
#include "core/pair_sort.hpp"
#include "core/ragged_sort.hpp"
#include "msdata/pipeline.hpp"
#include "msdata/precursor_index.hpp"
#include "msdata/quality.hpp"
#include "msdata/synth.hpp"
#include "ooc/out_of_core.hpp"
#include "thrustlite/radix_sort.hpp"
#include "thrustlite/reduce_scan.hpp"
#include "workload/generators.hpp"

namespace {

TEST(MemoryContracts, EveryHostApiReleasesEverything) {
    simt::Device dev(simt::tiny_device(256 << 20));
    auto ds = workload::make_dataset(30, 500, workload::Distribution::Uniform, 1);
    auto ragged = workload::make_ragged_dataset(20, 10, 300, workload::Distribution::Uniform, 2);
    std::vector<std::uint64_t> offsets(ragged.offsets.begin(), ragged.offsets.end());
    std::vector<float> pair_vals(ds.values.size());
    std::iota(pair_vals.begin(), pair_vals.end(), 0.0f);

    {
        auto copy = ds.values;
        gas::gpu_array_sort(dev, copy, ds.num_arrays, ds.array_size);
        EXPECT_EQ(dev.memory().bytes_in_use(), 0u) << "gpu_array_sort leaked";
    }
    {
        auto copy = ds.values;
        sta::sta_sort(dev, copy, ds.num_arrays, ds.array_size);
        EXPECT_EQ(dev.memory().bytes_in_use(), 0u) << "sta_sort leaked";
    }
    {
        auto copy = ds.values;
        baseline::sequential_sort(dev, copy, ds.num_arrays, ds.array_size);
        EXPECT_EQ(dev.memory().bytes_in_use(), 0u) << "sequential_sort leaked";
    }
    {
        auto values = ragged.values;
        gas::gpu_ragged_sort(dev, values, offsets);
        EXPECT_EQ(dev.memory().bytes_in_use(), 0u) << "gpu_ragged_sort leaked";
    }
    {
        auto keys = ds.values;
        auto vals = pair_vals;
        gas::gpu_pair_sort(dev, keys, vals, ds.num_arrays, ds.array_size);
        EXPECT_EQ(dev.memory().bytes_in_use(), 0u) << "gpu_pair_sort leaked";
    }
    {
        auto copy = ds.values;
        ooc::out_of_core_sort(dev, copy, ds.num_arrays, ds.array_size);
        EXPECT_EQ(dev.memory().bytes_in_use(), 0u) << "out_of_core_sort leaked";
    }
}

TEST(MemoryContracts, MsdataPipelinesReleaseEverything) {
    simt::Device dev(simt::tiny_device(128 << 20));
    msdata::SynthOptions opts;
    opts.min_peaks = 10;
    opts.max_peaks = 100;
    auto set = msdata::generate_spectra(25, opts);

    msdata::sort_spectra_by_intensity(dev, set);
    EXPECT_EQ(dev.memory().bytes_in_use(), 0u) << "sort_spectra leaked";
    msdata::reduce_spectra(dev, set, 0.5);
    EXPECT_EQ(dev.memory().bytes_in_use(), 0u) << "reduce_spectra leaked";
    (void)msdata::compute_quality(dev, set);
    EXPECT_EQ(dev.memory().bytes_in_use(), 0u) << "compute_quality leaked";
    { const msdata::PrecursorIndex index(dev, set); }
    EXPECT_EQ(dev.memory().bytes_in_use(), 0u) << "PrecursorIndex leaked";
}

TEST(MemoryContracts, ThrustliteAlgorithmsReleaseScratch) {
    simt::Device dev(simt::tiny_device(64 << 20));
    simt::DeviceBuffer<std::uint32_t> keys(dev, 50000);
    simt::DeviceBuffer<std::uint32_t> vals(dev, 50000);
    const std::size_t baseline_bytes = dev.memory().bytes_in_use();

    thrustlite::stable_sort_by_key(dev, keys.span(), vals.span());
    EXPECT_EQ(dev.memory().bytes_in_use(), baseline_bytes) << "radix scratch leaked";

    simt::DeviceBuffer<float> data(dev, 10000);
    const std::size_t with_data = dev.memory().bytes_in_use();
    (void)thrustlite::reduce_sum(dev, data.span());
    (void)thrustlite::count_less_equal(dev, data.span(), 0.5f);
    EXPECT_EQ(dev.memory().bytes_in_use(), with_data) << "reduction leaked";
}

TEST(MemoryContracts, PeakNeverExceedsFootprintModel) {
    for (const std::size_t n : {100u, 1000u, 4000u}) {
        simt::Device dev(simt::tiny_device(512 << 20));
        auto ds = workload::make_dataset(40, n, workload::Distribution::Uniform, n);
        simt::DeviceBuffer<float> data(dev, ds.values.size());
        simt::copy_to_device(std::span<const float>(ds.values), data);
        gas::sort_arrays_on_device(dev, data, ds.num_arrays, n);
        EXPECT_LE(dev.memory().peak_bytes_in_use(),
                  gas::device_footprint_bytes(ds.num_arrays, n, gas::Options{}, dev.props()))
            << "n=" << n;
    }
}

TEST(MemoryContracts, StaPeakMatchesItsModel) {
    simt::Device dev(simt::tiny_device(512 << 20));
    auto ds = workload::make_dataset(50, 1000, workload::Distribution::Uniform, 9);
    const auto stats = sta::sta_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    EXPECT_LE(stats.peak_device_bytes,
              sta::sta_footprint_bytes(ds.num_arrays, ds.array_size));
}

}  // namespace
