// Differential fuzzing: random (N, n, distribution, options) configurations,
// three independent implementations — GPU-ArraySort, STA, host std::sort —
// must agree bit-for-bit on every row.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "baseline/cpu_sort.hpp"
#include "baseline/sta_sort.hpp"
#include "core/gpu_array_sort.hpp"
#include "workload/generators.hpp"

namespace {

struct FuzzConfig {
    std::size_t num_arrays;
    std::size_t array_size;
    workload::Distribution dist;
    gas::Options opts;
};

FuzzConfig random_config(std::mt19937_64& rng) {
    FuzzConfig c;
    c.num_arrays = 1 + rng() % 40;
    c.array_size = 1 + rng() % 1200;
    const auto& dists = workload::all_distributions();
    c.dist = dists[rng() % dists.size()];
    c.opts.bucket_target = 1 + rng() % 64;
    c.opts.sampling_rate = 0.02 + 0.9 * static_cast<double>(rng() % 1000) / 1000.0;
    c.opts.strategy = rng() % 2 == 0 ? gas::BucketingStrategy::ScanPerThread
                                     : gas::BucketingStrategy::BinarySearch;
    c.opts.threads_per_bucket =
        c.opts.strategy == gas::BucketingStrategy::ScanPerThread ? 1u + rng() % 4 : 1u;
    return c;
}

class Differential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Differential, ThreeImplementationsAgree) {
    std::mt19937_64 rng(GetParam());
    for (int trial = 0; trial < 6; ++trial) {
        const FuzzConfig c = random_config(rng);
        auto ds = workload::make_dataset(c.num_arrays, c.array_size, c.dist, rng());

        auto via_cpu = ds.values;
        baseline::cpu_sort_arrays(via_cpu, c.num_arrays, c.array_size);

        auto via_gas = ds.values;
        {
            simt::Device dev(simt::tiny_device(128 << 20));
            gas::gpu_array_sort(dev, via_gas, c.num_arrays, c.array_size, c.opts);
        }
        ASSERT_EQ(via_gas, via_cpu)
            << "GPU-ArraySort mismatch: N=" << c.num_arrays << " n=" << c.array_size
            << " dist=" << workload::to_string(c.dist)
            << " bucket_target=" << c.opts.bucket_target
            << " rate=" << c.opts.sampling_rate << " strategy="
            << gas::to_string(c.opts.strategy) << " tpb=" << c.opts.threads_per_bucket;

        auto via_sta = ds.values;
        {
            simt::Device dev(simt::tiny_device(128 << 20));
            sta::sta_sort(dev, via_sta, c.num_arrays, c.array_size);
        }
        ASSERT_EQ(via_sta, via_cpu)
            << "STA mismatch: N=" << c.num_arrays << " n=" << c.array_size
            << " dist=" << workload::to_string(c.dist);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808, 909,
                                           1010, 1111, 1212));

TEST(Differential, DescendingAgainstReversedOracle) {
    std::mt19937_64 rng(42);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t num_arrays = 1 + rng() % 20;
        const std::size_t n = 1 + rng() % 800;
        auto ds = workload::make_dataset(num_arrays, n, workload::Distribution::Uniform,
                                         rng());
        auto oracle = ds.values;
        baseline::cpu_sort_arrays(oracle, num_arrays, n);
        for (std::size_t a = 0; a < num_arrays; ++a) {
            std::reverse(oracle.begin() + static_cast<std::ptrdiff_t>(a * n),
                         oracle.begin() + static_cast<std::ptrdiff_t>((a + 1) * n));
        }

        simt::Device dev(simt::tiny_device(64 << 20));
        gas::Options opts;
        opts.order = gas::SortOrder::Descending;
        gas::gpu_array_sort(dev, ds.values, num_arrays, n, opts);
        ASSERT_EQ(ds.values, oracle) << "trial " << trial << " N=" << num_arrays
                                     << " n=" << n;
    }
}

}  // namespace
