#include "baseline/sta_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/gpu_array_sort.hpp"
#include "core/validate.hpp"
#include "workload/generators.hpp"

namespace {

using sta::sta_sort;
using sta::StaOptions;

simt::Device make_device() { return simt::Device(simt::tiny_device(512 << 20)); }

TEST(StaSort, SortsUniformDataset) {
    auto dev = make_device();
    auto ds = workload::make_dataset(40, 500, workload::Distribution::Uniform, 1);
    auto expected = ds.values;
    for (std::size_t a = 0; a < ds.num_arrays; ++a) {
        std::sort(expected.begin() + static_cast<std::ptrdiff_t>(a * ds.array_size),
                  expected.begin() + static_cast<std::ptrdiff_t>((a + 1) * ds.array_size));
    }
    StaOptions opts;
    opts.validate = true;
    sta_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts);
    EXPECT_EQ(ds.values, expected);
}

TEST(StaSort, AgreesWithGpuArraySortOnEveryDistribution) {
    for (auto dist : workload::all_distributions()) {
        auto dev = make_device();
        auto ds = workload::make_dataset(12, 333, dist, 2);
        auto copy = ds.values;

        sta_sort(dev, ds.values, ds.num_arrays, ds.array_size);

        simt::Device dev2(simt::tiny_device(256 << 20));
        gas::gpu_array_sort(dev2, copy, ds.num_arrays, ds.array_size);
        ASSERT_EQ(ds.values, copy) << workload::to_string(dist);
    }
}

TEST(StaSort, NegativeValuesSortCorrectly) {
    auto dev = make_device();
    auto ds = workload::make_dataset(8, 256, workload::Distribution::Normal, 3);
    for (std::size_t i = 0; i < ds.values.size(); i += 2) ds.values[i] = -ds.values[i];
    StaOptions opts;
    opts.validate = true;
    EXPECT_NO_THROW(sta_sort(dev, ds.values, ds.num_arrays, ds.array_size, opts));
    EXPECT_TRUE(gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size));
}

TEST(StaSort, PeakMemoryIsRoughlyThreeTimesDataPlusTags) {
    auto dev = make_device();
    auto ds = workload::make_dataset(100, 1000, workload::Distribution::Uniform, 4);
    const auto stats = sta_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    // data(4B) + tags(4B) + radix double buffers(8B) per element = 16B/elem
    // = 4x the raw data, i.e. the paper's "about three times more memory
    // than may actually be required".
    const double ratio = static_cast<double>(stats.peak_device_bytes) /
                         static_cast<double>(stats.data_bytes);
    EXPECT_GT(ratio, 3.5);
    EXPECT_LT(ratio, 4.5);
}

TEST(StaSort, FootprintModelMatchesAllocatorPeak) {
    auto dev = make_device();
    auto ds = workload::make_dataset(64, 512, workload::Distribution::Uniform, 5);
    simt::DeviceBuffer<float> data(dev, ds.values.size());
    simt::copy_to_device(std::span<const float>(ds.values), data);
    const auto stats = sta::sta_sort_on_device(dev, data, ds.num_arrays, ds.array_size);
    EXPECT_EQ(stats.peak_device_bytes,
              sta::sta_footprint_bytes(ds.num_arrays, ds.array_size));
}

TEST(StaSort, RedundantPassCostsExtraTime) {
    auto ds = workload::make_dataset(20, 512, workload::Distribution::Uniform, 6);
    auto run = [&](bool redundant) {
        auto dev = make_device();
        auto copy = ds.values;
        StaOptions opts;
        opts.include_redundant_tag_sort = redundant;
        return sta_sort(dev, copy, ds.num_arrays, ds.array_size, opts);
    };
    const auto with = run(true);
    const auto without = run(false);
    EXPECT_GT(with.redundant_sort_ms, 0.0);
    EXPECT_EQ(without.redundant_sort_ms, 0.0);
    EXPECT_GT(with.modeled_ms, without.modeled_ms);
}

TEST(StaSort, StepBreakdownSumsToTotal) {
    auto dev = make_device();
    auto ds = workload::make_dataset(16, 400, workload::Distribution::Uniform, 7);
    const auto s = sta_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    EXPECT_NEAR(s.modeled_ms,
                s.tag_ms + s.convert_ms + s.redundant_sort_ms + s.value_sort_ms +
                    s.restore_sort_ms,
                1e-9);
    EXPECT_GT(s.value_sort_ms, 0.0);
    EXPECT_GT(s.restore_sort_ms, 0.0);
}

TEST(StaSort, EmptyInputsAreNoOps) {
    auto dev = make_device();
    std::vector<float> empty;
    EXPECT_NO_THROW(sta_sort(dev, empty, 0, 0));
}

TEST(StaSort, ReleasesAllDeviceMemory) {
    auto dev = make_device();
    auto ds = workload::make_dataset(10, 200, workload::Distribution::Uniform, 8);
    sta_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    EXPECT_EQ(dev.memory().bytes_in_use(), 0u);
}

TEST(StaSort, SingleArrayDegenerateCase) {
    auto dev = make_device();
    auto ds = workload::make_dataset(1, 1000, workload::Distribution::Reverse, 9);
    StaOptions opts;
    opts.validate = true;
    EXPECT_NO_THROW(sta_sort(dev, ds.values, 1, 1000, opts));
}

}  // namespace
