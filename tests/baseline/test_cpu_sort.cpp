#include "baseline/cpu_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/validate.hpp"
#include "workload/generators.hpp"

namespace {

TEST(CpuSort, SortsEveryRow) {
    auto ds = workload::make_dataset(30, 100, workload::Distribution::Uniform, 1);
    const auto before = ds.values;
    const double ms = baseline::cpu_sort_arrays(ds.values, ds.num_arrays, ds.array_size);
    EXPECT_GE(ms, 0.0);
    EXPECT_TRUE(gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size));
    EXPECT_TRUE(gas::all_arrays_permuted(before, ds.values, ds.num_arrays, ds.array_size));
}

TEST(CpuSort, RowsStayIndependent) {
    // Descending blocks: sorting must not move values across row boundaries.
    std::vector<float> data = {9, 8, 7, 3, 2, 1};
    baseline::cpu_sort_arrays(data, 2, 3);
    EXPECT_EQ(data, (std::vector<float>{7, 8, 9, 1, 2, 3}));
}

TEST(CpuSort, EmptyDataset) {
    std::vector<float> data;
    EXPECT_NO_THROW(baseline::cpu_sort_arrays(data, 0, 0));
}

}  // namespace
