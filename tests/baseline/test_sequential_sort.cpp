#include "baseline/sequential_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/gpu_array_sort.hpp"
#include "core/validate.hpp"
#include "workload/generators.hpp"

namespace {

simt::Device make_device() { return simt::Device(simt::tiny_device(256 << 20)); }

TEST(SequentialSort, SortsEveryRow) {
    auto dev = make_device();
    auto ds = workload::make_dataset(20, 500, workload::Distribution::Uniform, 1);
    const auto before = ds.values;
    baseline::sequential_sort(dev, ds.values, ds.num_arrays, ds.array_size);
    EXPECT_TRUE(gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size));
    EXPECT_TRUE(gas::all_arrays_permuted(before, ds.values, ds.num_arrays, ds.array_size));
}

TEST(SequentialSort, AgreesWithGpuArraySort) {
    auto ds = workload::make_dataset(8, 777, workload::Distribution::Normal, 2);
    auto a = ds.values;
    auto b = ds.values;
    {
        auto dev = make_device();
        baseline::sequential_sort(dev, a, ds.num_arrays, ds.array_size);
    }
    {
        auto dev = make_device();
        gas::gpu_array_sort(dev, b, ds.num_arrays, ds.array_size);
    }
    EXPECT_EQ(a, b);
}

TEST(SequentialSort, LaunchCountScalesWithArrays) {
    // The strawman's defining property: kernel launches grow linearly in N
    // (8 radix passes x 3 kernels per array, plus the two conversions).
    // Paper-faithful full-pass mode pins the count exactly; pruning would
    // make it data-dependent (max-key probe + skipped passes).
    auto dev = make_device();
    auto ds = workload::make_dataset(10, 300, workload::Distribution::Uniform, 3);
    const auto s = baseline::sequential_sort(dev, ds.values, ds.num_arrays, ds.array_size,
                                             thrustlite::RadixOptions{.prune_passes = false});
    EXPECT_EQ(s.kernel_launches, 10u * 24u + 2u);
}

TEST(SequentialSort, SlowerThanGpuArraySortInModel) {
    auto ds = workload::make_dataset(64, 1000, workload::Distribution::Uniform, 4);
    double seq_ms = 0.0;
    double gas_ms = 0.0;
    {
        auto dev = make_device();
        auto copy = ds.values;
        seq_ms = baseline::sequential_sort(dev, copy, ds.num_arrays, ds.array_size).modeled_ms;
    }
    {
        auto dev = make_device();
        auto copy = ds.values;
        gas_ms = gas::gpu_array_sort(dev, copy, ds.num_arrays, ds.array_size)
                     .modeled_kernel_ms();
    }
    EXPECT_GT(seq_ms, gas_ms);
}

TEST(SequentialSort, EmptyAndInvalidInputs) {
    auto dev = make_device();
    std::vector<float> empty;
    EXPECT_NO_THROW(baseline::sequential_sort(dev, empty, 0, 0));
    std::vector<float> small(5);
    EXPECT_THROW(baseline::sequential_sort(dev, small, 2, 5), std::invalid_argument);
}

}  // namespace
