#include "thrustlite/algorithms.hpp"

#include <gtest/gtest.h>

#include "workload/generators.hpp"

namespace {

simt::Device make_device() { return simt::Device(simt::tiny_device(64 << 20)); }

TEST(Algorithms, SequenceFillsIota) {
    auto dev = make_device();
    thrustlite::device_vector<std::uint32_t> v(dev, 10000);
    thrustlite::sequence(dev, v);
    const auto host = v.to_host();
    for (std::size_t i = 0; i < host.size(); ++i) ASSERT_EQ(host[i], i);
}

TEST(Algorithms, MakeTagsMatchesDefinition6) {
    auto dev = make_device();
    const std::size_t n = 37;   // deliberately not a tile multiple
    const std::size_t N = 113;
    thrustlite::device_vector<std::uint32_t> tags(dev, N * n);
    thrustlite::make_tags(dev, tags, n);
    const auto host = tags.to_host();
    for (std::size_t i = 0; i < host.size(); ++i) ASSERT_EQ(host[i], i / n) << i;
}

TEST(Algorithms, OrderedKeysRoundTripThroughDevice) {
    auto dev = make_device();
    const auto values = workload::make_values(5000, workload::Distribution::Uniform, 3);
    thrustlite::device_vector<std::uint32_t> keys(dev, values.size());
    thrustlite::to_ordered_keys(dev, values, keys);
    std::vector<float> back(values.size());
    thrustlite::from_ordered_keys(dev, keys, back);
    EXPECT_EQ(values, back);
}

TEST(Algorithms, InplaceConversionRoundTrips) {
    auto dev = make_device();
    const auto original = workload::make_values(4096 * 3 + 17, workload::Distribution::Normal, 4);
    simt::DeviceBuffer<float> buf(dev, original.size());
    simt::copy_to_device(std::span<const float>(original), buf);

    auto keys = thrustlite::to_ordered_inplace(dev, buf.span());
    EXPECT_EQ(keys.size(), original.size());
    thrustlite::from_ordered_inplace(dev, buf.span());

    std::vector<float> back(original.size());
    simt::copy_to_host(buf, std::span<float>(back));
    EXPECT_EQ(original, back);
}

TEST(Algorithms, ElementwiseKernelsReportCoalescedTraffic) {
    auto dev = make_device();
    thrustlite::device_vector<std::uint32_t> v(dev, 100000);
    dev.clear_kernel_log();
    thrustlite::sequence(dev, v);
    ASSERT_EQ(dev.kernel_log().size(), 1u);
    const auto& k = dev.kernel_log().front();
    EXPECT_EQ(k.totals.coalesced_bytes, 100000u * sizeof(std::uint32_t));
    EXPECT_EQ(k.totals.random_accesses, 0u);
}

TEST(Algorithms, EmptyInputsAreNoOps) {
    auto dev = make_device();
    thrustlite::device_vector<std::uint32_t> v;
    EXPECT_NO_THROW(thrustlite::sequence(dev, v));
    EXPECT_NO_THROW(thrustlite::to_ordered_inplace(dev, {}));
    EXPECT_TRUE(dev.kernel_log().empty());
}

}  // namespace
