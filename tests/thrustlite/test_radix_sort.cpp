#include "thrustlite/radix_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "thrustlite/algorithms.hpp"
#include "workload/generators.hpp"

namespace {

simt::Device make_device() { return simt::Device(simt::tiny_device(256 << 20)); }

std::vector<std::uint32_t> random_u32(std::size_t count, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<std::uint32_t> u;
    std::vector<std::uint32_t> v(count);
    for (auto& x : v) x = u(rng);
    return v;
}

TEST(RadixSort, SortsRandomKeys) {
    auto dev = make_device();
    auto host = random_u32(100000, 1);
    thrustlite::device_vector<std::uint32_t> keys(dev, host);
    thrustlite::stable_sort(keys);
    auto result = keys.to_host();
    std::sort(host.begin(), host.end());
    EXPECT_EQ(result, host);
}

TEST(RadixSort, SortsNonTileMultipleSizes) {
    auto dev = make_device();
    for (std::size_t count : {1u, 2u, 31u, 4095u, 4096u, 4097u, 10001u}) {
        auto host = random_u32(count, count);
        thrustlite::device_vector<std::uint32_t> keys(dev, host);
        thrustlite::stable_sort(keys);
        auto result = keys.to_host();
        std::sort(host.begin(), host.end());
        ASSERT_EQ(result, host) << "count=" << count;
    }
}

TEST(RadixSort, EmptyInputIsNoOp) {
    auto dev = make_device();
    thrustlite::device_vector<std::uint32_t> keys;
    const auto stats = thrustlite::stable_sort(keys);
    EXPECT_EQ(stats.passes, 0u);
}

TEST(RadixSort, ByKeyCarriesValues) {
    auto dev = make_device();
    auto host_keys = random_u32(50000, 2);
    // value i tracks original position; after the sort, keys[v[i]] order
    // must reproduce a stable argsort.
    thrustlite::device_vector<std::uint32_t> keys(dev, host_keys);
    thrustlite::device_vector<std::uint32_t> vals(dev, host_keys.size());
    thrustlite::sequence(dev, vals);
    thrustlite::stable_sort_by_key(keys, vals);

    const auto sorted_keys = keys.to_host();
    const auto perm = vals.to_host();
    EXPECT_TRUE(std::is_sorted(sorted_keys.begin(), sorted_keys.end()));
    for (std::size_t i = 0; i < perm.size(); ++i) {
        ASSERT_EQ(host_keys[perm[i]], sorted_keys[i]) << i;
    }
}

TEST(RadixSort, IsStable) {
    auto dev = make_device();
    // Few distinct keys, payload = original index: within equal keys the
    // payload must stay ascending.
    std::mt19937_64 rng(3);
    std::uniform_int_distribution<std::uint32_t> small(0, 7);
    std::vector<std::uint32_t> host_keys(30000);
    for (auto& k : host_keys) k = small(rng);

    thrustlite::device_vector<std::uint32_t> keys(dev, host_keys);
    thrustlite::device_vector<std::uint32_t> vals(dev, host_keys.size());
    thrustlite::sequence(dev, vals);
    thrustlite::stable_sort_by_key(keys, vals);

    const auto sorted_keys = keys.to_host();
    const auto perm = vals.to_host();
    for (std::size_t i = 0; i + 1 < perm.size(); ++i) {
        if (sorted_keys[i] == sorted_keys[i + 1]) {
            ASSERT_LT(perm[i], perm[i + 1]) << "stability violated at " << i;
        }
    }
}

TEST(RadixSort, MismatchedValueSizeThrows) {
    auto dev = make_device();
    thrustlite::device_vector<std::uint32_t> keys(dev, 100);
    thrustlite::device_vector<std::uint32_t> vals(dev, 50);
    EXPECT_THROW(thrustlite::stable_sort_by_key(dev, keys.span(), vals.span()),
                 simt::DeviceError);
}

TEST(RadixSort, RunsEightPassesAndFreesScratch) {
    auto dev = make_device();
    auto host = random_u32(20000, 4);
    thrustlite::device_vector<std::uint32_t> keys(dev, host);
    const std::size_t before = dev.memory().bytes_in_use();
    const auto stats = thrustlite::stable_sort(keys);
    EXPECT_EQ(stats.passes, 8u);
    EXPECT_GT(stats.scratch_bytes, host.size() * sizeof(std::uint32_t) - 1);
    EXPECT_EQ(dev.memory().bytes_in_use(), before);  // scratch released
}

TEST(RadixSort, ScratchMatchesCapacityModel) {
    auto dev = make_device();
    for (std::size_t count : {5000u, 100000u}) {
        thrustlite::device_vector<std::uint32_t> keys(dev, count);
        thrustlite::device_vector<std::uint32_t> vals(dev, count);
        const auto stats = thrustlite::stable_sort_by_key(keys, vals);
        EXPECT_EQ(stats.scratch_bytes, thrustlite::radix_scratch_bytes(count, true))
            << count;
    }
}

TEST(RadixSort, AlreadySortedAndReverseInputs) {
    auto dev = make_device();
    std::vector<std::uint32_t> asc(10000);
    std::iota(asc.begin(), asc.end(), 0u);
    std::vector<std::uint32_t> desc(asc.rbegin(), asc.rend());

    for (const auto& host : {asc, desc}) {
        thrustlite::device_vector<std::uint32_t> keys(dev, host);
        thrustlite::stable_sort(keys);
        EXPECT_EQ(keys.to_host(), asc);
    }
}

TEST(RadixSort, AllEqualKeysKeepValueOrder) {
    auto dev = make_device();
    std::vector<std::uint32_t> host_keys(9000, 0xDEADBEEF);
    thrustlite::device_vector<std::uint32_t> keys(dev, host_keys);
    thrustlite::device_vector<std::uint32_t> vals(dev, host_keys.size());
    thrustlite::sequence(dev, vals);
    thrustlite::stable_sort_by_key(keys, vals);
    const auto perm = vals.to_host();
    for (std::size_t i = 0; i < perm.size(); ++i) ASSERT_EQ(perm[i], i);
}

TEST(RadixSort, ExtremeKeyValues) {
    auto dev = make_device();
    std::vector<std::uint32_t> host = {0u, 0xFFFFFFFFu, 1u, 0xFFFFFFFEu, 0x80000000u,
                                       0x7FFFFFFFu};
    thrustlite::device_vector<std::uint32_t> keys(dev, host);
    thrustlite::stable_sort(keys);
    std::sort(host.begin(), host.end());
    EXPECT_EQ(keys.to_host(), host);
}

TEST(RadixSort, ReverseThreadOrderProducesSameOutput) {
    auto run = [](simt::ThreadOrder order) {
        simt::Device dev(simt::tiny_device(64 << 20));
        dev.set_thread_order(order);
        auto host = random_u32(25000, 6);
        thrustlite::device_vector<std::uint32_t> keys(dev, host);
        thrustlite::device_vector<std::uint32_t> vals(dev, host.size());
        thrustlite::sequence(dev, vals);
        thrustlite::stable_sort_by_key(keys, vals);
        return std::pair{keys.to_host(), vals.to_host()};
    };
    EXPECT_EQ(run(simt::ThreadOrder::Forward), run(simt::ThreadOrder::Reverse));
}

TEST(RadixSort, SortsOrderedFloatCodes) {
    auto dev = make_device();
    auto values = workload::make_values(60000, workload::Distribution::Normal, 7);
    // Negative floats included.
    for (std::size_t i = 0; i < values.size(); i += 3) values[i] = -values[i];

    simt::DeviceBuffer<float> buf(dev, values.size());
    simt::copy_to_device(std::span<const float>(values), buf);
    auto keys = thrustlite::to_ordered_inplace(dev, buf.span());
    thrustlite::stable_sort(dev, keys);
    thrustlite::from_ordered_inplace(dev, buf.span());

    std::vector<float> result(values.size());
    simt::copy_to_host(buf, std::span<float>(result));
    std::sort(values.begin(), values.end());
    EXPECT_EQ(result, values);
}

}  // namespace
