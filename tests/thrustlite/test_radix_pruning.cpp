// Key-range pass pruning: pruned sorts must be byte-identical (keys, payload
// order, stability) to the paper-faithful full-pass mode, executing only the
// passes the key range requires and copying back when that count is odd.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "simt/device.hpp"
#include "simt/device_buffer.hpp"
#include "thrustlite/radix_sort.hpp"

namespace {

constexpr thrustlite::RadixOptions kPruned{.prune_passes = true};
constexpr thrustlite::RadixOptions kFull{.prune_passes = false};

simt::Device make_device() { return simt::Device(simt::tiny_device(128 << 20)); }

template <typename K>
std::vector<K> random_keys(std::size_t count, K mask, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<K> v(count);
    for (auto& x : v) x = static_cast<K>(rng()) & mask;
    if (!v.empty()) v.front() = mask;  // pin the range so `needed` is deterministic
    return v;
}

/// Sorts a copy of `host` with the given options, returning (keys, stats).
template <typename K>
std::pair<std::vector<K>, thrustlite::RadixStats> sort_keys(
    const std::vector<K>& host, const thrustlite::RadixOptions& opts) {
    auto dev = make_device();
    simt::DeviceBuffer<K> keys(dev, host.size());
    simt::copy_to_device(std::span<const K>(host), keys);
    const auto stats = thrustlite::stable_sort(dev, keys.span(), opts);
    std::vector<K> out(host.size());
    simt::copy_to_host(keys, std::span<K>(out));
    return {out, stats};
}

/// Sorts (keys, iota payload) with the given options.
template <typename K>
std::tuple<std::vector<K>, std::vector<std::uint32_t>, thrustlite::RadixStats>
sort_pairs(const std::vector<K>& host, const thrustlite::RadixOptions& opts) {
    auto dev = make_device();
    simt::DeviceBuffer<K> keys(dev, host.size());
    simt::DeviceBuffer<std::uint32_t> vals(dev, host.size());
    simt::copy_to_device(std::span<const K>(host), keys);
    std::vector<std::uint32_t> iota(host.size());
    std::iota(iota.begin(), iota.end(), 0u);
    simt::copy_to_device(std::span<const std::uint32_t>(iota), vals);
    const auto stats = thrustlite::stable_sort_by_key(dev, keys.span(), vals.span(), opts);
    std::vector<K> k(host.size());
    std::vector<std::uint32_t> v(host.size());
    simt::copy_to_host(keys, std::span<K>(k));
    simt::copy_to_host(vals, std::span<std::uint32_t>(v));
    return {k, v, stats};
}

TEST(RadixPruning, AllEqualKeysExecuteZeroPasses) {
    const std::vector<std::uint32_t> host(10000, 0x1234ABCDu);
    const auto [keys, stats] = sort_keys(host, kPruned);
    EXPECT_EQ(stats.passes, 0u);
    EXPECT_EQ(stats.passes_skipped, 8u);
    EXPECT_FALSE(stats.copy_back);
    EXPECT_EQ(keys, host);
}

TEST(RadixPruning, AllZeroKeysExecuteZeroPasses) {
    const std::vector<std::uint32_t> host(5000, 0u);
    const auto [keys, stats] = sort_keys(host, kPruned);
    EXPECT_EQ(stats.passes, 0u);
    EXPECT_EQ(stats.passes_skipped, 8u);
    EXPECT_EQ(keys, host);
}

// The ISSUE acceptance case: 16-bit keys need 4 of 8 passes and no
// copy-back (even executed count), byte-identical to the full-pass sort.
TEST(RadixPruning, SixteenBitRangeExecutesFourPasses) {
    const auto host = random_keys<std::uint32_t>(30000, 0xFFFFu, 11);
    const auto [pruned, ps] = sort_keys(host, kPruned);
    const auto [full, fs] = sort_keys(host, kFull);
    EXPECT_EQ(ps.passes, 4u);
    EXPECT_EQ(ps.passes_skipped, 4u);
    EXPECT_FALSE(ps.copy_back);
    EXPECT_EQ(fs.passes, 8u);
    EXPECT_EQ(fs.passes_skipped, 0u);
    EXPECT_EQ(pruned, full);
}

TEST(RadixPruning, EightBitRangeExecutesTwoPasses) {
    const auto host = random_keys<std::uint32_t>(20000, 0xFFu, 12);
    const auto [pruned, ps] = sort_keys(host, kPruned);
    EXPECT_EQ(ps.passes, 2u);
    EXPECT_EQ(ps.passes_skipped, 6u);
    EXPECT_FALSE(ps.copy_back);
    EXPECT_EQ(pruned, sort_keys(host, kFull).first);
}

TEST(RadixPruning, TwentyFourBitRangeExecutesSixPasses) {
    const auto host = random_keys<std::uint32_t>(20000, 0xFFFFFFu, 13);
    const auto [pruned, ps] = sort_keys(host, kPruned);
    EXPECT_EQ(ps.passes, 6u);
    EXPECT_EQ(ps.passes_skipped, 2u);
    EXPECT_FALSE(ps.copy_back);
    EXPECT_EQ(pruned, sort_keys(host, kFull).first);
}

TEST(RadixPruning, OddPassCountCopiesBack) {
    // 12-bit keys: 3 executed passes leave the result in the alternate
    // buffer; the copy-back kernel must bring it home.
    const auto host = random_keys<std::uint32_t>(20000, 0xFFFu, 14);
    const auto [keys, vals, stats] = sort_pairs(host, kPruned);
    EXPECT_EQ(stats.passes, 3u);
    EXPECT_EQ(stats.passes_skipped, 5u);
    EXPECT_TRUE(stats.copy_back);
    const auto [fkeys, fvals, fstats] = sort_pairs(host, kFull);
    EXPECT_FALSE(fstats.copy_back);
    EXPECT_EQ(keys, fkeys);
    EXPECT_EQ(vals, fvals);
}

TEST(RadixPruning, CopyBackKernelAppearsInLog) {
    auto dev = make_device();
    auto host = random_keys<std::uint32_t>(9000, 0xFFFu, 15);
    simt::DeviceBuffer<std::uint32_t> keys(dev, host.size());
    simt::copy_to_device(std::span<const std::uint32_t>(host), keys);
    thrustlite::stable_sort(dev, keys.span(), kPruned);
    const auto& log = dev.kernel_log();
    EXPECT_TRUE(std::any_of(log.begin(), log.end(),
                            [](const auto& k) { return k.name == "radix.copy_back"; }));
}

TEST(RadixPruning, SingleHighBitSkipsLowDigitPasses) {
    // Keys in {0, 0x80000000}: the max key forces all 8 passes into range,
    // but the histogram proves passes 0-6 are identity permutations — only
    // the top-digit pass scatters (odd count -> copy-back).
    std::vector<std::uint32_t> host(16384);
    std::mt19937_64 rng(16);
    for (auto& x : host) x = (rng() & 1) ? 0x80000000u : 0u;
    host.front() = 0x80000000u;
    const auto [keys, vals, stats] = sort_pairs(host, kPruned);
    EXPECT_EQ(stats.passes, 1u);
    EXPECT_EQ(stats.passes_skipped, 7u);
    EXPECT_TRUE(stats.copy_back);
    const auto [fkeys, fvals, fstats] = sort_pairs(host, kFull);
    EXPECT_EQ(keys, fkeys);
    EXPECT_EQ(vals, fvals);
}

TEST(RadixPruning, FullRangeKeysRunAllPasses) {
    const auto host = random_keys<std::uint32_t>(30000, 0xFFFFFFFFu, 17);
    const auto [pruned, ps] = sort_keys(host, kPruned);
    EXPECT_EQ(ps.passes, 8u);
    EXPECT_EQ(ps.passes_skipped, 0u);
    EXPECT_FALSE(ps.copy_back);
    EXPECT_EQ(pruned, sort_keys(host, kFull).first);
}

TEST(RadixPruning, U64SixteenBitRangeSkipsTwelvePasses) {
    const auto host = random_keys<std::uint64_t>(20000, std::uint64_t{0xFFFF}, 18);
    const auto [pruned, ps] = sort_keys(host, kPruned);
    EXPECT_EQ(ps.passes, 4u);
    EXPECT_EQ(ps.passes_skipped, 12u);
    EXPECT_FALSE(ps.copy_back);
    EXPECT_EQ(pruned, sort_keys(host, kFull).first);
}

TEST(RadixPruning, U64FullRangeRunsSixteenPasses) {
    const auto host = random_keys<std::uint64_t>(20000, ~std::uint64_t{0}, 19);
    const auto [pruned, ps] = sort_keys(host, kPruned);
    EXPECT_EQ(ps.passes, 16u);
    EXPECT_EQ(ps.passes_skipped, 0u);
    EXPECT_EQ(pruned, sort_keys(host, kFull).first);
}

TEST(RadixPruning, StabilityMatchesStdStableSort) {
    // Duplicate-heavy keys with an iota payload: payload order within equal
    // keys must match std::stable_sort exactly, pruned or not.
    const auto host = random_keys<std::uint32_t>(20000, 0xFFu, 20);
    const auto [keys, vals, stats] = sort_pairs(host, kPruned);
    EXPECT_EQ(stats.passes, 2u);
    std::vector<std::uint32_t> order(host.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) { return host[a] < host[b]; });
    EXPECT_EQ(vals, order);
    for (std::size_t i = 0; i < host.size(); ++i) EXPECT_EQ(keys[i], host[vals[i]]);
}

TEST(RadixPruning, RandomizedSweepMatchesFullPassMode) {
    const std::size_t sizes[] = {1, 2, 31, 4095, 4096, 4097, 12289};
    const std::uint32_t masks[] = {0xFu, 0xFFFu, 0xFFFFFu, 0xFFFFFFFFu};
    std::uint64_t seed = 100;
    for (const std::size_t n : sizes) {
        for (const std::uint32_t mask : masks) {
            const auto host = random_keys<std::uint32_t>(n, mask, seed++);
            const auto [pk, pv, ps] = sort_pairs(host, kPruned);
            const auto [fk, fv, fs] = sort_pairs(host, kFull);
            ASSERT_EQ(pk, fk) << "n=" << n << " mask=" << mask;
            ASSERT_EQ(pv, fv) << "n=" << n << " mask=" << mask;
            EXPECT_EQ(ps.passes + ps.passes_skipped, fs.passes) << "n=" << n;
        }
    }
}

TEST(RadixPruning, PruningLowersModeledCostOnNarrowKeys) {
    const auto host = random_keys<std::uint32_t>(30000, 0xFFFFu, 21);
    const auto pruned = sort_keys(host, kPruned).second;
    const auto full = sort_keys(host, kFull).second;
    EXPECT_LT(pruned.modeled_ms, full.modeled_ms);
}

TEST(RadixPruning, ScratchFootprintIndependentOfPruning) {
    // Table 1 relies on this: pruning changes pass count, never allocation.
    const auto host = random_keys<std::uint32_t>(30000, 0xFFFFu, 22);
    const auto pruned = sort_keys(host, kPruned).second;
    const auto full = sort_keys(host, kFull).second;
    EXPECT_EQ(pruned.scratch_bytes, full.scratch_bytes);
    EXPECT_EQ(pruned.scratch_bytes,
              thrustlite::radix_scratch_bytes(host.size(), /*with_values=*/false));
}

}  // namespace
