#include "thrustlite/device_vector.hpp"

#include <gtest/gtest.h>

namespace {

simt::Device make_device() { return simt::Device(simt::tiny_device(16 << 20)); }

TEST(DeviceVector, DefaultIsEmpty) {
    thrustlite::device_vector<float> v;
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.size(), 0u);
    EXPECT_TRUE(v.to_host().empty());
}

TEST(DeviceVector, ConstructFromHostVector) {
    auto dev = make_device();
    const std::vector<std::uint32_t> host = {5, 4, 3, 2, 1};
    thrustlite::device_vector<std::uint32_t> v(dev, host);
    EXPECT_EQ(v.size(), 5u);
    EXPECT_EQ(v.to_host(), host);
}

TEST(DeviceVector, UninitializedConstructionAllocatesOnly) {
    auto dev = make_device();
    thrustlite::device_vector<float> v(dev, 1024);  // 4 KB, a whole alignment unit
    EXPECT_EQ(dev.memory().bytes_in_use(), 1024 * sizeof(float));
    EXPECT_EQ(v.size(), 1024u);
}

TEST(DeviceVector, SpanWritesAreVisibleToHostCopy) {
    auto dev = make_device();
    thrustlite::device_vector<float> v(dev, 3);
    v.span()[0] = 1.5f;
    v.span()[1] = 2.5f;
    v.span()[2] = 3.5f;
    EXPECT_EQ(v.to_host(), (std::vector<float>{1.5f, 2.5f, 3.5f}));
}

TEST(DeviceVector, ReleaseFreesDeviceMemory) {
    auto dev = make_device();
    thrustlite::device_vector<float> v(dev, 100);
    v.release();
    EXPECT_EQ(dev.memory().bytes_in_use(), 0u);
    EXPECT_TRUE(v.empty());
}

TEST(DeviceVector, OutOfMemoryPropagates) {
    simt::Device dev(simt::tiny_device(1024));
    EXPECT_THROW(thrustlite::device_vector<float>(dev, 1 << 20), simt::DeviceBadAlloc);
}

}  // namespace
