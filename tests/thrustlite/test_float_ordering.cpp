#include "thrustlite/float_ordering.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>
#include <vector>

namespace {

using thrustlite::float_to_ordered;
using thrustlite::ordered_to_float;

TEST(FloatOrdering, RoundTripsExactly) {
    const std::vector<float> values = {0.0f,
                                       -0.0f,
                                       1.0f,
                                       -1.0f,
                                       3.14159f,
                                       -2.71828f,
                                       std::numeric_limits<float>::max(),
                                       std::numeric_limits<float>::lowest(),
                                       std::numeric_limits<float>::min(),
                                       std::numeric_limits<float>::denorm_min(),
                                       std::numeric_limits<float>::infinity(),
                                       -std::numeric_limits<float>::infinity()};
    for (float f : values) {
        EXPECT_EQ(std::bit_cast<std::uint32_t>(ordered_to_float(float_to_ordered(f))),
                  std::bit_cast<std::uint32_t>(f))
            << "value " << f;
    }
}

TEST(FloatOrdering, PreservesStrictOrder) {
    const std::vector<float> ascending = {-std::numeric_limits<float>::infinity(),
                                          std::numeric_limits<float>::lowest(),
                                          -1e10f,
                                          -1.0f,
                                          -1e-30f,
                                          0.0f,
                                          1e-30f,
                                          1.0f,
                                          1e10f,
                                          std::numeric_limits<float>::max(),
                                          std::numeric_limits<float>::infinity()};
    for (std::size_t i = 0; i + 1 < ascending.size(); ++i) {
        EXPECT_LT(float_to_ordered(ascending[i]), float_to_ordered(ascending[i + 1]))
            << ascending[i] << " vs " << ascending[i + 1];
    }
}

TEST(FloatOrdering, NegativeZeroSortsBelowPositiveZero) {
    EXPECT_LT(float_to_ordered(-0.0f), float_to_ordered(0.0f));
}

TEST(FloatOrdering, RandomizedOrderEquivalence) {
    std::mt19937 rng(99);
    std::uniform_real_distribution<float> u(-1e20f, 1e20f);
    for (int trial = 0; trial < 2000; ++trial) {
        const float a = u(rng);
        const float b = u(rng);
        EXPECT_EQ(a < b, float_to_ordered(a) < float_to_ordered(b)) << a << " " << b;
    }
}

TEST(FloatOrdering, SortingCodesSortsFloats) {
    std::mt19937 rng(5);
    std::uniform_real_distribution<float> u(-1e6f, 1e6f);
    std::vector<float> values(500);
    for (auto& v : values) v = u(rng);

    std::vector<std::uint32_t> codes(values.size());
    std::transform(values.begin(), values.end(), codes.begin(), float_to_ordered);
    std::sort(codes.begin(), codes.end());
    std::vector<float> decoded(codes.size());
    std::transform(codes.begin(), codes.end(), decoded.begin(), ordered_to_float);

    std::sort(values.begin(), values.end());
    EXPECT_EQ(values, decoded);
}

}  // namespace
