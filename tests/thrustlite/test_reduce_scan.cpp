#include "thrustlite/reduce_scan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "simt/device_buffer.hpp"
#include "workload/generators.hpp"

namespace {

simt::Device make_device() { return simt::Device(simt::tiny_device(128 << 20)); }

TEST(ReduceScan, SumMatchesHost) {
    auto dev = make_device();
    const auto v = workload::make_values(50000, workload::Distribution::Uniform, 1);
    simt::DeviceBuffer<float> buf(dev, v.size());
    simt::copy_to_device(std::span<const float>(v), buf);

    double expected = 0.0;
    for (float x : v) expected += x;
    EXPECT_NEAR(thrustlite::reduce_sum(dev, buf.span()), expected,
                std::abs(expected) * 1e-5);
}

TEST(ReduceScan, SumOfEmptyIsZero) {
    auto dev = make_device();
    EXPECT_EQ(thrustlite::reduce_sum(dev, {}), 0.0);
}

TEST(ReduceScan, MinMaxMatchHost) {
    auto dev = make_device();
    auto v = workload::make_values(30000, workload::Distribution::Normal, 2);
    v[12345] = -99.0f;
    v[23456] = 1e30f;
    simt::DeviceBuffer<float> buf(dev, v.size());
    simt::copy_to_device(std::span<const float>(v), buf);
    EXPECT_EQ(thrustlite::reduce_min(dev, buf.span()), -99.0f);
    EXPECT_EQ(thrustlite::reduce_max(dev, buf.span()), 1e30f);
}

TEST(ReduceScan, MinMaxOfEmptyThrows) {
    auto dev = make_device();
    EXPECT_THROW((void)thrustlite::reduce_min(dev, {}), std::invalid_argument);
    EXPECT_THROW((void)thrustlite::reduce_max(dev, {}), std::invalid_argument);
}

TEST(ReduceScan, CountLessEqual) {
    auto dev = make_device();
    std::vector<float> v(10000);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<float>(i);
    simt::DeviceBuffer<float> buf(dev, v.size());
    simt::copy_to_device(std::span<const float>(v), buf);
    EXPECT_EQ(thrustlite::count_less_equal(dev, buf.span(), 4999.5f), 5000u);
    EXPECT_EQ(thrustlite::count_less_equal(dev, buf.span(), -1.0f), 0u);
    EXPECT_EQ(thrustlite::count_less_equal(dev, buf.span(), 1e9f), 10000u);
}

TEST(ReduceScan, ExclusiveScanMatchesHost) {
    auto dev = make_device();
    std::mt19937 rng(3);
    std::uniform_int_distribution<std::uint32_t> u(0, 100);
    std::vector<std::uint32_t> in(20000);
    for (auto& x : in) x = u(rng);

    simt::DeviceBuffer<std::uint32_t> din(dev, in.size());
    simt::DeviceBuffer<std::uint32_t> dout(dev, in.size());
    simt::copy_to_device(std::span<const std::uint32_t>(in), din);
    thrustlite::exclusive_scan(dev, din.span(), dout.span());

    std::vector<std::uint32_t> expected(in.size());
    std::exclusive_scan(in.begin(), in.end(), expected.begin(), 0u);
    const auto result = dout.span();
    for (std::size_t i = 0; i < in.size(); ++i) ASSERT_EQ(result[i], expected[i]) << i;
}

TEST(ReduceScan, ExclusiveScanAliasedInOut) {
    auto dev = make_device();
    std::vector<std::uint32_t> in(9000, 1);
    simt::DeviceBuffer<std::uint32_t> buf(dev, in.size());
    simt::copy_to_device(std::span<const std::uint32_t>(in), buf);
    thrustlite::exclusive_scan(dev, buf.span(), buf.span());
    const auto result = buf.span();
    for (std::size_t i = 0; i < in.size(); ++i) ASSERT_EQ(result[i], i) << i;
}

TEST(ReduceScan, ExclusiveScanNonTileSizes) {
    auto dev = make_device();
    for (std::size_t count : {1u, 4095u, 4096u, 4097u, 12289u}) {
        std::vector<std::uint32_t> in(count, 2);
        simt::DeviceBuffer<std::uint32_t> din(dev, count);
        simt::DeviceBuffer<std::uint32_t> dout(dev, count);
        simt::copy_to_device(std::span<const std::uint32_t>(in), din);
        thrustlite::exclusive_scan(dev, din.span(), dout.span());
        const auto r = dout.span();
        for (std::size_t i = 0; i < count; ++i) ASSERT_EQ(r[i], 2 * i) << count << ":" << i;
    }
}

TEST(ReduceScan, GatherPermutes) {
    auto dev = make_device();
    const std::size_t count = 10000;
    std::vector<float> src(count);
    for (std::size_t i = 0; i < count; ++i) src[i] = static_cast<float>(i) * 0.5f;
    std::vector<std::uint32_t> idx(count);
    std::iota(idx.begin(), idx.end(), 0u);
    std::mt19937 rng(4);
    std::shuffle(idx.begin(), idx.end(), rng);

    simt::DeviceBuffer<float> dsrc(dev, count);
    simt::DeviceBuffer<float> ddst(dev, count);
    simt::DeviceBuffer<std::uint32_t> didx(dev, count);
    simt::copy_to_device(std::span<const float>(src), dsrc);
    simt::copy_to_device(std::span<const std::uint32_t>(idx), didx);
    thrustlite::gather(dev, didx.span(), dsrc.span(), ddst.span());

    const auto r = ddst.span();
    for (std::size_t i = 0; i < count; ++i) ASSERT_EQ(r[i], src[idx[i]]) << i;
}

TEST(ReduceScan, FillSetsEveryElement) {
    auto dev = make_device();
    simt::DeviceBuffer<float> buf(dev, 12345);
    thrustlite::fill(dev, buf.span(), 2.5f);
    for (float x : buf.span()) ASSERT_EQ(x, 2.5f);
}

TEST(ReduceScan, UndersizedOutputsThrow) {
    auto dev = make_device();
    simt::DeviceBuffer<std::uint32_t> in(dev, 100);
    simt::DeviceBuffer<std::uint32_t> out(dev, 50);
    EXPECT_THROW(thrustlite::exclusive_scan(dev, in.span(), out.span()),
                 std::invalid_argument);
    simt::DeviceBuffer<float> src(dev, 100);
    simt::DeviceBuffer<float> dst(dev, 50);
    EXPECT_THROW(thrustlite::gather(dev, in.span(), src.span(), dst.span()),
                 std::invalid_argument);
}

TEST(ReduceScan, ReductionsReportTraffic) {
    auto dev = make_device();
    simt::DeviceBuffer<float> buf(dev, 100000);
    thrustlite::fill(dev, buf.span(), 1.0f);
    dev.clear_kernel_log();
    (void)thrustlite::reduce_sum(dev, buf.span());
    ASSERT_FALSE(dev.kernel_log().empty());
    EXPECT_GE(dev.kernel_log().front().totals.coalesced_bytes, 100000u * sizeof(float));
}

}  // namespace
