// Parameterized property sweep for the radix sort: every (size, pattern)
// combination must produce exactly std::stable_sort's result on key-value
// pairs.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "thrustlite/algorithms.hpp"
#include "thrustlite/radix_sort.hpp"

namespace {

enum class Pattern { Random, Sorted, Reverse, FewDistinct, AllZero, HighBitsOnly, LowBitsOnly };

const char* pattern_name(Pattern p) {
    switch (p) {
        case Pattern::Random: return "Random";
        case Pattern::Sorted: return "Sorted";
        case Pattern::Reverse: return "Reverse";
        case Pattern::FewDistinct: return "FewDistinct";
        case Pattern::AllZero: return "AllZero";
        case Pattern::HighBitsOnly: return "HighBitsOnly";
        case Pattern::LowBitsOnly: return "LowBitsOnly";
    }
    return "?";
}

std::vector<std::uint32_t> make_keys(Pattern p, std::size_t count, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<std::uint32_t> keys(count);
    switch (p) {
        case Pattern::Random:
            for (auto& k : keys) k = static_cast<std::uint32_t>(rng());
            break;
        case Pattern::Sorted:
            std::iota(keys.begin(), keys.end(), 0u);
            break;
        case Pattern::Reverse:
            for (std::size_t i = 0; i < count; ++i) {
                keys[i] = static_cast<std::uint32_t>(count - i);
            }
            break;
        case Pattern::FewDistinct:
            for (auto& k : keys) k = static_cast<std::uint32_t>(rng() % 3);
            break;
        case Pattern::AllZero:
            break;  // zeros already
        case Pattern::HighBitsOnly:
            for (auto& k : keys) k = static_cast<std::uint32_t>(rng()) & 0xFF000000u;
            break;
        case Pattern::LowBitsOnly:
            for (auto& k : keys) k = static_cast<std::uint32_t>(rng()) & 0x000000FFu;
            break;
    }
    return keys;
}

class RadixProperty
    : public ::testing::TestWithParam<std::tuple<Pattern, std::size_t>> {};

TEST_P(RadixProperty, MatchesStableSortOnPairs) {
    const auto [pattern, count] = GetParam();
    simt::Device dev(simt::tiny_device(64 << 20));

    const auto host_keys = make_keys(pattern, count, count * 7 + 1);
    thrustlite::device_vector<std::uint32_t> keys(dev, host_keys);
    thrustlite::device_vector<std::uint32_t> vals(dev, count);
    thrustlite::sequence(dev, vals);
    thrustlite::stable_sort_by_key(keys, vals);

    // Oracle: stable argsort.
    std::vector<std::uint32_t> order(count);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
        return host_keys[a] < host_keys[b];
    });

    const auto sorted_keys = keys.to_host();
    const auto perm = vals.to_host();
    for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(perm[i], order[i]) << "position " << i;
        ASSERT_EQ(sorted_keys[i], host_keys[order[i]]) << "position " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RadixProperty,
    ::testing::Combine(::testing::Values(Pattern::Random, Pattern::Sorted, Pattern::Reverse,
                                         Pattern::FewDistinct, Pattern::AllZero,
                                         Pattern::HighBitsOnly, Pattern::LowBitsOnly),
                       ::testing::Values(1u, 255u, 4096u, 5000u)),
    [](const auto& pinfo) {
        return std::string(pattern_name(std::get<0>(pinfo.param))) + "_" +
               std::to_string(std::get<1>(pinfo.param));
    });

}  // namespace
