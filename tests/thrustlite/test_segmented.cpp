#include "thrustlite/segmented.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "simt/device_buffer.hpp"
#include "workload/generators.hpp"

namespace {

simt::Device make_device() { return simt::Device(simt::tiny_device(64 << 20)); }

TEST(Segmented, StatsMatchHostPerRow) {
    auto dev = make_device();
    const auto ds = workload::make_dataset(25, 333, workload::Distribution::Normal, 1);
    simt::DeviceBuffer<float> buf(dev, ds.values.size());
    simt::copy_to_device(std::span<const float>(ds.values), buf);

    const auto stats =
        thrustlite::segmented_stats(dev, buf.span(), ds.num_arrays, ds.array_size);
    ASSERT_EQ(stats.size(), ds.num_arrays);
    for (std::size_t a = 0; a < ds.num_arrays; ++a) {
        const float* row = ds.array(a);
        EXPECT_EQ(stats[a].min, *std::min_element(row, row + ds.array_size)) << a;
        EXPECT_EQ(stats[a].max, *std::max_element(row, row + ds.array_size)) << a;
        double sum = 0.0;
        for (std::size_t i = 0; i < ds.array_size; ++i) sum += row[i];
        EXPECT_NEAR(stats[a].sum, sum, std::abs(sum) * 1e-12) << a;
    }
}

TEST(Segmented, RowsShorterThanBlock) {
    auto dev = make_device();
    std::vector<float> data = {3, 1, 2, 9, 7, 8};  // two rows of 3
    simt::DeviceBuffer<float> buf(dev, data.size());
    simt::copy_to_device(std::span<const float>(data), buf);
    const auto stats = thrustlite::segmented_stats(dev, buf.span(), 2, 3);
    EXPECT_EQ(stats[0].min, 1.0f);
    EXPECT_EQ(stats[0].max, 3.0f);
    EXPECT_EQ(stats[1].min, 7.0f);
    EXPECT_DOUBLE_EQ(stats[1].sum, 24.0);
}

TEST(Segmented, EmptyInputs) {
    auto dev = make_device();
    EXPECT_TRUE(thrustlite::segmented_stats(dev, {}, 0, 0).empty());
    EXPECT_TRUE(thrustlite::segmented_is_sorted(dev, {}, 0, 0).empty());
}

TEST(Segmented, IsSortedFlagsPerRow) {
    auto dev = make_device();
    std::vector<float> data = {1, 2, 3,   // sorted
                               3, 2, 1,   // reverse
                               5, 5, 5};  // constant (sorted)
    simt::DeviceBuffer<float> buf(dev, data.size());
    simt::copy_to_device(std::span<const float>(data), buf);
    const auto flags = thrustlite::segmented_is_sorted(dev, buf.span(), 3, 3);
    ASSERT_EQ(flags.size(), 3u);
    EXPECT_TRUE(flags[0]);
    EXPECT_FALSE(flags[1]);
    EXPECT_TRUE(flags[2]);
}

TEST(Segmented, SingleElementRowsAreSorted) {
    auto dev = make_device();
    std::vector<float> data = {5, 1, 9};
    simt::DeviceBuffer<float> buf(dev, data.size());
    simt::copy_to_device(std::span<const float>(data), buf);
    const auto flags = thrustlite::segmented_is_sorted(dev, buf.span(), 3, 1);
    for (bool f : flags) EXPECT_TRUE(f);
}

TEST(Segmented, LongRowsUseStridedThreads) {
    auto dev = make_device();
    const auto ds = workload::make_dataset(3, 10000, workload::Distribution::Sorted, 2);
    simt::DeviceBuffer<float> buf(dev, ds.values.size());
    simt::copy_to_device(std::span<const float>(ds.values), buf);
    const auto flags = thrustlite::segmented_is_sorted(dev, buf.span(), 3, 10000);
    for (bool f : flags) EXPECT_TRUE(f);
}

}  // namespace
