// 64-bit radix sort and the double<->ordered-u64 transform.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <random>

#include "simt/device_buffer.hpp"
#include "thrustlite/float_ordering.hpp"
#include "thrustlite/radix_sort.hpp"

namespace {

simt::Device make_device() { return simt::Device(simt::tiny_device(128 << 20)); }

std::vector<std::uint64_t> random_u64(std::size_t count, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<std::uint64_t> v(count);
    for (auto& x : v) x = rng();
    return v;
}

TEST(Radix64, SortsRandomKeys) {
    auto dev = make_device();
    auto host = random_u64(60000, 1);
    simt::DeviceBuffer<std::uint64_t> keys(dev, host.size());
    simt::copy_to_device(std::span<const std::uint64_t>(host), keys);
    const auto stats = thrustlite::stable_sort(dev, keys.span());
    EXPECT_EQ(stats.passes, 16u);  // 64 bits / 4-bit digits
    std::sort(host.begin(), host.end());
    const auto result = keys.span();
    for (std::size_t i = 0; i < host.size(); ++i) ASSERT_EQ(result[i], host[i]) << i;
}

TEST(Radix64, StableByKeyCarriesPayload) {
    auto dev = make_device();
    std::mt19937_64 rng(2);
    std::vector<std::uint64_t> host_keys(20000);
    for (auto& k : host_keys) k = rng() % 16;  // heavy duplication
    simt::DeviceBuffer<std::uint64_t> keys(dev, host_keys.size());
    simt::DeviceBuffer<std::uint32_t> vals(dev, host_keys.size());
    simt::copy_to_device(std::span<const std::uint64_t>(host_keys), keys);
    std::vector<std::uint32_t> iota(host_keys.size());
    std::iota(iota.begin(), iota.end(), 0u);
    simt::copy_to_device(std::span<const std::uint32_t>(iota), vals);

    thrustlite::stable_sort_by_key(dev, keys.span(), vals.span());

    const auto k = keys.span();
    const auto v = vals.span();
    for (std::size_t i = 0; i + 1 < host_keys.size(); ++i) {
        ASSERT_LE(k[i], k[i + 1]);
        if (k[i] == k[i + 1]) {
            ASSERT_LT(v[i], v[i + 1]) << "stability violated at " << i;
        }
        ASSERT_EQ(host_keys[v[i]], k[i]);
    }
}

TEST(Radix64, HighBitsDecideOrder) {
    auto dev = make_device();
    std::vector<std::uint64_t> host = {0xFFFFFFFF00000000ull, 0x00000000FFFFFFFFull,
                                       0x8000000000000000ull, 1ull, 0ull,
                                       std::numeric_limits<std::uint64_t>::max()};
    simt::DeviceBuffer<std::uint64_t> keys(dev, host.size());
    simt::copy_to_device(std::span<const std::uint64_t>(host), keys);
    thrustlite::stable_sort(dev, keys.span());
    std::sort(host.begin(), host.end());
    const auto result = keys.span();
    for (std::size_t i = 0; i < host.size(); ++i) EXPECT_EQ(result[i], host[i]);
}

TEST(DoubleOrdering, RoundTripsAndPreservesOrder) {
    const std::vector<double> values = {-std::numeric_limits<double>::infinity(),
                                        std::numeric_limits<double>::lowest(),
                                        -1e300,
                                        -1.0,
                                        -1e-300,
                                        -0.0,
                                        0.0,
                                        1e-300,
                                        1.0,
                                        1e300,
                                        std::numeric_limits<double>::max(),
                                        std::numeric_limits<double>::infinity()};
    for (std::size_t i = 0; i < values.size(); ++i) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(
                      thrustlite::ordered_to_double(thrustlite::double_to_ordered(values[i]))),
                  std::bit_cast<std::uint64_t>(values[i]));
        if (i + 1 < values.size()) {
            EXPECT_LT(thrustlite::double_to_ordered(values[i]),
                      thrustlite::double_to_ordered(values[i + 1]))
                << values[i] << " vs " << values[i + 1];
        }
    }
}

TEST(DoubleOrdering, SortingCodesSortsDoubles) {
    auto dev = make_device();
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<double> u(-1e12, 1e12);
    std::vector<double> values(30000);
    for (auto& v : values) v = u(rng);

    std::vector<std::uint64_t> codes(values.size());
    std::transform(values.begin(), values.end(), codes.begin(),
                   thrustlite::double_to_ordered);
    simt::DeviceBuffer<std::uint64_t> keys(dev, codes.size());
    simt::copy_to_device(std::span<const std::uint64_t>(codes), keys);
    thrustlite::stable_sort(dev, keys.span());

    std::vector<double> decoded(codes.size());
    const auto k = keys.span();
    for (std::size_t i = 0; i < codes.size(); ++i) {
        decoded[i] = thrustlite::ordered_to_double(k[i]);
    }
    std::sort(values.begin(), values.end());
    EXPECT_EQ(decoded, values);
}

TEST(Radix64, ScratchIsDoubleWidth) {
    auto dev = make_device();
    auto host = random_u64(10000, 3);
    simt::DeviceBuffer<std::uint64_t> keys(dev, host.size());
    simt::copy_to_device(std::span<const std::uint64_t>(host), keys);
    const std::size_t before = dev.memory().bytes_in_use();
    const auto stats = thrustlite::stable_sort(dev, keys.span());
    EXPECT_GE(stats.scratch_bytes, host.size() * sizeof(std::uint64_t));
    EXPECT_EQ(dev.memory().bytes_in_use(), before);  // released
}

TEST(Radix64, ScratchModelMatchesKeyWidth) {
    // radix_scratch_bytes once hardcoded 4-byte keys; the model must track
    // the actual allocation for 8-byte keys, with and without payload.
    auto dev = make_device();
    const std::size_t count = 10000;
    auto host = random_u64(count, 4);
    {
        simt::DeviceBuffer<std::uint64_t> keys(dev, count);
        simt::copy_to_device(std::span<const std::uint64_t>(host), keys);
        const auto stats = thrustlite::stable_sort(dev, keys.span());
        EXPECT_EQ(stats.scratch_bytes,
                  thrustlite::radix_scratch_bytes(count, false, sizeof(std::uint64_t)));
    }
    {
        simt::DeviceBuffer<std::uint64_t> keys(dev, count);
        simt::DeviceBuffer<std::uint32_t> vals(dev, count);
        simt::copy_to_device(std::span<const std::uint64_t>(host), keys);
        std::vector<std::uint32_t> iota(count);
        std::iota(iota.begin(), iota.end(), 0u);
        simt::copy_to_device(std::span<const std::uint32_t>(iota), vals);
        const auto stats = thrustlite::stable_sort_by_key(dev, keys.span(), vals.span());
        EXPECT_EQ(stats.scratch_bytes,
                  thrustlite::radix_scratch_bytes(count, true, sizeof(std::uint64_t)));
        // The default key width stays u32 so existing callers are unchanged.
        EXPECT_EQ(thrustlite::radix_scratch_bytes(count, true),
                  thrustlite::radix_scratch_bytes(count, true, sizeof(std::uint32_t)));
    }
}

}  // namespace
