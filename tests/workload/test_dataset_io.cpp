#include "workload/dataset_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

TEST(DatasetIo, RoundTripsThroughStream) {
    const auto ds = workload::make_dataset(17, 33, workload::Distribution::Normal, 9);
    std::stringstream ss;
    workload::write_dataset(ss, ds);
    const auto back = workload::read_dataset(ss);
    EXPECT_EQ(back.num_arrays, ds.num_arrays);
    EXPECT_EQ(back.array_size, ds.array_size);
    EXPECT_EQ(back.values, ds.values);
}

TEST(DatasetIo, RoundTripsThroughFile) {
    const auto ds = workload::make_dataset(5, 100, workload::Distribution::Uniform, 10);
    const std::string path = ::testing::TempDir() + "/gas_test.gad";
    workload::write_dataset_file(path, ds);
    const auto back = workload::read_dataset_file(path);
    EXPECT_EQ(back.values, ds.values);
}

TEST(DatasetIo, EmptyDataset) {
    workload::Dataset empty;
    std::stringstream ss;
    workload::write_dataset(ss, empty);
    const auto back = workload::read_dataset(ss);
    EXPECT_EQ(back.num_arrays, 0u);
    EXPECT_TRUE(back.values.empty());
}

TEST(DatasetIo, RejectsBadMagic) {
    std::stringstream ss;
    ss << "NOPE this is not a dataset file at all, padding padding";
    EXPECT_THROW((void)workload::read_dataset(ss), std::runtime_error);
}

TEST(DatasetIo, RejectsTruncatedHeader) {
    std::stringstream ss;
    ss << "GAS";  // 3 bytes only
    EXPECT_THROW((void)workload::read_dataset(ss), std::runtime_error);
}

TEST(DatasetIo, RejectsTruncatedPayload) {
    const auto ds = workload::make_dataset(4, 50, workload::Distribution::Uniform, 11);
    std::stringstream ss;
    workload::write_dataset(ss, ds);
    std::string bytes = ss.str();
    bytes.resize(bytes.size() - 32);  // chop the tail
    std::istringstream truncated(bytes);
    EXPECT_THROW((void)workload::read_dataset(truncated), std::runtime_error);
}

TEST(DatasetIo, RejectsWrongVersion) {
    const auto ds = workload::make_dataset(1, 4, workload::Distribution::Uniform, 12);
    std::stringstream ss;
    workload::write_dataset(ss, ds);
    std::string bytes = ss.str();
    bytes[4] = 99;  // version field
    std::istringstream bad(bytes);
    EXPECT_THROW((void)workload::read_dataset(bad), std::runtime_error);
}

TEST(DatasetIo, MissingFileThrows) {
    EXPECT_THROW((void)workload::read_dataset_file("/nonexistent/file.gad"),
                 std::runtime_error);
}

}  // namespace
