#include "workload/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace {

using workload::Distribution;

TEST(Generators, DeterministicForSameSeed) {
    const auto a = workload::make_dataset(10, 100, Distribution::Uniform, 42);
    const auto b = workload::make_dataset(10, 100, Distribution::Uniform, 42);
    EXPECT_EQ(a.values, b.values);
}

TEST(Generators, DifferentSeedsDiffer) {
    const auto a = workload::make_dataset(10, 100, Distribution::Uniform, 1);
    const auto b = workload::make_dataset(10, 100, Distribution::Uniform, 2);
    EXPECT_NE(a.values, b.values);
}

TEST(Generators, UniformStaysInPaperRange) {
    const auto v = workload::make_values(50000, Distribution::Uniform, 3);
    for (float x : v) {
        ASSERT_GE(x, 0.0f);
        ASSERT_LE(x, 2147483647.0f);
    }
}

TEST(Generators, SortedIsSortedPerArray) {
    const auto ds = workload::make_dataset(5, 200, Distribution::Sorted, 4);
    for (std::size_t a = 0; a < 5; ++a) {
        EXPECT_TRUE(std::is_sorted(ds.array(a), ds.array(a) + 200));
    }
}

TEST(Generators, ReverseIsDescendingPerArray) {
    const auto ds = workload::make_dataset(5, 200, Distribution::Reverse, 5);
    for (std::size_t a = 0; a < 5; ++a) {
        EXPECT_TRUE(std::is_sorted(ds.array(a), ds.array(a) + 200, std::greater<>()));
    }
}

TEST(Generators, FewDistinctHasAtMostEightValues) {
    const auto v = workload::make_values(10000, Distribution::FewDistinct, 6);
    std::set<float> distinct(v.begin(), v.end());
    EXPECT_LE(distinct.size(), 8u);
}

TEST(Generators, ConstantIsConstant) {
    const auto v = workload::make_values(100, Distribution::Constant, 7);
    for (float x : v) EXPECT_EQ(x, v[0]);
}

TEST(Generators, NoNaNsAnywhere) {
    for (auto dist : workload::all_distributions()) {
        const auto v = workload::make_values(5000, dist, 8);
        for (float x : v) ASSERT_FALSE(std::isnan(x)) << workload::to_string(dist);
    }
}

TEST(Generators, DatasetShapeAndAccessors) {
    const auto ds = workload::make_dataset(7, 13, Distribution::Uniform, 9);
    EXPECT_EQ(ds.total_elements(), 91u);
    EXPECT_EQ(ds.array(3), ds.values.data() + 39);
}

TEST(Generators, RaggedOffsetsAreConsistent) {
    const auto ds = workload::make_ragged_dataset(50, 10, 200, Distribution::Uniform, 10);
    EXPECT_EQ(ds.num_arrays(), 50u);
    EXPECT_EQ(ds.offsets.front(), 0u);
    EXPECT_EQ(ds.offsets.back(), ds.values.size());
    for (std::size_t a = 0; a < 50; ++a) {
        EXPECT_GE(ds.size_of(a), 10u);
        EXPECT_LE(ds.size_of(a), 200u);
    }
}

TEST(Generators, RaggedRejectsInvertedBounds) {
    EXPECT_THROW(workload::make_ragged_dataset(5, 10, 5), std::invalid_argument);
}

TEST(Generators, EveryDistributionHasAName) {
    for (auto dist : workload::all_distributions()) {
        EXPECT_NE(workload::to_string(dist), "unknown");
    }
}

}  // namespace
