#include "msdata/synth.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

TEST(Synth, GeneratesRequestedCount) {
    const auto set = msdata::generate_spectra(25);
    EXPECT_EQ(set.size(), 25u);
}

TEST(Synth, PeakCountsWithinBounds) {
    msdata::SynthOptions opts;
    opts.min_peaks = 50;
    opts.max_peaks = 120;
    const auto set = msdata::generate_spectra(40, opts);
    for (const auto& s : set.spectra) {
        EXPECT_GE(s.size(), 50u);
        EXPECT_LE(s.size(), 120u);
    }
    EXPECT_LE(set.max_peaks(), 120u);
}

TEST(Synth, PeaksAreInScanOrder) {
    const auto set = msdata::generate_spectra(10);
    for (const auto& s : set.spectra) {
        EXPECT_TRUE(std::is_sorted(s.peaks.begin(), s.peaks.end(),
                                   [](const msdata::Peak& a, const msdata::Peak& b) {
                                       return a.mz < b.mz;
                                   }));
    }
}

TEST(Synth, IntensitiesAreNotSorted) {
    // The whole point of the paper: intensities arrive unordered.
    const auto set = msdata::generate_spectra(10);
    bool any_unsorted = false;
    for (const auto& s : set.spectra) {
        if (!std::is_sorted(s.peaks.begin(), s.peaks.end(),
                            [](const msdata::Peak& a, const msdata::Peak& b) {
                                return a.intensity < b.intensity;
                            })) {
            any_unsorted = true;
        }
    }
    EXPECT_TRUE(any_unsorted);
}

TEST(Synth, MzWithinConfiguredWindow) {
    msdata::SynthOptions opts;
    opts.min_mz = 250.0f;
    opts.max_mz = 750.0f;
    const auto set = msdata::generate_spectra(5, opts);
    for (const auto& s : set.spectra) {
        for (const auto& p : s.peaks) {
            EXPECT_GE(p.mz, 250.0f);
            EXPECT_LE(p.mz, 750.0f);
        }
    }
}

TEST(Synth, DeterministicBySeed) {
    msdata::SynthOptions opts;
    opts.seed = 123;
    const auto a = msdata::generate_spectra(5, opts);
    const auto b = msdata::generate_spectra(5, opts);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.spectra[i].peaks, b.spectra[i].peaks);
    }
}

TEST(Synth, SignalPeaksExist) {
    // With 20% signal at 10-100x intensity, the max should dwarf the median.
    const auto set = msdata::generate_spectra(3);
    for (const auto& s : set.spectra) {
        std::vector<float> ints;
        for (const auto& p : s.peaks) ints.push_back(p.intensity);
        std::sort(ints.begin(), ints.end());
        EXPECT_GT(ints.back(), 5.0f * ints[ints.size() / 2]);
    }
}

}  // namespace
