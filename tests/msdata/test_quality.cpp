#include "msdata/quality.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "msdata/synth.hpp"

namespace {

simt::Device make_device() { return simt::Device(simt::tiny_device(128 << 20)); }

msdata::Spectrum spectrum_from(std::vector<float> intensities) {
    msdata::Spectrum s;
    float mz = 100.0f;
    for (float v : intensities) {
        s.peaks.push_back({mz, v});
        mz += 1.0f;
    }
    return s;
}

TEST(Quality, HandComputedMetrics) {
    auto dev = make_device();
    msdata::SpectraSet set;
    set.spectra.push_back(spectrum_from({1, 2, 3, 4, 100}));

    const auto q = msdata::compute_quality(dev, set);
    ASSERT_EQ(q.size(), 1u);
    EXPECT_DOUBLE_EQ(q[0].total_ion_current, 110.0);
    EXPECT_EQ(q[0].base_peak, 100.0f);
    EXPECT_EQ(q[0].median_intensity, 3.0f);
    EXPECT_EQ(q[0].peak_count, 5u);
    EXPECT_NEAR(q[0].signal_to_noise, 100.0 / 3.0, 1e-9);
}

TEST(Quality, EmptySpectrumYieldsZeros) {
    auto dev = make_device();
    msdata::SpectraSet set;
    set.spectra.emplace_back();  // zero peaks
    set.spectra.push_back(spectrum_from({5, 5}));
    const auto q = msdata::compute_quality(dev, set);
    ASSERT_EQ(q.size(), 2u);
    EXPECT_EQ(q[0].peak_count, 0u);
    EXPECT_DOUBLE_EQ(q[0].total_ion_current, 0.0);
    EXPECT_EQ(q[1].peak_count, 2u);
}

TEST(Quality, DoesNotModifySpectra) {
    auto dev = make_device();
    auto set = msdata::generate_spectra(5);
    const auto before = set.spectra[2].peaks;
    (void)msdata::compute_quality(dev, set);
    EXPECT_EQ(set.spectra[2].peaks, before);
}

TEST(Quality, SignalPeaksRaiseSnr) {
    // A spectrum with strong signal peaks must report higher S/N than pure
    // noise at the same scale.
    auto dev = make_device();
    msdata::SpectraSet set;
    set.spectra.push_back(spectrum_from(std::vector<float>(100, 10.0f)));  // flat noise
    auto signal = std::vector<float>(100, 10.0f);
    signal[50] = 10000.0f;
    set.spectra.push_back(spectrum_from(signal));

    const auto q = msdata::compute_quality(dev, set);
    EXPECT_NEAR(q[0].signal_to_noise, 1.0, 1e-6);
    EXPECT_GT(q[1].signal_to_noise, 100.0);
}

TEST(Quality, FilterDropsLowSnrAndSmallSpectra) {
    auto dev = make_device();
    msdata::SpectraSet set;
    set.spectra.push_back(spectrum_from(std::vector<float>(50, 7.0f)));  // S/N = 1
    auto good = std::vector<float>(50, 7.0f);
    good[10] = 70000.0f;
    set.spectra.push_back(spectrum_from(good));                     // high S/N
    set.spectra.push_back(spectrum_from({1, 2, 3}));                // too few peaks

    const std::size_t removed = msdata::filter_by_quality(dev, set, 3.0, 10);
    EXPECT_EQ(removed, 2u);
    ASSERT_EQ(set.size(), 1u);
    EXPECT_EQ(set.spectra[0].peaks[10].intensity, 70000.0f);
}

TEST(Quality, BatchOverSyntheticSet) {
    auto dev = make_device();
    msdata::SynthOptions opts;
    opts.min_peaks = 100;
    opts.max_peaks = 500;
    auto set = msdata::generate_spectra(30, opts);
    const auto q = msdata::compute_quality(dev, set);
    ASSERT_EQ(q.size(), 30u);
    for (const auto& m : q) {
        EXPECT_GT(m.total_ion_current, 0.0);
        EXPECT_GE(m.base_peak, m.p95);
        EXPECT_GE(m.p95, m.median_intensity);
        EXPECT_GE(m.median_intensity, m.p05);
        EXPECT_GE(m.signal_to_noise, 1.0);
        EXPECT_GE(m.dynamic_range, 1.0);
    }
}

}  // namespace
