// Robustness fuzzing of the MGF parser: random line soups must either parse
// or throw std::runtime_error — never crash, hang or return corrupt peaks.

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "msdata/mgf_io.hpp"

namespace {

std::string random_line(std::mt19937_64& rng) {
    static const std::vector<std::string> pieces = {
        "BEGIN IONS", "END IONS",   "TITLE=x",       "PEPMASS=500.1", "CHARGE=2+",
        "100.5 3.25", "1 2",        "garbage here",  "KEY=value",     "",
        "#comment",   "-5.0 -6.0",  "1e30 1e-30",    "END",           "BEGIN",
    };
    return pieces[rng() % pieces.size()];
}

class MgfFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MgfFuzz, RandomLineSoupNeverCrashes) {
    std::mt19937_64 rng(GetParam());
    for (int doc = 0; doc < 40; ++doc) {
        std::ostringstream os;
        const int lines = static_cast<int>(rng() % 30);
        for (int l = 0; l < lines; ++l) os << random_line(rng) << '\n';
        std::istringstream is(os.str());
        try {
            const auto set = msdata::read_mgf(is);
            // Whatever parsed must be self-consistent.
            for (const auto& s : set.spectra) {
                for (const auto& p : s.peaks) {
                    EXPECT_EQ(p.mz, p.mz);  // not NaN garbage from the parser itself
                }
            }
        } catch (const std::runtime_error&) {
            // structured rejection is fine
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MgfFuzz, ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(MgfFuzz, DeepValidFileParsesCompletely) {
    std::ostringstream os;
    for (int i = 0; i < 500; ++i) {
        os << "BEGIN IONS\nTITLE=s" << i << "\nPEPMASS=" << 300 + i << "\nCHARGE=2+\n";
        for (int k = 0; k < 5; ++k) os << 100 + k << ' ' << (i + 1) * (k + 1) << '\n';
        os << "END IONS\n";
    }
    std::istringstream is(os.str());
    const auto set = msdata::read_mgf(is);
    EXPECT_EQ(set.size(), 500u);
    EXPECT_EQ(set.total_peaks(), 2500u);
}

TEST(MgfFuzz, BinaryGarbageIsRejectedOrEmpty) {
    std::string junk(1024, '\0');
    for (std::size_t i = 0; i < junk.size(); ++i) junk[i] = static_cast<char>(i * 37);
    std::istringstream is(junk);
    try {
        const auto set = msdata::read_mgf(is);
        EXPECT_EQ(set.total_peaks(), 0u);  // nothing structured in there
    } catch (const std::runtime_error&) {
    }
}

}  // namespace
