#include "msdata/precursor_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "msdata/synth.hpp"

namespace {

simt::Device make_device() { return simt::Device(simt::tiny_device(128 << 20)); }

msdata::SpectraSet set_with_precursors(std::initializer_list<double> masses) {
    msdata::SpectraSet set;
    for (double m : masses) {
        msdata::Spectrum s;
        s.precursor_mz = m;
        s.peaks.push_back({100.0f, 1.0f});
        set.spectra.push_back(std::move(s));
    }
    return set;
}

TEST(PrecursorIndex, SortsMassesAscending) {
    auto dev = make_device();
    const auto set = set_with_precursors({500.5, 300.1, 900.9, 700.7, 100.0});
    const msdata::PrecursorIndex index(dev, set);
    EXPECT_EQ(index.size(), 5u);
    EXPECT_TRUE(std::is_sorted(index.sorted_mz().begin(), index.sorted_mz().end()));
    EXPECT_EQ(index.sorted_mz().front(), 100.0);
    EXPECT_EQ(index.sorted_mz().back(), 900.9);
}

TEST(PrecursorIndex, QueryReturnsIdsInWindow) {
    auto dev = make_device();
    const auto set = set_with_precursors({500.0, 501.0, 502.0, 499.0, 800.0});
    const msdata::PrecursorIndex index(dev, set);
    const auto hits = index.query(500.5, 1.0);  // [499.5, 501.5] -> 500, 501
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(set.spectra[hits[0]].precursor_mz, 500.0);
    EXPECT_EQ(set.spectra[hits[1]].precursor_mz, 501.0);
}

TEST(PrecursorIndex, EmptyWindowAndEmptySet) {
    auto dev = make_device();
    const auto set = set_with_precursors({500.0});
    const msdata::PrecursorIndex index(dev, set);
    EXPECT_TRUE(index.query(600.0, 1.0).empty());

    const msdata::SpectraSet empty;
    const msdata::PrecursorIndex empty_index(dev, empty);
    EXPECT_EQ(empty_index.size(), 0u);
    EXPECT_TRUE(empty_index.query(500.0, 10.0).empty());
}

TEST(PrecursorIndex, PpmQueryScalesWithMass) {
    auto dev = make_device();
    const auto set = set_with_precursors({1000.0, 1000.005, 1000.02});
    const msdata::PrecursorIndex index(dev, set);
    // 10 ppm of 1000 = 0.01: picks the first two.
    EXPECT_EQ(index.query_ppm(1000.0, 10.0).size(), 2u);
    // 30 ppm picks all three.
    EXPECT_EQ(index.query_ppm(1000.0, 30.0).size(), 3u);
}

TEST(PrecursorIndex, LargeSetUsesChunkedSortCorrectly) {
    // > 2048 spectra forces the chunked device sort + host merge path.
    auto dev = make_device();
    msdata::SynthOptions opts;
    opts.min_peaks = 1;
    opts.max_peaks = 3;
    auto set = msdata::generate_spectra(5000, opts);
    const msdata::PrecursorIndex index(dev, set);
    ASSERT_EQ(index.size(), 5000u);
    EXPECT_TRUE(std::is_sorted(index.sorted_mz().begin(), index.sorted_mz().end()));

    // Every id appears exactly once.
    const auto all = index.query(1000.0, 1e9);
    std::vector<std::size_t> ids(all.begin(), all.end());
    std::sort(ids.begin(), ids.end());
    for (std::size_t i = 0; i < ids.size(); ++i) ASSERT_EQ(ids[i], i);

    // Window results agree with a brute-force filter.
    const auto hits = index.query(900.0, 25.0);
    std::size_t brute = 0;
    for (const auto& s : set.spectra) {
        if (s.precursor_mz >= 875.0 && s.precursor_mz <= 925.0) ++brute;
    }
    EXPECT_EQ(hits.size(), brute);
    for (std::size_t h : hits) {
        EXPECT_GE(set.spectra[h].precursor_mz, 875.0);
        EXPECT_LE(set.spectra[h].precursor_mz, 925.0);
    }
}

TEST(PrecursorIndex, DoesNotModifyTheSet) {
    auto dev = make_device();
    auto set = set_with_precursors({3.0, 1.0, 2.0});
    const auto before = set.spectra[0].precursor_mz;
    const msdata::PrecursorIndex index(dev, set);
    EXPECT_EQ(set.spectra[0].precursor_mz, before);
}

}  // namespace
