#include "msdata/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "msdata/synth.hpp"

namespace {

simt::Device make_device() { return simt::Device(simt::tiny_device(256 << 20)); }

msdata::SpectraSet small_set(std::size_t count = 20) {
    msdata::SynthOptions opts;
    opts.min_peaks = 30;
    opts.max_peaks = 400;
    opts.seed = 11;
    return msdata::generate_spectra(count, opts);
}

TEST(Pipeline, SortByIntensityOrdersEverySpectrum) {
    auto dev = make_device();
    auto set = small_set();
    const std::size_t peaks_before = set.total_peaks();

    const auto stats = msdata::sort_spectra_by_intensity(dev, set);
    EXPECT_EQ(stats.peaks_in, peaks_before);
    EXPECT_EQ(stats.peaks_out, peaks_before);
    for (const auto& s : set.spectra) {
        EXPECT_TRUE(std::is_sorted(s.peaks.begin(), s.peaks.end(),
                                   [](const msdata::Peak& a, const msdata::Peak& b) {
                                       return a.intensity < b.intensity;
                                   }));
    }
}

TEST(Pipeline, SortKeepsPeakPairsIntact) {
    auto dev = make_device();
    auto set = small_set(5);
    // Remember the (mz -> intensity) multiset per spectrum.
    std::vector<std::vector<msdata::Peak>> before;
    for (auto& s : set.spectra) {
        auto peaks = s.peaks;
        std::sort(peaks.begin(), peaks.end(), [](const auto& a, const auto& b) {
            return std::pair(a.mz, a.intensity) < std::pair(b.mz, b.intensity);
        });
        before.push_back(std::move(peaks));
    }
    msdata::sort_spectra_by_intensity(dev, set);
    for (std::size_t i = 0; i < set.size(); ++i) {
        auto peaks = set.spectra[i].peaks;
        std::sort(peaks.begin(), peaks.end(), [](const auto& a, const auto& b) {
            return std::pair(a.mz, a.intensity) < std::pair(b.mz, b.intensity);
        });
        EXPECT_EQ(peaks, before[i]) << "spectrum " << i << " pairs corrupted";
    }
}

TEST(Pipeline, ReduceKeepsRequestedFraction) {
    auto dev = make_device();
    auto set = small_set();
    const auto stats = msdata::reduce_spectra(dev, set, 0.25);
    EXPECT_LT(stats.peaks_out, stats.peaks_in);
    for (std::size_t i = 0; i < set.size(); ++i) {
        const auto& s = set.spectra[i];
        // At least a quarter survives (ties can keep a few more).
        EXPECT_GE(s.size() * 4 + 4, stats.peaks_in / set.size() / 4);
        EXPECT_FALSE(s.peaks.empty());
    }
}

TEST(Pipeline, ReduceKeepsTheMostIntensePeaks) {
    auto dev = make_device();
    auto set = small_set(6);
    std::vector<float> max_intensity;
    for (const auto& s : set.spectra) {
        float m = 0.0f;
        for (const auto& p : s.peaks) m = std::max(m, p.intensity);
        max_intensity.push_back(m);
    }
    msdata::reduce_spectra(dev, set, 0.1);
    for (std::size_t i = 0; i < set.size(); ++i) {
        float m = 0.0f;
        for (const auto& p : set.spectra[i].peaks) m = std::max(m, p.intensity);
        EXPECT_EQ(m, max_intensity[i]) << "top peak must survive reduction";
    }
}

TEST(Pipeline, ReducePreservesScanOrder) {
    auto dev = make_device();
    auto set = small_set(4);
    msdata::reduce_spectra(dev, set, 0.5);
    for (const auto& s : set.spectra) {
        EXPECT_TRUE(std::is_sorted(s.peaks.begin(), s.peaks.end(),
                                   [](const auto& a, const auto& b) { return a.mz < b.mz; }));
    }
}

TEST(Pipeline, ReduceRejectsBadFraction) {
    auto dev = make_device();
    auto set = small_set(2);
    EXPECT_THROW(msdata::reduce_spectra(dev, set, 0.0), std::invalid_argument);
    EXPECT_THROW(msdata::reduce_spectra(dev, set, 1.5), std::invalid_argument);
}

TEST(Pipeline, EmptySetIsNoOp) {
    auto dev = make_device();
    msdata::SpectraSet empty;
    EXPECT_NO_THROW(msdata::sort_spectra_by_intensity(dev, empty));
    EXPECT_NO_THROW(msdata::reduce_spectra(dev, empty, 0.5));
}

TEST(Pipeline, FullReductionKeepsEverything) {
    auto dev = make_device();
    auto set = small_set(3);
    const std::size_t before = set.total_peaks();
    msdata::reduce_spectra(dev, set, 1.0);
    EXPECT_EQ(set.total_peaks(), before);
}

}  // namespace
