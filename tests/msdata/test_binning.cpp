#include "msdata/binning.hpp"

#include <gtest/gtest.h>

#include "msdata/synth.hpp"

namespace {

using msdata::BinningOptions;

msdata::Spectrum make_spectrum(std::initializer_list<msdata::Peak> peaks) {
    msdata::Spectrum s;
    s.peaks = peaks;
    return s;
}

TEST(Binning, BinCountFromOptions) {
    BinningOptions opts;
    opts.min_mz = 0.0f;
    opts.max_mz = 10.0f;
    opts.bin_width = 1.0f;
    EXPECT_EQ(msdata::bin_count(opts), 10u);
    opts.bin_width = 3.0f;
    EXPECT_EQ(msdata::bin_count(opts), 4u);  // ceil(10 / 3)
}

TEST(Binning, InvalidOptionsThrow) {
    BinningOptions opts;
    opts.bin_width = 0.0f;
    EXPECT_THROW((void)msdata::bin_count(opts), std::invalid_argument);
    opts.bin_width = 1.0f;
    opts.max_mz = opts.min_mz;
    EXPECT_THROW((void)msdata::bin_count(opts), std::invalid_argument);
}

TEST(Binning, PeaksAccumulateIntoBins) {
    BinningOptions opts;
    opts.min_mz = 0.0f;
    opts.max_mz = 5.0f;
    opts.bin_width = 1.0f;
    const auto s = make_spectrum({{0.5f, 10.0f}, {0.9f, 5.0f}, {3.2f, 7.0f}});
    const auto bins = msdata::bin_spectrum(s, opts);
    ASSERT_EQ(bins.size(), 5u);
    EXPECT_EQ(bins[0], 15.0f);
    EXPECT_EQ(bins[1], 0.0f);
    EXPECT_EQ(bins[3], 7.0f);
}

TEST(Binning, OutOfRangePeaksAreDropped) {
    BinningOptions opts;
    opts.min_mz = 100.0f;
    opts.max_mz = 200.0f;
    const auto s = make_spectrum({{50.0f, 10.0f}, {250.0f, 10.0f}, {150.0f, 3.0f}});
    const auto bins = msdata::bin_spectrum(s, opts);
    float total = 0.0f;
    for (float b : bins) total += b;
    EXPECT_EQ(total, 3.0f);
}

TEST(Binning, CosineOfIdenticalSpectraIsOne) {
    const auto s = make_spectrum({{105.0f, 3.0f}, {250.5f, 8.0f}, {900.0f, 1.0f}});
    const auto bins = msdata::bin_spectrum(s);
    EXPECT_NEAR(msdata::cosine_similarity(bins, bins), 1.0, 1e-12);
}

TEST(Binning, CosineOfDisjointSpectraIsZero) {
    const auto a = msdata::bin_spectrum(make_spectrum({{105.0f, 3.0f}}));
    const auto b = msdata::bin_spectrum(make_spectrum({{905.0f, 3.0f}}));
    EXPECT_EQ(msdata::cosine_similarity(a, b), 0.0);
}

TEST(Binning, CosineHandlesAllZeroVectors) {
    const std::vector<float> zero(100, 0.0f);
    std::vector<float> some(100, 0.0f);
    some[3] = 1.0f;
    EXPECT_EQ(msdata::cosine_similarity(zero, some), 0.0);
    EXPECT_EQ(msdata::cosine_similarity(zero, zero), 0.0);
}

TEST(Binning, CosineDimensionMismatchThrows) {
    EXPECT_THROW((void)msdata::cosine_similarity(std::vector<float>(3), std::vector<float>(4)),
                 std::invalid_argument);
}

TEST(Binning, SearchRanksSelfFirst) {
    auto set = msdata::generate_spectra(10);
    const auto scores = msdata::search_similarity(set, set.spectra[4]);
    ASSERT_EQ(scores.size(), 10u);
    for (std::size_t i = 0; i < scores.size(); ++i) {
        EXPECT_LE(scores[i], scores[4] + 1e-12) << i;
    }
    EXPECT_NEAR(scores[4], 1.0, 1e-12);
}

}  // namespace
