#include "msdata/mgf_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "msdata/synth.hpp"

namespace {

TEST(MgfIo, RoundTripsSyntheticSpectra) {
    msdata::SynthOptions opts;
    opts.min_peaks = 5;
    opts.max_peaks = 50;
    const auto original = msdata::generate_spectra(12, opts);

    std::stringstream ss;
    msdata::write_mgf(ss, original);
    const auto parsed = msdata::read_mgf(ss);

    ASSERT_EQ(parsed.size(), original.size());
    for (std::size_t i = 0; i < parsed.size(); ++i) {
        const auto& a = original.spectra[i];
        const auto& b = parsed.spectra[i];
        EXPECT_EQ(a.title, b.title);
        EXPECT_EQ(a.charge, b.charge);
        EXPECT_NEAR(a.precursor_mz, b.precursor_mz, 1e-3);
        ASSERT_EQ(a.peaks.size(), b.peaks.size());
        for (std::size_t k = 0; k < a.peaks.size(); ++k) {
            EXPECT_NEAR(a.peaks[k].mz, b.peaks[k].mz, a.peaks[k].mz * 1e-5f);
            EXPECT_NEAR(a.peaks[k].intensity, b.peaks[k].intensity,
                        a.peaks[k].intensity * 1e-5f);
        }
    }
}

TEST(MgfIo, ParsesHandWrittenFile) {
    const std::string text =
        "# comment\n"
        "BEGIN IONS\n"
        "TITLE=scan 1\n"
        "PEPMASS=445.12\n"
        "CHARGE=2+\n"
        "100.5 200.25\n"
        "101.5 50\n"
        "END IONS\n";
    std::istringstream is(text);
    const auto set = msdata::read_mgf(is);
    ASSERT_EQ(set.size(), 1u);
    EXPECT_EQ(set.spectra[0].title, "scan 1");
    EXPECT_EQ(set.spectra[0].charge, 2);
    ASSERT_EQ(set.spectra[0].peaks.size(), 2u);
    EXPECT_FLOAT_EQ(set.spectra[0].peaks[1].mz, 101.5f);
}

TEST(MgfIo, HandlesCrlfLineEndings) {
    std::istringstream is("BEGIN IONS\r\nTITLE=x\r\n1.0 2.0\r\nEND IONS\r\n");
    const auto set = msdata::read_mgf(is);
    ASSERT_EQ(set.size(), 1u);
    EXPECT_EQ(set.spectra[0].title, "x");
}

TEST(MgfIo, RejectsUnterminatedSpectrum) {
    std::istringstream is("BEGIN IONS\nTITLE=x\n1.0 2.0\n");
    EXPECT_THROW(msdata::read_mgf(is), std::runtime_error);
}

TEST(MgfIo, RejectsNestedBegin) {
    std::istringstream is("BEGIN IONS\nBEGIN IONS\nEND IONS\n");
    EXPECT_THROW(msdata::read_mgf(is), std::runtime_error);
}

TEST(MgfIo, RejectsStrayEnd) {
    std::istringstream is("END IONS\n");
    EXPECT_THROW(msdata::read_mgf(is), std::runtime_error);
}

TEST(MgfIo, RejectsMalformedPeakLine) {
    std::istringstream is("BEGIN IONS\nnot a peak\nEND IONS\n");
    EXPECT_THROW(msdata::read_mgf(is), std::runtime_error);
}

TEST(MgfIo, IgnoresUnknownHeaders) {
    std::istringstream is(
        "BEGIN IONS\nTITLE=t\nRTINSECONDS=12.5\nSCANS=3\n5.0 6.0\nEND IONS\n");
    const auto set = msdata::read_mgf(is);
    ASSERT_EQ(set.size(), 1u);
    EXPECT_EQ(set.spectra[0].peaks.size(), 1u);
}

TEST(MgfIo, FileRoundTrip) {
    const auto original = msdata::generate_spectra(3);
    const std::string path = ::testing::TempDir() + "/gas_test.mgf";
    msdata::write_mgf_file(path, original);
    const auto parsed = msdata::read_mgf_file(path);
    EXPECT_EQ(parsed.size(), original.size());
    EXPECT_EQ(parsed.total_peaks(), original.total_peaks());
}

TEST(MgfIo, MissingFileThrows) {
    EXPECT_THROW(msdata::read_mgf_file("/nonexistent/path.mgf"), std::runtime_error);
}

}  // namespace
