# Empty dependencies file for fig5_runtime_n2000.
# This may be replaced when dependencies are built.
