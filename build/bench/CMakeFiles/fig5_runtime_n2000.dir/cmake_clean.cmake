file(REMOVE_RECURSE
  "CMakeFiles/fig5_runtime_n2000.dir/fig5_runtime_n2000.cpp.o"
  "CMakeFiles/fig5_runtime_n2000.dir/fig5_runtime_n2000.cpp.o.d"
  "fig5_runtime_n2000"
  "fig5_runtime_n2000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_runtime_n2000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
