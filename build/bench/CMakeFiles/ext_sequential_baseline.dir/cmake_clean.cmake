file(REMOVE_RECURSE
  "CMakeFiles/ext_sequential_baseline.dir/ext_sequential_baseline.cpp.o"
  "CMakeFiles/ext_sequential_baseline.dir/ext_sequential_baseline.cpp.o.d"
  "ext_sequential_baseline"
  "ext_sequential_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_sequential_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
