# Empty dependencies file for ext_sequential_baseline.
# This may be replaced when dependencies are built.
