file(REMOVE_RECURSE
  "CMakeFiles/ablation_threads_per_bucket.dir/ablation_threads_per_bucket.cpp.o"
  "CMakeFiles/ablation_threads_per_bucket.dir/ablation_threads_per_bucket.cpp.o.d"
  "ablation_threads_per_bucket"
  "ablation_threads_per_bucket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_threads_per_bucket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
