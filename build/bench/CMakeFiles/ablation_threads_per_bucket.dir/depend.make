# Empty dependencies file for ablation_threads_per_bucket.
# This may be replaced when dependencies are built.
