# Empty compiler generated dependencies file for fig6_runtime_n3000.
# This may be replaced when dependencies are built.
