file(REMOVE_RECURSE
  "CMakeFiles/fig6_runtime_n3000.dir/fig6_runtime_n3000.cpp.o"
  "CMakeFiles/fig6_runtime_n3000.dir/fig6_runtime_n3000.cpp.o.d"
  "fig6_runtime_n3000"
  "fig6_runtime_n3000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_runtime_n3000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
