file(REMOVE_RECURSE
  "CMakeFiles/ext_out_of_core.dir/ext_out_of_core.cpp.o"
  "CMakeFiles/ext_out_of_core.dir/ext_out_of_core.cpp.o.d"
  "ext_out_of_core"
  "ext_out_of_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_out_of_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
