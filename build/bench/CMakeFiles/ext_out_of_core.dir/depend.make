# Empty dependencies file for ext_out_of_core.
# This may be replaced when dependencies are built.
