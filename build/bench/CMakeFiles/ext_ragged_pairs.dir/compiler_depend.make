# Empty compiler generated dependencies file for ext_ragged_pairs.
# This may be replaced when dependencies are built.
