file(REMOVE_RECURSE
  "CMakeFiles/ext_ragged_pairs.dir/ext_ragged_pairs.cpp.o"
  "CMakeFiles/ext_ragged_pairs.dir/ext_ragged_pairs.cpp.o.d"
  "ext_ragged_pairs"
  "ext_ragged_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ragged_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
