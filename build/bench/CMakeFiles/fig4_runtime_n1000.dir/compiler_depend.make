# Empty compiler generated dependencies file for fig4_runtime_n1000.
# This may be replaced when dependencies are built.
