
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_bucket_size.cpp" "bench/CMakeFiles/ablation_bucket_size.dir/ablation_bucket_size.cpp.o" "gcc" "bench/CMakeFiles/ablation_bucket_size.dir/ablation_bucket_size.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simt/CMakeFiles/gas_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/thrustlite/CMakeFiles/gas_thrustlite.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/gas_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gas_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/msdata/CMakeFiles/gas_msdata.dir/DependInfo.cmake"
  "/root/repo/build/src/ooc/CMakeFiles/gas_ooc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
