file(REMOVE_RECURSE
  "CMakeFiles/fig7_runtime_n4000.dir/fig7_runtime_n4000.cpp.o"
  "CMakeFiles/fig7_runtime_n4000.dir/fig7_runtime_n4000.cpp.o.d"
  "fig7_runtime_n4000"
  "fig7_runtime_n4000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_runtime_n4000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
