# Empty dependencies file for fig7_runtime_n4000.
# This may be replaced when dependencies are built.
