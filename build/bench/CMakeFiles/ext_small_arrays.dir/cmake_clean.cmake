file(REMOVE_RECURSE
  "CMakeFiles/ext_small_arrays.dir/ext_small_arrays.cpp.o"
  "CMakeFiles/ext_small_arrays.dir/ext_small_arrays.cpp.o.d"
  "ext_small_arrays"
  "ext_small_arrays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_small_arrays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
