# Empty compiler generated dependencies file for ext_small_arrays.
# This may be replaced when dependencies are built.
