# Empty dependencies file for fig2_time_complexity.
# This may be replaced when dependencies are built.
