file(REMOVE_RECURSE
  "CMakeFiles/fig2_time_complexity.dir/fig2_time_complexity.cpp.o"
  "CMakeFiles/fig2_time_complexity.dir/fig2_time_complexity.cpp.o.d"
  "fig2_time_complexity"
  "fig2_time_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_time_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
