file(REMOVE_RECURSE
  "libgas_ooc.a"
)
