file(REMOVE_RECURSE
  "CMakeFiles/gas_ooc.dir/out_of_core.cpp.o"
  "CMakeFiles/gas_ooc.dir/out_of_core.cpp.o.d"
  "libgas_ooc.a"
  "libgas_ooc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_ooc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
