# Empty compiler generated dependencies file for gas_ooc.
# This may be replaced when dependencies are built.
