file(REMOVE_RECURSE
  "libgas_core.a"
)
