# Empty compiler generated dependencies file for gas_core.
# This may be replaced when dependencies are built.
