file(REMOVE_RECURSE
  "CMakeFiles/gas_core.dir/analysis.cpp.o"
  "CMakeFiles/gas_core.dir/analysis.cpp.o.d"
  "CMakeFiles/gas_core.dir/bucket_phase.cpp.o"
  "CMakeFiles/gas_core.dir/bucket_phase.cpp.o.d"
  "CMakeFiles/gas_core.dir/complexity.cpp.o"
  "CMakeFiles/gas_core.dir/complexity.cpp.o.d"
  "CMakeFiles/gas_core.dir/device_ops.cpp.o"
  "CMakeFiles/gas_core.dir/device_ops.cpp.o.d"
  "CMakeFiles/gas_core.dir/gpu_array_sort.cpp.o"
  "CMakeFiles/gas_core.dir/gpu_array_sort.cpp.o.d"
  "CMakeFiles/gas_core.dir/pair_sort.cpp.o"
  "CMakeFiles/gas_core.dir/pair_sort.cpp.o.d"
  "CMakeFiles/gas_core.dir/plan.cpp.o"
  "CMakeFiles/gas_core.dir/plan.cpp.o.d"
  "CMakeFiles/gas_core.dir/ragged_sort.cpp.o"
  "CMakeFiles/gas_core.dir/ragged_sort.cpp.o.d"
  "CMakeFiles/gas_core.dir/sort_phase.cpp.o"
  "CMakeFiles/gas_core.dir/sort_phase.cpp.o.d"
  "CMakeFiles/gas_core.dir/splitter_phase.cpp.o"
  "CMakeFiles/gas_core.dir/splitter_phase.cpp.o.d"
  "libgas_core.a"
  "libgas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
