
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/gas_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/gas_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/bucket_phase.cpp" "src/core/CMakeFiles/gas_core.dir/bucket_phase.cpp.o" "gcc" "src/core/CMakeFiles/gas_core.dir/bucket_phase.cpp.o.d"
  "/root/repo/src/core/complexity.cpp" "src/core/CMakeFiles/gas_core.dir/complexity.cpp.o" "gcc" "src/core/CMakeFiles/gas_core.dir/complexity.cpp.o.d"
  "/root/repo/src/core/device_ops.cpp" "src/core/CMakeFiles/gas_core.dir/device_ops.cpp.o" "gcc" "src/core/CMakeFiles/gas_core.dir/device_ops.cpp.o.d"
  "/root/repo/src/core/gpu_array_sort.cpp" "src/core/CMakeFiles/gas_core.dir/gpu_array_sort.cpp.o" "gcc" "src/core/CMakeFiles/gas_core.dir/gpu_array_sort.cpp.o.d"
  "/root/repo/src/core/pair_sort.cpp" "src/core/CMakeFiles/gas_core.dir/pair_sort.cpp.o" "gcc" "src/core/CMakeFiles/gas_core.dir/pair_sort.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "src/core/CMakeFiles/gas_core.dir/plan.cpp.o" "gcc" "src/core/CMakeFiles/gas_core.dir/plan.cpp.o.d"
  "/root/repo/src/core/ragged_sort.cpp" "src/core/CMakeFiles/gas_core.dir/ragged_sort.cpp.o" "gcc" "src/core/CMakeFiles/gas_core.dir/ragged_sort.cpp.o.d"
  "/root/repo/src/core/sort_phase.cpp" "src/core/CMakeFiles/gas_core.dir/sort_phase.cpp.o" "gcc" "src/core/CMakeFiles/gas_core.dir/sort_phase.cpp.o.d"
  "/root/repo/src/core/splitter_phase.cpp" "src/core/CMakeFiles/gas_core.dir/splitter_phase.cpp.o" "gcc" "src/core/CMakeFiles/gas_core.dir/splitter_phase.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simt/CMakeFiles/gas_simt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
