file(REMOVE_RECURSE
  "CMakeFiles/gas_thrustlite.dir/algorithms.cpp.o"
  "CMakeFiles/gas_thrustlite.dir/algorithms.cpp.o.d"
  "CMakeFiles/gas_thrustlite.dir/radix_sort.cpp.o"
  "CMakeFiles/gas_thrustlite.dir/radix_sort.cpp.o.d"
  "CMakeFiles/gas_thrustlite.dir/reduce_scan.cpp.o"
  "CMakeFiles/gas_thrustlite.dir/reduce_scan.cpp.o.d"
  "CMakeFiles/gas_thrustlite.dir/segmented.cpp.o"
  "CMakeFiles/gas_thrustlite.dir/segmented.cpp.o.d"
  "libgas_thrustlite.a"
  "libgas_thrustlite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_thrustlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
