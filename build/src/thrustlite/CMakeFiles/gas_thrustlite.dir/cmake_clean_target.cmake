file(REMOVE_RECURSE
  "libgas_thrustlite.a"
)
