# Empty compiler generated dependencies file for gas_thrustlite.
# This may be replaced when dependencies are built.
