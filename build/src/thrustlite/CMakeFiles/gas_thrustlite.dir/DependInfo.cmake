
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thrustlite/algorithms.cpp" "src/thrustlite/CMakeFiles/gas_thrustlite.dir/algorithms.cpp.o" "gcc" "src/thrustlite/CMakeFiles/gas_thrustlite.dir/algorithms.cpp.o.d"
  "/root/repo/src/thrustlite/radix_sort.cpp" "src/thrustlite/CMakeFiles/gas_thrustlite.dir/radix_sort.cpp.o" "gcc" "src/thrustlite/CMakeFiles/gas_thrustlite.dir/radix_sort.cpp.o.d"
  "/root/repo/src/thrustlite/reduce_scan.cpp" "src/thrustlite/CMakeFiles/gas_thrustlite.dir/reduce_scan.cpp.o" "gcc" "src/thrustlite/CMakeFiles/gas_thrustlite.dir/reduce_scan.cpp.o.d"
  "/root/repo/src/thrustlite/segmented.cpp" "src/thrustlite/CMakeFiles/gas_thrustlite.dir/segmented.cpp.o" "gcc" "src/thrustlite/CMakeFiles/gas_thrustlite.dir/segmented.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simt/CMakeFiles/gas_simt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
