
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msdata/binning.cpp" "src/msdata/CMakeFiles/gas_msdata.dir/binning.cpp.o" "gcc" "src/msdata/CMakeFiles/gas_msdata.dir/binning.cpp.o.d"
  "/root/repo/src/msdata/mgf_io.cpp" "src/msdata/CMakeFiles/gas_msdata.dir/mgf_io.cpp.o" "gcc" "src/msdata/CMakeFiles/gas_msdata.dir/mgf_io.cpp.o.d"
  "/root/repo/src/msdata/pipeline.cpp" "src/msdata/CMakeFiles/gas_msdata.dir/pipeline.cpp.o" "gcc" "src/msdata/CMakeFiles/gas_msdata.dir/pipeline.cpp.o.d"
  "/root/repo/src/msdata/precursor_index.cpp" "src/msdata/CMakeFiles/gas_msdata.dir/precursor_index.cpp.o" "gcc" "src/msdata/CMakeFiles/gas_msdata.dir/precursor_index.cpp.o.d"
  "/root/repo/src/msdata/quality.cpp" "src/msdata/CMakeFiles/gas_msdata.dir/quality.cpp.o" "gcc" "src/msdata/CMakeFiles/gas_msdata.dir/quality.cpp.o.d"
  "/root/repo/src/msdata/synth.cpp" "src/msdata/CMakeFiles/gas_msdata.dir/synth.cpp.o" "gcc" "src/msdata/CMakeFiles/gas_msdata.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/gas_simt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
