# Empty compiler generated dependencies file for gas_msdata.
# This may be replaced when dependencies are built.
