file(REMOVE_RECURSE
  "libgas_msdata.a"
)
