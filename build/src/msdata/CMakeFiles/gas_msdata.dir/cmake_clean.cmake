file(REMOVE_RECURSE
  "CMakeFiles/gas_msdata.dir/binning.cpp.o"
  "CMakeFiles/gas_msdata.dir/binning.cpp.o.d"
  "CMakeFiles/gas_msdata.dir/mgf_io.cpp.o"
  "CMakeFiles/gas_msdata.dir/mgf_io.cpp.o.d"
  "CMakeFiles/gas_msdata.dir/pipeline.cpp.o"
  "CMakeFiles/gas_msdata.dir/pipeline.cpp.o.d"
  "CMakeFiles/gas_msdata.dir/precursor_index.cpp.o"
  "CMakeFiles/gas_msdata.dir/precursor_index.cpp.o.d"
  "CMakeFiles/gas_msdata.dir/quality.cpp.o"
  "CMakeFiles/gas_msdata.dir/quality.cpp.o.d"
  "CMakeFiles/gas_msdata.dir/synth.cpp.o"
  "CMakeFiles/gas_msdata.dir/synth.cpp.o.d"
  "libgas_msdata.a"
  "libgas_msdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_msdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
