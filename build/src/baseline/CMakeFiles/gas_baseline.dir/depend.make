# Empty dependencies file for gas_baseline.
# This may be replaced when dependencies are built.
