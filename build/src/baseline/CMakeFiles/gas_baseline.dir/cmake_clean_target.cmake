file(REMOVE_RECURSE
  "libgas_baseline.a"
)
