file(REMOVE_RECURSE
  "CMakeFiles/gas_baseline.dir/cpu_sort.cpp.o"
  "CMakeFiles/gas_baseline.dir/cpu_sort.cpp.o.d"
  "CMakeFiles/gas_baseline.dir/sequential_sort.cpp.o"
  "CMakeFiles/gas_baseline.dir/sequential_sort.cpp.o.d"
  "CMakeFiles/gas_baseline.dir/sta_sort.cpp.o"
  "CMakeFiles/gas_baseline.dir/sta_sort.cpp.o.d"
  "libgas_baseline.a"
  "libgas_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
