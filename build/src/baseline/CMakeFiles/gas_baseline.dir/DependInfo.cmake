
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/cpu_sort.cpp" "src/baseline/CMakeFiles/gas_baseline.dir/cpu_sort.cpp.o" "gcc" "src/baseline/CMakeFiles/gas_baseline.dir/cpu_sort.cpp.o.d"
  "/root/repo/src/baseline/sequential_sort.cpp" "src/baseline/CMakeFiles/gas_baseline.dir/sequential_sort.cpp.o" "gcc" "src/baseline/CMakeFiles/gas_baseline.dir/sequential_sort.cpp.o.d"
  "/root/repo/src/baseline/sta_sort.cpp" "src/baseline/CMakeFiles/gas_baseline.dir/sta_sort.cpp.o" "gcc" "src/baseline/CMakeFiles/gas_baseline.dir/sta_sort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simt/CMakeFiles/gas_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/thrustlite/CMakeFiles/gas_thrustlite.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
