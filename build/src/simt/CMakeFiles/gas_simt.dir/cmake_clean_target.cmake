file(REMOVE_RECURSE
  "libgas_simt.a"
)
