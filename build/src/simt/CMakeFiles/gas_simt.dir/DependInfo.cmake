
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simt/cost_model.cpp" "src/simt/CMakeFiles/gas_simt.dir/cost_model.cpp.o" "gcc" "src/simt/CMakeFiles/gas_simt.dir/cost_model.cpp.o.d"
  "/root/repo/src/simt/device_memory.cpp" "src/simt/CMakeFiles/gas_simt.dir/device_memory.cpp.o" "gcc" "src/simt/CMakeFiles/gas_simt.dir/device_memory.cpp.o.d"
  "/root/repo/src/simt/launch.cpp" "src/simt/CMakeFiles/gas_simt.dir/launch.cpp.o" "gcc" "src/simt/CMakeFiles/gas_simt.dir/launch.cpp.o.d"
  "/root/repo/src/simt/report.cpp" "src/simt/CMakeFiles/gas_simt.dir/report.cpp.o" "gcc" "src/simt/CMakeFiles/gas_simt.dir/report.cpp.o.d"
  "/root/repo/src/simt/stream.cpp" "src/simt/CMakeFiles/gas_simt.dir/stream.cpp.o" "gcc" "src/simt/CMakeFiles/gas_simt.dir/stream.cpp.o.d"
  "/root/repo/src/simt/thread_pool.cpp" "src/simt/CMakeFiles/gas_simt.dir/thread_pool.cpp.o" "gcc" "src/simt/CMakeFiles/gas_simt.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
