# Empty dependencies file for gas_simt.
# This may be replaced when dependencies are built.
