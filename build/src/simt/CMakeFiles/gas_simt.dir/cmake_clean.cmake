file(REMOVE_RECURSE
  "CMakeFiles/gas_simt.dir/cost_model.cpp.o"
  "CMakeFiles/gas_simt.dir/cost_model.cpp.o.d"
  "CMakeFiles/gas_simt.dir/device_memory.cpp.o"
  "CMakeFiles/gas_simt.dir/device_memory.cpp.o.d"
  "CMakeFiles/gas_simt.dir/launch.cpp.o"
  "CMakeFiles/gas_simt.dir/launch.cpp.o.d"
  "CMakeFiles/gas_simt.dir/report.cpp.o"
  "CMakeFiles/gas_simt.dir/report.cpp.o.d"
  "CMakeFiles/gas_simt.dir/stream.cpp.o"
  "CMakeFiles/gas_simt.dir/stream.cpp.o.d"
  "CMakeFiles/gas_simt.dir/thread_pool.cpp.o"
  "CMakeFiles/gas_simt.dir/thread_pool.cpp.o.d"
  "libgas_simt.a"
  "libgas_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
