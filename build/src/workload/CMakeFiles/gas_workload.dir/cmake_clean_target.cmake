file(REMOVE_RECURSE
  "libgas_workload.a"
)
