# Empty compiler generated dependencies file for gas_workload.
# This may be replaced when dependencies are built.
