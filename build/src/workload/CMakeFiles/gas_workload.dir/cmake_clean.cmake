file(REMOVE_RECURSE
  "CMakeFiles/gas_workload.dir/dataset_io.cpp.o"
  "CMakeFiles/gas_workload.dir/dataset_io.cpp.o.d"
  "CMakeFiles/gas_workload.dir/generators.cpp.o"
  "CMakeFiles/gas_workload.dir/generators.cpp.o.d"
  "libgas_workload.a"
  "libgas_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
