file(REMOVE_RECURSE
  "CMakeFiles/test_msdata.dir/msdata/test_binning.cpp.o"
  "CMakeFiles/test_msdata.dir/msdata/test_binning.cpp.o.d"
  "CMakeFiles/test_msdata.dir/msdata/test_mgf_fuzz.cpp.o"
  "CMakeFiles/test_msdata.dir/msdata/test_mgf_fuzz.cpp.o.d"
  "CMakeFiles/test_msdata.dir/msdata/test_mgf_io.cpp.o"
  "CMakeFiles/test_msdata.dir/msdata/test_mgf_io.cpp.o.d"
  "CMakeFiles/test_msdata.dir/msdata/test_pipeline.cpp.o"
  "CMakeFiles/test_msdata.dir/msdata/test_pipeline.cpp.o.d"
  "CMakeFiles/test_msdata.dir/msdata/test_precursor_index.cpp.o"
  "CMakeFiles/test_msdata.dir/msdata/test_precursor_index.cpp.o.d"
  "CMakeFiles/test_msdata.dir/msdata/test_quality.cpp.o"
  "CMakeFiles/test_msdata.dir/msdata/test_quality.cpp.o.d"
  "CMakeFiles/test_msdata.dir/msdata/test_synth.cpp.o"
  "CMakeFiles/test_msdata.dir/msdata/test_synth.cpp.o.d"
  "test_msdata"
  "test_msdata.pdb"
  "test_msdata[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
