# Empty dependencies file for test_msdata.
# This may be replaced when dependencies are built.
