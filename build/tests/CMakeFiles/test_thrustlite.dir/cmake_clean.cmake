file(REMOVE_RECURSE
  "CMakeFiles/test_thrustlite.dir/thrustlite/test_algorithms.cpp.o"
  "CMakeFiles/test_thrustlite.dir/thrustlite/test_algorithms.cpp.o.d"
  "CMakeFiles/test_thrustlite.dir/thrustlite/test_device_vector.cpp.o"
  "CMakeFiles/test_thrustlite.dir/thrustlite/test_device_vector.cpp.o.d"
  "CMakeFiles/test_thrustlite.dir/thrustlite/test_float_ordering.cpp.o"
  "CMakeFiles/test_thrustlite.dir/thrustlite/test_float_ordering.cpp.o.d"
  "CMakeFiles/test_thrustlite.dir/thrustlite/test_radix64.cpp.o"
  "CMakeFiles/test_thrustlite.dir/thrustlite/test_radix64.cpp.o.d"
  "CMakeFiles/test_thrustlite.dir/thrustlite/test_radix_properties.cpp.o"
  "CMakeFiles/test_thrustlite.dir/thrustlite/test_radix_properties.cpp.o.d"
  "CMakeFiles/test_thrustlite.dir/thrustlite/test_radix_pruning.cpp.o"
  "CMakeFiles/test_thrustlite.dir/thrustlite/test_radix_pruning.cpp.o.d"
  "CMakeFiles/test_thrustlite.dir/thrustlite/test_radix_sort.cpp.o"
  "CMakeFiles/test_thrustlite.dir/thrustlite/test_radix_sort.cpp.o.d"
  "CMakeFiles/test_thrustlite.dir/thrustlite/test_reduce_scan.cpp.o"
  "CMakeFiles/test_thrustlite.dir/thrustlite/test_reduce_scan.cpp.o.d"
  "CMakeFiles/test_thrustlite.dir/thrustlite/test_segmented.cpp.o"
  "CMakeFiles/test_thrustlite.dir/thrustlite/test_segmented.cpp.o.d"
  "test_thrustlite"
  "test_thrustlite.pdb"
  "test_thrustlite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thrustlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
