
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/thrustlite/test_algorithms.cpp" "tests/CMakeFiles/test_thrustlite.dir/thrustlite/test_algorithms.cpp.o" "gcc" "tests/CMakeFiles/test_thrustlite.dir/thrustlite/test_algorithms.cpp.o.d"
  "/root/repo/tests/thrustlite/test_device_vector.cpp" "tests/CMakeFiles/test_thrustlite.dir/thrustlite/test_device_vector.cpp.o" "gcc" "tests/CMakeFiles/test_thrustlite.dir/thrustlite/test_device_vector.cpp.o.d"
  "/root/repo/tests/thrustlite/test_float_ordering.cpp" "tests/CMakeFiles/test_thrustlite.dir/thrustlite/test_float_ordering.cpp.o" "gcc" "tests/CMakeFiles/test_thrustlite.dir/thrustlite/test_float_ordering.cpp.o.d"
  "/root/repo/tests/thrustlite/test_radix64.cpp" "tests/CMakeFiles/test_thrustlite.dir/thrustlite/test_radix64.cpp.o" "gcc" "tests/CMakeFiles/test_thrustlite.dir/thrustlite/test_radix64.cpp.o.d"
  "/root/repo/tests/thrustlite/test_radix_properties.cpp" "tests/CMakeFiles/test_thrustlite.dir/thrustlite/test_radix_properties.cpp.o" "gcc" "tests/CMakeFiles/test_thrustlite.dir/thrustlite/test_radix_properties.cpp.o.d"
  "/root/repo/tests/thrustlite/test_radix_pruning.cpp" "tests/CMakeFiles/test_thrustlite.dir/thrustlite/test_radix_pruning.cpp.o" "gcc" "tests/CMakeFiles/test_thrustlite.dir/thrustlite/test_radix_pruning.cpp.o.d"
  "/root/repo/tests/thrustlite/test_radix_sort.cpp" "tests/CMakeFiles/test_thrustlite.dir/thrustlite/test_radix_sort.cpp.o" "gcc" "tests/CMakeFiles/test_thrustlite.dir/thrustlite/test_radix_sort.cpp.o.d"
  "/root/repo/tests/thrustlite/test_reduce_scan.cpp" "tests/CMakeFiles/test_thrustlite.dir/thrustlite/test_reduce_scan.cpp.o" "gcc" "tests/CMakeFiles/test_thrustlite.dir/thrustlite/test_reduce_scan.cpp.o.d"
  "/root/repo/tests/thrustlite/test_segmented.cpp" "tests/CMakeFiles/test_thrustlite.dir/thrustlite/test_segmented.cpp.o" "gcc" "tests/CMakeFiles/test_thrustlite.dir/thrustlite/test_segmented.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simt/CMakeFiles/gas_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/thrustlite/CMakeFiles/gas_thrustlite.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/gas_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gas_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/msdata/CMakeFiles/gas_msdata.dir/DependInfo.cmake"
  "/root/repo/build/src/ooc/CMakeFiles/gas_ooc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
