# Empty compiler generated dependencies file for test_thrustlite.
# This may be replaced when dependencies are built.
