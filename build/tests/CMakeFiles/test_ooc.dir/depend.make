# Empty dependencies file for test_ooc.
# This may be replaced when dependencies are built.
