file(REMOVE_RECURSE
  "CMakeFiles/test_ooc.dir/ooc/test_auto_sort.cpp.o"
  "CMakeFiles/test_ooc.dir/ooc/test_auto_sort.cpp.o.d"
  "CMakeFiles/test_ooc.dir/ooc/test_ooc_properties.cpp.o"
  "CMakeFiles/test_ooc.dir/ooc/test_ooc_properties.cpp.o.d"
  "CMakeFiles/test_ooc.dir/ooc/test_out_of_core.cpp.o"
  "CMakeFiles/test_ooc.dir/ooc/test_out_of_core.cpp.o.d"
  "test_ooc"
  "test_ooc.pdb"
  "test_ooc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ooc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
