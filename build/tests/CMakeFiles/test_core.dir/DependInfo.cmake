
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_analysis.cpp" "tests/CMakeFiles/test_core.dir/core/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_analysis.cpp.o.d"
  "/root/repo/tests/core/test_complexity.cpp" "tests/CMakeFiles/test_core.dir/core/test_complexity.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_complexity.cpp.o.d"
  "/root/repo/tests/core/test_device_ops.cpp" "tests/CMakeFiles/test_core.dir/core/test_device_ops.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_device_ops.cpp.o.d"
  "/root/repo/tests/core/test_generic_types.cpp" "tests/CMakeFiles/test_core.dir/core/test_generic_types.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_generic_types.cpp.o.d"
  "/root/repo/tests/core/test_gpu_array_sort.cpp" "tests/CMakeFiles/test_core.dir/core/test_gpu_array_sort.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_gpu_array_sort.cpp.o.d"
  "/root/repo/tests/core/test_insertion_sort.cpp" "tests/CMakeFiles/test_core.dir/core/test_insertion_sort.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_insertion_sort.cpp.o.d"
  "/root/repo/tests/core/test_pair_properties.cpp" "tests/CMakeFiles/test_core.dir/core/test_pair_properties.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_pair_properties.cpp.o.d"
  "/root/repo/tests/core/test_pair_sort.cpp" "tests/CMakeFiles/test_core.dir/core/test_pair_sort.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_pair_sort.cpp.o.d"
  "/root/repo/tests/core/test_phases.cpp" "tests/CMakeFiles/test_core.dir/core/test_phases.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_phases.cpp.o.d"
  "/root/repo/tests/core/test_plan.cpp" "tests/CMakeFiles/test_core.dir/core/test_plan.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_plan.cpp.o.d"
  "/root/repo/tests/core/test_properties.cpp" "tests/CMakeFiles/test_core.dir/core/test_properties.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_properties.cpp.o.d"
  "/root/repo/tests/core/test_ragged.cpp" "tests/CMakeFiles/test_core.dir/core/test_ragged.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_ragged.cpp.o.d"
  "/root/repo/tests/core/test_small_arrays.cpp" "tests/CMakeFiles/test_core.dir/core/test_small_arrays.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_small_arrays.cpp.o.d"
  "/root/repo/tests/core/test_splitter_quality.cpp" "tests/CMakeFiles/test_core.dir/core/test_splitter_quality.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_splitter_quality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simt/CMakeFiles/gas_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/thrustlite/CMakeFiles/gas_thrustlite.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/gas_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gas_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/msdata/CMakeFiles/gas_msdata.dir/DependInfo.cmake"
  "/root/repo/build/src/ooc/CMakeFiles/gas_ooc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
