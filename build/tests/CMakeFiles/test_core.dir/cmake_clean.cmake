file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_analysis.cpp.o"
  "CMakeFiles/test_core.dir/core/test_analysis.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_complexity.cpp.o"
  "CMakeFiles/test_core.dir/core/test_complexity.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_device_ops.cpp.o"
  "CMakeFiles/test_core.dir/core/test_device_ops.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_generic_types.cpp.o"
  "CMakeFiles/test_core.dir/core/test_generic_types.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_gpu_array_sort.cpp.o"
  "CMakeFiles/test_core.dir/core/test_gpu_array_sort.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_insertion_sort.cpp.o"
  "CMakeFiles/test_core.dir/core/test_insertion_sort.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_pair_properties.cpp.o"
  "CMakeFiles/test_core.dir/core/test_pair_properties.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_pair_sort.cpp.o"
  "CMakeFiles/test_core.dir/core/test_pair_sort.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_phases.cpp.o"
  "CMakeFiles/test_core.dir/core/test_phases.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_plan.cpp.o"
  "CMakeFiles/test_core.dir/core/test_plan.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_properties.cpp.o"
  "CMakeFiles/test_core.dir/core/test_properties.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_ragged.cpp.o"
  "CMakeFiles/test_core.dir/core/test_ragged.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_small_arrays.cpp.o"
  "CMakeFiles/test_core.dir/core/test_small_arrays.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_splitter_quality.cpp.o"
  "CMakeFiles/test_core.dir/core/test_splitter_quality.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
