
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simt/test_block_ctx.cpp" "tests/CMakeFiles/test_simt.dir/simt/test_block_ctx.cpp.o" "gcc" "tests/CMakeFiles/test_simt.dir/simt/test_block_ctx.cpp.o.d"
  "/root/repo/tests/simt/test_cost_model.cpp" "tests/CMakeFiles/test_simt.dir/simt/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/test_simt.dir/simt/test_cost_model.cpp.o.d"
  "/root/repo/tests/simt/test_device_memory.cpp" "tests/CMakeFiles/test_simt.dir/simt/test_device_memory.cpp.o" "gcc" "tests/CMakeFiles/test_simt.dir/simt/test_device_memory.cpp.o.d"
  "/root/repo/tests/simt/test_launch.cpp" "tests/CMakeFiles/test_simt.dir/simt/test_launch.cpp.o" "gcc" "tests/CMakeFiles/test_simt.dir/simt/test_launch.cpp.o.d"
  "/root/repo/tests/simt/test_memory_fuzz.cpp" "tests/CMakeFiles/test_simt.dir/simt/test_memory_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_simt.dir/simt/test_memory_fuzz.cpp.o.d"
  "/root/repo/tests/simt/test_occupancy.cpp" "tests/CMakeFiles/test_simt.dir/simt/test_occupancy.cpp.o" "gcc" "tests/CMakeFiles/test_simt.dir/simt/test_occupancy.cpp.o.d"
  "/root/repo/tests/simt/test_parallel_launch.cpp" "tests/CMakeFiles/test_simt.dir/simt/test_parallel_launch.cpp.o" "gcc" "tests/CMakeFiles/test_simt.dir/simt/test_parallel_launch.cpp.o.d"
  "/root/repo/tests/simt/test_report.cpp" "tests/CMakeFiles/test_simt.dir/simt/test_report.cpp.o" "gcc" "tests/CMakeFiles/test_simt.dir/simt/test_report.cpp.o.d"
  "/root/repo/tests/simt/test_stream.cpp" "tests/CMakeFiles/test_simt.dir/simt/test_stream.cpp.o" "gcc" "tests/CMakeFiles/test_simt.dir/simt/test_stream.cpp.o.d"
  "/root/repo/tests/simt/test_thread_pool.cpp" "tests/CMakeFiles/test_simt.dir/simt/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/test_simt.dir/simt/test_thread_pool.cpp.o.d"
  "/root/repo/tests/simt/test_timeline_fuzz.cpp" "tests/CMakeFiles/test_simt.dir/simt/test_timeline_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_simt.dir/simt/test_timeline_fuzz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simt/CMakeFiles/gas_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/thrustlite/CMakeFiles/gas_thrustlite.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/gas_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gas_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/msdata/CMakeFiles/gas_msdata.dir/DependInfo.cmake"
  "/root/repo/build/src/ooc/CMakeFiles/gas_ooc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
