file(REMOVE_RECURSE
  "CMakeFiles/test_simt.dir/simt/test_block_ctx.cpp.o"
  "CMakeFiles/test_simt.dir/simt/test_block_ctx.cpp.o.d"
  "CMakeFiles/test_simt.dir/simt/test_cost_model.cpp.o"
  "CMakeFiles/test_simt.dir/simt/test_cost_model.cpp.o.d"
  "CMakeFiles/test_simt.dir/simt/test_device_memory.cpp.o"
  "CMakeFiles/test_simt.dir/simt/test_device_memory.cpp.o.d"
  "CMakeFiles/test_simt.dir/simt/test_launch.cpp.o"
  "CMakeFiles/test_simt.dir/simt/test_launch.cpp.o.d"
  "CMakeFiles/test_simt.dir/simt/test_memory_fuzz.cpp.o"
  "CMakeFiles/test_simt.dir/simt/test_memory_fuzz.cpp.o.d"
  "CMakeFiles/test_simt.dir/simt/test_occupancy.cpp.o"
  "CMakeFiles/test_simt.dir/simt/test_occupancy.cpp.o.d"
  "CMakeFiles/test_simt.dir/simt/test_parallel_launch.cpp.o"
  "CMakeFiles/test_simt.dir/simt/test_parallel_launch.cpp.o.d"
  "CMakeFiles/test_simt.dir/simt/test_report.cpp.o"
  "CMakeFiles/test_simt.dir/simt/test_report.cpp.o.d"
  "CMakeFiles/test_simt.dir/simt/test_stream.cpp.o"
  "CMakeFiles/test_simt.dir/simt/test_stream.cpp.o.d"
  "CMakeFiles/test_simt.dir/simt/test_thread_pool.cpp.o"
  "CMakeFiles/test_simt.dir/simt/test_thread_pool.cpp.o.d"
  "CMakeFiles/test_simt.dir/simt/test_timeline_fuzz.cpp.o"
  "CMakeFiles/test_simt.dir/simt/test_timeline_fuzz.cpp.o.d"
  "test_simt"
  "test_simt.pdb"
  "test_simt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
