# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[tool.gas_mgf.workflow]=] "/usr/bin/cmake" "-DGAS_MGF=/root/repo/build/tools/gas_mgf" "-DWORK_DIR=/root/repo/build/tools" "-P" "/root/repo/tools/test_gas_mgf.cmake")
set_tests_properties([=[tool.gas_mgf.workflow]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[tool.gas_sortfile.workflow]=] "/usr/bin/cmake" "-DGAS_SORTFILE=/root/repo/build/tools/gas_sortfile" "-DWORK_DIR=/root/repo/build/tools" "-P" "/root/repo/tools/test_gas_sortfile.cmake")
set_tests_properties([=[tool.gas_sortfile.workflow]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[tool.gas_sortfile.rejects_bad_usage]=] "/root/repo/build/tools/gas_sortfile" "definitely-not-a-command")
set_tests_properties([=[tool.gas_sortfile.rejects_bad_usage]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
