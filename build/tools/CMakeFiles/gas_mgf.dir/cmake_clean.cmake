file(REMOVE_RECURSE
  "CMakeFiles/gas_mgf.dir/gas_mgf.cpp.o"
  "CMakeFiles/gas_mgf.dir/gas_mgf.cpp.o.d"
  "gas_mgf"
  "gas_mgf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_mgf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
