# Empty dependencies file for gas_mgf.
# This may be replaced when dependencies are built.
