file(REMOVE_RECURSE
  "CMakeFiles/gas_sortfile.dir/gas_sortfile.cpp.o"
  "CMakeFiles/gas_sortfile.dir/gas_sortfile.cpp.o.d"
  "gas_sortfile"
  "gas_sortfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_sortfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
