# Empty dependencies file for gas_sortfile.
# This may be replaced when dependencies are built.
