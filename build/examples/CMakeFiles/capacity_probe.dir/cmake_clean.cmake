file(REMOVE_RECURSE
  "CMakeFiles/capacity_probe.dir/capacity_probe.cpp.o"
  "CMakeFiles/capacity_probe.dir/capacity_probe.cpp.o.d"
  "capacity_probe"
  "capacity_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
