# Empty dependencies file for out_of_core_demo.
# This may be replaced when dependencies are built.
