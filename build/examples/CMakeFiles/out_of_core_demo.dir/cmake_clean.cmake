file(REMOVE_RECURSE
  "CMakeFiles/out_of_core_demo.dir/out_of_core_demo.cpp.o"
  "CMakeFiles/out_of_core_demo.dir/out_of_core_demo.cpp.o.d"
  "out_of_core_demo"
  "out_of_core_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/out_of_core_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
