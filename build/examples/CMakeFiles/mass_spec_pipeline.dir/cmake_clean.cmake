file(REMOVE_RECURSE
  "CMakeFiles/mass_spec_pipeline.dir/mass_spec_pipeline.cpp.o"
  "CMakeFiles/mass_spec_pipeline.dir/mass_spec_pipeline.cpp.o.d"
  "mass_spec_pipeline"
  "mass_spec_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mass_spec_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
