# Empty compiler generated dependencies file for mass_spec_pipeline.
# This may be replaced when dependencies are built.
