file(REMOVE_RECURSE
  "CMakeFiles/genomics_kmers.dir/genomics_kmers.cpp.o"
  "CMakeFiles/genomics_kmers.dir/genomics_kmers.cpp.o.d"
  "genomics_kmers"
  "genomics_kmers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genomics_kmers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
