# Empty dependencies file for genomics_kmers.
# This may be replaced when dependencies are built.
