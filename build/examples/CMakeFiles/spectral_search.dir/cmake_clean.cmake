file(REMOVE_RECURSE
  "CMakeFiles/spectral_search.dir/spectral_search.cpp.o"
  "CMakeFiles/spectral_search.dir/spectral_search.cpp.o.d"
  "spectral_search"
  "spectral_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
