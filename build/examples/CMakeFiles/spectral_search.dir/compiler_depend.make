# Empty compiler generated dependencies file for spectral_search.
# This may be replaced when dependencies are built.
