# Empty compiler generated dependencies file for device_introspection.
# This may be replaced when dependencies are built.
