file(REMOVE_RECURSE
  "CMakeFiles/device_introspection.dir/device_introspection.cpp.o"
  "CMakeFiles/device_introspection.dir/device_introspection.cpp.o.d"
  "device_introspection"
  "device_introspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_introspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
