// Quickstart: sort 10,000 arrays of 1,000 floats each with GPU-ArraySort on
// the simulated Tesla K40c, and verify against per-row std::sort.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "baseline/cpu_sort.hpp"
#include "core/gpu_array_sort.hpp"
#include "core/validate.hpp"
#include "simt/device.hpp"
#include "workload/generators.hpp"

int main() {
    const std::size_t num_arrays = 10000;
    const std::size_t array_size = 1000;

    std::printf("GPU-ArraySort quickstart\n");
    std::printf("generating %zu arrays x %zu uniform floats...\n", num_arrays, array_size);
    auto ds = workload::make_dataset(num_arrays, array_size,
                                     workload::Distribution::Uniform, 42);
    auto reference = ds.values;

    // A simulated Tesla K40c: 15 SMs, 11520 MB global memory, 48 KB shared.
    simt::Device device;
    std::printf("device: %s\n\n", device.props().name.c_str());

    const gas::SortStats stats =
        gas::gpu_array_sort(device, ds.values, num_arrays, array_size);

    std::printf("sorted in 3 kernels (one block per array, one thread per bucket):\n");
    std::printf("  phase 1 splitter selection : %8.2f ms modeled (%7.1f ms wall)\n",
                stats.phase1.modeled_ms, stats.phase1.wall_ms);
    std::printf("  phase 2 in-place bucketing : %8.2f ms modeled (%7.1f ms wall)\n",
                stats.phase2.modeled_ms, stats.phase2.wall_ms);
    std::printf("  phase 3 bucket sort        : %8.2f ms modeled (%7.1f ms wall)\n",
                stats.phase3.modeled_ms, stats.phase3.wall_ms);
    std::printf("  H2D + D2H transfers        : %8.2f ms modeled\n",
                stats.h2d_ms + stats.d2h_ms);
    std::printf("  buckets per array          : %zu (target >= 20 elements each)\n",
                stats.buckets_per_array);
    std::printf("  peak device memory         : %.1f MB for %.1f MB of data (+%.1f%%)\n",
                static_cast<double>(stats.peak_device_bytes) / 1048576.0,
                static_cast<double>(stats.data_bytes) / 1048576.0,
                stats.overhead_fraction() * 100.0);

    // Verify against the host oracle.
    const double cpu_ms = baseline::cpu_sort_arrays(reference, num_arrays, array_size);
    const bool ok = ds.values == reference;
    std::printf("\nper-row std::sort oracle took %.1f ms; results %s\n", cpu_ms,
                ok ? "MATCH" : "DIFFER");
    return ok ? 0 : 1;
}
