// Mass-spectrometry pipeline — the domain the paper's introduction
// motivates.  Synthesizes an MGF file of MS/MS spectra, then runs the
// GPU-backed preprocessing a proteomics tool would: MS-REDUCE-style peak
// reduction followed by per-spectrum intensity sorting, both driven by the
// ragged GPU array sort.
//
//   $ ./build/examples/mass_spec_pipeline [num_spectra]

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "msdata/mgf_io.hpp"
#include "msdata/pipeline.hpp"
#include "msdata/synth.hpp"
#include "simt/device.hpp"

int main(int argc, char** argv) {
    const std::size_t num_spectra =
        argc > 1 ? static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10)) : 2000;

    std::printf("mass-spec pipeline over %zu synthetic spectra (up to 4000 peaks each)\n",
                num_spectra);
    msdata::SynthOptions synth;
    synth.min_peaks = 200;
    synth.max_peaks = 4000;  // the paper's proteomics bound
    auto set = msdata::generate_spectra(num_spectra, synth);
    std::printf("generated %zu peaks total (max %zu per spectrum)\n", set.total_peaks(),
                set.max_peaks());

    // Round-trip through the interchange format, as a real tool would.
    std::stringstream mgf;
    msdata::write_mgf(mgf, set);
    std::printf("MGF serialization: %.1f MB\n",
                static_cast<double>(mgf.str().size()) / 1048576.0);
    set = msdata::read_mgf(mgf);

    simt::Device device;  // simulated Tesla K40c

    // Step 1: MS-REDUCE-style reduction — keep the 30% most intense peaks of
    // every spectrum.  The per-spectrum threshold comes from GPU-sorted
    // intensity arrays.
    const auto red = msdata::reduce_spectra(device, set, 0.30);
    std::printf("\nMS-REDUCE step: %zu -> %zu peaks (%.1f%% kept), ragged GPU sort took "
                "%.2f ms modeled\n",
                red.peaks_in, red.peaks_out,
                100.0 * static_cast<double>(red.peaks_out) /
                    static_cast<double>(red.peaks_in),
                red.sort.phase2.modeled_ms);

    // Step 2: downstream scoring algorithms want intensity-sorted spectra.
    const auto srt = msdata::sort_spectra_by_intensity(device, set);
    std::printf("intensity sort : %zu peaks across %zu spectra, %.2f ms modeled\n",
                srt.peaks_out, set.size(), srt.sort.phase2.modeled_ms);

    // Show one spectrum before/after.
    if (!set.spectra.empty()) {
        const auto& s = set.spectra.front();
        std::printf("\nspectrum '%s': %zu peaks, weakest %.1f, strongest %.1f\n",
                    s.title.c_str(), s.size(), static_cast<double>(s.peaks.front().intensity),
                    static_cast<double>(s.peaks.back().intensity));
    }
    std::printf("\ndone: every spectrum is reduced and intensity-sorted.\n");
    return 0;
}
