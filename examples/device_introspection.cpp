// Device introspection — where does a sort's modeled time actually go?
// Runs one GPU-ArraySort and one STA over the same dataset and prints the
// simulator's per-kernel cost tables (compute vs. bandwidth bound, DRAM
// traffic, launch counts) — the numbers behind every figure in this repo.
//
//   $ ./build/examples/device_introspection

#include <cstdio>
#include <iostream>

#include "baseline/sta_sort.hpp"
#include "core/gpu_array_sort.hpp"
#include "simt/device.hpp"
#include "simt/report.hpp"
#include "workload/generators.hpp"

int main() {
    const std::size_t num_arrays = 2000;
    const std::size_t array_size = 1000;
    auto ds = workload::make_dataset(num_arrays, array_size,
                                     workload::Distribution::Uniform, 3);

    std::printf("%s\n\n", simt::describe_device(simt::tesla_k40c()).c_str());

    {
        simt::Device dev;
        auto copy = ds.values;
        gas::gpu_array_sort(dev, copy, num_arrays, array_size);
        std::printf("GPU-ArraySort kernel log (N = %zu, n = %zu):\n", num_arrays,
                    array_size);
        simt::print_kernel_log(std::cout, dev);
        std::printf("\n");
    }
    {
        simt::Device dev;
        auto copy = ds.values;
        sta::sta_sort(dev, copy, num_arrays, array_size);
        std::printf("STA kernel summary (%zu launches folded by name):\n",
                    dev.kernel_log().size());
        simt::print_kernel_summary(std::cout, dev);
    }

    std::printf("\nreading the tables: GPU-ArraySort runs 3 kernels total; STA runs\n");
    std::printf("3 radix sorts x up to 8 passes x 3 kernels plus tagging/conversion\n");
    std::printf("(key-range pruning, on by default here, skips provably-identity\n");
    std::printf("passes; the paper benches disable it) — the launch-count and\n");
    std::printf("traffic gap is the paper's whole argument.\n");
    return 0;
}
