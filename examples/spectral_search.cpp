// Spectral library search — a fuller domain workflow on top of the sorting
// core: quality-filter a spectra library, reduce it MS-REDUCE-style, sort
// peaks by intensity with the key-value array sort (descending, so the
// strongest peaks lead), then rank the library against a query spectrum by
// binned cosine similarity.
//
//   $ ./build/examples/spectral_search [library_size]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "core/pair_sort.hpp"
#include "msdata/binning.hpp"
#include "msdata/pipeline.hpp"
#include "msdata/quality.hpp"
#include "msdata/synth.hpp"
#include "simt/device.hpp"

int main(int argc, char** argv) {
    const std::size_t library_size =
        argc > 1 ? static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10)) : 500;

    simt::Device device;  // simulated Tesla K40c
    auto library = msdata::generate_spectra(library_size);
    std::printf("library: %zu spectra, %zu peaks\n", library.size(), library.total_peaks());

    // 1. Quality gate: drop spectra without discernible signal.
    const std::size_t dropped = msdata::filter_by_quality(device, library, 2.0, 50);
    std::printf("quality filter: dropped %zu, kept %zu\n", dropped, library.size());

    // 2. MS-REDUCE: keep the strongest 25%% of peaks per spectrum.
    const auto red = msdata::reduce_spectra(device, library, 0.25);
    std::printf("reduction: %zu -> %zu peaks\n", red.peaks_in, red.peaks_out);

    // 3. Descending intensity sort of whole peaks, on device, via the
    //    key-value array sort (keys = intensities, values = m/z).
    {
        std::vector<float> keys;
        std::vector<float> vals;
        std::vector<std::uint64_t> offsets = {0};
        for (const auto& s : library.spectra) {
            for (const auto& p : s.peaks) {
                keys.push_back(p.intensity);
                vals.push_back(p.mz);
            }
            offsets.push_back(keys.size());
        }
        gas::Options opts;
        opts.order = gas::SortOrder::Descending;
        const auto stats = gas::gpu_ragged_pair_sort(device, keys, vals, offsets, opts);
        for (std::size_t i = 0; i < library.size(); ++i) {
            auto& peaks = library.spectra[i].peaks;
            for (std::size_t k = 0; k < peaks.size(); ++k) {
                peaks[k] = msdata::Peak{vals[offsets[i] + k], keys[offsets[i] + k]};
            }
        }
        std::printf("pair sort: %.2f ms modeled for %zu pairs (descending)\n",
                    stats.phase2.modeled_ms + stats.extra.modeled_ms, keys.size());
    }

    // 4. Query = a noisy copy of a random library member; rank by cosine.
    if (library.size() < 2) {
        std::printf("library too small after filtering; rerun with a larger size\n");
        return 0;
    }
    const std::size_t target = library.size() / 2;
    msdata::Spectrum query = library.spectra[target];
    for (auto& p : query.peaks) p.intensity *= 1.05f;  // 5% gain drift

    const auto scores = msdata::search_similarity(library, query);
    const std::size_t best = static_cast<std::size_t>(
        std::max_element(scores.begin(), scores.end()) - scores.begin());

    std::printf("\nquery derived from library entry #%zu ('%s')\n", target,
                library.spectra[target].title.c_str());
    std::printf("best match:                  #%zu ('%s'), cosine %.4f\n", best,
                library.spectra[best].title.c_str(), scores[best]);
    std::printf("device totals: %.1f ms modeled over %zu kernel launches\n",
                device.total_modeled_ms(), device.kernel_log().size());
    return best == target ? 0 : 1;
}
