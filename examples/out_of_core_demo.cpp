// Out-of-core demo — the paper's section 9 future work, implemented: sort a
// dataset several times larger than device memory by streaming batches
// through the device with double-buffered transfers.
//
//   $ ./build/examples/out_of_core_demo

#include <cstdio>

#include "core/validate.hpp"
#include "ooc/out_of_core.hpp"
#include "simt/device.hpp"
#include "workload/generators.hpp"

int main() {
    // A toy 16 MB device makes the batching visible at demo scale.
    simt::Device device(simt::tiny_device(16 << 20));
    const std::size_t num_arrays = 16000;
    const std::size_t array_size = 1000;  // 64 MB of data on a 16 MB device

    std::printf("out-of-core sort: %.0f MB of arrays through a %.0f MB device\n",
                static_cast<double>(num_arrays * array_size * sizeof(float)) / 1048576.0,
                static_cast<double>(device.memory().capacity()) / 1048576.0);

    auto ds = workload::make_dataset(num_arrays, array_size,
                                     workload::Distribution::Uniform, 7);
    const auto before = ds.values;

    ooc::OocOptions opts;
    opts.num_streams = 2;  // double buffering
    const auto stats = ooc::out_of_core_sort(device, ds.values, num_arrays, array_size, opts);

    std::printf("\n%zu batches of %zu arrays each\n", stats.batches, stats.batch_arrays);
    std::printf("modeled kernel time   : %8.1f ms\n", stats.kernel_ms);
    std::printf("modeled transfer time : %8.1f ms\n", stats.transfer_ms);
    std::printf("serial (1 stream)     : %8.1f ms\n", stats.modeled_serial_ms);
    std::printf("overlapped (2 streams): %8.1f ms  -> %.2fx from overlap\n",
                stats.modeled_overlap_ms, stats.overlap_speedup());

    const bool sorted = gas::all_arrays_sorted(ds.values, num_arrays, array_size);
    const bool perm = gas::all_arrays_permuted(before, ds.values, num_arrays, array_size);
    std::printf("\nverification: sorted=%s, permutation=%s\n", sorted ? "yes" : "NO",
                perm ? "yes" : "NO");
    return sorted && perm ? 0 : 1;
}
