// Genomics k-mer sorting — the introduction's other motivating domain
// (ref. [9]): thousands of reads, each producing a small array of encoded
// k-mers that downstream seed-matching wants sorted.  Exercises the integral
// (uint32) element path of GPU-ArraySort.
//
//   $ ./build/examples/genomics_kmers [num_reads]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "core/gpu_array_sort.hpp"
#include "core/validate.hpp"
#include "simt/device.hpp"

namespace {

/// 2-bit packs a random DNA read and extracts its k-mers (k = 15 fits 30
/// bits, leaving the top bits clear like real k-mer encoders).
std::vector<std::uint32_t> kmers_of_read(std::mt19937_64& rng, std::size_t read_len,
                                         unsigned k) {
    std::vector<std::uint8_t> bases(read_len);
    for (auto& b : bases) b = static_cast<std::uint8_t>(rng() % 4);

    std::vector<std::uint32_t> kmers;
    kmers.reserve(read_len - k + 1);
    std::uint32_t window = 0;
    const std::uint32_t mask = (1u << (2 * k)) - 1u;
    for (std::size_t i = 0; i < read_len; ++i) {
        window = ((window << 2) | bases[i]) & mask;
        if (i + 1 >= k) kmers.push_back(window);
    }
    return kmers;
}

}  // namespace

int main(int argc, char** argv) {
    const std::size_t num_reads =
        argc > 1 ? static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10)) : 20000;
    const std::size_t read_len = 164;  // short-read length
    const unsigned k = 15;
    const std::size_t kmers_per_read = read_len - k + 1;  // 150

    std::printf("k-mer sort: %zu reads x %zu %u-mers (uint32-encoded)\n", num_reads,
                kmers_per_read, k);

    std::mt19937_64 rng(1234);
    std::vector<std::uint32_t> data;
    data.reserve(num_reads * kmers_per_read);
    for (std::size_t r = 0; r < num_reads; ++r) {
        const auto km = kmers_of_read(rng, read_len, k);
        data.insert(data.end(), km.begin(), km.end());
    }

    simt::Device device;  // simulated Tesla K40c
    const auto stats = gas::gpu_array_sort(device, std::span<std::uint32_t>(data),
                                           num_reads, kmers_per_read);

    std::printf("sorted in %.2f ms modeled (%zu buckets/read, peak %.1f MB)\n",
                stats.modeled_kernel_ms(), stats.buckets_per_array,
                static_cast<double>(stats.peak_device_bytes) / 1048576.0);

    // Downstream consumers: per-read duplicate-k-mer counting needs sorted
    // order — count adjacent duplicates as a demo.
    std::size_t dup = 0;
    for (std::size_t r = 0; r < num_reads; ++r) {
        const auto row =
            std::span<const std::uint32_t>(data).subspan(r * kmers_per_read, kmers_per_read);
        for (std::size_t i = 1; i < row.size(); ++i) dup += row[i] == row[i - 1] ? 1 : 0;
    }
    std::printf("adjacent duplicate k-mers across all reads: %zu\n", dup);

    const bool ok = gas::all_arrays_sorted(std::span<const std::uint32_t>(data), num_reads,
                                           kmers_per_read);
    std::printf("verification: %s\n", ok ? "every read's k-mers ascending" : "FAILED");
    return ok ? 0 : 1;
}
