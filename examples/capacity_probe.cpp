// Capacity probe — the Table 1 methodology as a tool: for a given array
// size, how many arrays fit on the device under each technique before the
// allocator reports OOM?  Uses virtual-mode accounting, so it works for the
// full 11.5 GB K40c on any host.
//
//   $ ./build/examples/capacity_probe [array_size] [device_mb]

#include <cstdio>
#include <cstdlib>
#include <functional>

#include "baseline/sta_sort.hpp"
#include "core/gpu_array_sort.hpp"
#include "simt/device.hpp"
#include "thrustlite/radix_sort.hpp"

namespace {

std::size_t find_max(const std::function<bool(std::size_t)>& fits) {
    std::size_t lo = 1;
    if (!fits(lo)) return 0;
    std::size_t hi = 2;
    while (fits(hi)) {
        lo = hi;
        hi *= 2;
    }
    while (lo + 1 < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        (fits(mid) ? lo : hi) = mid;
    }
    return lo;
}

}  // namespace

int main(int argc, char** argv) {
    const std::size_t array_size =
        argc > 1 ? static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10)) : 1000;
    simt::DeviceProperties props = simt::tesla_k40c();
    if (argc > 2) {
        props = simt::tiny_device(std::strtoull(argv[2], nullptr, 10) << 20);
    }

    std::printf("capacity probe: arrays of %zu floats on a %.0f MB device\n", array_size,
                static_cast<double>(props.global_memory_bytes) / 1048576.0);

    const auto gas_fits = [&](std::size_t num_arrays) {
        simt::Device dev(props, simt::DeviceMemory::Mode::Virtual);
        try {
            const auto plan = gas::make_plan(array_size, gas::Options{}, props);
            simt::DeviceBuffer<float> data(dev, num_arrays * array_size);
            simt::DeviceBuffer<float> splitters(dev, num_arrays * plan.splitters_per_array);
            simt::DeviceBuffer<std::uint32_t> sizes(dev, num_arrays * plan.buckets);
            return true;
        } catch (const simt::DeviceBadAlloc&) {
            return false;
        }
    };
    const auto sta_fits = [&](std::size_t num_arrays) {
        simt::Device dev(props, simt::DeviceMemory::Mode::Virtual);
        const std::size_t count = num_arrays * array_size;
        try {
            simt::DeviceBuffer<float> data(dev, count);
            simt::DeviceBuffer<std::uint32_t> tags(dev, count);
            simt::DeviceBuffer<std::uint8_t> scratch(
                dev, thrustlite::radix_scratch_bytes(count, true));
            return true;
        } catch (const simt::DeviceBadAlloc&) {
            return false;
        }
    };

    const std::size_t max_gas = find_max(gas_fits);
    const std::size_t max_sta = find_max(sta_fits);
    std::printf("  GPU-ArraySort : %12zu arrays (%.2f B/element footprint)\n", max_gas,
                static_cast<double>(props.global_memory_bytes) /
                    static_cast<double>(max_gas * array_size));
    std::printf("  STA (Thrust)  : %12zu arrays (%.2f B/element footprint)\n", max_sta,
                static_cast<double>(props.global_memory_bytes) /
                    static_cast<double>(max_sta * array_size));
    std::printf("  advantage     : %.2fx more arrays with GPU-ArraySort\n",
                static_cast<double>(max_gas) / static_cast<double>(max_sta));
    return 0;
}
