// gas_chaos — chaos-test the sorting stack under deterministic fault
// injection (simt::faults).  Each workload runs on its own simulated device
// with a seeded fault plan armed, exercises the resilience layer
// (gas::resilient: verify / retry / quarantine, ooc checkpoint-resume), and
// checks the final bytes against a host reference.  The same seed always
// produces the same faults, the same recovery path and the same bytes.
//
//   gas_chaos run [options]
//     --workload W          uniform | ragged | pairs | ooc | serve | all
//                           (default all)
//     --seed S              fault-plan seed (default 1)
//     --alloc-fail-every K  fail ~1 in K device allocations
//     --launch-fail-every K refuse ~1 in K kernel launches
//     --corrupt-every K     corrupt device memory before ~1 in K launches
//     --undetected          corruption is silent (no TransferError); only
//                           output verification can catch it
//     --stall-every K       stall ~1 in K timeline engine ops
//     --stall-ms MS         modeled stall duration (default 2.0)
//     --requests R          serve-workload request count (default 64)
//     --arrays N            arrays per request/dataset (default 8)
//     --size n              elements per array (default 96)
//     --kill-revive on|off  also run the kill-revive-kill workload: a
//                           two-device health-enabled fleet server whose
//                           device 0 is killed, revived (probe-sort
//                           re-admission through probation) and killed
//                           again, with every response byte-checked
//                           (default off; also reachable as
//                           --workload kill-revive)
//     --json PATH           write a machine-readable summary (per-workload
//                           recovery outcome + FaultReport)
//
// Exit code 0 iff every workload terminated with verified-correct bytes —
// faults may have fired (and been recovered); an unrecovered failure or a
// byte mismatch exits 1.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/resilient_sort.hpp"
#include "ooc/out_of_core.hpp"
#include "serve/server.hpp"
#include "simt/device.hpp"
#include "workload/generators.hpp"

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: gas_chaos run [--workload uniform|ragged|pairs|ooc|serve|all]\n"
                 "                     [--seed S] [--alloc-fail-every K]\n"
                 "                     [--launch-fail-every K] [--corrupt-every K]\n"
                 "                     [--undetected] [--stall-every K] [--stall-ms MS]\n"
                 "                     [--requests R] [--arrays N] [--size n]\n"
                 "                     [--kill-revive on|off] [--json PATH]\n");
    return 2;
}

struct CliOptions {
    std::string workload = "all";
    std::uint64_t seed = 1;
    std::uint64_t alloc_fail_every = 0;
    std::uint64_t launch_fail_every = 0;
    std::uint64_t corrupt_every = 0;
    bool undetected = false;
    std::uint64_t stall_every = 0;
    double stall_ms = 2.0;
    std::size_t requests = 64;
    std::size_t arrays = 8;
    std::size_t size = 96;
    bool kill_revive = false;
    std::string json;
};

simt::faults::FaultPlan make_plan(const CliOptions& cli) {
    simt::faults::FaultPlan plan;
    plan.seed = cli.seed;
    plan.alloc_fail_every = cli.alloc_fail_every;
    plan.launch_fail_every = cli.launch_fail_every;
    plan.corrupt_every = cli.corrupt_every;
    plan.detected = !cli.undetected;
    plan.stall_every = cli.stall_every;
    plan.stall_ms = cli.stall_ms;
    return plan;
}

struct WorkloadResult {
    std::string name;
    bool recovered = true;      ///< terminated without an escaped error
    std::size_t mismatches = 0; ///< rows whose final bytes are wrong
    std::string error;
    std::string detail;         ///< one-line recovery summary
    simt::faults::FaultReport report;
};

std::size_t count_bad_rows(std::span<const float> got, std::span<const float> want,
                           std::size_t num_rows, std::size_t row_size) {
    std::size_t bad = 0;
    for (std::size_t a = 0; a < num_rows; ++a) {
        if (std::memcmp(got.data() + a * row_size, want.data() + a * row_size,
                        row_size * sizeof(float)) != 0) {
            ++bad;
        }
    }
    return bad;
}

WorkloadResult run_uniform(const CliOptions& cli, simt::Device& device) {
    WorkloadResult res;
    res.name = "uniform";
    std::vector<float> data =
        workload::make_dataset(cli.arrays, cli.size, workload::Distribution::Uniform,
                               cli.seed)
            .values;
    std::vector<float> want = data;
    for (std::size_t a = 0; a < cli.arrays; ++a) {
        auto* row = want.data() + a * cli.size;
        std::sort(row, row + cli.size);
    }

    gas::Options opts;
    opts.verify_output = true;
    gas::resilient::RetryPolicy retry;
    retry.seed = cli.seed;
    retry.max_attempts = 5;
    gas::resilient::AttemptLog log;
    try {
        gas::resilient::sort_arrays<float>(device, std::span<float>(data), cli.arrays,
                                           cli.size, opts, retry, &log);
        res.mismatches = count_bad_rows(data, want, cli.arrays, cli.size);
    } catch (const std::exception& e) {
        res.recovered = false;
        res.error = e.what();
    }
    res.detail = std::to_string(log.attempts) + " attempt(s), " +
                 std::to_string(log.errors.size()) + " transient error(s)";
    return res;
}

WorkloadResult run_ragged(const CliOptions& cli, simt::Device& device) {
    WorkloadResult res;
    res.name = "ragged";
    auto ds = workload::make_ragged_dataset(cli.arrays, 1, std::max<std::size_t>(cli.size, 2),
                                            workload::Distribution::Uniform, cli.seed);
    std::vector<float> data = std::move(ds.values);
    std::vector<std::uint64_t> offsets(ds.offsets.begin(), ds.offsets.end());
    std::vector<float> want = data;
    for (std::size_t i = 1; i < offsets.size(); ++i) {
        std::sort(want.data() + offsets[i - 1], want.data() + offsets[i]);
    }

    gas::Options opts;
    opts.verify_output = true;
    gas::resilient::RetryPolicy retry;
    retry.seed = cli.seed;
    retry.max_attempts = 5;
    gas::resilient::AttemptLog log;
    try {
        gas::resilient::ragged_sort(device, data, offsets, opts, retry, &log);
        for (std::size_t i = 1; i < offsets.size(); ++i) {
            if (std::memcmp(data.data() + offsets[i - 1], want.data() + offsets[i - 1],
                            (offsets[i] - offsets[i - 1]) * sizeof(float)) != 0) {
                ++res.mismatches;
            }
        }
    } catch (const std::exception& e) {
        res.recovered = false;
        res.error = e.what();
    }
    res.detail = std::to_string(log.attempts) + " attempt(s), " +
                 std::to_string(log.errors.size()) + " transient error(s)";
    return res;
}

WorkloadResult run_pairs(const CliOptions& cli, simt::Device& device) {
    WorkloadResult res;
    res.name = "pairs";
    std::vector<float> keys =
        workload::make_dataset(cli.arrays, cli.size, workload::Distribution::Uniform,
                               cli.seed)
            .values;
    std::vector<float> vals(keys.size());
    for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = static_cast<float>(i);
    // Reference: per-row sortedness of keys and the key/value multiset (tie
    // order is unspecified on the device, so bytes are not comparable).
    std::vector<std::uint64_t> want(cli.arrays);
    for (std::size_t a = 0; a < cli.arrays; ++a) {
        want[a] = gas::resilient::pair_row_checksum(
            std::span<const float>(keys.data() + a * cli.size, cli.size),
            std::span<const float>(vals.data() + a * cli.size, cli.size));
    }

    gas::Options opts;
    opts.verify_output = true;
    gas::resilient::RetryPolicy retry;
    retry.seed = cli.seed;
    retry.max_attempts = 5;
    gas::resilient::AttemptLog log;
    try {
        gas::resilient::pair_sort<float>(device, std::span<float>(keys),
                                         std::span<float>(vals), cli.arrays, cli.size, opts,
                                         retry, &log);
        for (std::size_t a = 0; a < cli.arrays; ++a) {
            const auto* row = keys.data() + a * cli.size;
            const bool sorted = std::is_sorted(row, row + cli.size);
            const std::uint64_t sum = gas::resilient::pair_row_checksum(
                std::span<const float>(row, cli.size),
                std::span<const float>(vals.data() + a * cli.size, cli.size));
            if (!sorted || sum != want[a]) ++res.mismatches;
        }
    } catch (const std::exception& e) {
        res.recovered = false;
        res.error = e.what();
    }
    res.detail = std::to_string(log.attempts) + " attempt(s), " +
                 std::to_string(log.errors.size()) + " transient error(s)";
    return res;
}

WorkloadResult run_ooc(const CliOptions& cli, simt::Device& device) {
    WorkloadResult res;
    res.name = "ooc";
    // Several chunks' worth of arrays so retries, host fallbacks and the
    // checkpoint all operate at chunk granularity.
    const std::size_t num_arrays = cli.arrays * 4;
    std::vector<float> data =
        workload::make_dataset(num_arrays, cli.size, workload::Distribution::Uniform,
                               cli.seed)
            .values;
    std::vector<float> want = data;
    for (std::size_t a = 0; a < num_arrays; ++a) {
        auto* row = want.data() + a * cli.size;
        std::sort(row, row + cli.size);
    }

    ooc::OocOptions opts;
    opts.batch_arrays = cli.arrays;
    opts.sort_opts.verify_output = true;
    opts.retry.seed = cli.seed;
    opts.retry.max_attempts = 5;
    ooc::OocCheckpoint checkpoint;
    try {
        const ooc::OocStats s = ooc::out_of_core_sort(device, data, num_arrays, cli.size,
                                                      opts, &checkpoint);
        res.mismatches = count_bad_rows(data, want, num_arrays, cli.size);
        res.detail = std::to_string(s.batches) + " chunk(s), " +
                     std::to_string(s.chunk_retries) + " retried, " +
                     std::to_string(s.chunk_host_fallbacks) + " host fallback(s), " +
                     "checkpoint " + std::to_string(checkpoint.completed()) + "/" +
                     std::to_string(checkpoint.done.size()) + " done";
        if (!checkpoint.complete()) {
            res.recovered = false;
            res.error = "checkpoint incomplete after a successful run";
        }
    } catch (const std::exception& e) {
        res.recovered = false;
        res.error = e.what();
        res.detail = "checkpoint " + std::to_string(checkpoint.completed()) + "/" +
                     std::to_string(checkpoint.done.size()) + " done at failure";
    }
    return res;
}

WorkloadResult run_serve(const CliOptions& cli, simt::Device& device) {
    WorkloadResult res;
    res.name = "serve";
    gas::serve::ServerConfig cfg;
    cfg.manual_pump = true;
    cfg.queue_capacity = cli.requests;
    cfg.verify_responses = true;
    cfg.retry.seed = cli.seed;
    cfg.retry.max_attempts = 5;
    gas::serve::Server server(device, cfg);

    struct Outstanding {
        std::vector<float> want;  ///< host-sorted copy of the submitted rows
        gas::serve::Server::Ticket ticket;
    };
    std::vector<Outstanding> live;
    live.reserve(cli.requests);
    try {
        for (std::size_t r = 0; r < cli.requests; ++r) {
            gas::serve::Job job;
            job.kind = gas::serve::JobKind::Uniform;
            job.num_arrays = cli.arrays;
            job.array_size = cli.size;
            job.values = workload::make_dataset(cli.arrays, cli.size,
                                                workload::Distribution::Uniform, r + 1)
                             .values;
            Outstanding o;
            o.want = job.values;
            for (std::size_t a = 0; a < cli.arrays; ++a) {
                auto* row = o.want.data() + a * cli.size;
                std::sort(row, row + cli.size);
            }
            o.ticket = server.submit(std::move(job));
            live.push_back(std::move(o));
        }
        server.pump();
        for (auto& o : live) {
            auto r = o.ticket.result.get();
            if (!r.ok() || std::memcmp(r.values.data(), o.want.data(),
                                       o.want.size() * sizeof(float)) != 0) {
                ++res.mismatches;
            }
        }
        server.stop();
        const auto stats = server.stats();
        res.detail = std::to_string(stats.retries) + " batch retries, " +
                     std::to_string(stats.alloc_retries) + " alloc retries, " +
                     std::to_string(stats.quarantined) + " quarantined, " +
                     std::to_string(stats.verify_failures) + " verify failures";
    } catch (const std::exception& e) {
        res.recovered = false;
        res.error = e.what();
    }
    return res;
}

/// Kill -> revive -> kill against a two-device health-enabled fleet server:
/// device 0 is killed mid-traffic (quarantine + reroute), revived (probe
/// sorts re-admit it through probation back to healthy), then killed again.
/// Recovery means every accepted request's bytes match the host sort across
/// all three phases and the health counters show both losses plus the
/// re-admission in between.
WorkloadResult run_kill_revive(const CliOptions& cli) {
    WorkloadResult res;
    res.name = "kill-revive";
    gas::fleet::DeviceFleet fleet(2);
    gas::serve::ServerConfig cfg;
    cfg.manual_pump = true;
    cfg.queue_capacity = std::max<std::size_t>(cli.requests, 16);
    cfg.retry.seed = cli.seed;
    cfg.health.enabled = true;
    cfg.health.probe_passes = 1;
    cfg.health.probation_batches = 1;
    cfg.health.probation_base_weight = 1.0;
    gas::serve::Server server(fleet, cfg);

    simt::faults::FaultPlan kill;
    kill.seed = cli.seed;
    kill.launch_fail_every = 1;

    const std::size_t burst = std::max<std::size_t>(cli.requests / 4, 4);
    std::uint64_t data_seed = cli.seed * 1000;
    auto serve_burst = [&]() {
        std::vector<std::pair<std::vector<float>, gas::serve::Server::Ticket>> live;
        for (std::size_t r = 0; r < burst; ++r) {
            gas::serve::Job job;
            job.kind = gas::serve::JobKind::Uniform;
            job.num_arrays = cli.arrays;
            // Vary the geometry so batches spread over both shards.
            job.array_size = cli.size + 16 * (r % 4);
            job.values =
                workload::make_dataset(cli.arrays, job.array_size,
                                       workload::Distribution::Uniform, ++data_seed)
                    .values;
            auto want = job.values;
            for (std::size_t a = 0; a < cli.arrays; ++a) {
                auto* row = want.data() + a * job.array_size;
                std::sort(row, row + job.array_size);
            }
            live.emplace_back(std::move(want), server.submit(std::move(job)));
        }
        server.pump();
        for (auto& [want, ticket] : live) {
            const auto r = ticket.result.get();
            if (!r.ok() || r.values != want) ++res.mismatches;
        }
    };

    try {
        fleet.device(0).set_fault_plan(kill);
        serve_burst();  // phase 1: device 0 dies, survivor carries the burst
        fleet.device(0).set_fault_plan({});
        server.pump();  // probe cycle: re-admission into probation
        for (int round = 0; round < 8; ++round) {
            serve_burst();  // phase 2: verified traffic on the revived device
            if (server.stats().devices[0].health_state == "healthy") break;
        }
        const auto mid = server.stats();
        if (mid.devices[0].health_state != "healthy" || mid.health.readmissions != 1) {
            res.recovered = false;
            res.error = "device 0 not re-admitted (state " +
                        mid.devices[0].health_state + ")";
        }
        fleet.device(0).set_fault_plan(kill);
        serve_burst();  // phase 3: it dies again; service must survive again
        server.stop();
        const auto stats = server.stats();
        if (stats.health.quarantines < 2) {
            res.recovered = false;
            res.error = "expected two quarantines, saw " +
                        std::to_string(stats.health.quarantines);
        }
        res.mismatches += stats.health.hedge_mismatches;
        res.detail = std::to_string(stats.health.quarantines) + " quarantine(s), " +
                     std::to_string(stats.health.probes_run) + " probe(s), " +
                     std::to_string(stats.health.readmissions) + " readmission(s), " +
                     std::to_string(stats.completed) + " completed";
    } catch (const std::exception& e) {
        res.recovered = false;
        res.error = e.what();
    }
    res.report = fleet.device(0).fault_report();
    return res;
}

void json_escape_into(std::string& out, const std::string& s) {
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
}

int cmd_run(const CliOptions& cli) {
    const simt::faults::FaultPlan plan = make_plan(cli);
    std::vector<std::string> names;
    if (cli.workload == "all") {
        names = {"uniform", "ragged", "pairs", "ooc", "serve"};
    } else {
        names = {cli.workload};
    }
    if (cli.kill_revive && cli.workload == "all") names.push_back("kill-revive");

    std::printf("gas_chaos: seed %llu, plan:%s%s%s%s%s\n",
                static_cast<unsigned long long>(plan.seed),
                plan.alloc_fail_every ? " alloc-fail" : "",
                plan.launch_fail_every ? " launch-fail" : "",
                plan.corrupt_every ? (plan.detected ? " corrupt" : " corrupt(silent)") : "",
                plan.stall_every ? " stall" : "", plan.any() ? "" : " (no faults)");

    std::vector<WorkloadResult> results;
    for (const std::string& name : names) {
        simt::Device device;  // fresh simulated device per workload
        device.set_fault_plan(plan);
        WorkloadResult res;
        if (name == "uniform") {
            res = run_uniform(cli, device);
        } else if (name == "ragged") {
            res = run_ragged(cli, device);
        } else if (name == "pairs") {
            res = run_pairs(cli, device);
        } else if (name == "ooc") {
            res = run_ooc(cli, device);
        } else if (name == "serve") {
            res = run_serve(cli, device);
        } else if (name == "kill-revive") {
            // Manages its own two-device fleet (and its own kill plans); the
            // ambient per-workload device and plan do not apply.
            res = run_kill_revive(cli);
        } else {
            return usage();
        }
        if (name != "kill-revive") res.report = device.fault_report();
        const bool pass = res.recovered && res.mismatches == 0;
        std::printf("[%s] %-7s fired %llu fault(s) (%llu suppressed) — %s%s%s\n",
                    pass ? "PASS" : "FAIL", res.name.c_str(),
                    static_cast<unsigned long long>(res.report.fired()),
                    static_cast<unsigned long long>(res.report.suppressed),
                    res.detail.empty() ? "terminated" : res.detail.c_str(),
                    res.mismatches > 0
                        ? (", " + std::to_string(res.mismatches) + " bad row(s)").c_str()
                        : "",
                    res.recovered ? "" : (": " + res.error).c_str());
        results.push_back(std::move(res));
    }

    std::size_t unrecovered = 0;
    std::size_t mismatches = 0;
    for (const auto& r : results) {
        unrecovered += r.recovered ? 0 : 1;
        mismatches += r.mismatches;
    }

    if (!cli.json.empty()) {
        std::string j = "{\n  \"tool\": \"gas_chaos\",\n  \"seed\": " +
                        std::to_string(cli.seed) + ",\n  \"workloads\": {\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto& r = results[i];
            j += "    \"" + r.name + "\": {\"recovered\": " +
                 (r.recovered ? "true" : "false") +
                 ", \"mismatches\": " + std::to_string(r.mismatches) + ", \"detail\": \"";
            json_escape_into(j, r.detail.empty() ? r.error : r.detail);
            j += "\", \"faults\": " + simt::faults::to_json(r.report) + "}";
            j += i + 1 < results.size() ? ",\n" : "\n";
        }
        j += "  },\n  \"unrecovered\": " + std::to_string(unrecovered) +
             ",\n  \"mismatched_rows\": " + std::to_string(mismatches) + "\n}\n";
        if (std::FILE* f = std::fopen(cli.json.c_str(), "w")) {
            std::fwrite(j.data(), 1, j.size(), f);
            std::fclose(f);
            std::printf("wrote %s\n", cli.json.c_str());
        } else {
            std::fprintf(stderr, "could not write %s\n", cli.json.c_str());
            return 1;
        }
    }

    std::printf("chaos: %zu workload(s), %zu unrecovered, %zu mismatched row(s)\n",
                results.size(), unrecovered, mismatches);
    return (unrecovered == 0 && mismatches == 0) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2 || std::strcmp(argv[1], "run") != 0) return usage();
    CliOptions cli;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) return nullptr;
            return argv[++i];
        };
        auto parse_u64 = [&](std::uint64_t& out) {
            const char* v = next();
            if (v == nullptr) return false;
            out = std::strtoull(v, nullptr, 10);
            return true;
        };
        if (arg == "--workload") {
            const char* v = next();
            if (v == nullptr) return usage();
            cli.workload = v;
            if (cli.workload != "uniform" && cli.workload != "ragged" &&
                cli.workload != "pairs" && cli.workload != "ooc" &&
                cli.workload != "serve" && cli.workload != "kill-revive" &&
                cli.workload != "all") {
                return usage();
            }
        } else if (arg == "--seed") {
            if (!parse_u64(cli.seed)) return usage();
        } else if (arg == "--alloc-fail-every") {
            if (!parse_u64(cli.alloc_fail_every)) return usage();
        } else if (arg == "--launch-fail-every") {
            if (!parse_u64(cli.launch_fail_every)) return usage();
        } else if (arg == "--corrupt-every") {
            if (!parse_u64(cli.corrupt_every)) return usage();
        } else if (arg == "--undetected") {
            cli.undetected = true;
        } else if (arg == "--stall-every") {
            if (!parse_u64(cli.stall_every)) return usage();
        } else if (arg == "--stall-ms") {
            const char* v = next();
            if (v == nullptr) return usage();
            cli.stall_ms = std::strtod(v, nullptr);
        } else if (arg == "--requests") {
            const char* v = next();
            if (v == nullptr) return usage();
            cli.requests = std::strtoull(v, nullptr, 10);
        } else if (arg == "--arrays") {
            const char* v = next();
            if (v == nullptr) return usage();
            cli.arrays = std::strtoull(v, nullptr, 10);
        } else if (arg == "--size") {
            const char* v = next();
            if (v == nullptr) return usage();
            cli.size = std::strtoull(v, nullptr, 10);
        } else if (arg == "--kill-revive") {
            const char* v = next();
            if (v == nullptr) return usage();
            if (std::strcmp(v, "on") == 0) {
                cli.kill_revive = true;
            } else if (std::strcmp(v, "off") == 0) {
                cli.kill_revive = false;
            } else {
                // A typo must not silently skip the workload: name the
                // rejected string and the full valid set.
                std::fprintf(stderr,
                             "gas_chaos: unknown --kill-revive '%s' (valid: on, off)\n",
                             v);
                return 2;
            }
        } else if (arg == "--json") {
            const char* v = next();
            if (v == nullptr) return usage();
            cli.json = v;
        } else {
            return usage();
        }
    }
    try {
        return cmd_run(cli);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "gas_chaos: %s\n", e.what());
        return 1;
    }
}
