# Smoke test of the gas_serve CLI: all three job kinds through the manual
# pump, the async scheduler with backpressure and a stats JSON artifact, and
# the multi-device fleet path under every routing policy.

function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(last_out "${out}" PARENT_SCOPE)
endfunction()

foreach(mode scalar warp)
  run(${GAS_SERVE} run --requests 64 --arrays 4 --size 64 --exec ${mode})
  if(NOT last_out MATCHES "64 ok \\(0 cpu fallbacks\\), 0 not-ok, 0 unsorted")
    message(FATAL_ERROR "uniform manual ${mode} run not fully served:\n${last_out}")
  endif()

  run(${GAS_SERVE} run --requests 24 --kind ragged --arrays 6 --size 120 --exec ${mode})
  run(${GAS_SERVE} run --requests 24 --kind pairs --arrays 3 --size 50 --exec ${mode})
endforeach()

set(STATS ${WORK_DIR}/serve_stats.json)
run(${GAS_SERVE} run --requests 96 --async --streams 2 --json ${STATS})
if(NOT EXISTS ${STATS})
  message(FATAL_ERROR "async run did not write ${STATS}")
endif()
file(READ ${STATS} stats_json)
if(NOT stats_json MATCHES "\"completed\": 96")
  message(FATAL_ERROR "stats JSON missing completed count:\n${stats_json}")
endif()

# Fleet path: every routing policy across 3 devices must serve the full
# stream, and the stats JSON must carry the per-device fleet block.
foreach(policy least-loaded consistent-hash key-range)
  set(FLEET_STATS ${WORK_DIR}/serve_fleet_${policy}.json)
  run(${GAS_SERVE} run --requests 48 --devices 3 --policy ${policy}
      --json ${FLEET_STATS})
  if(NOT last_out MATCHES "48 ok \\(0 cpu fallbacks\\), 0 not-ok, 0 unsorted")
    message(FATAL_ERROR "fleet ${policy} run not fully served:\n${last_out}")
  endif()
  file(READ ${FLEET_STATS} fleet_json)
  if(NOT fleet_json MATCHES "\"per_device\"")
    message(FATAL_ERROR "fleet stats JSON missing per_device block:\n${fleet_json}")
  endif()
  if(NOT fleet_json MATCHES "\"dev2\"")
    message(FATAL_ERROR "fleet stats JSON missing third device:\n${fleet_json}")
  endif()
endforeach()
run(${GAS_SERVE} run --requests 48 --devices 4 --policy least-loaded --async)
if(NOT last_out MATCHES "48 ok \\(0 cpu fallbacks\\), 0 not-ok, 0 unsorted")
  message(FATAL_ERROR "async fleet run not fully served:\n${last_out}")
endif()

# Health subsystem: a --health on run must serve everything (fault-free means
# nothing is shed or hedged), report the health summary line, and emit the
# "health" block in the stats JSON with its correctness gate at zero.
set(HEALTH_STATS ${WORK_DIR}/serve_health.json)
run(${GAS_SERVE} run --requests 48 --devices 2 --health on --json ${HEALTH_STATS})
if(NOT last_out MATCHES "48 ok \\(0 cpu fallbacks\\), 0 not-ok, 0 unsorted")
  message(FATAL_ERROR "health-enabled run not fully served:\n${last_out}")
endif()
if(NOT last_out MATCHES "health: on")
  message(FATAL_ERROR "health summary line missing:\n${last_out}")
endif()
file(READ ${HEALTH_STATS} health_json)
if(NOT health_json MATCHES "\"health\": {")
  message(FATAL_ERROR "stats JSON missing the health block:\n${health_json}")
endif()
if(NOT health_json MATCHES "\"enabled\": true")
  message(FATAL_ERROR "health block not marked enabled:\n${health_json}")
endif()
if(NOT health_json MATCHES "\"hedge_mismatches\": 0")
  message(FATAL_ERROR "hedge mismatch gate not zero:\n${health_json}")
endif()
if(NOT health_json MATCHES "\"health_state\": \"healthy\"")
  message(FATAL_ERROR "per-device health_state missing:\n${health_json}")
endif()
# And --health off keeps the block present but disabled (schema stability).
run(${GAS_SERVE} run --requests 16 --health off --json ${HEALTH_STATS})
file(READ ${HEALTH_STATS} health_json)
if(NOT health_json MATCHES "\"enabled\": false")
  message(FATAL_ERROR "health off not reflected in JSON:\n${health_json}")
endif()
