# Smoke test of the gas_sortfile CLI: gen -> sort (in-core and out-of-core)
# -> info, including the descending flag.
set(GAD ${WORK_DIR}/smoke.gad)

function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(last_out "${out}" PARENT_SCOPE)
endfunction()

run(${GAS_SORTFILE} gen ${GAD} 200 300 reverse)
run(${GAS_SORTFILE} sort ${GAD} ${WORK_DIR}/smoke_sorted.gad)
run(${GAS_SORTFILE} info ${WORK_DIR}/smoke_sorted.gad)
if(NOT last_out MATCHES "rows ascending: yes")
  message(FATAL_ERROR "sorted file not ascending:\n${last_out}")
endif()

# Out-of-core path on a 1 MB device.
run(${GAS_SORTFILE} sort ${GAD} ${WORK_DIR}/smoke_ooc.gad --device-mb 1)
run(${GAS_SORTFILE} info ${WORK_DIR}/smoke_ooc.gad)
if(NOT last_out MATCHES "rows ascending: yes")
  message(FATAL_ERROR "out-of-core sorted file not ascending:\n${last_out}")
endif()

# Descending.
run(${GAS_SORTFILE} sort ${GAD} ${WORK_DIR}/smoke_desc.gad --desc)
run(${GAS_SORTFILE} info ${WORK_DIR}/smoke_desc.gad)
if(NOT last_out MATCHES "rows ascending: no")
  message(FATAL_ERROR "descending sort reported ascending:\n${last_out}")
endif()
