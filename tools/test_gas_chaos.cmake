# Smoke test of the gas_chaos CLI: a fault-free pass over every workload,
# a faulted run that must recover with correct bytes, seed determinism of
# the JSON artifact, and detection of silent corruption.

function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(last_out "${out}" PARENT_SCOPE)
endfunction()

# Fault-free: every workload passes and no fault fires.
run(${GAS_CHAOS} run --requests 16 --arrays 4 --size 48)
if(NOT last_out MATCHES "5 workload\\(s\\), 0 unrecovered, 0 mismatched")
  message(FATAL_ERROR "fault-free run not clean:\n${last_out}")
endif()

# Faulted runs must recover: allocation faults + refused launches + detected
# corruption over every workload, still byte-correct.
set(CHAOS_A ${WORK_DIR}/chaos_a.json)
run(${GAS_CHAOS} run --seed 7 --alloc-fail-every 10 --launch-fail-every 15
    --corrupt-every 20 --requests 16 --arrays 4 --size 48 --json ${CHAOS_A})
if(NOT last_out MATCHES "0 unrecovered, 0 mismatched")
  message(FATAL_ERROR "faulted run did not recover:\n${last_out}")
endif()
if(NOT EXISTS ${CHAOS_A})
  message(FATAL_ERROR "faulted run did not write ${CHAOS_A}")
endif()

# Same seed, same plan -> identical JSON (fault schedule and recovery path
# are deterministic).
set(CHAOS_B ${WORK_DIR}/chaos_b.json)
run(${GAS_CHAOS} run --seed 7 --alloc-fail-every 10 --launch-fail-every 15
    --corrupt-every 20 --requests 16 --arrays 4 --size 48 --json ${CHAOS_B})
file(READ ${CHAOS_A} json_a)
file(READ ${CHAOS_B} json_b)
if(NOT json_a STREQUAL json_b)
  message(FATAL_ERROR "same seed produced different reports:\n${json_a}\nvs\n${json_b}")
endif()

# Silent corruption: --undetected means only output verification can catch
# it; the resilience layer must still deliver correct bytes.
run(${GAS_CHAOS} run --seed 3 --corrupt-every 12 --undetected
    --requests 16 --arrays 4 --size 48)
if(NOT last_out MATCHES "0 unrecovered, 0 mismatched")
  message(FATAL_ERROR "silent-corruption run did not recover:\n${last_out}")
endif()

# Kill -> revive -> kill (gas::health): device 0 of a two-device fleet dies,
# is re-admitted through probe sorts + probation, and dies again — with every
# accepted response byte-checked along the way.
run(${GAS_CHAOS} run --workload kill-revive --requests 16 --arrays 4 --size 48)
if(NOT last_out MATCHES "0 unrecovered, 0 mismatched")
  message(FATAL_ERROR "kill-revive run did not recover:\n${last_out}")
endif()
if(NOT last_out MATCHES "2 quarantine\\(s\\)")
  message(FATAL_ERROR "kill-revive did not count both losses:\n${last_out}")
endif()
if(NOT last_out MATCHES "1 readmission\\(s\\)")
  message(FATAL_ERROR "kill-revive did not count the re-admission:\n${last_out}")
endif()
