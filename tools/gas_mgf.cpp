// gas_mgf — command-line front end for the GPU-backed mass-spec pipeline.
//
//   gas_mgf synth  <out.mgf> [count]            generate synthetic spectra
//   gas_mgf stats  <in.mgf>                     per-set quality summary
//   gas_mgf reduce <in.mgf> <out.mgf> [keep]    MS-REDUCE-style reduction
//   gas_mgf sort   <in.mgf> <out.mgf>           sort peaks by intensity
//   gas_mgf filter <in.mgf> <out.mgf> [min_snr] drop low-quality spectra
//
// All device work runs on the simulated Tesla K40c.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "msdata/mgf_io.hpp"
#include "msdata/pipeline.hpp"
#include "msdata/quality.hpp"
#include "msdata/synth.hpp"
#include "simt/device.hpp"

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: gas_mgf <command> ...\n"
                 "  synth  <out.mgf> [count=1000]\n"
                 "  stats  <in.mgf>\n"
                 "  reduce <in.mgf> <out.mgf> [keep_fraction=0.3]\n"
                 "  sort   <in.mgf> <out.mgf>\n"
                 "  filter <in.mgf> <out.mgf> [min_snr=3.0] [min_peaks=10]\n");
    return 2;
}

int cmd_synth(int argc, char** argv) {
    if (argc < 3) return usage();
    const std::size_t count =
        argc > 3 ? static_cast<std::size_t>(std::strtoull(argv[3], nullptr, 10)) : 1000;
    const auto set = msdata::generate_spectra(count);
    msdata::write_mgf_file(argv[2], set);
    std::printf("wrote %zu spectra (%zu peaks) to %s\n", set.size(), set.total_peaks(),
                argv[2]);
    return 0;
}

int cmd_stats(int argc, char** argv) {
    if (argc < 3) return usage();
    const auto set = msdata::read_mgf_file(argv[2]);
    simt::Device device;
    const auto quality = msdata::compute_quality(device, set);

    double tic = 0.0;
    double snr = 0.0;
    std::size_t peaks = 0;
    for (const auto& q : quality) {
        tic += q.total_ion_current;
        snr += q.signal_to_noise;
        peaks += q.peak_count;
    }
    std::printf("%zu spectra, %zu peaks\n", set.size(), peaks);
    if (!quality.empty()) {
        std::printf("mean TIC %.3g, mean S/N %.2f\n", tic / static_cast<double>(quality.size()),
                    snr / static_cast<double>(quality.size()));
    }
    std::printf("device: %.2f ms modeled kernel time across %zu launches\n",
                device.total_modeled_ms(), device.kernel_log().size());
    return 0;
}

int cmd_reduce(int argc, char** argv) {
    if (argc < 4) return usage();
    const double keep = argc > 4 ? std::strtod(argv[4], nullptr) : 0.3;
    auto set = msdata::read_mgf_file(argv[2]);
    simt::Device device;
    const auto stats = msdata::reduce_spectra(device, set, keep);
    msdata::write_mgf_file(argv[3], set);
    std::printf("reduced %zu -> %zu peaks (%.1f%%), wrote %s\n", stats.peaks_in,
                stats.peaks_out,
                100.0 * static_cast<double>(stats.peaks_out) /
                    static_cast<double>(std::max<std::size_t>(stats.peaks_in, 1)),
                argv[3]);
    return 0;
}

int cmd_sort(int argc, char** argv) {
    if (argc < 4) return usage();
    auto set = msdata::read_mgf_file(argv[2]);
    simt::Device device;
    const auto stats = msdata::sort_spectra_by_intensity(device, set);
    msdata::write_mgf_file(argv[3], set);
    std::printf("sorted %zu peaks across %zu spectra by intensity, wrote %s\n",
                stats.peaks_out, set.size(), argv[3]);
    return 0;
}

int cmd_filter(int argc, char** argv) {
    if (argc < 4) return usage();
    const double min_snr = argc > 4 ? std::strtod(argv[4], nullptr) : 3.0;
    const std::size_t min_peaks =
        argc > 5 ? static_cast<std::size_t>(std::strtoull(argv[5], nullptr, 10)) : 10;
    auto set = msdata::read_mgf_file(argv[2]);
    simt::Device device;
    const std::size_t removed = msdata::filter_by_quality(device, set, min_snr, min_peaks);
    msdata::write_mgf_file(argv[3], set);
    std::printf("removed %zu low-quality spectra, kept %zu, wrote %s\n", removed, set.size(),
                argv[3]);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    try {
        if (std::strcmp(argv[1], "synth") == 0) return cmd_synth(argc, argv);
        if (std::strcmp(argv[1], "stats") == 0) return cmd_stats(argc, argv);
        if (std::strcmp(argv[1], "reduce") == 0) return cmd_reduce(argc, argv);
        if (std::strcmp(argv[1], "sort") == 0) return cmd_sort(argc, argv);
        if (std::strcmp(argv[1], "filter") == 0) return cmd_filter(argc, argv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "gas_mgf: %s\n", e.what());
        return 1;
    }
    return usage();
}
