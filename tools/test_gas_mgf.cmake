# Smoke test of the gas_mgf CLI: synth -> stats -> reduce -> sort -> filter.
set(MGF ${WORK_DIR}/smoke.mgf)

function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
endfunction()

run(${GAS_MGF} synth ${MGF} 20)
run(${GAS_MGF} stats ${MGF})
run(${GAS_MGF} reduce ${MGF} ${WORK_DIR}/smoke_red.mgf 0.5)
run(${GAS_MGF} sort ${WORK_DIR}/smoke_red.mgf ${WORK_DIR}/smoke_sorted.mgf)
run(${GAS_MGF} filter ${MGF} ${WORK_DIR}/smoke_filt.mgf 1.5 10)

foreach(f smoke.mgf smoke_red.mgf smoke_sorted.mgf smoke_filt.mgf)
  if(NOT EXISTS ${WORK_DIR}/${f})
    message(FATAL_ERROR "expected output missing: ${f}")
  endif()
endforeach()
