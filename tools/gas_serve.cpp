// gas_serve — drive the asynchronous batch-sort service (gas::serve::Server)
// against the simulated device with a synthetic request stream, verify every
// response, and report the server's throughput/latency statistics.
//
//   gas_serve run [options]
//     --requests R     number of requests to submit (default 200)
//     --arrays N       arrays per uniform/pair request (default 4)
//     --size n         elements per array (default 64)
//     --kind K         uniform | ragged | pairs (default uniform)
//     --async          run the scheduler thread + blocking admission
//                      (default: deterministic manual pump)
//     --streams S      pipeline depth for the overlap model (default 2)
//     --batch B        max requests per fused batch (default 64)
//     --deadline-ms D  attach a D ms deadline to every request
//     --devices N      serve on an N-device fleet (default 1)
//     --policy P       fleet routing policy: least-loaded | consistent-hash
//                      | key-range (default least-loaded)
//     --exec M         interpreter execution mode: scalar|warp (default:
//                      the SIMT_EXEC environment variable, else scalar)
//     --tune on|off    adaptive autotuning (gas::tune controller inside the
//                      server; default on.  off pins submitted options)
//     --health on|off  closed-loop health subsystem (gas::health: watchdog,
//                      probe re-admission, overload shedding, brownout
//                      ladder, straggler hedging; default off)
//     --json PATH      also write the ServerStats JSON to PATH
//
// Exit code 0 iff every request reached a terminal state and every Ok
// response is correctly sorted.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "fleet/router.hpp"
#include "serve/server.hpp"
#include "simt/device.hpp"
#include "workload/generators.hpp"

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: gas_serve run [--requests R] [--arrays N] [--size n]\n"
                 "                     [--kind uniform|ragged|pairs] [--async]\n"
                 "                     [--streams S] [--batch B] [--deadline-ms D]\n"
                 "                     [--devices N] [--policy least-loaded|consistent-hash|"
                 "key-range]\n"
                 "                     [--exec scalar|warp] [--tune on|off] "
                 "[--health on|off]\n"
                 "                     [--json PATH]\n");
    return 2;
}

struct CliOptions {
    std::size_t requests = 200;
    std::size_t arrays = 4;
    std::size_t size = 64;
    gas::serve::JobKind kind = gas::serve::JobKind::Uniform;
    bool async = false;
    unsigned streams = 2;
    std::size_t batch = 64;
    double deadline_ms = 0.0;
    std::size_t devices = 1;
    gas::fleet::RoutePolicy policy = gas::fleet::RoutePolicy::LeastLoaded;
    simt::ExecMode exec = simt::exec_mode_from_env();
    bool tune = true;
    bool health = false;
    std::string json;
};

gas::serve::Job make_job(const CliOptions& cli, std::uint64_t seed) {
    gas::serve::Job job;
    job.kind = cli.kind;
    switch (cli.kind) {
        case gas::serve::JobKind::Uniform:
            job.num_arrays = cli.arrays;
            job.array_size = cli.size;
            job.values = workload::make_dataset(cli.arrays, cli.size,
                                                workload::Distribution::Uniform, seed)
                             .values;
            break;
        case gas::serve::JobKind::Ragged: {
            auto ds = workload::make_ragged_dataset(cli.arrays, 1, std::max<std::size_t>(cli.size, 2),
                                                    workload::Distribution::Uniform, seed);
            job.values = std::move(ds.values);
            job.offsets.assign(ds.offsets.begin(), ds.offsets.end());
            break;
        }
        case gas::serve::JobKind::Pairs:
            job.num_arrays = cli.arrays;
            job.array_size = cli.size;
            job.values = workload::make_dataset(cli.arrays, cli.size,
                                                workload::Distribution::Uniform, seed)
                             .values;
            job.payload.resize(job.values.size());
            for (std::size_t i = 0; i < job.payload.size(); ++i) {
                job.payload[i] = static_cast<float>(i);
            }
            break;
    }
    if (cli.deadline_ms > 0.0) job.with_deadline_ms(cli.deadline_ms);
    return job;
}

bool response_sorted(const gas::serve::Job& shape, const gas::serve::Response& r) {
    if (shape.kind == gas::serve::JobKind::Ragged) {
        for (std::size_t i = 1; i < shape.offsets.size(); ++i) {
            if (!std::is_sorted(r.values.begin() + static_cast<std::ptrdiff_t>(shape.offsets[i - 1]),
                                r.values.begin() + static_cast<std::ptrdiff_t>(shape.offsets[i]))) {
                return false;
            }
        }
        return true;
    }
    for (std::size_t a = 0; a < shape.num_arrays; ++a) {
        const auto* row = r.values.data() + a * shape.array_size;
        if (!std::is_sorted(row, row + shape.array_size)) return false;
    }
    return true;
}

int cmd_run(const CliOptions& cli) {
    gas::fleet::DeviceFleet fleet(cli.devices);  // full simulated K40c each
    fleet.set_exec_mode(cli.exec);
    gas::serve::ServerConfig cfg;
    cfg.manual_pump = !cli.async;
    cfg.queue_capacity = cli.async ? std::max<std::size_t>(cli.requests / 8, 16)
                                   : cli.requests;
    cfg.policy = gas::serve::AdmitPolicy::Block;
    cfg.max_batch_requests = cli.batch;
    cfg.num_streams = cli.streams;
    cfg.route_policy = cli.policy;
    cfg.auto_tune = cli.tune;
    cfg.health.enabled = cli.health;
    gas::serve::Server server(fleet, cfg);

    std::printf("gas_serve: %zu %s requests, %s mode, %u streams, batch <= %zu, "
                "%zu device(s), %s routing\n",
                cli.requests, gas::serve::to_string(cli.kind).c_str(),
                cli.async ? "async scheduler" : "manual pump", cli.streams, cli.batch,
                cli.devices, gas::fleet::to_string(cli.policy).c_str());

    struct Outstanding {
        gas::serve::Job shape;  // geometry only (values moved into the server)
        gas::serve::Server::Ticket ticket;
    };
    std::vector<Outstanding> live;
    live.reserve(cli.requests);
    for (std::size_t r = 0; r < cli.requests; ++r) {
        auto job = make_job(cli, r + 1);
        Outstanding o;
        o.shape.kind = job.kind;
        o.shape.num_arrays = job.num_arrays;
        o.shape.array_size = job.array_size;
        o.shape.offsets = job.offsets;
        o.ticket = server.submit(std::move(job));
        live.push_back(std::move(o));
        if (!cli.async && (r + 1) % cfg.queue_capacity == 0) server.pump();
    }
    if (cli.async) {
        server.drain();
    } else {
        server.pump();
    }

    std::size_t ok = 0, fallbacks = 0, not_ok = 0, unsorted = 0;
    for (auto& o : live) {
        const auto r = o.ticket.result.get();
        if (r.ok()) {
            ++ok;
            if (r.cpu_fallback) ++fallbacks;
            if (!response_sorted(o.shape, r)) ++unsorted;
        } else {
            ++not_ok;
        }
    }
    server.stop();

    const auto stats = server.stats();
    std::printf("responses: %zu ok (%zu cpu fallbacks), %zu not-ok, %zu unsorted\n", ok,
                fallbacks, not_ok, unsorted);
    std::printf("batches: %llu, occupancy %.1f req/batch, pool reuse %.0f%%\n",
                static_cast<unsigned long long>(stats.batches), stats.batch_occupancy(),
                stats.pool.reuse_rate() * 100.0);
    std::printf("modeled: %.2f ms pipeline makespan (%.2fx vs serial), %.0f req/s\n",
                stats.modeled_overlap_ms, stats.overlap_speedup(),
                stats.modeled_throughput_rps());
    std::printf("latency (wall ms): p50 %.3f  p95 %.3f  p99 %.3f  max %.3f\n",
                stats.wall_ms.p50, stats.wall_ms.p95, stats.wall_ms.p99, stats.wall_ms.max);
    std::printf("tune: %s, %llu decisions, %llu plan switches, %llu tuned batches, "
                "graph cache %.0f%% hit\n",
                stats.tune_enabled ? "on" : "off",
                static_cast<unsigned long long>(stats.tune_decisions),
                static_cast<unsigned long long>(stats.tune_plan_switches),
                static_cast<unsigned long long>(stats.tuned_batches),
                stats.graph_cache_hit_rate() * 100.0);
    std::printf("health: %s, %llu shed (%llu overflow / %llu brownout / %llu sojourn), "
                "brownout L%d, %llu hangs, %llu hedges (%llu mismatches)\n",
                stats.health.enabled ? "on" : "off",
                static_cast<unsigned long long>(stats.health.shed_total()),
                static_cast<unsigned long long>(stats.health.shed_overflow),
                static_cast<unsigned long long>(stats.health.shed_brownout),
                static_cast<unsigned long long>(stats.health.shed_sojourn),
                stats.health.brownout_level,
                static_cast<unsigned long long>(stats.health.hangs_detected),
                static_cast<unsigned long long>(stats.health.hedges_launched),
                static_cast<unsigned long long>(stats.health.hedge_mismatches));
    if (cli.devices > 1) {
        for (const auto& d : stats.devices) {
            std::printf("  %s: %llu routed, %llu completed, %llu batch(es), "
                        "steal %llu/%llu in/out, util %.2f%s\n",
                        d.name.c_str(), static_cast<unsigned long long>(d.routed),
                        static_cast<unsigned long long>(d.completed),
                        static_cast<unsigned long long>(d.batches),
                        static_cast<unsigned long long>(d.steals_in),
                        static_cast<unsigned long long>(d.steals_out),
                        d.compute_utilization, d.quarantined ? "  [QUARANTINED]" : "");
        }
    }

    if (!cli.json.empty()) {
        if (std::FILE* f = std::fopen(cli.json.c_str(), "w")) {
            const std::string j = stats.to_json();
            std::fwrite(j.data(), 1, j.size(), f);
            std::fclose(f);
            std::printf("wrote %s\n", cli.json.c_str());
        } else {
            std::fprintf(stderr, "could not write %s\n", cli.json.c_str());
            return 1;
        }
    }

    // Timed-out responses are legitimate when the caller asked for deadlines;
    // anything else must come back Ok and sorted.
    const std::size_t tolerated =
        cli.deadline_ms > 0.0 ? static_cast<std::size_t>(stats.timed_out) : 0;
    return (unsorted == 0 && not_ok <= tolerated) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2 || std::strcmp(argv[1], "run") != 0) return usage();
    CliOptions cli;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) return nullptr;
            return argv[++i];
        };
        if (arg == "--requests") {
            const char* v = next();
            if (v == nullptr) return usage();
            cli.requests = std::strtoull(v, nullptr, 10);
        } else if (arg == "--arrays") {
            const char* v = next();
            if (v == nullptr) return usage();
            cli.arrays = std::strtoull(v, nullptr, 10);
        } else if (arg == "--size") {
            const char* v = next();
            if (v == nullptr) return usage();
            cli.size = std::strtoull(v, nullptr, 10);
        } else if (arg == "--kind") {
            const char* v = next();
            if (v == nullptr) return usage();
            if (std::strcmp(v, "uniform") == 0) {
                cli.kind = gas::serve::JobKind::Uniform;
            } else if (std::strcmp(v, "ragged") == 0) {
                cli.kind = gas::serve::JobKind::Ragged;
            } else if (std::strcmp(v, "pairs") == 0) {
                cli.kind = gas::serve::JobKind::Pairs;
            } else {
                return usage();
            }
        } else if (arg == "--async") {
            cli.async = true;
        } else if (arg == "--streams") {
            const char* v = next();
            if (v == nullptr) return usage();
            cli.streams = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--batch") {
            const char* v = next();
            if (v == nullptr) return usage();
            cli.batch = std::strtoull(v, nullptr, 10);
        } else if (arg == "--deadline-ms") {
            const char* v = next();
            if (v == nullptr) return usage();
            cli.deadline_ms = std::strtod(v, nullptr);
        } else if (arg == "--devices") {
            const char* v = next();
            if (v == nullptr) return usage();
            cli.devices = std::strtoull(v, nullptr, 10);
            if (cli.devices == 0) return usage();
        } else if (arg == "--policy") {
            const char* v = next();
            if (v == nullptr) return usage();
            if (!gas::fleet::parse_route_policy(v, cli.policy)) {
                // A typo here must not silently serve with the default policy:
                // name the rejected string and the full valid set.
                std::fprintf(stderr,
                             "gas_serve: unknown --policy '%s' "
                             "(valid: least-loaded, consistent-hash, key-range)\n",
                             v);
                return 2;
            }
        } else if (arg == "--exec") {
            const char* v = next();
            if (v == nullptr) return usage();
            if (std::strcmp(v, "scalar") == 0) {
                cli.exec = simt::ExecMode::Scalar;
            } else if (std::strcmp(v, "warp") == 0) {
                cli.exec = simt::ExecMode::Warp;
            } else {
                return usage();
            }
        } else if (arg == "--tune") {
            const char* v = next();
            if (v == nullptr) return usage();
            if (std::strcmp(v, "on") == 0) {
                cli.tune = true;
            } else if (std::strcmp(v, "off") == 0) {
                cli.tune = false;
            } else {
                // A typo must not silently serve with the default setting:
                // name the rejected string and the full valid set.
                std::fprintf(stderr, "gas_serve: unknown --tune '%s' (valid: on, off)\n",
                             v);
                return 2;
            }
        } else if (arg == "--health") {
            const char* v = next();
            if (v == nullptr) return usage();
            if (std::strcmp(v, "on") == 0) {
                cli.health = true;
            } else if (std::strcmp(v, "off") == 0) {
                cli.health = false;
            } else {
                // A typo must not silently serve with the default setting:
                // name the rejected string and the full valid set.
                std::fprintf(stderr,
                             "gas_serve: unknown --health '%s' (valid: on, off)\n", v);
                return 2;
            }
        } else if (arg == "--json") {
            const char* v = next();
            if (v == nullptr) return usage();
            cli.json = v;
        } else {
            return usage();
        }
    }
    try {
        return cmd_run(cli);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "gas_serve: %s\n", e.what());
        return 1;
    }
}
