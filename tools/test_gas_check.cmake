# Smoke test of the gas_check CLI: clean workloads, JSON output, and the
# seeded-bug selftest.
function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(last_output "${out}" PARENT_SCOPE)
endfunction()

# Every paper workload must come back clean (exit 0) under all checks, in
# both interpreter execution modes.
foreach(mode scalar warp)
  run(${GAS_CHECK} --workload all --arrays 16 --size 500 --exec ${mode}
      --json ${WORK_DIR}/gas_check.json)
  if(NOT last_output MATCHES "no findings")
    message(FATAL_ERROR
            "clean ${mode} run did not report 'no findings':\n${last_output}")
  endif()
endforeach()

if(NOT EXISTS ${WORK_DIR}/gas_check.json)
  message(FATAL_ERROR "expected JSON report missing")
endif()
file(READ ${WORK_DIR}/gas_check.json json)
if(NOT json MATCHES "\"clean\":true")
  message(FATAL_ERROR "JSON report not clean:\n${json}")
endif()

# The graph workload standalone and strict: the full pipeline through
# Device::submit must stay clean with the checker aborting on any finding.
run(${GAS_CHECK} --workload graph --strict --arrays 16 --size 500)
if(NOT last_output MATCHES "no findings")
  message(FATAL_ERROR "strict graph run did not report 'no findings':\n${last_output}")
endif()

# The seeded-bug selftest must catch all four finding kinds plus both
# structural graph bugs (dependency cycle, missing edge -> GraphError).
run(${GAS_CHECK} --demo-bugs)
if(NOT last_output MATCHES "all seeded bugs detected")
  message(FATAL_ERROR "selftest did not detect every seeded bug:\n${last_output}")
endif()
if(NOT last_output MATCHES "graph cycle: +detected")
  message(FATAL_ERROR "selftest did not flag the seeded graph cycle:\n${last_output}")
endif()
if(NOT last_output MATCHES "graph missing edge: detected")
  message(FATAL_ERROR "selftest did not flag the seeded missing edge:\n${last_output}")
endif()
