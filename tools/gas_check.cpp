// gas_check — run GPU-ArraySort workloads under the simt::sanitize checker
// (the repo's compute-sanitizer analog) and report findings.
//
//   gas_check [--workload sort|small|pairs|ragged|radix|bitonic|graph|all]
//             [--arrays N] [--size n]
//             [--checks race,mem,init,bank | all]
//             [--json PATH] [--strict] [--demo-bugs]
//
// Exit status: 0 = all workloads clean, 2 = findings were reported,
// 1 = usage / runtime error.  --demo-bugs instead runs the sanitizer's
// seeded-bug selftest (four deliberately broken kernels, one per finding
// kind, plus a clean control) followed by the seeded structural graph bugs
// (a dependency cycle and a missing edge, both expected to surface as
// GraphError), and exits 0 iff every bug was caught.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/gpu_array_sort.hpp"
#include "core/pair_sort.hpp"
#include "core/ragged_sort.hpp"
#include "core/validate.hpp"
#include "tune/planner.hpp"
#include "simt/device.hpp"
#include "simt/device_buffer.hpp"
#include "simt/graph.hpp"
#include "simt/report.hpp"
#include "simt/sanitize/selftest.hpp"
#include "thrustlite/device_vector.hpp"
#include "thrustlite/radix_sort.hpp"
#include "workload/generators.hpp"

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: gas_check [options]\n"
                 "  --workload W   sort|small|pairs|ragged|radix|bitonic|graph|all\n"
                 "                 (default: all)\n"
                 "  --arrays N     number of arrays (default: 64)\n"
                 "  --size n       elements per array (default: 1000)\n"
                 "  --checks C     comma list of race,mem,init,bank or 'all' (default)\n"
                 "  --exec M       interpreter execution mode: scalar|warp (default:\n"
                 "                 the SIMT_EXEC environment variable, else scalar)\n"
                 "  --tune on|off  adaptive autotuning for the sort workload: on runs\n"
                 "                 it through gas::tune (sketch -> plan -> sort) so the\n"
                 "                 tuned plan's kernels face the checker (default: on)\n"
                 "  --json PATH    also write the findings report as JSON\n"
                 "  --strict       abort the failing launch (SanitizeError) instead of\n"
                 "                 collecting findings\n"
                 "  --demo-bugs    run the seeded-bug selftest instead of workloads\n");
    return 1;
}

struct Args {
    std::string workload = "all";
    std::size_t arrays = 64;
    std::size_t size = 1000;
    simt::sanitize::SanitizeOptions checks = simt::sanitize::SanitizeOptions::all();
    simt::ExecMode exec = simt::exec_mode_from_env();
    bool tune = true;
    std::string json_path;
    bool demo_bugs = false;
};

bool parse_checks(const std::string& spec, simt::sanitize::SanitizeOptions& opts) {
    if (spec == "all") {
        const bool strict = opts.strict;
        opts = simt::sanitize::SanitizeOptions::all();
        opts.strict = strict;
        return true;
    }
    opts.racecheck = opts.memcheck = opts.initcheck = opts.bankcheck = false;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = std::min(spec.find(',', pos), spec.size());
        const std::string item = spec.substr(pos, comma - pos);
        if (item == "race") opts.racecheck = true;
        else if (item == "mem") opts.memcheck = true;
        else if (item == "init") opts.initcheck = true;
        else if (item == "bank") opts.bankcheck = true;
        else return false;
        pos = comma + 1;
    }
    return opts.any();
}

/// One sanitized workload: runs the sort, validates the output, and leaves
/// its launches in the device's sanitize report.  With tune on the sort goes
/// through gas::tune (sketch -> plan -> sort), so the tuned plan's kernel
/// shapes — not just the paper defaults — face the checker.
void run_sort(simt::Device& device, std::size_t arrays, std::size_t size, bool tune) {
    auto ds = workload::make_dataset(arrays, size);
    if (tune) {
        gas::tune::tuned_sort(device, ds.values, ds.num_arrays, ds.array_size, {});
    } else {
        gas::gpu_array_sort(device, ds.values, ds.num_arrays, ds.array_size);
    }
    if (!gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size)) {
        throw std::runtime_error("sort workload produced unsorted output");
    }
}

void run_small(simt::Device& device, std::size_t arrays) {
    // Single-bucket fast path (n below the sampling threshold).
    auto ds = workload::make_dataset(arrays, 8);
    gas::gpu_array_sort(device, ds.values, ds.num_arrays, ds.array_size);
    if (!gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size)) {
        throw std::runtime_error("small workload produced unsorted output");
    }
}

void run_pairs(simt::Device& device, std::size_t arrays, std::size_t size) {
    auto keys = workload::make_dataset(arrays, size, workload::Distribution::Uniform, 7);
    auto vals = workload::make_dataset(arrays, size, workload::Distribution::Uniform, 8);
    gas::gpu_pair_sort(device, keys.values, vals.values, arrays, size);
    if (!gas::all_arrays_sorted(keys.values, arrays, size)) {
        throw std::runtime_error("pairs workload produced unsorted keys");
    }
}

void run_ragged(simt::Device& device, std::size_t arrays) {
    auto ds = workload::make_ragged_dataset(arrays, 16, 512);
    std::vector<std::uint64_t> offsets(ds.offsets.begin(), ds.offsets.end());
    gas::gpu_ragged_sort(device, ds.values, offsets);
}

void run_bitonic(simt::Device& device, std::size_t arrays, std::size_t size) {
    // Single-hot-bucket adversary with the hybrid cutovers forced low so
    // every phase-3 path — size-binned serial classes and the cooperative
    // shared-memory bitonic network — runs under the checker.  The network's
    // staggered access order is designed bank-conflict free; this workload
    // is the empirical proof (tests pin it under --checks bank --strict).
    gas::Options opts;
    opts.phase3_small_cutoff = 16;
    opts.phase3_bitonic_cutoff = 64;
    auto ds = workload::make_dataset(arrays, size, workload::Distribution::ZipfHot, 11);
    gas::gpu_array_sort(device, ds.values, ds.num_arrays, ds.array_size, opts);
    if (!gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size)) {
        throw std::runtime_error("bitonic workload produced unsorted output");
    }
    // Pair variant: the value plane doubles the co-issued access pattern.
    auto keys = workload::make_dataset(arrays, size, workload::Distribution::ZipfHot, 12);
    auto vals = workload::make_dataset(arrays, size, workload::Distribution::Uniform, 13);
    gas::gpu_pair_sort(device, keys.values, vals.values, arrays, size, opts);
    if (!gas::all_arrays_sorted(keys.values, arrays, size)) {
        throw std::runtime_error("bitonic pair workload produced unsorted keys");
    }
}

void run_graph(simt::Device& device, std::size_t arrays, std::size_t size) {
    // The full sort pipeline through Device::submit — phase1 -> phase2 ->
    // phase3 as one work graph — with every launch under the checker.
    gas::Options opts;
    opts.graph_launch = true;
    auto ds = workload::make_dataset(arrays, size, workload::Distribution::ZipfHot, 17);
    gas::gpu_array_sort(device, ds.values, ds.num_arrays, ds.array_size, opts);
    if (!gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size)) {
        throw std::runtime_error("graph workload produced unsorted output");
    }

    // The radix chain as a dynamic sub-graph: a host node enqueues only the
    // non-degenerate scatter passes.
    thrustlite::RadixOptions ropts;
    ropts.graph_launch = true;
    std::vector<std::uint32_t> host(arrays * size);
    std::uint64_t state = 0x2545f4914f6cdd1dull;
    for (auto& x : host) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        x = static_cast<std::uint32_t>(state >> 40);  // narrow range: passes prune
    }
    thrustlite::device_vector<std::uint32_t> keys(device, host);
    thrustlite::stable_sort(keys, ropts);

    // A hand-assembled graph exercising the remaining node kinds under the
    // checker: a conditional node whose gate prunes, and a host node that
    // device-enqueues a dependent chain over real device memory.
    simt::DeviceBuffer<std::uint32_t> buf(device, 64);
    const auto s = buf.span();
    simt::Graph g;
    const auto fill = g.add_kernel({"graph_fill", 1, 64}, [s](simt::BlockCtx& blk) {
        blk.for_each_thread([&](simt::ThreadCtx& tc) {
            s[tc.tid()] = static_cast<std::uint32_t>(63 - tc.tid());
        });
    });
    g.add_kernel_if(
        {"graph_gated", 1, 64},
        [s](simt::BlockCtx& blk) {
            blk.for_each_thread([&](simt::ThreadCtx& tc) { s[tc.tid()] = 0u; });
        },
        [] { return false; }, {fill});
    g.add_host(
        "graph_launcher",
        [s](simt::GraphCtx& ctx) {
            ctx.enqueue_kernel({"graph_reverse", 1, 64}, [s](simt::BlockCtx& blk) {
                blk.for_each_thread([&](simt::ThreadCtx& tc) {
                    if (tc.tid() < 32) std::swap(s[tc.tid()], s[63 - tc.tid()]);
                });
            });
        },
        {fill});
    const auto stats = device.submit(g);
    if (stats.device_enqueued != 1 || stats.pruned != 1) {
        throw std::runtime_error("graph workload: unexpected GraphStats");
    }
    for (std::uint32_t i = 0; i < 64; ++i) {
        if (s[i] != i) throw std::runtime_error("graph workload: wrong graph output");
    }
}

void run_radix(simt::Device& device, std::size_t count) {
    std::vector<std::uint32_t> host(count);
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    for (auto& x : host) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        x = static_cast<std::uint32_t>(state >> 32);
    }
    thrustlite::device_vector<std::uint32_t> keys(device, host);
    thrustlite::stable_sort(keys);
}

/// Seeded structural graph bugs: a dependency cycle and a missing edge
/// (dependency on an unknown node id) must both surface as GraphError with
/// a diagnostic naming the problem.  Returns true iff both were caught.
bool run_graph_bug_demo() {
    bool ok = true;
    {
        simt::Graph g;
        const auto a = g.add_kernel({"alpha", 1, 1}, [](simt::BlockCtx&) {});
        const auto b = g.add_kernel({"beta", 1, 1}, [](simt::BlockCtx&) {}, {a});
        g.add_edge(b, a);  // closes the cycle alpha -> beta -> alpha
        try {
            g.validate();
            std::printf("graph cycle:        NOT DETECTED\n");
            ok = false;
        } catch (const simt::GraphError& e) {
            const std::string what = e.what();
            const bool named = what.find("cycle") != std::string::npos;
            std::printf("graph cycle:        %s (%s)\n",
                        named ? "detected" : "WRONG DIAGNOSTIC", e.what());
            ok = ok && named;
        }
    }
    {
        simt::Graph g;
        const auto a = g.add_kernel({"alpha", 1, 1}, [](simt::BlockCtx&) {});
        try {
            g.add_kernel({"beta", 1, 1}, [](simt::BlockCtx&) {}, {a + 7});
            std::printf("graph missing edge: NOT DETECTED\n");
            ok = false;
        } catch (const simt::GraphError& e) {
            const std::string what = e.what();
            const bool named = what.find("unknown node") != std::string::npos;
            std::printf("graph missing edge: %s (%s)\n",
                        named ? "detected" : "WRONG DIAGNOSTIC", e.what());
            ok = ok && named;
        }
    }
    return ok;
}

int run_demo_bugs(simt::Device& device) {
    const auto self = simt::sanitize::run_selftest(device);
    std::fputs(self.log.c_str(), stdout);
    const bool graph_ok = run_graph_bug_demo();
    const bool ok = self.ok && graph_ok;
    std::printf("selftest: %s\n", ok ? "all seeded bugs detected" : "FAILED");
    return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
        const auto need_value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "gas_check: %s needs a value\n", flag);
                std::exit(usage());
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--workload") == 0) args.workload = need_value("--workload");
        else if (std::strcmp(argv[i], "--arrays") == 0)
            args.arrays = std::strtoull(need_value("--arrays"), nullptr, 10);
        else if (std::strcmp(argv[i], "--size") == 0)
            args.size = std::strtoull(need_value("--size"), nullptr, 10);
        else if (std::strcmp(argv[i], "--checks") == 0) {
            if (!parse_checks(need_value("--checks"), args.checks)) {
                std::fprintf(stderr, "gas_check: bad --checks value\n");
                return usage();
            }
        } else if (std::strcmp(argv[i], "--exec") == 0) {
            const std::string mode = need_value("--exec");
            if (mode == "scalar") args.exec = simt::ExecMode::Scalar;
            else if (mode == "warp") args.exec = simt::ExecMode::Warp;
            else {
                std::fprintf(stderr, "gas_check: bad --exec value %s\n", mode.c_str());
                return usage();
            }
        } else if (std::strcmp(argv[i], "--tune") == 0) {
            const std::string v = need_value("--tune");
            if (v == "on") args.tune = true;
            else if (v == "off") args.tune = false;
            else {
                // A typo must not silently check the default path: name the
                // rejected string and the full valid set.
                std::fprintf(stderr, "gas_check: unknown --tune '%s' (valid: on, off)\n",
                             v.c_str());
                return 1;
            }
        } else if (std::strcmp(argv[i], "--json") == 0) args.json_path = need_value("--json");
        else if (std::strcmp(argv[i], "--strict") == 0) args.checks.strict = true;
        else if (std::strcmp(argv[i], "--demo-bugs") == 0) args.demo_bugs = true;
        else {
            std::fprintf(stderr, "gas_check: unknown option %s\n", argv[i]);
            return usage();
        }
    }

    try {
        simt::Device device(simt::tiny_device(512 << 20));
        device.set_exec_mode(args.exec);
        if (args.demo_bugs) return run_demo_bugs(device);

        device.set_sanitize_options(args.checks);
        const bool all = args.workload == "all";
        bool matched = false;
        const auto want = [&](const char* name) {
            const bool hit = all || args.workload == name;
            matched = matched || hit;
            if (hit) std::printf("checking workload: %s\n", name);
            return hit;
        };
        if (want("sort")) run_sort(device, args.arrays, args.size, args.tune);
        if (want("small")) run_small(device, args.arrays);
        if (want("pairs")) run_pairs(device, args.arrays, std::min<std::size_t>(args.size, 2048));
        if (want("ragged")) run_ragged(device, args.arrays);
        if (want("radix")) run_radix(device, args.arrays * args.size);
        if (want("bitonic"))
            run_bitonic(device, args.arrays, std::min<std::size_t>(args.size, 2048));
        if (want("graph"))
            run_graph(device, args.arrays, std::min<std::size_t>(args.size, 2048));
        if (!matched) {
            std::fprintf(stderr, "gas_check: unknown workload %s\n", args.workload.c_str());
            return usage();
        }

        std::printf("\n");
        simt::print_sanitize_report(std::cout, device);

        if (!args.json_path.empty()) {
            std::ofstream out(args.json_path);
            if (!out) throw std::runtime_error("cannot write " + args.json_path);
            out << simt::sanitize::to_json(device.sanitize_report()) << "\n";
            std::printf("wrote JSON report to %s\n", args.json_path.c_str());
        }
        return device.sanitize_report().clean() ? 0 : 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "gas_check: %s\n", e.what());
        return 1;
    }
}
