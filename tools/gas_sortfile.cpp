// gas_sortfile — sort a binary .gad dataset file with GPU-ArraySort on the
// simulated device.  Picks in-core or out-of-core automatically based on the
// dataset's footprint vs. device memory.
//
//   gas_sortfile gen  <out.gad> <N> <n> [dist]       generate a dataset
//   gas_sortfile sort <in.gad> <out.gad> [--desc] [--device-mb M]
//   gas_sortfile info <in.gad>                       header + sortedness
//
// dist: uniform|normal|exponential|sorted|reverse|nearly-sorted|
//       few-distinct|constant

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/gpu_array_sort.hpp"
#include "core/validate.hpp"
#include "ooc/out_of_core.hpp"
#include "simt/device.hpp"
#include "simt/report.hpp"
#include "workload/dataset_io.hpp"

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: gas_sortfile <command> ...\n"
                 "  gen  <out.gad> <N> <n> [dist=uniform]\n"
                 "  sort <in.gad> <out.gad> [--desc] [--device-mb M]\n"
                 "  info <in.gad>\n");
    return 2;
}

workload::Distribution parse_dist(const std::string& name) {
    for (auto d : workload::all_distributions()) {
        if (workload::to_string(d) == name) return d;
    }
    throw std::runtime_error("unknown distribution: " + name);
}

int cmd_gen(int argc, char** argv) {
    if (argc < 5) return usage();
    const auto n_arrays = static_cast<std::size_t>(std::strtoull(argv[3], nullptr, 10));
    const auto n = static_cast<std::size_t>(std::strtoull(argv[4], nullptr, 10));
    const auto dist = argc > 5 ? parse_dist(argv[5]) : workload::Distribution::Uniform;
    const auto ds = workload::make_dataset(n_arrays, n, dist);
    workload::write_dataset_file(argv[2], ds);
    std::printf("wrote %zu x %zu %s dataset (%.1f MB) to %s\n", n_arrays, n,
                workload::to_string(dist).c_str(),
                static_cast<double>(ds.values.size() * sizeof(float)) / 1048576.0, argv[2]);
    return 0;
}

int cmd_sort(int argc, char** argv) {
    if (argc < 4) return usage();
    bool descending = false;
    std::size_t device_mb = 0;
    for (int i = 4; i < argc; ++i) {
        if (std::strcmp(argv[i], "--desc") == 0) descending = true;
        if (std::strcmp(argv[i], "--device-mb") == 0 && i + 1 < argc) {
            device_mb = std::strtoull(argv[++i], nullptr, 10);
        }
    }

    auto ds = workload::read_dataset_file(argv[2]);
    simt::Device device(device_mb > 0 ? simt::tiny_device(device_mb << 20)
                                      : simt::tesla_k40c());
    std::printf("%s\n", simt::describe_device(device.props()).c_str());

    gas::Options opts;
    opts.order = descending ? gas::SortOrder::Descending : gas::SortOrder::Ascending;

    const std::size_t footprint = gas::device_footprint_bytes(ds.num_arrays, ds.array_size,
                                                              opts, device.props());
    if (footprint <= device.memory().capacity()) {
        const auto stats =
            gas::gpu_array_sort(device, ds.values, ds.num_arrays, ds.array_size, opts);
        std::printf("in-core: %.2f ms modeled kernels (+%.2f ms transfers), peak %.1f MB\n",
                    stats.modeled_kernel_ms(), stats.h2d_ms + stats.d2h_ms,
                    static_cast<double>(stats.peak_device_bytes) / 1048576.0);
    } else {
        if (descending) {
            std::fprintf(stderr, "out-of-core path is ascending-only\n");
            return 1;
        }
        ooc::OocOptions oopts;
        const auto stats = ooc::out_of_core_sort(device, ds.values, ds.num_arrays,
                                                 ds.array_size, oopts);
        std::printf("out-of-core: %zu batches of %zu arrays, %.2f ms modeled with overlap "
                    "(%.2f ms serial)\n",
                    stats.batches, stats.batch_arrays, stats.modeled_overlap_ms,
                    stats.modeled_serial_ms);
    }

    const bool ok = descending
                        ? gas::all_arrays_sorted_descending(ds.values, ds.num_arrays,
                                                            ds.array_size)
                        : gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size);
    if (!ok) {
        std::fprintf(stderr, "internal error: output not sorted\n");
        return 1;
    }
    workload::write_dataset_file(argv[3], ds);
    std::printf("wrote sorted dataset to %s\n", argv[3]);
    return 0;
}

int cmd_info(int argc, char** argv) {
    if (argc < 3) return usage();
    const auto ds = workload::read_dataset_file(argv[2]);
    std::printf("%s: %zu arrays x %zu floats (%.1f MB)\n", argv[2], ds.num_arrays,
                ds.array_size,
                static_cast<double>(ds.values.size() * sizeof(float)) / 1048576.0);
    std::printf("rows ascending: %s\n",
                gas::all_arrays_sorted(ds.values, ds.num_arrays, ds.array_size) ? "yes"
                                                                                : "no");
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    try {
        if (std::strcmp(argv[1], "gen") == 0) return cmd_gen(argc, argv);
        if (std::strcmp(argv[1], "sort") == 0) return cmd_sort(argc, argv);
        if (std::strcmp(argv[1], "info") == 0) return cmd_info(argc, argv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "gas_sortfile: %s\n", e.what());
        return 1;
    }
    return usage();
}
