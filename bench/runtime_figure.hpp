#pragma once

// Shared driver for Figs. 4-7: "Run Time Analysis for Array Size n" —
// time (ms) vs. number of arrays N, GPU-ArraySort vs. STA, uniform floats
// in [0, 2^31 - 1] exactly as in section 7.2.

#include <cstdio>

#include "ascii_chart.hpp"
#include "baseline/sta_sort.hpp"
#include "common.hpp"
#include "core/gpu_array_sort.hpp"
#include "simt/device.hpp"
#include "workload/generators.hpp"

namespace bench {

inline int run_runtime_figure(const char* figure, std::size_t array_size, int argc,
                              char** argv) {
    const Args args = parse(argc, argv);
    const simt::ExecMode exec = exec_mode_for(args);
    const auto grid = n_arrays_grid(args);
    Series gas_series{"GPU-ArraySort (modeled ms)", 'o', {}, {}};
    Series sta_series{"STA / Thrust tagged (modeled ms)", 'x', {}, {}};
    CsvWriter csv(args.csv, "num_arrays,gas_modeled_ms,sta_modeled_ms,gas_wall_ms,sta_wall_ms");

    std::printf("%s: Run Time Analysis for Array Size %zu\n", figure, array_size);
    std::printf("dataset: uniform floats in [0, 2^31-1], %s N grid%s\n",
                args.full ? "paper-scale" : "scaled (1/40 of paper)",
                args.full ? "" : "  [pass --full for paper scale]");
    std::printf("modeled ms = analytic Tesla K40c time (the paper's y-axis)\n");
    std::printf("interpreter: %s (bit-identical modes; scalar is the pinned reference, "
                "--full defaults to warp)\n",
                exec == simt::ExecMode::Warp ? "warp fast path" : "scalar");
    rule('=');
    std::printf("%10s | %16s %16s | %12s | %14s %14s\n", "N arrays", "GPU-AS modeled",
                "STA modeled", "STA/GPU-AS", "GPU-AS wall", "STA wall");
    rule();

    for (const std::size_t num_arrays : grid) {
        auto ds = workload::make_dataset(num_arrays, array_size,
                                         workload::Distribution::Uniform,
                                         /*seed=*/array_size);

        double gas_modeled = 0.0;
        double gas_wall = 0.0;
        {
            simt::Device dev = bench::make_device();
            dev.set_exec_mode(exec);
            simt::DeviceBuffer<float> data(dev, ds.values.size());
            simt::copy_to_device(std::span<const float>(ds.values), data);
            const auto s = gas::sort_arrays_on_device(dev, data, num_arrays, array_size);
            gas_modeled = s.modeled_kernel_ms();
            gas_wall = s.wall_kernel_ms();
        }

        double sta_modeled = 0.0;
        double sta_wall = 0.0;
        {
            simt::Device dev = bench::make_device();
            dev.set_exec_mode(exec);
            simt::DeviceBuffer<float> data(dev, ds.values.size());
            simt::copy_to_device(std::span<const float>(ds.values), data);
            // Paper-faithful STA: Thrust's radix sort always runs all 8
            // digit passes, so the figures disable key-range pass pruning
            // (the production default) for the baseline.
            sta::StaOptions sta_opts;
            sta_opts.radix.prune_passes = false;
            const auto s = sta::sta_sort_on_device(dev, data, num_arrays, array_size, sta_opts);
            sta_modeled = s.modeled_ms;
            sta_wall = s.wall_ms;
        }

        std::printf("%10zu | %13.1f ms %13.1f ms | %11.2fx | %11.1f ms %11.1f ms\n",
                    num_arrays, gas_modeled, sta_modeled, sta_modeled / gas_modeled,
                    gas_wall, sta_wall);
        std::fflush(stdout);
        gas_series.x.push_back(static_cast<double>(num_arrays));
        gas_series.y.push_back(gas_modeled);
        sta_series.x.push_back(static_cast<double>(num_arrays));
        sta_series.y.push_back(sta_modeled);
        csv.row("%zu,%.4f,%.4f,%.4f,%.4f", num_arrays, gas_modeled, sta_modeled, gas_wall,
                sta_wall);
    }
    rule();
    plot({gas_series, sta_series}, "number of arrays N", "time (ms)");
    rule();
    std::printf("paper shape: both curves linear in N; GPU-ArraySort below STA at every N\n");
    return 0;
}

}  // namespace bench
