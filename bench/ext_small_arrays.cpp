// Extension bench — the small-array fast path: when n <= ~2x the bucket
// target the plan degenerates to one bucket, and the library switches to a
// packed one-thread-per-array kernel.  Sweeps tiny n and compares against
// the general three-phase path (forced by an artificially small
// bucket_target) and against STA.

#include <cstdio>

#include "baseline/sta_sort.hpp"
#include "common.hpp"
#include "core/gpu_array_sort.hpp"
#include "simt/device.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
    const bench::Args args = bench::parse(argc, argv);
    const std::size_t num_arrays = args.full ? 500000 : 20000;

    std::printf("Small-array fast path (N = %zu tiny arrays, uniform)\n", num_arrays);
    bench::rule('=');
    std::printf("%6s | %14s %14s %14s\n", "n", "packed path", "3-phase path", "STA");
    bench::rule();

    for (const std::size_t n : {4u, 8u, 16u, 32u}) {
        auto ds = workload::make_dataset(num_arrays, n, workload::Distribution::Uniform, n);

        double packed_ms = 0.0;
        {
            simt::Device dev = bench::make_device();
            auto copy = ds.values;
            // default bucket_target=20 -> p==1 for these n -> packed path
            packed_ms = gas::gpu_array_sort(dev, copy, num_arrays, n).modeled_kernel_ms();
        }
        double phased_ms = 0.0;
        {
            simt::Device dev = bench::make_device();
            auto copy = ds.values;
            gas::Options opts;
            opts.bucket_target = 2;  // force p > 1 -> the general machinery
            phased_ms =
                gas::gpu_array_sort(dev, copy, num_arrays, n, opts).modeled_kernel_ms();
        }
        double sta_ms = 0.0;
        {
            simt::Device dev = bench::make_device();
            auto copy = ds.values;
            sta_ms = sta::sta_sort(dev, copy, num_arrays, n).modeled_ms;
        }
        std::printf("%6zu | %12.2fms %12.2fms %12.2fms\n", n, packed_ms, phased_ms, sta_ms);
        std::fflush(stdout);
    }
    bench::rule();
    std::printf("shape: for tiny arrays the packed kernel wins — no splitter/bucket\n");
    std::printf("machinery, 256 arrays per block instead of 1-thread blocks.\n");
    return 0;
}
