// Reproduces Fig. 5: time vs. number of arrays, array size n = 2000.
#include "runtime_figure.hpp"

int main(int argc, char** argv) {
    return bench::run_runtime_figure("Figure 5", 2000, argc, argv);
}
