// Overload & recovery bench: the serving fleet under gas::health.
//
// A two-device fleet server faces, in turn: a 2x-capacity admission burst
// (overload shedding + the brownout ladder), a mid-run device kill followed
// by a revive (quarantine, probe-sort re-admission through probation), and
// wall-clock hang injection (watchdog/hang-handler abort).  BENCH_health.json
// asserts the acceptance gates:
//   * termination: 100% of accepted requests reach a terminal response,
//   * typed sheds: every request dropped by overload protection completes
//     as Status::Shed — never a silent loss, never a block,
//   * integrity: zero byte mismatches against the host reference across
//     every phase (and hedge_mismatches == 0),
//   * recovery: the killed device is re-admitted via probation and serves
//     verified traffic again; hangs are detected and absorbed,
//   * brownout: accepted-request p99 wall latency under the burst stays
//     <= 3x the unloaded p99 (shedding bounds the backlog), and
//   * off-switch: health=off serves the same stream bit-identically to the
//     health=on fault-free run (and to the host sort).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "fleet/fleet.hpp"
#include "serve/server.hpp"
#include "workload/generators.hpp"

namespace {

constexpr std::size_t kArraysPerRequest = 4;
constexpr std::size_t kArraySize = 256;

gas::serve::ServerConfig server_config(std::size_t capacity, bool health) {
    gas::serve::ServerConfig cfg;
    cfg.manual_pump = true;  // deterministic batching, shedding and probes
    cfg.queue_capacity = capacity;
    cfg.max_batch_requests = 16;
    cfg.retry.seed = 2025;
    cfg.health.enabled = health;
    cfg.health.probe_passes = 1;
    cfg.health.probation_batches = 1;
    cfg.health.probation_base_weight = 1.0;
    return cfg;
}

struct Request {
    std::size_t array_size = kArraySize;
    std::vector<float> input;
    std::vector<float> want;  ///< host-sorted reference
    gas::serve::Priority priority = gas::serve::Priority::Normal;
};

/// `vary` staggers the array geometry so fused batches spread over both
/// shards (the idiom the kill-revive chaos workload uses).
std::vector<Request> make_requests(std::size_t count, std::uint64_t seed_base,
                                   bool vary = false) {
    std::vector<Request> reqs(count);
    for (std::size_t r = 0; r < count; ++r) {
        reqs[r].array_size = vary ? kArraySize + 16 * (r % 4) : kArraySize;
        reqs[r].input = workload::make_dataset(kArraysPerRequest, reqs[r].array_size,
                                               workload::Distribution::Uniform,
                                               seed_base + r)
                            .values;
        reqs[r].want = reqs[r].input;
        for (std::size_t a = 0; a < kArraysPerRequest; ++a) {
            auto* row = reqs[r].want.data() + a * reqs[r].array_size;
            std::sort(row, row + reqs[r].array_size);
        }
        // Half the stream is sheddable background work.
        reqs[r].priority =
            r % 2 == 1 ? gas::serve::Priority::Low : gas::serve::Priority::Normal;
    }
    return reqs;
}

gas::serve::Server::Ticket submit_one(gas::serve::Server& server, const Request& req) {
    gas::serve::Job job;
    job.kind = gas::serve::JobKind::Uniform;
    job.num_arrays = kArraysPerRequest;
    job.array_size = req.array_size;
    job.values = req.input;
    job.priority = req.priority;
    return server.submit(std::move(job));
}

struct PhaseResult {
    std::size_t ok = 0;
    std::size_t shed = 0;
    std::size_t other = 0;       ///< non-Ok, non-Shed terminals (should be 0)
    std::size_t mismatches = 0;  ///< Ok responses whose bytes differ from the host

    PhaseResult& operator+=(const PhaseResult& rhs) {
        ok += rhs.ok;
        shed += rhs.shed;
        other += rhs.other;
        mismatches += rhs.mismatches;
        return *this;
    }
};

PhaseResult collect(const std::vector<Request>& reqs,
                    std::vector<gas::serve::Server::Ticket>& tickets) {
    PhaseResult res;
    for (std::size_t r = 0; r < tickets.size(); ++r) {
        auto resp = tickets[r].result.get();
        if (resp.ok()) {
            ++res.ok;
            if (resp.values != reqs[r].want) ++res.mismatches;
        } else if (resp.status == gas::serve::Status::Shed) {
            ++res.shed;
        } else {
            ++res.other;
        }
    }
    return res;
}

/// Submit a whole request vector, pump once, and collect every terminal.
PhaseResult serve_burst(gas::serve::Server& server, const std::vector<Request>& reqs) {
    std::vector<gas::serve::Server::Ticket> tickets;
    tickets.reserve(reqs.size());
    for (const auto& r : reqs) tickets.push_back(submit_one(server, r));
    server.pump();
    return collect(reqs, tickets);
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    std::string json_path = "BENCH_health.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[i + 1];
        }
    }
    const std::size_t capacity = quick ? 32 : 64;

    std::printf("Overload & recovery: 2-device fleet, capacity %zu, requests of "
                "%zu x %zu floats\n",
                capacity, kArraysPerRequest, kArraySize);
    bench::rule('=');

    // ---- Phase 1: unloaded baseline (health on, no pressure) --------------
    // One capacity's worth of requests, served in a single drain: the p99
    // yardstick the brownout gate compares against.
    double p99_unloaded = 0.0;
    std::vector<std::vector<float>> bytes_on;
    std::size_t unloaded_bad = 0;
    {
        gas::fleet::DeviceFleet fleet(2);
        gas::serve::Server server(fleet, server_config(capacity, /*health=*/true));
        const auto reqs = make_requests(capacity, 1);
        std::vector<gas::serve::Server::Ticket> tickets;
        for (const auto& r : reqs) tickets.push_back(submit_one(server, r));
        server.pump();
        for (std::size_t r = 0; r < tickets.size(); ++r) {
            auto resp = tickets[r].result.get();
            if (!resp.ok() || resp.values != reqs[r].want) ++unloaded_bad;
            bytes_on.push_back(std::move(resp.values));  // index-aligned capture
        }
        p99_unloaded = server.stats().wall_ms.p99;
        std::printf("unloaded: %zu requests served, p99 %.3f ms wall, %zu bad\n",
                    capacity, p99_unloaded, unloaded_bad);
    }

    // ---- Phase 1b: the same stream with health off (identity gate) -------
    std::size_t off_divergence = 0;
    {
        gas::fleet::DeviceFleet fleet(2);
        gas::serve::Server server(fleet, server_config(capacity, /*health=*/false));
        const auto reqs = make_requests(capacity, 1);
        std::vector<gas::serve::Server::Ticket> tickets;
        for (const auto& r : reqs) tickets.push_back(submit_one(server, r));
        server.pump();
        for (std::size_t r = 0; r < tickets.size(); ++r) {
            auto resp = tickets[r].result.get();
            if (!resp.ok() || resp.values != bytes_on[r]) ++off_divergence;
        }
        std::printf("health off: %zu responses, %zu diverging from health-on bytes\n",
                    capacity, off_divergence);
    }

    // ---- Phase 2: 2x-capacity burst (overload protection) ----------------
    PhaseResult burst;
    double p99_burst = 0.0;
    std::uint64_t brownout_escalations = 0;
    std::uint64_t shed_counted = 0;
    int brownout_peak = 0;
    {
        gas::fleet::DeviceFleet fleet(2);
        gas::serve::Server server(fleet, server_config(capacity, /*health=*/true));
        const auto reqs = make_requests(2 * capacity, 1000);
        std::vector<gas::serve::Server::Ticket> tickets;
        for (const auto& r : reqs) {
            tickets.push_back(submit_one(server, r));
            brownout_peak =
                std::max(brownout_peak, server.stats().health.brownout_level);
        }
        server.pump();
        burst = collect(reqs, tickets);
        const auto stats = server.stats();
        p99_burst = stats.wall_ms.p99;
        brownout_escalations = stats.health.brownout_escalations;
        shed_counted = stats.health.shed_total();
        std::printf("burst: %zu submitted over capacity %zu -> %zu ok, %zu shed "
                    "(typed), %zu other, %zu bad bytes\n",
                    2 * capacity, capacity, burst.ok, burst.shed, burst.other,
                    burst.mismatches);
        std::printf("  brownout peak L%d (%llu escalation(s)), accepted p99 %.3f ms "
                    "(unloaded %.3f ms)\n",
                    brownout_peak,
                    static_cast<unsigned long long>(brownout_escalations), p99_burst,
                    p99_unloaded);
    }

    // ---- Phase 3: kill -> revive -> verified traffic ----------------------
    PhaseResult killed, revived;
    std::size_t revived_submitted = 0;
    std::string state_after_kill, state_after_recovery;
    std::uint64_t quarantines = 0, probes_passed = 0, readmissions = 0;
    std::uint64_t recovery_hedge_mismatches = 0;
    {
        gas::fleet::DeviceFleet fleet(2);
        gas::serve::Server server(fleet, server_config(capacity, /*health=*/true));
        simt::faults::FaultPlan kill;
        kill.launch_fail_every = 1;
        fleet.device(0).set_fault_plan(kill);

        killed = serve_burst(server, make_requests(capacity / 2, 5000, /*vary=*/true));
        state_after_kill = server.stats().devices[0].health_state;

        fleet.device(0).set_fault_plan({});
        server.pump();  // probe cycle on the revived device
        std::uint64_t seed = 6000;
        for (int round = 0; round < 8; ++round) {
            const auto again = make_requests(capacity / 2, seed, /*vary=*/true);
            seed += again.size();
            revived += serve_burst(server, again);
            revived_submitted += again.size();
            if (server.stats().devices[0].health_state == "healthy") break;
        }

        const auto stats = server.stats();
        state_after_recovery = stats.devices[0].health_state;
        quarantines = stats.health.quarantines;
        probes_passed = stats.health.probes_passed;
        readmissions = stats.health.readmissions;
        recovery_hedge_mismatches = stats.health.hedge_mismatches;
        std::printf("kill/revive: after kill dev0=%s (%zu ok, %zu bad); after revive "
                    "dev0=%s (%zu/%zu ok, %zu bad), %llu probe pass(es), %llu "
                    "readmission(s)\n",
                    state_after_kill.c_str(), killed.ok, killed.mismatches,
                    state_after_recovery.c_str(), revived.ok, revived_submitted,
                    revived.mismatches,
                    static_cast<unsigned long long>(probes_passed),
                    static_cast<unsigned long long>(readmissions));
    }

    // ---- Phase 4: hang injection ------------------------------------------
    PhaseResult hung;
    std::uint64_t hangs_detected = 0;
    {
        gas::fleet::DeviceFleet fleet(2);
        gas::serve::Server server(fleet, server_config(capacity, /*health=*/true));
        simt::faults::FaultPlan hang;
        hang.hang_every = 1;      // every launch on device 0 wedges...
        hang.hang_max_ms = 25.0;  // ...with a tight wall cap as the backstop
        fleet.device(0).set_fault_plan(hang);

        const auto reqs = make_requests(capacity / 2, 9000, /*vary=*/true);
        hung = serve_burst(server, reqs);
        hangs_detected = server.stats().health.hangs_detected;
        std::printf("hangs: %zu requests with device 0 wedging -> %zu ok, %zu bad, "
                    "%llu hang(s) detected\n",
                    reqs.size(), hung.ok, hung.mismatches,
                    static_cast<unsigned long long>(hangs_detected));
    }
    bench::rule();

    // ---- Gates -------------------------------------------------------------
    const std::size_t total_mismatches = unloaded_bad + burst.mismatches +
                                         killed.mismatches + revived.mismatches +
                                         hung.mismatches;
    const bool termination_pass = burst.other == 0 && killed.other == 0 &&
                                  revived.other == 0 && hung.other == 0 &&
                                  burst.ok + burst.shed == 2 * capacity;
    const bool typed_shed_pass = burst.shed > 0 && burst.shed == shed_counted;
    const bool integrity_pass =
        total_mismatches == 0 && recovery_hedge_mismatches == 0;
    const bool recovery_pass = state_after_kill == "quarantined" &&
                               state_after_recovery == "healthy" &&
                               quarantines >= 1 && probes_passed >= 1 &&
                               readmissions >= 1 && revived_submitted > 0 &&
                               revived.ok == revived_submitted;
    const bool hang_pass = hangs_detected >= 1 && hung.ok == capacity / 2;
    const double p99_ratio = p99_unloaded > 0.0 ? p99_burst / p99_unloaded : 0.0;
    const bool brownout_pass = brownout_peak >= 1 && p99_ratio <= 3.0;
    const bool identity_pass = off_divergence == 0;

    std::printf("gate: termination, %zu untyped terminal(s) (need 0) ...... %s\n",
                burst.other + killed.other + revived.other + hung.other,
                termination_pass ? "PASS" : "FAIL");
    std::printf("gate: typed sheds, %zu shed of %zu over capacity .......... %s\n",
                burst.shed, 2 * capacity, typed_shed_pass ? "PASS" : "FAIL");
    std::printf("gate: integrity, %zu mismatch(es) (need 0) ................ %s\n",
                total_mismatches, integrity_pass ? "PASS" : "FAIL");
    std::printf("gate: recovery via probation (%s -> %s) ................... %s\n",
                state_after_kill.c_str(), state_after_recovery.c_str(),
                recovery_pass ? "PASS" : "FAIL");
    std::printf("gate: hang detection, %llu detected (need >= 1) ........... %s\n",
                static_cast<unsigned long long>(hangs_detected),
                hang_pass ? "PASS" : "FAIL");
    std::printf("gate: brownout p99 ratio %.2fx (<= 3x, peak L%d) .......... %s\n",
                p99_ratio, brownout_peak, brownout_pass ? "PASS" : "FAIL");
    std::printf("gate: health=off identity, %zu divergence(s) (need 0) ..... %s\n",
                off_divergence, identity_pass ? "PASS" : "FAIL");

    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
        std::fprintf(f, "{\n  \"bench\": \"overload_recovery\",\n");
        std::fprintf(f, "  \"capacity\": %zu,\n  \"arrays_per_request\": %zu,\n",
                     capacity, kArraysPerRequest);
        std::fprintf(f, "  \"array_size\": %zu,\n  \"devices\": 2,\n", kArraySize);
        std::fprintf(f,
                     "  \"burst\": {\"submitted\": %zu, \"ok\": %zu, \"shed\": %zu, "
                     "\"brownout_peak\": %d, \"escalations\": %llu},\n",
                     2 * capacity, burst.ok, burst.shed, brownout_peak,
                     static_cast<unsigned long long>(brownout_escalations));
        std::fprintf(f,
                     "  \"recovery\": {\"after_kill\": \"%s\", \"after_revive\": "
                     "\"%s\", \"quarantines\": %llu, \"probes_passed\": %llu, "
                     "\"readmissions\": %llu},\n",
                     state_after_kill.c_str(), state_after_recovery.c_str(),
                     static_cast<unsigned long long>(quarantines),
                     static_cast<unsigned long long>(probes_passed),
                     static_cast<unsigned long long>(readmissions));
        std::fprintf(f, "  \"hangs_detected\": %llu,\n",
                     static_cast<unsigned long long>(hangs_detected));
        std::fprintf(f, "  \"gates\": {\n");
        std::fprintf(f, "    \"termination\": {\"pass\": %s},\n",
                     termination_pass ? "true" : "false");
        std::fprintf(f, "    \"typed_sheds\": {\"shed\": %zu, \"pass\": %s},\n",
                     burst.shed, typed_shed_pass ? "true" : "false");
        std::fprintf(f,
                     "    \"integrity\": {\"mismatches\": %zu, \"hedge_mismatches\": "
                     "%llu, \"max\": 0, \"pass\": %s},\n",
                     total_mismatches,
                     static_cast<unsigned long long>(recovery_hedge_mismatches),
                     integrity_pass ? "true" : "false");
        std::fprintf(f, "    \"recovery\": {\"pass\": %s},\n",
                     recovery_pass ? "true" : "false");
        std::fprintf(f, "    \"hang_detection\": {\"pass\": %s},\n",
                     hang_pass ? "true" : "false");
        // Wall-clock ratio: recorded for trending, gated loosely (3x) so a
        // noisy host cannot flip it; the bench runs RUN_SERIAL in ctest.
        std::fprintf(f,
                     "    \"brownout_p99\": {\"ratio\": %.4f, \"max\": 3.0, "
                     "\"pass\": %s},\n",
                     p99_ratio, brownout_pass ? "true" : "false");
        std::fprintf(f, "    \"off_identity\": {\"divergences\": %zu, \"pass\": %s}\n",
                     off_divergence, identity_pass ? "true" : "false");
        std::fprintf(f, "  }\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    } else {
        std::printf("could not write %s\n", json_path.c_str());
    }

    const bool all_pass = termination_pass && typed_shed_pass && integrity_pass &&
                          recovery_pass && hang_pass && brownout_pass && identity_pass;
    std::printf("%s\n", all_pass ? "ALL GATES PASS" : "GATE FAILURE");
    return all_pass ? 0 : 1;
}
