// Extension bench — the related-work strawman (paper section 2): sorting
// many arrays with a 1-D GPU sort "one after the other" pays a kernel launch
// per array and leaves the device mostly idle.  Compares it against
// GPU-ArraySort and STA at one operating point, plus a per-kernel summary.

#include <cstdio>
#include <iostream>

#include "baseline/sequential_sort.hpp"
#include "baseline/sta_sort.hpp"
#include "common.hpp"
#include "core/gpu_array_sort.hpp"
#include "simt/device.hpp"
#include "simt/report.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
    const bench::Args args = bench::parse(argc, argv);
    const std::size_t num_arrays = args.full ? 50000 : 1000;
    const std::size_t n = 1000;

    std::printf("Sequential per-array sorting strawman (N = %zu, n = %zu, uniform)\n",
                num_arrays, n);
    bench::rule('=');
    std::printf("%24s | %12s | %10s | %12s\n", "technique", "modeled", "launches",
                "launch ovh");
    bench::rule();

    auto ds = workload::make_dataset(num_arrays, n, workload::Distribution::Uniform, 9);
    const double ovh = simt::tesla_k40c().kernel_launch_overhead_ms;

    double seq_ms = 0.0;
    {
        auto copy = ds.values;
        simt::Device dev = bench::make_device();
        const auto s = baseline::sequential_sort(dev, copy, num_arrays, n);
        seq_ms = s.modeled_ms;
        std::printf("%24s | %10.1fms | %10zu | %10.1fms\n", "sequential radix",
                    s.modeled_ms, s.kernel_launches,
                    static_cast<double>(s.kernel_launches) * ovh);
    }
    double sta_ms = 0.0;
    {
        auto copy = ds.values;
        simt::Device dev = bench::make_device();
        const auto s = sta::sta_sort(dev, copy, num_arrays, n);
        sta_ms = s.modeled_ms;
        std::printf("%24s | %10.1fms | %10zu | %10.1fms\n", "STA (tagged Thrust)",
                    s.modeled_ms, dev.kernel_log().size(),
                    static_cast<double>(dev.kernel_log().size()) * ovh);
    }
    double gas_ms = 0.0;
    {
        auto copy = ds.values;
        simt::Device dev = bench::make_device();
        const auto s = gas::gpu_array_sort(dev, copy, num_arrays, n);
        gas_ms = s.modeled_kernel_ms();
        std::printf("%24s | %10.1fms | %10zu | %10.1fms\n", "GPU-ArraySort",
                    s.modeled_kernel_ms(), dev.kernel_log().size(),
                    static_cast<double>(dev.kernel_log().size()) * ovh);
        bench::rule();
        std::printf("\nGPU-ArraySort per-kernel summary:\n");
        simt::print_kernel_summary(std::cout, dev);
    }
    bench::rule();
    std::printf("speedup vs sequential: %.1fx | vs STA: %.1fx\n", seq_ms / gas_ms,
                sta_ms / gas_ms);
    std::printf("paper shape (section 2): per-array 1-D sorting is dominated by launch\n");
    std::printf("overhead and idle SMs — the motivation for a dedicated many-array sort.\n");
    return 0;
}
