// Launch-overhead microbenchmark: launches/second through the persistent
// worker pool vs. the old per-launch strategy (spawn + join a std::thread
// per worker, each constructing a fresh BlockCtx with its 48 KB arena).
//
// Small grids are where overhead dominates — a 4-block kernel simulates in
// microseconds, so per-launch thread creation was the bill.  GPU-ArraySort
// issues dozens of launches per sort (STA: 3 kernels x 8 passes x 3 sorts),
// which is why the pool exists.  Acceptance: >= 3x launches/sec on small
// grids.
//
// Output: a human table, then one JSON object on stdout (machine-readable;
// --json PATH writes the same object to a file).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "simt/cost_model.hpp"
#include "simt/device.hpp"
#include "simt/kernel.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// The tiny kernel body both strategies execute per block.
void tiny_body(simt::BlockCtx& blk) {
    blk.for_each_thread([&](simt::ThreadCtx& tc) { tc.ops(1); });
}

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Launches/sec through Device::launch (the persistent pool).
double pool_rate(simt::Device& dev, unsigned grid, unsigned block, int iters) {
    for (int i = 0; i < 16; ++i) dev.launch({"micro.tiny", grid, block}, tiny_body);
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) dev.launch({"micro.tiny", grid, block}, tiny_body);
    return iters / seconds_since(t0);
}

/// Launches/sec with the pre-pool strategy: every launch spawns `workers`
/// std::threads, each of which constructs its own BlockCtx (48 KB shared
/// arena included), pulls blocks from a shared counter, and is joined.
/// Cost aggregation mirrors Device::launch so the work per block matches.
double spawn_rate(const simt::DeviceProperties& props, unsigned grid, unsigned block,
                  unsigned workers, int iters) {
    const simt::CostModel model(props);
    workers = std::min(workers, grid);
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
        std::vector<simt::BlockCost> records(grid);
        std::atomic<unsigned> next{0};
        auto worker = [&](unsigned slot) {
            simt::BlockCtx ctx(block, grid, props.shared_memory_per_block,
                               simt::ThreadOrder::Forward, slot);
            for (unsigned b = next.fetch_add(1); b < grid; b = next.fetch_add(1)) {
                ctx.begin_block(b);
                tiny_body(ctx);
                records[b] = model.block_cost(ctx.lanes());
            }
        };
        std::vector<std::thread> threads;
        threads.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) threads.emplace_back(worker, w);
        for (auto& t : threads) t.join();
        double cycles = 0.0;
        for (const auto& r : records) cycles += r.cycles;
        (void)cycles;
    }
    return iters / seconds_since(t0);
}

}  // namespace

int main(int argc, char** argv) {
    std::string json_path;
    int iters = 2000;
    int spawn_iters = 300;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
            iters = std::max(1, std::atoi(argv[++i]));
            spawn_iters = std::max(1, iters / 4);
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("usage: %s [--iters N] [--json PATH]\n", argv[0]);
            return 0;
        }
    }

    const unsigned workers = std::max(std::thread::hardware_concurrency(), 1u);
    simt::Device dev(simt::tesla_k40c(), simt::DeviceMemory::Mode::Backed, workers);
    const unsigned grids[] = {1, 4, 16, 64, 256};
    const unsigned block = 32;

    std::printf("Launch overhead: persistent pool vs per-launch thread spawning\n");
    std::printf("host workers: %u, block_dim: %u, %d pool iters / %d spawn iters\n",
                workers, block, iters, spawn_iters);
    bench::rule('=');
    std::printf("%8s | %18s %18s | %8s\n", "grid", "pool launches/s", "spawn launches/s",
                "speedup");
    bench::rule();

    std::string json = "{\"bench\":\"micro_launch_overhead\",\"workers\":" +
                       std::to_string(workers) + ",\"block_dim\":" + std::to_string(block) +
                       ",\"results\":[";
    bool ok = true;
    for (std::size_t i = 0; i < std::size(grids); ++i) {
        const unsigned grid = grids[i];
        // Larger grids do real per-block work; scale iterations down so the
        // bench stays quick without losing resolution.
        const int scale = grid >= 64 ? 4 : 1;
        const double pool = pool_rate(dev, grid, block, iters / scale);
        const double spawn = spawn_rate(dev.props(), grid, block, workers,
                                        spawn_iters / scale);
        const double speedup = pool / spawn;
        if (grid <= 16 && speedup < 3.0) ok = false;
        std::printf("%8u | %18.0f %18.0f | %7.1fx\n", grid, pool, spawn, speedup);
        std::fflush(stdout);
        char row[256];
        std::snprintf(row, sizeof(row),
                      "%s{\"grid\":%u,\"pool_launches_per_sec\":%.1f,"
                      "\"spawn_launches_per_sec\":%.1f,\"speedup\":%.3f}",
                      i == 0 ? "" : ",", grid, pool, spawn, speedup);
        json += row;
    }
    // The pool numbers above are only honest if the sanitizer machinery is
    // provably inert by default: same kernel, default vs all-checks device,
    // every deterministic KernelStats field bit-identical.
    const bool inert = bench::verify_sanitize_off_guarantee([](simt::Device& dev) {
        for (int i = 0; i < 32; ++i) dev.launch({"micro.tiny", 16, 32}, tiny_body);
    });
    ok = ok && inert;

    json += "],\"sanitize_off_bit_identical\":";
    json += inert ? "true" : "false";
    json += ",\"small_grid_speedup_ge_3x\":";
    json += ok ? "true" : "false";
    json += "}";

    bench::rule();
    std::printf("small grids (<=16 blocks) >= 3x: %s\n", ok ? "yes" : "NO");
    std::printf("%s\n", json.c_str());
    if (!json_path.empty()) {
        if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
            std::fprintf(f, "%s\n", json.c_str());
            std::fclose(f);
        }
    }
    return ok ? 0 : 1;
}
