// Launch-overhead microbenchmark: launches/second through the persistent
// worker pool vs. the old per-launch strategy (spawn + join a std::thread
// per worker, each constructing a fresh BlockCtx with its 48 KB arena), and
// the pool's loop-of-launches vs. one submitted simt::Graph.
//
// Small grids are where overhead dominates — a 4-block kernel simulates in
// microseconds, so per-launch thread creation was the bill.  GPU-ArraySort
// issues dozens of launches per sort (STA: 3 kernels x 8 passes x 3 sorts),
// which is why the pool exists; a work graph removes the remaining
// per-launch scheduling round-trip by keeping the worker team resident for
// the whole DAG.  Gates:
//
//   pool vs spawn   >= 3x launches/sec on small grids (full mode only)
//   graph vs loop   >= 2x launches/sec on small grids (fig4-shaped chains)
//   equivalence     graph and loop paths sort fig4-shaped work with 0 byte
//                   mismatches and 0 deterministic-KernelStats drift, in
//                   Scalar and Warp modes, sanitizer off and strict
//
//   micro_launch_overhead [--quick] [--iters N] [--json PATH]
//                         [--baseline PATH]
//
// The full run owns the committed BENCH_graph.json artifact; --quick is the
// bench-smoke ctest body — it trims iterations, skips the slow spawn
// comparison, and diffs its graph launch rate against the committed
// baseline (>20% regression fails).  Exit code 0 iff every gate passed.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/gpu_array_sort.hpp"
#include "simt/cost_model.hpp"
#include "simt/device.hpp"
#include "simt/graph.hpp"
#include "simt/kernel.hpp"
#include "workload/generators.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// The tiny kernel body every launch strategy executes per block.
void tiny_body(simt::BlockCtx& blk) {
    blk.for_each_thread([&](simt::ThreadCtx& tc) { tc.ops(1); });
}

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Launches/sec through Device::launch (the persistent pool).
double pool_rate(simt::Device& dev, unsigned grid, unsigned block, int iters) {
    for (int i = 0; i < 16; ++i) dev.launch({"micro.tiny", grid, block}, tiny_body);
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) dev.launch({"micro.tiny", grid, block}, tiny_body);
    return iters / seconds_since(t0);
}

/// Launches/sec with the pre-pool strategy: every launch spawns `workers`
/// std::threads, each of which constructs its own BlockCtx (48 KB shared
/// arena included), pulls blocks from a shared counter, and is joined.
/// Cost aggregation mirrors Device::launch so the work per block matches.
double spawn_rate(const simt::DeviceProperties& props, unsigned grid, unsigned block,
                  unsigned workers, int iters) {
    const simt::CostModel model(props);
    workers = std::min(workers, grid);
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
        std::vector<simt::BlockCost> records(grid);
        std::atomic<unsigned> next{0};
        auto worker = [&](unsigned slot) {
            simt::BlockCtx ctx(block, grid, props.shared_memory_per_block,
                               simt::ThreadOrder::Forward, slot);
            for (unsigned b = next.fetch_add(1); b < grid; b = next.fetch_add(1)) {
                ctx.begin_block(b);
                tiny_body(ctx);
                records[b] = model.block_cost(ctx.lanes());
            }
        };
        std::vector<std::thread> threads;
        threads.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) threads.emplace_back(worker, w);
        for (auto& t : threads) t.join();
        double cycles = 0.0;
        for (const auto& r : records) cycles += r.cycles;
        (void)cycles;
    }
    return iters / seconds_since(t0);
}

/// Kernel launches/sec when a `chain`-node dependency chain is issued as
/// `chain` separate Device::launch calls (one scheduling round-trip each).
double loop_chain_rate(simt::Device& dev, unsigned grid, unsigned block,
                       unsigned chain, int iters) {
    const auto run = [&] {
        for (unsigned k = 0; k < chain; ++k) {
            dev.launch({"micro.tiny", grid, block}, tiny_body);
        }
    };
    for (int i = 0; i < 4; ++i) run();
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) run();
    return iters * chain / seconds_since(t0);
}

/// Kernel launches/sec when the same chain is one Device::submit: the worker
/// team stays resident across all `chain` nodes, so the per-launch wake/join
/// round-trip is paid once per graph.  Graph construction is timed too — a
/// sorter rebuilds its graph per sort, so build cost is part of the win.
double graph_chain_rate(simt::Device& dev, unsigned grid, unsigned block,
                        unsigned chain, int iters) {
    const auto run = [&] {
        simt::Graph g;
        simt::Graph::NodeId prev = 0;
        for (unsigned k = 0; k < chain; ++k) {
            prev = k == 0 ? g.add_kernel({"micro.tiny", grid, block}, tiny_body)
                          : g.add_kernel({"micro.tiny", grid, block}, tiny_body, {prev});
        }
        dev.submit(g);
    };
    for (int i = 0; i < 4; ++i) run();
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) run();
    return iters * chain / seconds_since(t0);
}

/// Number of output elements whose bit patterns differ.
std::size_t byte_mismatches(const std::vector<float>& a, const std::vector<float>& b) {
    if (a.size() != b.size()) return std::max(a.size(), b.size());
    std::size_t bad = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::memcmp(&a[i], &b[i], sizeof(float)) != 0) ++bad;
    }
    return bad;
}

/// Number of kernel-log rows whose deterministic KernelStats fields differ
/// (wall_ms is host time and legitimately differs between strategies).
std::size_t stats_drift(const std::vector<simt::KernelStats>& a,
                        const std::vector<simt::KernelStats>& b) {
    if (a.size() != b.size()) return std::max(a.size(), b.size());
    std::size_t bad = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto& s = a[i];
        const auto& w = b[i];
        const bool same =
            s.name == w.name && s.grid_dim == w.grid_dim && s.block_dim == w.block_dim &&
            s.shared_bytes_per_block == w.shared_bytes_per_block &&
            s.totals.ops == w.totals.ops &&
            s.totals.shared_accesses == w.totals.shared_accesses &&
            s.totals.coalesced_bytes == w.totals.coalesced_bytes &&
            s.totals.random_accesses == w.totals.random_accesses &&
            s.traffic_bytes == w.traffic_bytes && s.compute_ms == w.compute_ms &&
            s.memory_ms == w.memory_ms && s.modeled_ms == w.modeled_ms &&
            s.warp_max_cycles == w.warp_max_cycles &&
            s.warp_mean_cycles == w.warp_mean_cycles && s.imbalance == w.imbalance;
        if (!same) ++bad;
    }
    return bad;
}

struct EquivCell {
    const char* exec;      ///< "scalar" | "warp"
    const char* sanitize;  ///< "off" | "strict"
    std::size_t mismatches = 0;
    std::size_t drift = 0;
};

/// Sorts the same fig4-shaped dataset with Options::graph_launch off and on
/// under one (exec mode, sanitize) configuration and reports the byte and
/// deterministic-stats deltas — the graph executor's bit-identical contract.
EquivCell equivalence_cell(const workload::Dataset& ds, simt::ExecMode mode,
                           bool strict) {
    const auto run = [&](bool graph) {
        auto values = ds.values;
        simt::Device dev = bench::make_device();
        dev.set_exec_mode(mode);
        if (strict) {
            auto sopts = simt::sanitize::SanitizeOptions::all();
            sopts.strict = true;
            dev.set_sanitize_options(sopts);
        }
        gas::Options opts;
        opts.graph_launch = graph;
        gas::gpu_array_sort(dev, std::span<float>(values), ds.num_arrays, ds.array_size,
                            opts);
        return std::pair{std::move(values),
                         std::vector<simt::KernelStats>(dev.kernel_log().begin(),
                                                        dev.kernel_log().end())};
    };
    const auto loop = run(false);
    const auto graph = run(true);
    EquivCell cell{mode == simt::ExecMode::Warp ? "warp" : "scalar",
                   strict ? "strict" : "off"};
    cell.mismatches = byte_mismatches(loop.first, graph.first);
    cell.drift = stats_drift(loop.second, graph.second);
    return cell;
}

/// Pulls "\"quick_graph_launches_per_sec\": <num>" out of a committed
/// baseline JSON; returns 0.0 when the file or field is missing.
double baseline_quick_rate(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) return 0.0;
    std::string text(1 << 16, '\0');
    text.resize(std::fread(text.data(), 1, text.size(), f));
    std::fclose(f);
    const char* key = "\"quick_graph_launches_per_sec\":";
    const auto pos = text.find(key);
    if (pos == std::string::npos) return 0.0;
    return std::strtod(text.c_str() + pos + std::strlen(key), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    std::string json_path;
    std::string baseline_path;
    int iters = 2000;
    int spawn_iters = 300;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
            iters = std::max(1, std::atoi(argv[++i]));
            spawn_iters = std::max(1, iters / 4);
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("usage: %s [--quick] [--iters N] [--json PATH] [--baseline PATH]\n",
                        argv[0]);
            return 0;
        }
    }
    if (quick) {
        iters = std::min(iters, 400);
        spawn_iters = std::min(spawn_iters, 100);
    }
    // The full run owns the committed artifact; --quick (the smoke test)
    // writes nothing unless asked, so it can never clobber the baseline.
    if (json_path.empty() && !quick) json_path = "BENCH_graph.json";

    const unsigned workers = std::max(std::thread::hardware_concurrency(), 1u);
    simt::Device dev(simt::tesla_k40c(), simt::DeviceMemory::Mode::Backed, workers);
    const unsigned grids[] = {1, 4, 16, 64, 256};
    const unsigned block = 32;
    // A fig4-shaped sort issues a few dozen dependent launches (3 phases plus
    // negate/verify variants; STA is 3 kernels x 8 passes x 3 sorts).
    const unsigned chain = 24;

    std::string json = "{\"bench\":\"micro_launch_overhead\",\"workers\":" +
                       std::to_string(workers) + ",\"block_dim\":" + std::to_string(block);
    bool ok = true;

    std::printf("Launch overhead: persistent pool vs per-launch thread spawning\n");
    std::printf("host workers: %u, block_dim: %u, %d pool iters / %d spawn iters\n",
                workers, block, iters, spawn_iters);
    bench::rule('=');

    bool spawn_ok = true;
    if (!quick) {
        std::printf("%8s | %18s %18s | %8s\n", "grid", "pool launches/s",
                    "spawn launches/s", "speedup");
        bench::rule();
        json += ",\"results\":[";
        for (std::size_t i = 0; i < std::size(grids); ++i) {
            const unsigned grid = grids[i];
            // Larger grids do real per-block work; scale iterations down so
            // the bench stays quick without losing resolution.
            const int scale = grid >= 64 ? 4 : 1;
            const double pool = pool_rate(dev, grid, block, iters / scale);
            const double spawn = spawn_rate(dev.props(), grid, block, workers,
                                            spawn_iters / scale);
            const double speedup = pool / spawn;
            if (grid <= 16 && speedup < 3.0) spawn_ok = false;
            std::printf("%8u | %18.0f %18.0f | %7.1fx\n", grid, pool, spawn, speedup);
            std::fflush(stdout);
            char row[256];
            std::snprintf(row, sizeof(row),
                          "%s{\"grid\":%u,\"pool_launches_per_sec\":%.1f,"
                          "\"spawn_launches_per_sec\":%.1f,\"speedup\":%.3f}",
                          i == 0 ? "" : ",", grid, pool, spawn, speedup);
            json += row;
        }
        json += "]";
        std::printf("small grids (<=16 blocks) pool >= 3x spawn: %s\n",
                    spawn_ok ? "yes" : "NO");
        ok = ok && spawn_ok;
        bench::rule();
    }

    // Graph submission vs the loop of pool launches: the same `chain`-node
    // dependency chain, one Device::submit vs `chain` Device::launch calls.
    // The comparison targets the multi-worker scheduling protocol the graph
    // amortizes (per-launch park/wake vs one resident team), so the device
    // gets at least 4 workers even on a small CI host; grid=1 is reported
    // but not gated — Device::launch clamps a 1-block kernel to the inline
    // path, where there is no round-trip on either side to amortize.
    const unsigned team_workers = std::max(workers, 4u);
    simt::Device team_dev(simt::tesla_k40c(), simt::DeviceMemory::Mode::Backed,
                          team_workers);
    std::printf("Graph launches: %u-kernel chain as one Device::submit vs a launch loop "
                "(%u workers)\n",
                chain, team_workers);
    std::printf("%8s | %18s %18s | %8s\n", "grid", "graph launches/s",
                "loop launches/s", "speedup");
    bench::rule();
    json += ",\"graph\":[";
    bool graph_ok = true;
    double quick_rate = 0.0;
    // Sized so each measurement spans ~100ms — launch rates on a timeshared
    // host need to average over several scheduler quanta; --quick keeps the
    // full size here because the graph gate is the point of the quick run.
    const int chain_iters = 2000 / static_cast<int>(chain) * 4;
    // Best-of-3 per side: launch rates on a shared host are scheduler-noisy,
    // and each side's best run is its honest capability.
    const auto best_of = [](const auto& measure) {
        double best = 0.0;
        for (int rep = 0; rep < 3; ++rep) best = std::max(best, measure());
        return best;
    };
    for (std::size_t i = 0; i < std::size(grids); ++i) {
        const unsigned grid = grids[i];
        const int scale = grid >= 64 ? 4 : 1;
        const double loop = best_of(
            [&] { return loop_chain_rate(team_dev, grid, block, chain, chain_iters / scale); });
        const double graph = best_of(
            [&] { return graph_chain_rate(team_dev, grid, block, chain, chain_iters / scale); });
        const double speedup = graph / loop;
        // The gate sits on the overhead-dominated point (a 4-block grid is
        // too small to hide any scheduling round-trip).  Larger grids are
        // reported but not gated: past ~16 blocks per-block work dominates
        // and on a uniprocessor CI host the ratio degenerates toward 1.
        if (grid == 4 && speedup < 2.0) graph_ok = false;
        if (grid == 4) quick_rate = graph;
        std::printf("%8u | %18.0f %18.0f | %7.1fx\n", grid, graph, loop, speedup);
        std::fflush(stdout);
        char row[256];
        std::snprintf(row, sizeof(row),
                      "%s{\"grid\":%u,\"chain\":%u,\"graph_launches_per_sec\":%.1f,"
                      "\"loop_launches_per_sec\":%.1f,\"speedup\":%.3f}",
                      i == 0 ? "" : ",", grid, chain, graph, loop, speedup);
        json += row;
    }
    json += "]";
    std::printf("overhead-dominated small grid (4 blocks) graph >= 2x loop: %s\n",
                graph_ok ? "yes" : "NO");
    ok = ok && graph_ok;
    bench::rule();

    // Bit-identical contract on real fig4-shaped work: graph_launch on vs
    // off must agree byte-for-byte and stat-for-stat in every configuration.
    const std::size_t eq_arrays = quick ? 64 : 250;
    const std::size_t eq_size = quick ? 500 : 1000;
    const auto ds = workload::make_dataset(eq_arrays, eq_size,
                                           workload::Distribution::Uniform, 4);
    std::printf("Graph vs loop equivalence: fig4-shaped sort, N=%zu n=%zu\n", eq_arrays,
                eq_size);
    json += ",\"equivalence\":[";
    bool equiv_ok = true;
    bool first_cell = true;
    for (const auto mode : {simt::ExecMode::Scalar, simt::ExecMode::Warp}) {
        for (const bool strict : {false, true}) {
            const EquivCell cell = equivalence_cell(ds, mode, strict);
            equiv_ok = equiv_ok && cell.mismatches == 0 && cell.drift == 0;
            std::printf("  %-6s sanitize=%-6s | %zu byte mismatches, %zu stats drift\n",
                        cell.exec, cell.sanitize, cell.mismatches, cell.drift);
            char row[192];
            std::snprintf(row, sizeof(row),
                          "%s{\"exec\":\"%s\",\"sanitize\":\"%s\","
                          "\"byte_mismatches\":%zu,\"stats_drift\":%zu}",
                          first_cell ? "" : ",", cell.exec, cell.sanitize, cell.mismatches,
                          cell.drift);
            json += row;
            first_cell = false;
        }
    }
    json += "]";
    std::printf("graph path bit-identical in all 4 configurations: %s\n",
                equiv_ok ? "yes" : "NO");
    ok = ok && equiv_ok;

    // The numbers above are only honest if the sanitizer machinery is
    // provably inert by default: same kernel, default vs all-checks device,
    // every deterministic KernelStats field bit-identical.
    const bool inert = bench::verify_sanitize_off_guarantee([](simt::Device& d) {
        for (int i = 0; i < 32; ++i) d.launch({"micro.tiny", 16, 32}, tiny_body);
    });
    ok = ok && inert;

    bool baseline_pass = true;
    if (!baseline_path.empty()) {
        const double base = baseline_quick_rate(baseline_path);
        if (base <= 0.0) {
            std::printf("baseline: no quick_graph_launches_per_sec in %s — FAIL\n",
                        baseline_path.c_str());
            baseline_pass = false;
        } else {
            baseline_pass = quick_rate >= 0.8 * base;
            std::printf("gate: graph launch rate %.0f/s vs baseline %.0f/s "
                        "(need >= 80%%) ... %s\n",
                        quick_rate, base, baseline_pass ? "PASS" : "FAIL");
        }
        ok = ok && baseline_pass;
    }

    char tail[256];
    std::snprintf(tail, sizeof(tail),
                  ",\"quick_graph_launches_per_sec\":%.1f"
                  ",\"sanitize_off_bit_identical\":%s"
                  ",\"small_grid_pool_speedup_ge_3x\":%s"
                  ",\"small_grid_graph_speedup_ge_2x\":%s"
                  ",\"graph_bit_identical\":%s,\"pass\":%s}",
                  quick_rate, inert ? "true" : "false", spawn_ok ? "true" : "false",
                  graph_ok ? "true" : "false", equiv_ok ? "true" : "false",
                  ok ? "true" : "false");
    json += tail;

    bench::rule();
    std::printf("%s\n", json.c_str());
    if (!json_path.empty()) {
        if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
            std::fprintf(f, "%s\n", json.c_str());
            std::fclose(f);
            std::printf("wrote %s\n", json_path.c_str());
        } else {
            std::printf("could not write %s\n", json_path.c_str());
            ok = false;
        }
    }
    return ok ? 0 : 1;
}
