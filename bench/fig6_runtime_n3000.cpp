// Reproduces Fig. 6: time vs. number of arrays, array size n = 3000.
#include "runtime_figure.hpp"

int main(int argc, char** argv) {
    return bench::run_runtime_figure("Figure 6", 3000, argc, argv);
}
