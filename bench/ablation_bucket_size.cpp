// Ablation A1 — section 5.1's claim: "best performance is obtained when
// there are at least 20 elements per bucket".  Sweeps the bucket-target knob
// and reports modeled time per phase plus bucket-balance diagnostics.

#include <cstdio>

#include "common.hpp"
#include "core/gpu_array_sort.hpp"
#include "simt/device.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
    const bench::Args args = bench::parse(argc, argv);
    const std::size_t num_arrays = args.full ? 50000 : 2000;
    const std::size_t n = 1000;

    std::printf("Ablation A1: bucket-target sweep (n = %zu, N = %zu, uniform)\n", n,
                num_arrays);
    bench::rule('=');
    std::printf("%8s %8s | %10s %10s %10s %10s | %8s %8s\n", "target", "buckets", "total",
                "phase1", "phase2", "phase3", "max bkt", "avg bkt");
    bench::rule();

    auto ds = workload::make_dataset(num_arrays, n, workload::Distribution::Uniform, 1);

    double best = 1e300;
    std::size_t best_target = 0;
    for (const std::size_t target : {5u, 10u, 20u, 40u, 80u, 160u, 320u}) {
        auto copy = ds.values;
        simt::Device dev = bench::make_device();
        gas::Options opts;
        opts.bucket_target = target;
        const auto s = gas::gpu_array_sort(dev, copy, num_arrays, n, opts);
        const double total = s.modeled_kernel_ms();
        std::printf("%8zu %8zu | %8.1fms %8.1fms %8.1fms %8.1fms | %8u %8.1f\n", target,
                    s.buckets_per_array, total, s.phase1.modeled_ms, s.phase2.modeled_ms,
                    s.phase3.modeled_ms, s.max_bucket, s.avg_bucket);
        std::fflush(stdout);
        if (total < best) {
            best = total;
            best_target = target;
        }
    }
    bench::rule();
    std::printf("best bucket target: %zu (paper's empirical optimum: ~20)\n", best_target);
    std::printf("shape: small buckets inflate phase 2 (p scans of the array); large\n");
    std::printf("buckets inflate phase 3 (quadratic insertion sort) — a minimum between.\n");
    const bool inert = bench::verify_sanitize_off_guarantee([](simt::Device& dev) {
        auto small = workload::make_dataset(16, 500, workload::Distribution::Uniform, 1);
        gas::Options opts;
        opts.bucket_target = 20;
        gas::gpu_array_sort(dev, small.values, 16, 500, opts);
    });
    return inert ? 0 : 1;
}
