// Extension bench — the paper's section 9 future work: out-of-core array
// sort with transfer/compute overlap.  Streams a dataset larger than device
// memory through the device and reports the modeled benefit of
// double/triple buffering over serial staging.

#include <cstdio>

#include "common.hpp"
#include "ooc/out_of_core.hpp"
#include "simt/device.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
    const bench::Args args = bench::parse(argc, argv);
    // A deliberately small device forces many batches; the dataset is ~8x
    // its capacity.  (--full uses a 256 MB device and a 2 GB dataset.)
    const std::size_t device_mb = args.full ? 256 : 8;
    const std::size_t n = 1000;
    const std::size_t num_arrays = device_mb * 1024 * 1024 / (n * sizeof(float)) * 8;

    std::printf("Out-of-core extension: dataset ~8x device memory (device %zu MB, "
                "N = %zu, n = %zu)\n",
                device_mb, num_arrays, n);
    bench::rule('=');
    std::printf("%8s %10s | %12s %12s %9s | %12s\n", "streams", "batch", "overlap",
                "serial", "speedup", "wall");
    bench::rule();

    auto ds = workload::make_dataset(num_arrays, n, workload::Distribution::Uniform, 5);

    for (const unsigned streams : {1u, 2u, 3u, 4u}) {
        auto copy = ds.values;
        simt::Device dev(simt::tiny_device(device_mb << 20));
        ooc::OocOptions opts;
        opts.num_streams = streams;
        const auto s = ooc::out_of_core_sort(dev, copy, num_arrays, n, opts);
        std::printf("%8u %10zu | %10.1fms %10.1fms %8.2fx | %10.1fms\n", streams,
                    s.batch_arrays, s.modeled_overlap_ms, s.modeled_serial_ms,
                    s.overlap_speedup(), s.wall_ms);
        std::fflush(stdout);
    }
    bench::rule();
    std::printf("shape: 2+ streams hide most transfer time behind compute, approaching\n");
    std::printf("max(kernel, transfer) instead of their sum — the section-9 design goal.\n");
    return 0;
}
