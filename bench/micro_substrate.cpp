// Substrate micro-benchmarks (google-benchmark): the primitives every
// experiment stands on — insertion sort, the radix sort stand-in for
// Thrust, kernel-launch overhead, and the device allocator.

#include <benchmark/benchmark.h>

#include "core/insertion_sort.hpp"
#include "simt/device.hpp"
#include "simt/device_buffer.hpp"
#include "thrustlite/algorithms.hpp"
#include "thrustlite/radix_sort.hpp"
#include "workload/generators.hpp"

namespace {

void BM_InsertionSort(benchmark::State& state) {
    const auto size = static_cast<std::size_t>(state.range(0));
    const auto original = workload::make_values(size, workload::Distribution::Uniform, 1);
    std::vector<float> v(size);
    for (auto _ : state) {
        v = original;
        const auto cost = gas::insertion_sort(v);
        benchmark::DoNotOptimize(cost);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(size));
}
BENCHMARK(BM_InsertionSort)->Arg(8)->Arg(20)->Arg(64)->Arg(256)->Arg(1024);

void BM_RadixSortThroughput(benchmark::State& state) {
    const auto count = static_cast<std::size_t>(state.range(0));
    simt::Device dev(simt::tiny_device(256 << 20));
    const auto host = workload::make_values(count, workload::Distribution::Uniform, 2);
    for (auto _ : state) {
        state.PauseTiming();
        simt::DeviceBuffer<float> buf(dev, count);
        simt::copy_to_device(std::span<const float>(host), buf);
        auto keys = thrustlite::to_ordered_inplace(dev, buf.span());
        state.ResumeTiming();
        thrustlite::stable_sort(dev, keys);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(count));
}
BENCHMARK(BM_RadixSortThroughput)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_KernelLaunchOverhead(benchmark::State& state) {
    simt::Device dev(simt::tiny_device(1 << 20));
    for (auto _ : state) {
        dev.launch({"noop", 1, 1}, [](simt::BlockCtx&) {});
        dev.clear_kernel_log();
    }
}
BENCHMARK(BM_KernelLaunchOverhead);

void BM_BlockIterationThroughput(benchmark::State& state) {
    simt::Device dev(simt::tiny_device(1 << 20));
    const auto blocks = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        dev.launch({"sweep", blocks, 32}, [](simt::BlockCtx& blk) {
            blk.for_each_thread([](simt::ThreadCtx& tc) { tc.ops(1); });
        });
        dev.clear_kernel_log();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * blocks);
}
BENCHMARK(BM_BlockIterationThroughput)->Arg(100)->Arg(10000);

void BM_DeviceAllocFree(benchmark::State& state) {
    simt::Device dev(simt::tiny_device(1 << 30), simt::DeviceMemory::Mode::Virtual);
    for (auto _ : state) {
        const std::size_t off = dev.memory().allocate(4096);
        dev.memory().deallocate(off);
    }
}
BENCHMARK(BM_DeviceAllocFree);

}  // namespace

BENCHMARK_MAIN();
