// warp_fastpath — acceptance gate for the warp-vectorized interpreter fast
// path (SIMT_EXEC=warp / Device::set_exec_mode).
//
// Three sections, each sorting the same dataset under both execution modes:
//
//   quick  — a small fig-4-shaped workload; always runs, and its warp
//            throughput is recorded flat in the JSON so the bench-smoke
//            ctest can diff a fresh --quick run against the committed
//            BENCH_warp_fastpath.json baseline (>20% regression fails).
//   fig4   — the paper's Figure-4 workload at the default bench scale
//            (N = 2500 arrays of n = 1000 floats).  Gates: the warp path
//            must deliver >= 3x the scalar interpreter's wall-clock
//            throughput (elements/second), with 0 output byte mismatches
//            and 0 KernelStats drift across every launched kernel.
//   paper  — a paper-scale run (N = 2e5 arrays, the top of the paper's N
//            axis) on the warp path alone, proving full scale completes
//            inside a bench budget on the functional simulator.
//
//   warp_fastpath [--quick] [--skip-paper-scale] [--json PATH]
//                 [--baseline PATH]
//
// Exit code 0 iff every gate that ran passed.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/gpu_array_sort.hpp"
#include "core/validate.hpp"
#include "simt/device.hpp"
#include "workload/generators.hpp"

namespace {

struct ModeRun {
    std::vector<float> values;            ///< sorted output bytes
    std::vector<simt::KernelStats> log;   ///< full kernel log of the run
    double wall_s = 0.0;                  ///< host wall time of the sort only
};

ModeRun run_mode(const workload::Dataset& ds, simt::ExecMode mode) {
    ModeRun r;
    r.values = ds.values;  // each run sorts a fresh copy of the same bytes
    simt::Device dev = bench::make_device();
    dev.set_exec_mode(mode);
    const auto t0 = std::chrono::steady_clock::now();
    gas::gpu_array_sort(dev, std::span<float>(r.values), ds.num_arrays, ds.array_size);
    r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    r.log.assign(dev.kernel_log().begin(), dev.kernel_log().end());
    return r;
}

/// Number of output elements whose bit patterns differ.
std::size_t byte_mismatches(const std::vector<float>& a, const std::vector<float>& b) {
    if (a.size() != b.size()) return std::max(a.size(), b.size());
    std::size_t bad = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::memcmp(&a[i], &b[i], sizeof(float)) != 0) ++bad;
    }
    return bad;
}

/// Number of kernel-log rows whose deterministic KernelStats fields differ
/// (wall_ms is host time and legitimately differs between modes).
std::size_t stats_drift(const std::vector<simt::KernelStats>& a,
                        const std::vector<simt::KernelStats>& b) {
    if (a.size() != b.size()) return std::max(a.size(), b.size());
    std::size_t bad = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto& s = a[i];
        const auto& w = b[i];
        const bool same =
            s.name == w.name && s.grid_dim == w.grid_dim && s.block_dim == w.block_dim &&
            s.shared_bytes_per_block == w.shared_bytes_per_block &&
            s.totals.ops == w.totals.ops &&
            s.totals.shared_accesses == w.totals.shared_accesses &&
            s.totals.coalesced_bytes == w.totals.coalesced_bytes &&
            s.totals.random_accesses == w.totals.random_accesses &&
            s.traffic_bytes == w.traffic_bytes && s.compute_ms == w.compute_ms &&
            s.memory_ms == w.memory_ms && s.modeled_ms == w.modeled_ms &&
            s.warp_max_cycles == w.warp_max_cycles &&
            s.warp_mean_cycles == w.warp_mean_cycles && s.imbalance == w.imbalance;
        if (!same) ++bad;
    }
    return bad;
}

struct Section {
    std::size_t num_arrays = 0;
    std::size_t array_size = 0;
    double scalar_eps = 0.0;  ///< scalar elements/second
    double warp_eps = 0.0;    ///< warp elements/second
    double speedup = 0.0;
    std::size_t mismatches = 0;
    std::size_t drift = 0;
};

Section run_section(const char* name, std::size_t num_arrays, std::size_t array_size) {
    const auto ds = workload::make_dataset(num_arrays, array_size,
                                           workload::Distribution::Uniform, 4);
    const auto scalar = run_mode(ds, simt::ExecMode::Scalar);
    const auto warp = run_mode(ds, simt::ExecMode::Warp);
    const double elems = static_cast<double>(num_arrays * array_size);
    Section s;
    s.num_arrays = num_arrays;
    s.array_size = array_size;
    s.scalar_eps = elems / scalar.wall_s;
    s.warp_eps = elems / warp.wall_s;
    s.speedup = s.warp_eps / s.scalar_eps;
    s.mismatches = byte_mismatches(scalar.values, warp.values);
    s.drift = stats_drift(scalar.log, warp.log);
    std::printf("%-6s N=%-7zu n=%-5zu | scalar %8.2fs (%7.2f Me/s) | warp %8.2fs "
                "(%7.2f Me/s) | %5.2fx | %zu byte mismatches, %zu stats drift\n",
                name, num_arrays, array_size, elems / s.scalar_eps, s.scalar_eps / 1e6,
                elems / s.warp_eps, s.warp_eps / 1e6, s.speedup, s.mismatches, s.drift);
    std::fflush(stdout);
    return s;
}

/// Pulls "\"quick_warp_elems_per_sec\": <num>" out of a committed baseline
/// JSON; returns 0.0 when the file or field is missing.
double baseline_quick_eps(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) return 0.0;
    std::string text(1 << 16, '\0');
    text.resize(std::fread(text.data(), 1, text.size(), f));
    std::fclose(f);
    const char* key = "\"quick_warp_elems_per_sec\":";
    const auto pos = text.find(key);
    if (pos == std::string::npos) return 0.0;
    return std::strtod(text.c_str() + pos + std::strlen(key), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    bool paper_scale = true;
    std::string json_path;
    std::string baseline_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--skip-paper-scale") == 0) {
            paper_scale = false;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
            baseline_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: warp_fastpath [--quick] [--skip-paper-scale]\n"
                         "                     [--json PATH] [--baseline PATH]\n");
            return 2;
        }
    }
    // The full run owns the committed artifact; --quick (the smoke test)
    // writes nothing unless asked, so it can never clobber the baseline.
    if (json_path.empty() && !quick) json_path = "BENCH_warp_fastpath.json";

    std::printf("warp_fastpath: scalar reference interpreter vs SIMT_EXEC=warp fast path\n");
    bench::rule('=');

    const Section q = run_section("quick", 250, 1000);
    bool ok = q.mismatches == 0 && q.drift == 0;

    Section f4;
    double paper_wall_s = 0.0;
    double paper_eps = 0.0;
    bool paper_sorted = false;
    bool fig4_pass = true;
    if (!quick) {
        f4 = run_section("fig4", 2500, 1000);
        fig4_pass = f4.speedup >= 3.0 && f4.mismatches == 0 && f4.drift == 0;
        std::printf("gate: fig4 warp speedup %.2fx (need >= 3x), %zu mismatches, "
                    "%zu drift ... %s\n",
                    f4.speedup, f4.mismatches, f4.drift, fig4_pass ? "PASS" : "FAIL");
        ok = ok && fig4_pass;

        if (paper_scale) {
            // Paper-scale demonstration: the top of the paper's N axis on the
            // warp path.  2e8 elements — scalar would take minutes; the gate
            // is simply "completes, and the output is genuinely sorted".
            const std::size_t N = 200000, n = 1000;
            std::printf("paper  N=%zu n=%zu (%.1f GB sorted in-simulator) ...\n", N, n,
                        static_cast<double>(N * n * sizeof(float)) / 1e9);
            std::fflush(stdout);
            auto ds = workload::make_dataset(N, n, workload::Distribution::Uniform, 4);
            simt::Device dev = bench::make_device();
            dev.set_exec_mode(simt::ExecMode::Warp);
            const auto t0 = std::chrono::steady_clock::now();
            gas::gpu_array_sort(dev, std::span<float>(ds.values), N, n);
            paper_wall_s =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
            paper_eps = static_cast<double>(N * n) / paper_wall_s;
            paper_sorted =
                gas::all_arrays_sorted(std::span<const float>(ds.values), N, n);
            std::printf("paper  N=%zu n=%zu | warp %8.2fs (%7.2f Me/s) | sorted: %s\n", N,
                        n, paper_wall_s, paper_eps / 1e6, paper_sorted ? "yes" : "NO");
            ok = ok && paper_sorted;
        }
    }

    bool baseline_pass = true;
    if (!baseline_path.empty()) {
        const double base = baseline_quick_eps(baseline_path);
        if (base <= 0.0) {
            std::printf("baseline: no quick_warp_elems_per_sec in %s — FAIL\n",
                        baseline_path.c_str());
            baseline_pass = false;
        } else {
            baseline_pass = q.warp_eps >= 0.8 * base;
            std::printf("gate: quick warp throughput %.2f Me/s vs baseline %.2f Me/s "
                        "(need >= 80%%) ... %s\n",
                        q.warp_eps / 1e6, base / 1e6, baseline_pass ? "PASS" : "FAIL");
        }
        ok = ok && baseline_pass;
    }

    if (!json_path.empty()) {
        if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
            const auto section = [&](const char* name, const Section& s) {
                std::fprintf(f,
                             "  \"%s\": {\"num_arrays\": %zu, \"array_size\": %zu, "
                             "\"scalar_elems_per_sec\": %.1f, \"warp_elems_per_sec\": %.1f, "
                             "\"speedup\": %.4f, \"byte_mismatches\": %zu, "
                             "\"stats_drift\": %zu},\n",
                             name, s.num_arrays, s.array_size, s.scalar_eps, s.warp_eps,
                             s.speedup, s.mismatches, s.drift);
            };
            std::fprintf(f, "{\n  \"bench\": \"warp_fastpath\",\n");
            section("quick", q);
            std::fprintf(f, "  \"quick_warp_elems_per_sec\": %.1f,\n", q.warp_eps);
            if (!quick) {
                section("fig4", f4);
                if (paper_scale) {
                    std::fprintf(f,
                                 "  \"paper_scale\": {\"num_arrays\": 200000, "
                                 "\"array_size\": 1000, \"wall_s\": %.3f, "
                                 "\"elems_per_sec\": %.1f, \"sorted\": %s},\n",
                                 paper_wall_s, paper_eps, paper_sorted ? "true" : "false");
                }
                std::fprintf(f, "  \"gates\": {\n");
                std::fprintf(f,
                             "    \"fig4_speedup\": {\"value\": %.4f, \"min\": 3.0, "
                             "\"pass\": %s},\n",
                             f4.speedup, f4.speedup >= 3.0 ? "true" : "false");
                std::fprintf(f,
                             "    \"fig4_byte_mismatches\": {\"value\": %zu, \"max\": 0, "
                             "\"pass\": %s},\n",
                             f4.mismatches, f4.mismatches == 0 ? "true" : "false");
                std::fprintf(f,
                             "    \"fig4_stats_drift\": {\"value\": %zu, \"max\": 0, "
                             "\"pass\": %s}\n",
                             f4.drift, f4.drift == 0 ? "true" : "false");
                std::fprintf(f, "  },\n");
            }
            std::fprintf(f, "  \"pass\": %s\n}\n", ok ? "true" : "false");
            std::fclose(f);
            std::printf("wrote %s\n", json_path.c_str());
        } else {
            std::printf("could not write %s\n", json_path.c_str());
            ok = false;
        }
    }

    return ok ? 0 : 1;
}
