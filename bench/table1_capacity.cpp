// Reproduces Table 1: the maximum number of arrays each technique can sort
// on an 11520 MB Tesla K40c before device memory runs out, for array sizes
// 1000..4000.
//
// Methodology: bisection over N against the footprint models, then a
// verification pass that replays the exact allocation sequence of each
// sorter against the virtual-mode device allocator (accounting only — no
// host RAM needed), confirming that N_max fits and N_max + step does not.

#include <cstdio>
#include <functional>

#include "baseline/sta_sort.hpp"
#include "common.hpp"
#include "core/gpu_array_sort.hpp"
#include "simt/device.hpp"
#include "simt/device_buffer.hpp"
#include "thrustlite/radix_sort.hpp"

namespace {

/// Replays GPU-ArraySort's allocations on a virtual device: data + S + Z.
bool gas_fits(std::size_t num_arrays, std::size_t array_size) {
    simt::Device dev(simt::tesla_k40c(), simt::DeviceMemory::Mode::Virtual);
    try {
        const auto plan = gas::make_plan(array_size, gas::Options{}, dev.props());
        simt::DeviceBuffer<float> data(dev, num_arrays * array_size);
        simt::DeviceBuffer<float> splitters(dev, num_arrays * plan.splitters_per_array);
        simt::DeviceBuffer<std::uint32_t> sizes(dev, num_arrays * plan.buckets);
        return true;
    } catch (const simt::DeviceBadAlloc&) {
        return false;
    }
}

/// Replays STA's allocations: merged data + tags + radix double buffers +
/// per-block histograms (the peak lives inside stable_sort_by_key).  Radix
/// pass pruning does not change this: scratch is allocated up front for any
/// pass count, so Table 1 holds for the pruned and the paper-faithful mode
/// alike (u32 keys — the default key width of radix_scratch_bytes).
bool sta_fits(std::size_t num_arrays, std::size_t array_size) {
    simt::Device dev(simt::tesla_k40c(), simt::DeviceMemory::Mode::Virtual);
    const std::size_t count = num_arrays * array_size;
    try {
        simt::DeviceBuffer<float> data(dev, count);
        simt::DeviceBuffer<std::uint32_t> tags(dev, count);
        // radix scratch at its peak (keys_alt + vals_alt + hist)
        simt::DeviceBuffer<std::uint8_t> scratch(dev,
                                                 thrustlite::radix_scratch_bytes(count, true));
        return true;
    } catch (const simt::DeviceBadAlloc&) {
        return false;
    }
}

std::size_t find_max(const std::function<bool(std::size_t)>& fits) {
    std::size_t lo = 1;
    if (!fits(lo)) return 0;
    std::size_t hi = 2;
    while (fits(hi)) {
        lo = hi;
        hi *= 2;
    }
    while (lo + 1 < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        (fits(mid) ? lo : hi) = mid;
    }
    return lo;
}

}  // namespace

int main(int argc, char** argv) {
    bench::parse(argc, argv);

    std::printf("Table 1: maximum number of arrays sorted before device OOM "
                "(Tesla K40c, 11520 MB)\n");
    bench::rule('=');
    std::printf("%10s | %14s %14s | %12s %12s | %10s\n", "array size", "GPU-AS (ours)",
                "GPU-AS paper", "STA (ours)", "STA paper", "ratio ours");
    bench::rule();

    const std::size_t paper_gas[] = {2000000, 1050000, 700000, 500000};
    const std::size_t paper_sta[] = {700000, 350000, 200000, 150000};
    const std::size_t sizes[] = {1000, 2000, 3000, 4000};

    for (int i = 0; i < 4; ++i) {
        const std::size_t n = sizes[i];
        const std::size_t max_gas = find_max([&](std::size_t N) { return gas_fits(N, n); });
        const std::size_t max_sta = find_max([&](std::size_t N) { return sta_fits(N, n); });

        std::printf("%10zu | %14zu %14zu | %12zu %12zu | %9.2fx\n", n, max_gas, paper_gas[i],
                    max_sta, paper_sta[i],
                    static_cast<double>(max_gas) / static_cast<double>(max_sta));
        std::fflush(stdout);
    }
    bench::rule();
    std::printf("paper shape: GPU-ArraySort sorts ~3x more arrays than STA at every size\n");
    std::printf("note: our allocator has no CUDA context/runtime reservations, so the\n");
    std::printf("absolute counts sit above the paper's; the GPU-AS : STA ratio is the\n");
    std::printf("quantity the experiment establishes.\n");
    return 0;
}
