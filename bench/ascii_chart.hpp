#pragma once

// Minimal ASCII line-chart renderer so the figure benches can draw the same
// plots the paper shows (time vs. N / n) straight into the terminal.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace bench {

struct Series {
    std::string name;
    char glyph = '*';
    std::vector<double> x;
    std::vector<double> y;
};

/// Renders series onto a `width` x `height` character grid with linear axes
/// anchored at (min x, 0) .. (max x, max y), then prints it with y-axis
/// labels and a legend.
inline void plot(const std::vector<Series>& series, const std::string& x_label,
                 const std::string& y_label, int width = 64, int height = 16) {
    double xmin = 0.0;
    double xmax = 1.0;
    double ymax = 1.0;
    bool first = true;
    for (const Series& s : series) {
        for (std::size_t i = 0; i < s.x.size(); ++i) {
            if (first) {
                xmin = xmax = s.x[i];
                ymax = s.y[i];
                first = false;
            }
            xmin = std::min(xmin, s.x[i]);
            xmax = std::max(xmax, s.x[i]);
            ymax = std::max(ymax, s.y[i]);
        }
    }
    if (first || xmax == xmin || ymax <= 0.0) return;

    std::vector<std::string> grid(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));
    for (const Series& s : series) {
        for (std::size_t i = 0; i < s.x.size(); ++i) {
            const auto cx = static_cast<int>((s.x[i] - xmin) / (xmax - xmin) * (width - 1));
            const auto cy = static_cast<int>(s.y[i] / ymax * (height - 1));
            const int row = height - 1 - std::clamp(cy, 0, height - 1);
            grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(
                std::clamp(cx, 0, width - 1))] = s.glyph;
        }
    }

    std::printf("  %s\n", y_label.c_str());
    for (int r = 0; r < height; ++r) {
        const double yval = ymax * (height - 1 - r) / (height - 1);
        std::printf("%9.1f |%s|\n", yval, grid[static_cast<std::size_t>(r)].c_str());
    }
    std::printf("%9s +", "");
    for (int c = 0; c < width; ++c) std::putchar('-');
    std::printf("+\n%9s  %-10.0f%*s%.0f   (%s)\n", "", xmin, width - 22, "", xmax,
                x_label.c_str());
    for (const Series& s : series) {
        std::printf("%9s  '%c' = %s\n", "", s.glyph, s.name.c_str());
    }
}

}  // namespace bench
