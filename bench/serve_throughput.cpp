// Serving-layer throughput bench: many small sort requests, one launch
// sequence per request (the naive service) versus gas::serve's fused
// micro-batches on a multi-stream pipeline.
//
// A 4-array request occupies 4 of the K40c's 15 SMs and still pays the full
// per-kernel launch overhead three times; fusing 64 such requests into one
// 256-array launch amortizes both.  The bench emits BENCH_serve.json with two
// asserted acceptance gates:
//   * modeled throughput speedup (serial per-request total over the server's
//     pipelined makespan) >= 2x on >= 1000 small requests, and
//   * zero bit mismatches between every served response and a direct
//     gas::gpu_array_sort of the same request.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/gpu_array_sort.hpp"
#include "serve/server.hpp"
#include "simt/device.hpp"
#include "workload/generators.hpp"

namespace {

gas::serve::ServerConfig bench_config(std::size_t requests) {
    gas::serve::ServerConfig cfg;
    cfg.manual_pump = true;  // deterministic batching, no scheduler thread
    cfg.queue_capacity = requests;
    cfg.max_batch_requests = 64;
    cfg.num_streams = 2;
    return cfg;
}

}  // namespace

int main(int argc, char** argv) {
    const bench::Args args = bench::parse(argc, argv);
    std::size_t requests = args.full ? 4000 : 1000;
    std::size_t soak_requests = 0;  // --soak [N]: production-scale sustained run
    std::string json_path = "BENCH_serve.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
            requests = static_cast<std::size_t>(std::stoull(argv[i + 1]));
        } else if (std::strcmp(argv[i], "--soak") == 0) {
            soak_requests = (i + 1 < argc && argv[i + 1][0] != '-')
                                ? static_cast<std::size_t>(std::stoull(argv[i + 1]))
                                : 100000;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[i + 1];
        }
    }
    const std::size_t arrays_per_request = 4;
    const std::size_t n = 64;

    std::printf("Serving-layer throughput: %zu requests of %zu x %zu floats\n", requests,
                arrays_per_request, n);
    bench::rule('=');

    std::vector<std::vector<float>> inputs(requests);
    for (std::size_t r = 0; r < requests; ++r) {
        inputs[r] = workload::make_dataset(arrays_per_request, n,
                                           workload::Distribution::Uniform,
                                           static_cast<std::uint64_t>(r + 1))
                        .values;
    }

    // Baseline: one gpu_array_sort per request, serial device, per-request
    // H2D/D2H.  This is what a service without micro-batching would pay.
    double baseline_ms = 0.0;
    std::vector<std::vector<float>> direct(requests);
    {
        simt::Device dev = bench::make_device();
        for (std::size_t r = 0; r < requests; ++r) {
            direct[r] = inputs[r];
            const auto s = gas::gpu_array_sort(dev, std::span<float>(direct[r]),
                                               arrays_per_request, n);
            baseline_ms += s.modeled_total_ms();
        }
    }
    std::printf("one-launch-per-request baseline: %10.2f ms modeled (%.4f ms/request)\n",
                baseline_ms, baseline_ms / static_cast<double>(requests));

    // Server: same requests through fused micro-batches + stream pipeline.
    simt::Device dev = bench::make_device();
    gas::serve::Server server(dev, bench_config(requests));
    std::vector<gas::serve::Server::Ticket> tickets;
    tickets.reserve(requests);
    for (std::size_t r = 0; r < requests; ++r) {
        gas::serve::Job job;
        job.kind = gas::serve::JobKind::Uniform;
        job.num_arrays = arrays_per_request;
        job.array_size = n;
        job.values = inputs[r];
        tickets.push_back(server.submit(std::move(job)));
    }
    server.pump();

    std::size_t mismatches = 0;
    for (std::size_t r = 0; r < requests; ++r) {
        auto resp = tickets[r].result.get();
        if (!resp.ok() || resp.values != direct[r]) ++mismatches;
    }
    const auto stats = server.stats();
    const double server_ms = stats.modeled_overlap_ms;
    const double speedup = server_ms > 0.0 ? baseline_ms / server_ms : 0.0;

    std::printf("served via micro-batches:        %10.2f ms modeled pipeline makespan\n",
                server_ms);
    std::printf("  batches %llu, occupancy %.1f requests/batch, pool reuse %.0f%%\n",
                static_cast<unsigned long long>(stats.batches), stats.batch_occupancy(),
                stats.pool.reuse_rate() * 100.0);
    std::printf("  compute utilization %.2f, overlap speedup vs own serial %.2fx\n",
                stats.compute_utilization, stats.overlap_speedup());
    std::printf("  modeled latency/request: p50 %.4f ms, p95 %.4f ms, p99 %.4f ms\n",
                stats.modeled_ms.p50, stats.modeled_ms.p95, stats.modeled_ms.p99);
    bench::rule();

    // Optional sustained soak: the default run stays fast (ctest-friendly);
    // --soak pushes >= 100k requests through the threaded server in waves,
    // each response verified against a host std::sort of its input.
    std::size_t soak_served = 0;
    std::size_t soak_bad = 0;
    if (soak_requests > 0) {
        std::vector<std::vector<float>> expected(inputs.size());
        for (std::size_t r = 0; r < inputs.size(); ++r) {
            expected[r] = inputs[r];
            for (std::size_t a = 0; a < arrays_per_request; ++a) {
                auto* row = expected[r].data() + a * n;
                std::sort(row, row + n);
            }
        }
        const std::size_t wave = 2000;
        simt::Device soak_dev = bench::make_device();
        gas::serve::ServerConfig cfg = bench_config(wave);
        cfg.manual_pump = false;  // the real scheduler thread carries the soak
        gas::serve::Server soak_server(soak_dev, cfg);
        std::vector<gas::serve::Server::Ticket> wave_tickets;
        wave_tickets.reserve(wave);
        while (soak_served < soak_requests) {
            const std::size_t batch = std::min(wave, soak_requests - soak_served);
            wave_tickets.clear();
            for (std::size_t r = 0; r < batch; ++r) {
                gas::serve::Job job;
                job.kind = gas::serve::JobKind::Uniform;
                job.num_arrays = arrays_per_request;
                job.array_size = n;
                job.values = inputs[(soak_served + r) % inputs.size()];
                wave_tickets.push_back(soak_server.submit(std::move(job)));
            }
            soak_server.drain();
            for (std::size_t r = 0; r < batch; ++r) {
                auto resp = wave_tickets[r].result.get();
                if (!resp.ok() ||
                    resp.values != expected[(soak_served + r) % inputs.size()]) {
                    ++soak_bad;
                }
            }
            soak_served += batch;
        }
        soak_server.stop();
        std::printf("soak: %zu requests in waves of %zu, %zu bad, %.1f ms modeled makespan\n",
                    soak_served, wave, soak_bad,
                    soak_server.stats().modeled_overlap_ms);
        bench::rule();
    }

    const bool speedup_pass = requests >= 1000 && speedup >= 2.0;
    const bool identity_pass = mismatches == 0;
    const bool soak_pass = soak_requests == 0 || (soak_served >= soak_requests && soak_bad == 0);
    std::printf("gate: micro-batching throughput speedup %.2fx (need >= 2x) %s\n", speedup,
                speedup_pass ? "PASS" : "FAIL");
    std::printf("gate: served-vs-direct bit mismatches %zu (need 0) ........ %s\n",
                mismatches, identity_pass ? "PASS" : "FAIL");
    if (soak_requests > 0) {
        std::printf("gate: soak %zu served, %zu bad (need >= %zu, 0 bad) ... %s\n",
                    soak_served, soak_bad, soak_requests, soak_pass ? "PASS" : "FAIL");
    }

    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
        std::fprintf(f, "{\n  \"bench\": \"serve\",\n");
        std::fprintf(f, "  \"requests\": %zu,\n  \"arrays_per_request\": %zu,\n", requests,
                     arrays_per_request);
        std::fprintf(f, "  \"array_size\": %zu,\n", n);
        std::fprintf(f, "  \"baseline\": {\"modeled_total_ms\": %.6f},\n", baseline_ms);
        std::fprintf(f,
                     "  \"server\": {\"modeled_overlap_ms\": %.6f, \"modeled_serial_ms\": "
                     "%.6f, \"batches\": %llu, \"occupancy\": %.4f, \"pool_reuse_rate\": "
                     "%.4f, \"compute_utilization\": %.4f,\n",
                     stats.modeled_overlap_ms, stats.modeled_serial_ms,
                     static_cast<unsigned long long>(stats.batches),
                     stats.batch_occupancy(), stats.pool.reuse_rate(),
                     stats.compute_utilization);
        std::fprintf(f,
                     "    \"modeled_latency_ms\": {\"p50\": %.6f, \"p95\": %.6f, \"p99\": "
                     "%.6f}},\n",
                     stats.modeled_ms.p50, stats.modeled_ms.p95, stats.modeled_ms.p99);
        std::fprintf(f, "  \"gates\": {\n");
        std::fprintf(f,
                     "    \"throughput_speedup\": {\"value\": %.4f, \"min\": 2.0, "
                     "\"pass\": %s},\n",
                     speedup, speedup_pass ? "true" : "false");
        std::fprintf(f,
                     "    \"bit_identity_mismatches\": {\"value\": %zu, \"max\": 0, "
                     "\"pass\": %s},\n",
                     mismatches, identity_pass ? "true" : "false");
        std::fprintf(f,
                     "    \"soak\": {\"served\": %zu, \"bad\": %zu, \"ran\": %s, "
                     "\"pass\": %s}\n",
                     soak_served, soak_bad, soak_requests > 0 ? "true" : "false",
                     soak_pass ? "true" : "false");
        std::fprintf(f, "  }\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    } else {
        std::printf("could not write %s\n", json_path.c_str());
    }

    // The fused batch kernels must be untouched by the sanitizer machinery,
    // like every other bench's workload.
    const bool inert = bench::verify_sanitize_off_guarantee([](simt::Device& d) {
        gas::serve::ServerConfig cfg;
        cfg.manual_pump = true;
        gas::serve::Server srv(d, cfg);
        std::vector<gas::serve::Server::Ticket> ts;
        for (unsigned i = 0; i < 8; ++i) {
            gas::serve::Job job;
            job.kind = gas::serve::JobKind::Uniform;
            job.num_arrays = 4;
            job.array_size = 64;
            job.values = workload::make_dataset(4, 64, workload::Distribution::Uniform, i)
                             .values;
            ts.push_back(srv.submit(std::move(job)));
        }
        srv.pump();
        for (auto& t : ts) t.result.get();
    });
    return (speedup_pass && identity_pass && soak_pass && inert) ? 0 : 1;
}
