// Reproduces Fig. 2: measured time vs. theoretical time-complexity curve as
// the array size n grows, with the number of arrays N held constant
// (paper: N = 50000, n up to 2000).
//
// The theoretical curve is the paper's Eq. 2 (see core/complexity.hpp),
// least-squares fitted to the measured series — the paper likewise scales
// its theoretical values to overlay the measured plot.  The bench reports
// both series, their ratio, the fit and the correlation, and draws the
// overlay chart.

#include <cstdio>
#include <vector>

#include "ascii_chart.hpp"
#include "common.hpp"
#include "core/complexity.hpp"
#include "core/gpu_array_sort.hpp"
#include "simt/device.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
    const bench::Args args = bench::parse(argc, argv);
    const std::size_t num_arrays = args.full ? 50000 : 2000;

    std::printf("Figure 2: Time Complexity — time vs. array size n (N = %zu fixed)\n",
                num_arrays);
    std::printf("uniform floats; GPU-ArraySort on the simulated Tesla K40c\n");
    bench::rule('=');

    std::vector<std::size_t> sizes;
    std::vector<double> measured;
    for (std::size_t n = 100; n <= 2000; n += 100) {
        auto ds = workload::make_dataset(num_arrays, n, workload::Distribution::Uniform, n);
        simt::Device dev = bench::make_device();
        simt::DeviceBuffer<float> data(dev, ds.values.size());
        simt::copy_to_device(std::span<const float>(ds.values), data);
        const auto stats = gas::sort_arrays_on_device(dev, data, num_arrays, n);
        sizes.push_back(n);
        measured.push_back(stats.modeled_kernel_ms());
        std::fprintf(stderr, "  measured n=%zu\n", n);
    }

    const auto fit =
        gas::fit_complexity(sizes, measured, gas::Options{}, simt::tesla_k40c());

    std::printf("%8s | %14s | %16s | %8s\n", "n", "measured (ms)", "theoretical (ms)",
                "ratio");
    bench::rule();
    bench::Series meas{"measured (modeled K40c ms)", 'o', {}, {}};
    bench::Series theo{"theoretical Eq. 2 fit", '.', {}, {}};
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        std::printf("%8zu | %14.2f | %16.2f | %8.3f\n", sizes[i], measured[i],
                    fit.predicted_ms[i], measured[i] / fit.predicted_ms[i]);
        meas.x.push_back(static_cast<double>(sizes[i]));
        meas.y.push_back(measured[i]);
        theo.x.push_back(static_cast<double>(sizes[i]));
        theo.y.push_back(fit.predicted_ms[i]);
    }
    bench::rule();
    bench::plot({meas, theo}, "size of array (n)", "time (ms)");
    bench::rule();
    std::printf("fit: T(n) = %.3e*(n+q) + %.3e*((p*r+1)/p)*n*log2(n)   [Eq. 2]\n", fit.a,
                fit.b);
    std::printf("Pearson correlation measured vs. theoretical: %.4f\n", fit.pearson);
    std::printf("paper shape: measured curve follows the theoretical trend\n");
    return 0;
}
