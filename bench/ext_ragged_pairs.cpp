// Extension bench — ragged (CSR) spectra sorting vs. the pad-to-max
// alternative a uniform-only sorter forces.  Real mass-spec datasets have
// 10x spreads in peaks per spectrum; padding sorts the waste too.

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common.hpp"
#include "core/gpu_array_sort.hpp"
#include "core/ragged_sort.hpp"
#include "simt/device.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
    const bench::Args args = bench::parse(argc, argv);
    const std::size_t num_arrays = args.full ? 50000 : 4000;
    const std::size_t min_n = 100;
    const std::size_t max_n = 1000;

    std::printf("Ragged extension: CSR ragged sort vs. pad-to-max (N = %zu, sizes %zu..%zu)\n",
                num_arrays, min_n, max_n);
    bench::rule('=');

    auto ragged = workload::make_ragged_dataset(num_arrays, min_n, max_n,
                                                workload::Distribution::Uniform, 11);
    const double avg_n = static_cast<double>(ragged.values.size()) /
                         static_cast<double>(num_arrays);

    double ragged_ms = 0.0;
    double ragged_mb = 0.0;
    {
        simt::Device dev = bench::make_device();
        std::vector<std::uint64_t> offsets(ragged.offsets.begin(), ragged.offsets.end());
        auto values = ragged.values;
        const auto s = gas::gpu_ragged_sort(dev, values, offsets);
        ragged_ms = s.phase2.modeled_ms;  // fused kernel
        ragged_mb = static_cast<double>(s.data_bytes) / 1048576.0;
    }

    double padded_ms = 0.0;
    double padded_mb = 0.0;
    {
        // Pad every array to max_n with +inf filler, run the uniform sorter.
        simt::Device dev = bench::make_device();
        std::vector<float> padded(num_arrays * max_n,
                                  std::numeric_limits<float>::infinity());
        for (std::size_t a = 0; a < num_arrays; ++a) {
            const std::size_t begin = ragged.offsets[a];
            const std::size_t n = ragged.offsets[a + 1] - begin;
            std::copy_n(ragged.values.begin() + static_cast<std::ptrdiff_t>(begin), n,
                        padded.begin() + static_cast<std::ptrdiff_t>(a * max_n));
        }
        const auto s = gas::gpu_array_sort(dev, padded, num_arrays, max_n);
        padded_ms = s.modeled_kernel_ms();
        padded_mb = static_cast<double>(s.peak_device_bytes) / 1048576.0;
    }

    std::printf("%20s | %12s | %12s\n", "approach", "modeled", "device MB");
    bench::rule();
    std::printf("%20s | %10.1fms | %10.1f\n", "ragged CSR (fused)", ragged_ms, ragged_mb);
    std::printf("%20s | %10.1fms | %10.1f\n", "pad-to-max uniform", padded_ms, padded_mb);
    bench::rule();
    std::printf("mean array size %.0f of max %zu -> padding inflates work and memory by "
                "~%.1fx;\nthe CSR path sorts only real peaks and keeps splitters in shared "
                "memory.\n",
                avg_n, max_n, static_cast<double>(max_n) / avg_n);
    return 0;
}
