// Reproduces Fig. 7: time vs. number of arrays, array size n = 4000.
#include "runtime_figure.hpp"

int main(int argc, char** argv) {
    return bench::run_runtime_figure("Figure 7", 4000, argc, argv);
}
