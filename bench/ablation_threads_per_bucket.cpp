// Ablation A3 — section 5.2: "We also explored the option of using multiple
// threads on single bucket but that slows down the process considerably,
// most possibly because of the additional overhead."  Sweeps threads-per-
// bucket, and also compares the paper's scan-per-thread bucketing against
// the binary-search extension.

#include <cstdio>

#include "common.hpp"
#include "core/gpu_array_sort.hpp"
#include "simt/device.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
    const bench::Args args = bench::parse(argc, argv);
    const std::size_t num_arrays = args.full ? 50000 : 2000;
    const std::size_t n = 1000;

    std::printf("Ablation A3: phase-2 work decomposition (n = %zu, N = %zu, uniform)\n", n,
                num_arrays);
    bench::rule('=');
    std::printf("%24s | %10s %10s | %10s\n", "variant", "total", "phase2", "blk threads");
    bench::rule();

    auto ds = workload::make_dataset(num_arrays, n, workload::Distribution::Uniform, 3);

    for (const unsigned tpb : {1u, 2u, 4u, 8u}) {
        auto copy = ds.values;
        simt::Device dev = bench::make_device();
        gas::Options opts;
        opts.threads_per_bucket = tpb;
        const auto s = gas::gpu_array_sort(dev, copy, num_arrays, n, opts);
        std::printf("%17s tpb=%-2u | %8.1fms %8.1fms | %10zu\n", "scan-per-thread,", tpb,
                    s.modeled_kernel_ms(), s.phase2.modeled_ms,
                    s.buckets_per_array * tpb);
        std::fflush(stdout);
    }
    {
        auto copy = ds.values;
        simt::Device dev = bench::make_device();
        gas::Options opts;
        opts.strategy = gas::BucketingStrategy::BinarySearch;
        const auto s = gas::gpu_array_sort(dev, copy, num_arrays, n, opts);
        std::printf("%24s | %8.1fms %8.1fms | %10zu\n", "binary-search (ext)",
                    s.modeled_kernel_ms(), s.phase2.modeled_ms, s.buckets_per_array);
    }
    bench::rule();
    std::printf("paper shape: one thread per bucket wins among scan variants (tpb > 1\n");
    std::printf("adds cursor bookkeeping without reducing per-warp scan traffic).\n");
    const bool inert = bench::verify_sanitize_off_guarantee([](simt::Device& dev) {
        // Binary search is the atomic-heavy strategy — the one most likely to
        // diverge if instrumentation ever leaked into the cost model.
        auto small = workload::make_dataset(16, 500, workload::Distribution::Uniform, 3);
        gas::Options opts;
        opts.strategy = gas::BucketingStrategy::BinarySearch;
        gas::gpu_array_sort(dev, small.values, 16, 500, opts);
    });
    return inert ? 0 : 1;
}
