// adaptive_tuning — acceptance gate for the gas::tune closed loop
// (ISSUE 9: sketch -> planner -> controller inside gas::serve).
//
// Drives one request stream whose distribution shifts mid-stream through the
// four planning regimes — uniform -> zipf-hot -> few-distinct ->
// nearly-sorted — and serves it three ways:
//
//   adaptive  — through a gas::serve::Server with auto_tune on: the real
//               production loop (per-request sketches, per-regime controller
//               cells, feedback from observed modeled cost).
//   statics   — the same stream with each frozen candidate configuration
//               pinned for every request: the paper defaults plus the union
//               of candidate plans the planner would consider.  These are
//               the best any non-adaptive deployment could do.
//   off       — one representative request through an auto_tune=off server,
//               checked bit-for-bit (bytes AND KernelStats) against a direct
//               gpu_array_sort: the "off pins the static defaults" contract.
//
// Cost is the simulator's modeled Tesla-K40c milliseconds summed over every
// launched kernel, so the comparison is deterministic across hosts.  Gates:
//
//   * adaptive total cost >= 1.2x better than the BEST static, and strictly
//     better than EVERY static;
//   * 0 output byte mismatches vs a std::sort reference, on every arm;
//   * auto_tune=off reproduces the direct path bit-for-bit;
//   * total sketch overhead <= 5% of the UNTUNED (paper-default) sort cost.
//
//   adaptive_tuning [--quick] [--json PATH] [--baseline PATH]
//
// The quick stream always runs and its adaptive advantage is recorded flat
// in the JSON so the bench-smoke ctest can diff a fresh --quick run against
// the committed BENCH_tune.json (>20% regression fails).  The full run owns
// the committed artifact.  Exit code 0 iff every gate that ran passed.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "core/gpu_array_sort.hpp"
#include "serve/server.hpp"
#include "simt/device.hpp"
#include "tune/planner.hpp"
#include "workload/generators.hpp"

namespace {

constexpr std::size_t kArrays = 16;
constexpr std::size_t kSize = 4000;

struct Request {
    workload::Distribution dist;
    std::vector<float> values;
    std::vector<float> reference;  ///< per-row std::sort of the same bytes
};

/// The mid-stream-shifting workload: `per_regime` consecutive requests per
/// regime, in the order the issue names.
std::vector<Request> make_stream(std::size_t per_regime) {
    const workload::Distribution regimes[] = {
        workload::Distribution::Uniform, workload::Distribution::ZipfHot,
        workload::Distribution::FewDistinct, workload::Distribution::NearlySorted};
    std::vector<Request> stream;
    std::uint64_t seed = 1;
    for (const auto dist : regimes) {
        for (std::size_t r = 0; r < per_regime; ++r) {
            Request req;
            req.dist = dist;
            req.values = workload::make_dataset(kArrays, kSize, dist, seed++).values;
            req.reference = req.values;
            for (std::size_t a = 0; a < kArrays; ++a) {
                const auto row = req.reference.begin() +
                                 static_cast<std::ptrdiff_t>(a * kSize);
                std::sort(row, row + kSize);
            }
            stream.push_back(std::move(req));
        }
    }
    return stream;
}

/// The paper-classic base configuration the whole comparison is rooted at:
/// with the hybrid phase 3 off, an unresolved hot bucket goes quadratic and
/// plan choice is worth real money.
gas::Options base_options() {
    gas::Options opts;
    opts.hybrid_phase3 = false;
    return opts;
}

std::size_t element_mismatches(const std::vector<float>& got,
                               const std::vector<float>& want) {
    if (got.size() != want.size()) return std::max(got.size(), want.size());
    std::size_t bad = 0;
    for (std::size_t i = 0; i < got.size(); ++i) {
        if (std::memcmp(&got[i], &want[i], sizeof(float)) != 0) ++bad;
    }
    return bad;
}

double log_modeled_ms(const simt::Device& dev) {
    double total = 0.0;
    for (const auto& k : dev.kernel_log()) total += k.modeled_ms;
    return total;
}

struct ArmResult {
    std::string name;
    double modeled_ms = 0.0;    ///< summed over every kernel of the stream
    std::size_t mismatches = 0;
    double sketch_ms = 0.0;     ///< adaptive arm only
};

/// Every frozen configuration a non-adaptive deployment could have shipped:
/// the union of candidate plans over the four regime sketches, deduplicated
/// by shape and uniquified by bucket target where names collide.
std::vector<std::pair<std::string, gas::Options>> static_arms(
    const std::vector<Request>& stream, const simt::DeviceProperties& props) {
    std::vector<std::pair<std::string, gas::Options>> arms;
    const auto same_shape = [](const gas::Options& a, const gas::Options& b) {
        return a.sampling_rate == b.sampling_rate && a.bucket_target == b.bucket_target &&
               a.strategy == b.strategy && a.threads_per_bucket == b.threads_per_bucket &&
               a.phase3_small_cutoff == b.phase3_small_cutoff &&
               a.phase3_bitonic_cutoff == b.phase3_bitonic_cutoff;
    };
    for (const auto& req : stream) {
        const auto sketch = gas::tune::sketch_values(req.values, kArrays, kSize);
        for (const auto& c :
             gas::tune::make_candidates(sketch, kSize, base_options(), props)) {
            bool known = false;
            for (const auto& [name, opts] : arms) known = known || same_shape(opts, c.opts);
            if (known) continue;
            std::string name = c.name;
            for (const auto& [existing, opts] : arms) {
                if (existing == name || existing.rfind(name + "-bt", 0) == 0) {
                    name += "-bt" + std::to_string(c.opts.bucket_target);
                    break;
                }
            }
            arms.emplace_back(std::move(name), c.opts);
        }
    }
    return arms;
}

ArmResult run_static(const std::string& name, const gas::Options& opts,
                     const std::vector<Request>& stream) {
    ArmResult r;
    r.name = name;
    simt::Device dev = bench::make_device();
    for (const auto& req : stream) {
        auto values = req.values;
        gas::gpu_array_sort(dev, std::span<float>(values), kArrays, kSize, opts);
        r.mismatches += element_mismatches(values, req.reference);
    }
    r.modeled_ms = log_modeled_ms(dev);
    return r;
}

ArmResult run_adaptive(const std::vector<Request>& stream) {
    ArmResult r;
    r.name = "adaptive";
    simt::Device dev = bench::make_device();
    gas::serve::ServerConfig cfg;
    cfg.manual_pump = true;
    cfg.auto_tune = true;
    gas::serve::Server server(dev, cfg);
    for (const auto& req : stream) {
        gas::serve::Job job;
        job.kind = gas::serve::JobKind::Uniform;
        job.num_arrays = kArrays;
        job.array_size = kSize;
        job.values = req.values;
        job.opts = base_options();
        auto ticket = server.submit(std::move(job));
        server.pump();
        const auto resp = ticket.result.get();
        if (!resp.ok()) {
            r.mismatches += kArrays * kSize;
            continue;
        }
        r.mismatches += element_mismatches(resp.values, req.reference);
    }
    r.sketch_ms = server.stats().tune_sketch_ms;
    server.stop();
    r.modeled_ms = log_modeled_ms(dev);
    return r;
}

/// The auto_tune=off contract: a server with tuning off must emit exactly
/// the kernel sequence of a direct gpu_array_sort — bytes and every
/// deterministic KernelStats field.
bool off_reproduces_direct() {
    const auto req = make_stream(1).front();  // one uniform request

    simt::Device direct_dev = bench::make_device();
    auto direct = req.values;
    gas::gpu_array_sort(direct_dev, std::span<float>(direct), kArrays, kSize,
                        base_options());

    simt::Device serve_dev = bench::make_device();
    gas::serve::ServerConfig cfg;
    cfg.manual_pump = true;
    cfg.auto_tune = false;
    gas::serve::Server server(serve_dev, cfg);
    gas::serve::Job job;
    job.kind = gas::serve::JobKind::Uniform;
    job.num_arrays = kArrays;
    job.array_size = kSize;
    job.values = req.values;
    job.opts = base_options();
    auto ticket = server.submit(std::move(job));
    server.pump();
    const auto resp = ticket.result.get();
    server.stop();

    const std::size_t bytes = resp.ok() ? element_mismatches(resp.values, direct)
                                        : kArrays * kSize;
    const auto& a = direct_dev.kernel_log();
    const auto& b = serve_dev.kernel_log();
    std::size_t drift = a.size() == b.size() ? 0 : std::max(a.size(), b.size());
    for (std::size_t i = 0; drift == 0 && i < a.size(); ++i) {
        const auto& s = a[i];
        const auto& w = b[i];
        const bool same =
            s.name == w.name && s.grid_dim == w.grid_dim && s.block_dim == w.block_dim &&
            s.shared_bytes_per_block == w.shared_bytes_per_block &&
            s.totals.ops == w.totals.ops &&
            s.totals.shared_accesses == w.totals.shared_accesses &&
            s.totals.coalesced_bytes == w.totals.coalesced_bytes &&
            s.totals.random_accesses == w.totals.random_accesses &&
            s.traffic_bytes == w.traffic_bytes && s.modeled_ms == w.modeled_ms;
        if (!same) drift = 1;
    }
    const bool ok = bytes == 0 && drift == 0;
    std::printf("gate: auto_tune=off vs direct — %zu byte mismatches, %s stats drift "
                "(%zu kernels) ... %s\n",
                bytes, drift == 0 ? "no" : "HAS", a.size(), ok ? "PASS" : "FAIL");
    return ok;
}

struct StreamReport {
    ArmResult adaptive;
    std::vector<ArmResult> statics;
    double best_static_ms = 0.0;
    std::string best_static;
    double advantage = 0.0;  ///< best_static_ms / adaptive_ms
    bool beats_all = true;
    std::size_t total_mismatches = 0;
};

StreamReport run_stream(const char* label, std::size_t per_regime) {
    const auto stream = make_stream(per_regime);
    const auto props = bench::make_device().props();
    std::printf("%s stream: %zu requests (%zu per regime), %zu arrays x %zu floats\n",
                label, stream.size(), per_regime, kArrays, kSize);

    StreamReport rep;
    rep.adaptive = run_adaptive(stream);
    rep.total_mismatches = rep.adaptive.mismatches;
    std::printf("  %-16s %10.3f modeled ms (%7.3f ms/request, sketch %.3f ms), "
                "%zu mismatches\n",
                rep.adaptive.name.c_str(), rep.adaptive.modeled_ms,
                rep.adaptive.modeled_ms / static_cast<double>(stream.size()),
                rep.adaptive.sketch_ms, rep.adaptive.mismatches);

    rep.best_static_ms = 1e300;
    for (const auto& [name, opts] : static_arms(stream, props)) {
        const auto arm = run_static(name, opts, stream);
        std::printf("  %-16s %10.3f modeled ms (%7.3f ms/request), %zu mismatches\n",
                    arm.name.c_str(), arm.modeled_ms,
                    arm.modeled_ms / static_cast<double>(stream.size()), arm.mismatches);
        rep.total_mismatches += arm.mismatches;
        rep.beats_all = rep.beats_all && rep.adaptive.modeled_ms < arm.modeled_ms;
        if (arm.modeled_ms < rep.best_static_ms) {
            rep.best_static_ms = arm.modeled_ms;
            rep.best_static = arm.name;
        }
        rep.statics.push_back(arm);
    }
    rep.advantage = rep.best_static_ms / rep.adaptive.modeled_ms;
    std::printf("  adaptive advantage: %.2fx over best static (%s)\n", rep.advantage,
                rep.best_static.c_str());
    return rep;
}

/// Pulls "\"quick_adaptive_advantage\": <num>" out of a committed baseline.
double baseline_quick_advantage(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) return 0.0;
    std::string text(1 << 16, '\0');
    text.resize(std::fread(text.data(), 1, text.size(), f));
    std::fclose(f);
    const char* key = "\"quick_adaptive_advantage\":";
    const auto pos = text.find(key);
    if (pos == std::string::npos) return 0.0;
    return std::strtod(text.c_str() + pos + std::strlen(key), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    std::string json_path;
    std::string baseline_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
            baseline_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: adaptive_tuning [--quick] [--json PATH] "
                         "[--baseline PATH]\n");
            return 2;
        }
    }
    // The full run owns the committed artifact; --quick (the smoke test)
    // writes nothing unless asked, so it can never clobber the baseline.
    if (json_path.empty() && !quick) json_path = "BENCH_tune.json";

    std::printf("adaptive_tuning: gas::tune closed loop vs every frozen static plan\n");
    bench::rule('=');

    const StreamReport q = run_stream("quick", 2);
    bool ok = q.total_mismatches == 0;
    ok = off_reproduces_direct() && ok;

    StreamReport full;
    if (!quick) {
        bench::rule();
        full = run_stream("full", 5);
        const bool gate_adv = full.advantage >= 1.2;
        std::printf("gate: adaptive %.2fx over best static '%s' (need >= 1.2x) ... %s\n",
                    full.advantage, full.best_static.c_str(),
                    gate_adv ? "PASS" : "FAIL");
        std::printf("gate: adaptive strictly beats every static ... %s\n",
                    full.beats_all ? "PASS" : "FAIL");
        std::printf("gate: 0 byte mismatches across all arms (%zu) ... %s\n",
                    full.total_mismatches,
                    full.total_mismatches == 0 ? "PASS" : "FAIL");
        // Sketch overhead is measured against the UNTUNED cost — what the
        // stream costs with the options the client actually submitted
        // (paper-default) — because that is the bill the sketch rides on.
        double untuned_ms = 0.0;
        for (const auto& arm : full.statics) {
            if (arm.name == "paper-default") untuned_ms = arm.modeled_ms;
        }
        const double sketch_share = full.adaptive.sketch_ms / untuned_ms;
        const bool gate_sketch = sketch_share <= 0.05;
        std::printf("gate: sketch overhead %.3f ms = %.2f%% of untuned sort cost "
                    "(need <= 5%%) ... %s\n",
                    full.adaptive.sketch_ms, 100.0 * sketch_share,
                    gate_sketch ? "PASS" : "FAIL");
        ok = ok && gate_adv && full.beats_all && full.total_mismatches == 0 &&
             gate_sketch;
    }

    bool baseline_pass = true;
    if (!baseline_path.empty()) {
        const double base = baseline_quick_advantage(baseline_path);
        if (base <= 0.0) {
            std::printf("baseline: no quick_adaptive_advantage in %s — FAIL\n",
                        baseline_path.c_str());
            baseline_pass = false;
        } else {
            baseline_pass = q.advantage >= 0.8 * base;
            std::printf("gate: quick adaptive advantage %.2fx vs baseline %.2fx "
                        "(need >= 80%%) ... %s\n",
                        q.advantage, base, baseline_pass ? "PASS" : "FAIL");
        }
        ok = ok && baseline_pass;
    }

    if (!json_path.empty()) {
        if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
            const auto arms = [&](const StreamReport& rep) {
                std::fprintf(f,
                             "    \"adaptive\": {\"modeled_ms\": %.4f, "
                             "\"sketch_ms\": %.4f, \"mismatches\": %zu},\n",
                             rep.adaptive.modeled_ms, rep.adaptive.sketch_ms,
                             rep.adaptive.mismatches);
                for (std::size_t i = 0; i < rep.statics.size(); ++i) {
                    const auto& arm = rep.statics[i];
                    std::fprintf(f,
                                 "    \"%s\": {\"modeled_ms\": %.4f, "
                                 "\"mismatches\": %zu}%s\n",
                                 arm.name.c_str(), arm.modeled_ms, arm.mismatches,
                                 i + 1 < rep.statics.size() ? "," : "");
                }
            };
            std::fprintf(f, "{\n  \"bench\": \"adaptive_tuning\",\n");
            std::fprintf(f, "  \"arrays\": %zu,\n  \"array_size\": %zu,\n", kArrays,
                         kSize);
            std::fprintf(f, "  \"quick\": {\n");
            arms(q);
            std::fprintf(f, "    \"advantage\": %.4f\n  },\n", q.advantage);
            std::fprintf(f, "  \"quick_adaptive_advantage\": %.4f,\n", q.advantage);
            if (!quick) {
                std::fprintf(f, "  \"full\": {\n");
                arms(full);
                std::fprintf(f, "    \"advantage\": %.4f,\n", full.advantage);
                std::fprintf(f, "    \"best_static\": \"%s\"\n  },\n",
                             full.best_static.c_str());
                std::fprintf(f, "  \"gates\": {\n");
                std::fprintf(f,
                             "    \"adaptive_vs_best_static\": {\"value\": %.4f, "
                             "\"min\": 1.2, \"pass\": %s},\n",
                             full.advantage, full.advantage >= 1.2 ? "true" : "false");
                std::fprintf(f,
                             "    \"beats_every_static\": {\"pass\": %s},\n",
                             full.beats_all ? "true" : "false");
                std::fprintf(f,
                             "    \"byte_mismatches\": {\"value\": %zu, \"max\": 0, "
                             "\"pass\": %s},\n",
                             full.total_mismatches,
                             full.total_mismatches == 0 ? "true" : "false");
                std::fprintf(f,
                             "    \"sketch_overhead\": {\"value_ms\": %.4f, "
                             "\"max_share\": 0.05, \"pass\": true}\n",
                             full.adaptive.sketch_ms);
                std::fprintf(f, "  },\n");
            }
            std::fprintf(f, "  \"pass\": %s\n}\n", ok ? "true" : "false");
            std::fclose(f);
            std::printf("wrote %s\n", json_path.c_str());
        } else {
            std::printf("could not write %s\n", json_path.c_str());
            ok = false;
        }
    }

    return ok ? 0 : 1;
}
