// Reproduces Fig. 4: time vs. number of arrays, array size n = 1000,
// GPU-ArraySort vs. the Thrust-based tagged approach (STA).
#include "runtime_figure.hpp"

int main(int argc, char** argv) {
    return bench::run_runtime_figure("Figure 4", 1000, argc, argv);
}
