// Ablation A4 (beyond the paper): sensitivity of sample-sort bucketing to
// the input distribution, and the effect of the hybrid skew-aware phase-3
// sorter (DESIGN.md section 8).  The paper's evaluation is uniform-only;
// skewed and duplicate-heavy inputs unbalance buckets and stretch phase 3.
//
// Each distribution runs twice — Options::hybrid_phase3 off (the paper's
// one-lane-per-bucket insertion sort) and on — and the run emits a
// machine-readable BENCH_phase3_skew.json with two asserted acceptance
// gates: the zipf-hot adversary's modeled phase-3 makespan must improve by
// at least 3x, and the uniform total must stay within 2% (the hybrid keeps
// balanced inputs on the classic fast path).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/analysis.hpp"
#include "core/gpu_array_sort.hpp"
#include "simt/device.hpp"
#include "workload/generators.hpp"

namespace {

struct Run {
    double total_ms = 0.0;
    double phase3_ms = 0.0;
    double imbalance = 1.0;
    std::uint32_t max_bucket = 0;
};

Run run_once(const workload::Dataset& ds, bool hybrid) {
    auto values = ds.values;  // each run sorts a fresh copy
    simt::Device dev = bench::make_device();
    gas::Options opts;
    opts.validate = true;  // correctness must hold on every distribution
    opts.collect_bucket_sizes = true;
    opts.hybrid_phase3 = hybrid;
    const auto s = gas::gpu_array_sort(dev, std::span<float>(values), ds.num_arrays,
                                       ds.array_size, opts);
    return {s.modeled_kernel_ms(), s.phase3.modeled_ms, s.phase3_imbalance, s.max_bucket};
}

}  // namespace

int main(int argc, char** argv) {
    const bench::Args args = bench::parse(argc, argv);
    std::string json_path = "BENCH_phase3_skew.json";
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json" && i + 1 < argc) json_path = argv[i + 1];
    }
    const std::size_t num_arrays = args.full ? 50000 : 1000;
    const std::size_t n = 1000;

    std::printf("Ablation A4: input-distribution sensitivity (n = %zu, N = %zu)\n", n,
                num_arrays);
    std::printf("baseline = hybrid_phase3 off (paper's phase 3); hybrid = skew-aware sorter\n");
    bench::rule('=');
    std::printf("%16s | %10s %10s | %10s %10s | %8s %9s %8s\n", "distribution",
                "base p3", "hyb p3", "base tot", "hyb tot", "max bkt", "imbalance",
                "speedup");
    bench::rule();

    struct Row {
        std::string name;
        Run base;
        Run hyb;
    };
    std::vector<Row> rows;
    for (const auto dist : workload::all_distributions()) {
        const auto ds = workload::make_dataset(num_arrays, n, dist, 4);
        Row r;
        r.name = workload::to_string(dist);
        r.base = run_once(ds, /*hybrid=*/false);
        r.hyb = run_once(ds, /*hybrid=*/true);
        const double speedup = r.hyb.phase3_ms > 0.0 ? r.base.phase3_ms / r.hyb.phase3_ms : 1.0;
        std::printf("%16s | %8.2fms %8.2fms | %8.2fms %8.2fms | %8u %8.2fx %7.2fx\n",
                    r.name.c_str(), r.base.phase3_ms, r.hyb.phase3_ms, r.base.total_ms,
                    r.hyb.total_ms, r.base.max_bucket, r.base.imbalance, speedup);
        std::fflush(stdout);
        rows.push_back(std::move(r));
    }
    bench::rule();

    // Acceptance gates (asserted, and recorded in the JSON).
    double zipf_speedup = 0.0;
    double uniform_drift = 1.0;
    double zipf_imb_base = 0.0;
    double zipf_imb_hyb = 0.0;
    for (const Row& r : rows) {
        if (r.name == "zipf-hot" && r.hyb.phase3_ms > 0.0) {
            zipf_speedup = r.base.phase3_ms / r.hyb.phase3_ms;
            zipf_imb_base = r.base.imbalance;
            zipf_imb_hyb = r.hyb.imbalance;
        }
        if (r.name == "uniform" && r.base.total_ms > 0.0) {
            uniform_drift = std::abs(r.hyb.total_ms - r.base.total_ms) / r.base.total_ms;
        }
    }
    const bool zipf_pass = zipf_speedup >= 3.0;
    const bool uniform_pass = uniform_drift <= 0.02;
    std::printf("gate: zipf-hot phase-3 speedup %.2fx (need >= 3x) ........ %s\n",
                zipf_speedup, zipf_pass ? "PASS" : "FAIL");
    std::printf("gate: uniform total drift %.3f%% (need <= 2%%) ............ %s\n",
                uniform_drift * 100.0, uniform_pass ? "PASS" : "FAIL");
    std::printf("zipf-hot phase-3 lane imbalance: %.1fx baseline -> %.1fx hybrid\n",
                zipf_imb_base, zipf_imb_hyb);

    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
        std::fprintf(f, "{\n  \"bench\": \"phase3_skew\",\n");
        std::fprintf(f, "  \"num_arrays\": %zu,\n  \"array_size\": %zu,\n", num_arrays, n);
        std::fprintf(f, "  \"distributions\": [\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row& r = rows[i];
            const double speedup =
                r.hyb.phase3_ms > 0.0 ? r.base.phase3_ms / r.hyb.phase3_ms : 1.0;
            std::fprintf(f,
                         "    {\"name\": \"%s\", "
                         "\"baseline\": {\"phase3_ms\": %.6f, \"total_ms\": %.6f, "
                         "\"imbalance\": %.4f}, "
                         "\"hybrid\": {\"phase3_ms\": %.6f, \"total_ms\": %.6f, "
                         "\"imbalance\": %.4f}, "
                         "\"phase3_speedup\": %.4f, \"max_bucket\": %u}%s\n",
                         r.name.c_str(), r.base.phase3_ms, r.base.total_ms,
                         r.base.imbalance, r.hyb.phase3_ms, r.hyb.total_ms,
                         r.hyb.imbalance, speedup, r.base.max_bucket,
                         i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f, "  \"gates\": {\n");
        std::fprintf(f,
                     "    \"zipf_hot_phase3_speedup\": {\"value\": %.4f, \"min\": 3.0, "
                     "\"pass\": %s},\n",
                     zipf_speedup, zipf_pass ? "true" : "false");
        std::fprintf(f,
                     "    \"uniform_total_drift\": {\"value\": %.6f, \"max\": 0.02, "
                     "\"pass\": %s}\n",
                     uniform_drift, uniform_pass ? "true" : "false");
        std::fprintf(f, "  }\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    } else {
        std::printf("could not write %s\n", json_path.c_str());
    }

    const bool inert = bench::verify_sanitize_off_guarantee([](simt::Device& dev) {
        // The skewed distribution exercises the hybrid cooperative path and
        // the degenerate few-distinct input the single-hot-bucket one.
        auto hot = workload::make_dataset(8, 1000, workload::Distribution::ZipfHot, 4);
        gas::gpu_array_sort(dev, hot.values, 8, 1000);
        auto small = workload::make_dataset(16, 500, workload::Distribution::FewDistinct, 4);
        gas::gpu_array_sort(dev, small.values, 16, 500);
    });
    return (inert && zipf_pass && uniform_pass) ? 0 : 1;
}
