// Ablation A4 (beyond the paper): sensitivity of sample-sort bucketing to
// the input distribution.  The paper's evaluation is uniform-only; skewed
// and duplicate-heavy inputs unbalance buckets and stretch phase 3.

#include <cstdio>

#include "common.hpp"
#include "core/analysis.hpp"
#include "core/gpu_array_sort.hpp"
#include "simt/device.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
    const bench::Args args = bench::parse(argc, argv);
    const std::size_t num_arrays = args.full ? 50000 : 1000;
    const std::size_t n = 1000;

    std::printf("Ablation A4: input-distribution sensitivity (n = %zu, N = %zu)\n", n,
                num_arrays);
    bench::rule('=');
    std::printf("%16s | %10s %10s %10s | %8s %10s %10s %6s\n", "distribution", "total",
                "phase2", "phase3", "max bkt", "imbalance", "p3 penalty", "empty");
    bench::rule();

    for (const auto dist : workload::all_distributions()) {
        auto ds = workload::make_dataset(num_arrays, n, dist, 4);
        simt::Device dev = bench::make_device();
        gas::Options opts;
        opts.validate = true;  // correctness must hold on every distribution
        opts.collect_bucket_sizes = true;
        const auto s = gas::gpu_array_sort(dev, ds.values, num_arrays, n, opts);
        const auto bal = gas::analyze_buckets(s.bucket_sizes, s.buckets_per_array);
        std::printf("%16s | %8.1fms %8.1fms %8.1fms | %8u %9.2fx %9.2fx %5.0f%%\n",
                    workload::to_string(dist).c_str(), s.modeled_kernel_ms(),
                    s.phase2.modeled_ms, s.phase3.modeled_ms, s.max_bucket, bal.imbalance,
                    bal.balance_penalty(), bal.empty_fraction * 100.0);
        std::fflush(stdout);
    }
    bench::rule();
    std::printf("shape: uniform/normal stay balanced; few-distinct and constant inputs\n");
    std::printf("collapse into single buckets (insertion sort degenerates to O(n^2) on\n");
    std::printf("one thread) — the known degeneracy of regular-sampling sample sort.\n");
    const bool inert = bench::verify_sanitize_off_guarantee([](simt::Device& dev) {
        // The degenerate distribution exercises the single-bucket path too.
        auto small = workload::make_dataset(16, 500, workload::Distribution::FewDistinct, 4);
        gas::gpu_array_sort(dev, small.values, 16, 500);
    });
    return inert ? 0 : 1;
}
