// Fleet scaling bench: the sharded serving layer across 1/2/4/8 devices.
//
// The 1000-request serve workload (4 x 64 floats per request) is pushed
// through gas::serve::Server on DeviceFleets of increasing size under the
// least-loaded router.  BENCH_fleet.json asserts four acceptance gates:
//   * scaling: modeled fleet throughput (the 1-device pipeline makespan over
//     the N-device makespan) >= 3x at 4 devices (>= 2x under --quick),
//   * failover termination: a device killed mid-run via simt::faults leaves
//     every request Status::Ok — quarantine + re-route absorb the loss,
//   * failover integrity: zero byte mismatches against the fault-free run
//     (bytes never depend on which device served a request), and
//   * soak: >= 100k requests served in waves on a 4-device fleet with the
//     real scheduler threads, all verified bit-correct (skipped by --quick).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "fleet/fleet.hpp"
#include "serve/server.hpp"
#include "simt/device.hpp"
#include "workload/generators.hpp"

namespace {

constexpr std::size_t kArraysPerRequest = 4;
constexpr std::size_t kArraySize = 64;

gas::serve::ServerConfig fleet_config(std::size_t queue_capacity, bool manual) {
    gas::serve::ServerConfig cfg;
    cfg.manual_pump = manual;
    cfg.queue_capacity = queue_capacity;
    cfg.max_batch_requests = 64;
    cfg.num_streams = 2;
    cfg.route_policy = gas::fleet::RoutePolicy::LeastLoaded;
    cfg.retry.seed = 2026;
    return cfg;
}

gas::fleet::DeviceFleet make_fleet(std::size_t devices) {
    const unsigned hw = std::max(std::thread::hardware_concurrency(), 1u);
    const unsigned workers =
        std::max(1u, hw / static_cast<unsigned>(std::max<std::size_t>(devices, 1)));
    return gas::fleet::DeviceFleet(devices, simt::tesla_k40c(),
                                   simt::DeviceMemory::Mode::Backed, workers);
}

gas::serve::Job job_for(const std::vector<float>& values) {
    gas::serve::Job job;
    job.kind = gas::serve::JobKind::Uniform;
    job.num_arrays = kArraysPerRequest;
    job.array_size = kArraySize;
    job.values = values;
    return job;
}

struct RunResult {
    std::vector<std::vector<float>> responses;
    std::size_t not_ok = 0;
    gas::serve::ServerStats stats;
};

/// Serves `inputs` on a fleet of `devices`.  When `kill_at` is in range, that
/// device's fault plan is installed after `kill_after` requests have been
/// submitted — the queued half of the run lands on a dying device and must
/// re-home on the survivors.
RunResult run_fleet(const std::vector<std::vector<float>>& inputs, std::size_t devices,
                    std::size_t kill_at = SIZE_MAX, std::size_t kill_after = 0) {
    gas::fleet::DeviceFleet fleet = make_fleet(devices);
    gas::serve::Server server(fleet, fleet_config(inputs.size(), /*manual=*/true));
    std::vector<gas::serve::Server::Ticket> tickets;
    tickets.reserve(inputs.size());
    for (std::size_t r = 0; r < inputs.size(); ++r) {
        if (kill_at < devices && r == kill_after) {
            server.pump();  // the first half retires cleanly...
            simt::faults::FaultPlan plan;
            plan.launch_fail_every = 1;  // ...then the device is gone
            fleet.device(kill_at).set_fault_plan(plan);
        }
        tickets.push_back(server.submit(job_for(inputs[r])));
    }
    server.pump();

    RunResult res;
    res.responses.reserve(inputs.size());
    for (auto& t : tickets) {
        auto resp = t.result.get();
        if (!resp.ok()) ++res.not_ok;
        res.responses.push_back(std::move(resp.values));
    }
    res.stats = server.stats();
    return res;
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    std::size_t requests = 1000;
    std::size_t soak_requests = 100000;
    std::string json_path = "BENCH_fleet.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
            requests = static_cast<std::size_t>(std::stoull(argv[++i]));
        } else if (std::strcmp(argv[i], "--soak") == 0 && i + 1 < argc) {
            soak_requests = static_cast<std::size_t>(std::stoull(argv[++i]));
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("usage: %s [--quick] [--requests N] [--soak N] [--json PATH]\n",
                        argv[0]);
            std::printf("  --quick     200-request grid, devices <= 4, no soak, 2x gate\n");
            std::printf("  --requests  scaling/failover workload size (default 1000)\n");
            std::printf("  --soak      soak request count (default 100000)\n");
            return 0;
        }
    }
    if (quick) requests = std::min<std::size_t>(requests, 200);
    const std::vector<std::size_t> device_grid =
        quick ? std::vector<std::size_t>{1, 2, 4} : std::vector<std::size_t>{1, 2, 4, 8};
    const double scale4_min = quick ? 2.0 : 3.0;

    std::printf("Fleet scaling: %zu requests of %zu x %zu floats, least-loaded router\n",
                requests, kArraysPerRequest, kArraySize);
    bench::rule('=');

    std::vector<std::vector<float>> inputs(requests);
    for (std::size_t r = 0; r < requests; ++r) {
        inputs[r] = workload::make_dataset(kArraysPerRequest, kArraySize,
                                           workload::Distribution::Uniform,
                                           static_cast<std::uint64_t>(r + 1))
                        .values;
    }

    // --- Scaling sweep -----------------------------------------------------
    std::printf("%8s | %16s | %9s | %11s | %7s %7s\n", "devices", "overlap makespan",
                "speedup", "utilization", "batches", "steals");
    bench::rule();
    std::vector<double> overlap_ms(device_grid.size());
    std::vector<double> speedups(device_grid.size());
    RunResult reference;  // the 1-device run doubles as the byte reference
    gas::serve::ServerStats four_dev_stats;
    for (std::size_t i = 0; i < device_grid.size(); ++i) {
        RunResult run = run_fleet(inputs, device_grid[i]);
        overlap_ms[i] = run.stats.modeled_overlap_ms;
        speedups[i] = overlap_ms[0] > 0.0 && overlap_ms[i] > 0.0
                          ? overlap_ms[0] / overlap_ms[i]
                          : 0.0;
        std::printf("%8zu | %13.3f ms | %8.2fx | %11.2f | %7llu %7llu\n", device_grid[i],
                    overlap_ms[i], speedups[i], run.stats.compute_utilization,
                    static_cast<unsigned long long>(run.stats.batches),
                    static_cast<unsigned long long>(run.stats.steals));
        std::fflush(stdout);
        if (run.not_ok != 0) {
            std::printf("FATAL: %zu request(s) failed on the clean %zu-device run\n",
                        run.not_ok, device_grid[i]);
            return 1;
        }
        if (device_grid[i] == 1) reference = std::move(run);
        if (device_grid[i] == 4) four_dev_stats = run.stats;
    }
    double speedup4 = 0.0;
    for (std::size_t i = 0; i < device_grid.size(); ++i) {
        if (device_grid[i] == 4) speedup4 = speedups[i];
    }
    bench::rule();

    // --- Device-kill failover ---------------------------------------------
    // Device 1 of 4 dies after the first half of the workload retired; the
    // queued second half must quarantine it, re-home, and stay bit-identical.
    const RunResult failover = run_fleet(inputs, 4, /*kill_at=*/1,
                                         /*kill_after=*/requests / 2);
    std::size_t mismatches = 0;
    for (std::size_t r = 0; r < requests; ++r) {
        if (failover.responses[r] != reference.responses[r]) ++mismatches;
    }
    std::printf("device-kill failover: %zu unrecovered, %zu byte mismatch(es), "
                "%llu re-route(s), %llu device(s) quarantined\n",
                failover.not_ok, mismatches,
                static_cast<unsigned long long>(failover.stats.reroutes),
                static_cast<unsigned long long>(failover.stats.devices_quarantined));

    // --- Soak: scheduler threads, waves of requests ------------------------
    std::size_t soak_served = 0;
    std::size_t soak_bad = 0;
    double soak_overlap_ms = 0.0;
    if (!quick) {
        std::vector<std::vector<float>> soak_expected(inputs.size());
        for (std::size_t r = 0; r < inputs.size(); ++r) {
            soak_expected[r] = inputs[r];
            for (std::size_t a = 0; a < kArraysPerRequest; ++a) {
                auto* row = soak_expected[r].data() + a * kArraySize;
                std::sort(row, row + kArraySize);
            }
        }
        const std::size_t wave = 2000;
        gas::fleet::DeviceFleet fleet = make_fleet(4);
        gas::serve::Server server(fleet, fleet_config(wave, /*manual=*/false));
        std::vector<gas::serve::Server::Ticket> tickets;
        tickets.reserve(wave);
        while (soak_served < soak_requests) {
            const std::size_t batch = std::min(wave, soak_requests - soak_served);
            tickets.clear();
            for (std::size_t r = 0; r < batch; ++r) {
                tickets.push_back(
                    server.submit(job_for(inputs[(soak_served + r) % inputs.size()])));
            }
            server.drain();
            for (std::size_t r = 0; r < batch; ++r) {
                auto resp = tickets[r].result.get();
                if (!resp.ok() ||
                    resp.values != soak_expected[(soak_served + r) % inputs.size()]) {
                    ++soak_bad;
                }
            }
            soak_served += batch;
        }
        server.stop();
        soak_overlap_ms = server.stats().modeled_overlap_ms;
        std::printf("soak: %zu requests in waves of %zu, %zu bad, "
                    "%.1f ms modeled fleet makespan\n",
                    soak_served, wave, soak_bad, soak_overlap_ms);
    } else {
        std::printf("soak: skipped (--quick)\n");
    }
    bench::rule();

    // --- Gates -------------------------------------------------------------
    const bool scaling_pass = speedup4 >= scale4_min;
    const bool termination_pass = failover.not_ok == 0;
    const bool integrity_pass = mismatches == 0;
    const bool quarantine_pass = failover.stats.devices_quarantined == 1;
    const bool soak_pass = quick || (soak_served >= soak_requests && soak_bad == 0);
    std::printf("gate: 4-device throughput speedup %.2fx (need >= %.0fx) ..... %s\n",
                speedup4, scale4_min, scaling_pass ? "PASS" : "FAIL");
    std::printf("gate: device-kill unrecovered %zu of %zu (need 0) ......... %s\n",
                failover.not_ok, requests, termination_pass ? "PASS" : "FAIL");
    std::printf("gate: bytes vs fault-free run, %zu mismatch(es) (need 0) .. %s\n",
                mismatches, integrity_pass ? "PASS" : "FAIL");
    std::printf("gate: devices quarantined %llu (need exactly 1) ........... %s\n",
                static_cast<unsigned long long>(failover.stats.devices_quarantined),
                quarantine_pass ? "PASS" : "FAIL");
    if (!quick) {
        std::printf("gate: soak %zu served, %zu bad (need >= %zu, 0 bad) ... %s\n",
                    soak_served, soak_bad, soak_requests, soak_pass ? "PASS" : "FAIL");
    }

    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
        std::fprintf(f, "{\n  \"bench\": \"fleet_scaling\",\n");
        std::fprintf(f, "  \"requests\": %zu,\n  \"arrays_per_request\": %zu,\n", requests,
                     kArraysPerRequest);
        std::fprintf(f, "  \"array_size\": %zu,\n  \"quick\": %s,\n", kArraySize,
                     quick ? "true" : "false");
        std::fprintf(f, "  \"scaling\": [\n");
        for (std::size_t i = 0; i < device_grid.size(); ++i) {
            std::fprintf(f,
                         "    {\"devices\": %zu, \"modeled_overlap_ms\": %.6f, "
                         "\"speedup\": %.4f}%s\n",
                         device_grid[i], overlap_ms[i], speedups[i],
                         i + 1 < device_grid.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f, "  \"four_device_run\": {\"batches\": %llu, "
                     "\"compute_utilization\": %.4f, \"steals\": %llu, \"per_device\": [\n",
                     static_cast<unsigned long long>(four_dev_stats.batches),
                     four_dev_stats.compute_utilization,
                     static_cast<unsigned long long>(four_dev_stats.steals));
        for (std::size_t i = 0; i < four_dev_stats.devices.size(); ++i) {
            const auto& d = four_dev_stats.devices[i];
            std::fprintf(f,
                         "    {\"name\": \"%s\", \"routed\": %llu, \"completed\": %llu, "
                         "\"batches\": %llu, \"kernel_ms\": %.6f, \"utilization\": %.4f}%s\n",
                         d.name.c_str(), static_cast<unsigned long long>(d.routed),
                         static_cast<unsigned long long>(d.completed),
                         static_cast<unsigned long long>(d.batches), d.modeled_kernel_ms,
                         d.compute_utilization,
                         i + 1 < four_dev_stats.devices.size() ? "," : "");
        }
        std::fprintf(f, "  ]},\n");
        std::fprintf(f,
                     "  \"failover\": {\"unrecovered\": %zu, \"mismatches\": %zu, "
                     "\"reroutes\": %llu, \"devices_quarantined\": %llu},\n",
                     failover.not_ok, mismatches,
                     static_cast<unsigned long long>(failover.stats.reroutes),
                     static_cast<unsigned long long>(failover.stats.devices_quarantined));
        std::fprintf(f,
                     "  \"soak\": {\"requests\": %zu, \"bad\": %zu, "
                     "\"modeled_overlap_ms\": %.6f, \"ran\": %s},\n",
                     soak_served, soak_bad, soak_overlap_ms, quick ? "false" : "true");
        std::fprintf(f, "  \"gates\": {\n");
        std::fprintf(f,
                     "    \"scaling_4dev\": {\"value\": %.4f, \"min\": %.1f, \"pass\": %s},\n",
                     speedup4, scale4_min, scaling_pass ? "true" : "false");
        std::fprintf(f,
                     "    \"failover_termination\": {\"unrecovered\": %zu, \"max\": 0, "
                     "\"pass\": %s},\n",
                     failover.not_ok, termination_pass ? "true" : "false");
        std::fprintf(f,
                     "    \"failover_integrity\": {\"mismatches\": %zu, \"max\": 0, "
                     "\"pass\": %s},\n",
                     mismatches, integrity_pass ? "true" : "false");
        std::fprintf(f,
                     "    \"failover_quarantine\": {\"value\": %llu, \"expect\": 1, "
                     "\"pass\": %s},\n",
                     static_cast<unsigned long long>(failover.stats.devices_quarantined),
                     quarantine_pass ? "true" : "false");
        std::fprintf(f, "    \"soak\": {\"served\": %zu, \"bad\": %zu, \"pass\": %s}\n",
                     soak_served, soak_bad, soak_pass ? "true" : "false");
        std::fprintf(f, "  }\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    } else {
        std::printf("could not write %s\n", json_path.c_str());
    }

    // Fleet-served kernels must be untouched by the sanitizer machinery,
    // like every other bench's workload.
    const bool inert = bench::verify_sanitize_off_guarantee([](simt::Device& d) {
        gas::fleet::DeviceFleet fleet(d);
        gas::serve::ServerConfig cfg;
        cfg.manual_pump = true;
        gas::serve::Server srv(fleet, cfg);
        std::vector<gas::serve::Server::Ticket> ts;
        for (unsigned i = 0; i < 8; ++i) {
            ts.push_back(srv.submit(job_for(
                workload::make_dataset(kArraysPerRequest, kArraySize,
                                       workload::Distribution::Uniform, i + 1)
                    .values)));
        }
        srv.pump();
        for (auto& t : ts) t.result.get();
    });

    return (scaling_pass && termination_pass && integrity_pass && quarantine_pass &&
            soak_pass && inert)
               ? 0
               : 1;
}
