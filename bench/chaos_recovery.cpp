// Chaos-recovery bench: the serving layer under a hostile device.
//
// 1000 small sort requests ride fused micro-batches while simt::faults
// injects roughly one allocation failure per 50 allocations and one silent
// (undetected) memory corruption per 200 launches.  BENCH_chaos.json asserts
// three acceptance gates:
//   * termination: every request completes with Status::Ok — retries,
//     quarantines and host fallbacks absorb every injected fault,
//   * integrity: zero byte mismatches against the same requests served on a
//     fault-free server (never silently wrong data), and
//   * overhead: on the fault-free path, response verification costs <= 10%
//     extra modeled device time.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "serve/server.hpp"
#include "simt/device.hpp"
#include "simt/faults/report.hpp"
#include "workload/generators.hpp"

namespace {

constexpr std::size_t kArraysPerRequest = 4;
constexpr std::size_t kArraySize = 512;

gas::serve::ServerConfig server_config(std::size_t requests, bool verify) {
    gas::serve::ServerConfig cfg;
    cfg.manual_pump = true;  // deterministic batching and fault schedule
    cfg.queue_capacity = requests;
    // Small batches keep the launch count high enough for the 1-in-200
    // corruption rate to actually fire over 1000 requests.
    cfg.max_batch_requests = 8;
    cfg.retry.seed = 2024;
    cfg.retry.max_attempts = 5;
    cfg.verify_responses = verify;
    return cfg;
}

struct RunResult {
    std::vector<std::vector<float>> responses;
    std::size_t not_ok = 0;
    gas::serve::ServerStats stats;
    simt::faults::FaultReport faults;
};

RunResult run_requests(const std::vector<std::vector<float>>& inputs, bool verify,
                       const simt::faults::FaultPlan* plan) {
    simt::Device dev = bench::make_device();
    if (plan != nullptr) dev.set_fault_plan(*plan);
    gas::serve::Server server(dev, server_config(inputs.size(), verify));
    std::vector<gas::serve::Server::Ticket> tickets;
    tickets.reserve(inputs.size());
    for (std::size_t r = 0; r < inputs.size(); ++r) {
        gas::serve::Job job;
        job.kind = gas::serve::JobKind::Uniform;
        job.num_arrays = kArraysPerRequest;
        job.array_size = kArraySize;
        job.values = inputs[r];
        tickets.push_back(server.submit(std::move(job)));
    }
    server.pump();

    RunResult res;
    res.responses.reserve(inputs.size());
    for (auto& t : tickets) {
        auto resp = t.result.get();
        if (!resp.ok()) ++res.not_ok;
        res.responses.push_back(std::move(resp.values));
    }
    res.stats = server.stats();
    res.faults = dev.fault_report();
    return res;
}

}  // namespace

int main(int argc, char** argv) {
    const bench::Args args = bench::parse(argc, argv);
    std::size_t requests = args.full ? 4000 : 1000;
    std::size_t soak_requests = 0;  // --soak [N]: production-scale run under faults
    std::string json_path = "BENCH_chaos.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
            requests = static_cast<std::size_t>(std::stoull(argv[i + 1]));
        } else if (std::strcmp(argv[i], "--soak") == 0) {
            soak_requests = (i + 1 < argc && argv[i + 1][0] != '-')
                                ? static_cast<std::size_t>(std::stoull(argv[i + 1]))
                                : 100000;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[i + 1];
        }
    }

    std::printf("Chaos recovery: %zu requests of %zu x %zu floats under injected faults\n",
                requests, kArraysPerRequest, kArraySize);
    bench::rule('=');

    std::vector<std::vector<float>> inputs(requests);
    for (std::size_t r = 0; r < requests; ++r) {
        inputs[r] = workload::make_dataset(kArraysPerRequest, kArraySize,
                                           workload::Distribution::Uniform,
                                           static_cast<std::uint64_t>(r + 1))
                        .values;
    }

    // Reference: fault-free server, verification off — today's bytes and
    // today's modeled time.
    const RunResult clean = run_requests(inputs, /*verify=*/false, nullptr);
    // Fault-free with verification: the overhead the resilience layer costs
    // when nothing is wrong.
    const RunResult verified = run_requests(inputs, /*verify=*/true, nullptr);

    // The chaos run: allocation faults and silent corruption, verification
    // on (the only defense against undetected flips).
    simt::faults::FaultPlan plan;
    plan.seed = 7;
    plan.alloc_fail_every = 50;
    plan.corrupt_every = 200;
    plan.detected = false;  // silent: only response verification can catch it
    const RunResult chaos = run_requests(inputs, /*verify=*/true, &plan);

    std::size_t mismatches = 0;
    for (std::size_t r = 0; r < requests; ++r) {
        if (chaos.responses[r] != clean.responses[r]) ++mismatches;
    }

    std::printf("fault-free baseline:  %10.2f ms modeled kernel time\n",
                clean.stats.modeled_kernel_ms);
    std::printf("fault-free verified:  %10.2f ms modeled kernel time\n",
                verified.stats.modeled_kernel_ms);
    std::printf("chaos run: %llu fault(s) fired (%llu corruption(s), %llu alloc "
                "failure(s)), %llu suppressed\n",
                static_cast<unsigned long long>(chaos.faults.fired()),
                static_cast<unsigned long long>(chaos.faults.corruptions),
                static_cast<unsigned long long>(chaos.faults.alloc_failures),
                static_cast<unsigned long long>(chaos.faults.suppressed));
    std::printf("  recovery: %llu batch retries, %llu alloc retries, %llu quarantined, "
                "%llu verify failures, %.3f ms modeled backoff\n",
                static_cast<unsigned long long>(chaos.stats.retries),
                static_cast<unsigned long long>(chaos.stats.alloc_retries),
                static_cast<unsigned long long>(chaos.stats.quarantined),
                static_cast<unsigned long long>(chaos.stats.verify_failures),
                chaos.stats.retry_backoff_ms);
    bench::rule();

    // Optional sustained soak: the default run stays fast (ctest-friendly);
    // --soak keeps the same fault plan firing across >= 100k requests served
    // in waves, each response verified against a host std::sort of its input
    // so memory stays bounded regardless of the request count.
    std::size_t soak_served = 0;
    std::size_t soak_bad = 0;
    std::uint64_t soak_faults = 0;
    if (soak_requests > 0) {
        std::vector<std::vector<float>> expected(inputs.size());
        for (std::size_t r = 0; r < inputs.size(); ++r) {
            expected[r] = inputs[r];
            for (std::size_t a = 0; a < kArraysPerRequest; ++a) {
                auto* row = expected[r].data() + a * kArraySize;
                std::sort(row, row + kArraySize);
            }
        }
        const std::size_t wave = 2000;
        simt::Device soak_dev = bench::make_device();
        soak_dev.set_fault_plan(plan);
        gas::serve::Server soak_server(soak_dev,
                                       server_config(wave, /*verify=*/true));
        std::vector<gas::serve::Server::Ticket> wave_tickets;
        wave_tickets.reserve(wave);
        while (soak_served < soak_requests) {
            const std::size_t batch = std::min(wave, soak_requests - soak_served);
            wave_tickets.clear();
            for (std::size_t r = 0; r < batch; ++r) {
                gas::serve::Job job;
                job.kind = gas::serve::JobKind::Uniform;
                job.num_arrays = kArraysPerRequest;
                job.array_size = kArraySize;
                job.values = inputs[(soak_served + r) % inputs.size()];
                wave_tickets.push_back(soak_server.submit(std::move(job)));
            }
            soak_server.pump();
            for (std::size_t r = 0; r < batch; ++r) {
                auto resp = wave_tickets[r].result.get();
                if (!resp.ok() ||
                    resp.values != expected[(soak_served + r) % inputs.size()]) {
                    ++soak_bad;
                }
            }
            soak_served += batch;
        }
        soak_faults = soak_dev.fault_report().fired();
        std::printf("soak: %zu requests in waves of %zu under the same plan, "
                    "%llu fault(s) fired, %zu bad\n",
                    soak_served, wave, static_cast<unsigned long long>(soak_faults),
                    soak_bad);
        bench::rule();
    }

    const double overhead =
        clean.stats.modeled_kernel_ms > 0.0
            ? verified.stats.modeled_kernel_ms / clean.stats.modeled_kernel_ms - 1.0
            : 0.0;
    const bool termination_pass = chaos.not_ok == 0 && clean.not_ok == 0;
    const bool integrity_pass = mismatches == 0;
    const bool overhead_pass = overhead <= 0.10;
    const bool soak_pass = soak_requests == 0 || (soak_served >= soak_requests && soak_bad == 0);
    std::printf("gate: unrecovered requests %zu of %zu (need 0) .......... %s\n",
                chaos.not_ok, requests, termination_pass ? "PASS" : "FAIL");
    std::printf("gate: bytes vs fault-free run, %zu mismatch(es) (need 0)  %s\n", mismatches,
                integrity_pass ? "PASS" : "FAIL");
    std::printf("gate: fault-free verification overhead %.2f%% (<= 10%%) .. %s\n",
                overhead * 100.0, overhead_pass ? "PASS" : "FAIL");
    if (soak_requests > 0) {
        std::printf("gate: soak %zu served, %zu bad (need >= %zu, 0 bad) ... %s\n",
                    soak_served, soak_bad, soak_requests, soak_pass ? "PASS" : "FAIL");
    }

    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
        std::fprintf(f, "{\n  \"bench\": \"chaos_recovery\",\n");
        std::fprintf(f, "  \"requests\": %zu,\n  \"arrays_per_request\": %zu,\n", requests,
                     kArraysPerRequest);
        std::fprintf(f, "  \"array_size\": %zu,\n", kArraySize);
        std::fprintf(f,
                     "  \"plan\": {\"seed\": 7, \"alloc_fail_every\": 50, "
                     "\"corrupt_every\": 200, \"detected\": false},\n");
        std::fprintf(f,
                     "  \"faults\": {\"fired\": %llu, \"corruptions\": %llu, "
                     "\"alloc_failures\": %llu, \"suppressed\": %llu},\n",
                     static_cast<unsigned long long>(chaos.faults.fired()),
                     static_cast<unsigned long long>(chaos.faults.corruptions),
                     static_cast<unsigned long long>(chaos.faults.alloc_failures),
                     static_cast<unsigned long long>(chaos.faults.suppressed));
        std::fprintf(f,
                     "  \"recovery\": {\"retries\": %llu, \"alloc_retries\": %llu, "
                     "\"quarantined\": %llu, \"verify_failures\": %llu, "
                     "\"retry_backoff_ms\": %.6f},\n",
                     static_cast<unsigned long long>(chaos.stats.retries),
                     static_cast<unsigned long long>(chaos.stats.alloc_retries),
                     static_cast<unsigned long long>(chaos.stats.quarantined),
                     static_cast<unsigned long long>(chaos.stats.verify_failures),
                     chaos.stats.retry_backoff_ms);
        std::fprintf(f,
                     "  \"modeled_kernel_ms\": {\"clean\": %.6f, \"verified\": %.6f, "
                     "\"chaos\": %.6f},\n",
                     clean.stats.modeled_kernel_ms, verified.stats.modeled_kernel_ms,
                     chaos.stats.modeled_kernel_ms);
        std::fprintf(f, "  \"gates\": {\n");
        std::fprintf(f,
                     "    \"termination\": {\"unrecovered\": %zu, \"max\": 0, \"pass\": "
                     "%s},\n",
                     chaos.not_ok, termination_pass ? "true" : "false");
        std::fprintf(f,
                     "    \"integrity\": {\"mismatches\": %zu, \"max\": 0, \"pass\": %s},\n",
                     mismatches, integrity_pass ? "true" : "false");
        std::fprintf(f,
                     "    \"verify_overhead\": {\"fraction\": %.6f, \"max\": 0.10, "
                     "\"pass\": %s},\n",
                     overhead, overhead_pass ? "true" : "false");
        std::fprintf(f,
                     "    \"soak\": {\"served\": %zu, \"bad\": %zu, \"faults_fired\": "
                     "%llu, \"ran\": %s, \"pass\": %s}\n",
                     soak_served, soak_bad,
                     static_cast<unsigned long long>(soak_faults),
                     soak_requests > 0 ? "true" : "false", soak_pass ? "true" : "false");
        std::fprintf(f, "  }\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    } else {
        std::printf("could not write %s\n", json_path.c_str());
    }

    // The verify kernels must be untouched by the sanitizer machinery, like
    // every other bench's workload.
    const bool inert = bench::verify_sanitize_off_guarantee([](simt::Device& d) {
        gas::serve::ServerConfig cfg;
        cfg.manual_pump = true;
        cfg.verify_responses = true;
        gas::serve::Server srv(d, cfg);
        std::vector<gas::serve::Server::Ticket> ts;
        for (unsigned i = 0; i < 8; ++i) {
            gas::serve::Job job;
            job.kind = gas::serve::JobKind::Uniform;
            job.num_arrays = 2;
            job.array_size = 64;
            job.values = workload::make_dataset(2, 64, workload::Distribution::Uniform,
                                                i + 1)
                             .values;
            ts.push_back(srv.submit(std::move(job)));
        }
        srv.pump();
        for (auto& t : ts) t.result.get();
    });

    return (termination_pass && integrity_pass && overhead_pass && soak_pass && inert) ? 0
                                                                                       : 1;
}
