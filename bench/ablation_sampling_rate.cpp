// Ablation A2 — section 5.1's claim: "10% regular sampling gave most evenly
// balanced buckets and hence the best running time" for uniform data.
// Sweeps the sampling rate and reports modeled time and bucket imbalance.

#include <cstdio>

#include "common.hpp"
#include "core/analysis.hpp"
#include "core/gpu_array_sort.hpp"
#include "simt/device.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
    const bench::Args args = bench::parse(argc, argv);
    const std::size_t num_arrays = args.full ? 50000 : 2000;
    const std::size_t n = 1000;

    std::printf("Ablation A2: sampling-rate sweep (n = %zu, N = %zu, uniform)\n", n,
                num_arrays);
    bench::rule('=');
    std::printf("%8s | %10s %10s %10s | %10s %10s %10s\n", "rate", "total", "phase1",
                "phase3", "max bkt", "imbalance", "p3 penalty");
    bench::rule();

    auto ds = workload::make_dataset(num_arrays, n, workload::Distribution::Uniform, 2);

    double best = 1e300;
    double best_rate = 0.0;
    for (const double rate : {0.02, 0.05, 0.10, 0.20, 0.35, 0.50, 1.00}) {
        auto copy = ds.values;
        simt::Device dev = bench::make_device();
        gas::Options opts;
        opts.sampling_rate = rate;
        opts.collect_bucket_sizes = true;
        const auto s = gas::gpu_array_sort(dev, copy, num_arrays, n, opts);
        const auto bal = gas::analyze_buckets(s.bucket_sizes, s.buckets_per_array);
        const double total = s.modeled_kernel_ms();
        std::printf("%7.0f%% | %8.1fms %8.1fms %8.1fms | %10u %9.2fx %9.2fx\n", rate * 100,
                    total, s.phase1.modeled_ms, s.phase3.modeled_ms, s.max_bucket,
                    bal.imbalance, bal.balance_penalty());
        std::fflush(stdout);
        if (total < best) {
            best = total;
            best_rate = rate;
        }
    }
    bench::rule();
    std::printf("best sampling rate: %.0f%% (paper's choice: 10%%)\n", best_rate * 100);
    std::printf("shape: low rates leave buckets unbalanced (phase-3 stragglers); high\n");
    std::printf("rates pay a quadratic insertion sort of the sample in phase 1.\n");
    const bool inert = bench::verify_sanitize_off_guarantee([](simt::Device& dev) {
        auto small = workload::make_dataset(16, 500, workload::Distribution::Uniform, 2);
        gas::Options opts;
        opts.sampling_rate = 0.10;
        gas::gpu_array_sort(dev, small.values, 16, 500, opts);
    });
    return inert ? 0 : 1;
}
