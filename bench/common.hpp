#pragma once

// Shared helpers for the figure/table reproduction benches.
//
// Every bench prints the same series the paper reports.  Because the host is
// a functional simulator, runs default to a scaled N grid; pass --full to run
// the paper-scale grid (slow: hours of simulation).  Both grids report the
// *modeled* Tesla K40c milliseconds (the paper's y-axis) next to the host
// wall-clock of the simulation.

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "simt/cost_model.hpp"
#include "simt/device.hpp"

namespace bench {

/// A full simulated K40c with as many host simulation workers as the machine
/// offers (results are worker-count invariant; see simt tests).
inline simt::Device make_device() {
    return simt::Device(simt::tesla_k40c(), simt::DeviceMemory::Mode::Backed,
                        std::max(std::thread::hardware_concurrency(), 1u));
}

struct Args {
    bool full = false;      ///< run the paper-scale grid
    double scale = 1.0;     ///< extra multiplier on the N grid (power users)
    std::string csv;        ///< optional CSV output path for the series
    std::string exec;       ///< "" (auto), "scalar" or "warp" from --exec
};

inline Args parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            args.full = true;
        } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
            args.scale = std::stod(argv[++i]);
        } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
            args.csv = argv[++i];
        } else if (std::strcmp(argv[i], "--exec") == 0 && i + 1 < argc) {
            args.exec = argv[++i];
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("usage: %s [--full] [--scale F] [--csv PATH] [--exec MODE]\n",
                        argv[0]);
            std::printf("  --full    paper-scale N grid (very slow functional simulation)\n");
            std::printf("  --scale F multiply the default N grid by F\n");
            std::printf("  --csv P   also write the series as CSV to P\n");
            std::printf("  --exec M  interpreter: scalar | warp (default: scalar;\n");
            std::printf("            --full defaults to warp so paper scale is tractable)\n");
            std::exit(0);
        }
    }
    return args;
}

/// Execution mode the figure benches should run under.  The default grid is
/// pinned to the scalar reference interpreter (the committed figures were
/// produced with it, and both modes are bit-identical anyway — see the `warp`
/// ctest label); --full flips the default to the warp fast path because the
/// paper-scale grid is hours of simulation on the scalar interpreter.  An
/// explicit --exec always wins.
inline simt::ExecMode exec_mode_for(const Args& args) {
    if (args.exec == "warp") return simt::ExecMode::Warp;
    if (args.exec == "scalar") return simt::ExecMode::Scalar;
    if (!args.exec.empty()) {
        std::fprintf(stderr, "unknown --exec '%s' (want scalar|warp)\n", args.exec.c_str());
        std::exit(2);
    }
    return args.full ? simt::ExecMode::Warp : simt::ExecMode::Scalar;
}

/// Writes rows of comma-separated values with a header line; silently does
/// nothing when path is empty.
class CsvWriter {
  public:
    CsvWriter(const std::string& path, const std::string& header) {
        if (path.empty()) return;
        file_ = std::fopen(path.c_str(), "w");
        if (file_ != nullptr) std::fprintf(file_, "%s\n", header.c_str());
    }
    CsvWriter(const CsvWriter&) = delete;
    CsvWriter& operator=(const CsvWriter&) = delete;
    ~CsvWriter() {
        if (file_ != nullptr) std::fclose(file_);
    }

    template <typename... Vals>
    void row(const char* fmt, Vals... vals) {
        if (file_ == nullptr) return;
        std::fprintf(file_, fmt, vals...);
        std::fputc('\n', file_);
    }

    [[nodiscard]] bool active() const { return file_ != nullptr; }

  private:
    std::FILE* file_ = nullptr;
};

/// N grid for the runtime figures.  Paper: 5e4 .. 2e5; default: 1/40 of it,
/// which preserves the linear-in-N shape (one block per array).
inline std::vector<std::size_t> n_arrays_grid(const Args& args) {
    std::vector<std::size_t> grid;
    if (args.full) {
        grid = {50000, 75000, 100000, 125000, 150000, 175000, 200000};
    } else {
        grid = {1250, 1875, 2500, 3125, 3750, 4375, 5000};
    }
    if (args.scale != 1.0) {
        for (auto& n : grid) {
            n = static_cast<std::size_t>(static_cast<double>(n) * args.scale);
        }
    }
    return grid;
}

inline void rule(char c = '-', int width = 78) {
    for (int i = 0; i < width; ++i) std::putchar(c);
    std::putchar('\n');
}

/// Verifies the sanitizer-off guarantee over `workload` (any callable taking
/// simt::Device&): the kernel log produced with the sanitizer fully enabled
/// must match the default run bit-for-bit in every deterministic KernelStats
/// field (everything except host wall_ms).  The benches assert this so the
/// numbers they report are provably untouched by the checking machinery.
/// Prints a PASS/FAIL line; returns true on PASS.
template <typename Workload>
inline bool verify_sanitize_off_guarantee(Workload workload) {
    const auto run = [&workload](bool checked) {
        simt::Device dev = make_device();
        if (checked) dev.set_sanitize_options(simt::sanitize::SanitizeOptions::all());
        workload(dev);
        return std::vector<simt::KernelStats>(dev.kernel_log().begin(),
                                              dev.kernel_log().end());
    };
    const auto off = run(false);
    const auto on = run(true);
    bool ok = off.size() == on.size();
    for (std::size_t i = 0; ok && i < off.size(); ++i) {
        const simt::KernelStats& a = off[i];
        const simt::KernelStats& b = on[i];
        ok = a.name == b.name && a.grid_dim == b.grid_dim && a.block_dim == b.block_dim &&
             a.shared_bytes_per_block == b.shared_bytes_per_block &&
             a.totals.ops == b.totals.ops &&
             a.totals.shared_accesses == b.totals.shared_accesses &&
             a.totals.coalesced_bytes == b.totals.coalesced_bytes &&
             a.totals.random_accesses == b.totals.random_accesses &&
             a.traffic_bytes == b.traffic_bytes && a.compute_ms == b.compute_ms &&
             a.memory_ms == b.memory_ms && a.modeled_ms == b.modeled_ms;
    }
    std::printf("sanitizer-off guarantee: %s (%zu kernel log rows, default vs all-checks)\n",
                ok ? "PASS" : "FAIL", off.size());
    return ok;
}

}  // namespace bench
