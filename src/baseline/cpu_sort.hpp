#pragma once

#include <cstddef>
#include <span>

namespace baseline {

/// Sequential host reference: std::sort on each row.  Serves as the
/// correctness oracle for both GPU-ArraySort and STA, and as the "sort the
/// arrays one after the other" comparison point the paper's related-work
/// section argues against.  Returns elapsed milliseconds.
double cpu_sort_arrays(std::span<float> data, std::size_t num_arrays, std::size_t array_size);

}  // namespace baseline
