#include "baseline/sequential_sort.hpp"

#include <chrono>
#include <stdexcept>

#include "thrustlite/algorithms.hpp"
#include "thrustlite/radix_sort.hpp"

namespace baseline {

SequentialStats sequential_sort_on_device(simt::Device& device,
                                          simt::DeviceBuffer<float>& data,
                                          std::size_t num_arrays, std::size_t array_size,
                                          const thrustlite::RadixOptions& radix) {
    SequentialStats stats;
    stats.num_arrays = num_arrays;
    stats.array_size = array_size;
    if (num_arrays == 0 || array_size == 0) return stats;
    if (data.size() < num_arrays * array_size) {
        throw std::invalid_argument("sequential_sort_on_device: buffer smaller than N x n");
    }

    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t log_start = device.kernel_log().size();

    // One float->key conversion over everything, then one radix sort per
    // array — the "one after the other" pattern.
    auto keys = thrustlite::to_ordered_inplace(
        device, data.span().subspan(0, num_arrays * array_size));
    for (std::size_t a = 0; a < num_arrays; ++a) {
        thrustlite::stable_sort(device, keys.subspan(a * array_size, array_size), radix);
    }
    thrustlite::from_ordered_inplace(device,
                                     data.span().subspan(0, num_arrays * array_size));

    const auto t1 = std::chrono::steady_clock::now();
    stats.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    for (std::size_t i = log_start; i < device.kernel_log().size(); ++i) {
        stats.modeled_ms += device.kernel_log()[i].modeled_ms;
    }
    stats.kernel_launches = device.kernel_log().size() - log_start;
    stats.peak_device_bytes = device.memory().peak_bytes_in_use();
    return stats;
}

SequentialStats sequential_sort(simt::Device& device, std::span<float> host_data,
                                std::size_t num_arrays, std::size_t array_size,
                                const thrustlite::RadixOptions& radix) {
    SequentialStats stats;
    if (num_arrays == 0 || array_size == 0) return stats;
    if (host_data.size() < num_arrays * array_size) {
        throw std::invalid_argument("sequential_sort: host span smaller than N x n");
    }
    simt::DeviceBuffer<float> data(device, num_arrays * array_size);
    simt::copy_to_device(std::span<const float>(host_data), data);
    stats = sequential_sort_on_device(device, data, num_arrays, array_size, radix);
    simt::copy_to_host(data, host_data);
    return stats;
}

}  // namespace baseline
