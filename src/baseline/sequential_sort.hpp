#pragma once

#include <cstddef>
#include <span>

#include "simt/device.hpp"
#include "simt/device_buffer.hpp"
#include "thrustlite/radix_sort.hpp"

namespace baseline {

/// Cost summary of the sequential per-array technique.
struct SequentialStats {
    std::size_t num_arrays = 0;
    std::size_t array_size = 0;
    std::size_t kernel_launches = 0;
    double modeled_ms = 0.0;
    double wall_ms = 0.0;
    std::size_t peak_device_bytes = 0;
};

/// The related-work strawman the paper argues against (section 2): existing
/// 1-D GPU sorts can only handle many arrays by sorting them "one after the
/// other, thus making the process sequential in nature".  This runs the
/// thrustlite radix sort once per array: every launch pays kernel overhead
/// and leaves most of the device idle (a 1000-element sort occupies a
/// fraction of one SM's wavefront), which is exactly why a dedicated
/// many-array sort is needed.
/// `radix` is handed to every per-array sort; the default keeps key-range
/// pass pruning on.  Pass `{.prune_passes = false}` for the paper-faithful
/// fixed-8-pass strawman (its launch count is then exactly 24 N + 2).
SequentialStats sequential_sort_on_device(simt::Device& device,
                                          simt::DeviceBuffer<float>& data,
                                          std::size_t num_arrays, std::size_t array_size,
                                          const thrustlite::RadixOptions& radix = {});

/// Host wrapper (upload, sort, download).
SequentialStats sequential_sort(simt::Device& device, std::span<float> host_data,
                                std::size_t num_arrays, std::size_t array_size,
                                const thrustlite::RadixOptions& radix = {});

}  // namespace baseline
