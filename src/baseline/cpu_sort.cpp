#include "baseline/cpu_sort.hpp"

#include <algorithm>
#include <chrono>

namespace baseline {

double cpu_sort_arrays(std::span<float> data, std::size_t num_arrays, std::size_t array_size) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t a = 0; a < num_arrays; ++a) {
        auto row = data.subspan(a * array_size, array_size);
        std::sort(row.begin(), row.end());
    }
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace baseline
