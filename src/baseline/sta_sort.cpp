#include "baseline/sta_sort.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

#include "thrustlite/algorithms.hpp"
#include "thrustlite/radix_sort.hpp"

namespace sta {

namespace {

/// Sums modeled_ms of every kernel the device logged since `mark`.
class StepTimer {
  public:
    explicit StepTimer(simt::Device& device) : device_(device) {}

    double step() {
        const auto& log = device_.kernel_log();
        double ms = 0.0;
        for (std::size_t i = mark_; i < log.size(); ++i) ms += log[i].modeled_ms;
        mark_ = log.size();
        return ms;
    }

  private:
    simt::Device& device_;
    std::size_t mark_ = 0;
};

}  // namespace

StaStats sta_sort_on_device(simt::Device& device, simt::DeviceBuffer<float>& data,
                            std::size_t num_arrays, std::size_t array_size,
                            const StaOptions& opts) {
    StaStats stats;
    stats.num_arrays = num_arrays;
    stats.array_size = array_size;
    stats.data_bytes = num_arrays * array_size * sizeof(float);
    if (num_arrays == 0 || array_size == 0) return stats;
    if (data.size() < num_arrays * array_size) {
        throw std::invalid_argument("sta_sort_on_device: buffer smaller than N x n");
    }

    const std::size_t count = num_arrays * array_size;
    auto dspan = data.span().subspan(0, count);

    std::vector<float> before;
    if (opts.validate) before.assign(dspan.begin(), dspan.end());

    const auto t0 = std::chrono::steady_clock::now();
    StepTimer timer(device);
    timer.step();  // flush anything already logged

    // Step I: the tag array T (Definition 6) — doubles the footprint.
    simt::DeviceBuffer<std::uint32_t> tags(device, count);
    thrustlite::make_tags(device, tags.span(), array_size);
    stats.tag_ms = timer.step();

    // Step II (merge) is free in this layout: the rows already form one big
    // array, exactly like the paper's merged test array.

    // Reinterpret the float data as radix-ordered u32 keys, in place.
    auto keys = thrustlite::to_ordered_inplace(device, dspan);
    stats.convert_ms = timer.step();

    // Step III: stable sort (data carried) by tags — redundant but faithful.
    if (opts.include_redundant_tag_sort) {
        thrustlite::stable_sort_by_key(device, tags.span(), keys, opts.radix);
        stats.redundant_sort_ms = timer.step();
    }

    // Step IV: stable sort by the data values, tags carried along.
    thrustlite::stable_sort_by_key(device, keys, tags.span(), opts.radix);
    stats.value_sort_ms = timer.step();

    // Step V: stable sort by tags restores per-array grouping; stability
    // keeps each group's values in the sorted order established by step IV.
    thrustlite::stable_sort_by_key(device, tags.span(), keys, opts.radix);
    stats.restore_sort_ms = timer.step();

    // Back to floats.
    thrustlite::from_ordered_inplace(device, dspan);
    stats.convert_ms += timer.step();

    const auto t1 = std::chrono::steady_clock::now();
    stats.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    stats.modeled_ms = stats.tag_ms + stats.convert_ms + stats.redundant_sort_ms +
                       stats.value_sort_ms + stats.restore_sort_ms;
    stats.peak_device_bytes = device.memory().peak_bytes_in_use();

    if (opts.validate) {
        for (std::size_t a = 0; a < num_arrays; ++a) {
            const auto row = dspan.subspan(a * array_size, array_size);
            if (!std::is_sorted(row.begin(), row.end())) {
                throw std::logic_error("sta_sort: row " + std::to_string(a) + " not sorted");
            }
        }
        std::vector<float> b(before);
        std::vector<float> c(dspan.begin(), dspan.end());
        for (std::size_t a = 0; a < num_arrays; ++a) {
            std::sort(b.begin() + static_cast<std::ptrdiff_t>(a * array_size),
                      b.begin() + static_cast<std::ptrdiff_t>((a + 1) * array_size));
        }
        if (b != c) {
            throw std::logic_error("sta_sort: output is not a per-array permutation");
        }
    }
    return stats;
}

StaStats sta_sort(simt::Device& device, std::span<float> host_data, std::size_t num_arrays,
                  std::size_t array_size, const StaOptions& opts) {
    StaStats stats;
    if (num_arrays == 0 || array_size == 0) return stats;
    simt::DeviceBuffer<float> data(device, num_arrays * array_size);
    const double h2d = simt::copy_to_device(std::span<const float>(host_data), data);
    stats = sta_sort_on_device(device, data, num_arrays, array_size, opts);
    stats.h2d_ms = h2d;
    stats.d2h_ms = simt::copy_to_host(data, host_data);
    return stats;
}

std::size_t sta_footprint_bytes(std::size_t num_arrays, std::size_t array_size) {
    const std::size_t count = num_arrays * array_size;
    auto aligned = [](std::size_t b) {
        return (b + simt::DeviceMemory::kAlignment - 1) / simt::DeviceMemory::kAlignment *
               simt::DeviceMemory::kAlignment;
    };
    return aligned(count * sizeof(float)) +                       // merged data (keys in place)
           aligned(count * sizeof(std::uint32_t)) +               // tag array
           aligned(count * sizeof(std::uint32_t)) * 2 +           // radix double buffers
           aligned(thrustlite::radix_scratch_bytes(count, true) -
                   2 * count * sizeof(std::uint32_t));            // histograms
}

}  // namespace sta
