#pragma once

#include <cstdint>
#include <span>

#include "simt/device.hpp"
#include "simt/device_buffer.hpp"
#include "thrustlite/radix_sort.hpp"

namespace sta {

/// Options of the Sorting-using-Tagged-Approach baseline (paper section 7.1).
struct StaOptions {
    /// Step III of the paper's Fig. 3 — a stable sort of the merged data by
    /// the tag array — is a no-op on freshly merged input.  The paper calls
    /// STA out for exactly this kind of redundant work and times the full
    /// procedure, so the faithful default is to run it.
    bool include_redundant_tag_sort = true;
    bool validate = false;
    /// Passed to every stable_sort_by_key.  Default leaves key-range pass
    /// pruning on (the production path: the tag sorts cover only
    /// [0, num_arrays), so most of their 8 passes are provably redundant).
    /// The paper-reproduction benches (fig4-fig7) set
    /// `radix.prune_passes = false` to model Thrust's fixed 8-pass sort.
    thrustlite::RadixOptions radix{};
};

/// Cost breakdown of one STA run.
struct StaStats {
    std::size_t num_arrays = 0;
    std::size_t array_size = 0;
    std::size_t data_bytes = 0;
    std::size_t peak_device_bytes = 0;  ///< data + tags + radix scratch (~3x data)

    // Modeled device ms per step (paper Fig. 3 steps).
    double tag_ms = 0.0;            ///< I: build the tag array
    double convert_ms = 0.0;        ///< float <-> ordered-key reinterpretation
    double redundant_sort_ms = 0.0; ///< III: stable sort by tags (no-op work)
    double value_sort_ms = 0.0;     ///< IV: stable sort by data values
    double restore_sort_ms = 0.0;   ///< V: stable sort by tags (restores grouping)

    double modeled_ms = 0.0;  ///< total modeled device time
    double wall_ms = 0.0;     ///< host wall clock of the simulation
    double h2d_ms = 0.0;
    double d2h_ms = 0.0;
};

/// Sorts N device-resident arrays of n floats (row-major in `data`) with the
/// tagged Thrust technique the paper compares against: build tags, merge
/// (rows are already merged in this layout), stable sort by tags, stable
/// sort by values, stable sort by tags again to restore grouping.
StaStats sta_sort_on_device(simt::Device& device, simt::DeviceBuffer<float>& data,
                            std::size_t num_arrays, std::size_t array_size,
                            const StaOptions& opts = {});

/// Host wrapper: upload, run, download.
StaStats sta_sort(simt::Device& device, std::span<float> host_data, std::size_t num_arrays,
                  std::size_t array_size, const StaOptions& opts = {});

/// Device bytes an STA run of (N x n) occupies at peak, including the data —
/// the Table 1 capacity model for the baseline.
[[nodiscard]] std::size_t sta_footprint_bytes(std::size_t num_arrays, std::size_t array_size);

}  // namespace sta
