#pragma once

#include <cstddef>

namespace gas::health {

/// Knobs for the closed-loop health subsystem (gas::health), carried by
/// ServerConfig::health.  `enabled=false` (the default) turns every hook
/// off: no watchdog thread, no probes, no shedding, no hedging — the server
/// behaves bit-for-bit like a build without the subsystem.
struct HealthConfig {
    bool enabled = false;

    // ---- watchdog ---------------------------------------------------------
    /// Poll cadence of the monitor thread (async mode only; manual_pump has
    /// no watchdog thread — hangs abort deterministically at the handler).
    double watchdog_poll_ms = 1.0;
    /// A shard with a batch in flight whose device heartbeat has not moved
    /// for this long is declared stalled: its hang handler aborts the
    /// launch and the shard is demoted to Degraded.
    double stall_deadline_ms = 8.0;

    // ---- probes / state machine ------------------------------------------
    /// How often a quarantined shard's scheduler wakes to run a probe sort
    /// (async mode; under manual_pump one probe runs per pump() call).
    double probe_interval_ms = 5.0;
    /// Consecutive probe passes required to leave Quarantined for Probation.
    unsigned probe_passes = 2;
    /// Clean batches served in Probation before full Healthy re-admission.
    unsigned probation_batches = 3;
    /// Consecutive clean batches that clear a Degraded mark.
    unsigned degraded_clear_batches = 2;
    /// Probe workload shape: arrays x array_size of seeded floats, sorted on
    /// the device and verified on the host (sortedness + multiset checksum).
    std::size_t probe_arrays = 4;
    std::size_t probe_array_size = 64;

    // ---- routing ----------------------------------------------------------
    /// LeastLoaded weight of a Degraded shard (1.0 = no penalty).
    double degraded_weight = 0.5;
    /// Starting LeastLoaded weight of a shard in Probation; ramps linearly
    /// to 1.0 as probation_batches complete.
    double probation_base_weight = 0.25;
    /// EWMA weight for the smoothed queued-elements signal fed to the router.
    double load_alpha = 0.2;

    // ---- overload / brownout ---------------------------------------------
    /// Typed Shed rejections replace Block/Reject when the queue is full
    /// (oldest request of the lowest-priority class is dropped first).
    bool shed_enabled = true;
    /// Brownout ladder escalation thresholds on smoothed queue occupancy
    /// (queued / capacity): L1 skips response verification, L2 shrinks the
    /// coalescing window (no linger, quartered batch cap), L3 sheds
    /// incoming low-priority work.
    double brownout_l1 = 0.55;
    double brownout_l2 = 0.75;
    double brownout_l3 = 0.90;
    /// De-escalation happens only below (threshold - hysteresis), one level
    /// per update, so the ladder does not flap around a threshold.
    double brownout_hysteresis = 0.20;
    /// CoDel-style sojourn bound: while the ladder sits at L2+, a queued
    /// low-priority request older than this sheds instead of being served
    /// (async mode only — the bound is wall-clock, so manual_pump skips it
    /// to stay deterministic).
    double shed_sojourn_ms = 25.0;

    // ---- straggler hedging ------------------------------------------------
    /// Re-submit a batch stuck on a Degraded/stalled shard onto a healthy
    /// one, first result wins (async mode only; requires input snapshots).
    bool hedge_enabled = true;
    /// Hedge deadline = hedge_factor x wall-latency p99, floored at
    /// hedge_min_ms (the floor also covers the empty-digest cold start).
    double hedge_factor = 3.0;
    double hedge_min_ms = 10.0;
};

}  // namespace gas::health
