#pragma once

#include <array>

namespace gas::health {

/// The brownout ladder: a small hysteresis automaton over smoothed queue
/// occupancy (queued / capacity, in [0, 1]).  Levels degrade service
/// quality to protect latency:
///   0 — normal service
///   1 — skip response verification (cheapest work to shed)
///   2 — shrink the micro-batch coalescing window (no linger, small caps)
///   3 — shed incoming low-priority requests
/// Escalation jumps straight to the highest level whose threshold is met;
/// de-escalation steps down one level at a time and only once occupancy has
/// fallen `hysteresis` below that level's threshold, so the ladder cannot
/// flap around a boundary.
class Brownout {
  public:
    struct Config {
        double l1 = 0.55;
        double l2 = 0.75;
        double l3 = 0.90;
        double hysteresis = 0.20;
    };

    Brownout() = default;
    explicit Brownout(Config cfg) : cfg_(cfg) {}

    [[nodiscard]] int level() const { return level_; }

    /// Feed one occupancy sample; returns the signed level change
    /// (+n escalated, -1 de-escalated one step, 0 unchanged).
    int update(double occupancy) {
        const std::array<double, 4> up{0.0, cfg_.l1, cfg_.l2, cfg_.l3};
        int target = 0;
        for (int l = 3; l >= 1; --l) {
            if (occupancy >= up[static_cast<std::size_t>(l)]) {
                target = l;
                break;
            }
        }
        const int before = level_;
        if (target > level_) {
            level_ = target;
        } else if (level_ > 0 &&
                   occupancy < up[static_cast<std::size_t>(level_)] - cfg_.hysteresis) {
            --level_;
        }
        return level_ - before;
    }

  private:
    Config cfg_;
    int level_ = 0;
};

}  // namespace gas::health
