#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "simt/device.hpp"

namespace gas::health {

/// Outcome of one seeded probe sort on a quarantined device.
struct ProbeResult {
    bool pass = false;
    std::size_t arrays = 0;
    std::size_t array_size = 0;
    std::string error;  ///< why the probe failed (empty on pass)
};

/// Runs one end-to-end canary sort on `device`: seeded data is generated on
/// the host, sorted through the full gpu_array_sort pipeline, and verified
/// on the host — every row sorted ascending AND the PR 5 multiset checksum
/// of every row preserved, so a device that sorts "successfully" but mangles
/// bytes still fails its probe.  Any exception out of the device (refused
/// launch, bad alloc, corruption, sanitize finding) is a failed probe, not
/// an error: that is the probe's job.
///
/// Must be called from the thread that owns the device (the shard's
/// scheduler), per the substrate's single-caller contract.
[[nodiscard]] ProbeResult run_probe(simt::Device& device, std::uint64_t seed,
                                    std::size_t arrays = 4, std::size_t array_size = 64);

}  // namespace gas::health
