#include "health/probe.hpp"

#include <algorithm>
#include <span>
#include <vector>

#include "core/gpu_array_sort.hpp"
#include "core/options.hpp"
#include "core/resilient.hpp"

namespace gas::health {

ProbeResult run_probe(simt::Device& device, std::uint64_t seed, std::size_t arrays,
                      std::size_t array_size) {
    ProbeResult r;
    r.arrays = std::max<std::size_t>(arrays, 1);
    r.array_size = std::max<std::size_t>(array_size, 2);

    // Seeded data in (0, 1]: deterministic per (seed, index), no NaNs.
    std::vector<float> data(r.arrays * r.array_size);
    for (std::size_t i = 0; i < data.size(); ++i) {
        const std::uint64_t h = resilient::mix64(seed ^ (i + 1));
        data[i] = static_cast<float>((h >> 40) + 1) / static_cast<float>(1ull << 24);
    }
    const std::vector<std::uint64_t> before =
        resilient::host_row_checksums(std::span<const float>(data), r.arrays, r.array_size);

    try {
        Options opts;
        opts.verify_output = false;  // the probe verifies on the host instead
        opts.auto_tune = false;
        gpu_array_sort(device, std::span<float>(data), r.arrays, r.array_size, opts);
    } catch (const std::exception& e) {
        r.error = e.what();
        return r;
    }

    const std::vector<std::uint64_t> after =
        resilient::host_row_checksums(std::span<const float>(data), r.arrays, r.array_size);
    for (std::size_t a = 0; a < r.arrays; ++a) {
        const auto row = std::span<const float>(data).subspan(a * r.array_size, r.array_size);
        if (!std::is_sorted(row.begin(), row.end())) {
            r.error = "probe row " + std::to_string(a) + " not sorted";
            return r;
        }
        if (before[a] != after[a]) {
            r.error = "probe row " + std::to_string(a) + " multiset checksum mismatch";
            return r;
        }
    }
    r.pass = true;
    return r;
}

}  // namespace gas::health
