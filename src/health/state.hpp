#pragma once

#include <algorithm>
#include <cstdint>

namespace gas::health {

/// Per-device health states.  PR 7's quarantine was one-way (Healthy →
/// quarantined forever); this machine closes the loop:
///
///   Healthy --transient fault/hang--> Degraded
///   Degraded --clean streak--> Healthy
///   any --retries exhausted--> Quarantined
///   Quarantined --K consecutive probe passes--> Probation
///   Probation --M clean batches--> Healthy
///   Probation --any failure--> Quarantined
enum class State : std::uint8_t { Healthy, Degraded, Quarantined, Probation };

[[nodiscard]] inline const char* to_string(State s) {
    switch (s) {
        case State::Healthy: return "healthy";
        case State::Degraded: return "degraded";
        case State::Quarantined: return "quarantined";
        case State::Probation: return "probation";
    }
    return "?";
}

/// The state machine for one shard.  Purely host-side bookkeeping — the
/// caller (gas::serve) drives it from its own lock and is responsible for
/// counting the transitions the event methods report.
class Machine {
  public:
    struct Config {
        unsigned probe_passes = 2;        ///< K: Quarantined -> Probation
        unsigned probation_batches = 3;   ///< M: Probation -> Healthy
        unsigned degraded_clear_batches = 2;
        double degraded_weight = 0.5;
        double probation_base_weight = 0.25;
    };

    Machine() = default;
    explicit Machine(Config cfg) : cfg_(cfg) {}

    [[nodiscard]] State state() const { return state_; }

    /// A transient fault (refused launch, aborted hang, detected corruption,
    /// failed verify) survived by retry.  Returns true when this demoted a
    /// Healthy shard to Degraded.
    bool on_transient_fault() {
        clean_streak_ = 0;
        if (state_ == State::Healthy) {
            state_ = State::Degraded;
            return true;
        }
        return false;
    }

    /// Retries exhausted (or probation failed): the shard is pulled from
    /// rotation.  Returns true when the state actually changed.
    bool on_quarantine() {
        clean_streak_ = 0;
        probe_streak_ = 0;
        probation_done_ = 0;
        if (state_ == State::Quarantined) return false;
        state_ = State::Quarantined;
        return true;
    }

    /// A seeded probe sort on the quarantined device verified clean.
    /// Returns true when this completed the K-streak and promoted the shard
    /// to Probation.
    bool on_probe_pass() {
        if (state_ != State::Quarantined) return false;
        if (++probe_streak_ < cfg_.probe_passes) return false;
        state_ = State::Probation;
        probe_streak_ = 0;
        probation_done_ = 0;
        return true;
    }

    void on_probe_fail() { probe_streak_ = 0; }

    /// A real batch completed verified-clean on this shard.  Returns true
    /// when this restored the shard to Healthy (from Probation after M
    /// batches, or from Degraded after the clear streak).
    bool on_clean_batch() {
        if (state_ == State::Probation) {
            if (++probation_done_ < cfg_.probation_batches) return false;
            state_ = State::Healthy;
            probation_done_ = 0;
            return true;
        }
        if (state_ == State::Degraded) {
            if (++clean_streak_ < cfg_.degraded_clear_batches) return false;
            state_ = State::Healthy;
            clean_streak_ = 0;
            return true;
        }
        return false;
    }

    /// LeastLoaded routing weight: 1.0 when Healthy, a flat penalty when
    /// Degraded, a linear ramp from probation_base_weight to 1.0 across the
    /// probation window, 0.0 when Quarantined (never routed anyway).
    [[nodiscard]] double route_weight() const {
        switch (state_) {
            case State::Healthy: return 1.0;
            case State::Degraded: return cfg_.degraded_weight;
            case State::Quarantined: return 0.0;
            case State::Probation: {
                const double span = 1.0 - cfg_.probation_base_weight;
                const double frac =
                    cfg_.probation_batches == 0
                        ? 1.0
                        : static_cast<double>(probation_done_) /
                              static_cast<double>(cfg_.probation_batches);
                return cfg_.probation_base_weight + span * std::min(frac, 1.0);
            }
        }
        return 1.0;
    }

  private:
    Config cfg_;
    State state_ = State::Healthy;
    unsigned probe_streak_ = 0;     ///< consecutive probe passes while Quarantined
    unsigned probation_done_ = 0;   ///< clean batches served while in Probation
    unsigned clean_streak_ = 0;     ///< consecutive clean batches while Degraded
};

}  // namespace gas::health
