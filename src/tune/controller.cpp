#include "tune/controller.hpp"

#include <algorithm>

#include "tune/ewma.hpp"

namespace gas::tune {

Plan Controller::choose(const Sketch& sketch, std::size_t array_size,
                        const Options& base, const simt::DeviceProperties& props) {
    if (!cfg_.enabled || !base.auto_tune || sketch.empty() || array_size == 0) {
        Plan plan;
        plan.opts = base;
        plan.candidate = "paper-default";
        plan.regime = classify(sketch);
        return plan;
    }

    aggregate_.merge(sketch);
    ++decisions_;

    const Regime regime = classify(sketch);
    std::vector<Candidate> candidates = make_candidates(sketch, array_size, base, props);

    // Seed unseen cells with the planner's prediction; refresh the
    // prediction on cells that have never been observed (the concretized
    // candidate can drift as the aggregate sketch sharpens).
    for (const Candidate& c : candidates) {
        Cell& cell = cells_[{regime, c.name}];
        if (cell.observations == 0) cell.predicted = c.predicted_cost;
    }

    // Rank by learned score.
    std::size_t best = 0;
    for (std::size_t i = 1; i < candidates.size(); ++i) {
        const double s = cells_[{regime, candidates[i].name}].score();
        if (s < cells_[{regime, candidates[best].name}].score()) best = i;
    }

    // Hysteresis: keep the regime's incumbent unless the challenger's score
    // undercuts it by the margin.
    auto inc = incumbent_.find(regime);
    std::size_t chosen = best;
    if (inc != incumbent_.end() && candidates[best].name != inc->second) {
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            if (candidates[i].name != inc->second) continue;
            const double challenger = cells_[{regime, candidates[best].name}].score();
            const double holder = cells_[{regime, candidates[i].name}].score();
            if (challenger >= holder * (1.0 - cfg_.hysteresis)) chosen = i;
            break;
        }
    }

    if (inc == incumbent_.end()) {
        incumbent_[regime] = candidates[chosen].name;
    } else if (inc->second != candidates[chosen].name) {
        inc->second = candidates[chosen].name;
        ++plan_switches_;
    }

    Plan plan;
    plan.regime = regime;
    plan.opts = candidates[chosen].opts;
    plan.candidate = candidates[chosen].name;
    plan.predicted_cost = candidates[chosen].predicted_cost;
    plan.considered = std::move(candidates);
    return plan;
}

void Controller::observe(Regime regime, const std::string& candidate, double modeled_ms,
                         std::size_t elements, const simt::DeviceProperties& props) {
    if (!cfg_.enabled || elements == 0) return;
    // Normalize the observation onto the planner's scale (cycles/element)
    // so seeds and observations rank against each other: modeled ms =
    // cycles / (clock MHz) x derate.
    const double cycles_per_ms =
        props.core_clock_ghz * 1e6 / std::max(1e-9, props.efficiency_derate);
    const double cost =
        modeled_ms * cycles_per_ms / static_cast<double>(elements);
    Cell& cell = cells_[{regime, candidate}];
    cell.observed_ewma = cell.observations == 0
                             ? cost
                             : ewma_step(cell.observed_ewma, cost, cfg_.alpha);
    ++cell.observations;
}

std::vector<double> Controller::key_bands(std::size_t shards) const {
    std::vector<double> bands;
    if (shards < 2 || aggregate_.sampled == 0) return bands;
    const auto total = static_cast<double>(aggregate_.sampled);
    const double bin_width =
        aggregate_.key_space / static_cast<double>(Sketch::kBins);
    double cum = 0.0;
    std::size_t next = 1;
    for (std::size_t b = 0; b < Sketch::kBins && next < shards; ++b) {
        const auto mass = static_cast<double>(aggregate_.histogram[b]);
        while (next < shards) {
            const double target =
                total * static_cast<double>(next) / static_cast<double>(shards);
            if (cum + mass < target) break;
            // Linear interpolation inside the bin for the split key.
            const double frac = mass > 0.0 ? (target - cum) / mass : 0.0;
            bands.push_back((static_cast<double>(b) + frac) * bin_width);
            ++next;
        }
        cum += mass;
    }
    while (next++ < shards) bands.push_back(aggregate_.key_space);
    return bands;
}

std::vector<Controller::CellView> Controller::cells() const {
    std::vector<CellView> out;
    out.reserve(cells_.size());
    for (const auto& [key, cell] : cells_) {
        CellView v;
        v.regime = key.first;
        v.candidate = key.second;
        v.predicted = cell.predicted;
        v.observed_ewma = cell.observed_ewma;
        v.observations = cell.observations;
        auto inc = incumbent_.find(key.first);
        v.incumbent = inc != incumbent_.end() && inc->second == key.second;
        out.push_back(std::move(v));
    }
    return out;
}

}  // namespace gas::tune
