#include "tune/planner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/gpu_array_sort.hpp"
#include "core/plan.hpp"
#include "core/tune.hpp"

namespace gas::tune {

namespace {

/// Regime thresholds.  A uniform histogram puts ~1/kBins in every bin; a
/// hot band concentrated in one or two bins pushes hot_fraction far past
/// that.  Shuffled data sits near sortedness 0.5.
constexpr double kFewDistinctRatio = 0.05;  ///< distinct/sampled below this
constexpr double kSortednessCut = 0.85;     ///< ascending-pair fraction above this
constexpr double kHotFractionCut = 0.35;    ///< heaviest-bin mass above this

/// Floor on the quadratic discounts: even sorted or constant buckets pay a
/// few compares per element.
constexpr double kQuadFloor = 0.02;

/// A sampling rate that always clamps to the make_plan floor (sample = p).
constexpr double kLeanRate = 1e-3;

bool same_shape(const Options& a, const Options& b) {
    return a.bucket_target == b.bucket_target && a.sampling_rate == b.sampling_rate &&
           a.strategy == b.strategy &&
           a.phase3_small_cutoff == b.phase3_small_cutoff &&
           a.phase3_bitonic_cutoff == b.phase3_bitonic_cutoff;
}

bool is_prime(std::size_t q) {
    if (q < 2) return false;
    for (std::size_t d = 2; d * d <= q; ++d) {
        if (q % d == 0) return false;
    }
    return true;
}

/// Sketch-derived discounts on the quadratic insertion terms.
struct Discounts {
    double inv = 1.0;    ///< inversion density (1 = shuffled, ~0 = sorted)
    double dup = 1.0;    ///< duplicate discount on inversions, 1 - 1/m
    double quad1 = 1.0;  ///< phase-1 sample-sort scale (inv x dup)
};

Discounts discounts_of(const Sketch& sketch) {
    Discounts d;
    d.inv = std::clamp(2.0 * (1.0 - sketch.sortedness), kQuadFloor, 1.0);
    // A shuffled m-valued array has ~(1 - 1/m) of a distinct-valued array's
    // inversions (equal pairs are never inverted).
    d.dup = 1.0 - 1.0 / std::max(1.0, sketch.distinct_estimate());
    d.quad1 = std::max(kQuadFloor, d.inv * d.dup);
    return d;
}

/// Modeled wall cycles of sorting one k-element bucket under the hybrid
/// cutover rules, with the data-dependent quadratic terms scaled by `quad`.
/// The bitonic term is NOT discounted: the network does identical work
/// regardless of input order.
double bucket_cycles(double k, const Options& opts, double quad,
                     const simt::DeviceProperties& props) {
    if (k <= 1.0) return props.cpi * 2.0;
    const double ins = props.cpi * (quad * k * k / 2.0 + 2.0 * k);
    if (!opts.hybrid_phase3 || k <= static_cast<double>(opts.phase3_small_cutoff)) {
        return ins;
    }
    const double binins = props.cpi * (k * std::log2(k) + quad * k * k / 4.0 + 2.0 * k);
    double best = std::min(ins, binins);
    if (k > static_cast<double>(opts.phase3_bitonic_cutoff)) {
        best = std::min(best,
                        modeled_bitonic_cycles(static_cast<std::size_t>(k), 32, props));
    }
    return best + props.cpi * 4.0;  // scheduling-pass share
}

}  // namespace

std::string to_string(Regime r) {
    switch (r) {
        case Regime::Uniform: return "uniform";
        case Regime::Skewed: return "skewed";
        case Regime::FewDistinct: return "few-distinct";
        case Regime::NearlySorted: return "nearly-sorted";
    }
    return "uniform";
}

Regime classify(const Sketch& sketch) {
    if (sketch.empty()) return Regime::Uniform;
    // Duplicates first: a constant input is also perfectly "sorted", but the
    // winning plan is the duplicate-aware one.
    if (sketch.distinct_ratio < kFewDistinctRatio) return Regime::FewDistinct;
    if (sketch.sortedness >= kSortednessCut) return Regime::NearlySorted;
    if (sketch.hot_fraction() >= kHotFractionCut) return Regime::Skewed;
    return Regime::Uniform;
}

double predicted_cost_per_element(const Sketch& sketch, std::size_t array_size,
                                  const Options& opts,
                                  const simt::DeviceProperties& props) {
    if (array_size == 0) return 0.0;
    const SortPlan plan = make_plan(array_size, opts, props);
    const auto n = static_cast<double>(array_size);
    const auto p = static_cast<double>(plan.buckets);
    const auto s = static_cast<double>(plan.sample_size);
    const Discounts d = discounts_of(sketch);

    // Phase 1: one serial lane per array — strided sample loads, an
    // insertion sort of the sample (the strided sample inherits the row's
    // sortedness and duplicates), splitter writes.
    const double phase1 =
        props.cpi * (3.0 * s + d.quad1 * s * s / 2.0 + 2.0 * s + p + 1.0);

    // Phase 2 wall: scan-per-thread has every one of the p threads scan all
    // n elements, so the block's wall is ~2n regardless of p; the
    // binary-search strategy scans an n/p chunk per thread with a log p
    // probe per element.
    const double phase2 =
        opts.strategy == BucketingStrategy::ScanPerThread
            ? props.cpi * (2.0 * n + 2.0 * (n / p))
            : props.cpi * ((n / p) * (std::log2(std::max(2.0, p)) + 2.0) +
                           2.0 * (n / p));

    // Phase 3 wall: the largest bucket serializes its lane.  Three sources:
    //  * splitter roughness — a minimal sample's splitters are noisier;
    //  * an aliased hot band — band mass the regular sample MISSES because
    //    a periodic adversary hides from a composite stride.  Only distinct
    //    values can hide this way (duplicate mass is hit by any sample), so
    //    the term scales with the observed distinct ratio and vanishes for
    //    a prime stride;
    //  * duplicate runs — no splitter can subdivide equal keys, so one
    //    value's mass (~n/m) shares a bucket; harmless, since insertion
    //    over equals is near-linear, which the discount below reflects.
    const double k_avg = n / p;
    const double rough = s >= 2.0 * p ? 2.5 : 4.0;
    const double k_max = std::min(n, k_avg * rough);
    const std::size_t stride =
        std::max<std::size_t>(1, array_size / std::max<std::size_t>(1, plan.sample_size));
    const bool aliasable = stride >= 2 && !is_prime(stride);
    const double hot_excess = std::max(
        0.0, sketch.hot_fraction() - 2.0 / static_cast<double>(Sketch::kBins));
    const double m = sketch.distinct_estimate();
    const double k_alias =
        hot_excess * sketch.distinct_ratio * n * (aliasable ? 1.0 : 0.05);
    const double k_dup = n / m;
    const double k_big = std::min(n, std::max({k_max, k_alias, k_dup}));
    // Distinct values inside the big bucket: its share of the row's m.
    const double big_bucket_distinct = std::max(1.0, m * k_big / n);
    const double dup3 = 1.0 - 1.0 / big_bucket_distinct;
    const double quad3 = std::max(kQuadFloor, d.inv * dup3);
    const double phase3 =
        bucket_cycles(k_big, opts, quad3, props) + props.cpi * 2.0 * k_avg;

    return (phase1 + phase2 + phase3) / n;
}

std::vector<Candidate> make_candidates(const Sketch& sketch, std::size_t array_size,
                                       const Options& base,
                                       const simt::DeviceProperties& props) {
    std::vector<Candidate> out;
    auto score = [&](const Options& o) {
        return predicted_cost_per_element(sketch, array_size, o, props);
    };
    // Non-default candidates take the modeled-cheaper phase-2 strategy.
    auto add = [&](std::string name, Options o, bool pick_strategy) {
        if (pick_strategy) {
            Options alt = o;
            alt.strategy = o.strategy == BucketingStrategy::ScanPerThread
                               ? BucketingStrategy::BinarySearch
                               : BucketingStrategy::ScanPerThread;
            if (score(alt) < score(o)) o = alt;
        }
        for (const Candidate& c : out) {
            if (same_shape(c.opts, o)) return;  // collapsed onto an earlier plan
        }
        out.push_back(Candidate{std::move(name), o, score(o)});
    };

    add("paper-default", base, false);
    if (array_size == 0 || sketch.empty()) return out;

    {
        Options o = base;
        o.sampling_rate = kLeanRate;
        add("lean-sample", o, true);
    }
    {
        // Largest prime stride not above the base plan's stride: same
        // sample-size scale as lean, but immune to periodic aliasing.
        const SortPlan bp = make_plan(array_size, base, props);
        std::size_t q = std::max<std::size_t>(
            1, array_size / std::max<std::size_t>(1, bp.buckets));
        while (q > 2 && !is_prime(q)) --q;
        if (q >= 3) {
            Options o = base;
            o.sampling_rate = static_cast<double>(array_size / q) /
                              static_cast<double>(array_size);
            add("hot-split", o, true);
        }
    }
    {
        // Line search over bucket-target multipliers with a lean sample:
        // wider buckets shrink the sample floor (s = p) further when the
        // sketch says big buckets stay cheap.
        Options best = base;
        best.sampling_rate = kLeanRate;
        double best_cost = score(best);
        for (const std::size_t mult : {2, 4, 8}) {
            Options o = base;
            o.sampling_rate = kLeanRate;
            o.bucket_target = std::min(base.bucket_target * mult, array_size);
            const double c = score(o);
            if (c < best_cost) {
                best_cost = c;
                best = o;
            }
        }
        add("balanced", best, true);
    }
    {
        Options o = base;
        o.sampling_rate = kLeanRate;
        o.bucket_target = std::min(base.bucket_target * 8, array_size);
        if (o.hybrid_phase3) {
            const Phase3Tuning t = tune_sort_phase(props, 32, o.bucket_target);
            o.phase3_small_cutoff = t.small_cutoff;
            o.phase3_bitonic_cutoff = t.bitonic_cutoff;
        }
        add("run-length", o, true);
    }
    return out;
}

Plan plan_sort(const Sketch& sketch, std::size_t array_size, const Options& base,
               const simt::DeviceProperties& props) {
    Plan plan;
    plan.regime = classify(sketch);
    plan.considered = make_candidates(sketch, array_size, base, props);
    std::size_t win = 0;
    for (std::size_t i = 1; i < plan.considered.size(); ++i) {
        if (plan.considered[i].predicted_cost < plan.considered[win].predicted_cost) {
            win = i;
        }
    }
    plan.opts = plan.considered[win].opts;
    plan.candidate = plan.considered[win].name;
    plan.predicted_cost = plan.considered[win].predicted_cost;
    return plan;
}

Options auto_tuned_options(std::span<const float> values, std::size_t num_arrays,
                           std::size_t array_size, const Options& base,
                           const simt::DeviceProperties& props) {
    if (!base.auto_tune || num_arrays == 0 || array_size == 0) return base;
    const Sketch sketch = sketch_values(values, num_arrays, array_size);
    if (sketch.empty()) return base;
    return plan_sort(sketch, array_size, base, props).opts;
}

TunedSortResult tuned_sort(simt::Device& device, std::span<float> values,
                           std::size_t num_arrays, std::size_t array_size,
                           const Options& base) {
    TunedSortResult result;
    result.plan.opts = base;
    result.plan.candidate = "paper-default";
    if (base.auto_tune && num_arrays > 0 && array_size > 0) {
        result.sketch = sketch_values(values, num_arrays, array_size);
        if (!result.sketch.empty()) {
            result.plan = plan_sort(result.sketch, array_size, base, device.props());
            result.sketch_modeled_ms = modeled_sketch_ms(result.sketch, device.props());
        }
    }
    result.stats =
        gpu_array_sort(device, values, num_arrays, array_size, result.plan.opts);
    return result;
}

}  // namespace gas::tune
