#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "core/sort_stats.hpp"
#include "simt/device.hpp"
#include "tune/sketch.hpp"

namespace gas::tune {

/// Input regimes the planner and controller distinguish.  Deliberately
/// coarse: each regime maps to one family of plan shapes, and the serve
/// controller keeps one (regime x candidate) cost cell per pair.
enum class Regime : std::uint8_t { Uniform, Skewed, FewDistinct, NearlySorted };
inline constexpr std::size_t kRegimes = 4;

[[nodiscard]] std::string to_string(Regime r);

/// Maps a sketch to its regime: duplicate density first (a constant or
/// few-distinct input is "sorted-looking" too), then pre-sortedness, then
/// histogram skew, defaulting to Uniform.
[[nodiscard]] Regime classify(const Sketch& sketch);

/// One concrete plan the planner weighed: a named strategy, the Options it
/// concretizes to for this sketch, and its modeled cost.
struct Candidate {
    std::string name;
    Options opts;
    double predicted_cost = 0.0;  ///< modeled cycles per element
};

/// The planner's decision for one (sketch, geometry) pair.
struct Plan {
    Options opts;                       ///< winning candidate's options
    std::string candidate;              ///< its name
    Regime regime = Regime::Uniform;
    double predicted_cost = 0.0;        ///< winning modeled cycles/element
    std::vector<Candidate> considered;  ///< every candidate, scored
};

/// The named strategies, concretized for this sketch and geometry.  Every
/// candidate derives from `base` (only the sort-shaping knobs change), and
/// each targets one regime's modeled wall-cost structure (phase 1's sample
/// insertion sort is serial per array, so it dominates the paper's defaults;
/// phase 2's scan is p-independent wall time; phase 3's wall is set by the
/// largest bucket):
///  * paper-default — base untouched (the paper's 20-element buckets, 10%
///    sampling; always first, so ties keep today's behaviour);
///  * lean-sample   — the minimum regular sample (make_plan clamps it to p),
///    cutting the quadratic serial sample sort; the hybrid phase 3 absorbs
///    the slightly rougher splitters.  The uniform-regime workhorse;
///  * hot-split     — lean sampling with the sample size chosen so the
///    stride n/s is PRIME: a periodic hot-band adversary that hides from a
///    composite stride (the ZipfHot generator's decoy trick) aliases with
///    stride 10 but not with stride 19, so the splitters land inside the
///    band and the hot bucket dissolves.  The skew-regime answer;
///  * balanced      — bucket target from a modeled-cost line search (lean
///    sample, base cutoffs): fewer, wider buckets shrink the sample floor
///    further when duplication or presortedness makes big buckets cheap;
///  * run-length    — 8x wider buckets WITH re-tuned cutoffs (insertion on
///    nearly-sorted buckets is O(k + inversions), beating the oblivious
///    bitonic network), for the nearly-sorted regime.
/// Non-default candidates also take the modeled-cheaper phase-2 strategy
/// (the binary-search scan's (n/p) log p wall beats scan-per-thread's 2n).
[[nodiscard]] std::vector<Candidate> make_candidates(const Sketch& sketch,
                                                     std::size_t array_size,
                                                     const Options& base,
                                                     const simt::DeviceProperties& props);

/// Modeled wall cycles per element of one full 3-phase sort of an
/// `array_size` array under `opts`, conditioned on the sketch.  Wall, not
/// work: phase 1 is one serial lane per array (quadratic in the sample,
/// discounted by observed pre-sortedness and duplicate density), phase 2 is
/// the per-thread scan wall (p-independent for scan-per-thread, (n/p) log p
/// for binary search), and phase 3 is the largest bucket's cost under the
/// hybrid cutover rules (mirrored via core/tune's modeled_*_cycles), with
/// an unresolved-hot-band term that vanishes when the sampling stride is
/// prime (no aliasing with a periodic adversary).
[[nodiscard]] double predicted_cost_per_element(const Sketch& sketch,
                                               std::size_t array_size, const Options& opts,
                                               const simt::DeviceProperties& props);

/// Scores every candidate and returns the argmin (ties keep the earliest,
/// i.e. paper-default).
[[nodiscard]] Plan plan_sort(const Sketch& sketch, std::size_t array_size,
                             const Options& base, const simt::DeviceProperties& props);

/// Sketch + plan in one step: the Options a tuned sort of this data should
/// use.  Returns `base` verbatim (bit-for-bit) when base.auto_tune is off —
/// the seed behaviour — or when the sketch is empty.
[[nodiscard]] Options auto_tuned_options(std::span<const float> values,
                                         std::size_t num_arrays, std::size_t array_size,
                                         const Options& base,
                                         const simt::DeviceProperties& props);

/// A tuned gpu_array_sort: sketch -> plan -> sort, returning the sketch and
/// plan next to the SortStats so callers (bench, tests, CLIs) can audit the
/// decision.  With base.auto_tune off this is exactly gpu_array_sort(base):
/// same bytes, same kernel log, same stats.
struct TunedSortResult {
    Sketch sketch;
    Plan plan;
    SortStats stats;
    double sketch_modeled_ms = 0.0;  ///< modeled_sketch_ms (0 when auto_tune off)
};

TunedSortResult tuned_sort(simt::Device& device, std::span<float> values,
                           std::size_t num_arrays, std::size_t array_size,
                           const Options& base);

}  // namespace gas::tune
