#pragma once

namespace gas::tune {

/// One exponentially weighted moving-average step:
///     next = (1 - alpha) * prev + alpha * sample
/// Shared by the tune controller's observed-cost cells, the serve layer's
/// queue-depth smoothing, and the health subsystem's load/occupancy signals,
/// so every smoothed metric in the repo blends the same way.
[[nodiscard]] constexpr double ewma_step(double prev, double sample, double alpha) {
    return (1.0 - alpha) * prev + alpha * sample;
}

/// A self-priming EWMA: the first sample seeds the average directly (no
/// decay from an arbitrary zero), later samples blend with `alpha` weight
/// on the newest observation.
struct Ewma {
    double alpha = 0.2;
    double value = 0.0;
    bool primed = false;

    void update(double sample) {
        value = primed ? ewma_step(value, sample, alpha) : sample;
        primed = true;
    }
};

}  // namespace gas::tune
