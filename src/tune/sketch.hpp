#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "simt/device_properties.hpp"

namespace gas::tune {

/// Cheap per-request distribution sketch (DESIGN.md section 14).
///
/// Phase-1-style regular sampling on the host copy of a request: a strided
/// pass (capped at kMaxSamples values) feeds a coarse fixed-domain key
/// histogram, min/max keys and a distinct-ratio estimate, and a short
/// consecutive-prefix pass per row estimates pre-sortedness.  The sketch is
/// a pure function of the input bytes — no device work, no randomness — so
/// it is deterministic across exec modes (scalar/warp), worker counts and
/// thread orders by construction (pinned by tests/tune/test_tune.cpp).
///
/// The histogram bins cover a fixed key domain (the paper's [0, 2^31) by
/// default) rather than the observed [min, max], so sketches from different
/// requests merge bin-for-bin — the property the serve controller and the
/// fleet-level KeyRange band aggregation rely on.
struct Sketch {
    static constexpr std::size_t kBins = 32;
    /// The paper's key domain ([0, 2^31) uniform floats); matches
    /// fleet::Router::kDefaultKeySpace without depending on gas_fleet.
    static constexpr double kDefaultKeySpace = 2147483648.0;
    /// Strided-sample cap: enough resolution for 32 bins, cheap enough that
    /// the sketch stays under the 5% overhead gate of bench/adaptive_tuning.
    static constexpr std::size_t kMaxSamples = 1024;
    /// Consecutive-prefix window for the sortedness estimate.
    static constexpr std::size_t kRunRows = 8;
    static constexpr std::size_t kRunWindow = 128;

    std::array<std::uint64_t, kBins> histogram{};  ///< fixed-domain key counts
    double key_space = kDefaultKeySpace;  ///< histogram domain upper bound
    double min_key = 0.0;
    double max_key = 0.0;
    std::size_t sampled = 0;   ///< strided samples behind histogram/distinct
    std::size_t adjacent = 0;  ///< consecutive pairs behind sortedness
    /// Distinct samples / samples (1.0 = all distinct, ~1/sampled = constant).
    double distinct_ratio = 1.0;
    /// Distinct values observed in the sample, as an absolute count.  Merged
    /// with max rather than sum: requests in one batch typically draw from
    /// the same key population, so re-observing the same few keys must not
    /// inflate the estimate (the match-distinct plan sizes buckets from it).
    double distinct_keys = 1.0;
    /// Fraction of consecutive in-row pairs already in ascending order
    /// (~0.5 for shuffled data, ~1.0 for sorted).
    double sortedness = 0.5;
    std::size_t rows = 0;      ///< arrays the sketch covers
    std::size_t elements = 0;  ///< total elements it summarizes

    [[nodiscard]] bool empty() const { return sampled == 0; }

    /// Mass fraction of the heaviest histogram bin (0 when empty).  A value
    /// far above 1/kBins flags a hot key band the splitter phase may fail to
    /// resolve at the default sampling rate.
    [[nodiscard]] double hot_fraction() const;

    /// Estimated number of distinct keys in the underlying population
    /// (>= 1): the observed sample distinct count, max-merged across
    /// requests.  A lower bound when the population outnumbers the sample,
    /// which only errs toward fewer, wider buckets — safe for planning.
    [[nodiscard]] double distinct_estimate() const;

    /// Folds `other` into this sketch (bin-wise histogram add; weighted
    /// means for distinct_ratio and sortedness).  Merging an empty sketch is
    /// a no-op; merging into an empty sketch copies.
    void merge(const Sketch& other);
};

/// Sketches `num_arrays` rows of `array_size` contiguous values.
[[nodiscard]] Sketch sketch_values(std::span<const float> values, std::size_t num_arrays,
                                   std::size_t array_size,
                                   double key_space = Sketch::kDefaultKeySpace);

/// Sketches a CSR buffer (ragged rows described by `offsets`).
[[nodiscard]] Sketch sketch_ragged(std::span<const float> values,
                                   std::span<const std::uint64_t> offsets,
                                   double key_space = Sketch::kDefaultKeySpace);

/// Modeled cost of taking the sketch, on the same scale as KernelStats
/// modeled_ms (cycles / clock x the calibration derate): what
/// bench/adaptive_tuning holds under 5% of the modeled sort cost.
[[nodiscard]] double modeled_sketch_ms(const Sketch& sketch,
                                       const simt::DeviceProperties& props);

}  // namespace gas::tune
