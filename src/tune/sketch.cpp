#include "tune/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace gas::tune {

namespace {

std::size_t bin_of(float v, double key_space) {
    if (!(v > 0.0f)) return 0;  // negatives, zeros and NaNs share bin 0
    const double frac = static_cast<double>(v) / key_space;
    const auto b = static_cast<std::size_t>(frac * static_cast<double>(Sketch::kBins));
    return std::min(b, Sketch::kBins - 1);
}

/// Strided histogram/min-max/distinct pass over one contiguous region.
void sample_region(std::span<const float> values, Sketch& s,
                   std::vector<float>& samples) {
    if (values.empty()) return;
    const std::size_t stride = std::max<std::size_t>(1, values.size() / Sketch::kMaxSamples);
    for (std::size_t i = 0; i < values.size(); i += stride) {
        const float v = values[i];
        ++s.histogram[bin_of(v, s.key_space)];
        const auto d = static_cast<double>(v);
        if (s.sampled == 0) {
            s.min_key = d;
            s.max_key = d;
        } else {
            s.min_key = std::min(s.min_key, d);
            s.max_key = std::max(s.max_key, d);
        }
        ++s.sampled;
        samples.push_back(v);
    }
}

/// Ascending-adjacent fraction over the first kRunWindow pairs of a row.
void run_region(std::span<const float> row, std::size_t& pairs, std::size_t& ascending) {
    const std::size_t limit = std::min(row.size(), Sketch::kRunWindow + 1);
    for (std::size_t i = 1; i < limit; ++i) {
        ++pairs;
        if (!(row[i] < row[i - 1])) ++ascending;
    }
}

void finalize(Sketch& s, std::vector<float>& samples, std::size_t pairs,
              std::size_t ascending) {
    if (!samples.empty()) {
        std::sort(samples.begin(), samples.end());
        std::size_t distinct = 1;
        for (std::size_t i = 1; i < samples.size(); ++i) {
            if (samples[i] != samples[i - 1]) ++distinct;
        }
        s.distinct_ratio =
            static_cast<double>(distinct) / static_cast<double>(samples.size());
        s.distinct_keys = static_cast<double>(distinct);
    }
    s.adjacent = pairs;
    s.sortedness = pairs > 0
                       ? static_cast<double>(ascending) / static_cast<double>(pairs)
                       : 0.5;
}

}  // namespace

double Sketch::hot_fraction() const {
    if (sampled == 0) return 0.0;
    std::uint64_t mx = 0;
    for (const std::uint64_t c : histogram) mx = std::max(mx, c);
    return static_cast<double>(mx) / static_cast<double>(sampled);
}

double Sketch::distinct_estimate() const { return std::max(1.0, distinct_keys); }

void Sketch::merge(const Sketch& other) {
    if (other.sampled == 0) {
        rows += other.rows;
        elements += other.elements;
        return;
    }
    if (sampled == 0) {
        const std::size_t r = rows;
        const std::size_t e = elements;
        *this = other;
        rows += r;
        elements += e;
        return;
    }
    for (std::size_t b = 0; b < kBins; ++b) histogram[b] += other.histogram[b];
    min_key = std::min(min_key, other.min_key);
    max_key = std::max(max_key, other.max_key);
    const auto ws = static_cast<double>(sampled);
    const auto wo = static_cast<double>(other.sampled);
    distinct_ratio = (distinct_ratio * ws + other.distinct_ratio * wo) / (ws + wo);
    distinct_keys = std::max(distinct_keys, other.distinct_keys);
    const auto as = static_cast<double>(adjacent);
    const auto ao = static_cast<double>(other.adjacent);
    if (as + ao > 0.0) {
        sortedness = (sortedness * as + other.sortedness * ao) / (as + ao);
    }
    sampled += other.sampled;
    adjacent += other.adjacent;
    rows += other.rows;
    elements += other.elements;
}

Sketch sketch_values(std::span<const float> values, std::size_t num_arrays,
                     std::size_t array_size, double key_space) {
    Sketch s;
    s.key_space = key_space;
    s.rows = num_arrays;
    s.elements = num_arrays * array_size;
    std::vector<float> samples;
    samples.reserve(Sketch::kMaxSamples + Sketch::kBins);
    sample_region(values.subspan(0, std::min(values.size(), s.elements)), s, samples);
    std::size_t pairs = 0;
    std::size_t ascending = 0;
    for (std::size_t a = 0; a < std::min(num_arrays, Sketch::kRunRows); ++a) {
        run_region(values.subspan(a * array_size, array_size), pairs, ascending);
    }
    finalize(s, samples, pairs, ascending);
    return s;
}

Sketch sketch_ragged(std::span<const float> values, std::span<const std::uint64_t> offsets,
                     double key_space) {
    Sketch s;
    s.key_space = key_space;
    s.rows = offsets.size() < 2 ? 0 : offsets.size() - 1;
    const std::size_t begin = offsets.empty() ? 0 : static_cast<std::size_t>(offsets.front());
    const std::size_t end = offsets.empty() ? 0 : static_cast<std::size_t>(offsets.back());
    s.elements = end - begin;
    std::vector<float> samples;
    samples.reserve(Sketch::kMaxSamples + Sketch::kBins);
    sample_region(values.subspan(begin, s.elements), s, samples);
    std::size_t pairs = 0;
    std::size_t ascending = 0;
    for (std::size_t r = 0; r + 1 < offsets.size() && r < Sketch::kRunRows; ++r) {
        const auto lo = static_cast<std::size_t>(offsets[r]);
        const auto hi = static_cast<std::size_t>(offsets[r + 1]);
        run_region(values.subspan(lo, hi - lo), pairs, ascending);
    }
    finalize(s, samples, pairs, ascending);
    return s;
}

double modeled_sketch_ms(const Sketch& sketch, const simt::DeviceProperties& props) {
    // Per strided sample: one uncoalesced load + bin math + min/max (~6 ops);
    // the distinct estimate sorts the sample buffer (s log s compares); the
    // prefix runs pay one compare per adjacent pair.  Charged on the kernel
    // scale (cycles / clock x derate) so it compares against modeled_ms.
    const auto s = static_cast<double>(sketch.sampled);
    const auto a = static_cast<double>(sketch.adjacent);
    const double log2s = s > 1.0 ? std::log2(s) : 0.0;
    const double cycles = props.cpi * (6.0 * s + s * log2s + 2.0 * a);
    const double cycles_per_ms = props.core_clock_ghz * 1e6;
    return cycles / cycles_per_ms * props.efficiency_derate;
}

}  // namespace gas::tune
