#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "tune/planner.hpp"
#include "tune/sketch.hpp"

namespace gas::tune {

/// One (regime, candidate) cost cell of the feedback loop.
struct Cell {
    double predicted = 0.0;     ///< planner's modeled cycles/element (seed)
    double observed_ewma = 0.0; ///< EWMA of observed modeled ms per element
    std::size_t observations = 0;
    /// The score choose() ranks by: observed truth once a plan has run,
    /// the optimistic planner seed until then (so fresh candidates get
    /// explored exactly when the model thinks they are worth it).
    [[nodiscard]] double score() const {
        return observations > 0 ? observed_ewma : predicted;
    }
};

/// Closed-loop plan selection (DESIGN.md section 14).
///
/// The controller keeps one Cell per (regime, candidate-name) pair.  choose()
/// classifies the sketch, regenerates the candidate set, seeds any cell it
/// has not met with the planner's prediction, and picks the cell with the
/// lowest score — except that the regime's incumbent plan is kept unless a
/// challenger undercuts it by the hysteresis margin (5% by default), which
/// stops borderline cells from flapping the plan on noise.  observe() folds
/// the measured modeled cost of a finished batch back into its cell, so a
/// candidate the model over-promised on is dethroned after it actually runs.
///
/// Costs are normalized per element, so cells learn across batch sizes.
/// The class is NOT synchronized: gas::serve drives it under the server
/// mutex (one controller per server = shared across all fleet shards, which
/// is the cross-shard broadcast — every shard's observations land in the
/// same cells and every shard's next batch reads them).
class Controller {
  public:
    struct Config {
        bool enabled = true;     ///< off: choose() always returns the base plan
        double hysteresis = 0.05;///< challenger must beat incumbent by this
        double alpha = 0.3;      ///< EWMA weight of the newest observation
    };

    Controller() = default;
    explicit Controller(Config cfg) : cfg_(cfg) {}

    /// Picks the plan for one batch: planner proposal filtered through the
    /// learned cells + hysteresis.  Updates the regime's incumbent and the
    /// aggregate histogram.  Returns the base options untouched when
    /// disabled, the base has auto_tune off, or the sketch is empty.
    Plan choose(const Sketch& sketch, std::size_t array_size, const Options& base,
                const simt::DeviceProperties& props);

    /// Feeds back the observed modeled cost (ms) of a finished batch that
    /// ran `plan` over `elements` elements in `regime`.
    void observe(Regime regime, const std::string& candidate, double modeled_ms,
                 std::size_t elements, const simt::DeviceProperties& props);

    /// Equal-mass key-range boundaries from the aggregate histogram:
    /// `shards - 1` interior split keys partitioning the observed key mass
    /// evenly (empty when fewer than 2 shards or nothing observed yet).
    /// gas::fleet's KeyRange router consumes these as routing bands.
    [[nodiscard]] std::vector<double> key_bands(std::size_t shards) const;

    /// Stats surface (the "tune" block of ServerStats::to_json).
    struct CellView {
        Regime regime = Regime::Uniform;
        std::string candidate;
        double predicted = 0.0;
        double observed_ewma = 0.0;
        std::size_t observations = 0;
        bool incumbent = false;
    };
    [[nodiscard]] std::vector<CellView> cells() const;
    [[nodiscard]] std::size_t plan_switches() const { return plan_switches_; }
    [[nodiscard]] std::size_t decisions() const { return decisions_; }
    [[nodiscard]] const Sketch& aggregate() const { return aggregate_; }
    [[nodiscard]] const Config& config() const { return cfg_; }

  private:
    Config cfg_;
    std::map<std::pair<Regime, std::string>, Cell> cells_;
    std::map<Regime, std::string> incumbent_;
    Sketch aggregate_;
    std::size_t plan_switches_ = 0;
    std::size_t decisions_ = 0;
};

}  // namespace gas::tune
