#pragma once

#include <bit>
#include <cstdint>

namespace thrustlite {

/// Order-preserving bijection float -> uint32 (the classic radix-sort flip):
/// positive floats get their sign bit set, negative floats are bitwise
/// inverted, so unsigned order equals IEEE-754 total order (with -0 < +0
/// collapsing to adjacent codes and NaNs sorting above +inf).
[[nodiscard]] inline std::uint32_t float_to_ordered(float f) {
    const auto bits = std::bit_cast<std::uint32_t>(f);
    return (bits & 0x80000000u) != 0 ? ~bits : bits | 0x80000000u;
}

/// Inverse of float_to_ordered.
[[nodiscard]] inline float ordered_to_float(std::uint32_t u) {
    const std::uint32_t bits = (u & 0x80000000u) != 0 ? u & 0x7fffffffu : ~u;
    return std::bit_cast<float>(bits);
}

/// 64-bit counterpart: order-preserving bijection double -> uint64.
[[nodiscard]] inline std::uint64_t double_to_ordered(double d) {
    const auto bits = std::bit_cast<std::uint64_t>(d);
    return (bits & 0x8000000000000000ull) != 0 ? ~bits : bits | 0x8000000000000000ull;
}

/// Inverse of double_to_ordered.
[[nodiscard]] inline double ordered_to_double(std::uint64_t u) {
    const std::uint64_t bits =
        (u & 0x8000000000000000ull) != 0 ? u & 0x7fffffffffffffffull : ~u;
    return std::bit_cast<double>(bits);
}

}  // namespace thrustlite
