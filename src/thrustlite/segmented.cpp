#include "thrustlite/segmented.hpp"

#include <algorithm>

namespace thrustlite {

namespace {
constexpr unsigned kThreads = 128;
}

std::vector<SegmentStats> segmented_stats(simt::Device& device, std::span<const float> data,
                                          std::size_t num_arrays, std::size_t array_size) {
    std::vector<SegmentStats> out(num_arrays);
    if (num_arrays == 0 || array_size == 0) return out;

    const auto threads =
        static_cast<unsigned>(std::min<std::size_t>(array_size, kThreads));
    simt::LaunchConfig cfg{"thrustlite.segmented_stats", static_cast<unsigned>(num_arrays),
                           threads};
    device.launch(cfg, [&](simt::BlockCtx& blk) {
        auto mins = blk.shared_alloc<float>(threads);
        auto maxs = blk.shared_alloc<float>(threads);
        auto sums = blk.shared_alloc<double>(threads);
        const float* row = data.data() + blk.block_idx() * array_size;

        blk.for_each_thread([&](simt::ThreadCtx& tc) {
            float mn = row[0];
            float mx = row[0];
            double sum = 0.0;
            std::uint64_t seen = 0;
            for (std::size_t i = tc.tid(); i < array_size; i += threads) {
                mn = std::min(mn, row[i]);
                mx = std::max(mx, row[i]);
                sum += row[i];
                ++seen;
            }
            mins[tc.tid()] = mn;
            maxs[tc.tid()] = mx;
            sums[tc.tid()] = sum;
            tc.global_coalesced(seen * sizeof(float));
            tc.ops(3 * seen);
            tc.shared(3);
        });

        blk.single_thread([&](simt::ThreadCtx& tc) {
            SegmentStats s{mins[0], maxs[0], 0.0};
            for (unsigned t = 0; t < threads; ++t) {
                s.min = std::min(s.min, static_cast<float>(mins[t]));
                s.max = std::max(s.max, static_cast<float>(maxs[t]));
                s.sum += sums[t];
            }
            out[blk.block_idx()] = s;
            tc.ops(3 * threads);
            tc.shared(3 * threads);
            tc.global_random(1);
        });
    });
    return out;
}

std::vector<bool> segmented_is_sorted(simt::Device& device, std::span<const float> data,
                                      std::size_t num_arrays, std::size_t array_size) {
    std::vector<bool> out(num_arrays, true);
    if (num_arrays == 0 || array_size < 2) return out;

    const auto threads =
        static_cast<unsigned>(std::min<std::size_t>(array_size - 1, kThreads));
    simt::LaunchConfig cfg{"thrustlite.segmented_is_sorted",
                           static_cast<unsigned>(num_arrays), threads};
    device.launch(cfg, [&](simt::BlockCtx& blk) {
        auto flags = blk.shared_alloc<std::uint32_t>(threads);
        const float* row = data.data() + blk.block_idx() * array_size;

        blk.for_each_thread([&](simt::ThreadCtx& tc) {
            std::uint32_t bad = 0;
            std::uint64_t seen = 0;
            for (std::size_t i = tc.tid() + 1; i < array_size; i += threads) {
                bad += row[i - 1] > row[i] ? 1u : 0u;
                ++seen;
            }
            flags[tc.tid()] = bad;
            tc.global_coalesced(2 * seen * sizeof(float));
            tc.ops(2 * seen);
            tc.shared(1);
        });

        blk.single_thread([&](simt::ThreadCtx& tc) {
            std::uint32_t bad = 0;
            for (unsigned t = 0; t < threads; ++t) bad += flags[t];
            out[blk.block_idx()] = bad == 0;
            tc.ops(threads);
            tc.shared(threads);
            tc.global_random(1);
        });
    });
    return out;
}

}  // namespace thrustlite
