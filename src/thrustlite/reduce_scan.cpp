#include "thrustlite/reduce_scan.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "thrustlite/algorithms.hpp"

namespace thrustlite {

namespace {

constexpr std::size_t kChunk = kTileSize / kBlockThreads;

unsigned num_tiles(std::size_t count) {
    return static_cast<unsigned>(std::max<std::size_t>((count + kTileSize - 1) / kTileSize, 1));
}

/// Generic per-block tree reduction over any trivially copyable element:
/// each thread folds its chunk with `fold(acc, element)`, thread 0 merges
/// the per-thread partials with `combine(a, b)` (distinct from fold — a
/// count's element step is +pred while its partial merge is plain +).
template <typename T, typename Fold, typename Combine>
std::vector<T> block_reduce(simt::Device& device, const char* name, std::span<const T> data,
                            T identity, Fold&& fold, Combine&& combine) {
    const std::size_t count = data.size();
    const unsigned blocks = num_tiles(count);
    std::vector<T> partials(blocks, identity);

    simt::LaunchConfig cfg{name, blocks, kBlockThreads};
    device.launch(cfg, [&](simt::BlockCtx& blk) {
        auto shared = blk.shared_alloc<T>(kBlockThreads);
        const std::size_t tile_begin = static_cast<std::size_t>(blk.block_idx()) * kTileSize;
        const std::size_t tile_end = std::min(tile_begin + kTileSize, count);

        blk.for_each_thread([&](simt::ThreadCtx& tc) {
            const std::size_t begin = tile_begin + tc.tid() * kChunk;
            const std::size_t end = std::min(begin + kChunk, tile_end);
            T acc = identity;
            for (std::size_t i = begin; i < end; ++i) acc = fold(acc, data[i]);
            shared[tc.tid()] = acc;
            const auto n = begin < end ? static_cast<std::uint64_t>(end - begin) : 0;
            tc.global_coalesced(n * sizeof(T));
            tc.ops(n);
            tc.shared(1);
        });

        blk.single_thread([&](simt::ThreadCtx& tc) {
            T acc = identity;
            for (unsigned t = 0; t < kBlockThreads; ++t) acc = combine(acc, shared[t]);
            partials[blk.block_idx()] = acc;
            tc.ops(kBlockThreads);
            tc.shared(kBlockThreads);
            tc.global_random(1);
        });
    });
    return partials;
}

/// Spec twin of block_reduce for the max-key probe: identical kernel shape
/// and charges, but partials land in a caller-owned vector so the kernel can
/// run as a graph node (the builder's frame is long gone by then).
template <typename K>
simt::KernelSpec reduce_max_key_spec_impl(std::span<const K> keys,
                                          std::shared_ptr<std::vector<K>> partials) {
    if (keys.empty()) throw std::invalid_argument("reduce_max_key: empty input");
    const std::size_t count = keys.size();
    const unsigned blocks = num_tiles(count);
    const K identity = keys[0];
    partials->assign(blocks, identity);

    simt::LaunchConfig cfg{"thrustlite.reduce_max_key", blocks, kBlockThreads};
    auto body = [=](simt::BlockCtx& blk) {
        auto shared = blk.shared_alloc<K>(kBlockThreads);
        const std::size_t tile_begin = static_cast<std::size_t>(blk.block_idx()) * kTileSize;
        const std::size_t tile_end = std::min(tile_begin + kTileSize, count);

        blk.for_each_thread([&](simt::ThreadCtx& tc) {
            const std::size_t begin = tile_begin + tc.tid() * kChunk;
            const std::size_t end = std::min(begin + kChunk, tile_end);
            K acc = identity;
            for (std::size_t i = begin; i < end; ++i) acc = std::max(acc, keys[i]);
            shared[tc.tid()] = acc;
            const auto n = begin < end ? static_cast<std::uint64_t>(end - begin) : 0;
            tc.global_coalesced(n * sizeof(K));
            tc.ops(n);
            tc.shared(1);
        });

        blk.single_thread([&](simt::ThreadCtx& tc) {
            K acc = identity;
            for (unsigned t = 0; t < kBlockThreads; ++t) {
                acc = std::max(acc, static_cast<K>(shared[t]));
            }
            (*partials)[blk.block_idx()] = acc;
            tc.ops(kBlockThreads);
            tc.shared(kBlockThreads);
            tc.global_random(1);
        });
    };
    return {cfg, std::move(body)};
}

template <typename K>
K reduce_max_key_impl(simt::Device& device, std::span<const K> keys) {
    auto partials = std::make_shared<std::vector<K>>();
    simt::KernelSpec spec = reduce_max_key_spec_impl<K>(keys, partials);
    device.launch(spec.cfg, spec.body);
    return *std::max_element(partials->begin(), partials->end());
}

}  // namespace

double reduce_sum(simt::Device& device, std::span<const float> data) {
    if (data.empty()) return 0.0;
    // Accumulate block partials in double on the host for accuracy.
    const auto add = [](float a, float b) { return a + b; };
    const auto partials =
        block_reduce(device, "thrustlite.reduce_sum", data, 0.0f, add, add);
    double total = 0.0;
    for (float p : partials) total += p;
    return total;
}

float reduce_min(simt::Device& device, std::span<const float> data) {
    if (data.empty()) throw std::invalid_argument("reduce_min: empty input");
    const auto mn = [](float a, float b) { return std::min(a, b); };
    const auto partials =
        block_reduce(device, "thrustlite.reduce_min", data, data[0], mn, mn);
    return *std::min_element(partials.begin(), partials.end());
}

float reduce_max(simt::Device& device, std::span<const float> data) {
    if (data.empty()) throw std::invalid_argument("reduce_max: empty input");
    const auto mx = [](float a, float b) { return std::max(a, b); };
    const auto partials =
        block_reduce(device, "thrustlite.reduce_max", data, data[0], mx, mx);
    return *std::max_element(partials.begin(), partials.end());
}

std::uint32_t reduce_max_key(simt::Device& device, std::span<const std::uint32_t> keys) {
    return reduce_max_key_impl(device, keys);
}

std::uint64_t reduce_max_key(simt::Device& device, std::span<const std::uint64_t> keys) {
    return reduce_max_key_impl(device, keys);
}

simt::KernelSpec reduce_max_key_spec(std::span<const std::uint32_t> keys,
                                     std::shared_ptr<std::vector<std::uint32_t>> partials) {
    return reduce_max_key_spec_impl<std::uint32_t>(keys, std::move(partials));
}

simt::KernelSpec reduce_max_key_spec(std::span<const std::uint64_t> keys,
                                     std::shared_ptr<std::vector<std::uint64_t>> partials) {
    return reduce_max_key_spec_impl<std::uint64_t>(keys, std::move(partials));
}

std::size_t count_less_equal(simt::Device& device, std::span<const float> data,
                             float threshold) {
    if (data.empty()) return 0;
    const auto partials = block_reduce(
        device, "thrustlite.count_le", data, 0.0f,
        [threshold](float acc, float x) { return acc + (x <= threshold ? 1.0f : 0.0f); },
        [](float a, float b) { return a + b; });
    double total = 0.0;
    for (float p : partials) total += p;
    return static_cast<std::size_t>(total);
}

void exclusive_scan(simt::Device& device, std::span<const std::uint32_t> in,
                    std::span<std::uint32_t> out) {
    const std::size_t count = in.size();
    if (out.size() < count) throw std::invalid_argument("exclusive_scan: output too small");
    if (count == 0) return;
    const unsigned blocks = num_tiles(count);

    // Kernel 1 folded into kernel 3's structure: per block, each thread scans
    // its chunk locally; thread 0 scans the thread sums; chunks are then
    // emitted with their offsets.  Block totals land in `spine` for kernel 2.
    std::vector<std::uint32_t> spine(blocks, 0);

    simt::LaunchConfig cfg{"thrustlite.scan_local", blocks, kBlockThreads};
    device.launch(cfg, [&](simt::BlockCtx& blk) {
        auto sums = blk.shared_alloc<std::uint32_t>(kBlockThreads);
        auto starts = blk.shared_alloc<std::uint32_t>(kBlockThreads);
        const std::size_t tile_begin = static_cast<std::size_t>(blk.block_idx()) * kTileSize;
        const std::size_t tile_end = std::min(tile_begin + kTileSize, count);

        blk.for_each_thread([&](simt::ThreadCtx& tc) {
            const std::size_t begin = tile_begin + tc.tid() * kChunk;
            const std::size_t end = std::min(begin + kChunk, tile_end);
            std::uint32_t acc = 0;
            for (std::size_t i = begin; i < end; ++i) acc += in[i];
            sums[tc.tid()] = acc;
            const auto n = begin < end ? static_cast<std::uint64_t>(end - begin) : 0;
            tc.global_coalesced(n * sizeof(std::uint32_t));
            tc.ops(n);
            tc.shared(1);
        });

        blk.single_thread([&](simt::ThreadCtx& tc) {
            std::uint32_t running = 0;
            for (unsigned t = 0; t < kBlockThreads; ++t) {
                starts[t] = running;
                running += sums[t];
            }
            spine[blk.block_idx()] = running;
            tc.ops(kBlockThreads);
            tc.shared(2 * kBlockThreads);
            tc.global_random(1);
        });

        blk.for_each_thread([&](simt::ThreadCtx& tc) {
            const std::size_t begin = tile_begin + tc.tid() * kChunk;
            const std::size_t end = std::min(begin + kChunk, tile_end);
            std::uint32_t running = starts[tc.tid()];
            for (std::size_t i = begin; i < end; ++i) {
                const std::uint32_t v = in[i];  // in/out may alias: read first
                out[i] = running;
                running += v;
            }
            const auto n = begin < end ? static_cast<std::uint64_t>(end - begin) : 0;
            tc.global_coalesced(2 * n * sizeof(std::uint32_t));
            tc.ops(2 * n);
            tc.shared(1);
        });
    });

    // Kernel 2 (spine scan) — a single block over the block totals.
    std::vector<std::uint32_t> spine_offsets(blocks, 0);
    device.launch({"thrustlite.scan_spine", 1, 1}, [&](simt::BlockCtx& blk) {
        blk.single_thread([&](simt::ThreadCtx& tc) {
            std::uint32_t running = 0;
            for (unsigned b = 0; b < blocks; ++b) {
                spine_offsets[b] = running;
                running += spine[b];
            }
            tc.ops(blocks);
            tc.global_coalesced(2ull * blocks * sizeof(std::uint32_t));
        });
    });

    // Kernel 3: distribute spine offsets.
    device.launch({"thrustlite.scan_add", blocks, kBlockThreads}, [&](simt::BlockCtx& blk) {
        const std::uint32_t offset = spine_offsets[blk.block_idx()];
        if (offset == 0) return;  // first block (and empty tails) skip the pass
        const std::size_t tile_begin = static_cast<std::size_t>(blk.block_idx()) * kTileSize;
        const std::size_t tile_end = std::min(tile_begin + kTileSize, count);
        blk.for_each_thread([&](simt::ThreadCtx& tc) {
            const std::size_t begin = tile_begin + tc.tid() * kChunk;
            const std::size_t end = std::min(begin + kChunk, tile_end);
            for (std::size_t i = begin; i < end; ++i) out[i] += offset;
            const auto n = begin < end ? static_cast<std::uint64_t>(end - begin) : 0;
            tc.global_coalesced(2 * n * sizeof(std::uint32_t));
            tc.ops(n);
        });
    });
}

void gather(simt::Device& device, std::span<const std::uint32_t> indices,
            std::span<const float> src, std::span<float> dst) {
    const std::size_t count = indices.size();
    if (dst.size() < count) throw std::invalid_argument("gather: output too small");
    if (count == 0) return;
    const unsigned blocks = num_tiles(count);
    device.launch({"thrustlite.gather", blocks, kBlockThreads}, [&](simt::BlockCtx& blk) {
        const std::size_t tile_begin = static_cast<std::size_t>(blk.block_idx()) * kTileSize;
        const std::size_t tile_end = std::min(tile_begin + kTileSize, count);
        blk.for_each_thread([&](simt::ThreadCtx& tc) {
            const std::size_t begin = tile_begin + tc.tid() * kChunk;
            const std::size_t end = std::min(begin + kChunk, tile_end);
            for (std::size_t i = begin; i < end; ++i) dst[i] = src[indices[i]];
            const auto n = begin < end ? static_cast<std::uint64_t>(end - begin) : 0;
            tc.global_coalesced(2 * n * sizeof(float));  // index read + dst write
            tc.global_random(n);                         // scattered src reads
            tc.ops(n);
        });
    });
}

void fill(simt::Device& device, std::span<float> data, float value) {
    const std::size_t count = data.size();
    if (count == 0) return;
    const unsigned blocks = num_tiles(count);
    device.launch({"thrustlite.fill", blocks, kBlockThreads}, [&](simt::BlockCtx& blk) {
        const std::size_t tile_begin = static_cast<std::size_t>(blk.block_idx()) * kTileSize;
        const std::size_t tile_end = std::min(tile_begin + kTileSize, count);
        blk.for_each_thread([&](simt::ThreadCtx& tc) {
            const std::size_t begin = tile_begin + tc.tid() * kChunk;
            const std::size_t end = std::min(begin + kChunk, tile_end);
            for (std::size_t i = begin; i < end; ++i) data[i] = value;
            const auto n = begin < end ? static_cast<std::uint64_t>(end - begin) : 0;
            tc.global_coalesced(n * sizeof(float));
            tc.ops(n);
        });
    });
}

}  // namespace thrustlite
