#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "simt/device.hpp"
#include "simt/graph.hpp"

namespace thrustlite {

/// Device reductions and scans — the rest of the Thrust surface a pipeline
/// built on the simulated device needs.  All spans view device-resident
/// buffers; scalar results come back to the host (like thrust::reduce).

/// Sum of all elements (two-stage tree reduction: per-block partials in
/// shared memory, host adds the partial vector).
[[nodiscard]] double reduce_sum(simt::Device& device, std::span<const float> data);

/// Minimum / maximum element.  Precondition: data non-empty.
[[nodiscard]] float reduce_min(simt::Device& device, std::span<const float> data);
[[nodiscard]] float reduce_max(simt::Device& device, std::span<const float> data);

/// Maximum radix key (the radix sort's pass-pruning probe: its bit width
/// bounds the highest significant digit).  Precondition: keys non-empty.
[[nodiscard]] std::uint32_t reduce_max_key(simt::Device& device,
                                           std::span<const std::uint32_t> keys);
[[nodiscard]] std::uint64_t reduce_max_key(simt::Device& device,
                                           std::span<const std::uint64_t> keys);

/// Graph-node form of reduce_max_key: the identical kernel as a spec, with
/// per-block partial maxima landing in `partials` (sized by the builder).
/// A downstream host node max-reduces the partials — this is how the radix
/// sub-graph plans its pass chain without a host round-trip per kernel.
[[nodiscard]] simt::KernelSpec reduce_max_key_spec(
    std::span<const std::uint32_t> keys,
    std::shared_ptr<std::vector<std::uint32_t>> partials);
[[nodiscard]] simt::KernelSpec reduce_max_key_spec(
    std::span<const std::uint64_t> keys,
    std::shared_ptr<std::vector<std::uint64_t>> partials);

/// Number of elements <= threshold (predicated count, branch-free).
[[nodiscard]] std::size_t count_less_equal(simt::Device& device, std::span<const float> data,
                                           float threshold);

/// Exclusive prefix sum: out[i] = in[0] + ... + in[i-1], out[0] = 0.
/// Classic three-kernel GPU scan: per-block sums, spine scan, distribute.
/// in and out may alias.
void exclusive_scan(simt::Device& device, std::span<const std::uint32_t> in,
                    std::span<std::uint32_t> out);

/// dst[i] = src[indices[i]] (scattered reads, coalesced writes).
void gather(simt::Device& device, std::span<const std::uint32_t> indices,
            std::span<const float> src, std::span<float> dst);

/// data[i] = value for all i.
void fill(simt::Device& device, std::span<float> data, float value);

}  // namespace thrustlite
