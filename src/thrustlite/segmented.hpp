#pragma once

#include <span>
#include <vector>

#include "simt/device.hpp"

namespace thrustlite {

/// Per-row statistics of an N x n device-resident matrix, computed by one
/// kernel (one block per row, cooperative tree reduction in shared memory).
/// The segmented counterpart of reduce_* for the many-small-arrays layout
/// every algorithm in this repo works on.
struct SegmentStats {
    float min = 0.0f;
    float max = 0.0f;
    double sum = 0.0;
};

[[nodiscard]] std::vector<SegmentStats> segmented_stats(simt::Device& device,
                                                        std::span<const float> data,
                                                        std::size_t num_arrays,
                                                        std::size_t array_size);

/// Per-row "is ascending" flags in one kernel (device-side; no host copy of
/// the data).  Equivalent to gas::count_unsorted_on_device but returning the
/// full flag vector.
[[nodiscard]] std::vector<bool> segmented_is_sorted(simt::Device& device,
                                                    std::span<const float> data,
                                                    std::size_t num_arrays,
                                                    std::size_t array_size);

}  // namespace thrustlite
