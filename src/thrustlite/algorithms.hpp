#pragma once

#include <cstdint>

#include "thrustlite/device_vector.hpp"

namespace thrustlite {

/// Elements processed by one block in element-wise kernels (256 threads x 16
/// contiguous elements each, all warp-coalesced).
inline constexpr std::size_t kTileSize = 4096;
inline constexpr unsigned kBlockThreads = 256;

/// v[i] = i.
void sequence(simt::Device& device, device_vector<std::uint32_t>& v);

/// tags[i] = i / array_size — the STA tag array (Definition 6 of the paper).
void make_tags(simt::Device& device, std::span<std::uint32_t> tags, std::size_t array_size);
inline void make_tags(simt::Device& device, device_vector<std::uint32_t>& tags,
                      std::size_t array_size) {
    make_tags(device, tags.span(), array_size);
}

/// dst[i] = float_to_ordered(src[i]) — stage the merged data as radix keys.
void to_ordered_keys(simt::Device& device, std::span<const float> src,
                     device_vector<std::uint32_t>& dst);

/// dst[i] = ordered_to_float(src[i]).
void from_ordered_keys(simt::Device& device, const device_vector<std::uint32_t>& src,
                       std::span<float> dst);

/// In-place reinterpretation of a float buffer as radix-sortable ordered
/// u32 keys (each 4-byte slot is rewritten; no extra memory, which is how
/// the STA baseline keeps its footprint at data + tags + radix scratch).
std::span<std::uint32_t> to_ordered_inplace(simt::Device& device, std::span<float> data);

/// Inverse of to_ordered_inplace.
void from_ordered_inplace(simt::Device& device, std::span<float> data);

/// True iff v is ascending (host-side check helper for tests).
[[nodiscard]] bool is_sorted_host(std::span<const std::uint32_t> v);

}  // namespace thrustlite
