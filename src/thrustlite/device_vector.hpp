#pragma once

#include <span>
#include <vector>

#include "simt/device_buffer.hpp"

namespace thrustlite {

/// Thrust-style owning device container on the simulated device.
///
/// A thin layer over simt::DeviceBuffer that adds host<->device construction
/// and copy-out, mirroring thrust::device_vector's role in the STA baseline.
template <typename T>
class device_vector {
  public:
    device_vector() = default;

    device_vector(simt::Device& device, std::size_t count) : buffer_(device, count) {}

    device_vector(simt::Device& device, std::span<const T> host) : buffer_(device, host.size()) {
        simt::copy_to_device(host, buffer_);
    }

    device_vector(simt::Device& device, const std::vector<T>& host)
        : device_vector(device, std::span<const T>(host)) {}

    [[nodiscard]] std::size_t size() const { return buffer_.size(); }
    [[nodiscard]] bool empty() const { return buffer_.empty(); }
    [[nodiscard]] std::span<T> span() { return buffer_.span(); }
    [[nodiscard]] std::span<const T> span() const { return buffer_.span(); }
    [[nodiscard]] simt::Device* device() const { return buffer_.device(); }
    [[nodiscard]] simt::DeviceBuffer<T>& buffer() { return buffer_; }

    /// Copies device contents to a new host vector.
    [[nodiscard]] std::vector<T> to_host() const {
        std::vector<T> out(buffer_.size());
        if (!out.empty()) simt::copy_to_host(buffer_, std::span<T>(out));
        return out;
    }

    void release() { buffer_.release(); }

  private:
    simt::DeviceBuffer<T> buffer_;
};

}  // namespace thrustlite
