#include "thrustlite/algorithms.hpp"

#include <algorithm>
#include <cstring>

#include "thrustlite/float_ordering.hpp"

namespace thrustlite {

namespace {

/// Grid sizing for an element-wise sweep over `count` elements.
simt::LaunchConfig elementwise_config(std::string name, std::size_t count) {
    simt::LaunchConfig cfg;
    cfg.name = std::move(name);
    cfg.grid_dim = static_cast<unsigned>((count + kTileSize - 1) / kTileSize);
    cfg.block_dim = kBlockThreads;
    if (cfg.grid_dim == 0) cfg.grid_dim = 1;
    return cfg;
}

/// Runs `fn(i)` for every element index, modeling a coalesced elementwise
/// kernel that moves `bytes_per_elem` of traffic and does `ops_per_elem` ops.
template <typename F>
void elementwise(simt::Device& device, std::string name, std::size_t count,
                 std::uint64_t bytes_per_elem, std::uint64_t ops_per_elem, F&& fn) {
    if (count == 0) return;
    device.launch(elementwise_config(std::move(name), count), [&](simt::BlockCtx& blk) {
        const std::size_t tile_begin = static_cast<std::size_t>(blk.block_idx()) * kTileSize;
        const std::size_t tile_end = std::min(tile_begin + kTileSize, count);
        blk.for_each_thread([&](simt::ThreadCtx& tc) {
            const std::size_t chunk = kTileSize / kBlockThreads;
            const std::size_t begin = tile_begin + tc.tid() * chunk;
            const std::size_t end = std::min(begin + chunk, tile_end);
            if (begin >= end) return;
            for (std::size_t i = begin; i < end; ++i) fn(i);
            const auto nelem = static_cast<std::uint64_t>(end - begin);
            tc.global_coalesced(nelem * bytes_per_elem);
            tc.ops(nelem * ops_per_elem);
        });
    });
}

}  // namespace

void sequence(simt::Device& device, device_vector<std::uint32_t>& v) {
    auto s = v.span();
    elementwise(device, "thrustlite.sequence", s.size(), sizeof(std::uint32_t), 1,
                [&](std::size_t i) { s[i] = static_cast<std::uint32_t>(i); });
}

void make_tags(simt::Device& device, std::span<std::uint32_t> tags, std::size_t array_size) {
    elementwise(device, "sta.make_tags", tags.size(), sizeof(std::uint32_t), 2,
                [&](std::size_t i) { tags[i] = static_cast<std::uint32_t>(i / array_size); });
}

void to_ordered_keys(simt::Device& device, std::span<const float> src,
                     device_vector<std::uint32_t>& dst) {
    auto d = dst.span();
    elementwise(device, "sta.to_ordered_keys", src.size(),
                sizeof(float) + sizeof(std::uint32_t), 2,
                [&](std::size_t i) { d[i] = float_to_ordered(src[i]); });
}

void from_ordered_keys(simt::Device& device, const device_vector<std::uint32_t>& src,
                       std::span<float> dst) {
    auto s = src.span();
    elementwise(device, "sta.from_ordered_keys", s.size(),
                sizeof(float) + sizeof(std::uint32_t), 2,
                [&](std::size_t i) { dst[i] = ordered_to_float(s[i]); });
}

std::span<std::uint32_t> to_ordered_inplace(simt::Device& device, std::span<float> data) {
    // memcpy-based punning: every 4-byte slot is rewritten from float to its
    // ordered-u32 code without violating aliasing rules.
    auto* bytes = reinterpret_cast<std::byte*>(data.data());
    elementwise(device, "sta.to_ordered_inplace", data.size(), 2 * sizeof(float), 2,
                [&](std::size_t i) {
                    float f;
                    std::memcpy(&f, bytes + 4 * i, 4);
                    const std::uint32_t u = float_to_ordered(f);
                    std::memcpy(bytes + 4 * i, &u, 4);
                });
    return {reinterpret_cast<std::uint32_t*>(data.data()), data.size()};
}

void from_ordered_inplace(simt::Device& device, std::span<float> data) {
    auto* bytes = reinterpret_cast<std::byte*>(data.data());
    elementwise(device, "sta.from_ordered_inplace", data.size(), 2 * sizeof(float), 2,
                [&](std::size_t i) {
                    std::uint32_t u;
                    std::memcpy(&u, bytes + 4 * i, 4);
                    const float f = ordered_to_float(u);
                    std::memcpy(bytes + 4 * i, &f, 4);
                });
}

bool is_sorted_host(std::span<const std::uint32_t> v) {
    return std::is_sorted(v.begin(), v.end());
}

}  // namespace thrustlite
