#pragma once

#include <cstdint>

#include "thrustlite/device_vector.hpp"

namespace thrustlite {

/// Cost summary of one radix sort call.
struct RadixStats {
    unsigned passes = 0;
    std::size_t scratch_bytes = 0;  ///< double buffers + histograms (the O(N) the paper cites)
    double modeled_ms = 0.0;
    double wall_ms = 0.0;
};

/// Stable LSD radix sort of 32-bit keys with an optional 32-bit payload,
/// 4-bit digits (8 passes), the classic GPU formulation:
/// per-pass histogram kernel -> offset scan kernel -> rank-and-scatter
/// kernel, double-buffered (this is the O(N) scratch the paper charges
/// against the STA technique).
///
/// This is the repo's stand-in for thrust::stable_sort_by_key, which the
/// paper's STA baseline is built from.  The spans must view device-resident
/// buffers (scratch is allocated on the same device).
RadixStats stable_sort_by_key(simt::Device& device, std::span<std::uint32_t> keys,
                              std::span<std::uint32_t> values);

/// Keys-only variant.
RadixStats stable_sort(simt::Device& device, std::span<std::uint32_t> keys);

/// 64-bit key variants (16 digit passes): enables double-precision keys via
/// the double<->ordered-u64 transform in float_ordering.hpp.
RadixStats stable_sort_by_key(simt::Device& device, std::span<std::uint64_t> keys,
                              std::span<std::uint32_t> values);
RadixStats stable_sort(simt::Device& device, std::span<std::uint64_t> keys);

/// device_vector conveniences.
inline RadixStats stable_sort_by_key(device_vector<std::uint32_t>& keys,
                                     device_vector<std::uint32_t>& values) {
    return stable_sort_by_key(*keys.device(), keys.span(), values.span());
}
inline RadixStats stable_sort(device_vector<std::uint32_t>& keys) {
    return stable_sort(*keys.device(), keys.span());
}

/// Device scratch bytes a sort of `count` pairs will allocate (used by the
/// Table 1 capacity model).  `with_values` selects pair vs keys-only layout.
[[nodiscard]] std::size_t radix_scratch_bytes(std::size_t count, bool with_values);

}  // namespace thrustlite
