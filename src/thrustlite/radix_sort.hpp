#pragma once

#include <cstdint>

#include "thrustlite/device_vector.hpp"

namespace thrustlite {

/// Tuning knobs for the radix sorts.
struct RadixOptions {
    /// Skip digit passes the key range proves redundant.  A max-key
    /// reduction before the pass loop bounds the highest significant digit
    /// (all-zero high digits move nothing), and a pass whose histogram puts
    /// every key into a single digit bin is a stable identity permutation
    /// and is not scattered.  The sorted output is byte-identical to the
    /// full-pass sort (a coalesced copy-back restores buffer parity when an
    /// odd number of passes executed); only the pass count and modeled/wall
    /// cost change.  Default on — narrow-range keys (tags, bucket ids,
    /// 16-bit m/z bins) skip half or more of the passes.  The paper-figure
    /// benches (fig4-fig7, table1) turn this off: their STA baseline must
    /// stay faithful to Thrust's fixed sizeof(K)*8/4-pass sort.
    bool prune_passes = true;

    /// Execute the sort as one simt::Graph submit instead of a host loop of
    /// launches: the max-key reduction is the root node, a planning host
    /// node bounds the pass count, and each pass's histogram feeds a
    /// decision node that device-enqueues the offsets + scatter records (or
    /// prunes the degenerate pass).  Kernel sequence, output bytes and every
    /// deterministic KernelStats field are identical to the loop — only the
    /// per-kernel scheduling round-trips disappear.  The paper-figure
    /// benches pin this off alongside prune_passes.
    bool graph_launch = true;
};

/// Cost summary of one radix sort call.
struct RadixStats {
    unsigned passes = 0;            ///< scatter passes actually executed
    unsigned passes_skipped = 0;    ///< passes pruned by key range / degenerate histogram
    bool copy_back = false;         ///< odd executed passes -> one extra coalesced copy
    std::size_t scratch_bytes = 0;  ///< double buffers + histograms (the O(N) the paper cites)
    double modeled_ms = 0.0;
    double wall_ms = 0.0;
};

/// Stable LSD radix sort of 32-bit keys with an optional 32-bit payload,
/// 4-bit digits (8 passes), the classic GPU formulation:
/// per-pass histogram kernel -> offset scan kernel -> rank-and-scatter
/// kernel, double-buffered (this is the O(N) scratch the paper charges
/// against the STA technique).
///
/// This is the repo's stand-in for thrust::stable_sort_by_key, which the
/// paper's STA baseline is built from.  The spans must view device-resident
/// buffers (scratch is allocated on the same device).
RadixStats stable_sort_by_key(simt::Device& device, std::span<std::uint32_t> keys,
                              std::span<std::uint32_t> values, const RadixOptions& opts = {});

/// Keys-only variant.
RadixStats stable_sort(simt::Device& device, std::span<std::uint32_t> keys,
                       const RadixOptions& opts = {});

/// 64-bit key variants (16 digit passes): enables double-precision keys via
/// the double<->ordered-u64 transform in float_ordering.hpp.
RadixStats stable_sort_by_key(simt::Device& device, std::span<std::uint64_t> keys,
                              std::span<std::uint32_t> values, const RadixOptions& opts = {});
RadixStats stable_sort(simt::Device& device, std::span<std::uint64_t> keys,
                       const RadixOptions& opts = {});

/// device_vector conveniences.
inline RadixStats stable_sort_by_key(device_vector<std::uint32_t>& keys,
                                     device_vector<std::uint32_t>& values,
                                     const RadixOptions& opts = {}) {
    return stable_sort_by_key(*keys.device(), keys.span(), values.span(), opts);
}
inline RadixStats stable_sort(device_vector<std::uint32_t>& keys,
                              const RadixOptions& opts = {}) {
    return stable_sort(*keys.device(), keys.span(), opts);
}

/// Device scratch bytes a sort of `count` keys of `key_bytes` each will
/// allocate (used by the Table 1 capacity model).  `with_values` adds the
/// 32-bit payload double buffer.  Defaults to 32-bit keys, the STA layout.
[[nodiscard]] std::size_t radix_scratch_bytes(std::size_t count, bool with_values,
                                              std::size_t key_bytes = sizeof(std::uint32_t));

}  // namespace thrustlite
