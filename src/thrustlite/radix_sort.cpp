#include "thrustlite/radix_sort.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "simt/graph.hpp"
#include "thrustlite/algorithms.hpp"
#include "thrustlite/reduce_scan.hpp"

namespace thrustlite {

namespace {

constexpr unsigned kRadixBits = 4;
constexpr unsigned kDigits = 1u << kRadixBits;
constexpr std::size_t kChunk = kTileSize / kBlockThreads;  // elements per thread

/// Digit passes for a key type (8 for u32, 16 for u64) — always even, so
/// without pruning the double-buffered result lands back in the caller's
/// buffers.  With pruning an odd executed count is fixed by one copy-back.
template <typename K>
constexpr unsigned passes_for() {
    static_assert(sizeof(K) * 8 % kRadixBits == 0);
    return sizeof(K) * 8 / kRadixBits;
}

/// Digit passes needed to cover every significant bit of `max_key` (at
/// least one, so an executed or provably skippable pass exists even for
/// all-zero keys).
template <typename K>
unsigned passes_needed(K max_key) {
    unsigned bits = 0;
    for (K v = max_key; v != 0; v >>= 1) ++bits;
    return std::max(1u, (bits + kRadixBits - 1) / kRadixBits);
}

/// True when one digit bin holds every key — the pass would be a stable
/// identity permutation.  Host-side scan of the per-block histogram; on real
/// hardware this is a kDigits-counter readback (or a device-side flag), tiny
/// next to the scatter pass it saves.
bool histogram_is_single_digit(std::span<const std::uint32_t> hist, unsigned num_blocks,
                               std::size_t count) {
    for (unsigned d = 0; d < kDigits; ++d) {
        std::uint64_t total = 0;
        for (unsigned b = 0; b < num_blocks; ++b) {
            total += hist[static_cast<std::size_t>(d) * num_blocks + b];
        }
        if (total == count) return true;
        if (total != 0) return false;  // two non-empty bins: pass must run
    }
    return false;
}

template <typename K>
[[nodiscard]] inline std::uint32_t digit_of(K key, unsigned shift) {
    return static_cast<std::uint32_t>((key >> shift) & (kDigits - 1));
}

template <typename K>
struct PassBuffers {
    std::span<const K> keys_in;
    std::span<K> keys_out;
    std::span<const std::uint32_t> vals_in;  // empty when keys-only
    std::span<std::uint32_t> vals_out;
};

/// Runs a spec through Device::launch — the loop path's view of the spec
/// builders below (the graph path adds them as nodes instead).
void launch_spec(simt::Device& device, const simt::KernelSpec& spec) {
    device.launch(spec.cfg, spec.body);
}

/// Kernel 1: per-block digit histogram.  Each thread counts its contiguous
/// chunk into a per-thread shared histogram column; thread 0 reduces the
/// block's histogram and writes it to hist[d * num_blocks + block].
template <typename K>
simt::KernelSpec histogram_spec(std::span<const K> keys, unsigned shift,
                                std::span<std::uint32_t> hist, unsigned num_blocks) {
    simt::LaunchConfig cfg{"radix.histogram", num_blocks, kBlockThreads};
    auto body = [=](simt::BlockCtx& blk) {
        auto local = blk.shared_alloc<std::uint32_t>(kDigits * kBlockThreads);
        auto g_keys = blk.global_view(keys);
        auto g_hist = blk.global_view(hist);
        const std::size_t tile_begin = static_cast<std::size_t>(blk.block_idx()) * kTileSize;
        const std::size_t tile_end = std::min(tile_begin + kTileSize, keys.size());

        const auto count_lane = [&](simt::ThreadCtx& tc) {
            for (unsigned d = 0; d < kDigits; ++d) local[d * kBlockThreads + tc.tid()] = 0;
            const std::size_t begin = tile_begin + tc.tid() * kChunk;
            const std::size_t end = std::min(begin + kChunk, tile_end);
            for (std::size_t i = begin; i < end; ++i) {
                const K k = g_keys[i];
                ++local[digit_of(k, shift) * kBlockThreads + tc.tid()];
            }
            const auto n = begin < end ? static_cast<std::uint64_t>(end - begin) : 0;
            tc.global_coalesced(n * sizeof(K));
            tc.ops(n * 2 + kDigits);
            tc.shared(n + kDigits);
        };
        blk.for_each_warp([&](simt::WarpCtx& wc) { wc.for_lanes(count_lane); });

        blk.single_thread([&](simt::ThreadCtx& tc) {
            for (unsigned d = 0; d < kDigits; ++d) {
                std::uint32_t sum = 0;
                for (unsigned t = 0; t < kBlockThreads; ++t) sum += local[d * kBlockThreads + t];
                g_hist[static_cast<std::size_t>(d) * num_blocks + blk.block_idx()] = sum;
            }
            tc.ops(kDigits * kBlockThreads);
            tc.shared(kDigits * kBlockThreads);
            tc.global_random(kDigits);
        });
    };
    return {cfg, std::move(body)};
}

/// Kernel 2: turns per-block histograms into absolute scatter offsets.
/// Lane d scans its digit row across blocks; thread 0 then computes digit
/// bases (exclusive scan of digit totals) which lanes add back to their row.
simt::KernelSpec offsets_spec(std::span<std::uint32_t> hist, unsigned num_blocks) {
    simt::LaunchConfig cfg{"radix.offsets", 1, kDigits};
    auto body = [=](simt::BlockCtx& blk) {
        auto totals = blk.shared_alloc<std::uint32_t>(kDigits);
        auto bases = blk.shared_alloc<std::uint32_t>(kDigits);
        auto g_hist = blk.global_view(hist);

        const auto scan_lane = [&](simt::ThreadCtx& tc) {
            const unsigned d = tc.tid();
            std::uint32_t running = 0;
            for (unsigned b = 0; b < num_blocks; ++b) {
                const std::size_t cell = static_cast<std::size_t>(d) * num_blocks + b;
                const std::uint32_t tmp = g_hist[cell];
                g_hist[cell] = running;
                running += tmp;
            }
            totals[d] = running;
            tc.global_coalesced(static_cast<std::uint64_t>(num_blocks) * 2 * sizeof(std::uint32_t));
            tc.ops(num_blocks * 2);
            tc.shared(1);
        };
        blk.for_each_warp([&](simt::WarpCtx& wc) { wc.for_lanes(scan_lane); });

        blk.single_thread([&](simt::ThreadCtx& tc) {
            std::uint32_t running = 0;
            for (unsigned d = 0; d < kDigits; ++d) {
                bases[d] = running;
                running += totals[d];
            }
            tc.ops(kDigits);
            tc.shared(kDigits * 2);
        });

        const auto add_base_lane = [&](simt::ThreadCtx& tc) {
            const unsigned d = tc.tid();
            for (unsigned b = 0; b < num_blocks; ++b) {
                g_hist[static_cast<std::size_t>(d) * num_blocks + b] += bases[d];
            }
            tc.global_coalesced(static_cast<std::uint64_t>(num_blocks) * 2 * sizeof(std::uint32_t));
            tc.ops(num_blocks);
            tc.shared(1);
        };
        blk.for_each_warp([&](simt::WarpCtx& wc) { wc.for_lanes(add_base_lane); });
    };
    return {cfg, std::move(body)};
}

/// Kernel 3: stable scatter.  Each thread recounts its chunk, thread 0 turns
/// the (digit, thread) histogram into per-thread start cursors seeded from
/// the block's absolute offsets, then every thread emits its chunk in order.
/// Output position order (block, thread, position-in-chunk) preserves input
/// order per digit => the pass is stable.
template <typename K>
simt::KernelSpec scatter_spec(PassBuffers<K> buf, unsigned shift,
                              std::span<const std::uint32_t> hist, unsigned num_blocks) {
    const bool with_values = !buf.vals_in.empty();
    simt::LaunchConfig cfg{"radix.scatter", num_blocks, kBlockThreads};
    auto body = [=](simt::BlockCtx& blk) {
        auto local = blk.shared_alloc<std::uint32_t>(kDigits * kBlockThreads);
        auto cursor = blk.shared_alloc<std::uint32_t>(kDigits * kBlockThreads);
        auto keys_in = blk.global_view(buf.keys_in);
        auto keys_out = blk.global_view(buf.keys_out);
        auto vals_in = blk.global_view(buf.vals_in);
        auto vals_out = blk.global_view(buf.vals_out);
        auto g_hist = blk.global_view(hist);
        const std::size_t tile_begin = static_cast<std::size_t>(blk.block_idx()) * kTileSize;
        const std::size_t tile_end = std::min(tile_begin + kTileSize, buf.keys_in.size());

        blk.for_each_thread([&](simt::ThreadCtx& tc) {
            for (unsigned d = 0; d < kDigits; ++d) local[d * kBlockThreads + tc.tid()] = 0;
            const std::size_t begin = tile_begin + tc.tid() * kChunk;
            const std::size_t end = std::min(begin + kChunk, tile_end);
            for (std::size_t i = begin; i < end; ++i) {
                const K k = keys_in[i];
                ++local[digit_of(k, shift) * kBlockThreads + tc.tid()];
            }
            const auto n = begin < end ? static_cast<std::uint64_t>(end - begin) : 0;
            tc.global_coalesced(n * sizeof(K));
            tc.ops(n * 2 + kDigits);
            tc.shared(n + kDigits);
        });

        blk.single_thread([&](simt::ThreadCtx& tc) {
            for (unsigned d = 0; d < kDigits; ++d) {
                std::uint32_t running =
                    g_hist[static_cast<std::size_t>(d) * num_blocks + blk.block_idx()];
                for (unsigned t = 0; t < kBlockThreads; ++t) {
                    cursor[d * kBlockThreads + t] = running;
                    running += local[d * kBlockThreads + t];
                }
            }
            tc.ops(kDigits * kBlockThreads);
            tc.shared(kDigits * kBlockThreads * 2);
            tc.global_random(kDigits);
        });

        const auto emit_lane = [&](simt::ThreadCtx& tc) {
            const std::size_t begin = tile_begin + tc.tid() * kChunk;
            const std::size_t end = std::min(begin + kChunk, tile_end);
            for (std::size_t i = begin; i < end; ++i) {
                const K k = keys_in[i];
                const std::uint32_t d = digit_of(k, shift);
                const std::uint32_t dst = cursor[d * kBlockThreads + tc.tid()]++;
                keys_out[dst] = k;
                if (with_values) vals_out[dst] = vals_in[i];
            }
            const auto n = begin < end ? static_cast<std::uint64_t>(end - begin) : 0;
            // Reads of the tile (and payload) are coalesced; each scattered
            // write of a key/value pair costs one DRAM segment.
            tc.global_coalesced(n * (sizeof(K) + (with_values ? sizeof(std::uint32_t) : 0)));
            tc.global_random(n);
            tc.ops(n * 4);
            tc.shared(n * 2);
        };
        blk.for_each_warp([&](simt::WarpCtx& wc) { wc.for_lanes(emit_lane); });
    };
    return {cfg, std::move(body)};
}

/// Copy-back kernel: when pruning leaves an odd number of executed passes,
/// the result sits in the alternate buffer; one coalesced pass brings keys
/// (and payload) home to the caller's buffers.
template <typename K>
simt::KernelSpec copy_back_spec(PassBuffers<K> buf, unsigned num_blocks) {
    const bool with_values = !buf.vals_in.empty();
    simt::LaunchConfig cfg{"radix.copy_back", num_blocks, kBlockThreads};
    auto body = [=](simt::BlockCtx& blk) {
        auto keys_in = blk.global_view(buf.keys_in);
        auto keys_out = blk.global_view(buf.keys_out);
        auto vals_in = blk.global_view(buf.vals_in);
        auto vals_out = blk.global_view(buf.vals_out);
        const std::size_t tile_begin = static_cast<std::size_t>(blk.block_idx()) * kTileSize;
        const std::size_t tile_end = std::min(tile_begin + kTileSize, buf.keys_in.size());
        const auto copy_lane = [&](simt::ThreadCtx& tc) {
            const std::size_t begin = tile_begin + tc.tid() * kChunk;
            const std::size_t end = std::min(begin + kChunk, tile_end);
            for (std::size_t i = begin; i < end; ++i) {
                keys_out[i] = keys_in[i];
                if (with_values) vals_out[i] = vals_in[i];
            }
            const auto n = begin < end ? static_cast<std::uint64_t>(end - begin) : 0;
            tc.global_coalesced(2 * n *
                                (sizeof(K) + (with_values ? sizeof(std::uint32_t) : 0)));
            tc.ops(n);
        };
        blk.for_each_warp([&](simt::WarpCtx& wc) { wc.for_lanes(copy_lane); });
    };
    return {cfg, std::move(body)};
}

template <typename K>
RadixStats sort_impl(simt::Device& device, std::span<K> keys,
                     std::span<std::uint32_t> values, const RadixOptions& opts) {
    RadixStats stats;
    const std::size_t count = keys.size();
    if (count == 0) return stats;
    const bool with_values = !values.empty();
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t log_start = device.kernel_log().size();

    const auto num_blocks = static_cast<unsigned>((count + kTileSize - 1) / kTileSize);

    // O(N) scratch: double buffers + per-block histograms.  This allocation
    // is exactly what limits the STA technique's capacity in Table 1.
    simt::DeviceBuffer<K> keys_alt(device, count);
    simt::DeviceBuffer<std::uint32_t> vals_alt;
    if (with_values) vals_alt = simt::DeviceBuffer<std::uint32_t>(device, count);
    simt::DeviceBuffer<std::uint32_t> hist(device,
                                           static_cast<std::size_t>(kDigits) * num_blocks);
    stats.scratch_bytes = keys_alt.size_bytes() + vals_alt.size_bytes() + hist.size_bytes();

    std::span<K> key_bufs[2] = {keys, keys_alt.span()};
    std::span<std::uint32_t> val_bufs[2] = {
        with_values ? values : std::span<std::uint32_t>{},
        with_values ? vals_alt.span() : std::span<std::uint32_t>{}};

    const unsigned total_passes = passes_for<K>();

    // Without pruning the executed pass count is even for every key width,
    // so the result is already home.  With pruning an odd count leaves it in
    // the alternate buffer: one copy-back restores parity.
    static_assert(passes_for<K>() % 2 == 0);

    if (opts.graph_launch) {
        // One work graph for the whole sort: the max-key reduction node is
        // the root; a planning host node bounds the pass count from its
        // partials; each pass's histogram node feeds a decision node that
        // either enqueues that pass's offsets + scatter records or prunes
        // the degenerate pass — the PassRecord-style dynamic chain, never
        // returning to a per-launch host round-trip.  Identical kernel
        // sequence (and bytes, and stats) to the loop below by construction.
        //
        // State lives on this frame and the host lambdas capture it by
        // reference: Device::submit is synchronous, so everything outlives
        // the run; only *kernel* bodies need by-value captures.
        struct PassState {
            unsigned src = 0;
            unsigned needed = 0;
        } st;
        st.needed = total_passes;
        const std::array<std::span<K>, 2> kb = {key_bufs[0], key_bufs[1]};
        const std::array<std::span<std::uint32_t>, 2> vb = {val_bufs[0], val_bufs[1]};
        const auto hspan = hist.span();
        const bool prune = opts.prune_passes;

        std::function<void(simt::GraphCtx&, unsigned)> enqueue_pass =
            [&](simt::GraphCtx& ctx, unsigned pass) {
                if (pass == st.needed) {
                    if (st.src == 1) {
                        ctx.enqueue_kernel(copy_back_spec<K>(
                            PassBuffers<K>{kb[1], kb[0], vb[1], vb[0]}, num_blocks));
                        stats.copy_back = true;
                    }
                    return;
                }
                const unsigned shift = pass * kRadixBits;
                const PassBuffers<K> buf{kb[st.src], kb[1 - st.src], vb[st.src],
                                         vb[1 - st.src]};
                const auto h = ctx.enqueue_kernel(
                    histogram_spec<K>(buf.keys_in, shift, hspan, num_blocks));
                ctx.enqueue_host(
                    "radix.pass_decision",
                    [&, buf, shift, pass](simt::GraphCtx& c) {
                        if (prune && histogram_is_single_digit(hspan, num_blocks, count)) {
                            // Degenerate pass: every key shares this digit, a
                            // scatter would be a stable identity permutation.
                            // No parity flip; chain straight to the next pass.
                            ++stats.passes_skipped;
                            c.prune();
                            enqueue_pass(c, pass + 1);
                            return;
                        }
                        const auto o = c.enqueue_kernel(offsets_spec(hspan, num_blocks));
                        const auto s = c.enqueue_kernel(
                            scatter_spec<K>(buf, shift, hspan, num_blocks), {o});
                        ++stats.passes;
                        st.src = 1 - st.src;
                        c.enqueue_host(
                            "radix.pass_chain",
                            [&, pass](simt::GraphCtx& c2) { enqueue_pass(c2, pass + 1); },
                            {s});
                    },
                    {h});
            };

        simt::Graph g;
        if (prune) {
            auto partials = std::make_shared<std::vector<K>>();
            const auto r =
                g.add_kernel(reduce_max_key_spec(std::span<const K>(keys), partials));
            g.add_host(
                "radix.plan",
                [&, partials](simt::GraphCtx& ctx) {
                    const K max_key =
                        *std::max_element(partials->begin(), partials->end());
                    st.needed = std::min(total_passes, passes_needed(max_key));
                    // Every pass above the highest significant digit is
                    // skipped without running any kernel.
                    if (st.needed < total_passes) ctx.prune(total_passes - st.needed);
                    enqueue_pass(ctx, 0);
                },
                {r});
        } else {
            g.add_host("radix.plan",
                       [&](simt::GraphCtx& ctx) { enqueue_pass(ctx, 0); });
        }
        device.submit(g);
        stats.passes_skipped += total_passes - st.needed;
    } else {
        unsigned needed = total_passes;
        if (opts.prune_passes) {
            // Bound the highest significant digit once: every pass above it
            // has digit 0 for every key and is skipped without running any
            // kernel.
            const K max_key = reduce_max_key(device, std::span<const K>(keys));
            needed = std::min(total_passes, passes_needed(max_key));
        }

        unsigned src = 0;  // which buffer currently holds the data
        for (unsigned pass = 0; pass < needed; ++pass) {
            const unsigned shift = pass * kRadixBits;
            PassBuffers<K> buf{key_bufs[src], key_bufs[1 - src], val_bufs[src],
                               val_bufs[1 - src]};

            launch_spec(device, histogram_spec<K>(buf.keys_in, shift, hist.span(),
                                                  num_blocks));
            if (opts.prune_passes &&
                histogram_is_single_digit(hist.span(), num_blocks, count)) {
                // Every key shares this digit: scattering would copy the data
                // unchanged.  Skip the offsets + scatter kernels; the data
                // stays in the current buffer (no parity flip).
                ++stats.passes_skipped;
                continue;
            }
            launch_spec(device, offsets_spec(hist.span(), num_blocks));
            launch_spec(device, scatter_spec<K>(buf, shift, hist.span(), num_blocks));
            ++stats.passes;
            src = 1 - src;
        }
        stats.passes_skipped += total_passes - needed;

        if (src == 1) {
            const PassBuffers<K> buf{key_bufs[1], key_bufs[0], val_bufs[1], val_bufs[0]};
            launch_spec(device, copy_back_spec<K>(buf, num_blocks));
            stats.copy_back = true;
        }
    }

    const auto t1 = std::chrono::steady_clock::now();
    stats.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    for (std::size_t i = log_start; i < device.kernel_log().size(); ++i) {
        stats.modeled_ms += device.kernel_log()[i].modeled_ms;
    }
    return stats;
}

}  // namespace

RadixStats stable_sort_by_key(simt::Device& device, std::span<std::uint32_t> keys,
                              std::span<std::uint32_t> values, const RadixOptions& opts) {
    if (keys.size() != values.size()) {
        throw simt::DeviceError("stable_sort_by_key: keys/values size mismatch");
    }
    return sort_impl<std::uint32_t>(device, keys, values, opts);
}

RadixStats stable_sort(simt::Device& device, std::span<std::uint32_t> keys,
                       const RadixOptions& opts) {
    return sort_impl<std::uint32_t>(device, keys, {}, opts);
}

RadixStats stable_sort_by_key(simt::Device& device, std::span<std::uint64_t> keys,
                              std::span<std::uint32_t> values, const RadixOptions& opts) {
    if (keys.size() != values.size()) {
        throw simt::DeviceError("stable_sort_by_key: keys/values size mismatch");
    }
    return sort_impl<std::uint64_t>(device, keys, values, opts);
}

RadixStats stable_sort(simt::Device& device, std::span<std::uint64_t> keys,
                       const RadixOptions& opts) {
    return sort_impl<std::uint64_t>(device, keys, {}, opts);
}

std::size_t radix_scratch_bytes(std::size_t count, bool with_values, std::size_t key_bytes) {
    const std::size_t num_blocks = (count + kTileSize - 1) / kTileSize;
    return count * key_bytes + (with_values ? count * sizeof(std::uint32_t) : 0) +
           kDigits * num_blocks * sizeof(std::uint32_t);
}

}  // namespace thrustlite
