#pragma once

#include "core/gpu_array_sort.hpp"
#include "core/pair_sort.hpp"
#include "core/ragged_sort.hpp"
#include "core/resilient.hpp"

namespace gas::resilient {

/// What the retry loop did: attempts actually run, modeled backoff accrued,
/// and the message of every transient error survived along the way.
struct AttemptLog {
    unsigned attempts = 0;
    double backoff_ms = 0.0;
    std::vector<std::string> errors;
};

namespace detail {

/// Retry harness shared by the wrappers below.  `run()` must re-stage from
/// host data on every call (all gas host entry points do: they only write
/// the host span after a fully successful sort+verify, so the host copy is
/// intact after any transient failure — including detected corruption).
template <typename Run>
SortStats with_retries(const RetryPolicy& retry, std::uint64_t salt, AttemptLog* log,
                       Run run) {
    const unsigned max_attempts = retry.max_attempts > 0 ? retry.max_attempts : 1;
    for (unsigned attempt = 1;; ++attempt) {
        try {
            const SortStats stats = run();
            if (log != nullptr) log->attempts = attempt;
            return stats;
        } catch (const std::exception& e) {
            if (!transient(e) || attempt >= max_attempts) throw;
            if (log != nullptr) {
                log->attempts = attempt;
                log->backoff_ms += retry.backoff_ms(attempt, salt);
                log->errors.emplace_back(e.what());
            }
        }
    }
}

}  // namespace detail

/// gpu_array_sort with verification + deterministic retries: transient
/// failures (injected allocation faults, refused launches, detected
/// corruption, failed verification) re-stage from `host_data` and re-sort,
/// up to `retry.max_attempts`; the last error propagates if all attempts
/// fail.  Pass opts.verify_output = true to close the silent-corruption
/// window — without it, undetected corruption cannot be caught here.
template <typename T>
SortStats sort_arrays(simt::Device& device, std::span<T> host_data, std::size_t num_arrays,
                      std::size_t array_size, const Options& opts = {},
                      const RetryPolicy& retry = {}, AttemptLog* log = nullptr) {
    return detail::with_retries(retry, num_arrays ^ array_size, log, [&] {
        return gpu_array_sort<T>(device, host_data, num_arrays, array_size, opts);
    });
}

/// gpu_ragged_sort under the same harness.
inline SortStats ragged_sort(simt::Device& device, std::span<float> host_values,
                             std::span<const std::uint64_t> offsets, const Options& opts = {},
                             const RetryPolicy& retry = {}, AttemptLog* log = nullptr) {
    return detail::with_retries(retry, offsets.size(), log, [&] {
        return gpu_ragged_sort(device, host_values, offsets, opts);
    });
}

/// gpu_pair_sort under the same harness.
template <typename T>
SortStats pair_sort(simt::Device& device, std::span<T> host_keys, std::span<T> host_values,
                    std::size_t num_arrays, std::size_t array_size, const Options& opts = {},
                    const RetryPolicy& retry = {}, AttemptLog* log = nullptr) {
    return detail::with_retries(retry, num_arrays ^ array_size, log, [&] {
        return gpu_pair_sort<T>(device, host_keys, host_values, num_arrays, array_size, opts);
    });
}

/// gpu_ragged_pair_sort under the same harness.
template <typename T>
SortStats ragged_pair_sort(simt::Device& device, std::span<T> host_keys,
                           std::span<T> host_values, std::span<const std::uint64_t> offsets,
                           const Options& opts = {}, const RetryPolicy& retry = {},
                           AttemptLog* log = nullptr) {
    return detail::with_retries(retry, offsets.size(), log, [&] {
        return gpu_ragged_pair_sort<T>(device, host_keys, host_values, offsets, opts);
    });
}

}  // namespace gas::resilient
