#include "core/insertion_sort.hpp"
#include "core/phases.hpp"

namespace gas::detail {

template <typename T>
KernelSpec splitter_phase_spec(std::span<const T> data, std::size_t num_arrays,
                               const SortPlan& plan, std::span<T> splitters) {
    const std::size_t n = plan.array_size;
    const std::size_t sample_size = plan.sample_size;
    const std::size_t p = plan.buckets;
    const std::size_t spa = plan.splitters_per_array;
    const std::size_t sample_stride = n / sample_size;    // >= 1 by plan
    const std::size_t splitter_stride = sample_size / p;  // >= 1 by plan

    simt::LaunchConfig cfg{"gas.phase1_splitters", static_cast<unsigned>(num_arrays), 1};
    auto body = [=](simt::BlockCtx& blk) {
        auto samples = blk.shared_alloc<T>(sample_size);
        const std::size_t a = blk.block_idx();
        auto array = blk.global_view(data.subspan(a * n, n));
        auto out = blk.global_view(splitters.subspan(a * spa, spa));

        blk.single_thread([&](simt::ThreadCtx& tc) {
            // Regular sampling (Algorithm 1's obtainSamples): strided global
            // reads are not warp-coalesced -> each costs a DRAM segment.
            for (std::size_t k = 0; k < sample_size; ++k) {
                samples[k] = array[k * sample_stride];
            }
            tc.global_random(sample_size);
            tc.shared(sample_size);
            tc.ops(sample_size * 2);

            const InsertionCost cost = insertion_sort_seq(samples);
            tc.ops(cost.compares + cost.moves);
            tc.shared(2 * (cost.compares + cost.moves));

            // Gather q = p - 1 splitters at regular intervals, then add the
            // two sentinels of Definition 5 so splitter pairs cannot overlap.
            out[0] = low_sentinel<T>();
            for (std::size_t j = 0; j + 1 < p; ++j) {
                out[j + 1] = samples[(j + 1) * splitter_stride];
            }
            out[p] = high_sentinel<T>();
            tc.shared(p > 0 ? p - 1 : 0);
            tc.global_random(p + 1);
            tc.ops(p + 1);
        });
    };
    return {cfg, std::move(body)};
}

template <typename T>
simt::KernelStats splitter_phase(simt::Device& device, std::span<const T> data,
                                 std::size_t num_arrays, const SortPlan& plan,
                                 std::span<T> splitters) {
    KernelSpec spec = splitter_phase_spec(data, num_arrays, plan, splitters);
    return device.launch(spec.cfg, spec.body);
}

#define GAS_INSTANTIATE(T)                                                                 \
    template simt::KernelStats splitter_phase<T>(simt::Device&, std::span<const T>,        \
                                                 std::size_t, const SortPlan&,             \
                                                 std::span<T>);                            \
    template KernelSpec splitter_phase_spec<T>(std::span<const T>, std::size_t,            \
                                               const SortPlan&, std::span<T>);
GAS_INSTANTIATE(float)
GAS_INSTANTIATE(double)
GAS_INSTANTIATE(std::uint32_t)
GAS_INSTANTIATE(std::int32_t)
#undef GAS_INSTANTIATE

}  // namespace gas::detail
