#include "core/plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gas {

SortPlan make_plan(std::size_t n, const Options& opts, const simt::DeviceProperties& props,
                   std::size_t elem_size) {
    if (opts.bucket_target == 0) throw std::invalid_argument("bucket_target must be >= 1");
    if (!(opts.sampling_rate > 0.0) || opts.sampling_rate > 1.0) {
        throw std::invalid_argument("sampling_rate must be in (0, 1]");
    }
    if (opts.threads_per_bucket == 0) throw std::invalid_argument("threads_per_bucket must be >= 1");

    SortPlan plan;
    plan.array_size = n;
    if (n == 0) return plan;

    // Definition 2: p = floor(n / bucket_target) buckets, at least one.
    std::size_t p = std::max<std::size_t>(1, n / opts.bucket_target);

    // A block cannot host more threads than the device allows.
    const std::size_t max_threads =
        std::max<std::size_t>(1, props.max_threads_per_block / opts.threads_per_bucket);
    p = std::min(p, max_threads);

    // Regular sampling (section 5.1): 10% of the array by default, but never
    // fewer samples than buckets (we need p - 1 splitters at stride >= 1) and
    // never more than the array or the shared-memory staging area.
    std::size_t sample =
        static_cast<std::size_t>(std::llround(opts.sampling_rate * static_cast<double>(n)));
    sample = std::max(sample, p);
    sample = std::min(sample, n);
    const std::size_t shared_elems = props.shared_memory_per_block / elem_size;
    sample = std::min(sample, shared_elems);
    p = std::min(p, sample);  // keep stride >= 1 even after clamping

    plan.buckets = p;
    plan.sample_size = sample;
    plan.splitters_per_array = p + 1;  // q = p - 1 interior + 2 sentinels
    plan.block_threads = static_cast<unsigned>(p) * opts.threads_per_bucket;

    // Phase 2 stages the array, the splitters and the bucket cursors in
    // shared memory when they fit (the paper's assumption for <= 4000-peak
    // spectra); otherwise the driver falls back to a global scratch row.
    const std::size_t phase2_shared = n * elem_size +
                                      plan.splitters_per_array * elem_size +
                                      2ull * plan.block_threads * sizeof(std::uint32_t);
    plan.array_fits_shared = phase2_shared <= props.shared_memory_per_block;
    return plan;
}

}  // namespace gas
