#include "core/device_ops.hpp"

#include <algorithm>

#include "simt/device_buffer.hpp"

namespace gas {

namespace {
constexpr std::size_t kTile = 4096;
constexpr unsigned kThreads = 256;
}  // namespace

template <typename T>
detail::KernelSpec negate_spec(std::span<T> data) {
    static_assert(std::is_floating_point_v<T>,
                  "negation only reverses the total order of floating-point types");
    const std::size_t count = data.size();
    simt::LaunchConfig cfg{"gas.negate",
                           static_cast<unsigned>(std::max<std::size_t>(
                               (count + kTile - 1) / kTile, 1)),
                           kThreads};
    auto body = [=](simt::BlockCtx& blk) {
        const std::size_t tile_begin = static_cast<std::size_t>(blk.block_idx()) * kTile;
        const std::size_t tile_end = std::min(tile_begin + kTile, count);
        const auto negate_lane = [&](simt::ThreadCtx& tc) {
            const std::size_t chunk = kTile / kThreads;
            const std::size_t begin = tile_begin + tc.tid() * chunk;
            const std::size_t end = std::min(begin + chunk, tile_end);
            for (std::size_t i = begin; i < end; ++i) data[i] = -data[i];
            const auto n = begin < end ? static_cast<std::uint64_t>(end - begin) : 0;
            tc.global_coalesced(2 * n * sizeof(T));
            tc.ops(n);
        };
        blk.for_each_warp([&](simt::WarpCtx& wc) { wc.for_lanes(negate_lane); });
    };
    return {cfg, std::move(body)};
}

template <typename T>
simt::KernelStats negate_on_device(simt::Device& device, std::span<T> data) {
    detail::KernelSpec spec = negate_spec(data);
    return device.launch(spec.cfg, spec.body);
}

template simt::KernelStats negate_on_device<float>(simt::Device&, std::span<float>);
template simt::KernelStats negate_on_device<double>(simt::Device&, std::span<double>);
template detail::KernelSpec negate_spec<float>(std::span<float>);
template detail::KernelSpec negate_spec<double>(std::span<double>);

std::size_t count_unsorted_on_device(simt::Device& device, std::span<const float> data,
                                     std::size_t num_arrays, std::size_t array_size) {
    if (num_arrays == 0 || array_size < 2) return 0;

    simt::DeviceBuffer<std::uint32_t> flags(device, num_arrays);
    auto fspan = flags.span();

    const auto threads =
        static_cast<unsigned>(std::min<std::size_t>(array_size - 1, 256));
    simt::LaunchConfig cfg{"gas.check_sorted", static_cast<unsigned>(num_arrays), threads};
    device.launch(cfg, [&](simt::BlockCtx& blk) {
        auto violations = blk.shared_alloc<std::uint32_t>(threads);
        const float* row = data.data() + blk.block_idx() * array_size;

        const auto scan_lane = [&](simt::ThreadCtx& tc) {
            std::uint32_t v = 0;
            std::uint64_t seen = 0;
            for (std::size_t i = tc.tid() + 1; i < array_size; i += threads) {
                v += row[i - 1] > row[i] ? 1u : 0u;
                ++seen;
            }
            violations[tc.tid()] = v;
            tc.global_coalesced(2 * seen * sizeof(float));
            tc.ops(2 * seen);
            tc.shared(1);
        };
        blk.for_each_warp([&](simt::WarpCtx& wc) { wc.for_lanes(scan_lane); });

        blk.single_thread([&](simt::ThreadCtx& tc) {
            std::uint32_t total = 0;
            for (unsigned t = 0; t < threads; ++t) total += violations[t];
            fspan[blk.block_idx()] = total;
            tc.ops(threads);
            tc.shared(threads);
            tc.global_random(1);
        });
    });

    std::size_t unsorted = 0;
    for (std::uint32_t f : fspan) unsorted += f > 0 ? 1 : 0;
    return unsorted;
}

}  // namespace gas
