#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/options.hpp"
#include "core/sort_stats.hpp"
#include "simt/device.hpp"
#include "simt/device_buffer.hpp"

namespace gas {

/// Extension: key-value array sorting.  Sorts N arrays of (key, value) pairs
/// by key, in place, with keys and values in separate row-major buffers
/// (structure-of-arrays, the layout GPU code wants).  This is what the
/// mass-spectrometry pipeline needs to sort whole peaks — (intensity, m/z) —
/// on the device instead of re-sorting pairs on the host.
///
/// Implementation: the same three-phase sample sort as gpu_array_sort, fused
/// into one kernel per the ragged design — splitters, counts and cursors
/// stay in shared memory, the value array is permuted alongside the keys,
/// and no temporary global memory is allocated.  Pairs with equal keys keep
/// no particular order (sample sort is not stable).  Requires each array
/// (keys + values) to fit the 48 KB shared staging area.
/// Instantiated for float and double (double covers high-resolution m/z).
template <typename T>
SortStats sort_pairs_on_device(simt::Device& device, simt::DeviceBuffer<T>& keys,
                               simt::DeviceBuffer<T>& values, std::size_t num_arrays,
                               std::size_t array_size, const Options& opts = {});

/// Host wrapper (upload, sort, download both buffers).
template <typename T>
SortStats gpu_pair_sort(simt::Device& device, std::span<T> host_keys,
                        std::span<T> host_values, std::size_t num_arrays,
                        std::size_t array_size, const Options& opts = {});

/// Container convenience.
template <typename T>
SortStats gpu_pair_sort(simt::Device& device, std::vector<T>& keys, std::vector<T>& values,
                        std::size_t num_arrays, std::size_t array_size,
                        const Options& opts = {}) {
    return gpu_pair_sort(device, std::span<T>(keys), std::span<T>(values), num_arrays,
                         array_size, opts);
}

/// Ragged variant: CSR offsets, arrays of varying size (spectra!).
template <typename T>
SortStats sort_ragged_pairs_on_device(simt::Device& device, simt::DeviceBuffer<T>& keys,
                                      simt::DeviceBuffer<T>& values,
                                      std::span<const std::uint64_t> offsets,
                                      const Options& opts = {});

/// Host wrapper for the ragged variant.
template <typename T>
SortStats gpu_ragged_pair_sort(simt::Device& device, std::span<T> host_keys,
                               std::span<T> host_values,
                               std::span<const std::uint64_t> offsets,
                               const Options& opts = {});

/// Container convenience for the ragged variant.
template <typename T>
SortStats gpu_ragged_pair_sort(simt::Device& device, std::vector<T>& keys,
                               std::vector<T>& values,
                               std::span<const std::uint64_t> offsets,
                               const Options& opts = {}) {
    return gpu_ragged_pair_sort(device, std::span<T>(keys), std::span<T>(values), offsets,
                                opts);
}

#define GAS_DECLARE_PAIR(T)                                                                \
    extern template SortStats sort_pairs_on_device<T>(                                     \
        simt::Device&, simt::DeviceBuffer<T>&, simt::DeviceBuffer<T>&, std::size_t,        \
        std::size_t, const Options&);                                                      \
    extern template SortStats gpu_pair_sort<T>(simt::Device&, std::span<T>, std::span<T>,  \
                                               std::size_t, std::size_t, const Options&);  \
    extern template SortStats sort_ragged_pairs_on_device<T>(                              \
        simt::Device&, simt::DeviceBuffer<T>&, simt::DeviceBuffer<T>&,                     \
        std::span<const std::uint64_t>, const Options&);                                   \
    extern template SortStats gpu_ragged_pair_sort<T>(                                     \
        simt::Device&, std::span<T>, std::span<T>, std::span<const std::uint64_t>,         \
        const Options&);
GAS_DECLARE_PAIR(float)
GAS_DECLARE_PAIR(double)
#undef GAS_DECLARE_PAIR

}  // namespace gas
