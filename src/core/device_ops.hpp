#pragma once

#include <cstdint>
#include <span>

#include "core/phases.hpp"
#include "simt/device.hpp"

namespace gas {

/// Elementwise in-place negation kernel over a device-resident buffer of
/// floating-point values.  IEEE negation reverses float total order exactly,
/// which is how the drivers implement descending sorts around the ascending
/// machinery.
template <typename T>
simt::KernelStats negate_on_device(simt::Device& device, std::span<T> data);

extern template simt::KernelStats negate_on_device<float>(simt::Device&, std::span<float>);
extern template simt::KernelStats negate_on_device<double>(simt::Device&,
                                                           std::span<double>);

/// Spec builder behind negate_on_device: the same kernel as a graph node
/// (the descending-order pre/post passes of the graph-launch path).
template <typename T>
detail::KernelSpec negate_spec(std::span<T> data);

extern template detail::KernelSpec negate_spec<float>(std::span<float>);
extern template detail::KernelSpec negate_spec<double>(std::span<double>);

/// Device-side sortedness check: one block per array, threads compare
/// adjacent elements in strides, a per-array violation count is reduced in
/// shared memory.  Lets callers re-validate results without copying the
/// dataset back to the host.  Returns the number of unsorted arrays.
std::size_t count_unsorted_on_device(simt::Device& device, std::span<const float> data,
                                     std::size_t num_arrays, std::size_t array_size);

/// Convenience: true iff every array is ascending (device-side check).
inline bool is_sorted_on_device(simt::Device& device, std::span<const float> data,
                                std::size_t num_arrays, std::size_t array_size) {
    return count_unsorted_on_device(device, data, num_arrays, array_size) == 0;
}

}  // namespace gas
