#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gas {

/// Work done by one insertion sort (for translating into lane counters).
struct InsertionCost {
    std::uint64_t compares = 0;
    std::uint64_t moves = 0;
};

/// Classic in-place insertion sort — the paper's phase 1 (sample sorting) and
/// phase 3 (bucket sorting) primitive: fastest known choice for the ~20
/// element buckets the plan produces, and it needs no extra memory.
/// Returns the comparison/move counts the caller charges to its lane.
///
/// Generic over the sequence type so kernels can pass either a raw std::span
/// or a simt::sanitize::TrackedSpan (whose operator[] returns a recording
/// proxy) — `Seq` only needs `value_type`, `size()` and indexed access.
template <typename Seq>
InsertionCost insertion_sort_seq(Seq a) {
    using T = typename Seq::value_type;
    InsertionCost cost;
    for (std::size_t i = 1; i < a.size(); ++i) {
        const T key = a[i];
        std::size_t j = i;
        while (j > 0) {
            ++cost.compares;
            if (static_cast<T>(a[j - 1]) <= key) break;
            a[j] = static_cast<T>(a[j - 1]);
            ++cost.moves;
            --j;
        }
        a[j] = key;
        ++cost.moves;
    }
    return cost;
}

template <typename T>
InsertionCost insertion_sort(std::span<T> a) {
    return insertion_sort_seq(a);
}

/// Binary insertion sort: locates each element's slot with a binary search
/// (upper bound, so the output is byte-for-byte the stable result plain
/// insertion produces) and then shifts.  Same O(k^2) moves, but compares
/// drop from O(k^2) to O(k log k) — the win for mid-sized buckets where the
/// compare stream dominates the lane's modeled cycles.
template <typename Seq>
InsertionCost binary_insertion_sort_seq(Seq a) {
    using T = typename Seq::value_type;
    InsertionCost cost;
    for (std::size_t i = 1; i < a.size(); ++i) {
        const T key = a[i];
        std::size_t lo = 0;
        std::size_t hi = i;
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            ++cost.compares;
            if (static_cast<T>(a[mid]) <= key) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        for (std::size_t j = i; j > lo; --j) {
            a[j] = static_cast<T>(a[j - 1]);
            ++cost.moves;
        }
        a[lo] = key;
        ++cost.moves;
    }
    return cost;
}

/// Pair variant of binary insertion: keys decide the slot, values ride
/// along move-for-move (same cost accounting as insertion_sort_pairs_seq).
template <typename KeySeq, typename ValSeq>
InsertionCost binary_insertion_sort_pairs_seq(KeySeq keys, ValSeq values) {
    using T = typename KeySeq::value_type;
    using V = typename ValSeq::value_type;
    InsertionCost cost;
    for (std::size_t i = 1; i < keys.size(); ++i) {
        const T key = keys[i];
        const V val = values[i];
        std::size_t lo = 0;
        std::size_t hi = i;
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            ++cost.compares;
            if (static_cast<T>(keys[mid]) <= key) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        for (std::size_t j = i; j > lo; --j) {
            keys[j] = static_cast<T>(keys[j - 1]);
            values[j] = static_cast<V>(values[j - 1]);
            cost.moves += 2;
        }
        keys[lo] = key;
        values[lo] = val;
        cost.moves += 2;
    }
    return cost;
}

/// Container convenience (tests and host-side callers).
template <typename T>
InsertionCost insertion_sort(std::vector<T>& v) {
    return insertion_sort(std::span<T>(v));
}

/// Pair variant: sorts `keys` ascending and applies every move to `values`
/// too, keeping (key, value) pairs together.  Used by the key-value array
/// sort extension (phase 3 on peak arrays).  Generic like
/// insertion_sort_seq, so tracked views record the paired moves too.
template <typename KeySeq, typename ValSeq>
InsertionCost insertion_sort_pairs_seq(KeySeq keys, ValSeq values) {
    using T = typename KeySeq::value_type;
    using V = typename ValSeq::value_type;
    InsertionCost cost;
    for (std::size_t i = 1; i < keys.size(); ++i) {
        const T key = keys[i];
        const V val = values[i];
        std::size_t j = i;
        while (j > 0) {
            ++cost.compares;
            if (static_cast<T>(keys[j - 1]) <= key) break;
            keys[j] = static_cast<T>(keys[j - 1]);
            values[j] = static_cast<V>(values[j - 1]);
            cost.moves += 2;
            --j;
        }
        keys[j] = key;
        values[j] = val;
        cost.moves += 2;
    }
    return cost;
}

template <typename T>
InsertionCost insertion_sort_pairs(std::span<T> keys, std::span<T> values) {
    return insertion_sort_pairs_seq(keys, values);
}

}  // namespace gas
