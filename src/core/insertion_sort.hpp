#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gas {

/// Work done by one insertion sort (for translating into lane counters).
struct InsertionCost {
    std::uint64_t compares = 0;
    std::uint64_t moves = 0;
};

/// Classic in-place insertion sort — the paper's phase 1 (sample sorting) and
/// phase 3 (bucket sorting) primitive: fastest known choice for the ~20
/// element buckets the plan produces, and it needs no extra memory.
/// Returns the comparison/move counts the caller charges to its lane.
template <typename T>
InsertionCost insertion_sort(std::span<T> a) {
    InsertionCost cost;
    for (std::size_t i = 1; i < a.size(); ++i) {
        const T key = a[i];
        std::size_t j = i;
        while (j > 0) {
            ++cost.compares;
            if (a[j - 1] <= key) break;
            a[j] = a[j - 1];
            ++cost.moves;
            --j;
        }
        a[j] = key;
        ++cost.moves;
    }
    return cost;
}

/// Container convenience (tests and host-side callers).
template <typename T>
InsertionCost insertion_sort(std::vector<T>& v) {
    return insertion_sort(std::span<T>(v));
}

/// Pair variant: sorts `keys` ascending and applies every move to `values`
/// too, keeping (key, value) pairs together.  Used by the key-value array
/// sort extension (phase 3 on peak arrays).
template <typename T>
InsertionCost insertion_sort_pairs(std::span<T> keys, std::span<T> values) {
    InsertionCost cost;
    for (std::size_t i = 1; i < keys.size(); ++i) {
        const T key = keys[i];
        const T val = values[i];
        std::size_t j = i;
        while (j > 0) {
            ++cost.compares;
            if (keys[j - 1] <= key) break;
            keys[j] = keys[j - 1];
            values[j] = values[j - 1];
            cost.moves += 2;
            --j;
        }
        keys[j] = key;
        values[j] = val;
        cost.moves += 2;
    }
    return cost;
}

}  // namespace gas
