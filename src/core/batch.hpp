#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/gpu_array_sort.hpp"
#include "core/options.hpp"
#include "core/pair_sort.hpp"
#include "core/ragged_sort.hpp"
#include "core/sort_stats.hpp"
#include "simt/device.hpp"
#include "simt/device_buffer.hpp"

namespace gas {

/// One caller's share of a fused device batch: `num_arrays` arrays starting
/// at array index `first_array` of the concatenated buffer.
struct BatchSlice {
    std::size_t first_array = 0;
    std::size_t num_arrays = 0;
};

/// Batched entry points for serving layers (gas::serve) that fuse many small
/// independent sort requests into one device launch sequence.
///
/// The fusion invariant these functions pin down: every kernel in the repo
/// processes one array per block (or per packed lane) with no inter-array
/// coupling — splitters, bucket counts and phase-3 work never cross array
/// boundaries.  Concatenating K requests of the same array size and options
/// into one (ΣN x n) launch therefore produces, for each request's rows,
/// exactly the bytes a standalone gpu_array_sort of that request would have
/// produced, while paying one launch sequence instead of K (and filling the
/// SMs a 4-block request would leave idle).  `tests/serve/test_batch.cpp`
/// asserts the bit-identity per slice.

/// Sorts a fused uniform batch in place on the device.  `slices` must tile
/// [0, total_arrays) without gaps or overlap (each slice one request);
/// throws std::invalid_argument otherwise.
SortStats sort_uniform_batch_on_device(simt::Device& device,
                                       simt::DeviceBuffer<float>& data,
                                       std::span<const BatchSlice> slices,
                                       std::size_t total_arrays, std::size_t array_size,
                                       const Options& opts = {});

/// Fused ragged batch: one CSR offset table spanning every request's rows.
/// `slices` index *arrays* (offset rows), tiling [0, offsets.size()-1).
SortStats sort_ragged_batch_on_device(simt::Device& device,
                                      simt::DeviceBuffer<float>& values,
                                      std::span<const std::uint64_t> offsets,
                                      std::span<const BatchSlice> slices,
                                      const Options& opts = {});

/// Fused key/value pair batch (uniform geometry, float keys and payloads).
SortStats sort_pair_batch_on_device(simt::Device& device, simt::DeviceBuffer<float>& keys,
                                    simt::DeviceBuffer<float>& values,
                                    std::span<const BatchSlice> slices,
                                    std::size_t total_arrays, std::size_t array_size,
                                    const Options& opts = {});

/// Device bytes a fused uniform/pair batch will occupy (data + temporaries),
/// the admission-control arithmetic gas::serve uses before accepting a
/// request into a batch.  `buffers` is 1 for value-only jobs, 2 for pairs.
[[nodiscard]] std::size_t batch_footprint_bytes(std::size_t total_arrays,
                                                std::size_t array_size, const Options& opts,
                                                const simt::DeviceProperties& props,
                                                std::size_t buffers = 1);

/// True when a ragged row of `n` elements fits the fused kernel's
/// shared-memory staging area (`buffers` as above); callers route rows that
/// do not fit to a fallback path instead of letting the fused launch throw.
[[nodiscard]] bool ragged_row_fits_shared(std::size_t n, const Options& opts,
                                          const simt::DeviceProperties& props,
                                          std::size_t buffers = 1);

}  // namespace gas
