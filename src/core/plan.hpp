#pragma once

#include <cstddef>

#include "core/options.hpp"
#include "simt/device_properties.hpp"

namespace gas {

/// Derived launch geometry for sorting arrays of one size (Definitions 2-3
/// of the paper: p = floor(n / bucket_target) buckets, q = p - 1 interior
/// splitters, plus the two +-infinity sentinels of Definition 5).
struct SortPlan {
    std::size_t array_size = 0;          ///< n
    std::size_t buckets = 1;             ///< p
    std::size_t sample_size = 1;         ///< |samples| per array (regular sampling)
    std::size_t splitters_per_array = 2; ///< p + 1 (q interior + 2 sentinels)
    unsigned block_threads = 1;          ///< phase 2/3 threads per block
    bool array_fits_shared = true;       ///< can the array stage into 48 KB?

    [[nodiscard]] std::size_t interior_splitters() const { return buckets - 1; }
};

/// Computes the plan for arrays of `n` elements of `elem_size` bytes under
/// `opts` on a device with `props` (element size drives the shared-memory
/// staging decisions).  Throws std::invalid_argument on unusable options.
[[nodiscard]] SortPlan make_plan(std::size_t n, const Options& opts,
                                 const simt::DeviceProperties& props,
                                 std::size_t elem_size = sizeof(float));

}  // namespace gas
