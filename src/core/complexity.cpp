#include "core/complexity.hpp"

#include <cmath>
#include <stdexcept>

namespace gas {

ComplexityTerms complexity_terms(std::size_t n, const Options& opts,
                                 const simt::DeviceProperties& props) {
    ComplexityTerms t;
    if (n == 0) return t;
    const SortPlan plan = make_plan(n, opts, props);
    const auto p = static_cast<double>(plan.buckets);
    const double q = p - 1.0;
    t.linear = static_cast<double>(n) + q;
    t.nlogn = (p * opts.sampling_rate + 1.0) / p * static_cast<double>(n) *
              std::log2(static_cast<double>(std::max<std::size_t>(n, 2)));
    return t;
}

ComplexityFit fit_complexity(std::span<const std::size_t> sizes,
                             std::span<const double> measured_ms, const Options& opts,
                             const simt::DeviceProperties& props) {
    if (sizes.size() != measured_ms.size()) {
        throw std::invalid_argument("fit_complexity: size/measurement count mismatch");
    }
    ComplexityFit fit;
    if (sizes.empty()) return fit;

    std::vector<ComplexityTerms> terms;
    terms.reserve(sizes.size());
    for (std::size_t n : sizes) terms.push_back(complexity_terms(n, opts, props));

    double s11 = 0;
    double s12 = 0;
    double s22 = 0;
    double sy1 = 0;
    double sy2 = 0;
    for (std::size_t i = 0; i < terms.size(); ++i) {
        s11 += terms[i].linear * terms[i].linear;
        s12 += terms[i].linear * terms[i].nlogn;
        s22 += terms[i].nlogn * terms[i].nlogn;
        sy1 += measured_ms[i] * terms[i].linear;
        sy2 += measured_ms[i] * terms[i].nlogn;
    }
    const double det = s11 * s22 - s12 * s12;
    if (std::abs(det) > 1e-12) {
        fit.a = (sy1 * s22 - sy2 * s12) / det;
        fit.b = (s11 * sy2 - s12 * sy1) / det;
    }
    if (fit.a < 0.0 || fit.b < 0.0 || (fit.a == 0.0 && fit.b == 0.0)) {
        const double a_only = s11 > 0 ? sy1 / s11 : 0.0;
        const double b_only = s22 > 0 ? sy2 / s22 : 0.0;
        double err_a = 0.0;
        double err_b = 0.0;
        for (std::size_t i = 0; i < terms.size(); ++i) {
            const double da = measured_ms[i] - a_only * terms[i].linear;
            const double db = measured_ms[i] - b_only * terms[i].nlogn;
            err_a += da * da;
            err_b += db * db;
        }
        if (err_a < err_b) {
            fit.a = a_only;
            fit.b = 0.0;
        } else {
            fit.a = 0.0;
            fit.b = b_only;
        }
    }

    fit.predicted_ms.reserve(terms.size());
    for (const auto& t : terms) fit.predicted_ms.push_back(fit.a * t.linear + fit.b * t.nlogn);

    // Pearson correlation predicted vs. measured.
    const auto m = static_cast<double>(terms.size());
    double sx = 0;
    double sy = 0;
    double sxx = 0;
    double syy = 0;
    double sxy = 0;
    for (std::size_t i = 0; i < terms.size(); ++i) {
        const double x = fit.predicted_ms[i];
        const double y = measured_ms[i];
        sx += x;
        sy += y;
        sxx += x * x;
        syy += y * y;
        sxy += x * y;
    }
    const double cov = sxy - sx * sy / m;
    const double vx = sxx - sx * sx / m;
    const double vy = syy - sy * sy / m;
    fit.pearson = vx > 0 && vy > 0 ? cov / std::sqrt(vx * vy) : 1.0;
    return fit;
}

}  // namespace gas
