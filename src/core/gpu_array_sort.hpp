#pragma once

#include <cstdint>
#include <span>

#include "core/options.hpp"
#include "core/plan.hpp"
#include "core/sort_stats.hpp"
#include "simt/device.hpp"
#include "simt/device_buffer.hpp"

namespace gas {

/// Sorts `num_arrays` device-resident arrays of `array_size` elements each,
/// stored row-major in `data` (a buffer previously allocated on `device`),
/// in place, using the paper's three-phase GPU-ArraySort algorithm:
///   1. splitter selection by regular sampling (one thread per array),
///   2. in-place bucketing by splitter pairs (one thread per bucket),
///   3. in-place insertion sort per bucket (one thread per bucket).
///
/// Element types: float (the paper's), double, uint32_t and int32_t are
/// instantiated.  SortOrder::Descending is available for the floating-point
/// types (implemented by negation, which has no integral equivalent).
///
/// Temporary device memory is limited to the splitter array S
/// ((p+1) elements per array) and the bucket-size array Z (p uint32 per
/// array) — the in-place property the paper trades against STA's ~3x
/// footprint.
///
/// Preconditions: no NaN values (NaNs have no place in a total order and
/// would be dropped by the bucketing predicate).  +-infinity is handled.
///
/// Throws simt::DeviceBadAlloc if S and Z do not fit next to the data.
template <typename T>
SortStats sort_arrays_on_device(simt::Device& device, simt::DeviceBuffer<T>& data,
                                std::size_t num_arrays, std::size_t array_size,
                                const Options& opts = {});

/// Convenience wrapper: uploads `host_data` (row-major N x n), sorts on the
/// device, downloads the result back over `host_data`.  Transfer costs are
/// recorded in the returned stats.
template <typename T>
SortStats gpu_array_sort(simt::Device& device, std::span<T> host_data,
                         std::size_t num_arrays, std::size_t array_size,
                         const Options& opts = {});

/// Container convenience.
template <typename T>
SortStats gpu_array_sort(simt::Device& device, std::vector<T>& host_data,
                         std::size_t num_arrays, std::size_t array_size,
                         const Options& opts = {}) {
    return gpu_array_sort(device, std::span<T>(host_data), num_arrays, array_size, opts);
}

/// Device bytes a sort of (num_arrays x array_size) will occupy, including
/// the input data itself — the capacity model behind Table 1.
[[nodiscard]] std::size_t device_footprint_bytes(std::size_t num_arrays,
                                                 std::size_t array_size, const Options& opts,
                                                 const simt::DeviceProperties& props,
                                                 std::size_t elem_size = sizeof(float));

#define GAS_DECLARE_SORT(T)                                                                \
    extern template SortStats sort_arrays_on_device<T>(                                    \
        simt::Device&, simt::DeviceBuffer<T>&, std::size_t, std::size_t, const Options&);  \
    extern template SortStats gpu_array_sort<T>(simt::Device&, std::span<T>, std::size_t, \
                                                std::size_t, const Options&);
GAS_DECLARE_SORT(float)
GAS_DECLARE_SORT(double)
GAS_DECLARE_SORT(std::uint32_t)
GAS_DECLARE_SORT(std::int32_t)
#undef GAS_DECLARE_SORT

}  // namespace gas
