#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "core/sort_stats.hpp"
#include "simt/device.hpp"
#include "simt/error.hpp"

namespace gas::resilient {

// ---------------------------------------------------------------------------
// Order-independent multiset checksums.
//
// Each element's bit pattern is mixed through the splitmix64 finalizer and
// the mixes are summed mod 2^64, so the checksum is invariant under any
// permutation of the row but (with overwhelming probability) not under any
// other change — dropped/duplicated/altered elements, including a single bit
// flip, move it.  Sortedness + matching checksum together certify "a sorted
// permutation of the input", the property Options::verify_output checks.
// ---------------------------------------------------------------------------

[[nodiscard]] inline std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

template <typename T>
[[nodiscard]] std::uint64_t key_bits(T v) {
    if constexpr (sizeof(T) == 4) {
        return std::bit_cast<std::uint32_t>(v);
    } else {
        static_assert(sizeof(T) == 8, "supported element widths: 4 and 8 bytes");
        return std::bit_cast<std::uint64_t>(v);
    }
}

template <typename T>
[[nodiscard]] std::uint64_t elem_hash(T v) {
    return mix64(key_bits(v));
}

template <typename T>
[[nodiscard]] std::uint64_t pair_hash(T key, T value) {
    return mix64(key_bits(key) ^ mix64(key_bits(value)));
}

template <typename T>
[[nodiscard]] std::uint64_t row_checksum(std::span<const T> row) {
    std::uint64_t sum = 0;
    for (const T v : row) sum += elem_hash(v);
    return sum;
}

template <typename T>
[[nodiscard]] std::uint64_t pair_row_checksum(std::span<const T> keys, std::span<const T> values) {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) sum += pair_hash(keys[i], values[i]);
    return sum;
}

// Host-side batch checksums.  The verification baseline must come from data
// no device fault can touch: the serve layer hashes its staging copies, and
// the sorters hash the freshly-uploaded span before the first launch (the
// corruption model materializes flips at launch *entry*, so that read is
// pristine by construction).  Taking the baseline via a device kernel would
// open a TOCTOU window — corruption firing at that kernel's entry poisons
// the baseline and certifies corrupted data as correct.

template <typename T>
[[nodiscard]] std::vector<std::uint64_t> host_row_checksums(std::span<const T> data,
                                                            std::size_t num_rows,
                                                            std::size_t row_size) {
    std::vector<std::uint64_t> out(num_rows);
    for (std::size_t r = 0; r < num_rows; ++r) {
        out[r] = row_checksum(data.subspan(r * row_size, row_size));
    }
    return out;
}

template <typename T>
[[nodiscard]] std::vector<std::uint64_t> host_csr_checksums(
    std::span<const T> data, std::span<const std::uint64_t> offsets) {
    std::vector<std::uint64_t> out(offsets.empty() ? 0 : offsets.size() - 1);
    for (std::size_t r = 0; r < out.size(); ++r) {
        out[r] = row_checksum(data.subspan(offsets[r], offsets[r + 1] - offsets[r]));
    }
    return out;
}

template <typename T>
[[nodiscard]] std::vector<std::uint64_t> host_pair_row_checksums(std::span<const T> keys,
                                                                 std::span<const T> values,
                                                                 std::size_t num_rows,
                                                                 std::size_t row_size) {
    std::vector<std::uint64_t> out(num_rows);
    for (std::size_t r = 0; r < num_rows; ++r) {
        out[r] = pair_row_checksum(keys.subspan(r * row_size, row_size),
                                   values.subspan(r * row_size, row_size));
    }
    return out;
}

template <typename T>
[[nodiscard]] std::vector<std::uint64_t> host_pair_csr_checksums(
    std::span<const T> keys, std::span<const T> values,
    std::span<const std::uint64_t> offsets) {
    std::vector<std::uint64_t> out(offsets.empty() ? 0 : offsets.size() - 1);
    for (std::size_t r = 0; r < out.size(); ++r) {
        const std::size_t len = offsets[r + 1] - offsets[r];
        out[r] = pair_row_checksum(keys.subspan(offsets[r], len),
                                   values.subspan(offsets[r], len));
    }
    return out;
}

// ---------------------------------------------------------------------------
// Typed verification failure + deterministic retry policy.
// ---------------------------------------------------------------------------

/// Thrown when post-sort verification finds rows that are not a sorted
/// permutation of their input (Options::verify_output).  Device data is
/// suspect; recovery means re-staging from the host copy and retrying.
class VerifyError : public std::runtime_error {
  public:
    VerifyError(const std::string& where, std::size_t unsorted, std::size_t mismatched)
        : std::runtime_error("verification failed in " + where + ": " +
                             std::to_string(unsorted) + " unsorted row(s), " +
                             std::to_string(mismatched) + " checksum mismatch(es)"),
          unsorted_(unsorted),
          mismatched_(mismatched) {}

    [[nodiscard]] std::size_t unsorted_rows() const { return unsorted_; }
    [[nodiscard]] std::size_t mismatched_rows() const { return mismatched_; }

  private:
    std::size_t unsorted_;
    std::size_t mismatched_;
};

/// Seeded deterministic retry policy: capped exponential backoff with
/// multiplicative jitter.  Backoff is *modeled* milliseconds (recorded in
/// stats, never slept), consistent with the substrate's modeled-time
/// philosophy — and deterministic, so chaos runs reproduce byte-for-byte.
struct RetryPolicy {
    unsigned max_attempts = 3;  ///< total tries, including the first
    double base_ms = 1.0;       ///< backoff before attempt 2
    double cap_ms = 64.0;       ///< exponential growth ceiling
    std::uint64_t seed = 1;     ///< jitter seed

    /// Modeled wait after `attempt` (1-based) failed; jitter in [0.5, 1.0)
    /// of the capped exponential, decided by (seed, salt, attempt).
    [[nodiscard]] double backoff_ms(unsigned attempt, std::uint64_t salt = 0) const {
        double window = base_ms;
        for (unsigned i = 1; i < attempt && window < cap_ms; ++i) window *= 2.0;
        window = window < cap_ms ? window : cap_ms;
        const std::uint64_t h = mix64(mix64(seed ^ salt * 0x9e3779b97f4a7c15ull) ^ attempt);
        const double frac = static_cast<double>(h >> 11) * 0x1.0p-53;
        return window * (0.5 + 0.5 * frac);
    }
};

/// True for errors that a retry (with re-staging from host data) can
/// plausibly cure: injected/transient allocation failures, refused
/// launches, aborted hangs, detected corruption, and failed output
/// verification.  SanitizeError — a real bug in kernel code — is
/// deliberately excluded.
[[nodiscard]] inline bool transient(const std::exception& e) {
    if (dynamic_cast<const simt::SanitizeError*>(&e) != nullptr) return false;
    return dynamic_cast<const simt::DeviceBadAlloc*>(&e) != nullptr ||
           dynamic_cast<const simt::LaunchFault*>(&e) != nullptr ||
           dynamic_cast<const simt::StallFault*>(&e) != nullptr ||
           dynamic_cast<const simt::TransferError*>(&e) != nullptr ||
           dynamic_cast<const VerifyError*>(&e) != nullptr;
}

// ---------------------------------------------------------------------------
// Device-side checksum / verify kernels.
//
// One thread per row, kPack rows per block (the small-array path's packing).
// Verification is a real kernel launch with modeled cost, so enabling
// Options::verify_output shows up honestly in modeled time (SortStats::verify)
// — and so an injected corruption arriving *before* the verify launch is
// always observed (corruption is checked at launch entry; see simt::faults).
// ---------------------------------------------------------------------------

/// Outcome of one verify kernel over a batch of rows.
struct VerifyCounts {
    std::size_t rows = 0;
    std::size_t unsorted = 0;    ///< rows violating the requested order
    std::size_t mismatched = 0;  ///< rows whose multiset checksum changed
    double modeled_ms = 0.0;
    double wall_ms = 0.0;

    [[nodiscard]] bool ok() const { return unsorted == 0 && mismatched == 0; }
};

namespace detail {

inline constexpr unsigned kRowsPerBlock = 256;

/// `row(r)` yields {keys, values} spans for row r (values empty when the
/// workload is keys-only).
template <typename T, typename RowFn>
simt::KernelStats checksum_kernel(simt::Device& device, const char* name,
                                  std::size_t num_rows, RowFn row,
                                  std::span<std::uint64_t> out) {
    if (num_rows == 0) return {};
    const simt::LaunchConfig cfg{
        name, static_cast<unsigned>((num_rows + kRowsPerBlock - 1) / kRowsPerBlock),
        kRowsPerBlock};
    return device.launch(cfg, [&](simt::BlockCtx& blk) {
        const auto checksum_lane = [&](simt::ThreadCtx& tc) {
            const std::size_t r =
                static_cast<std::size_t>(blk.block_idx()) * kRowsPerBlock + tc.tid();
            if (r >= num_rows) return;
            const auto [keys, values] = row(r);
            std::uint64_t sum = 0;
            if (values.empty()) {
                for (const T v : keys) sum += elem_hash(v);
            } else {
                for (std::size_t i = 0; i < keys.size(); ++i) {
                    sum += pair_hash(keys[i], values[i]);
                }
            }
            out[r] = sum;
            tc.ops(3ull * keys.size());
            // A per-lane linear scan consumes every byte of every DRAM
            // segment it touches — streaming bandwidth, not scattered access.
            tc.global_coalesced(keys.size_bytes() + values.size_bytes() +
                                sizeof(std::uint64_t));
        };
        blk.for_each_warp([&](simt::WarpCtx& wc) { wc.for_lanes(checksum_lane); });
    });
}

template <typename T, typename RowFn>
VerifyCounts verify_kernel(simt::Device& device, const char* name, std::size_t num_rows,
                           RowFn row, SortOrder order,
                           std::span<const std::uint64_t> expected,
                           std::span<std::uint8_t> row_fail) {
    VerifyCounts counts;
    counts.rows = num_rows;
    if (num_rows == 0) return counts;
    std::vector<std::uint8_t> local;
    if (row_fail.empty()) {
        local.assign(num_rows, 0);
        row_fail = local;
    }
    const bool ascending = order == SortOrder::Ascending;
    const simt::LaunchConfig cfg{
        name, static_cast<unsigned>((num_rows + kRowsPerBlock - 1) / kRowsPerBlock),
        kRowsPerBlock};
    const simt::KernelStats k = device.launch(cfg, [&](simt::BlockCtx& blk) {
        const auto verify_lane = [&](simt::ThreadCtx& tc) {
            const std::size_t r =
                static_cast<std::size_t>(blk.block_idx()) * kRowsPerBlock + tc.tid();
            if (r >= num_rows) return;
            const auto [keys, values] = row(r);
            std::uint64_t sum = 0;
            bool sorted = true;
            for (std::size_t i = 0; i < keys.size(); ++i) {
                sum += values.empty() ? elem_hash(keys[i]) : pair_hash(keys[i], values[i]);
                if (i > 0) {
                    sorted &= ascending ? !(keys[i] < keys[i - 1]) : !(keys[i - 1] < keys[i]);
                }
            }
            std::uint8_t flags = 0;
            if (!sorted) flags |= 1;
            if (sum != expected[r]) flags |= 2;
            row_fail[r] = flags;
            tc.ops(4ull * keys.size());
            // Streaming row scan: charge bandwidth, not per-element segments
            // (see checksum_kernel above).
            tc.global_coalesced(keys.size_bytes() + values.size_bytes() +
                                sizeof(std::uint64_t) + sizeof(std::uint8_t));
        };
        blk.for_each_warp([&](simt::WarpCtx& wc) { wc.for_lanes(verify_lane); });
    });
    counts.modeled_ms = k.modeled_ms;
    counts.wall_ms = k.wall_ms;
    for (std::size_t r = 0; r < num_rows; ++r) {
        counts.unsorted += (row_fail[r] & 1) != 0 ? 1 : 0;
        counts.mismatched += (row_fail[r] & 2) != 0 ? 1 : 0;
    }
    return counts;
}

template <typename T>
struct UniformRows {
    std::span<const T> data;
    std::size_t row_size;
    std::span<const T> values;  ///< empty for keys-only
    auto operator()(std::size_t r) const {
        return std::pair{data.subspan(r * row_size, row_size),
                         values.empty() ? std::span<const T>{}
                                        : values.subspan(r * row_size, row_size)};
    }
};

template <typename T>
struct CsrRows {
    std::span<const T> data;
    std::span<const std::uint64_t> offsets;
    std::span<const T> values;  ///< empty for keys-only
    auto operator()(std::size_t r) const {
        const std::size_t begin = offsets[r];
        const std::size_t len = offsets[r + 1] - begin;
        return std::pair{data.subspan(begin, len),
                         values.empty() ? std::span<const T>{} : values.subspan(begin, len)};
    }
};

}  // namespace detail

/// Pre-sort checksums for `num_rows` uniform rows of `row_size` elements.
template <typename T>
simt::KernelStats checksum_rows_on_device(simt::Device& device, std::span<const T> data,
                                          std::size_t num_rows, std::size_t row_size,
                                          std::span<std::uint64_t> out) {
    return detail::checksum_kernel<T>(device, "gas.checksum", num_rows,
                                      detail::UniformRows<T>{data, row_size, {}}, out);
}

/// Post-sort verification of uniform rows: order per `order`, multiset
/// checksum per row against `expected`.  `row_fail` (optional) receives per
/// row: bit 0 = unsorted, bit 1 = checksum mismatch.
template <typename T>
VerifyCounts verify_rows_on_device(simt::Device& device, std::span<const T> data,
                                   std::size_t num_rows, std::size_t row_size, SortOrder order,
                                   std::span<const std::uint64_t> expected,
                                   std::span<std::uint8_t> row_fail = {}) {
    return detail::verify_kernel<T>(device, "gas.verify", num_rows,
                                    detail::UniformRows<T>{data, row_size, {}}, order,
                                    expected, row_fail);
}

/// CSR (ragged) variants: row i spans values[offsets[i], offsets[i+1]).
template <typename T>
simt::KernelStats checksum_csr_on_device(simt::Device& device, std::span<const T> data,
                                         std::span<const std::uint64_t> offsets,
                                         std::span<std::uint64_t> out) {
    const std::size_t rows = offsets.empty() ? 0 : offsets.size() - 1;
    return detail::checksum_kernel<T>(device, "gas.checksum_csr", rows,
                                      detail::CsrRows<T>{data, offsets, {}}, out);
}

template <typename T>
VerifyCounts verify_csr_on_device(simt::Device& device, std::span<const T> data,
                                  std::span<const std::uint64_t> offsets, SortOrder order,
                                  std::span<const std::uint64_t> expected,
                                  std::span<std::uint8_t> row_fail = {}) {
    const std::size_t rows = offsets.empty() ? 0 : offsets.size() - 1;
    return detail::verify_kernel<T>(device, "gas.verify_csr", rows,
                                    detail::CsrRows<T>{data, offsets, {}}, order, expected,
                                    row_fail);
}

/// Key/value variants: the checksum binds each key to its payload, so a
/// payload that stops traveling with its key is detected, not just key loss.
template <typename T>
simt::KernelStats checksum_pair_rows_on_device(simt::Device& device, std::span<const T> keys,
                                               std::span<const T> values, std::size_t num_rows,
                                               std::size_t row_size,
                                               std::span<std::uint64_t> out) {
    return detail::checksum_kernel<T>(device, "gas.checksum_pairs", num_rows,
                                      detail::UniformRows<T>{keys, row_size, values}, out);
}

template <typename T>
VerifyCounts verify_pair_rows_on_device(simt::Device& device, std::span<const T> keys,
                                        std::span<const T> values, std::size_t num_rows,
                                        std::size_t row_size, SortOrder order,
                                        std::span<const std::uint64_t> expected,
                                        std::span<std::uint8_t> row_fail = {}) {
    return detail::verify_kernel<T>(device, "gas.verify_pairs", num_rows,
                                    detail::UniformRows<T>{keys, row_size, values}, order,
                                    expected, row_fail);
}

template <typename T>
simt::KernelStats checksum_pair_csr_on_device(simt::Device& device, std::span<const T> keys,
                                              std::span<const T> values,
                                              std::span<const std::uint64_t> offsets,
                                              std::span<std::uint64_t> out) {
    const std::size_t rows = offsets.empty() ? 0 : offsets.size() - 1;
    return detail::checksum_kernel<T>(device, "gas.checksum_pairs_csr", rows,
                                      detail::CsrRows<T>{keys, offsets, values}, out);
}

template <typename T>
VerifyCounts verify_pair_csr_on_device(simt::Device& device, std::span<const T> keys,
                                       std::span<const T> values,
                                       std::span<const std::uint64_t> offsets, SortOrder order,
                                       std::span<const std::uint64_t> expected,
                                       std::span<std::uint8_t> row_fail = {}) {
    const std::size_t rows = offsets.empty() ? 0 : offsets.size() - 1;
    return detail::verify_kernel<T>(device, "gas.verify_pairs_csr", rows,
                                    detail::CsrRows<T>{keys, offsets, values}, order,
                                    expected, row_fail);
}

}  // namespace gas::resilient
