#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gas {

/// Modeled + measured cost of one kernel phase.
struct PhaseStats {
    double modeled_ms = 0.0;  ///< analytic K40c time from the simt cost model
    double wall_ms = 0.0;     ///< host wall-clock of the functional simulation
};

/// Full cost breakdown of one gpu_array_sort() call.
struct SortStats {
    std::size_t num_arrays = 0;
    std::size_t array_size = 0;
    std::size_t buckets_per_array = 0;
    std::size_t sample_size = 0;

    PhaseStats phase1;  ///< splitter selection
    PhaseStats phase2;  ///< bucketing + in-place write-back
    PhaseStats phase3;  ///< per-bucket insertion sort
    PhaseStats extra;   ///< auxiliary kernels (e.g. negation for descending)
    PhaseStats verify;  ///< checksum + verify kernels (Options::verify_output)

    double h2d_ms = 0.0;  ///< modeled transfer in (host API only)
    double d2h_ms = 0.0;  ///< modeled transfer out (host API only)

    std::size_t peak_device_bytes = 0;  ///< allocator peak during the sort
    std::size_t data_bytes = 0;         ///< size of the arrays themselves

    /// Lane-imbalance (divergence) metric of the phase-3 kernel: ratio of
    /// warp max-lane cycles to warp mean-lane cycles summed over the launch
    /// (simt::KernelStats::imbalance).  1.0 = perfectly balanced buckets; a
    /// single hot bucket serializing one lane pushes it toward the warp
    /// width.  For fused kernels (ragged/pair sort) this covers the whole
    /// fused launch.
    double phase3_imbalance = 1.0;

    // Bucket balance diagnostics (from the Z array of Definition 4).
    std::uint32_t min_bucket = 0;
    std::uint32_t max_bucket = 0;
    double avg_bucket = 0.0;

    /// Full Z array copy (only when Options::collect_bucket_sizes is set);
    /// feed to gas::analyze_buckets for balance statistics.
    std::vector<std::uint32_t> bucket_sizes;

    /// Modeled device time of the three kernels (excludes transfers),
    /// the quantity the paper's figures plot.
    [[nodiscard]] double modeled_kernel_ms() const {
        return phase1.modeled_ms + phase2.modeled_ms + phase3.modeled_ms + extra.modeled_ms +
               verify.modeled_ms;
    }
    [[nodiscard]] double wall_kernel_ms() const {
        return phase1.wall_ms + phase2.wall_ms + phase3.wall_ms + extra.wall_ms +
               verify.wall_ms;
    }
    [[nodiscard]] double modeled_total_ms() const {
        return modeled_kernel_ms() + h2d_ms + d2h_ms;
    }
    /// Device memory overhead beyond the data itself, as a fraction of data
    /// size (the paper's in-place claim keeps this small).
    [[nodiscard]] double overhead_fraction() const {
        if (data_bytes == 0) return 0.0;
        return static_cast<double>(peak_device_bytes - data_bytes) /
               static_cast<double>(data_bytes);
    }
};

}  // namespace gas
