#include "core/analysis.hpp"

#include <algorithm>
#include <cmath>

namespace gas {

BucketAnalysis analyze_buckets(std::span<const std::uint32_t> bucket_sizes,
                               std::size_t buckets_per_array) {
    BucketAnalysis a;
    a.buckets = bucket_sizes.size();
    if (bucket_sizes.empty()) return a;
    (void)buckets_per_array;  // shape is informational; stats are global

    a.min_size = bucket_sizes[0];
    a.max_size = bucket_sizes[0];
    double sum = 0.0;
    double sum_sq = 0.0;
    std::size_t empty = 0;
    for (std::uint32_t z : bucket_sizes) {
        a.min_size = std::min(a.min_size, z);
        a.max_size = std::max(a.max_size, z);
        sum += z;
        sum_sq += static_cast<double>(z) * z;
        empty += z == 0 ? 1 : 0;
        a.expected_sort_work += static_cast<double>(z) * z / 4.0;
    }
    const auto count = static_cast<double>(bucket_sizes.size());
    a.mean_size = sum / count;
    const double var = std::max(0.0, sum_sq / count - a.mean_size * a.mean_size);
    a.stddev = std::sqrt(var);
    a.imbalance = a.mean_size > 0.0 ? a.max_size / a.mean_size : 1.0;
    a.empty_fraction = static_cast<double>(empty) / count;
    a.balanced_sort_work = count * a.mean_size * a.mean_size / 4.0;
    return a;
}

std::vector<std::size_t> bucket_size_histogram(std::span<const std::uint32_t> bucket_sizes,
                                               std::size_t bins) {
    std::vector<std::size_t> hist(std::max<std::size_t>(bins, 1), 0);
    if (bucket_sizes.empty()) return hist;
    std::uint32_t mx = 0;
    for (std::uint32_t z : bucket_sizes) mx = std::max(mx, z);
    const double width = mx == 0 ? 1.0 : static_cast<double>(mx) / static_cast<double>(hist.size());
    for (std::uint32_t z : bucket_sizes) {
        auto b = static_cast<std::size_t>(static_cast<double>(z) / width);
        hist[std::min(b, hist.size() - 1)] += 1;
    }
    return hist;
}

}  // namespace gas
