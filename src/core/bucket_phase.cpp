#include <algorithm>
#include <array>

#include "core/phases.hpp"
#include "core/warp_bucket.hpp"

namespace gas::detail {

namespace {

/// Contiguous segment [begin, end) of an n-element array owned by sub-thread
/// `sub` of `parts` cooperating threads.
struct Segment {
    std::size_t begin;
    std::size_t end;
};

[[nodiscard]] Segment segment_of(std::size_t n, unsigned sub, unsigned parts) {
    const std::size_t per = n / parts;
    const std::size_t begin = static_cast<std::size_t>(sub) * per;
    const std::size_t end = sub + 1 == parts ? n : begin + per;
    return {begin, end};
}

/// Charges the cost of one thread reading the whole staged array: shared
/// accesses when staged in shared memory; a per-warp broadcast stream of
/// global reads otherwise (all lanes of a warp touch the same address in
/// lock-step, so one transaction serves the warp).
void charge_scan(simt::ThreadCtx& tc, std::size_t elements, bool staged_in_shared,
                 std::size_t elem_size) {
    if (staged_in_shared) {
        tc.shared(elements);
    } else if (tc.tid() % 32 == 0) {
        tc.global_coalesced(elements * elem_size);
    }
    tc.ops(elements * 3);  // compare pair + count/index bookkeeping
}

/// Warp-region twin of charge_scan: identical per-lane charges, written
/// through the bulk helpers (all lanes scan the same `elements` when
/// tpb == 1, the only shape the fast path takes).
void charge_warp_scan(simt::WarpCtx& wc, std::size_t elements, bool staged_in_shared,
                      std::size_t elem_size) {
    if (staged_in_shared) {
        wc.shared_uniform(elements);
    } else {
        for (unsigned l = wc.lane_begin(); l < wc.lane_end(); ++l) {
            if (l % 32 == 0) wc.coalesced_lane(l, elements * elem_size);
        }
    }
    wc.ops_uniform(elements * 3);
}

}  // namespace

template <typename T>
KernelSpec bucket_phase_spec(std::span<T> data, std::size_t num_arrays,
                             const SortPlan& plan, const Options& opts,
                             std::span<const T> splitters,
                             std::span<std::uint32_t> bucket_sizes, std::span<T> scratch,
                             std::size_t scratch_rows) {
    const std::size_t n = plan.array_size;
    const std::size_t p = plan.buckets;
    const std::size_t spa = plan.splitters_per_array;
    const unsigned tpb =
        opts.strategy == BucketingStrategy::ScanPerThread ? opts.threads_per_bucket : 1;
    const unsigned threads = static_cast<unsigned>(p) * tpb;
    const bool use_shared = plan.array_fits_shared;
    const BucketingStrategy strategy = opts.strategy;

    simt::LaunchConfig cfg{"gas.phase2_bucketing", static_cast<unsigned>(num_arrays), threads};
    auto kernel = [=](simt::BlockCtx& blk) {
        // Shared state: the staged array (when it fits), the splitter
        // sub-array sp_i (always; tiny but hot, per section 5.2), per-thread
        // match counts and per-thread write cursors.
        auto sh_splitters = blk.shared_alloc<T>(spa);
        auto counts = blk.shared_alloc<std::uint32_t>(threads);
        auto starts = blk.shared_alloc<std::uint32_t>(threads);
        simt::sanitize::TrackedSpan<T> staged;
        if (use_shared) {
            staged = blk.shared_alloc<T>(n);
        } else {
            // One scratch row per execution slot: unique among concurrently
            // resident blocks (see BlockCtx::slot), so the fallback stays
            // race-free under multi-worker simulation.
            staged = blk.global_view(scratch.subspan((blk.slot() % scratch_rows) * n, n));
        }

        const std::size_t a = blk.block_idx();
        auto array = blk.global_view(data.subspan(a * n, n));
        auto sp_global = blk.global_view(splitters.subspan(a * spa, spa));
        auto z_row = blk.global_view(bucket_sizes.subspan(a * p, p));

        // Region 1: cooperative staging.  Thread t copies elements t, t+T,
        // t+2T, ... so consecutive lanes touch consecutive addresses.
        const auto stage_lane = [&](simt::ThreadCtx& tc) {
            std::uint64_t copied = 0;
            for (std::size_t i = tc.tid(); i < n; i += threads) {
                staged[i] = array[i];
                ++copied;
            }
            tc.global_coalesced(copied * sizeof(T));
            if (use_shared) {
                tc.shared(copied);
            } else {
                tc.global_coalesced(copied * sizeof(T));  // scratch write
            }
            // spa = p + 1 entries over p*tpb threads: stride so the high
            // sentinel at index p is staged too.
            for (std::size_t i = tc.tid(); i < spa; i += threads) {
                sh_splitters[i] = sp_global[i];
                tc.global_coalesced(sizeof(T));
                tc.shared(1);
            }
            tc.ops(copied + 2);
        };
        blk.for_each_warp([&](simt::WarpCtx& wc) {
            if (wc.tracked()) {
                wc.for_lanes(stage_lane);
                return;
            }
            const unsigned wb = wc.lane_begin();
            const unsigned w = wc.width();
            warp_stage_rows(array.data(), staged.data(), n, threads, wb, w);
            warp_stage_rows(sp_global.data(), sh_splitters.data(), spa, threads, wb, w);
            for (unsigned l = wb; l < wb + w; ++l) {
                const std::uint64_t copied = strided_count(n, l, threads);
                const std::uint64_t sp_copied = strided_count(spa, l, threads);
                wc.coalesced_lane(l, ((use_shared ? 1 : 2) * copied + sp_copied) * sizeof(T));
                wc.shared_lane(l, (use_shared ? copied : 0) + sp_copied);
                wc.ops_lane(l, copied + 2);
            }
        });

        if (strategy == BucketingStrategy::ScanPerThread) {
            // Region 2 (Algorithm 2): thread t = j*tpb + sub owns bucket j's
            // splitter pair and scans its segment of the array, counting the
            // elements that fall within the pair.  The predicate is evaluated
            // unconditionally for every element, so all lanes of a warp run
            // the identical instruction stream (no branch divergence).
            const auto count_lane = [&](simt::ThreadCtx& tc) {
                const unsigned j = tc.tid() / tpb;
                const auto seg = segment_of(n, tc.tid() % tpb, tpb);
                const T lo = sh_splitters[j];
                const T hi = sh_splitters[j + 1];
                std::uint32_t c = 0;
                for (std::size_t i = seg.begin; i < seg.end; ++i) {
                    const T x = staged[i];
                    c += in_bucket(x, lo, hi, j == 0) ? 1u : 0u;
                }
                counts[tc.tid()] = c;
                tc.shared(2 + 1);
                charge_scan(tc, seg.end - seg.begin, use_shared, sizeof(T));
            };
            blk.for_each_warp([&](simt::WarpCtx& wc) {
                // The element-major path needs every lane of the warp to
                // scan the same segment: tpb == 1 (the tuned default).
                if (wc.tracked() || tpb != 1) {
                    wc.for_lanes(count_lane);
                    return;
                }
                warp_count_buckets(staged.data(), n, sh_splitters.data(), wc.lane_begin(),
                                   wc.width(), counts.data());
                wc.shared_uniform(2 + 1);
                charge_warp_scan(wc, n, use_shared, sizeof(T));
            });
        } else {
            // Extension: each thread scans a contiguous chunk and binary
            // searches the splitters per element; counts[j] accumulates via
            // (simulated) shared atomics.  Atomic increments make the region
            // order-sensitive, so warp mode runs the reference lane bodies
            // (in scalar lane order) rather than an element-major rewrite.
            const auto zero_lane = [&](simt::ThreadCtx& tc) {
                if (tc.tid() == 0) {
                    for (unsigned t = 0; t < threads; ++t) counts[t] = 0;
                }
            };
            blk.for_each_warp([&](simt::WarpCtx& wc) { wc.for_lanes(zero_lane); });
            const auto search_count_lane = [&](simt::ThreadCtx& tc) {
                const auto seg = segment_of(n, tc.tid(), threads);
                for (std::size_t i = seg.begin; i < seg.end; ++i) {
                    const T x = staged[i];
                    const auto it = std::lower_bound(
                        sh_splitters.begin() + 1,
                        sh_splitters.begin() + static_cast<std::ptrdiff_t>(p), x);
                    const auto j = static_cast<std::size_t>(it - (sh_splitters.begin() + 1));
                    counts.atomic_fetch_add(j, 1);  // shared atomic on real HW
                }
                const auto len = static_cast<std::uint64_t>(seg.end - seg.begin);
                charge_scan(tc, seg.end - seg.begin, use_shared, sizeof(T));
                // log2(p) probes + one atomic per element.
                std::uint64_t logp = 1;
                while ((1ull << logp) < p) ++logp;
                tc.shared(len * (logp + 1));
                tc.ops(len * logp);
            };
            blk.for_each_warp([&](simt::WarpCtx& wc) { wc.for_lanes(search_count_lane); });
        }

        // Region 3: thread 0 exclusive-scans the counts into write cursors
        // (counts are bucket-major, so the scan yields the in-place bucket
        // layout directly) and records the bucket sizes Z (Definition 4).
        blk.single_thread([&](simt::ThreadCtx& tc) {
            std::uint32_t running = 0;
            for (unsigned t = 0; t < threads; ++t) {
                starts[t] = running;
                running += counts[t];
            }
            for (std::size_t j = 0; j < p; ++j) {
                std::uint32_t z = 0;
                for (unsigned s = 0; s < tpb; ++s) z += counts[j * tpb + s];
                z_row[j] = z;
            }
            tc.ops(threads + p * tpb);
            tc.shared(2ull * threads + p * tpb);
            tc.global_coalesced(p * sizeof(std::uint32_t));
        });

        // Region 4: parallel in-place write-back (the paper's key memory
        // saving: the buckets land over the source array itself).  Each
        // thread's output range is private (from the exclusive scan), so the
        // region is race-free.
        if (strategy == BucketingStrategy::ScanPerThread) {
            const auto scatter_lane = [&](simt::ThreadCtx& tc) {
                const unsigned j = tc.tid() / tpb;
                const auto seg = segment_of(n, tc.tid() % tpb, tpb);
                const T lo = sh_splitters[j];
                const T hi = sh_splitters[j + 1];
                std::uint32_t cursor = starts[tc.tid()];
                for (std::size_t i = seg.begin; i < seg.end; ++i) {
                    const T x = staged[i];
                    if (in_bucket(x, lo, hi, j == 0)) {
                        array[cursor++] = x;
                    }
                }
                // One contiguous run per thread: its bytes stream coalesced
                // after the first segment touch.
                const std::uint64_t written = cursor - starts[tc.tid()];
                tc.global_coalesced(written * sizeof(T));
                tc.global_random(written > 0 ? 1 : 0);
                tc.shared(2 + 1);
                charge_scan(tc, seg.end - seg.begin, use_shared, sizeof(T));
            };
            blk.for_each_warp([&](simt::WarpCtx& wc) {
                if (wc.tracked() || tpb != 1) {
                    wc.for_lanes(scatter_lane);
                    return;
                }
                const unsigned wb = wc.lane_begin();
                const unsigned w = wc.width();
                // Private per-lane cursors seeded from the exclusive scan;
                // monotone splitters give each element a unique bucket, so
                // the element-major pass emits exactly the scalar sequence.
                std::array<std::uint32_t, simt::kMaxWarpLanes> cur;
                for (unsigned k = 0; k < w; ++k) cur[k] = starts[wb + k];
                T* out = array.data();
                const T* s = staged.data();
                warp_scatter_buckets(s, n, sh_splitters.data(), p, wb, w, cur.data(),
                                     [&](std::uint32_t dst, std::size_t i) { out[dst] = s[i]; });
                for (unsigned k = 0; k < w; ++k) {
                    const std::uint64_t written = cur[k] - starts[wb + k];
                    wc.coalesced_lane(wb + k, written * sizeof(T));
                    wc.random_lane(wb + k, written > 0 ? 1 : 0);
                }
                wc.shared_uniform(2 + 1);
                charge_warp_scan(wc, n, use_shared, sizeof(T));
            });
        } else {
            // starts[j] from region 3 are the bucket base offsets (counts are
            // per bucket when tpb == 1); threads advance them as shared
            // atomic cursors here.  Order-sensitive (atomic cursors), so warp
            // mode replays the reference lane bodies in scalar lane order.
            const auto search_scatter_lane = [&](simt::ThreadCtx& tc) {
                const auto seg = segment_of(n, tc.tid(), threads);
                for (std::size_t i = seg.begin; i < seg.end; ++i) {
                    const T x = staged[i];
                    const auto it = std::lower_bound(
                        sh_splitters.begin() + 1,
                        sh_splitters.begin() + static_cast<std::ptrdiff_t>(p), x);
                    const auto j = static_cast<std::size_t>(it - (sh_splitters.begin() + 1));
                    array[starts.atomic_fetch_add(j, 1)] = x;  // shared atomic cursor on real HW
                }
                const auto len = static_cast<std::uint64_t>(seg.end - seg.begin);
                charge_scan(tc, seg.end - seg.begin, use_shared, sizeof(T));
                std::uint64_t logp = 1;
                while ((1ull << logp) < p) ++logp;
                tc.shared(len * (logp + 2));
                tc.ops(len * logp);
                tc.global_random(len);  // scattered writes
            };
            blk.for_each_warp([&](simt::WarpCtx& wc) { wc.for_lanes(search_scatter_lane); });
        }
    };
    return {cfg, std::move(kernel)};
}

template <typename T>
simt::KernelStats bucket_phase(simt::Device& device, std::span<T> data,
                               std::size_t num_arrays, const SortPlan& plan,
                               const Options& opts, std::span<const T> splitters,
                               std::span<std::uint32_t> bucket_sizes, std::span<T> scratch,
                               std::size_t scratch_rows) {
    KernelSpec spec = bucket_phase_spec(data, num_arrays, plan, opts, splitters, bucket_sizes,
                                        scratch, scratch_rows);
    return device.launch(spec.cfg, spec.body);
}

#define GAS_INSTANTIATE(T)                                                                 \
    template simt::KernelStats bucket_phase<T>(                                            \
        simt::Device&, std::span<T>, std::size_t, const SortPlan&, const Options&,         \
        std::span<const T>, std::span<std::uint32_t>, std::span<T>, std::size_t);          \
    template KernelSpec bucket_phase_spec<T>(                                              \
        std::span<T>, std::size_t, const SortPlan&, const Options&, std::span<const T>,    \
        std::span<std::uint32_t>, std::span<T>, std::size_t);
GAS_INSTANTIATE(float)
GAS_INSTANTIATE(double)
GAS_INSTANTIATE(std::uint32_t)
GAS_INSTANTIATE(std::int32_t)
#undef GAS_INSTANTIATE

}  // namespace gas::detail
